# Empty dependencies file for bench_k_sweep.
# This may be replaced when dependencies are built.
