# Empty dependencies file for pathrank_bench_common.
# This may be replaced when dependencies are built.
