file(REMOVE_RECURSE
  "libpathrank_bench_common.a"
)
