file(REMOVE_RECURSE
  "CMakeFiles/pathrank_bench_common.dir/bench/experiment_common.cpp.o"
  "CMakeFiles/pathrank_bench_common.dir/bench/experiment_common.cpp.o.d"
  "libpathrank_bench_common.a"
  "libpathrank_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pathrank_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
