file(REMOVE_RECURSE
  "CMakeFiles/map_matcher_test.dir/tests/map_matcher_test.cpp.o"
  "CMakeFiles/map_matcher_test.dir/tests/map_matcher_test.cpp.o.d"
  "map_matcher_test"
  "map_matcher_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_matcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
