# Empty dependencies file for map_matcher_test.
# This may be replaced when dependencies are built.
