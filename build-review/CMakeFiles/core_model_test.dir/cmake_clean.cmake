file(REMOVE_RECURSE
  "CMakeFiles/core_model_test.dir/tests/core_model_test.cpp.o"
  "CMakeFiles/core_model_test.dir/tests/core_model_test.cpp.o.d"
  "core_model_test"
  "core_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
