file(REMOVE_RECURSE
  "CMakeFiles/alt_test.dir/tests/alt_test.cpp.o"
  "CMakeFiles/alt_test.dir/tests/alt_test.cpp.o.d"
  "alt_test"
  "alt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
