# Empty dependencies file for pathrank_cli.
# This may be replaced when dependencies are built.
