file(REMOVE_RECURSE
  "CMakeFiles/pathrank_cli.dir/tools/pathrank_cli.cpp.o"
  "CMakeFiles/pathrank_cli.dir/tools/pathrank_cli.cpp.o.d"
  "pathrank_cli"
  "pathrank_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pathrank_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
