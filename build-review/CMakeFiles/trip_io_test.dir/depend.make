# Empty dependencies file for trip_io_test.
# This may be replaced when dependencies are built.
