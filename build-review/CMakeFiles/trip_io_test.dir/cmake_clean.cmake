file(REMOVE_RECURSE
  "CMakeFiles/trip_io_test.dir/tests/trip_io_test.cpp.o"
  "CMakeFiles/trip_io_test.dir/tests/trip_io_test.cpp.o.d"
  "trip_io_test"
  "trip_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trip_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
