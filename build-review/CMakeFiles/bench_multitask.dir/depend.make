# Empty dependencies file for bench_multitask.
# This may be replaced when dependencies are built.
