file(REMOVE_RECURSE
  "CMakeFiles/bench_multitask.dir/bench/bench_multitask.cpp.o"
  "CMakeFiles/bench_multitask.dir/bench/bench_multitask.cpp.o.d"
  "bench_multitask"
  "bench_multitask.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multitask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
