file(REMOVE_RECURSE
  "CMakeFiles/debug_train.dir/tools/debug_train.cpp.o"
  "CMakeFiles/debug_train.dir/tools/debug_train.cpp.o.d"
  "debug_train"
  "debug_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
