# Empty dependencies file for bench_pooling_ablation.
# This may be replaced when dependencies are built.
