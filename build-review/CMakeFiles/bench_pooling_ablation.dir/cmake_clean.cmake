file(REMOVE_RECURSE
  "CMakeFiles/bench_pooling_ablation.dir/bench/bench_pooling_ablation.cpp.o"
  "CMakeFiles/bench_pooling_ablation.dir/bench/bench_pooling_ablation.cpp.o.d"
  "bench_pooling_ablation"
  "bench_pooling_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pooling_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
