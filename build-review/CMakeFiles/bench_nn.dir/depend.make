# Empty dependencies file for bench_nn.
# This may be replaced when dependencies are built.
