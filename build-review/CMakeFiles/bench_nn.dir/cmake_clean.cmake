file(REMOVE_RECURSE
  "CMakeFiles/bench_nn.dir/bench/bench_nn.cpp.o"
  "CMakeFiles/bench_nn.dir/bench/bench_nn.cpp.o.d"
  "bench_nn"
  "bench_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
