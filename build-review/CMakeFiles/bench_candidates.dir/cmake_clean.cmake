file(REMOVE_RECURSE
  "CMakeFiles/bench_candidates.dir/bench/bench_candidates.cpp.o"
  "CMakeFiles/bench_candidates.dir/bench/bench_candidates.cpp.o.d"
  "bench_candidates"
  "bench_candidates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_candidates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
