# Empty dependencies file for bench_candidates.
# This may be replaced when dependencies are built.
