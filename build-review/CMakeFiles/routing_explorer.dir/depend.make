# Empty dependencies file for routing_explorer.
# This may be replaced when dependencies are built.
