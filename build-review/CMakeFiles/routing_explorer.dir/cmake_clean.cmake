file(REMOVE_RECURSE
  "CMakeFiles/routing_explorer.dir/examples/routing_explorer.cpp.o"
  "CMakeFiles/routing_explorer.dir/examples/routing_explorer.cpp.o.d"
  "routing_explorer"
  "routing_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
