file(REMOVE_RECURSE
  "CMakeFiles/gps_to_path.dir/examples/gps_to_path.cpp.o"
  "CMakeFiles/gps_to_path.dir/examples/gps_to_path.cpp.o.d"
  "gps_to_path"
  "gps_to_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gps_to_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
