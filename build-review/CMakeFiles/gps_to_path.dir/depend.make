# Empty dependencies file for gps_to_path.
# This may be replaced when dependencies are built.
