# Empty dependencies file for pathrank.
# This may be replaced when dependencies are built.
