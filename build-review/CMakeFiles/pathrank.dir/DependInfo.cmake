
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/csv.cpp" "CMakeFiles/pathrank.dir/src/common/csv.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/common/csv.cpp.o.d"
  "/root/repo/src/common/env.cpp" "CMakeFiles/pathrank.dir/src/common/env.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/common/env.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "CMakeFiles/pathrank.dir/src/common/logging.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/common/logging.cpp.o.d"
  "/root/repo/src/common/string_util.cpp" "CMakeFiles/pathrank.dir/src/common/string_util.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/common/string_util.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "CMakeFiles/pathrank.dir/src/common/thread_pool.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/common/thread_pool.cpp.o.d"
  "/root/repo/src/core/evaluator.cpp" "CMakeFiles/pathrank.dir/src/core/evaluator.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/core/evaluator.cpp.o.d"
  "/root/repo/src/core/model.cpp" "CMakeFiles/pathrank.dir/src/core/model.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/core/model.cpp.o.d"
  "/root/repo/src/core/model_io.cpp" "CMakeFiles/pathrank.dir/src/core/model_io.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/core/model_io.cpp.o.d"
  "/root/repo/src/core/ranker.cpp" "CMakeFiles/pathrank.dir/src/core/ranker.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/core/ranker.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "CMakeFiles/pathrank.dir/src/core/trainer.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/core/trainer.cpp.o.d"
  "/root/repo/src/data/batcher.cpp" "CMakeFiles/pathrank.dir/src/data/batcher.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/data/batcher.cpp.o.d"
  "/root/repo/src/data/candidate_generation.cpp" "CMakeFiles/pathrank.dir/src/data/candidate_generation.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/data/candidate_generation.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "CMakeFiles/pathrank.dir/src/data/dataset.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/data/dataset.cpp.o.d"
  "/root/repo/src/embedding/alias_table.cpp" "CMakeFiles/pathrank.dir/src/embedding/alias_table.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/embedding/alias_table.cpp.o.d"
  "/root/repo/src/embedding/node2vec.cpp" "CMakeFiles/pathrank.dir/src/embedding/node2vec.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/embedding/node2vec.cpp.o.d"
  "/root/repo/src/embedding/random_walk.cpp" "CMakeFiles/pathrank.dir/src/embedding/random_walk.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/embedding/random_walk.cpp.o.d"
  "/root/repo/src/embedding/skipgram.cpp" "CMakeFiles/pathrank.dir/src/embedding/skipgram.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/embedding/skipgram.cpp.o.d"
  "/root/repo/src/graph/graph_io.cpp" "CMakeFiles/pathrank.dir/src/graph/graph_io.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/graph/graph_io.cpp.o.d"
  "/root/repo/src/graph/grid_index.cpp" "CMakeFiles/pathrank.dir/src/graph/grid_index.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/graph/grid_index.cpp.o.d"
  "/root/repo/src/graph/network_builder.cpp" "CMakeFiles/pathrank.dir/src/graph/network_builder.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/graph/network_builder.cpp.o.d"
  "/root/repo/src/graph/road_network.cpp" "CMakeFiles/pathrank.dir/src/graph/road_network.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/graph/road_network.cpp.o.d"
  "/root/repo/src/graph/types.cpp" "CMakeFiles/pathrank.dir/src/graph/types.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/graph/types.cpp.o.d"
  "/root/repo/src/metrics/ranking_metrics.cpp" "CMakeFiles/pathrank.dir/src/metrics/ranking_metrics.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/metrics/ranking_metrics.cpp.o.d"
  "/root/repo/src/nn/embedding_layer.cpp" "CMakeFiles/pathrank.dir/src/nn/embedding_layer.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/nn/embedding_layer.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "CMakeFiles/pathrank.dir/src/nn/linear.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/nn/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "CMakeFiles/pathrank.dir/src/nn/loss.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/nn/loss.cpp.o.d"
  "/root/repo/src/nn/matrix.cpp" "CMakeFiles/pathrank.dir/src/nn/matrix.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/nn/matrix.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "CMakeFiles/pathrank.dir/src/nn/optimizer.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/nn/optimizer.cpp.o.d"
  "/root/repo/src/nn/parameter.cpp" "CMakeFiles/pathrank.dir/src/nn/parameter.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/nn/parameter.cpp.o.d"
  "/root/repo/src/nn/recurrent.cpp" "CMakeFiles/pathrank.dir/src/nn/recurrent.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/nn/recurrent.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "CMakeFiles/pathrank.dir/src/nn/serialize.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/nn/serialize.cpp.o.d"
  "/root/repo/src/routing/alt.cpp" "CMakeFiles/pathrank.dir/src/routing/alt.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/routing/alt.cpp.o.d"
  "/root/repo/src/routing/astar.cpp" "CMakeFiles/pathrank.dir/src/routing/astar.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/routing/astar.cpp.o.d"
  "/root/repo/src/routing/bidirectional_dijkstra.cpp" "CMakeFiles/pathrank.dir/src/routing/bidirectional_dijkstra.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/routing/bidirectional_dijkstra.cpp.o.d"
  "/root/repo/src/routing/dijkstra.cpp" "CMakeFiles/pathrank.dir/src/routing/dijkstra.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/routing/dijkstra.cpp.o.d"
  "/root/repo/src/routing/diversified.cpp" "CMakeFiles/pathrank.dir/src/routing/diversified.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/routing/diversified.cpp.o.d"
  "/root/repo/src/routing/path.cpp" "CMakeFiles/pathrank.dir/src/routing/path.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/routing/path.cpp.o.d"
  "/root/repo/src/routing/path_similarity.cpp" "CMakeFiles/pathrank.dir/src/routing/path_similarity.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/routing/path_similarity.cpp.o.d"
  "/root/repo/src/routing/penalty_alternatives.cpp" "CMakeFiles/pathrank.dir/src/routing/penalty_alternatives.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/routing/penalty_alternatives.cpp.o.d"
  "/root/repo/src/routing/yen.cpp" "CMakeFiles/pathrank.dir/src/routing/yen.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/routing/yen.cpp.o.d"
  "/root/repo/src/serving/batching_queue.cpp" "CMakeFiles/pathrank.dir/src/serving/batching_queue.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/serving/batching_queue.cpp.o.d"
  "/root/repo/src/serving/model_snapshot.cpp" "CMakeFiles/pathrank.dir/src/serving/model_snapshot.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/serving/model_snapshot.cpp.o.d"
  "/root/repo/src/serving/serving_engine.cpp" "CMakeFiles/pathrank.dir/src/serving/serving_engine.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/serving/serving_engine.cpp.o.d"
  "/root/repo/src/serving/sharded_engine.cpp" "CMakeFiles/pathrank.dir/src/serving/sharded_engine.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/serving/sharded_engine.cpp.o.d"
  "/root/repo/src/traj/driver_model.cpp" "CMakeFiles/pathrank.dir/src/traj/driver_model.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/traj/driver_model.cpp.o.d"
  "/root/repo/src/traj/gps_simulator.cpp" "CMakeFiles/pathrank.dir/src/traj/gps_simulator.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/traj/gps_simulator.cpp.o.d"
  "/root/repo/src/traj/map_matcher.cpp" "CMakeFiles/pathrank.dir/src/traj/map_matcher.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/traj/map_matcher.cpp.o.d"
  "/root/repo/src/traj/trajectory_generator.cpp" "CMakeFiles/pathrank.dir/src/traj/trajectory_generator.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/traj/trajectory_generator.cpp.o.d"
  "/root/repo/src/traj/trip_io.cpp" "CMakeFiles/pathrank.dir/src/traj/trip_io.cpp.o" "gcc" "CMakeFiles/pathrank.dir/src/traj/trip_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
