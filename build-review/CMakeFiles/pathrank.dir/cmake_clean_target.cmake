file(REMOVE_RECURSE
  "libpathrank.a"
)
