file(REMOVE_RECURSE
  "CMakeFiles/batching_test.dir/tests/batching_test.cpp.o"
  "CMakeFiles/batching_test.dir/tests/batching_test.cpp.o.d"
  "batching_test"
  "batching_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
