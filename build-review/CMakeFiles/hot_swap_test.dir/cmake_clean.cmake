file(REMOVE_RECURSE
  "CMakeFiles/hot_swap_test.dir/tests/hot_swap_test.cpp.o"
  "CMakeFiles/hot_swap_test.dir/tests/hot_swap_test.cpp.o.d"
  "hot_swap_test"
  "hot_swap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_swap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
