# Empty dependencies file for hot_swap_test.
# This may be replaced when dependencies are built.
