file(REMOVE_RECURSE
  "CMakeFiles/commute_ranking.dir/examples/commute_ranking.cpp.o"
  "CMakeFiles/commute_ranking.dir/examples/commute_ranking.cpp.o.d"
  "commute_ranking"
  "commute_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commute_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
