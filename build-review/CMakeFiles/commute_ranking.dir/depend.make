# Empty dependencies file for commute_ranking.
# This may be replaced when dependencies are built.
