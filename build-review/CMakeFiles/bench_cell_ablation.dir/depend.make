# Empty dependencies file for bench_cell_ablation.
# This may be replaced when dependencies are built.
