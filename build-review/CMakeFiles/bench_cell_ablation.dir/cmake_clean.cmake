file(REMOVE_RECURSE
  "CMakeFiles/bench_cell_ablation.dir/bench/bench_cell_ablation.cpp.o"
  "CMakeFiles/bench_cell_ablation.dir/bench/bench_cell_ablation.cpp.o.d"
  "bench_cell_ablation"
  "bench_cell_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cell_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
