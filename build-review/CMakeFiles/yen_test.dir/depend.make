# Empty dependencies file for yen_test.
# This may be replaced when dependencies are built.
