file(REMOVE_RECURSE
  "CMakeFiles/yen_test.dir/tests/yen_test.cpp.o"
  "CMakeFiles/yen_test.dir/tests/yen_test.cpp.o.d"
  "yen_test"
  "yen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
