// Engine-equivalence suite for the pluggable shortest-path seam: every
// ShortestPathEngine adapter (dijkstra, bidirectional, astar, alt) must
// be EXACT, so (1) point-to-point answers agree bitwise across engines
// on randomized synthetic networks, with and without BanSet bans,
// (2) Yen candidate sets produced through any engine are bitwise
// identical to the plain-Dijkstra reference — the acceptance bar for
// swapping a spur engine in production, (3) the tri-state SearchResult
// separates unreachable from cancelled, and (4) a RoutePlanner over a
// live GraphStore never pairs a new snapshot with stale ALT tables: a
// query racing a rebuild falls back to exact Dijkstra (algo "dijkstra",
// alt_fallbacks ticks) and returns to "alt" once the artifact catches
// up. Runs under the ASan and TSan CI jobs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "core/model.h"
#include "graph/graph_snapshot.h"
#include "graph/network_builder.h"
#include "routing/ban_set.h"
#include "routing/cost_model.h"
#include "routing/path.h"
#include "routing/preprocessed_graph.h"
#include "routing/shortest_path_engine.h"
#include "routing/yen.h"
#include "serving/graph_store.h"
#include "serving/route_planner.h"
#include "serving/serving_engine.h"

namespace pathrank::routing {
namespace {

graph::RoadNetwork SmallSynthetic(uint64_t seed) {
  graph::SyntheticNetworkConfig config;
  config.rows = 12;
  config.cols = 12;
  config.seed = seed;
  return graph::BuildSyntheticNetwork(config);
}

/// All four adapters over one network + shared ALT tables.
struct EngineSet {
  const graph::RoadNetwork& network;
  EdgeCostFn cost;
  std::shared_ptr<const PreprocessedGraph> tables;
  DijkstraEngine dijkstra;
  BidirectionalDijkstraEngine bidi;
  AStarEngine astar;
  AltEngine alt;

  explicit EngineSet(const graph::RoadNetwork& net)
      : network(net),
        cost(EdgeCostFn::TravelTime(net)),
        tables(std::make_shared<const PreprocessedGraph>(net, cost,
                                                         /*num_landmarks=*/6)),
        dijkstra(net),
        bidi(net),
        astar(net),
        alt(net, cost, tables) {}

  std::vector<ShortestPathEngine*> all() {
    return {&dijkstra, &bidi, &astar, &alt};
  }
};

void ExpectSamePath(const Path& expected, const Path& actual,
                    const char* engine_name) {
  EXPECT_EQ(expected.cost, actual.cost) << engine_name;
  EXPECT_EQ(expected.vertices, actual.vertices) << engine_name;
  EXPECT_EQ(expected.edges, actual.edges) << engine_name;
}

/// Deterministic pseudo-random queries without <random> — splitmix64.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

TEST(EngineEquivalence, AllEnginesAgreeOnRandomizedNetworks) {
  for (const uint64_t seed : {11u, 29u, 73u}) {
    const graph::RoadNetwork net = SmallSynthetic(seed);
    EngineSet engines(net);
    const size_t n = net.num_vertices();
    for (int q = 0; q < 40; ++q) {
      const auto s = static_cast<graph::VertexId>(Mix(seed * 131 + q) % n);
      const auto t =
          static_cast<graph::VertexId>(Mix(seed * 131 + q + 1000) % n);
      if (s == t) continue;
      const SearchResult ref =
          engines.dijkstra.FindPath(s, t, engines.cost, nullptr, nullptr);
      for (ShortestPathEngine* engine : engines.all()) {
        const SearchResult got =
            engine->FindPath(s, t, engines.cost, nullptr, nullptr);
        ASSERT_EQ(ref.outcome, got.outcome)
            << engine->name() << " " << s << "->" << t;
        if (ref.found()) ExpectSamePath(ref.path, got.path, engine->name());
      }
    }
  }
}

TEST(EngineEquivalence, AllEnginesAgreeUnderBanPermutations) {
  const graph::RoadNetwork net = SmallSynthetic(/*seed=*/5);
  EngineSet engines(net);
  const size_t n = net.num_vertices();
  BanSet bans(net.num_vertices(), net.num_edges());
  for (int round = 0; round < 24; ++round) {
    bans.Clear();
    // A fresh permutation of banned vertices and edges each round;
    // source and target stay unbanned so some rounds remain reachable.
    const auto s = static_cast<graph::VertexId>(Mix(round * 7 + 1) % n);
    const auto t = static_cast<graph::VertexId>(Mix(round * 7 + 2) % n);
    if (s == t) continue;
    for (int b = 0; b < 6 + round % 5; ++b) {
      const auto v =
          static_cast<graph::VertexId>(Mix(round * 101 + b * 13) % n);
      if (v != s && v != t) bans.BanVertex(v);
      bans.BanEdge(static_cast<graph::EdgeId>(Mix(round * 211 + b * 17) %
                                              net.num_edges()));
    }
    const SearchResult ref =
        engines.dijkstra.FindPath(s, t, engines.cost, &bans, nullptr);
    for (ShortestPathEngine* engine : engines.all()) {
      const SearchResult got =
          engine->FindPath(s, t, engines.cost, &bans, nullptr);
      ASSERT_EQ(ref.outcome, got.outcome)
          << engine->name() << " round " << round;
      if (ref.found()) ExpectSamePath(ref.path, got.path, engine->name());
    }
  }
}

TEST(EngineEquivalence, BannedTargetIsUnreachableNeverCancelled) {
  const graph::RoadNetwork net = graph::BuildTestNetwork();
  EngineSet engines(net);
  BanSet bans(net.num_vertices(), net.num_edges());
  bans.BanVertex(63);  // bans block ARRIVAL: the target becomes unreachable
  for (ShortestPathEngine* engine : engines.all()) {
    const SearchResult r =
        engine->FindPath(0, 63, engines.cost, &bans, nullptr);
    EXPECT_EQ(r.outcome, SearchOutcome::kUnreachable) << engine->name();
  }
  // ...while a banned SOURCE still departs.
  bans.Clear();
  bans.BanVertex(0);
  for (ShortestPathEngine* engine : engines.all()) {
    const SearchResult r =
        engine->FindPath(0, 63, engines.cost, &bans, nullptr);
    EXPECT_EQ(r.outcome, SearchOutcome::kFound) << engine->name();
  }
}

TEST(EngineEquivalence, ExpiredTokenReportsCancelledNotUnreachable) {
  const graph::RoadNetwork net = graph::BuildTestNetwork();
  EngineSet engines(net);
  const CancelToken cancel;
  cancel.Cancel();
  for (ShortestPathEngine* engine : engines.all()) {
    const SearchResult r =
        engine->FindPath(0, 63, engines.cost, nullptr, &cancel);
    EXPECT_EQ(r.outcome, SearchOutcome::kCancelled) << engine->name();
  }
}

/// The production acceptance bar: Yen through ALT (and every other
/// engine) yields the bitwise-identical candidate set to Yen through
/// plain Dijkstra — same paths, same order, same costs.
TEST(EngineEquivalence, YenCandidateSetsAreBitwiseIdenticalAcrossEngines) {
  for (const uint64_t seed : {3u, 17u}) {
    const graph::RoadNetwork net = SmallSynthetic(seed);
    EngineSet engines(net);
    const size_t n = net.num_vertices();
    for (int q = 0; q < 8; ++q) {
      const auto s = static_cast<graph::VertexId>(Mix(seed + q * 37) % n);
      const auto t =
          static_cast<graph::VertexId>(Mix(seed + q * 37 + 500) % n);
      if (s == t) continue;
      const std::vector<Path> ref =
          TopKShortestPaths(net, s, t, engines.cost, /*k=*/6);
      for (ShortestPathEngine* engine : engines.all()) {
        const std::vector<Path> got = TopKShortestPaths(
            net, s, t, engines.cost, /*k=*/6, nullptr, engine);
        ASSERT_EQ(ref.size(), got.size()) << engine->name();
        for (size_t i = 0; i < ref.size(); ++i) {
          ExpectSamePath(ref[i], got[i], engine->name());
        }
      }
    }
  }
}

// ---- (snapshot, artifact) pairing under live swaps ---------------------

core::PathRankConfig TinyModel() {
  core::PathRankConfig cfg;
  cfg.embedding_dim = 8;
  cfg.hidden_size = 12;
  cfg.seed = 3;
  return cfg;
}

/// A swap mid-rebuild must NEVER pair the new snapshot with the old
/// landmark tables: the planner serves the exact Dijkstra fallback
/// (algo "dijkstra", alt_fallbacks ticks) until the artifact catches
/// up, then returns to "alt".
TEST(AltArtifactPairing, MidRebuildQueryFallsBackThenRecovers) {
  serving::GraphStore store(graph::BuildTestNetwork());

  // The hook gates the BACKGROUND rebuild (epoch >= 1); the synchronous
  // boot build passes epoch 0 and must not block.
  std::atomic<bool> hold{true};
  serving::PreprocessOptions pre;
  pre.num_landmarks = 4;
  pre.rebuild_hook = [&hold](uint64_t epoch) {
    if (epoch == 0) return;
    while (hold.load()) std::this_thread::yield();
  };
  store.EnablePreprocessing(pre);

  // The scorer keeps its own network: snapshot references must not
  // outlive the swap below.
  const graph::RoadNetwork score_net = graph::BuildTestNetwork();
  core::PathRankModel model(score_net.num_vertices(), TinyModel());
  serving::ServingEngine engine(score_net, model);

  serving::RoutePlannerConfig config;
  config.store = &store;
  config.cache_capacity = 0;  // every Plan enumerates — no cache masking
  config.spur_engine = serving::SpurEngine::kAlt;
  config.candidates.strategy = data::CandidateStrategy::kTopK;
  config.candidates.k = 4;
  serving::RoutePlanner planner(
      config, [&engine](std::vector<routing::Path> paths) {
        return engine.ScoreBatch(paths);
      });

  // Epoch 0: artifact matches the snapshot, ALT serves.
  const serving::RouteResult warm = planner.Plan({0, 63});
  ASSERT_EQ(warm.status, serving::RouteStatus::kOk);
  EXPECT_EQ(warm.algo, "alt");
  EXPECT_EQ(planner.alt_fallbacks(), 0u);

  // Swap to epoch 1 while the rebuild is gated: the snapshot moves, the
  // artifact cannot. The planner must refuse the stale tables.
  graph::TrafficUpdate update;
  update.edge = 0;
  update.has_travel_time = true;
  update.travel_time_s = 600.0;
  ASSERT_EQ(store.ApplyTraffic({update}).status,
            serving::TrafficStatus::kOk);

  const serving::RouteResult during = planner.Plan({0, 63});
  ASSERT_EQ(during.status, serving::RouteStatus::kOk);
  EXPECT_EQ(during.algo, "dijkstra")
      << "query paired a new snapshot with stale ALT tables";
  EXPECT_EQ(during.graph_epoch, 1u);
  EXPECT_GE(planner.alt_fallbacks(), 1u);

  // Release the rebuild and wait for the artifact to catch up.
  hold.store(false);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto artifact = store.CurrentArtifact();
    if (artifact && artifact->epoch == store.epoch()) break;
    std::this_thread::yield();
  }
  const auto artifact = store.CurrentArtifact();
  ASSERT_TRUE(artifact != nullptr);
  ASSERT_EQ(artifact->epoch, 1u) << "rebuild never caught up";

  const serving::RouteResult after = planner.Plan({0, 63});
  ASSERT_EQ(after.status, serving::RouteStatus::kOk);
  EXPECT_EQ(after.algo, "alt");

  const serving::PreprocessingStats stats = store.preprocessing_stats();
  EXPECT_TRUE(stats.enabled);
  EXPECT_EQ(stats.landmarks, 4);
  EXPECT_GE(stats.rebuilds, 1u);
  EXPECT_EQ(stats.epochs_behind, 0u);
}

/// CaptureForQuery returns the snapshot and the artifact under one lock
/// hold, so a caller can assert the pair is internally consistent even
/// while swaps race in another thread.
TEST(AltArtifactPairing, CaptureForQueryIsPairwiseConsistentUnderSwaps) {
  serving::GraphStore store(graph::BuildTestNetwork());
  serving::PreprocessOptions pre;
  pre.num_landmarks = 2;
  store.EnablePreprocessing(pre);

  std::atomic<bool> stop{false};
  std::thread swapper([&] {
    graph::TrafficUpdate update;
    update.edge = 0;
    update.has_travel_time = true;
    for (int i = 0; i < 50 && !stop.load(); ++i) {
      update.travel_time_s = 100.0 + i;
      store.ApplyTraffic({update});
      std::this_thread::yield();
    }
  });
  for (int i = 0; i < 2000; ++i) {
    const serving::GraphQueryView view = store.CaptureForQuery();
    ASSERT_TRUE(view.snapshot != nullptr);
    if (view.artifact != nullptr) {
      // The artifact may legitimately trail the snapshot, never lead it,
      // and its tables must structurally match its own snapshot.
      ASSERT_LE(view.artifact->epoch, view.snapshot->epoch());
      ASSERT_EQ(view.artifact->tables->num_vertices(),
                view.artifact->snapshot->network().num_vertices());
    }
  }
  stop.store(true);
  swapper.join();
}

}  // namespace
}  // namespace pathrank::routing
