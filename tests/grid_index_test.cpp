// GridIndex correctness: nearest-vertex and radius queries compared against
// brute force over randomised query points.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "common/rng.h"
#include "graph/grid_index.h"
#include "graph/network_builder.h"

namespace pathrank::graph {
namespace {

VertexId BruteForceNearest(const RoadNetwork& net, const Coordinate& q) {
  VertexId best = kInvalidVertex;
  double best_d = std::numeric_limits<double>::infinity();
  for (VertexId v = 0; v < net.num_vertices(); ++v) {
    const double d = FastDistanceMeters(q, net.coordinate(v));
    if (d < best_d) {
      best_d = d;
      best = v;
    }
  }
  return best;
}

class GridIndexProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GridIndexProperty, NearestMatchesBruteForce) {
  const RoadNetwork net = BuildTestNetwork(GetParam());
  const GridIndex index(net, 300.0);
  pathrank::Rng rng(GetParam() * 31 + 7);
  const BoundingBox& bb = net.bounds();
  for (int i = 0; i < 200; ++i) {
    Coordinate q;
    // Include points slightly outside the bounds.
    q.lat = rng.NextUniform(bb.min_lat - 0.01, bb.max_lat + 0.01);
    q.lon = rng.NextUniform(bb.min_lon - 0.01, bb.max_lon + 0.01);
    const VertexId got = index.NearestVertex(q);
    const VertexId want = BruteForceNearest(net, q);
    // Allow distance ties between distinct vertices.
    const double d_got = FastDistanceMeters(q, net.coordinate(got));
    const double d_want = FastDistanceMeters(q, net.coordinate(want));
    EXPECT_NEAR(d_got, d_want, 1e-9);
  }
}

TEST_P(GridIndexProperty, RadiusQueryMatchesBruteForce) {
  const RoadNetwork net = BuildTestNetwork(GetParam());
  const GridIndex index(net, 250.0);
  pathrank::Rng rng(GetParam() * 17 + 3);
  const BoundingBox& bb = net.bounds();
  for (int i = 0; i < 50; ++i) {
    Coordinate q;
    q.lat = rng.NextUniform(bb.min_lat, bb.max_lat);
    q.lon = rng.NextUniform(bb.min_lon, bb.max_lon);
    const double radius = rng.NextUniform(100.0, 1500.0);
    auto got = index.VerticesWithin(q, radius);
    std::sort(got.begin(), got.end());
    std::vector<VertexId> want;
    for (VertexId v = 0; v < net.num_vertices(); ++v) {
      if (FastDistanceMeters(q, net.coordinate(v)) <= radius) {
        want.push_back(v);
      }
    }
    EXPECT_EQ(got, want);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridIndexProperty,
                         ::testing::Values(3, 11, 29, 57));

TEST(GridIndex, EmptyRadiusOutsideNetwork) {
  const RoadNetwork net = BuildTestNetwork();
  const GridIndex index(net);
  // ~100 km north of the network.
  const auto hits = index.VerticesWithin({58.0, 9.9}, 500.0);
  EXPECT_TRUE(hits.empty());
}

TEST(GridIndex, NearestFromFarAwayStillWorks) {
  const RoadNetwork net = BuildTestNetwork();
  const GridIndex index(net);
  const VertexId v = index.NearestVertex({58.0, 9.9});
  EXPECT_NE(v, kInvalidVertex);
  EXPECT_EQ(v, BruteForceNearest(net, {58.0, 9.9}));
}

}  // namespace
}  // namespace pathrank::graph
