// Serving stack: const inference path equivalence (every cell / pooling /
// multi-task / direction configuration), skip-init construction, immutable
// snapshots, and the replica-pool ServingEngine (batch-vs-single and
// concurrent-vs-serial bitwise equivalence).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/model.h"
#include "graph/network_builder.h"
#include "serving/model_snapshot.h"
#include "serving/serving_engine.h"

namespace pathrank::serving {
namespace {

nn::SequenceBatch ToyBatch() {
  return nn::SequenceBatch::FromSequences(
      {{1, 2, 3, 4}, {5, 6}, {7, 8, 9, 10, 11}, {12}});
}

core::PathRankConfig SmallConfig() {
  core::PathRankConfig cfg;
  cfg.embedding_dim = 8;
  cfg.hidden_size = 12;
  cfg.seed = 3;
  return cfg;
}

// ---- const inference path --------------------------------------------

TEST(ForwardInference, BitwiseEqualToTrainingForwardAcrossConfigs) {
  for (nn::CellType cell :
       {nn::CellType::kGru, nn::CellType::kRnn, nn::CellType::kLstm}) {
    for (bool bidirectional : {false, true}) {
      for (core::Pooling pooling :
           {core::Pooling::kFinalState, core::Pooling::kMean}) {
        for (bool multi_task : {false, true}) {
          core::PathRankConfig cfg = SmallConfig();
          cfg.cell = cell;
          cfg.bidirectional = bidirectional;
          cfg.pooling = pooling;
          cfg.multi_task = multi_task;
          core::PathRankModel model(16, cfg);

          const auto expected = model.ForwardFull(ToyBatch());
          const core::PathRankModel& const_model = model;
          core::InferenceScratch scratch;
          const auto actual =
              const_model.ForwardInferenceFull(ToyBatch(), &scratch);

          ASSERT_EQ(expected.scores.size(), actual.scores.size());
          for (size_t i = 0; i < expected.scores.size(); ++i) {
            EXPECT_EQ(expected.scores[i], actual.scores[i])
                << "cell=" << static_cast<int>(cell)
                << " bidi=" << bidirectional
                << " pool=" << static_cast<int>(pooling)
                << " mt=" << multi_task << " i=" << i;
          }
          ASSERT_EQ(expected.aux_length.size(), actual.aux_length.size());
          for (size_t i = 0; i < expected.aux_length.size(); ++i) {
            EXPECT_EQ(expected.aux_length[i], actual.aux_length[i]);
            EXPECT_EQ(expected.aux_time[i], actual.aux_time[i]);
          }
        }
      }
    }
  }
}

TEST(ForwardInference, ScratchReuseAcrossGeometriesIsStable) {
  core::PathRankModel model(16, SmallConfig());
  core::InferenceScratch scratch;
  // Alternate between batch geometries with one scratch: stale shapes
  // must never leak into results.
  const auto small = nn::SequenceBatch::FromSequences({{3, 1}});
  const auto expected_toy = model.Forward(ToyBatch());
  const auto expected_small = model.Forward(small);
  for (int round = 0; round < 3; ++round) {
    const auto toy_scores = model.ForwardInference(ToyBatch(), &scratch);
    const auto small_scores = model.ForwardInference(small, &scratch);
    for (size_t i = 0; i < expected_toy.size(); ++i) {
      EXPECT_EQ(expected_toy[i], toy_scores[i]);
    }
    EXPECT_EQ(expected_small[0], small_scores[0]);
  }
}

// ---- skip-init construction ------------------------------------------

TEST(SkipInit, CopiedReplicaScoresBitwiseEqual) {
  for (bool multi_task : {false, true}) {
    core::PathRankConfig cfg = SmallConfig();
    cfg.cell = nn::CellType::kLstm;  // exercises the forget-bias init too
    cfg.multi_task = multi_task;
    core::PathRankModel source(16, cfg);
    core::PathRankModel replica(16, cfg, core::InitMode::kSkipInit);
    replica.CopyParametersFrom(source);
    const auto expected = source.Forward(ToyBatch());
    const auto actual = replica.Forward(ToyBatch());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i], actual[i]);
    }
  }
}

TEST(SkipInit, EmbeddingFreezeIsStillApplied) {
  core::PathRankConfig cfg = SmallConfig();
  cfg.finetune_embedding = false;  // PR-A1
  core::PathRankModel model(16, cfg, core::InitMode::kSkipInit);
  // The embedding must be frozen exactly as on the random-init path.
  bool found_frozen_embedding = false;
  for (const nn::Parameter* p :
       static_cast<const core::PathRankModel&>(model).Parameters()) {
    if (p->name == "embedding") found_frozen_embedding = p->frozen;
  }
  EXPECT_TRUE(found_frozen_embedding);
}

// ---- snapshots --------------------------------------------------------

TEST(ModelSnapshot, ConstSnapshotIsUsable) {
  core::PathRankModel model(16, SmallConfig());
  const std::shared_ptr<const ModelSnapshot> snapshot =
      ModelSnapshot::Capture(model);
  // Everything below goes through a const ModelSnapshot&.
  const ModelSnapshot& snap = *snapshot;
  EXPECT_EQ(snap.vocab_size(), 16u);
  EXPECT_EQ(snap.NumParameters(), model.NumParameters());
  EXPECT_EQ(snap.config().hidden_size, SmallConfig().hidden_size);

  core::InferenceScratch scratch;
  const auto expected = model.Forward(ToyBatch());
  const auto actual = snap.model().ForwardInference(ToyBatch(), &scratch);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i], actual[i]);
  }
}

TEST(ModelSnapshot, IsImmuneToLaterTrainingOfTheSource) {
  core::PathRankModel model(16, SmallConfig());
  const auto snapshot = ModelSnapshot::Capture(model);
  core::InferenceScratch scratch;
  const auto before = snapshot->model().ForwardInference(ToyBatch(), &scratch);

  // Perturb the source model's weights (stand-in for continued training).
  for (nn::Parameter* p : model.Parameters()) {
    for (size_t i = 0; i < p->value.size(); ++i) {
      p->value.data()[i] += 0.25f;
    }
  }
  const auto source_now = model.Forward(ToyBatch());
  const auto after = snapshot->model().ForwardInference(ToyBatch(), &scratch);
  bool source_changed = false;
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i], after[i]);
    source_changed = source_changed || source_now[i] != before[i];
  }
  EXPECT_TRUE(source_changed);
}

TEST(ModelSnapshot, MaterializeRoundTrips) {
  core::PathRankModel model(16, SmallConfig());
  const auto snapshot = ModelSnapshot::Capture(model);
  const auto copy = snapshot->Materialize();
  const auto expected = model.Forward(ToyBatch());
  const auto actual = copy->Forward(ToyBatch());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i], actual[i]);
  }
}

// ---- serving engine ---------------------------------------------------

struct EngineFixture {
  graph::RoadNetwork network = graph::BuildTestNetwork();
  core::PathRankModel model;  // initialised after network (member order)
  data::CandidateGenConfig gen;

  EngineFixture() : model(network.num_vertices(), SmallConfig()) {
    gen.k = 5;
  }
};

TEST(ServingEngine, ScoreBatchMatchesTrainingForward) {
  EngineFixture fx;
  const ServingEngine engine(fx.network, fx.model);
  const auto candidates = GenerateCandidates(fx.network, 0, 63, fx.gen);
  ASSERT_GE(candidates.size(), 2u);

  // Reference: the mutable training-path scores for the same batch.
  std::vector<std::vector<int32_t>> seqs;
  for (const auto& p : candidates) {
    std::vector<int32_t> seq(p.vertices.begin(), p.vertices.end());
    seqs.push_back(std::move(seq));
  }
  const auto scores =
      fx.model.Forward(nn::SequenceBatch::FromSequences(seqs));

  auto scored = engine.ScoreBatch(candidates);
  ASSERT_EQ(scored.size(), candidates.size());
  // Engine output is sorted; check it is a permutation with exact scores.
  std::vector<double> expected(scores.begin(), scores.end());
  std::sort(expected.begin(), expected.end(), std::greater<double>());
  for (size_t i = 0; i < scored.size(); ++i) {
    EXPECT_EQ(expected[i], scored[i].score);
    if (i > 0) {
      EXPECT_GE(scored[i - 1].score, scored[i].score);
    }
  }
}

TEST(ServingEngine, RankBatchMatchesSingleQueryRank) {
  EngineFixture fx;
  const ServingEngine engine(fx.network, fx.model);
  std::vector<RankQuery> queries = {
      {0, 63}, {7, 56}, {3, 60}, {21, 42}, {0, 63}, {14, 49}};
  const auto batched = engine.RankBatch(queries, fx.gen);
  ASSERT_EQ(batched.size(), queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    const auto single =
        engine.Rank(queries[q].source, queries[q].destination, fx.gen);
    ASSERT_EQ(single.size(), batched[q].size()) << "query " << q;
    for (size_t i = 0; i < single.size(); ++i) {
      EXPECT_EQ(single[i].score, batched[q][i].score);
      EXPECT_EQ(single[i].path.vertices, batched[q][i].path.vertices);
    }
  }
}

TEST(ServingEngine, ConcurrentRankIsBitwiseEqualToSerial) {
  EngineFixture fx;
  ServingOptions options;
  options.num_replicas = 3;  // fewer replicas than threads: locks contend
  options.candidates = fx.gen;
  const ServingEngine engine(fx.network, fx.model, options);

  const std::vector<RankQuery> queries = {
      {0, 63}, {7, 56}, {3, 60}, {21, 42}, {14, 49}, {8, 55}, {2, 61}};

  // Serial reference through the same engine.
  std::vector<std::vector<ScoredPath>> expected;
  expected.reserve(queries.size());
  for (const auto& q : queries) {
    expected.push_back(engine.Rank(q.source, q.destination));
  }

  // N external threads x M rounds over one shared engine. Every result
  // must be bitwise identical to the serial reference.
  constexpr size_t kThreads = 8;
  constexpr size_t kRounds = 5;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t round = 0; round < kRounds; ++round) {
        // Stagger starting offsets so threads hit different replicas.
        const size_t start = (t + round) % queries.size();
        for (size_t i = 0; i < queries.size(); ++i) {
          const size_t q = (start + i) % queries.size();
          const auto got =
              engine.Rank(queries[q].source, queries[q].destination);
          if (got.size() != expected[q].size()) {
            mismatches.fetch_add(1);
            continue;
          }
          for (size_t j = 0; j < got.size(); ++j) {
            if (got[j].score != expected[q][j].score ||
                got[j].path.vertices != expected[q][j].path.vertices) {
              mismatches.fetch_add(1);
            }
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ServingEngine, ConcurrentRankBatchAndRankCoexist) {
  // A RankBatch running on the global pool while external threads issue
  // single queries must neither deadlock nor change any result.
  EngineFixture fx;
  ServingOptions options;
  options.num_replicas = 2;
  options.candidates = fx.gen;
  const ServingEngine engine(fx.network, fx.model, options);

  const std::vector<RankQuery> queries = {{0, 63}, {7, 56}, {3, 60},
                                          {21, 42}, {14, 49}, {8, 55}};
  const auto expected = engine.RankBatch(queries);

  std::atomic<int> mismatches{0};
  std::thread external([&] {
    for (int round = 0; round < 10; ++round) {
      const size_t q = static_cast<size_t>(round) % queries.size();
      const auto got = engine.Rank(queries[q].source, queries[q].destination);
      if (got.size() != expected[q].size()) mismatches.fetch_add(1);
    }
  });
  for (int round = 0; round < 5; ++round) {
    const auto batched = engine.RankBatch(queries);
    for (size_t q = 0; q < queries.size(); ++q) {
      if (batched[q].size() != expected[q].size()) {
        mismatches.fetch_add(1);
        continue;
      }
      for (size_t i = 0; i < batched[q].size(); ++i) {
        if (batched[q][i].score != expected[q][i].score) {
          mismatches.fetch_add(1);
        }
      }
    }
  }
  external.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ServingEngine, EmptyBatchAndEmptyPathsAreFine) {
  EngineFixture fx;
  const ServingEngine engine(fx.network, fx.model);
  EXPECT_TRUE(engine.RankBatch({}).empty());
  EXPECT_TRUE(engine.ScoreBatch({}).empty());
}

TEST(ServingEngine, TwoEnginesOverOneModelAgreeBitwise) {
  // Two independently constructed engines capture independent snapshots
  // of the same model; determinism demands bitwise-equal rankings.
  EngineFixture fx;
  const ServingEngine first(fx.network, fx.model);
  const ServingEngine second(fx.network, fx.model);
  const auto via_first = first.Rank(0, 63, fx.gen);
  const auto via_second = second.Rank(0, 63, fx.gen);
  ASSERT_EQ(via_first.size(), via_second.size());
  for (size_t i = 0; i < via_first.size(); ++i) {
    EXPECT_EQ(via_first[i].score, via_second[i].score);
    EXPECT_EQ(via_first[i].path.vertices, via_second[i].path.vertices);
  }
}

}  // namespace
}  // namespace pathrank::serving
