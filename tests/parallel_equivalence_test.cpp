// Parallel-vs-serial equivalence: GEMM outputs are bitwise identical for
// any thread count, and training is bit-reproducible for a fixed seed and
// thread count (the determinism guarantee documented in
// docs/performance.md).
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/evaluator.h"
#include "core/model.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "nn/matrix.h"

namespace pathrank {
namespace {

class ParallelEquivalenceTest : public ::testing::Test {
 protected:
  void TearDown() override { SetNumThreads(4); }
};

nn::Matrix RandomMatrix(size_t rows, size_t cols, Rng& rng) {
  nn::Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.NextUniform(-1.0, 1.0));
  }
  return m;
}

void ExpectBitwiseEqual(const nn::Matrix& a, const nn::Matrix& b) {
  ASSERT_TRUE(a.SameShape(b));
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "at flat index " << i;
  }
}

TEST_F(ParallelEquivalenceTest, GemmBitwiseStableAcrossThreadCounts) {
  // Odd shapes exercise the remainder tiles; sizes are above the parallel
  // threshold so the pool actually shards the work.
  struct Shape {
    size_t m, k, n;
  };
  for (const Shape& shape :
       {Shape{97, 130, 61}, Shape{128, 128, 128}, Shape{33, 257, 19}}) {
    Rng rng(shape.m * 1315423911u + shape.k * 7 + shape.n);
    const nn::Matrix a = RandomMatrix(shape.m, shape.k, rng);
    const nn::Matrix b_nn = RandomMatrix(shape.k, shape.n, rng);
    const nn::Matrix b_nt = RandomMatrix(shape.n, shape.k, rng);
    const nn::Matrix b_tn = RandomMatrix(shape.m, shape.n, rng);
    const nn::Matrix c_base = RandomMatrix(shape.m, shape.n, rng);
    const nn::Matrix c_tn_base = RandomMatrix(shape.k, shape.n, rng);

    SetNumThreads(1);
    nn::Matrix nn_ref = c_base;
    GemmNN(a, b_nn, &nn_ref, 0.5f, 1.0f);
    nn::Matrix nt_ref = c_base;
    GemmNT(a, b_nt, &nt_ref, 0.5f, 1.0f);
    nn::Matrix tn_ref = c_tn_base;
    GemmTN(a, b_tn, &tn_ref, 0.5f, 1.0f);

    for (size_t threads : {2, 3, 4, 7}) {
      SetNumThreads(threads);
      nn::Matrix c = c_base;
      GemmNN(a, b_nn, &c, 0.5f, 1.0f);
      ExpectBitwiseEqual(c, nn_ref);
      c = c_base;
      GemmNT(a, b_nt, &c, 0.5f, 1.0f);
      ExpectBitwiseEqual(c, nt_ref);
      c = c_tn_base;
      GemmTN(a, b_tn, &c, 0.5f, 1.0f);
      ExpectBitwiseEqual(c, tn_ref);
    }
  }
}

/// Tiny synthetic ranking dataset: deterministic paths over a fake vertex
/// id space (the trainer never touches a road network).
data::RankingDataset SyntheticDataset(size_t num_queries, uint64_t seed) {
  Rng rng(seed);
  data::RankingDataset dataset;
  constexpr int32_t kVocab = 60;
  for (size_t q = 0; q < num_queries; ++q) {
    data::RankingQuery query;
    query.query_id = static_cast<int>(q);
    const size_t candidates = 3 + rng.NextBounded(3);
    for (size_t c = 0; c < candidates; ++c) {
      data::RankingCandidate cand;
      const size_t len = 4 + rng.NextBounded(9);
      for (size_t v = 0; v < len; ++v) {
        cand.path.vertices.push_back(
            static_cast<graph::VertexId>(rng.NextBounded(kVocab)));
      }
      cand.path.length_m = 500.0 + rng.NextDouble() * 3000.0;
      cand.path.time_s = cand.path.length_m / 15.0;
      cand.label = rng.NextDouble();
      query.candidates.push_back(std::move(cand));
    }
    dataset.queries.push_back(std::move(query));
  }
  return dataset;
}

std::vector<nn::Matrix> TrainOnce(size_t threads) {
  SetNumThreads(threads);
  const data::RankingDataset train = SyntheticDataset(24, 101);
  const data::RankingDataset val = SyntheticDataset(6, 202);

  core::PathRankConfig model_cfg;
  model_cfg.embedding_dim = 12;
  model_cfg.hidden_size = 16;
  model_cfg.seed = 5;
  core::PathRankModel model(60, model_cfg);

  core::TrainerConfig train_cfg;
  train_cfg.epochs = 3;
  train_cfg.batch_size = 8;
  train_cfg.patience = 0;
  train_cfg.seed = 17;
  core::TrainPathRank(model, train, val, train_cfg);

  std::vector<nn::Matrix> weights;
  for (const nn::Parameter* p : model.Parameters()) {
    weights.push_back(p->value);
  }
  return weights;
}

TEST_F(ParallelEquivalenceTest, TrainingDeterministicForFixedThreadCount) {
  for (size_t threads : {1, 2, 4}) {
    const auto run1 = TrainOnce(threads);
    const auto run2 = TrainOnce(threads);
    ASSERT_EQ(run1.size(), run2.size());
    bool moved = false;
    for (size_t i = 0; i < run1.size(); ++i) {
      ExpectBitwiseEqual(run1[i], run2[i]);
      if (run1[i].SquaredNorm() > 0.0) moved = true;
    }
    EXPECT_TRUE(moved);
  }
}

TEST_F(ParallelEquivalenceTest, EvaluationStableAcrossThreadCounts) {
  const data::RankingDataset dataset = SyntheticDataset(32, 303);
  core::PathRankConfig model_cfg;
  model_cfg.embedding_dim = 12;
  model_cfg.hidden_size = 16;
  model_cfg.seed = 5;
  core::PathRankModel model(60, model_cfg);

  SetNumThreads(1);
  const core::EvalResult serial = core::Evaluate(model, dataset);
  for (size_t threads : {2, 4}) {
    SetNumThreads(threads);
    const core::EvalResult parallel = core::Evaluate(model, dataset);
    EXPECT_EQ(parallel.mae, serial.mae);
    EXPECT_EQ(parallel.kendall_tau, serial.kendall_tau);
    EXPECT_EQ(parallel.spearman_rho, serial.spearman_rho);
    EXPECT_EQ(parallel.num_queries, serial.num_queries);
  }
}

}  // namespace
}  // namespace pathrank
