// Matrix kernels: GEMM variants against a naive reference over randomised
// shapes, element-wise helpers and initialisers.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.h"
#include "nn/matrix.h"

namespace pathrank::nn {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, pathrank::Rng& rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.NextUniform(-1.0, 1.0));
  }
  return m;
}

/// Naive triple loop C = alpha * A * B (+ beta * C), reference semantics.
Matrix NaiveGemm(const Matrix& a, const Matrix& b, float alpha) {
  Matrix c(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      float sum = 0.0f;
      for (size_t k = 0; k < a.cols(); ++k) {
        sum += a.at(i, k) * b.at(k, j);
      }
      c.at(i, j) = alpha * sum;
    }
  }
  return c;
}

Matrix Transpose(const Matrix& m) {
  Matrix t(m.cols(), m.rows());
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < m.cols(); ++j) {
      t.at(j, i) = m.at(i, j);
    }
  }
  return t;
}

void ExpectNear(const Matrix& a, const Matrix& b, float tol) {
  ASSERT_TRUE(a.SameShape(b));
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a.data()[i], b.data()[i], tol) << "at flat index " << i;
  }
}

using GemmShape = std::tuple<int, int, int>;

class GemmProperty : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmProperty, NNMatchesNaive) {
  const auto [m, k, n] = GetParam();
  pathrank::Rng rng(static_cast<uint64_t>(m * 73 + k * 7 + n));
  const Matrix a = RandomMatrix(m, k, rng);
  const Matrix b = RandomMatrix(k, n, rng);
  Matrix c(m, n);
  GemmNN(a, b, &c);
  ExpectNear(c, NaiveGemm(a, b, 1.0f), 1e-4f);
}

TEST_P(GemmProperty, NTMatchesNaive) {
  const auto [m, k, n] = GetParam();
  pathrank::Rng rng(static_cast<uint64_t>(m * 31 + k * 17 + n));
  const Matrix a = RandomMatrix(m, k, rng);
  const Matrix bt = RandomMatrix(n, k, rng);  // stored transposed
  Matrix c(m, n);
  GemmNT(a, bt, &c);
  ExpectNear(c, NaiveGemm(a, Transpose(bt), 1.0f), 1e-4f);
}

TEST_P(GemmProperty, TNMatchesNaive) {
  const auto [m, k, n] = GetParam();
  pathrank::Rng rng(static_cast<uint64_t>(m * 3 + k * 11 + n));
  const Matrix at = RandomMatrix(m, k, rng);  // logical A = at^T [k x m]
  const Matrix b = RandomMatrix(m, n, rng);
  Matrix c(k, n);
  GemmTN(at, b, &c);
  ExpectNear(c, NaiveGemm(Transpose(at), b, 1.0f), 1e-4f);
}

TEST_P(GemmProperty, BetaOneAccumulates) {
  const auto [m, k, n] = GetParam();
  pathrank::Rng rng(static_cast<uint64_t>(m + k + n));
  const Matrix a = RandomMatrix(m, k, rng);
  const Matrix b = RandomMatrix(k, n, rng);
  Matrix c = RandomMatrix(m, n, rng);
  Matrix expected = c;
  expected.Add(NaiveGemm(a, b, 1.0f));
  GemmNN(a, b, &c, 1.0f, 1.0f);
  ExpectNear(c, expected, 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmProperty,
    ::testing::Values(GemmShape{1, 1, 1}, GemmShape{2, 3, 4},
                      GemmShape{5, 1, 7}, GemmShape{8, 16, 8},
                      GemmShape{13, 7, 3}, GemmShape{32, 64, 32}));

TEST(Matrix, ShapeAndFill) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  m.Fill(2.5f);
  for (size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 2.5f);
  m.Zero();
  EXPECT_DOUBLE_EQ(m.SquaredNorm(), 0.0);
}

TEST(Matrix, AddAxpyScale) {
  Matrix a(2, 2);
  Matrix b(2, 2);
  a.Fill(1.0f);
  b.Fill(2.0f);
  a.Add(b);
  EXPECT_EQ(a.at(0, 0), 3.0f);
  a.Axpy(0.5f, b);
  EXPECT_EQ(a.at(1, 1), 4.0f);
  a.Scale(0.25f);
  EXPECT_EQ(a.at(0, 1), 1.0f);
}

TEST(Matrix, AddRejectsShapeMismatch) {
  Matrix a(2, 2);
  Matrix b(2, 3);
  EXPECT_THROW(a.Add(b), std::logic_error);
}

TEST(Matrix, RowBroadcast) {
  Matrix y(2, 3);
  y.Fill(1.0f);
  Matrix bias(1, 3);
  bias.at(0, 0) = 1.0f;
  bias.at(0, 1) = 2.0f;
  bias.at(0, 2) = 3.0f;
  AddRowBroadcast(bias, &y);
  EXPECT_EQ(y.at(0, 0), 2.0f);
  EXPECT_EQ(y.at(1, 2), 4.0f);
}

TEST(Matrix, HadamardProduct) {
  Matrix a(1, 3);
  Matrix b(1, 3);
  for (int i = 0; i < 3; ++i) {
    a.at(0, i) = static_cast<float>(i + 1);
    b.at(0, i) = 2.0f;
  }
  Matrix out;
  Hadamard(a, b, &out);
  EXPECT_EQ(out.at(0, 2), 6.0f);
}

TEST(Matrix, SigmoidAndTanh) {
  Matrix m(1, 3);
  m.at(0, 0) = 0.0f;
  m.at(0, 1) = 100.0f;
  m.at(0, 2) = -100.0f;
  Matrix s = m;
  SigmoidInPlace(&s);
  EXPECT_NEAR(s.at(0, 0), 0.5f, 1e-6f);
  EXPECT_NEAR(s.at(0, 1), 1.0f, 1e-6f);
  EXPECT_NEAR(s.at(0, 2), 0.0f, 1e-6f);
  Matrix t = m;
  TanhInPlace(&t);
  EXPECT_NEAR(t.at(0, 0), 0.0f, 1e-6f);
  EXPECT_NEAR(t.at(0, 1), 1.0f, 1e-6f);
  EXPECT_NEAR(t.at(0, 2), -1.0f, 1e-6f);
}

TEST(Matrix, XavierInitRespectsLimit) {
  pathrank::Rng rng(3);
  Matrix m(64, 64);
  XavierInit(&m, rng);
  const float limit = std::sqrt(6.0f / 128.0f);
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_LE(std::abs(m.data()[i]), limit);
  }
  // Not all zero.
  EXPECT_GT(m.SquaredNorm(), 0.0);
}

TEST(Matrix, GaussianInitMoments) {
  pathrank::Rng rng(5);
  Matrix m(100, 100);
  GaussianInit(&m, 0.5f, rng);
  double sum = 0.0;
  for (size_t i = 0; i < m.size(); ++i) sum += m.data()[i];
  const double mean = sum / static_cast<double>(m.size());
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(std::sqrt(m.SquaredNorm() / static_cast<double>(m.size())), 0.5,
              0.02);
}

}  // namespace
}  // namespace pathrank::nn
