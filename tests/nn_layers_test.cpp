// Behavioural tests of the layers: shapes, masking semantics, freezing,
// determinism, sequence-batch utilities, losses and serialization.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "nn/embedding_layer.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/recurrent.h"
#include "nn/sequence_batch.h"
#include "nn/serialize.h"

namespace pathrank::nn {
namespace {

TEST(SequenceBatch, PadsAndRecordsLengths) {
  const std::vector<std::vector<int32_t>> seqs{{1, 2, 3}, {4, 5}, {6}};
  const auto batch = SequenceBatch::FromSequences(seqs);
  EXPECT_EQ(batch.batch_size, 3u);
  EXPECT_EQ(batch.max_len, 3u);
  EXPECT_EQ(batch.id_at(0, 2), 3);
  EXPECT_EQ(batch.id_at(1, 1), 5);
  EXPECT_EQ(batch.id_at(1, 2), 0);  // padding
  EXPECT_EQ(batch.lengths[2], 1);
}

TEST(SequenceBatch, ReversedReversesPrefixOnly) {
  const std::vector<std::vector<int32_t>> seqs{{1, 2, 3}, {4, 5}};
  const auto rev = SequenceBatch::FromSequences(seqs).Reversed();
  EXPECT_EQ(rev.id_at(0, 0), 3);
  EXPECT_EQ(rev.id_at(0, 2), 1);
  EXPECT_EQ(rev.id_at(1, 0), 5);
  EXPECT_EQ(rev.id_at(1, 1), 4);
  EXPECT_EQ(rev.id_at(1, 2), 0);  // padding untouched
}

TEST(SequenceBatch, RejectsEmptySequence) {
  const std::vector<std::vector<int32_t>> seqs{{1}, {}};
  EXPECT_THROW(SequenceBatch::FromSequences(seqs), std::logic_error);
}

TEST(EmbeddingLayer, LookupReturnsTableRows) {
  pathrank::Rng rng(2);
  EmbeddingLayer emb(10, 4, rng);
  const auto batch = SequenceBatch::FromSequences({{3, 7}, {1, 1}});
  Matrix x;
  emb.Lookup(batch, 0, &x);
  ASSERT_EQ(x.rows(), 2u);
  ASSERT_EQ(x.cols(), 4u);
  for (size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(x.at(0, c), emb.table().at(3, c));
    EXPECT_EQ(x.at(1, c), emb.table().at(1, c));
  }
}

TEST(EmbeddingLayer, GradSkipsPadding) {
  pathrank::Rng rng(3);
  EmbeddingLayer emb(10, 2, rng);
  const auto batch = SequenceBatch::FromSequences({{3, 7}, {1}});
  Matrix d(2, 2);
  d.Fill(1.0f);
  emb.parameter().ZeroGrad();
  emb.AccumulateGrad(batch, 1, d);  // t=1: row 1 is padding
  EXPECT_EQ(emb.parameter().grad.at(7, 0), 1.0f);
  // Padded token id is 0: its row must stay zero.
  EXPECT_EQ(emb.parameter().grad.at(0, 0), 0.0f);
  EXPECT_EQ(emb.parameter().grad.at(1, 0), 0.0f);
}

TEST(EmbeddingLayer, LoadTableValidatesShape) {
  pathrank::Rng rng(4);
  EmbeddingLayer emb(5, 3, rng);
  Matrix good(5, 3);
  EXPECT_NO_THROW(emb.LoadTable(good));
  Matrix bad(5, 4);
  EXPECT_THROW(emb.LoadTable(bad), std::logic_error);
}

TEST(LinearLayer, ForwardIsAffine) {
  pathrank::Rng rng(5);
  LinearLayer fc(3, 2, rng);
  // Overwrite parameters with known values.
  fc.Parameters()[0]->value.Fill(1.0f);  // W all ones
  fc.Parameters()[1]->value.Fill(0.5f);  // b
  Matrix x(1, 3);
  x.at(0, 0) = 1.0f;
  x.at(0, 1) = 2.0f;
  x.at(0, 2) = 3.0f;
  Matrix y;
  fc.Forward(x, &y);
  EXPECT_NEAR(y.at(0, 0), 6.5f, 1e-6f);
  EXPECT_NEAR(y.at(0, 1), 6.5f, 1e-6f);
}

class RecurrentShapes : public ::testing::TestWithParam<CellType> {};

TEST_P(RecurrentShapes, FinalStateShapeAndDeterminism) {
  pathrank::Rng rng(6);
  auto cell = MakeRecurrentLayer(GetParam(), 3, 5, rng, "cell");
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->input_size(), 3u);
  EXPECT_EQ(cell->hidden_size(), 5u);

  std::vector<Matrix> x_steps(4, Matrix(2, 3));
  pathrank::Rng data_rng(7);
  for (auto& x : x_steps) {
    for (size_t i = 0; i < x.size(); ++i) {
      x.data()[i] = static_cast<float>(data_rng.NextUniform(-1, 1));
    }
  }
  const std::vector<int32_t> lengths{4, 2};
  Matrix h1;
  cell->Forward(x_steps, lengths, &h1);
  ASSERT_EQ(h1.rows(), 2u);
  ASSERT_EQ(h1.cols(), 5u);
  Matrix h2;
  cell->Forward(x_steps, lengths, &h2);
  for (size_t i = 0; i < h1.size(); ++i) {
    EXPECT_EQ(h1.data()[i], h2.data()[i]);
  }
}

TEST_P(RecurrentShapes, MaskingMatchesTruncatedSequence) {
  // Row with length L inside a longer padded batch must produce the same
  // final state as running the truncated sequence alone.
  pathrank::Rng rng(8);
  auto cell = MakeRecurrentLayer(GetParam(), 2, 4, rng, "cell");

  pathrank::Rng data_rng(9);
  std::vector<Matrix> x_long(5, Matrix(1, 2));
  for (auto& x : x_long) {
    for (size_t i = 0; i < x.size(); ++i) {
      x.data()[i] = static_cast<float>(data_rng.NextUniform(-1, 1));
    }
  }
  // Padded run: length 3 of 5.
  Matrix h_padded;
  cell->Forward(x_long, {3}, &h_padded);
  // Truncated run: only the first 3 steps.
  std::vector<Matrix> x_short(x_long.begin(), x_long.begin() + 3);
  Matrix h_short;
  cell->Forward(x_short, {3}, &h_short);
  for (size_t i = 0; i < h_short.size(); ++i) {
    EXPECT_NEAR(h_padded.data()[i], h_short.data()[i], 1e-6f);
  }
}

TEST_P(RecurrentShapes, BackwardRequiresForward) {
  pathrank::Rng rng(10);
  auto cell = MakeRecurrentLayer(GetParam(), 2, 3, rng, "cell");
  Matrix d(1, 3);
  std::vector<Matrix> dx;
  EXPECT_THROW(cell->Backward(d, &dx), std::logic_error);
}

INSTANTIATE_TEST_SUITE_P(Cells, RecurrentShapes,
                         ::testing::Values(CellType::kGru, CellType::kRnn,
                                           CellType::kLstm));

TEST(CellType, NamesRoundTrip) {
  for (CellType t : {CellType::kGru, CellType::kRnn, CellType::kLstm}) {
    EXPECT_EQ(ParseCellType(CellTypeName(t)), t);
  }
  EXPECT_THROW(ParseCellType("transformer"), std::invalid_argument);
}

TEST(Loss, MseValueAndGradient) {
  const std::vector<float> p{1.0f, 0.0f};
  const std::vector<float> t{0.0f, 0.0f};
  std::vector<float> d;
  const double loss = MseLoss(p, t, &d);
  EXPECT_NEAR(loss, 0.5, 1e-6);  // (1 + 0) / 2
  EXPECT_NEAR(d[0], 1.0f, 1e-6f);  // 2*1/2
  EXPECT_NEAR(d[1], 0.0f, 1e-6f);
}

TEST(Loss, MaeValueAndGradient) {
  const std::vector<float> p{1.0f, -1.0f};
  const std::vector<float> t{0.0f, 0.0f};
  std::vector<float> d;
  const double loss = MaeLoss(p, t, &d);
  EXPECT_NEAR(loss, 1.0, 1e-6);
  EXPECT_NEAR(d[0], 0.5f, 1e-6f);
  EXPECT_NEAR(d[1], -0.5f, 1e-6f);
}

TEST(Loss, HuberBlendsRegimes) {
  const std::vector<float> small_err{0.05f};
  const std::vector<float> big_err{1.0f};
  const std::vector<float> t{0.0f};
  std::vector<float> d;
  const double l_small = HuberLoss(small_err, t, 0.1f, &d);
  EXPECT_NEAR(l_small, 0.5 * 0.05 * 0.05, 1e-9);  // quadratic zone
  const double l_big = HuberLoss(big_err, t, 0.1f, &d);
  EXPECT_NEAR(l_big, 0.1 * (1.0 - 0.05), 1e-6);  // linear zone
  EXPECT_NEAR(d[0], 0.1f, 1e-6f);
}

TEST(Serialize, MatrixRoundTrip) {
  Matrix m(3, 5);
  pathrank::Rng rng(11);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.NextUniform(-2, 2));
  }
  const std::string path =
      (std::filesystem::temp_directory_path() / "pr_mat.bin").string();
  SaveMatrix(m, path);
  const Matrix loaded = LoadMatrix(path);
  ASSERT_TRUE(loaded.SameShape(m));
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(loaded.data()[i], m.data()[i]);
  }
  std::remove(path.c_str());
}

TEST(Serialize, ParametersRoundTripByName) {
  Parameter a("layer.w", 2, 3);
  Parameter b("layer.b", 1, 3);
  a.value.Fill(1.5f);
  b.value.Fill(-0.5f);
  const std::string path =
      (std::filesystem::temp_directory_path() / "pr_params.bin").string();
  SaveParameters({&a, &b}, path);
  Parameter a2("layer.w", 2, 3);
  Parameter b2("layer.b", 1, 3);
  LoadParameters({&b2, &a2}, path);  // order independence
  EXPECT_EQ(a2.value.at(1, 2), 1.5f);
  EXPECT_EQ(b2.value.at(0, 0), -0.5f);
  std::remove(path.c_str());
}

TEST(Serialize, LoadRejectsMissingParameter) {
  Parameter a("layer.w", 2, 2);
  const std::string path =
      (std::filesystem::temp_directory_path() / "pr_params2.bin").string();
  SaveParameters({&a}, path);
  Parameter missing("layer.other", 2, 2);
  EXPECT_THROW(LoadParameters({&missing}, path), std::runtime_error);
  Parameter wrong_shape("layer.w", 3, 2);
  EXPECT_THROW(LoadParameters({&wrong_shape}, path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pathrank::nn
