// Finite-difference gradient verification for every trainable layer.
//
// Loss = sum(output * R) for a fixed random projection R; analytic
// gradients from Backward are compared against central differences on each
// parameter (and on the inputs). Float32 parameters limit achievable
// precision, so tolerances are relative with a small absolute floor.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/embedding_layer.h"
#include "nn/linear.h"
#include "nn/recurrent.h"
#include "nn/sequence_batch.h"

namespace pathrank::nn {
namespace {

constexpr float kEps = 2e-3f;
constexpr double kRelTol = 3e-2;
constexpr double kAbsTol = 2e-3;

void FillRandom(Matrix* m, pathrank::Rng& rng, double scale = 1.0) {
  for (size_t i = 0; i < m->size(); ++i) {
    m->data()[i] = static_cast<float>(rng.NextUniform(-scale, scale));
  }
}

void ExpectGradClose(double analytic, double numeric, const std::string& ctx) {
  const double tol = kAbsTol + kRelTol * std::abs(numeric);
  EXPECT_NEAR(analytic, numeric, tol) << ctx;
}

/// Checks d(loss)/d(param[i]) for every element of `param` given a loss
/// callback that re-runs the forward pass.
void CheckParameterGradient(Parameter& param,
                            const std::function<double()>& loss_fn,
                            const Matrix& analytic_grad,
                            const std::string& ctx) {
  for (size_t i = 0; i < param.value.size(); ++i) {
    const float saved = param.value.data()[i];
    param.value.data()[i] = saved + kEps;
    const double up = loss_fn();
    param.value.data()[i] = saved - kEps;
    const double down = loss_fn();
    param.value.data()[i] = saved;
    const double numeric = (up - down) / (2.0 * kEps);
    ExpectGradClose(analytic_grad.data()[i], numeric,
                    ctx + " elem " + std::to_string(i));
  }
}

double WeightedSum(const Matrix& out, const Matrix& weights) {
  double sum = 0.0;
  for (size_t i = 0; i < out.size(); ++i) {
    sum += static_cast<double>(out.data()[i]) * weights.data()[i];
  }
  return sum;
}

TEST(GradCheck, LinearLayer) {
  pathrank::Rng rng(21);
  LinearLayer fc(3, 2, rng);
  Matrix x(2, 3);
  FillRandom(&x, rng);
  Matrix r(2, 2);
  FillRandom(&r, rng);

  auto loss_fn = [&]() {
    Matrix y;
    LinearLayer& mutable_fc = fc;
    mutable_fc.Forward(x, &y);
    return WeightedSum(y, r);
  };

  Matrix y;
  fc.Forward(x, &y);
  for (Parameter* p : fc.Parameters()) p->ZeroGrad();
  Matrix dx;
  fc.Backward(r, &dx);

  CheckParameterGradient(*fc.Parameters()[0], loss_fn,
                         fc.Parameters()[0]->grad, "linear W");
  CheckParameterGradient(*fc.Parameters()[1], loss_fn,
                         fc.Parameters()[1]->grad, "linear b");

  // Input gradient.
  for (size_t i = 0; i < x.size(); ++i) {
    const float saved = x.data()[i];
    x.data()[i] = saved + kEps;
    const double up = loss_fn();
    x.data()[i] = saved - kEps;
    const double down = loss_fn();
    x.data()[i] = saved;
    ExpectGradClose(dx.data()[i], (up - down) / (2.0 * kEps), "linear dX");
  }
}

TEST(GradCheck, EmbeddingLayer) {
  pathrank::Rng rng(22);
  EmbeddingLayer emb(6, 3, rng);
  const auto batch = SequenceBatch::FromSequences({{2, 4}, {5}});
  Matrix r0(2, 3);
  Matrix r1(2, 3);
  FillRandom(&r0, rng);
  FillRandom(&r1, rng);

  auto loss_fn = [&]() {
    Matrix x0;
    Matrix x1;
    emb.Lookup(batch, 0, &x0);
    emb.Lookup(batch, 1, &x1);
    // Padded rows contribute zero to the loss (mask applied manually).
    double sum = WeightedSum(x0, r0);
    for (size_t b = 0; b < batch.batch_size; ++b) {
      if (batch.lengths[b] < 2) continue;
      for (size_t c = 0; c < 3; ++c) {
        sum += static_cast<double>(x1.at(b, c)) * r1.at(b, c);
      }
    }
    return sum;
  };

  emb.parameter().ZeroGrad();
  emb.AccumulateGrad(batch, 0, r0);
  emb.AccumulateGrad(batch, 1, r1);
  CheckParameterGradient(emb.parameter(), loss_fn, emb.parameter().grad,
                         "embedding table");
}

class RecurrentGradCheck : public ::testing::TestWithParam<CellType> {};

TEST_P(RecurrentGradCheck, ParameterAndInputGradients) {
  pathrank::Rng rng(23 + static_cast<int>(GetParam()));
  auto cell = MakeRecurrentLayer(GetParam(), 2, 3, rng, "cell");
  const std::vector<int32_t> lengths{3, 2};  // includes a masked tail

  std::vector<Matrix> x_steps(3, Matrix(2, 2));
  for (auto& x : x_steps) FillRandom(&x, rng, 0.8);
  Matrix r(2, 3);
  FillRandom(&r, rng);

  auto loss_fn = [&]() {
    Matrix h;
    cell->Forward(x_steps, lengths, &h);
    return WeightedSum(h, r);
  };

  Matrix h;
  cell->Forward(x_steps, lengths, &h);
  for (Parameter* p : cell->Parameters()) p->ZeroGrad();
  std::vector<Matrix> dx;
  cell->Backward(r, &dx);

  for (Parameter* p : cell->Parameters()) {
    CheckParameterGradient(*p, loss_fn, p->grad,
                           cell->Name() + " param " + p->name);
  }

  // Input gradients, including that masked steps produce zero gradient for
  // the short row.
  for (size_t t = 0; t < x_steps.size(); ++t) {
    for (size_t i = 0; i < x_steps[t].size(); ++i) {
      const float saved = x_steps[t].data()[i];
      x_steps[t].data()[i] = saved + kEps;
      const double up = loss_fn();
      x_steps[t].data()[i] = saved - kEps;
      const double down = loss_fn();
      x_steps[t].data()[i] = saved;
      ExpectGradClose(dx[t].data()[i], (up - down) / (2.0 * kEps),
                      cell->Name() + " dX step " + std::to_string(t));
    }
  }
}

TEST_P(RecurrentGradCheck, PerStepGradients) {
  // BackwardSteps: loss reads EVERY hidden state, weighted per step —
  // the mean-pooling head's gradient path.
  pathrank::Rng rng(41 + static_cast<int>(GetParam()));
  auto cell = MakeRecurrentLayer(GetParam(), 2, 3, rng, "cell");
  const std::vector<int32_t> lengths{3, 2};

  std::vector<Matrix> x_steps(3, Matrix(2, 2));
  for (auto& x : x_steps) FillRandom(&x, rng, 0.8);
  std::vector<Matrix> r(3, Matrix(2, 3));
  for (size_t t = 0; t < 3; ++t) {
    FillRandom(&r[t], rng);
    // Rows past the true length must carry zero gradient (contract).
    for (size_t b = 0; b < 2; ++b) {
      if (static_cast<int32_t>(t) >= lengths[b]) {
        for (size_t c = 0; c < 3; ++c) r[t].at(b, c) = 0.0f;
      }
    }
  }

  auto loss_fn = [&]() {
    Matrix h;
    cell->Forward(x_steps, lengths, &h);
    double sum = 0.0;
    for (size_t t = 0; t < 3; ++t) {
      sum += WeightedSum(cell->hidden_state(t), r[t]);
    }
    return sum;
  };

  Matrix h;
  cell->Forward(x_steps, lengths, &h);
  for (Parameter* p : cell->Parameters()) p->ZeroGrad();
  std::vector<Matrix> dx;
  cell->BackwardSteps(r, &dx);

  for (Parameter* p : cell->Parameters()) {
    CheckParameterGradient(*p, loss_fn, p->grad,
                           cell->Name() + " step-grad param " + p->name);
  }
  for (size_t t = 0; t < x_steps.size(); ++t) {
    for (size_t i = 0; i < x_steps[t].size(); ++i) {
      const float saved = x_steps[t].data()[i];
      x_steps[t].data()[i] = saved + kEps;
      const double up = loss_fn();
      x_steps[t].data()[i] = saved - kEps;
      const double down = loss_fn();
      x_steps[t].data()[i] = saved;
      ExpectGradClose(dx[t].data()[i], (up - down) / (2.0 * kEps),
                      cell->Name() + " step-grad dX step " +
                          std::to_string(t));
    }
  }
}

TEST_P(RecurrentGradCheck, HiddenStateAccessorMatchesFinal) {
  pathrank::Rng rng(51);
  auto cell = MakeRecurrentLayer(GetParam(), 2, 3, rng, "cell");
  std::vector<Matrix> x_steps(4, Matrix(2, 2));
  for (auto& x : x_steps) FillRandom(&x, rng);
  const std::vector<int32_t> lengths{4, 4};
  Matrix h;
  cell->Forward(x_steps, lengths, &h);
  const Matrix& last = cell->hidden_state(3);
  for (size_t i = 0; i < h.size(); ++i) {
    EXPECT_EQ(h.data()[i], last.data()[i]);
  }
}

TEST_P(RecurrentGradCheck, MaskedStepsGetZeroInputGradient) {
  pathrank::Rng rng(31);
  auto cell = MakeRecurrentLayer(GetParam(), 2, 3, rng, "cell");
  const std::vector<int32_t> lengths{1};  // only step 0 is real
  std::vector<Matrix> x_steps(3, Matrix(1, 2));
  for (auto& x : x_steps) FillRandom(&x, rng);
  Matrix h;
  cell->Forward(x_steps, lengths, &h);
  Matrix r(1, 3);
  FillRandom(&r, rng);
  std::vector<Matrix> dx;
  cell->Backward(r, &dx);
  for (size_t t = 1; t < 3; ++t) {
    for (size_t i = 0; i < dx[t].size(); ++i) {
      EXPECT_EQ(dx[t].data()[i], 0.0f)
          << cell->Name() << " step " << t << " should be masked";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Cells, RecurrentGradCheck,
                         ::testing::Values(CellType::kGru, CellType::kRnn,
                                           CellType::kLstm));

}  // namespace
}  // namespace pathrank::nn
