// Optimizers: SGD step identity, momentum accumulation, Adam convergence,
// frozen-parameter semantics and gradient clipping.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/optimizer.h"
#include "nn/parameter.h"
#include "nn/scheduler.h"

namespace pathrank::nn {
namespace {

TEST(Sgd, PlainStepIsAxpy) {
  Parameter p("w", 1, 2);
  p.value.Fill(1.0f);
  p.grad.Fill(0.5f);
  Sgd sgd(0.1);
  sgd.Step({&p});
  EXPECT_NEAR(p.value.at(0, 0), 0.95f, 1e-6f);
}

TEST(Sgd, MomentumAccumulates) {
  Parameter p("w", 1, 1);
  p.value.Fill(0.0f);
  p.grad.Fill(1.0f);
  Sgd sgd(1.0, 0.9);
  sgd.Step({&p});  // v=1, w=-1
  EXPECT_NEAR(p.value.at(0, 0), -1.0f, 1e-6f);
  sgd.Step({&p});  // v=1.9, w=-2.9
  EXPECT_NEAR(p.value.at(0, 0), -2.9f, 1e-6f);
}

TEST(Sgd, FrozenParameterUntouched) {
  Parameter p("w", 1, 1);
  p.value.Fill(3.0f);
  p.grad.Fill(1.0f);
  p.frozen = true;
  Sgd sgd(0.5);
  sgd.Step({&p});
  EXPECT_EQ(p.value.at(0, 0), 3.0f);
}

TEST(Adam, FirstStepHasUnitScale) {
  // With bias correction, the first Adam step is ~lr * sign(grad).
  Parameter p("w", 1, 1);
  p.value.Fill(0.0f);
  p.grad.Fill(123.0f);
  Adam adam(0.01);
  adam.Step({&p});
  EXPECT_NEAR(p.value.at(0, 0), -0.01f, 1e-4f);
}

TEST(Adam, MinimisesQuadratic) {
  // f(w) = 0.5 * (w - 3)^2; gradient w - 3.
  Parameter p("w", 1, 1);
  p.value.Fill(0.0f);
  Adam adam(0.1);
  for (int i = 0; i < 500; ++i) {
    p.grad.at(0, 0) = p.value.at(0, 0) - 3.0f;
    adam.Step({&p});
  }
  EXPECT_NEAR(p.value.at(0, 0), 3.0f, 0.05f);
}

TEST(Adam, FrozenParameterUntouched) {
  Parameter p("w", 2, 2);
  p.value.Fill(1.0f);
  p.grad.Fill(5.0f);
  p.frozen = true;
  Adam adam(0.1);
  adam.Step({&p});
  for (size_t i = 0; i < p.value.size(); ++i) {
    EXPECT_EQ(p.value.data()[i], 1.0f);
  }
}

TEST(Adam, WeightDecayShrinksWeights) {
  Parameter p("w", 1, 1);
  p.value.Fill(10.0f);
  p.grad.Fill(0.0f);
  Adam adamw(0.1, 0.9, 0.999, 1e-8, 0.1);
  adamw.Step({&p});
  EXPECT_LT(p.value.at(0, 0), 10.0f);
}

TEST(Clip, NormAboveThresholdIsScaled) {
  Parameter p("w", 1, 2);
  p.grad.at(0, 0) = 3.0f;
  p.grad.at(0, 1) = 4.0f;  // norm 5
  const double pre = ClipGradientNorm({&p}, 1.0);
  EXPECT_NEAR(pre, 5.0, 1e-9);
  EXPECT_NEAR(std::sqrt(p.grad.SquaredNorm()), 1.0, 1e-6);
}

TEST(Clip, NormBelowThresholdUntouched) {
  Parameter p("w", 1, 2);
  p.grad.at(0, 0) = 0.3f;
  p.grad.at(0, 1) = 0.4f;
  ClipGradientNorm({&p}, 1.0);
  EXPECT_NEAR(p.grad.at(0, 0), 0.3f, 1e-7f);
}

TEST(ZeroGradients, ClearsAll) {
  Parameter a("a", 2, 2);
  Parameter b("b", 1, 4);
  a.grad.Fill(1.0f);
  b.grad.Fill(2.0f);
  ZeroGradients({&a, &b});
  EXPECT_DOUBLE_EQ(a.grad.SquaredNorm(), 0.0);
  EXPECT_DOUBLE_EQ(b.grad.SquaredNorm(), 0.0);
}

TEST(Schedule, ConstantIsConstant) {
  ScheduleConfig cfg;
  cfg.type = ScheduleType::kConstant;
  cfg.base_lr = 0.003;
  EXPECT_DOUBLE_EQ(LearningRateAt(cfg, 0), 0.003);
  EXPECT_DOUBLE_EQ(LearningRateAt(cfg, 100), 0.003);
}

TEST(Schedule, StepDecayHalves) {
  ScheduleConfig cfg;
  cfg.type = ScheduleType::kStepDecay;
  cfg.base_lr = 1.0;
  cfg.decay = 0.5;
  cfg.step_every = 2;
  EXPECT_DOUBLE_EQ(LearningRateAt(cfg, 0), 1.0);
  EXPECT_DOUBLE_EQ(LearningRateAt(cfg, 1), 1.0);
  EXPECT_DOUBLE_EQ(LearningRateAt(cfg, 2), 0.5);
  EXPECT_DOUBLE_EQ(LearningRateAt(cfg, 4), 0.25);
}

TEST(Schedule, CosineAnnealsToMin) {
  ScheduleConfig cfg;
  cfg.type = ScheduleType::kCosine;
  cfg.base_lr = 1.0;
  cfg.min_lr = 0.1;
  cfg.total_epochs = 11;
  EXPECT_NEAR(LearningRateAt(cfg, 0), 1.0, 1e-12);
  EXPECT_NEAR(LearningRateAt(cfg, 10), 0.1, 1e-12);
  EXPECT_NEAR(LearningRateAt(cfg, 5), 0.55, 1e-12);  // midpoint
  // Monotone decreasing.
  for (int e = 1; e <= 10; ++e) {
    EXPECT_LE(LearningRateAt(cfg, e), LearningRateAt(cfg, e - 1) + 1e-12);
  }
}

}  // namespace
}  // namespace pathrank::nn
