// Ranking metrics: MAE/MARE, Kendall tau-b, Spearman rho, NDCG, top-1 and
// the per-query accumulator, validated against closed-form references.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.h"
#include "metrics/ranking_metrics.h"

namespace pathrank::metrics {
namespace {

TEST(Mae, ZeroForPerfectPredictions) {
  const std::vector<double> t{0.1, 0.5, 0.9};
  EXPECT_DOUBLE_EQ(MeanAbsoluteError(t, t), 0.0);
}

TEST(Mae, KnownValue) {
  const std::vector<double> p{0.0, 1.0};
  const std::vector<double> t{0.5, 0.5};
  EXPECT_DOUBLE_EQ(MeanAbsoluteError(p, t), 0.5);
}

TEST(Mare, NormalisesByTruthMagnitude) {
  const std::vector<double> p{1.1, 2.2};
  const std::vector<double> t{1.0, 2.0};
  // |0.1| + |0.2| over |1| + |2|.
  EXPECT_NEAR(MeanAbsoluteRelativeError(p, t), 0.1, 1e-12);
}

TEST(Mare, ZeroTruthGivesZero) {
  const std::vector<double> p{0.5};
  const std::vector<double> t{0.0};
  EXPECT_DOUBLE_EQ(MeanAbsoluteRelativeError(p, t), 0.0);
}

TEST(KendallTau, PerfectAgreement) {
  const std::vector<double> a{1, 2, 3, 4, 5};
  const std::vector<double> b{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(KendallTau(a, b), 1.0);
}

TEST(KendallTau, PerfectDisagreement) {
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(KendallTau(a, b), -1.0);
}

TEST(KendallTau, KnownMixedCase) {
  // Classic example: one discordant pair among n=3 -> tau = 1/3.
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{1, 3, 2};
  EXPECT_NEAR(KendallTau(a, b), 1.0 / 3.0, 1e-12);
}

TEST(KendallTau, ConstantInputGivesZero) {
  const std::vector<double> a{1, 1, 1};
  const std::vector<double> b{1, 2, 3};
  EXPECT_DOUBLE_EQ(KendallTau(a, b), 0.0);
}

TEST(KendallTau, TauBHandlesTies) {
  // With ties in one list, |tau-b| stays <= 1 and uses the tie correction.
  const std::vector<double> a{1, 1, 2, 3};
  const std::vector<double> b{1, 2, 3, 4};
  const double tau = KendallTau(a, b);
  EXPECT_GT(tau, 0.0);
  EXPECT_LE(tau, 1.0);
  // concordant=5, discordant=0, ties_a=1: tau_b = 5/sqrt(6*5).
  EXPECT_NEAR(tau, 5.0 / std::sqrt(30.0), 1e-12);
}

TEST(FractionalRanks, AveragesTies) {
  const std::vector<double> v{10.0, 20.0, 20.0, 30.0};
  const auto r = FractionalRanks(v);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(SpearmanRho, PerfectMonotone) {
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{2, 4, 8, 16};  // nonlinear but monotone
  EXPECT_DOUBLE_EQ(SpearmanRho(a, b), 1.0);
}

TEST(SpearmanRho, PerfectReversal) {
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(SpearmanRho(a, b), -1.0);
}

TEST(SpearmanRho, MatchesClassicFormulaWithoutTies) {
  // Without ties, rho = 1 - 6*sum(d^2)/(n(n^2-1)).
  const std::vector<double> a{1, 2, 3, 4, 5};
  const std::vector<double> b{3, 1, 4, 2, 5};
  const auto ra = FractionalRanks(a);
  const auto rb = FractionalRanks(b);
  double d2 = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    d2 += (ra[i] - rb[i]) * (ra[i] - rb[i]);
  }
  const double classic = 1.0 - 6.0 * d2 / (5.0 * 24.0);
  EXPECT_NEAR(SpearmanRho(a, b), classic, 1e-12);
}

TEST(SpearmanRho, ConstantInputGivesZero) {
  const std::vector<double> a{2, 2, 2};
  const std::vector<double> b{1, 2, 3};
  EXPECT_DOUBLE_EQ(SpearmanRho(a, b), 0.0);
}

class CorrelationProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CorrelationProperty, BothInRangeAndSignConsistent) {
  pathrank::Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 2 + rng.NextBounded(15);
    std::vector<double> a(n);
    std::vector<double> b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = rng.NextDouble();
      b[i] = rng.NextDouble();
    }
    const double tau = KendallTau(a, b);
    const double rho = SpearmanRho(a, b);
    EXPECT_GE(tau, -1.0 - 1e-12);
    EXPECT_LE(tau, 1.0 + 1e-12);
    EXPECT_GE(rho, -1.0 - 1e-12);
    EXPECT_LE(rho, 1.0 + 1e-12);
  }
}

TEST_P(CorrelationProperty, InvariantUnderMonotoneTransform) {
  pathrank::Rng rng(GetParam() + 500);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 3 + rng.NextBounded(10);
    std::vector<double> a(n);
    std::vector<double> b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = rng.NextDouble();
      b[i] = rng.NextDouble();
    }
    std::vector<double> a_scaled(n);
    for (size_t i = 0; i < n; ++i) a_scaled[i] = std::exp(3.0 * a[i]) + 7.0;
    EXPECT_NEAR(KendallTau(a, b), KendallTau(a_scaled, b), 1e-12);
    EXPECT_NEAR(SpearmanRho(a, b), SpearmanRho(a_scaled, b), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorrelationProperty,
                         ::testing::Values(1, 2, 3, 4));

TEST(TopOne, AgreesAndDisagrees) {
  const std::vector<double> truth{0.2, 0.9, 0.5};
  const std::vector<double> good{0.1, 0.8, 0.3};
  const std::vector<double> bad{0.9, 0.1, 0.3};
  EXPECT_DOUBLE_EQ(TopOneAccuracy(good, truth), 1.0);
  EXPECT_DOUBLE_EQ(TopOneAccuracy(bad, truth), 0.0);
}

TEST(Ndcg, PerfectOrderIsOne) {
  const std::vector<double> truth{0.9, 0.5, 0.1};
  EXPECT_NEAR(Ndcg(truth, truth), 1.0, 1e-12);
}

TEST(Ndcg, WorseOrderScoresLess) {
  const std::vector<double> truth{0.9, 0.5, 0.1};
  const std::vector<double> reversed{0.1, 0.5, 0.9};
  EXPECT_LT(Ndcg(reversed, truth), 1.0);
  EXPECT_GT(Ndcg(reversed, truth), 0.0);
}

TEST(Accumulator, AggregatesAcrossQueries) {
  MetricAccumulator acc;
  const std::vector<double> t1{0.2, 0.8};
  const std::vector<double> p1{0.2, 0.8};  // perfect
  const std::vector<double> t2{0.1, 0.9};
  const std::vector<double> p2{0.9, 0.1};  // reversed
  acc.AddQuery(p1, t1);
  acc.AddQuery(p2, t2);
  EXPECT_EQ(acc.num_queries(), 2u);
  EXPECT_NEAR(acc.mean_kendall_tau(), 0.0, 1e-12);  // +1 and -1 average
  EXPECT_GT(acc.mae(), 0.0);
  // MAE across all 4 points: (0 + 0 + 0.8 + 0.8) / 4.
  EXPECT_NEAR(acc.mae(), 0.4, 1e-12);
  // MARE: 1.6 / (0.2+0.8+0.1+0.9).
  EXPECT_NEAR(acc.mare(), 0.8, 1e-12);
}

}  // namespace
}  // namespace pathrank::metrics
