// Model hot-swap: atomic cut-over semantics (every response attributable
// to exactly one snapshot, no torn reads), old-snapshot lifetime (freed
// only after the last in-flight reference drops), swap under concurrent
// load with no lost requests, and swap visibility through the
// BatchingQueue.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/model.h"
#include "graph/network_builder.h"
#include "serving/batching_queue.h"
#include "serving/model_snapshot.h"
#include "serving/serving_engine.h"

namespace pathrank::serving {
namespace {

core::PathRankConfig ConfigWithSeed(uint64_t seed) {
  core::PathRankConfig cfg;
  cfg.embedding_dim = 8;
  cfg.hidden_size = 12;
  cfg.seed = seed;
  return cfg;
}

struct SwapFixture {
  graph::RoadNetwork network = graph::BuildTestNetwork();
  core::PathRankModel model_a;
  core::PathRankModel model_b;
  data::CandidateGenConfig gen;
  std::vector<RankQuery> queries = {{0, 63}, {7, 56}, {3, 60},
                                    {21, 42}, {14, 49}, {8, 55}};

  SwapFixture()
      : model_a(network.num_vertices(), ConfigWithSeed(3)),
        model_b(network.num_vertices(), ConfigWithSeed(31)) {
    gen.k = 5;
  }
};

/// True when `got` is bitwise identical to `expected` (scores and paths).
bool SameRanking(const std::vector<ScoredPath>& expected,
                 const std::vector<ScoredPath>& got) {
  if (expected.size() != got.size()) return false;
  for (size_t i = 0; i < expected.size(); ++i) {
    if (expected[i].score != got[i].score ||
        expected[i].path.vertices != got[i].path.vertices) {
      return false;
    }
  }
  return true;
}

TEST(HotSwap, SwapServesNewSnapshotAndReturnsOld) {
  SwapFixture fx;
  const auto snap_a = ModelSnapshot::Capture(fx.model_a);
  const auto snap_b = ModelSnapshot::Capture(fx.model_b);
  ServingEngine engine(fx.network, snap_a);

  const ServingEngine reference_b(fx.network, snap_b);
  const auto& q = fx.queries[0];
  const auto ref_a = engine.Rank(q.source, q.destination, fx.gen);
  const auto ref_b = reference_b.Rank(q.source, q.destination, fx.gen);
  ASSERT_FALSE(SameRanking(ref_a, ref_b))
      << "models too similar to attribute responses";

  EXPECT_EQ(engine.swap_count(), 0u);
  const auto old = engine.SwapSnapshot(snap_b);
  EXPECT_EQ(old.get(), snap_a.get());
  EXPECT_EQ(engine.shared_snapshot().get(), snap_b.get());
  EXPECT_EQ(engine.swap_count(), 1u);
  EXPECT_TRUE(SameRanking(ref_b, engine.Rank(q.source, q.destination, fx.gen)));
}

TEST(HotSwap, RejectsMismatchedSnapshot) {
  SwapFixture fx;
  ServingEngine engine(fx.network, ModelSnapshot::Capture(fx.model_a));
  const core::PathRankModel tiny(4, ConfigWithSeed(1));
  EXPECT_THROW(engine.SwapSnapshot(ModelSnapshot::Capture(tiny)),
               std::exception);
}

TEST(HotSwap, OldSnapshotFreedOnlyAfterLastInFlightReference) {
  SwapFixture fx;
  auto snap_a = ModelSnapshot::Capture(fx.model_a);
  std::weak_ptr<const ModelSnapshot> weak_a = snap_a;
  ServingEngine engine(fx.network, snap_a);
  snap_a.reset();  // the engine now holds the only long-lived reference

  // Simulate an in-flight request: ScoreCoalesced hands out the snapshot
  // it scored on, exactly the reference a request holds while running.
  const auto paths = GenerateCandidates(fx.network, 0, 63, fx.gen);
  std::vector<std::vector<int32_t>> seqs;
  for (const auto& p : paths) {
    seqs.push_back(PathToSequence(p));  // the real request-path encoding
  }
  std::shared_ptr<const ModelSnapshot> in_flight;
  engine.ScoreCoalesced(nn::SequenceBatch::FromSequences(seqs), &in_flight);
  ASSERT_EQ(in_flight.get(), weak_a.lock().get());

  auto old = engine.SwapSnapshot(ModelSnapshot::Capture(fx.model_b));
  old.reset();
  // The engine dropped A, but the in-flight request still pins it.
  EXPECT_FALSE(weak_a.expired());
  in_flight.reset();
  EXPECT_TRUE(weak_a.expired());
}

TEST(HotSwap, ConcurrentLoadLosesNoRequestsAndEveryResponseIsAttributable) {
  SwapFixture fx;
  const auto snap_a = ModelSnapshot::Capture(fx.model_a);
  const auto snap_b = ModelSnapshot::Capture(fx.model_b);
  ServingOptions options;
  options.num_replicas = 3;
  options.candidates = fx.gen;
  ServingEngine engine(fx.network, snap_a, options);

  // Per-query references on both snapshots, via single-threaded engines.
  const ServingEngine reference_b(fx.network, snap_b, options);
  std::vector<std::vector<ScoredPath>> ref_a;
  std::vector<std::vector<ScoredPath>> ref_b;
  for (const auto& q : fx.queries) {
    ref_a.push_back(engine.Rank(q.source, q.destination));
    ref_b.push_back(reference_b.Rank(q.source, q.destination));
  }

  constexpr size_t kThreads = 8;
  constexpr size_t kRounds = 12;
  std::atomic<size_t> completed{0};
  std::atomic<int> unattributable{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t round = 0; round < kRounds; ++round) {
        for (size_t i = 0; i < fx.queries.size(); ++i) {
          const size_t q = (t + round + i) % fx.queries.size();
          const auto got =
              engine.Rank(fx.queries[q].source, fx.queries[q].destination);
          // A torn read (half old weights, half new) would match neither.
          if (!SameRanking(ref_a[q], got) && !SameRanking(ref_b[q], got)) {
            unattributable.fetch_add(1);
          }
          completed.fetch_add(1);
        }
      }
    });
  }
  // Flip snapshots back and forth while the load runs.
  constexpr int kSwaps = 20;
  for (int s = 0; s < kSwaps; ++s) {
    engine.SwapSnapshot(s % 2 == 0 ? snap_b : snap_a);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(completed.load(), kThreads * kRounds * fx.queries.size());
  EXPECT_EQ(unattributable.load(), 0);
  EXPECT_EQ(engine.swap_count(), static_cast<uint64_t>(kSwaps));

  // After the dust settles the engine serves the last-swapped snapshot.
  const auto final_snapshot = engine.shared_snapshot();
  EXPECT_EQ(final_snapshot.get(), (kSwaps % 2 == 1 ? snap_b : snap_a).get());
}

TEST(HotSwap, BatchedResponsesAttributableDuringSwaps) {
  SwapFixture fx;
  const auto snap_a = ModelSnapshot::Capture(fx.model_a);
  const auto snap_b = ModelSnapshot::Capture(fx.model_b);
  ServingEngine engine(fx.network, snap_a);
  const ServingEngine reference_b(fx.network, snap_b);

  std::vector<std::vector<ScoredPath>> ref_a;
  std::vector<std::vector<ScoredPath>> ref_b;
  for (const auto& q : fx.queries) {
    ref_a.push_back(engine.Rank(q.source, q.destination, fx.gen));
    ref_b.push_back(reference_b.Rank(q.source, q.destination, fx.gen));
  }

  BatchingQueue queue(engine);
  std::atomic<int> unattributable{0};
  std::atomic<size_t> completed{0};
  constexpr size_t kThreads = 4;
  constexpr size_t kRounds = 8;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t round = 0; round < kRounds; ++round) {
        const size_t q = (t + round) % fx.queries.size();
        const auto got =
            queue.SubmitRank(fx.queries[q].source, fx.queries[q].destination,
                             fx.gen)
                .get();
        if (!SameRanking(ref_a[q], got) && !SameRanking(ref_b[q], got)) {
          unattributable.fetch_add(1);
        }
        completed.fetch_add(1);
      }
    });
  }
  for (int s = 0; s < 10; ++s) {
    engine.SwapSnapshot(s % 2 == 0 ? snap_b : snap_a);
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(completed.load(), kThreads * kRounds);
  EXPECT_EQ(unattributable.load(), 0);
}

}  // namespace
}  // namespace pathrank::serving
