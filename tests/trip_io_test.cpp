// Trip-corpus CSV persistence round trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "graph/network_builder.h"
#include "traj/trajectory_generator.h"
#include "traj/trip_io.h"

namespace pathrank::traj {
namespace {

using graph::BuildTestNetwork;

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(TripIo, RoundTripPreservesPaths) {
  const auto net = BuildTestNetwork(3);
  TrajectoryGeneratorConfig cfg;
  cfg.num_drivers = 4;
  cfg.num_trips = 15;
  cfg.min_trip_distance_m = 1200.0;
  const auto trips = TrajectoryGenerator(net, cfg).Generate();

  const std::string path = TempPath("pr_trips.csv");
  SaveTrips(trips, path);
  const auto loaded = LoadTrips(net, path);
  ASSERT_EQ(loaded.size(), trips.size());
  for (size_t i = 0; i < trips.size(); ++i) {
    EXPECT_EQ(loaded[i].driver_id, trips[i].driver_id);
    EXPECT_EQ(loaded[i].path.vertices, trips[i].path.vertices);
    EXPECT_EQ(loaded[i].path.edges, trips[i].path.edges);
    EXPECT_NEAR(loaded[i].path.length_m, trips[i].path.length_m, 1e-6);
  }
  std::remove(path.c_str());
}

TEST(TripIo, RejectsDisconnectedSequence) {
  const auto net = BuildTestNetwork(3);
  const std::string path = TempPath("pr_trips_bad.csv");
  {
    std::ofstream out(path);
    out << "driver_id,vertices\n";
    out << "0,0;63\n";  // not adjacent in the grid
  }
  EXPECT_THROW(LoadTrips(net, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TripIo, RejectsOutOfRangeVertex) {
  const auto net = BuildTestNetwork(3);
  const std::string path = TempPath("pr_trips_bad2.csv");
  {
    std::ofstream out(path);
    out << "driver_id,vertices\n";
    out << "0,0;99999\n";
  }
  EXPECT_THROW(LoadTrips(net, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TripIo, RejectsSingleVertexTrip) {
  const auto net = BuildTestNetwork(3);
  const std::string path = TempPath("pr_trips_bad3.csv");
  {
    std::ofstream out(path);
    out << "driver_id,vertices\n";
    out << "0,5\n";
  }
  EXPECT_THROW(LoadTrips(net, path), std::runtime_error);
  std::remove(path.c_str());
}

// A non-numeric driver_id used to escape as a bare std::invalid_argument
// out of std::stoi and terminate the process; now it is a runtime_error
// naming the file, line and token.
TEST(TripIo, MalformedDriverIdReportsFileLineToken) {
  const auto net = BuildTestNetwork(3);
  const std::string path = TempPath("pr_trips_badid.csv");
  {
    std::ofstream out(path);
    out << "driver_id,vertices\n";
    out << "0,0;1\n";
    out << "bogus,0;1\n";
  }
  try {
    LoadTrips(net, path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path + ":3"), std::string::npos) << what;
    EXPECT_NE(what.find("'bogus'"), std::string::npos) << what;
    EXPECT_NE(what.find("driver_id"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(TripIo, MalformedVertexTokenReportsFileLineToken) {
  const auto net = BuildTestNetwork(3);
  const std::string path = TempPath("pr_trips_badtok.csv");
  {
    std::ofstream out(path);
    out << "driver_id,vertices\n";
    out << "0,0;1;zz\n";
  }
  try {
    LoadTrips(net, path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path + ":2"), std::string::npos) << what;
    EXPECT_NE(what.find("'zz'"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(TripIo, NegativeVertexTokenRejected) {
  // std::stoul would wrap "-1" modularly into a huge VertexId; the
  // checked parse refuses it outright.
  const auto net = BuildTestNetwork(3);
  const std::string path = TempPath("pr_trips_badneg.csv");
  {
    std::ofstream out(path);
    out << "driver_id,vertices\n";
    out << "0,0;-1\n";
  }
  EXPECT_THROW(LoadTrips(net, path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pathrank::traj
