// PathRank model behaviour: output range, variants (PR-A1 freeze vs PR-A2
// fine-tune), cell/bidirectional configurations, gradient flow, and
// end-to-end ranking through the serving engine.
#include <gtest/gtest.h>

#include <cmath>

#include "core/model.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "graph/network_builder.h"
#include "serving/serving_engine.h"

namespace pathrank::core {
namespace {

nn::SequenceBatch ToyBatch() {
  return nn::SequenceBatch::FromSequences(
      {{1, 2, 3, 4}, {5, 6}, {7, 8, 9}});
}

PathRankConfig SmallConfig() {
  PathRankConfig cfg;
  cfg.embedding_dim = 8;
  cfg.hidden_size = 12;
  cfg.seed = 3;
  return cfg;
}

TEST(PathRankModel, ScoresAreInUnitInterval) {
  PathRankModel model(16, SmallConfig());
  const auto scores = model.Forward(ToyBatch());
  ASSERT_EQ(scores.size(), 3u);
  for (float s : scores) {
    EXPECT_GT(s, 0.0f);
    EXPECT_LT(s, 1.0f);
  }
}

TEST(PathRankModel, DeterministicForward) {
  PathRankModel model(16, SmallConfig());
  const auto s1 = model.Forward(ToyBatch());
  const auto s2 = model.Forward(ToyBatch());
  for (size_t i = 0; i < s1.size(); ++i) EXPECT_EQ(s1[i], s2[i]);
}

TEST(PathRankModel, SameSeedSameModel) {
  PathRankModel a(16, SmallConfig());
  PathRankModel b(16, SmallConfig());
  const auto sa = a.Forward(ToyBatch());
  const auto sb = b.Forward(ToyBatch());
  for (size_t i = 0; i < sa.size(); ++i) EXPECT_EQ(sa[i], sb[i]);
}

TEST(PathRankModel, PaddingDoesNotChangeScores) {
  PathRankModel model(16, SmallConfig());
  const auto mixed = model.Forward(ToyBatch());
  const auto alone = model.Forward(
      nn::SequenceBatch::FromSequences({{5, 6}}));
  EXPECT_NEAR(mixed[1], alone[0], 1e-6f);
}

class VariantTest : public ::testing::TestWithParam<bool> {};

TEST_P(VariantTest, EmbeddingFreezeSemantics) {
  PathRankConfig cfg = SmallConfig();
  cfg.finetune_embedding = GetParam();  // PR-A2 if true, PR-A1 if false
  PathRankModel model(16, cfg);

  // Snapshot embedding table.
  const nn::ParameterList params = model.Parameters();
  nn::Parameter* emb = params[0];
  ASSERT_EQ(emb->name, "embedding");
  const nn::Matrix before = emb->value;

  // One training step.
  nn::Adam adam(0.05);
  const auto batch = ToyBatch();
  const std::vector<float> truth{0.9f, 0.1f, 0.5f};
  const auto scores = model.Forward(batch);
  std::vector<float> d;
  nn::MseLoss(scores, truth, &d);
  nn::ZeroGradients(params);
  model.Backward(d);
  adam.Step(params);

  double delta = 0.0;
  for (size_t i = 0; i < before.size(); ++i) {
    delta += std::abs(emb->value.data()[i] - before.data()[i]);
  }
  if (GetParam()) {
    EXPECT_GT(delta, 0.0) << "PR-A2 must update the embedding matrix";
  } else {
    EXPECT_EQ(delta, 0.0) << "PR-A1 must keep the embedding matrix frozen";
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, VariantTest, ::testing::Bool());

TEST(PathRankModel, VariantNames) {
  PathRankConfig a1 = SmallConfig();
  a1.finetune_embedding = false;
  PathRankConfig a2 = SmallConfig();
  a2.finetune_embedding = true;
  EXPECT_EQ(a1.VariantName(), "PR-A1");
  EXPECT_EQ(a2.VariantName(), "PR-A2");
}

class CellConfig : public ::testing::TestWithParam<nn::CellType> {};

TEST_P(CellConfig, TrainingStepReducesLoss) {
  PathRankConfig cfg = SmallConfig();
  cfg.cell = GetParam();
  PathRankModel model(16, cfg);
  const auto batch = ToyBatch();
  const std::vector<float> truth{0.9f, 0.1f, 0.5f};

  nn::Adam adam(0.02);
  const nn::ParameterList params = model.Parameters();
  std::vector<float> d;
  double first_loss = 0.0;
  double last_loss = 0.0;
  for (int step = 0; step < 60; ++step) {
    const auto scores = model.Forward(batch);
    const double loss = nn::MseLoss(scores, truth, &d);
    if (step == 0) first_loss = loss;
    last_loss = loss;
    nn::ZeroGradients(params);
    model.Backward(d);
    adam.Step(params);
  }
  EXPECT_LT(last_loss, first_loss * 0.2)
      << nn::CellTypeName(GetParam()) << " failed to overfit a toy batch";
}

INSTANTIATE_TEST_SUITE_P(Cells, CellConfig,
                         ::testing::Values(nn::CellType::kGru,
                                           nn::CellType::kRnn,
                                           nn::CellType::kLstm));

class PoolingTest : public ::testing::TestWithParam<Pooling> {};

TEST_P(PoolingTest, ScoresValidAndTrainable) {
  PathRankConfig cfg = SmallConfig();
  cfg.pooling = GetParam();
  PathRankModel model(16, cfg);
  const auto batch = ToyBatch();
  const std::vector<float> truth{0.9f, 0.1f, 0.5f};
  nn::Adam adam(0.02);
  const nn::ParameterList params = model.Parameters();
  std::vector<float> d;
  double first_loss = 0.0;
  double last_loss = 0.0;
  for (int step = 0; step < 50; ++step) {
    const auto scores = model.Forward(batch);
    for (float s : scores) {
      ASSERT_GT(s, 0.0f);
      ASSERT_LT(s, 1.0f);
    }
    const double loss = nn::MseLoss(scores, truth, &d);
    if (step == 0) first_loss = loss;
    last_loss = loss;
    nn::ZeroGradients(params);
    model.Backward(d);
    adam.Step(params);
  }
  EXPECT_LT(last_loss, first_loss * 0.25);
}

TEST_P(PoolingTest, PaddingInvariance) {
  PathRankConfig cfg = SmallConfig();
  cfg.pooling = GetParam();
  PathRankModel model(16, cfg);
  const auto mixed = model.Forward(ToyBatch());
  const auto alone =
      model.Forward(nn::SequenceBatch::FromSequences({{5, 6}}));
  EXPECT_NEAR(mixed[1], alone[0], 1e-6f);
}

INSTANTIATE_TEST_SUITE_P(Poolings, PoolingTest,
                         ::testing::Values(Pooling::kMean,
                                           Pooling::kFinalState));

TEST(PathRankModel, PoolingModesDiffer) {
  PathRankConfig mean_cfg = SmallConfig();
  mean_cfg.pooling = Pooling::kMean;
  PathRankConfig final_cfg = SmallConfig();
  final_cfg.pooling = Pooling::kFinalState;
  PathRankModel a(16, mean_cfg);
  PathRankModel b(16, final_cfg);
  const auto sa = a.Forward(ToyBatch());
  const auto sb = b.Forward(ToyBatch());
  bool any_diff = false;
  for (size_t i = 0; i < sa.size(); ++i) {
    any_diff = any_diff || sa[i] != sb[i];
  }
  EXPECT_TRUE(any_diff);
}

TEST(PathRankModel, UnidirectionalHasFewerParameters) {
  PathRankConfig bi = SmallConfig();
  bi.bidirectional = true;
  PathRankConfig uni = SmallConfig();
  uni.bidirectional = false;
  PathRankModel m_bi(16, bi);
  PathRankModel m_uni(16, uni);
  EXPECT_GT(m_bi.NumParameters(), m_uni.NumParameters());
}

TEST(PathRankModel, InitializeEmbeddingIsUsed) {
  PathRankConfig cfg = SmallConfig();
  PathRankModel model(16, cfg);
  nn::Matrix table(16, cfg.embedding_dim);
  table.Fill(0.01f);
  model.InitializeEmbedding(table);
  // Scores before/after must differ from a fresh model with random init.
  PathRankModel fresh(16, cfg);
  const auto s1 = model.Forward(ToyBatch());
  const auto s2 = fresh.Forward(ToyBatch());
  bool any_diff = false;
  for (size_t i = 0; i < s1.size(); ++i) {
    any_diff = any_diff || std::abs(s1[i] - s2[i]) > 1e-9f;
  }
  EXPECT_TRUE(any_diff);
}

TEST(ModelServing, RanksSortedByScoreDescending) {
  const auto net = graph::BuildTestNetwork();
  PathRankConfig cfg = SmallConfig();
  PathRankModel model(net.num_vertices(), cfg);
  const serving::ServingEngine engine(net, model);
  data::CandidateGenConfig gen;
  gen.k = 5;
  const auto ranked = engine.Rank(0, 63, gen);
  ASSERT_GE(ranked.size(), 2u);
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].score, ranked[i].score);
  }
  for (const auto& sp : ranked) {
    EXPECT_EQ(sp.path.source(), 0u);
    EXPECT_EQ(sp.path.destination(), 63u);
  }
}

TEST(ModelServing, ScoreEmptyInputYieldsEmpty) {
  const auto net = graph::BuildTestNetwork();
  PathRankConfig cfg = SmallConfig();
  PathRankModel model(net.num_vertices(), cfg);
  const serving::ServingEngine engine(net, model);
  EXPECT_TRUE(engine.ScoreBatch({}).empty());
}

}  // namespace
}  // namespace pathrank::core
