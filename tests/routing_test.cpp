// Shortest-path correctness: Dijkstra against Bellman-Ford, A* and
// bidirectional Dijkstra against Dijkstra, ban sets, and Path helpers.
#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"
#include "graph/network_builder.h"
#include "routing/astar.h"
#include "routing/bidirectional_dijkstra.h"
#include "routing/cost_model.h"
#include "routing/dijkstra.h"
#include "routing/path.h"

namespace pathrank::routing {
namespace {

using graph::BuildTestNetwork;
using graph::RoadCategory;
using graph::RoadNetwork;
using graph::RoadNetworkBuilder;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Reference Bellman-Ford distances (no path reconstruction).
std::vector<double> BellmanFord(const RoadNetwork& net, VertexId source,
                                const EdgeCostFn& cost) {
  std::vector<double> dist(net.num_vertices(), kInf);
  dist[source] = 0.0;
  for (size_t round = 0; round + 1 < net.num_vertices(); ++round) {
    bool changed = false;
    for (graph::EdgeId e = 0; e < net.num_edges(); ++e) {
      const auto& rec = net.edge(e);
      if (dist[rec.from] == kInf) continue;
      const double nd = dist[rec.from] + cost(e);
      if (nd < dist[rec.to] - 1e-12) {
        dist[rec.to] = nd;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return dist;
}

class ShortestPathProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShortestPathProperty, DijkstraMatchesBellmanFord) {
  const RoadNetwork net = BuildTestNetwork(GetParam());
  const auto cost = EdgeCostFn::Length(net);
  Dijkstra dijkstra(net);
  pathrank::Rng rng(GetParam());
  const auto source =
      static_cast<VertexId>(rng.NextBounded(net.num_vertices()));
  const auto reference = BellmanFord(net, source, cost);
  dijkstra.ComputeAllFrom(source, cost);
  for (VertexId v = 0; v < net.num_vertices(); ++v) {
    if (reference[v] == kInf) {
      EXPECT_FALSE(dijkstra.Reached(v));
    } else {
      EXPECT_NEAR(dijkstra.DistanceTo(v), reference[v], 1e-6);
    }
  }
}

TEST_P(ShortestPathProperty, AStarMatchesDijkstraOnLength) {
  const RoadNetwork net = BuildTestNetwork(GetParam() + 100);
  const auto cost = EdgeCostFn::Length(net);
  Dijkstra dijkstra(net);
  AStar astar(net);
  pathrank::Rng rng(GetParam() * 3 + 1);
  for (int i = 0; i < 25; ++i) {
    const auto s = static_cast<VertexId>(rng.NextBounded(net.num_vertices()));
    const auto t = static_cast<VertexId>(rng.NextBounded(net.num_vertices()));
    if (s == t) continue;
    const auto pd = dijkstra.ShortestPath(s, t, cost);
    const auto pa = astar.ShortestPath(s, t, cost);
    ASSERT_EQ(pd.has_value(), pa.has_value());
    if (pd.has_value()) {
      EXPECT_NEAR(pd->cost, pa->cost, 1e-6 * std::max(1.0, pd->cost));
    }
  }
}

TEST_P(ShortestPathProperty, AStarMatchesDijkstraOnTravelTime) {
  const RoadNetwork net = BuildTestNetwork(GetParam() + 200);
  const auto cost = EdgeCostFn::TravelTime(net);
  Dijkstra dijkstra(net);
  AStar astar(net);
  pathrank::Rng rng(GetParam() * 5 + 2);
  for (int i = 0; i < 25; ++i) {
    const auto s = static_cast<VertexId>(rng.NextBounded(net.num_vertices()));
    const auto t = static_cast<VertexId>(rng.NextBounded(net.num_vertices()));
    if (s == t) continue;
    const auto pd = dijkstra.ShortestPath(s, t, cost);
    const auto pa = astar.ShortestPath(s, t, cost);
    ASSERT_EQ(pd.has_value(), pa.has_value());
    if (pd.has_value()) {
      EXPECT_NEAR(pd->cost, pa->cost, 1e-6 * std::max(1.0, pd->cost));
    }
  }
}

TEST_P(ShortestPathProperty, BidirectionalMatchesDijkstra) {
  const RoadNetwork net = BuildTestNetwork(GetParam() + 300);
  const auto cost = EdgeCostFn::Length(net);
  Dijkstra dijkstra(net);
  BidirectionalDijkstra bidi(net);
  pathrank::Rng rng(GetParam() * 7 + 5);
  for (int i = 0; i < 25; ++i) {
    const auto s = static_cast<VertexId>(rng.NextBounded(net.num_vertices()));
    const auto t = static_cast<VertexId>(rng.NextBounded(net.num_vertices()));
    if (s == t) continue;
    const auto pd = dijkstra.ShortestPath(s, t, cost);
    const auto pb = bidi.ShortestPath(s, t, cost);
    ASSERT_EQ(pd.has_value(), pb.has_value());
    if (pd.has_value()) {
      EXPECT_NEAR(pd->cost, pb->cost, 1e-6 * std::max(1.0, pd->cost));
      EXPECT_TRUE(ValidatePath(net, *pb).empty()) << ValidatePath(net, *pb);
    }
  }
}

TEST_P(ShortestPathProperty, ReturnedPathsAreValid) {
  const RoadNetwork net = BuildTestNetwork(GetParam() + 400);
  const auto cost = EdgeCostFn::Length(net);
  Dijkstra dijkstra(net);
  pathrank::Rng rng(GetParam() * 11 + 3);
  for (int i = 0; i < 20; ++i) {
    const auto s = static_cast<VertexId>(rng.NextBounded(net.num_vertices()));
    const auto t = static_cast<VertexId>(rng.NextBounded(net.num_vertices()));
    if (s == t) continue;
    const auto p = dijkstra.ShortestPath(s, t, cost);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->source(), s);
    EXPECT_EQ(p->destination(), t);
    EXPECT_TRUE(ValidatePath(net, *p).empty()) << ValidatePath(net, *p);
    EXPECT_TRUE(IsSimplePath(*p));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShortestPathProperty,
                         ::testing::Values(1, 5, 9, 21, 33));

TEST(Dijkstra, UnreachableTargetReturnsNullopt) {
  RoadNetworkBuilder b;
  b.AddVertex({57.0, 9.9});
  b.AddVertex({57.1, 9.9});
  b.AddVertex({57.2, 9.9});
  b.AddEdge(0, 1, 100.0, RoadCategory::kResidential);
  // Vertex 2 has no incoming edges.
  b.AddEdge(2, 0, 100.0, RoadCategory::kResidential);
  const RoadNetwork net = b.Build();
  Dijkstra dijkstra(net);
  const auto cost = EdgeCostFn::Length(net);
  EXPECT_FALSE(dijkstra.ShortestPath(0, 2, cost).has_value());
  EXPECT_TRUE(dijkstra.ShortestPath(2, 1, cost).has_value());
}

TEST(Dijkstra, BansExcludeEdgesAndVertices) {
  // 0 -> 1 -> 3 (short) and 0 -> 2 -> 3 (long).
  RoadNetworkBuilder b;
  for (int i = 0; i < 4; ++i) b.AddVertex({57.0 + i * 0.01, 9.9});
  b.AddEdge(0, 1, 100.0, RoadCategory::kResidential);
  b.AddEdge(1, 3, 100.0, RoadCategory::kResidential);
  b.AddEdge(0, 2, 300.0, RoadCategory::kResidential);
  b.AddEdge(2, 3, 300.0, RoadCategory::kResidential);
  const RoadNetwork net = b.Build();
  Dijkstra dijkstra(net);
  const auto cost = EdgeCostFn::Length(net);

  const auto direct = dijkstra.ShortestPath(0, 3, cost);
  ASSERT_TRUE(direct.has_value());
  EXPECT_NEAR(direct->cost, 200.0, 1e-9);

  BanSet bans(net.num_vertices(), net.num_edges());
  bans.BanVertex(1);
  const auto detour = dijkstra.ShortestPath(0, 3, cost, &bans);
  ASSERT_TRUE(detour.has_value());
  EXPECT_NEAR(detour->cost, 600.0, 1e-9);

  bans.Clear();
  bans.BanEdge(net.FindEdge(0, 1));
  bans.BanEdge(net.FindEdge(0, 2));
  EXPECT_FALSE(dijkstra.ShortestPath(0, 3, cost, &bans).has_value());
}

TEST(BanSet, ClearIsO1AndComplete) {
  BanSet bans(10, 10);
  bans.BanVertex(3);
  bans.BanEdge(4);
  EXPECT_TRUE(bans.IsVertexBanned(3));
  EXPECT_TRUE(bans.IsEdgeBanned(4));
  bans.Clear();
  EXPECT_FALSE(bans.IsVertexBanned(3));
  EXPECT_FALSE(bans.IsEdgeBanned(4));
}

TEST(Path, FromEdgesFillsEverything) {
  const RoadNetwork net = BuildTestNetwork();
  Dijkstra dijkstra(net);
  const auto cost = EdgeCostFn::Length(net);
  const auto p = dijkstra.ShortestPath(0, 60, cost);
  ASSERT_TRUE(p.has_value());
  const Path rebuilt = PathFromEdges(net, p->edges);
  EXPECT_EQ(rebuilt.vertices, p->vertices);
  EXPECT_NEAR(rebuilt.length_m, p->length_m, 1e-9);
}

TEST(Path, ValidateCatchesCorruption) {
  const RoadNetwork net = BuildTestNetwork();
  Dijkstra dijkstra(net);
  const auto cost = EdgeCostFn::Length(net);
  auto p = dijkstra.ShortestPath(0, 60, cost);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(ValidatePath(net, *p).empty());
  Path broken = *p;
  broken.length_m += 1000.0;
  EXPECT_FALSE(ValidatePath(net, broken).empty());
  Path mismatched = *p;
  mismatched.vertices.pop_back();
  EXPECT_FALSE(ValidatePath(net, mismatched).empty());
}

TEST(CostModel, CustomWeightsAreUsed) {
  const RoadNetwork net = BuildTestNetwork();
  std::vector<double> weights(net.num_edges(), 1.0);
  const auto cost = EdgeCostFn::Custom(net, weights);
  Dijkstra dijkstra(net);
  const auto p = dijkstra.ShortestPath(0, 63, cost);
  ASSERT_TRUE(p.has_value());
  // With unit weights, cost equals hop count.
  EXPECT_NEAR(p->cost, static_cast<double>(p->edges.size()), 1e-9);
}

TEST(CostModel, CustomRejectsWrongSize) {
  const RoadNetwork net = BuildTestNetwork();
  std::vector<double> weights(3, 1.0);
  EXPECT_THROW(EdgeCostFn::Custom(net, weights), std::logic_error);
}

}  // namespace
}  // namespace pathrank::routing
