// Thread pool: ParallelFor coverage/partitioning, deterministic shard
// decomposition, exception propagation, nested-region collapse and
// SetNumThreads/env behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.h"

namespace pathrank {
namespace {

class ThreadPoolTest : public ::testing::Test {
 protected:
  void TearDown() override { SetNumThreads(4); }
};

TEST_F(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  for (size_t threads : {1, 2, 4}) {
    SetNumThreads(threads);
    EXPECT_EQ(GetNumThreads(), threads);
    constexpr size_t kN = 10000;
    std::vector<std::atomic<int>> hits(kN);
    ParallelFor(0, kN, 64, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
    });
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST_F(ThreadPoolTest, EmptyAndTinyRanges) {
  SetNumThreads(4);
  int calls = 0;
  ParallelFor(5, 5, 1, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);

  std::atomic<int> total{0};
  ParallelFor(7, 8, 100, [&](size_t lo, size_t hi) {
    total.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(total.load(), 1);
}

TEST_F(ThreadPoolTest, ShardDecompositionIsFixed) {
  // The (range, shards) decomposition must not depend on the pool size.
  for (size_t threads : {1, 3}) {
    SetNumThreads(threads);
    std::vector<std::pair<size_t, size_t>> bounds(4);
    ParallelForShards(
        10, 33,
        [&](size_t shard, size_t lo, size_t hi) { bounds[shard] = {lo, hi}; },
        /*max_shards=*/4);
    // 23 iterations over 4 shards: sizes 6, 6, 6, 5, contiguous.
    const std::vector<std::pair<size_t, size_t>> expected = {
        {10, 16}, {16, 22}, {22, 28}, {28, 33}};
    EXPECT_EQ(bounds, expected);
  }
}

TEST_F(ThreadPoolTest, ShardCountCappedByRange) {
  SetNumThreads(4);
  EXPECT_EQ(NumShardsFor(2), 2u);
  EXPECT_EQ(NumShardsFor(100), 4u);
  EXPECT_EQ(NumShardsFor(100, 3), 3u);
  EXPECT_EQ(NumShardsFor(0), 0u);
}

TEST_F(ThreadPoolTest, PropagatesExceptions) {
  for (size_t threads : {1, 4}) {
    SetNumThreads(threads);
    EXPECT_THROW(
        ParallelFor(0, 1000, 10,
                    [&](size_t lo, size_t hi) {
                      for (size_t i = lo; i < hi; ++i) {
                        if (i == 500) throw std::runtime_error("boom");
                      }
                    }),
        std::runtime_error);
    // The pool must stay usable after an exception.
    std::atomic<size_t> count{0};
    ParallelFor(0, 100, 10,
                [&](size_t lo, size_t hi) { count.fetch_add(hi - lo); });
    EXPECT_EQ(count.load(), 100u);
  }
}

TEST_F(ThreadPoolTest, NestedParallelForRunsSerially) {
  SetNumThreads(4);
  std::atomic<size_t> total{0};
  ParallelFor(0, 8, 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      // Inner region must collapse to a single serial call instead of
      // re-entering (and potentially deadlocking) the pool.
      size_t inner_calls = 0;
      ParallelFor(0, 100, 1, [&](size_t ilo, size_t ihi) {
        ++inner_calls;
        total.fetch_add(ihi - ilo);
      });
      EXPECT_EQ(inner_calls, 1u);
    }
  });
  EXPECT_EQ(total.load(), 800u);
}

TEST_F(ThreadPoolTest, ManyConsecutiveRegions) {
  SetNumThreads(4);
  // Stress region setup/teardown for lost-wakeup bugs.
  for (int round = 0; round < 200; ++round) {
    std::atomic<size_t> sum{0};
    ParallelFor(0, 256, 16, [&](size_t lo, size_t hi) {
      size_t s = 0;
      for (size_t i = lo; i < hi; ++i) s += i;
      sum.fetch_add(s);
    });
    ASSERT_EQ(sum.load(), 256u * 255u / 2u);
  }
}

TEST_F(ThreadPoolTest, SetNumThreadsZeroMeansHardware) {
  SetNumThreads(0);
  EXPECT_GE(GetNumThreads(), 1u);
}

}  // namespace
}  // namespace pathrank
