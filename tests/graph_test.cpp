// Tests for the spatial graph substrate: CSR road network, the synthetic
// network generator, and graph I/O.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <queue>
#include <set>

#include "graph/graph_io.h"
#include "graph/network_builder.h"
#include "graph/road_network.h"

namespace pathrank::graph {
namespace {

RoadNetwork MakeTriangle() {
  RoadNetworkBuilder b;
  const VertexId v0 = b.AddVertex({57.0, 9.9});
  const VertexId v1 = b.AddVertex({57.01, 9.9});
  const VertexId v2 = b.AddVertex({57.0, 9.92});
  b.AddBidirectionalEdge(v0, v1, 1000.0, RoadCategory::kResidential);
  b.AddBidirectionalEdge(v1, v2, 1500.0, RoadCategory::kPrimary);
  b.AddEdge(v2, v0, 2000.0, RoadCategory::kMotorway);
  return b.Build();
}

TEST(RoadNetwork, CountsAreConsistent) {
  const RoadNetwork net = MakeTriangle();
  EXPECT_EQ(net.num_vertices(), 3u);
  EXPECT_EQ(net.num_edges(), 5u);
}

TEST(RoadNetwork, OutAndInEdgesPartitionEdges) {
  const RoadNetwork net = MakeTriangle();
  size_t out_total = 0;
  size_t in_total = 0;
  for (VertexId v = 0; v < net.num_vertices(); ++v) {
    out_total += net.OutEdges(v).size();
    in_total += net.InEdges(v).size();
  }
  EXPECT_EQ(out_total, net.num_edges());
  EXPECT_EQ(in_total, net.num_edges());
}

TEST(RoadNetwork, EdgeEndpointsMatchAdjacency) {
  const RoadNetwork net = MakeTriangle();
  for (VertexId v = 0; v < net.num_vertices(); ++v) {
    for (EdgeId e : net.OutEdges(v)) {
      EXPECT_EQ(net.edge(e).from, v);
    }
    for (EdgeId e : net.InEdges(v)) {
      EXPECT_EQ(net.edge(e).to, v);
    }
  }
}

TEST(RoadNetwork, FindEdgePresentAndAbsent) {
  const RoadNetwork net = MakeTriangle();
  EXPECT_NE(net.FindEdge(0, 1), kInvalidEdge);
  EXPECT_NE(net.FindEdge(2, 0), kInvalidEdge);
  EXPECT_EQ(net.FindEdge(0, 2), kInvalidEdge);  // directed: only 2->0 exists
  EXPECT_EQ(net.FindEdge(1, 1), kInvalidEdge);
}

TEST(RoadNetwork, DefaultTravelTimeUsesCategorySpeed) {
  const RoadNetwork net = MakeTriangle();
  const EdgeId e = net.FindEdge(2, 0);
  ASSERT_NE(e, kInvalidEdge);
  const double expected_s = 2000.0 / (DefaultSpeedKmh(RoadCategory::kMotorway) / 3.6);
  EXPECT_NEAR(net.edge(e).travel_time_s, expected_s, 1e-6);
}

TEST(RoadNetwork, PathAggregates) {
  const RoadNetwork net = MakeTriangle();
  const EdgeId e01 = net.FindEdge(0, 1);
  const EdgeId e12 = net.FindEdge(1, 2);
  const std::vector<EdgeId> edges{e01, e12};
  EXPECT_NEAR(net.PathLengthMeters(edges), 2500.0, 1e-9);
  EXPECT_GT(net.PathTravelTimeSeconds(edges), 0.0);
}

TEST(RoadNetwork, MaxSpeedReflectsFastestEdge) {
  const RoadNetwork net = MakeTriangle();
  EXPECT_NEAR(net.max_speed_mps(), 110.0 / 3.6, 1e-6);
}

TEST(RoadNetwork, BoundsContainAllVertices) {
  const RoadNetwork net = MakeTriangle();
  for (VertexId v = 0; v < net.num_vertices(); ++v) {
    EXPECT_TRUE(net.bounds().Contains(net.coordinate(v)));
  }
}

TEST(Types, HaversineKnownDistance) {
  // Aalborg to Copenhagen is roughly 223.5 km in a straight line.
  const Coordinate aalborg{57.0488, 9.9217};
  const Coordinate copenhagen{55.6761, 12.5683};
  const double d = HaversineMeters(aalborg, copenhagen);
  EXPECT_NEAR(d, 223500.0, 3000.0);
}

TEST(Types, FastDistanceCloseToHaversineRegionally) {
  const Coordinate a{57.0, 9.9};
  const Coordinate b{57.05, 9.98};
  const double h = HaversineMeters(a, b);
  const double f = FastDistanceMeters(a, b);
  EXPECT_NEAR(f / h, 1.0, 0.005);
}

TEST(Types, CategoryNamesRoundTrip) {
  for (int i = 0; i < kNumRoadCategories; ++i) {
    const auto cat = static_cast<RoadCategory>(i);
    EXPECT_EQ(ParseRoadCategory(RoadCategoryName(cat)), cat);
  }
  EXPECT_THROW(ParseRoadCategory("hyperloop"), std::invalid_argument);
}

TEST(Types, SpeedsDecreaseDownTheHierarchy) {
  EXPECT_GT(DefaultSpeedKmh(RoadCategory::kMotorway),
            DefaultSpeedKmh(RoadCategory::kPrimary));
  EXPECT_GT(DefaultSpeedKmh(RoadCategory::kPrimary),
            DefaultSpeedKmh(RoadCategory::kResidential));
  EXPECT_GT(DefaultSpeedKmh(RoadCategory::kResidential),
            DefaultSpeedKmh(RoadCategory::kService));
}

/// BFS reachability over directed edges.
size_t ReachableFrom(const RoadNetwork& net, VertexId start) {
  std::vector<bool> seen(net.num_vertices(), false);
  std::queue<VertexId> queue;
  queue.push(start);
  seen[start] = true;
  size_t count = 1;
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop();
    for (EdgeId e : net.OutEdges(u)) {
      const VertexId v = net.edge(e).to;
      if (!seen[v]) {
        seen[v] = true;
        ++count;
        queue.push(v);
      }
    }
  }
  return count;
}

class SyntheticNetworkSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SyntheticNetworkSeeds, StronglyConnected) {
  SyntheticNetworkConfig cfg;
  cfg.rows = 16;
  cfg.cols = 16;
  cfg.seed = GetParam();
  const RoadNetwork net = BuildSyntheticNetwork(cfg);
  // All roads are bidirectional, so reachability from vertex 0 must cover
  // the whole network.
  EXPECT_EQ(ReachableFrom(net, 0), net.num_vertices());
}

TEST_P(SyntheticNetworkSeeds, DeterministicUnderSeed) {
  SyntheticNetworkConfig cfg;
  cfg.rows = 10;
  cfg.cols = 10;
  cfg.seed = GetParam();
  const RoadNetwork a = BuildSyntheticNetwork(cfg);
  const RoadNetwork b = BuildSyntheticNetwork(cfg);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e).from, b.edge(e).from);
    EXPECT_EQ(a.edge(e).to, b.edge(e).to);
    EXPECT_DOUBLE_EQ(a.edge(e).length_m, b.edge(e).length_m);
  }
}

TEST_P(SyntheticNetworkSeeds, EdgeLengthsArePlausible) {
  SyntheticNetworkConfig cfg;
  cfg.rows = 12;
  cfg.cols = 12;
  cfg.seed = GetParam();
  const RoadNetwork net = BuildSyntheticNetwork(cfg);
  for (EdgeId e = 0; e < net.num_edges(); ++e) {
    EXPECT_GT(net.edge(e).length_m, 0.0);
    EXPECT_LT(net.edge(e).length_m, 20000.0);
    EXPECT_GT(net.edge(e).travel_time_s, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyntheticNetworkSeeds,
                         ::testing::Values(1, 7, 42, 1234, 987654321));

TEST(SyntheticNetwork, HasHierarchy) {
  SyntheticNetworkConfig cfg;
  cfg.rows = 24;
  cfg.cols = 24;
  const RoadNetwork net = BuildSyntheticNetwork(cfg);
  std::set<RoadCategory> seen;
  for (EdgeId e = 0; e < net.num_edges(); ++e) {
    seen.insert(net.edge(e).category);
  }
  EXPECT_TRUE(seen.count(RoadCategory::kMotorway));
  EXPECT_TRUE(seen.count(RoadCategory::kPrimary));
  EXPECT_TRUE(seen.count(RoadCategory::kResidential));
}

TEST(SyntheticNetwork, DegreeDistributionLooksLikeRoads) {
  SyntheticNetworkConfig cfg;
  cfg.rows = 24;
  cfg.cols = 24;
  const RoadNetwork net = BuildSyntheticNetwork(cfg);
  double mean_degree = 0.0;
  for (VertexId v = 0; v < net.num_vertices(); ++v) {
    mean_degree += static_cast<double>(net.OutDegree(v));
  }
  mean_degree /= static_cast<double>(net.num_vertices());
  // Road intersections average between 2 and 4 outgoing segments.
  EXPECT_GT(mean_degree, 2.0);
  EXPECT_LT(mean_degree, 4.5);
}

TEST(SyntheticNetwork, TestNetworkIsSmallAndConnected) {
  const RoadNetwork net = BuildTestNetwork();
  EXPECT_EQ(net.num_vertices(), 64u);
  EXPECT_EQ(ReachableFrom(net, 0), net.num_vertices());
}

TEST(GraphIo, CsvRoundTrip) {
  const RoadNetwork original = BuildTestNetwork();
  const std::string prefix =
      (std::filesystem::temp_directory_path() / "pr_net").string();
  SaveNetworkCsv(original, prefix);
  const RoadNetwork loaded = LoadNetworkCsv(prefix);
  ASSERT_EQ(loaded.num_vertices(), original.num_vertices());
  ASSERT_EQ(loaded.num_edges(), original.num_edges());
  for (EdgeId e = 0; e < original.num_edges(); ++e) {
    EXPECT_EQ(loaded.edge(e).from, original.edge(e).from);
    EXPECT_EQ(loaded.edge(e).to, original.edge(e).to);
    EXPECT_NEAR(loaded.edge(e).length_m, original.edge(e).length_m, 1e-3);
    EXPECT_EQ(loaded.edge(e).category, original.edge(e).category);
  }
  std::remove((prefix + "_vertices.csv").c_str());
  std::remove((prefix + "_edges.csv").c_str());
}

TEST(GraphIo, EdgesOnlyLoaderMatchesCsvPair) {
  const RoadNetwork original = BuildTestNetwork();
  const std::string prefix =
      (std::filesystem::temp_directory_path() / "pr_net_eo").string();
  SaveNetworkCsv(original, prefix);
  const RoadNetwork loaded = LoadNetworkEdgesCsv(prefix + "_edges.csv");
  ASSERT_EQ(loaded.num_vertices(), original.num_vertices());
  ASSERT_EQ(loaded.num_edges(), original.num_edges());
  for (EdgeId e = 0; e < original.num_edges(); ++e) {
    EXPECT_EQ(loaded.edge(e).from, original.edge(e).from);
    EXPECT_EQ(loaded.edge(e).to, original.edge(e).to);
    EXPECT_EQ(loaded.edge(e).category, original.edge(e).category);
  }
  std::remove((prefix + "_vertices.csv").c_str());
  std::remove((prefix + "_edges.csv").c_str());
}

// Writes a CSV-pair network whose edges.csv data line is `edge_row`, and
// returns the prefix (caller removes the two files).
std::string WriteNetworkWithEdgeRow(const char* name,
                                    const std::string& edge_row) {
  const std::string prefix =
      (std::filesystem::temp_directory_path() / name).string();
  {
    std::ofstream vertices(prefix + "_vertices.csv");
    vertices << "id,lat,lon\n0,57.0,9.9\n1,57.01,9.9\n";
  }
  {
    std::ofstream edges(prefix + "_edges.csv");
    edges << "from,to,length_m,travel_time_s,category\n" << edge_row << "\n";
  }
  return prefix;
}

// A non-numeric field used to escape as a bare std::invalid_argument out
// of std::stoul and terminate the process; now it is a runtime_error
// naming file, line and token.
TEST(GraphIo, MalformedEdgeFieldReportsFileLineToken) {
  const std::string prefix =
      WriteNetworkWithEdgeRow("pr_net_bad", "0,abc,1000.0,50.0,primary");
  try {
    LoadNetworkCsv(prefix);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("_edges.csv:2"), std::string::npos) << what;
    EXPECT_NE(what.find("'abc'"), std::string::npos) << what;
    EXPECT_NE(what.find("to"), std::string::npos) << what;
  }
  std::remove((prefix + "_vertices.csv").c_str());
  std::remove((prefix + "_edges.csv").c_str());
}

TEST(GraphIo, OutOfRangeAndJunkSuffixFieldsRejected) {
  // 2^32 overflows VertexId; "12x" has a trailing non-digit; both were
  // silent (wrap / prefix-parse) under std::stoul. "nan"/"inf" parse
  // under bare strtod but would poison shortest-path comparisons, and a
  // negative length breaks the non-negative-weight assumption.
  for (const char* row :
       {"4294967296,1,1000.0,50.0,primary", "12x,1,1000.0,50.0,primary",
        "0,1,12,3.0,50.0,primary", "0,1,1000.0,50.0,motorbike",
        "0,1,nan,50.0,primary", "0,1,inf,50.0,primary",
        "0,1,-1000.0,50.0,primary", "0,1,1000.0,-50.0,primary"}) {
    const std::string prefix = WriteNetworkWithEdgeRow("pr_net_bad2", row);
    EXPECT_THROW(LoadNetworkCsv(prefix), std::runtime_error) << row;
    std::remove((prefix + "_vertices.csv").c_str());
    std::remove((prefix + "_edges.csv").c_str());
  }
}

TEST(GraphIo, DiagnosticLineNumbersSkipBlankLines) {
  // CsvReader drops blank lines; the reported line must still be the
  // FILE line, not the row index.
  const std::string prefix =
      (std::filesystem::temp_directory_path() / "pr_net_blank").string();
  {
    std::ofstream vertices(prefix + "_vertices.csv");
    vertices << "id,lat,lon\n0,57.0,9.9\n1,57.01,9.9\n";
  }
  {
    std::ofstream edges(prefix + "_edges.csv");
    edges << "from,to,length_m,travel_time_s,category\n"
          << "\n\n"  // two blank lines: the bad row sits on file line 4
          << "0,1,1e3,oops,primary\n";
  }
  try {
    LoadNetworkCsv(prefix);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("_edges.csv:4"), std::string::npos) << what;
    EXPECT_NE(what.find("'oops'"), std::string::npos) << what;
  }
  std::remove((prefix + "_vertices.csv").c_str());
  std::remove((prefix + "_edges.csv").c_str());
}

TEST(GraphIo, MalformedVertexCoordinateReportsFileLine) {
  const std::string prefix =
      (std::filesystem::temp_directory_path() / "pr_net_badv").string();
  {
    std::ofstream vertices(prefix + "_vertices.csv");
    vertices << "id,lat,lon\n0,57.0,9.9\n1,five,9.9\n";
  }
  {
    std::ofstream edges(prefix + "_edges.csv");
    edges << "from,to,length_m,travel_time_s,category\n";
  }
  try {
    LoadNetworkCsv(prefix);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("_vertices.csv:3"), std::string::npos) << what;
    EXPECT_NE(what.find("'five'"), std::string::npos) << what;
  }
  std::remove((prefix + "_vertices.csv").c_str());
  std::remove((prefix + "_edges.csv").c_str());
}

TEST(GraphIo, EdgesOnlyLoaderRejectsImplausibleVertexIds) {
  // One corrupt id must be a file:line diagnostic, not a multi-gigabyte
  // vertex allocation (4294967295 would even wrap the seeding loop —
  // it is the kInvalidVertex sentinel).
  for (const char* row : {"4294967295,1,100.0,10.0,primary",
                          "4000000000,1,100.0,10.0,primary"}) {
    const std::string path =
        (std::filesystem::temp_directory_path() / "pr_net_hugeid.csv")
            .string();
    {
      std::ofstream edges(path);
      edges << "from,to,length_m,travel_time_s,category\n" << row << "\n";
    }
    EXPECT_THROW(LoadNetworkEdgesCsv(path), std::runtime_error) << row;
    std::remove(path.c_str());
  }
}

TEST(GraphIo, EdgesOnlyLoaderRejectsEmptyFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "pr_net_empty.csv").string();
  {
    std::ofstream edges(path);
    edges << "from,to,length_m,travel_time_s,category\n";
  }
  EXPECT_THROW(LoadNetworkEdgesCsv(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(GraphIo, BinaryRoundTripExact) {
  const RoadNetwork original = BuildTestNetwork(123);
  const std::string path =
      (std::filesystem::temp_directory_path() / "pr_net.bin").string();
  SaveNetworkBinary(original, path);
  const RoadNetwork loaded = LoadNetworkBinary(path);
  ASSERT_EQ(loaded.num_vertices(), original.num_vertices());
  ASSERT_EQ(loaded.num_edges(), original.num_edges());
  for (VertexId v = 0; v < original.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(loaded.coordinate(v).lat, original.coordinate(v).lat);
    EXPECT_DOUBLE_EQ(loaded.coordinate(v).lon, original.coordinate(v).lon);
  }
  for (EdgeId e = 0; e < original.num_edges(); ++e) {
    EXPECT_DOUBLE_EQ(loaded.edge(e).length_m, original.edge(e).length_m);
    EXPECT_DOUBLE_EQ(loaded.edge(e).travel_time_s,
                     original.edge(e).travel_time_s);
  }
  std::remove(path.c_str());
}

TEST(GraphIo, BinaryLoadRejectsGarbage) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "pr_garbage.bin").string();
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    const char junk[] = "not a network";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  EXPECT_THROW(LoadNetworkBinary(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Builder, RejectsInvalidEdges) {
  RoadNetworkBuilder b;
  b.AddVertex({57.0, 9.9});
  EXPECT_THROW(b.AddEdge(0, 5, 100.0, RoadCategory::kResidential),
               std::logic_error);
  EXPECT_THROW(b.AddEdge(0, 0, -1.0, RoadCategory::kResidential),
               std::logic_error);
}

}  // namespace
}  // namespace pathrank::graph
