// node2vec substrate: alias sampling, biased walks, SGNS embedding quality.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/rng.h"
#include "embedding/alias_table.h"
#include "embedding/node2vec.h"
#include "embedding/random_walk.h"
#include "embedding/skipgram.h"
#include "graph/network_builder.h"

namespace pathrank::embedding {
namespace {

using graph::BuildTestNetwork;
using graph::RoadNetwork;

TEST(AliasTable, SingleOutcome) {
  const std::vector<double> w{1.0};
  AliasTable t(w);
  pathrank::Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(t.Sample(rng), 0u);
}

TEST(AliasTable, RejectsInvalidWeights) {
  const std::vector<double> zero{0.0, 0.0};
  EXPECT_THROW(AliasTable{zero}, std::logic_error);
  const std::vector<double> negative{1.0, -0.5};
  EXPECT_THROW(AliasTable{negative}, std::logic_error);
}

class AliasDistribution : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AliasDistribution, MatchesTargetWithinChiSquare) {
  pathrank::Rng rng(GetParam());
  std::vector<double> weights;
  const size_t n = 3 + rng.NextBounded(8);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    weights.push_back(rng.NextUniform(0.1, 5.0));
    total += weights.back();
  }
  AliasTable table(weights);
  constexpr int kDraws = 200000;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[table.Sample(rng)];
  double chi2 = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double expected = kDraws * weights[i] / total;
    const double diff = counts[i] - expected;
    chi2 += diff * diff / expected;
  }
  // dof <= 9; chi2 beyond 30 would indicate a broken sampler.
  EXPECT_LT(chi2, 30.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AliasDistribution,
                         ::testing::Values(2, 12, 22, 32));

TEST(RandomWalker, WalksFollowEdges) {
  const RoadNetwork net = BuildTestNetwork();
  RandomWalkConfig cfg;
  cfg.walk_length = 20;
  RandomWalker walker(net, cfg);
  pathrank::Rng rng(5);
  for (graph::VertexId start = 0; start < 20; ++start) {
    const auto walk = walker.Walk(start, rng);
    ASSERT_GE(walk.size(), 2u);
    EXPECT_EQ(walk[0], start);
    for (size_t i = 1; i < walk.size(); ++i) {
      EXPECT_NE(net.FindEdge(walk[i - 1], walk[i]), graph::kInvalidEdge)
          << "walk used a non-edge";
    }
  }
}

TEST(RandomWalker, RespectsWalkLength) {
  const RoadNetwork net = BuildTestNetwork();
  RandomWalkConfig cfg;
  cfg.walk_length = 12;
  RandomWalker walker(net, cfg);
  pathrank::Rng rng(6);
  const auto walk = walker.Walk(0, rng);
  EXPECT_EQ(walk.size(), 12u);  // connected grid: no dead ends
}

TEST(RandomWalker, CorpusSizeMatchesConfig) {
  const RoadNetwork net = BuildTestNetwork();
  RandomWalkConfig cfg;
  cfg.walk_length = 8;
  cfg.walks_per_vertex = 3;
  RandomWalker walker(net, cfg);
  pathrank::Rng rng(7);
  const auto corpus = walker.GenerateCorpus(rng);
  EXPECT_EQ(corpus.size(), net.num_vertices() * 3);
}

TEST(RandomWalker, LowPIncreasesBacktracking) {
  const RoadNetwork net = BuildTestNetwork();
  RandomWalkConfig backtrack;
  backtrack.walk_length = 30;
  backtrack.p = 0.05;  // strongly encourages returning
  backtrack.q = 1.0;
  RandomWalkConfig explore;
  explore.walk_length = 30;
  explore.p = 20.0;  // strongly discourages returning
  explore.q = 1.0;
  RandomWalker walker_b(net, backtrack);
  RandomWalker walker_e(net, explore);
  pathrank::Rng rng_b(8);
  pathrank::Rng rng_e(8);
  int returns_b = 0;
  int returns_e = 0;
  for (graph::VertexId v = 0; v < net.num_vertices(); ++v) {
    const auto wb = walker_b.Walk(v, rng_b);
    const auto we = walker_e.Walk(v, rng_e);
    for (size_t i = 2; i < wb.size(); ++i) {
      if (wb[i] == wb[i - 2]) ++returns_b;
    }
    for (size_t i = 2; i < we.size(); ++i) {
      if (we[i] == we[i - 2]) ++returns_e;
    }
  }
  EXPECT_GT(returns_b, returns_e * 2);
}

TEST(SkipGram, EmbeddingShapeAndFiniteness) {
  const RoadNetwork net = BuildTestNetwork();
  RandomWalkConfig walk_cfg;
  walk_cfg.walk_length = 15;
  walk_cfg.walks_per_vertex = 4;
  RandomWalker walker(net, walk_cfg);
  pathrank::Rng rng(9);
  const auto corpus = walker.GenerateCorpus(rng);
  SkipGramConfig sg;
  sg.dims = 16;
  sg.epochs = 1;
  const nn::Matrix emb = TrainSkipGram(corpus, net.num_vertices(), sg, rng);
  ASSERT_EQ(emb.rows(), net.num_vertices());
  ASSERT_EQ(emb.cols(), 16u);
  for (size_t i = 0; i < emb.size(); ++i) {
    EXPECT_TRUE(std::isfinite(emb.data()[i]));
  }
}

TEST(Node2Vec, NeighborsMoreSimilarThanDistantPairs) {
  const RoadNetwork net = BuildTestNetwork();
  Node2VecConfig cfg;
  cfg.walk.walk_length = 25;
  cfg.walk.walks_per_vertex = 12;
  cfg.skipgram.dims = 32;
  cfg.skipgram.epochs = 3;
  cfg.seed = 10;
  const nn::Matrix emb = TrainNode2Vec(net, cfg);

  // Mean cosine similarity between adjacent vertices must exceed the mean
  // over far-apart pairs: topology must be captured.
  double adj_sim = 0.0;
  int adj_count = 0;
  for (graph::VertexId v = 0; v < net.num_vertices(); ++v) {
    for (graph::EdgeId e : net.OutEdges(v)) {
      adj_sim += CosineSimilarity(emb, v, net.edge(e).to);
      ++adj_count;
    }
  }
  adj_sim /= adj_count;

  // The test network is an 8x8 grid: vertex 0 and vertex 63 are opposite
  // corners; sample corner-to-corner style pairs.
  double far_sim = 0.0;
  int far_count = 0;
  for (graph::VertexId a = 0; a < 8; ++a) {
    for (graph::VertexId b = 56; b < 64; ++b) {
      far_sim += CosineSimilarity(emb, a, b);
      ++far_count;
    }
  }
  far_sim /= far_count;
  EXPECT_GT(adj_sim, far_sim + 0.1);
}

TEST(Node2Vec, DeterministicUnderSeed) {
  const RoadNetwork net = BuildTestNetwork();
  Node2VecConfig cfg;
  cfg.walk.walk_length = 10;
  cfg.walk.walks_per_vertex = 2;
  cfg.skipgram.dims = 8;
  cfg.skipgram.epochs = 1;
  cfg.seed = 11;
  const nn::Matrix a = TrainNode2Vec(net, cfg);
  const nn::Matrix b = TrainNode2Vec(net, cfg);
  ASSERT_TRUE(a.SameShape(b));
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(CosineSimilarity, SelfSimilarityIsOne) {
  nn::Matrix m(2, 4);
  pathrank::Rng rng(12);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.NextUniform(-1, 1));
  }
  EXPECT_NEAR(CosineSimilarity(m, 0, 0), 1.0, 1e-6);
  EXPECT_NEAR(CosineSimilarity(m, 1, 1), 1.0, 1e-6);
}

}  // namespace
}  // namespace pathrank::embedding
