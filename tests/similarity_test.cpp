// Weighted Jaccard and plain Jaccard similarity properties.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/network_builder.h"
#include "routing/cost_model.h"
#include "routing/dijkstra.h"
#include "routing/path_similarity.h"

namespace pathrank::routing {
namespace {

using graph::BuildTestNetwork;
using graph::EdgeId;
using graph::RoadNetwork;

TEST(WeightedJaccard, IdenticalPathsScoreOne) {
  const RoadNetwork net = BuildTestNetwork();
  Dijkstra dijkstra(net);
  const auto cost = EdgeCostFn::Length(net);
  const auto p = dijkstra.ShortestPath(0, 63, cost);
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(WeightedJaccard(net, p->edges, p->edges), 1.0);
}

TEST(WeightedJaccard, DisjointPathsScoreZero) {
  const RoadNetwork net = BuildTestNetwork();
  // Two single-edge "paths" with different edges.
  const std::vector<EdgeId> a{0};
  const std::vector<EdgeId> b{5};
  EXPECT_DOUBLE_EQ(WeightedJaccard(net, a, b), 0.0);
}

TEST(WeightedJaccard, EmptyVsEmptyIsOneEmptyVsNonEmptyZero) {
  const RoadNetwork net = BuildTestNetwork();
  const std::vector<EdgeId> empty;
  const std::vector<EdgeId> one{3};
  EXPECT_DOUBLE_EQ(WeightedJaccard(net, empty, empty), 1.0);
  EXPECT_DOUBLE_EQ(WeightedJaccard(net, empty, one), 0.0);
}

TEST(WeightedJaccard, WeightsMatter) {
  // Overlap on a long edge scores higher than overlap on a short edge of
  // the same set sizes.
  graph::RoadNetworkBuilder b;
  for (int i = 0; i < 6; ++i) b.AddVertex({57.0 + 0.01 * i, 9.9});
  const EdgeId long_shared =
      b.AddEdge(0, 1, 1000.0, graph::RoadCategory::kResidential);
  const EdgeId short_shared =
      b.AddEdge(1, 2, 10.0, graph::RoadCategory::kResidential);
  const EdgeId extra_a =
      b.AddEdge(2, 3, 100.0, graph::RoadCategory::kResidential);
  const EdgeId extra_b =
      b.AddEdge(3, 4, 100.0, graph::RoadCategory::kResidential);
  const RoadNetwork net = b.Build();

  const std::vector<EdgeId> a1{long_shared, extra_a};
  const std::vector<EdgeId> b1{long_shared, extra_b};
  const std::vector<EdgeId> a2{short_shared, extra_a};
  const std::vector<EdgeId> b2{short_shared, extra_b};
  EXPECT_GT(WeightedJaccard(net, a1, b1), WeightedJaccard(net, a2, b2));
}

class SimilarityProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimilarityProperty, RangeAndSymmetry) {
  const RoadNetwork net = BuildTestNetwork(GetParam());
  pathrank::Rng rng(GetParam() * 3 + 11);
  Dijkstra dijkstra(net);
  const auto cost = EdgeCostFn::Length(net);
  for (int i = 0; i < 20; ++i) {
    const auto s1 = static_cast<VertexId>(rng.NextBounded(net.num_vertices()));
    const auto t1 = static_cast<VertexId>(rng.NextBounded(net.num_vertices()));
    const auto s2 = static_cast<VertexId>(rng.NextBounded(net.num_vertices()));
    const auto t2 = static_cast<VertexId>(rng.NextBounded(net.num_vertices()));
    if (s1 == t1 || s2 == t2) continue;
    const auto p1 = dijkstra.ShortestPath(s1, t1, cost);
    const auto p2 = dijkstra.ShortestPath(s2, t2, cost);
    if (!p1.has_value() || !p2.has_value()) continue;
    const double ab = WeightedJaccard(net, p1->edges, p2->edges);
    const double ba = WeightedJaccard(net, p2->edges, p1->edges);
    EXPECT_DOUBLE_EQ(ab, ba);
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
    // Weighted and unweighted Jaccard agree on the extremes.
    const double ej = EdgeJaccard(p1->edges, p2->edges);
    EXPECT_EQ(ab == 1.0, ej == 1.0);
    EXPECT_EQ(ab == 0.0, ej == 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimilarityProperty,
                         ::testing::Values(4, 14, 24, 64));

TEST(EdgeJaccard, CountsCorrectly) {
  const std::vector<EdgeId> a{1, 2, 3};
  const std::vector<EdgeId> b{2, 3, 4, 5};
  // intersection 2, union 5.
  EXPECT_DOUBLE_EQ(EdgeJaccard(a, b), 0.4);
}

TEST(EdgeJaccard, DuplicatesAreIgnored) {
  const std::vector<EdgeId> a{1, 1, 2};
  const std::vector<EdgeId> b{2, 2, 1};
  EXPECT_DOUBLE_EQ(EdgeJaccard(a, b), 1.0);
}

TEST(VertexJaccard, BasicOverlap) {
  const std::vector<graph::VertexId> a{10, 11, 12};
  const std::vector<graph::VertexId> b{12, 13};
  // intersection 1, union 4.
  EXPECT_DOUBLE_EQ(VertexJaccard(a, b), 0.25);
}

}  // namespace
}  // namespace pathrank::routing
