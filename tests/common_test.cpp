// Unit tests for the common utilities: RNG, CSV, strings, env, logging,
// and the annotated CondVar's timed-wait paths.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <set>
#include <thread>

#include "common/csv.h"
#include "common/env.h"
#include "common/logging.h"
#include "common/parse.h"
#include "common/percentile.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/thread_annotations.h"

namespace pathrank {
namespace {

TEST(Rng, DeterministicUnderSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(9);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 12345ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Rng, BoundedIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.NextBounded(kBuckets)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 500);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.01);
  EXPECT_NEAR(sq / kN, 1.0, 0.02);
}

TEST(Rng, IntRangeInclusive) {
  Rng rng(15);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkIndependentStreams) {
  Rng parent(19);
  Rng child = parent.Fork();
  // Child should not replay the parent's stream.
  Rng parent2(19);
  parent2.Fork();
  EXPECT_NE(child.NextU64(), parent.NextU64());
}

TEST(Csv, EscapePlainFieldUnchanged) {
  EXPECT_EQ(EscapeCsvField("hello"), "hello");
}

TEST(Csv, EscapeQuotesAndCommas) {
  EXPECT_EQ(EscapeCsvField("a,b"), "\"a,b\"");
  EXPECT_EQ(EscapeCsvField("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, ParseSimpleLine) {
  const auto fields = ParseCsvLine("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(Csv, ParseQuotedWithEmbeddedComma) {
  const auto fields = ParseCsvLine("x,\"a,b\",y");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "a,b");
}

TEST(Csv, ParseEscapedQuote) {
  const auto fields = ParseCsvLine("\"say \"\"hi\"\"\"");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "say \"hi\"");
}

TEST(Csv, ParseEmptyFields) {
  const auto fields = ParseCsvLine("a,,b,");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(Csv, RoundTripFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "pr_csv_test.csv").string();
  {
    CsvWriter w(path);
    w.WriteRow({"id", "name"});
    w.WriteRow({"1", "with,comma"});
    w.WriteRow({"2", "with \"quote\""});
  }
  CsvReader r(path);
  ASSERT_EQ(r.num_rows(), 3u);
  EXPECT_EQ(r.row(1)[1], "with,comma");
  EXPECT_EQ(r.row(2)[1], "with \"quote\"");
  std::remove(path.c_str());
}

TEST(StringUtil, Split) {
  const auto parts = Split("a:b::c", ':');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(Trim("  x \t\n"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtil, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtil, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(StartsWith("pathrank", "path"));
  EXPECT_FALSE(StartsWith("path", "pathrank"));
}

TEST(Env, FallbacksWhenUnset) {
  EXPECT_EQ(EnvString("PATHRANK_TEST_UNSET_VAR", "dflt"), "dflt");
  EXPECT_EQ(EnvInt("PATHRANK_TEST_UNSET_VAR", 42), 42);
  EXPECT_DOUBLE_EQ(EnvDouble("PATHRANK_TEST_UNSET_VAR", 2.5), 2.5);
  EXPECT_TRUE(EnvBool("PATHRANK_TEST_UNSET_VAR", true));
}

TEST(Env, ParsesSetValues) {
  setenv("PATHRANK_TEST_VAR", "17", 1);
  EXPECT_EQ(EnvInt("PATHRANK_TEST_VAR", 0), 17);
  setenv("PATHRANK_TEST_VAR", "3.25", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("PATHRANK_TEST_VAR", 0.0), 3.25);
  setenv("PATHRANK_TEST_VAR", "yes", 1);
  EXPECT_TRUE(EnvBool("PATHRANK_TEST_VAR", false));
  setenv("PATHRANK_TEST_VAR", "off", 1);
  EXPECT_FALSE(EnvBool("PATHRANK_TEST_VAR", true));
  unsetenv("PATHRANK_TEST_VAR");
}

TEST(Parse, WholeTokenIntegers) {
  int64_t i64 = 0;
  EXPECT_TRUE(ParseInt64("-9223372036854775808", &i64));
  EXPECT_EQ(i64, INT64_MIN);
  EXPECT_TRUE(ParseInt64("9223372036854775807", &i64));
  EXPECT_EQ(i64, INT64_MAX);
  // Half-parses under std::stoll; must fail whole-token.
  EXPECT_FALSE(ParseInt64("12abc", &i64));
  EXPECT_FALSE(ParseInt64(" 12", &i64));
  EXPECT_FALSE(ParseInt64("", &i64));
  // One past INT64_MAX: overflow is a failure, not a saturate.
  EXPECT_FALSE(ParseInt64("9223372036854775808", &i64));

  uint64_t u64 = 0;
  EXPECT_TRUE(ParseUInt64("18446744073709551615", &u64));
  EXPECT_EQ(u64, UINT64_MAX);
  EXPECT_FALSE(ParseUInt64("18446744073709551616", &u64));
  EXPECT_FALSE(ParseUInt64("-1", &u64));
  EXPECT_FALSE(ParseUInt64("0x10", &u64));
}

TEST(Parse, DoubleRejectsNonFiniteAndJunk) {
  double d = 0.0;
  EXPECT_TRUE(ParseDouble("-0.5", &d));
  EXPECT_DOUBLE_EQ(d, -0.5);
  EXPECT_TRUE(ParseDouble("1e3", &d));
  EXPECT_DOUBLE_EQ(d, 1000.0);
  EXPECT_FALSE(ParseDouble("nan", &d));
  EXPECT_FALSE(ParseDouble("inf", &d));
  EXPECT_FALSE(ParseDouble("12,3", &d));
  EXPECT_FALSE(ParseDouble("1.5x", &d));
}

TEST(Logging, ParseLevels) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("bogus"), LogLevel::kInfo);
}

TEST(Logging, CheckThrowsOnFailure) {
  EXPECT_THROW([] { PR_CHECK(1 == 2) << "should throw"; }(),
               std::logic_error);
}

TEST(Logging, CheckPassesSilently) {
  EXPECT_NO_THROW([] { PR_CHECK(1 == 1) << "fine"; }());
}

// Hand-computed nearest-rank quantiles: PercentileSorted must return the
// element at index ceil(p * n) - 1. The cases where p * n is an exact
// integer (p50 of an even-sized sample) are the ones the old floor(p * n)
// indexing got one rank too high.
TEST(Percentile, NearestRankEvenSample) {
  const std::vector<double> four = {1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(PercentileSorted(four, 0.50), 2.0);   // ceil(2) - 1 = index 1
  EXPECT_EQ(PercentileSorted(four, 0.25), 1.0);   // ceil(1) - 1 = index 0
  EXPECT_EQ(PercentileSorted(four, 0.75), 3.0);   // ceil(3) - 1 = index 2
  EXPECT_EQ(PercentileSorted(four, 0.99), 4.0);   // ceil(3.96) - 1 = 3
  EXPECT_EQ(PercentileSorted(four, 1.00), 4.0);
  EXPECT_EQ(PercentileSorted(four, 0.00), 1.0);   // clamped to the min
}

TEST(Percentile, NearestRankOddSample) {
  const std::vector<double> five = {10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_EQ(PercentileSorted(five, 0.50), 30.0);  // ceil(2.5) - 1 = 2
  EXPECT_EQ(PercentileSorted(five, 0.60), 30.0);  // ceil(3) - 1 = 2
  EXPECT_EQ(PercentileSorted(five, 0.61), 40.0);  // ceil(3.05) - 1 = 3
  EXPECT_EQ(PercentileSorted(five, 0.99), 50.0);
}

TEST(Percentile, SingleSampleIsEveryQuantile) {
  const std::vector<double> one = {7.0};
  EXPECT_EQ(PercentileSorted(one, 0.0), 7.0);
  EXPECT_EQ(PercentileSorted(one, 0.5), 7.0);
  EXPECT_EQ(PercentileSorted(one, 0.99), 7.0);
  EXPECT_EQ(PercentileSorted(one, 1.0), 7.0);
}

TEST(CondVar, WaitForTimesOutWithNobodyNotifying) {
  common::Mutex mu;
  common::CondVar cv;
  // Spurious wakeups return no_timeout early, so loop until the wait
  // itself reports timeout — bounded by an outer deadline generous
  // enough (5 s vs 5 ms waits) that a scheduler hiccup cannot flake it.
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  std::cv_status status = std::cv_status::no_timeout;
  common::MutexLock lock(mu);
  while (status != std::cv_status::timeout &&
         std::chrono::steady_clock::now() < give_up) {
    status = cv.WaitFor(mu, std::chrono::milliseconds(5));
  }
  EXPECT_EQ(status, std::cv_status::timeout);
}

TEST(CondVar, WaitUntilPastDeadlineReportsTimeoutImmediately) {
  common::Mutex mu;
  common::CondVar cv;
  common::MutexLock lock(mu);
  // An already-expired deadline must come back timeout, not block.
  const auto past =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  EXPECT_EQ(cv.WaitUntil(mu, past), std::cv_status::timeout);
}

TEST(CondVar, WaitUntilWakesOnNotifyBeforeDeadline) {
  common::Mutex mu;
  common::CondVar cv;
  bool ready = false;  // guarded by mu (local, so no GUARDED_BY member)
  std::thread notifier([&] {
    {
      common::MutexLock lock(mu);
      ready = true;
    }
    cv.NotifyOne();
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool timed_out = false;
  {
    common::MutexLock lock(mu);
    // Predicate loop, as the CondVar contract requires: WaitUntil holds
    // mu again on return, so reading `ready` here is race-free.
    while (!ready && !timed_out) {
      timed_out = cv.WaitUntil(mu, deadline) == std::cv_status::timeout;
    }
    EXPECT_TRUE(ready);
    EXPECT_FALSE(timed_out);
  }
  notifier.join();
}

TEST(CondVar, WaitForReacquiresTheMutexOnTimeout) {
  // The timed waits must return with the mutex HELD whatever the
  // outcome — guarded state is legal to touch right after. (Under
  // -DPATHRANK_DEBUG_LOCK_RANK the held-stack must agree.)
  common::Mutex mu(42, "test.cv_mutex");
  common::CondVar cv;
  {
    common::MutexLock lock(mu);
    (void)cv.WaitFor(mu, std::chrono::milliseconds(1));
    if (common::LockRankCheckingEnabled()) {
      EXPECT_EQ(common::LockRankHeldCount(), 1u);
    }
  }
  EXPECT_EQ(common::LockRankHeldCount(), 0u);
}

}  // namespace
}  // namespace pathrank
