// Training-data pipeline: candidate generation (TkDI/D-TkDI), labels,
// dataset splitting and the length-bucketed batcher.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "data/batcher.h"
#include "data/candidate_generation.h"
#include "data/dataset.h"
#include "graph/network_builder.h"
#include "routing/path_similarity.h"
#include "traj/trajectory_generator.h"

namespace pathrank::data {
namespace {

using graph::BuildTestNetwork;
using graph::RoadNetwork;

std::vector<traj::TripPath> MakeTrips(const RoadNetwork& net, int n,
                                      uint64_t seed) {
  traj::TrajectoryGeneratorConfig cfg;
  cfg.num_drivers = 5;
  cfg.num_trips = n;
  cfg.min_trip_distance_m = 1200.0;
  cfg.seed = seed;
  return traj::TrajectoryGenerator(net, cfg).Generate();
}

class CandidateStrategies
    : public ::testing::TestWithParam<CandidateStrategy> {};

TEST_P(CandidateStrategies, ProducesLabelledCandidates) {
  const RoadNetwork net = BuildTestNetwork(4);
  const auto trips = MakeTrips(net, 10, 5);
  CandidateGenConfig cfg;
  cfg.strategy = GetParam();
  cfg.k = 6;
  for (size_t i = 0; i < trips.size(); ++i) {
    const RankingQuery q = GenerateQuery(net, trips[i], static_cast<int>(i), cfg);
    EXPECT_EQ(q.source, trips[i].source());
    EXPECT_EQ(q.destination, trips[i].destination());
    EXPECT_GE(q.candidates.size(), 1u);
    EXPECT_LE(q.candidates.size(), 6u);
    for (const RankingCandidate& c : q.candidates) {
      EXPECT_GE(c.label, 0.0);
      EXPECT_LE(c.label, 1.0);
      EXPECT_EQ(c.path.source(), q.source);
      EXPECT_EQ(c.path.destination(), q.destination);
      // Label really is the weighted Jaccard against the truth.
      EXPECT_NEAR(c.label,
                  routing::WeightedJaccard(net, c.path.edges, q.truth.edges),
                  1e-12);
    }
  }
}

TEST_P(CandidateStrategies, CandidatesAreDistinct) {
  const RoadNetwork net = BuildTestNetwork(8);
  const auto trips = MakeTrips(net, 5, 9);
  CandidateGenConfig cfg;
  cfg.strategy = GetParam();
  cfg.k = 8;
  for (const auto& trip : trips) {
    const RankingQuery q = GenerateQuery(net, trip, 0, cfg);
    std::set<std::vector<graph::VertexId>> seen;
    for (const auto& c : q.candidates) {
      EXPECT_TRUE(seen.insert(c.path.vertices).second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, CandidateStrategies,
                         ::testing::Values(CandidateStrategy::kTopK,
                                           CandidateStrategy::kDiversifiedTopK));

TEST(CandidateGeneration, StrategyNames) {
  EXPECT_EQ(CandidateStrategyName(CandidateStrategy::kTopK), "TkDI");
  EXPECT_EQ(CandidateStrategyName(CandidateStrategy::kDiversifiedTopK),
            "D-TkDI");
}

TEST(CandidateGeneration, DiversifiedCoversLowSimilarityRegion) {
  // The motivation for D-TkDI: diversified candidate sets reach further
  // into the low-similarity region instead of piling up near-duplicates of
  // the shortest path, giving the regressor more label coverage.
  const RoadNetwork net = BuildTestNetwork(10);
  const auto trips = MakeTrips(net, 20, 11);
  CandidateGenConfig topk;
  topk.strategy = CandidateStrategy::kTopK;
  topk.k = 8;
  CandidateGenConfig div = topk;
  div.strategy = CandidateStrategy::kDiversifiedTopK;
  // On a small grid the top-k paths are already fairly diverse; a strict
  // threshold is needed for the two strategies to produce different sets.
  div.similarity_threshold = 0.25;

  double min_label_topk = 0.0;
  double min_label_div = 0.0;
  double mean_label_topk = 0.0;
  double mean_label_div = 0.0;
  size_t n_topk = 0;
  size_t n_div = 0;
  for (const auto& trip : trips) {
    const auto qt = GenerateQuery(net, trip, 0, topk);
    const auto qd = GenerateQuery(net, trip, 0, div);
    auto min_label = [](const RankingQuery& q) {
      double lo = 1.0;
      for (const auto& c : q.candidates) lo = std::min(lo, c.label);
      return lo;
    };
    min_label_topk += min_label(qt);
    min_label_div += min_label(qd);
    for (const auto& c : qt.candidates) {
      mean_label_topk += c.label;
      ++n_topk;
    }
    for (const auto& c : qd.candidates) {
      mean_label_div += c.label;
      ++n_div;
    }
  }
  mean_label_topk /= static_cast<double>(n_topk);
  mean_label_div /= static_cast<double>(n_div);
  // Diversified sets reach lower-similarity candidates both in the
  // aggregate minimum and on average.
  EXPECT_LT(min_label_div, min_label_topk);
  EXPECT_LT(mean_label_div, mean_label_topk);
}

TEST(Dataset, SplitIsDisjointAndComplete) {
  const RoadNetwork net = BuildTestNetwork(12);
  const auto trips = MakeTrips(net, 30, 13);
  CandidateGenConfig cfg;
  cfg.k = 4;
  RankingDataset dataset;
  dataset.queries = GenerateQueries(net, trips, cfg);

  pathrank::Rng rng(14);
  const DatasetSplit split = SplitDataset(dataset, 0.6, 0.2, rng);
  EXPECT_EQ(split.train.num_queries() + split.validation.num_queries() +
                split.test.num_queries(),
            dataset.num_queries());
  std::set<int> ids;
  for (const auto& q : split.train.queries) ids.insert(q.query_id);
  for (const auto& q : split.validation.queries) {
    EXPECT_FALSE(ids.count(q.query_id));
    ids.insert(q.query_id);
  }
  for (const auto& q : split.test.queries) {
    EXPECT_FALSE(ids.count(q.query_id));
  }
  EXPECT_NEAR(static_cast<double>(split.train.num_queries()), 18.0, 1.0);
}

TEST(Dataset, StatsAreSane) {
  const RoadNetwork net = BuildTestNetwork(16);
  const auto trips = MakeTrips(net, 10, 17);
  CandidateGenConfig cfg;
  cfg.k = 5;
  RankingDataset dataset;
  dataset.queries = GenerateQueries(net, trips, cfg);
  const DatasetStats stats = ComputeStats(dataset);
  EXPECT_EQ(stats.num_queries, 10u);
  EXPECT_GT(stats.num_examples, 10u);
  EXPECT_GT(stats.mean_path_vertices, 2.0);
  EXPECT_GE(stats.min_label, 0.0);
  EXPECT_LE(stats.max_label, 1.0);
  EXPECT_FALSE(StatsToString(stats).empty());
}

TEST(Batcher, CoversEveryExampleExactlyOnce) {
  const RoadNetwork net = BuildTestNetwork(18);
  const auto trips = MakeTrips(net, 12, 19);
  CandidateGenConfig cfg;
  cfg.k = 4;
  RankingDataset dataset;
  dataset.queries = GenerateQueries(net, trips, cfg);
  auto examples = FlattenDataset(dataset);
  const size_t total = examples.size();

  Batcher batcher(std::move(examples), 8);
  size_t seen = 0;
  for (size_t b = 0; b < batcher.num_batches(); ++b) {
    const ModelBatch batch = batcher.GetBatch(b);
    EXPECT_EQ(batch.sequences.batch_size, batch.labels.size());
    EXPECT_LE(batch.sequences.batch_size, 8u);
    seen += batch.sequences.batch_size;
  }
  EXPECT_EQ(seen, total);
}

TEST(Batcher, BucketingLimitsPadding) {
  const RoadNetwork net = BuildTestNetwork(20);
  const auto trips = MakeTrips(net, 20, 21);
  CandidateGenConfig cfg;
  cfg.k = 6;
  RankingDataset dataset;
  dataset.queries = GenerateQueries(net, trips, cfg);
  Batcher batcher(FlattenDataset(dataset), 16);
  // Within each batch the spread between min and max true length must be
  // modest thanks to the global length sort.
  for (size_t b = 0; b < batcher.num_batches(); ++b) {
    const ModelBatch batch = batcher.GetBatch(b);
    int32_t lo = batch.sequences.lengths[0];
    int32_t hi = lo;
    for (int32_t len : batch.sequences.lengths) {
      lo = std::min(lo, len);
      hi = std::max(hi, len);
    }
    EXPECT_EQ(hi, static_cast<int32_t>(batch.sequences.max_len));
  }
}

TEST(Batcher, ReshuffleKeepsCoverage) {
  const RoadNetwork net = BuildTestNetwork(22);
  const auto trips = MakeTrips(net, 8, 23);
  CandidateGenConfig cfg;
  cfg.k = 3;
  RankingDataset dataset;
  dataset.queries = GenerateQueries(net, trips, cfg);
  Batcher batcher(FlattenDataset(dataset), 4);
  pathrank::Rng rng(24);
  std::multiset<float> labels_before;
  for (size_t b = 0; b < batcher.num_batches(); ++b) {
    for (float l : batcher.GetBatch(b).labels) labels_before.insert(l);
  }
  batcher.Reshuffle(rng);
  std::multiset<float> labels_after;
  for (size_t b = 0; b < batcher.num_batches(); ++b) {
    for (float l : batcher.GetBatch(b).labels) labels_after.insert(l);
  }
  EXPECT_EQ(labels_before, labels_after);
}

TEST(Batcher, RejectsEmptyInput) {
  EXPECT_THROW(Batcher({}, 4), std::logic_error);
}

}  // namespace
}  // namespace pathrank::data
