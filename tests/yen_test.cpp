// Yen's k-shortest-paths and the diversified top-k generator.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "graph/network_builder.h"
#include "routing/cost_model.h"
#include "routing/diversified.h"
#include "routing/path_similarity.h"
#include "routing/yen.h"

namespace pathrank::routing {
namespace {

using graph::BuildTestNetwork;
using graph::RoadCategory;
using graph::RoadNetwork;
using graph::RoadNetworkBuilder;

/// Small diamond graph with known path spectrum between 0 and 3:
///   0->1->3 cost 2, 0->2->3 cost 4, 0->1->2->3 cost 5, 0->2->1->3 ... etc.
RoadNetwork MakeDiamond() {
  RoadNetworkBuilder b;
  for (int i = 0; i < 4; ++i) b.AddVertex({57.0 + 0.01 * i, 9.9});
  b.AddBidirectionalEdge(0, 1, 1.0, RoadCategory::kResidential);
  b.AddBidirectionalEdge(1, 3, 1.0, RoadCategory::kResidential);
  b.AddBidirectionalEdge(0, 2, 2.0, RoadCategory::kResidential);
  b.AddBidirectionalEdge(2, 3, 2.0, RoadCategory::kResidential);
  b.AddBidirectionalEdge(1, 2, 2.0, RoadCategory::kResidential);
  return b.Build();
}

TEST(Yen, DiamondSpectrumInOrder) {
  const RoadNetwork net = MakeDiamond();
  const auto cost = EdgeCostFn::Length(net);
  const auto paths = TopKShortestPaths(net, 0, 3, cost, 4);
  ASSERT_EQ(paths.size(), 4u);
  EXPECT_NEAR(paths[0].cost, 2.0, 1e-9);  // 0-1-3
  EXPECT_NEAR(paths[1].cost, 4.0, 1e-9);  // 0-2-3
  EXPECT_NEAR(paths[2].cost, 5.0, 1e-9);  // 0-1-2-3
  EXPECT_NEAR(paths[3].cost, 5.0, 1e-9);  // 0-2-1-3
}

TEST(Yen, FirstPathIsShortest) {
  const RoadNetwork net = BuildTestNetwork();
  const auto cost = EdgeCostFn::Length(net);
  Dijkstra dijkstra(net);
  const auto sp = dijkstra.ShortestPath(0, 63, cost);
  const auto paths = TopKShortestPaths(net, 0, 63, cost, 5);
  ASSERT_FALSE(paths.empty());
  ASSERT_TRUE(sp.has_value());
  EXPECT_NEAR(paths[0].cost, sp->cost, 1e-9);
}

class YenProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(YenProperty, PathsAreSortedSimpleDistinctAndValid) {
  const RoadNetwork net = BuildTestNetwork(GetParam());
  const auto cost = EdgeCostFn::Length(net);
  pathrank::Rng rng(GetParam() * 13 + 1);
  for (int trial = 0; trial < 5; ++trial) {
    const auto s = static_cast<VertexId>(rng.NextBounded(net.num_vertices()));
    const auto t = static_cast<VertexId>(rng.NextBounded(net.num_vertices()));
    if (s == t) continue;
    const auto paths = TopKShortestPaths(net, s, t, cost, 8);
    ASSERT_FALSE(paths.empty());
    std::set<std::vector<VertexId>> seen;
    double prev_cost = 0.0;
    for (const Path& p : paths) {
      EXPECT_TRUE(ValidatePath(net, p).empty()) << ValidatePath(net, p);
      EXPECT_TRUE(IsSimplePath(p));
      EXPECT_EQ(p.source(), s);
      EXPECT_EQ(p.destination(), t);
      EXPECT_GE(p.cost, prev_cost - 1e-9);  // non-decreasing
      prev_cost = p.cost;
      EXPECT_TRUE(seen.insert(p.vertices).second) << "duplicate path";
    }
  }
}

TEST_P(YenProperty, EnumeratorMatchesOneShot) {
  const RoadNetwork net = BuildTestNetwork(GetParam() + 50);
  const auto cost = EdgeCostFn::Length(net);
  YenEnumerator yen(net, 0, 63, cost);
  std::vector<Path> incremental;
  for (int i = 0; i < 6; ++i) {
    auto p = yen.Next();
    if (!p.has_value()) break;
    incremental.push_back(*p);
  }
  const auto oneshot = TopKShortestPaths(net, 0, 63, cost, 6);
  ASSERT_EQ(incremental.size(), oneshot.size());
  for (size_t i = 0; i < oneshot.size(); ++i) {
    EXPECT_NEAR(incremental[i].cost, oneshot[i].cost, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, YenProperty, ::testing::Values(2, 8, 18, 44));

TEST(Yen, ExhaustsFiniteGraph) {
  // Line graph: exactly one simple path between the endpoints.
  RoadNetworkBuilder b;
  for (int i = 0; i < 4; ++i) b.AddVertex({57.0 + 0.01 * i, 9.9});
  for (int i = 0; i < 3; ++i) {
    b.AddBidirectionalEdge(static_cast<VertexId>(i),
                           static_cast<VertexId>(i + 1), 1.0,
                           RoadCategory::kResidential);
  }
  const RoadNetwork net = b.Build();
  const auto cost = EdgeCostFn::Length(net);
  const auto paths = TopKShortestPaths(net, 0, 3, cost, 10);
  EXPECT_EQ(paths.size(), 1u);
}

TEST(Yen, UnreachableYieldsEmpty) {
  RoadNetworkBuilder b;
  b.AddVertex({57.0, 9.9});
  b.AddVertex({57.1, 9.9});
  b.AddEdge(1, 0, 10.0, RoadCategory::kResidential);
  const RoadNetwork net = b.Build();
  const auto cost = EdgeCostFn::Length(net);
  EXPECT_TRUE(TopKShortestPaths(net, 0, 1, cost, 3).empty());
}

class DiversifiedProperty : public ::testing::TestWithParam<double> {};

TEST_P(DiversifiedProperty, PairwiseSimilarityRespectsThreshold) {
  const RoadNetwork net = BuildTestNetwork(77);
  const auto cost = EdgeCostFn::Length(net);
  DiversifiedOptions options;
  options.k = 6;
  options.similarity_threshold = GetParam();
  options.pad_with_rejected = false;  // strict mode for the property
  pathrank::Rng rng(91);
  for (int trial = 0; trial < 5; ++trial) {
    const auto s = static_cast<VertexId>(rng.NextBounded(net.num_vertices()));
    const auto t = static_cast<VertexId>(rng.NextBounded(net.num_vertices()));
    if (s == t) continue;
    const auto paths = DiversifiedTopK(net, s, t, cost, options);
    for (size_t i = 0; i < paths.size(); ++i) {
      for (size_t j = i + 1; j < paths.size(); ++j) {
        EXPECT_LE(WeightedJaccard(net, paths[i].edges, paths[j].edges),
                  GetParam() + 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, DiversifiedProperty,
                         ::testing::Values(0.3, 0.5, 0.8));

TEST(Diversified, FirstPathIsShortest) {
  const RoadNetwork net = BuildTestNetwork(5);
  const auto cost = EdgeCostFn::Length(net);
  Dijkstra dijkstra(net);
  const auto sp = dijkstra.ShortestPath(3, 60, cost);
  DiversifiedOptions options;
  options.k = 5;
  const auto paths = DiversifiedTopK(net, 3, 60, cost, options);
  ASSERT_FALSE(paths.empty());
  ASSERT_TRUE(sp.has_value());
  EXPECT_NEAR(paths[0].cost, sp->cost, 1e-9);
}

TEST(Diversified, PaddingFillsUpToK) {
  const RoadNetwork net = BuildTestNetwork(6);
  const auto cost = EdgeCostFn::Length(net);
  DiversifiedOptions strict;
  strict.k = 8;
  strict.similarity_threshold = 0.05;  // extremely strict
  strict.pad_with_rejected = false;
  DiversifiedOptions padded = strict;
  padded.pad_with_rejected = true;
  const auto strict_paths = DiversifiedTopK(net, 0, 63, cost, strict);
  const auto padded_paths = DiversifiedTopK(net, 0, 63, cost, padded);
  EXPECT_GE(padded_paths.size(), strict_paths.size());
  EXPECT_LE(padded_paths.size(), 8u);
  // Padded output stays sorted by cost.
  for (size_t i = 1; i < padded_paths.size(); ++i) {
    EXPECT_GE(padded_paths[i].cost, padded_paths[i - 1].cost - 1e-9);
  }
}

TEST(Diversified, MoreDiverseThanTopK) {
  const RoadNetwork net = BuildTestNetwork(9);
  const auto cost = EdgeCostFn::Length(net);
  DiversifiedOptions options;
  options.k = 6;
  options.similarity_threshold = 0.6;
  pathrank::Rng rng(17);
  double topk_sim = 0.0;
  double div_sim = 0.0;
  int pairs = 0;
  for (int trial = 0; trial < 8; ++trial) {
    const auto s = static_cast<VertexId>(rng.NextBounded(net.num_vertices()));
    const auto t = static_cast<VertexId>(rng.NextBounded(net.num_vertices()));
    if (s == t) continue;
    const auto topk = TopKShortestPaths(net, s, t, cost, options.k);
    const auto div = DiversifiedTopK(net, s, t, cost, options);
    const size_t n = std::min(topk.size(), div.size());
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        topk_sim += WeightedJaccard(net, topk[i].edges, topk[j].edges);
        div_sim += WeightedJaccard(net, div[i].edges, div[j].edges);
        ++pairs;
      }
    }
  }
  ASSERT_GT(pairs, 0);
  // The diversified sets must be meaningfully less self-similar.
  EXPECT_LT(div_sim, topk_sim);
}

}  // namespace
}  // namespace pathrank::routing
