// BatchingQueue: coalesced scoring is bitwise equal to unbatched scoring
// (the headline guarantee), the row-independence property it rests on,
// flush sizing (max_batch / max_wait_us), shutdown draining, and
// concurrent submitters.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/model.h"
#include "graph/network_builder.h"
#include "serving/batching_queue.h"
#include "serving/serving_engine.h"

namespace pathrank::serving {
namespace {

core::PathRankConfig SmallConfig() {
  core::PathRankConfig cfg;
  cfg.embedding_dim = 8;
  cfg.hidden_size = 12;
  cfg.seed = 3;
  return cfg;
}

struct QueueFixture {
  graph::RoadNetwork network = graph::BuildTestNetwork();
  core::PathRankModel model;  // initialised after network (member order)
  data::CandidateGenConfig gen;
  std::vector<RankQuery> queries = {{0, 63}, {7, 56}, {3, 60},
                                    {21, 42}, {14, 49}, {8, 55}};

  QueueFixture() : model(network.num_vertices(), SmallConfig()) { gen.k = 5; }
};

void ExpectSameRanking(const std::vector<ScoredPath>& expected,
                       const std::vector<ScoredPath>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].score, actual[i].score) << "rank " << i;
    EXPECT_EQ(expected[i].path.vertices, actual[i].path.vertices)
        << "rank " << i;
  }
}

// The property coalescing rests on: a sequence's score does not depend on
// which other sequences share the batch (padding width included).
TEST(BatchComposition, RowScoresAreIndependentOfBatchmates) {
  QueueFixture fx;
  const ServingEngine engine(fx.network, fx.model);

  // All candidate sets merged into one wide batch...
  std::vector<std::vector<int32_t>> all_seqs;
  for (const auto& q : fx.queries) {
    const auto paths =
        GenerateCandidates(fx.network, q.source, q.destination, fx.gen);
    for (const auto& p : paths) {
      all_seqs.push_back(PathToSequence(p));
    }
  }
  ASSERT_GE(all_seqs.size(), 8u);
  const auto coalesced =
      engine.ScoreCoalesced(nn::SequenceBatch::FromSequences(all_seqs));

  // ...must score every row exactly as that row alone does.
  for (size_t i = 0; i < all_seqs.size(); ++i) {
    const auto alone =
        engine.ScoreSequences(nn::SequenceBatch::FromSequences({all_seqs[i]}));
    ASSERT_EQ(alone.size(), 1u);
    EXPECT_EQ(alone[0], coalesced[i]) << "row " << i;
  }
}

TEST(BatchingQueue, CoalescedScoreIsBitwiseEqualToScoreBatch) {
  QueueFixture fx;
  const ServingEngine engine(fx.network, fx.model);

  std::vector<std::vector<routing::Path>> candidate_sets;
  std::vector<std::vector<ScoredPath>> expected;
  for (const auto& q : fx.queries) {
    candidate_sets.push_back(
        GenerateCandidates(fx.network, q.source, q.destination, fx.gen));
    expected.push_back(engine.ScoreBatch(candidate_sets.back()));
  }

  BatchingOptions options;
  options.max_batch = 256;       // room for everything in one flush
  options.max_wait_us = 200000;  // linger long enough to coalesce them all
  BatchingQueue queue(engine, options);
  std::vector<std::future<std::vector<ScoredPath>>> futures;
  for (const auto& set : candidate_sets) {
    futures.push_back(queue.SubmitScore(set));
  }
  for (size_t q = 0; q < futures.size(); ++q) {
    ExpectSameRanking(expected[q], futures[q].get());
  }
  // The linger window dwarfs submission time, so everything coalesced.
  EXPECT_EQ(queue.num_flushes(), 1u);
  EXPECT_EQ(queue.num_requests(), fx.queries.size());
}

TEST(BatchingQueue, SubmitRankMatchesEngineRank) {
  QueueFixture fx;
  const ServingEngine engine(fx.network, fx.model);
  BatchingQueue queue(engine);
  for (const auto& q : fx.queries) {
    auto future = queue.SubmitRank(q.source, q.destination, fx.gen);
    ExpectSameRanking(engine.Rank(q.source, q.destination, fx.gen),
                      future.get());
  }
}

TEST(BatchingQueue, MaxBatchCapsFlushSize) {
  QueueFixture fx;
  const ServingEngine engine(fx.network, fx.model);
  BatchingOptions options;
  options.max_batch = 1;  // every request must flush alone
  options.max_wait_us = 0;
  BatchingQueue queue(engine, options);
  std::vector<std::future<std::vector<ScoredPath>>> futures;
  for (const auto& q : fx.queries) {
    futures.push_back(queue.SubmitRank(q.source, q.destination, fx.gen));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    const auto& q = fx.queries[i];
    ExpectSameRanking(engine.Rank(q.source, q.destination, fx.gen),
                      futures[i].get());
  }
  EXPECT_EQ(queue.num_flushes(), queue.num_requests());
}

TEST(BatchingQueue, DestructorDrainsPendingRequests) {
  QueueFixture fx;
  const ServingEngine engine(fx.network, fx.model);
  const auto& q = fx.queries[0];
  const auto expected = engine.Rank(q.source, q.destination, fx.gen);
  std::future<std::vector<ScoredPath>> future;
  {
    BatchingOptions options;
    options.max_batch = 10000;
    options.max_wait_us = 60 * 1000 * 1000;  // would linger for a minute
    BatchingQueue queue(engine, options);
    future = queue.SubmitRank(q.source, q.destination, fx.gen);
    // Destruction must flush the pending request, not abandon it.
  }
  ExpectSameRanking(expected, future.get());
}

TEST(BatchingQueue, EmptySubmitCompletesImmediately) {
  QueueFixture fx;
  const ServingEngine engine(fx.network, fx.model);
  BatchingQueue queue(engine);
  auto future = queue.SubmitScore({});
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_TRUE(future.get().empty());
}

TEST(BatchingQueue, EmptyPathThrowsOnTheSubmitterNotTheDispatcher) {
  QueueFixture fx;
  const ServingEngine engine(fx.network, fx.model);
  BatchingQueue queue(engine);
  // An empty path must fail the offending caller (like ScoreBatch would),
  // never reach the dispatcher thread, and leave the queue serviceable.
  EXPECT_THROW(queue.SubmitScore({routing::Path{}}), std::exception);
  const auto& q = fx.queries[0];
  ExpectSameRanking(engine.Rank(q.source, q.destination, fx.gen),
                    queue.SubmitRank(q.source, q.destination, fx.gen).get());
}

TEST(BatchingQueue, ConcurrentSubmittersAllMatchSerialReference) {
  QueueFixture fx;
  const ServingEngine engine(fx.network, fx.model);
  std::vector<std::vector<ScoredPath>> expected;
  for (const auto& q : fx.queries) {
    expected.push_back(engine.Rank(q.source, q.destination, fx.gen));
  }

  BatchingQueue queue(engine);
  constexpr size_t kThreads = 6;
  constexpr size_t kRounds = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t round = 0; round < kRounds; ++round) {
        const size_t q = (t + round) % fx.queries.size();
        const auto got =
            queue.SubmitRank(fx.queries[q].source, fx.queries[q].destination,
                             fx.gen)
                .get();
        if (got.size() != expected[q].size()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (size_t i = 0; i < got.size(); ++i) {
          if (got[i].score != expected[q][i].score ||
              got[i].path.vertices != expected[q][i].path.vertices) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(queue.num_requests(), kThreads * kRounds);
}

// ScoreCoalesced called from inside a pool region must fall back to the
// serial path (never block on the pool while holding the batch replica)
// and still produce identical scores.
TEST(BatchingQueue, ScoreCoalescedInsideParallelRegionFallsBackSerially) {
  QueueFixture fx;
  const ServingEngine engine(fx.network, fx.model);
  const auto paths =
      GenerateCandidates(fx.network, 0, 63, fx.gen);
  std::vector<std::vector<int32_t>> seqs;
  for (const auto& p : paths) {
    seqs.push_back(PathToSequence(p));
  }
  const auto batch = nn::SequenceBatch::FromSequences(seqs);
  const auto expected = engine.ScoreCoalesced(batch);

  std::vector<float> inside;
  ParallelForShards(0, 1, [&](size_t, size_t, size_t) {
    inside = engine.ScoreCoalesced(batch);
  });
  ASSERT_EQ(expected.size(), inside.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i], inside[i]);
  }
}

}  // namespace
}  // namespace pathrank::serving
