// ALT (A* with landmarks) correctness and effectiveness, plus the
// penalty-based alternative-routes generator.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/network_builder.h"
#include "routing/alt.h"
#include "routing/cost_model.h"
#include "routing/dijkstra.h"
#include "routing/path_similarity.h"
#include "routing/penalty_alternatives.h"

namespace pathrank::routing {
namespace {

using graph::BuildSyntheticNetwork;
using graph::BuildTestNetwork;
using graph::RoadNetwork;
using graph::SyntheticNetworkConfig;

class AltProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AltProperty, MatchesDijkstraOnLength) {
  const RoadNetwork net = BuildTestNetwork(GetParam());
  const auto cost = EdgeCostFn::Length(net);
  AltRouter alt(net, cost, 6);
  Dijkstra dijkstra(net);
  pathrank::Rng rng(GetParam() * 9 + 1);
  for (int i = 0; i < 30; ++i) {
    const auto s = static_cast<VertexId>(rng.NextBounded(net.num_vertices()));
    const auto t = static_cast<VertexId>(rng.NextBounded(net.num_vertices()));
    if (s == t) continue;
    const auto pd = dijkstra.ShortestPath(s, t, cost);
    const auto pa = alt.ShortestPath(s, t);
    ASSERT_EQ(pd.has_value(), pa.has_value());
    if (pd.has_value()) {
      EXPECT_NEAR(pd->cost, pa->cost, 1e-6 * std::max(1.0, pd->cost));
      EXPECT_TRUE(ValidatePath(net, *pa).empty()) << ValidatePath(net, *pa);
    }
  }
}

TEST_P(AltProperty, MatchesDijkstraOnCustomMetric) {
  // The point of ALT over geometric A*: it supports arbitrary metrics.
  const RoadNetwork net = BuildTestNetwork(GetParam() + 10);
  pathrank::Rng wrng(GetParam());
  std::vector<double> weights(net.num_edges());
  for (double& w : weights) w = wrng.NextUniform(0.5, 3.0);
  const auto cost = EdgeCostFn::Custom(net, weights);
  AltRouter alt(net, cost, 6);
  Dijkstra dijkstra(net);
  pathrank::Rng rng(GetParam() * 11 + 5);
  for (int i = 0; i < 20; ++i) {
    const auto s = static_cast<VertexId>(rng.NextBounded(net.num_vertices()));
    const auto t = static_cast<VertexId>(rng.NextBounded(net.num_vertices()));
    if (s == t) continue;
    const auto pd = dijkstra.ShortestPath(s, t, cost);
    const auto pa = alt.ShortestPath(s, t);
    ASSERT_EQ(pd.has_value(), pa.has_value());
    if (pd.has_value()) {
      EXPECT_NEAR(pd->cost, pa->cost, 1e-6 * std::max(1.0, pd->cost));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AltProperty, ::testing::Values(2, 12, 32));

TEST(Alt, SettlesFewerVerticesThanDijkstra) {
  SyntheticNetworkConfig cfg;
  cfg.rows = 28;
  cfg.cols = 28;
  const RoadNetwork net = BuildSyntheticNetwork(cfg);
  const auto cost = EdgeCostFn::Length(net);
  AltRouter alt(net, cost, 8);
  Dijkstra dijkstra(net);
  pathrank::Rng rng(5);
  size_t settled_alt = 0;
  size_t settled_dij = 0;
  for (int i = 0; i < 20; ++i) {
    const auto s = static_cast<VertexId>(rng.NextBounded(net.num_vertices()));
    const auto t = static_cast<VertexId>(rng.NextBounded(net.num_vertices()));
    if (s == t) continue;
    dijkstra.ShortestPath(s, t, cost);
    alt.ShortestPath(s, t);
    settled_dij += dijkstra.last_settled_count();
    settled_alt += alt.last_settled_count();
  }
  // ALT must do meaningfully less work overall.
  EXPECT_LT(settled_alt * 2, settled_dij);
}

TEST(Alt, LandmarksAreDistinct) {
  const RoadNetwork net = BuildTestNetwork(3);
  AltRouter alt(net, EdgeCostFn::Length(net), 6);
  auto lm = alt.landmarks();
  std::sort(lm.begin(), lm.end());
  EXPECT_EQ(std::unique(lm.begin(), lm.end()), lm.end());
  EXPECT_EQ(lm.size(), 6u);
}

class PenaltyProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PenaltyProperty, PathsDistinctValidSorted) {
  const RoadNetwork net = BuildTestNetwork(GetParam());
  const auto cost = EdgeCostFn::TravelTime(net);
  PenaltyOptions options;
  options.k = 6;
  pathrank::Rng rng(GetParam() * 3);
  for (int i = 0; i < 5; ++i) {
    const auto s = static_cast<VertexId>(rng.NextBounded(net.num_vertices()));
    const auto t = static_cast<VertexId>(rng.NextBounded(net.num_vertices()));
    if (s == t) continue;
    const auto paths = PenaltyAlternatives(net, s, t, cost, options);
    ASSERT_FALSE(paths.empty());
    std::set<std::vector<VertexId>> seen;
    for (size_t j = 0; j < paths.size(); ++j) {
      EXPECT_TRUE(ValidatePath(net, paths[j]).empty());
      EXPECT_EQ(paths[j].source(), s);
      EXPECT_EQ(paths[j].destination(), t);
      EXPECT_TRUE(seen.insert(paths[j].vertices).second);
      if (j > 0) {
        EXPECT_GE(paths[j].cost, paths[j - 1].cost - 1e-9);
      }
    }
  }
}

TEST_P(PenaltyProperty, FirstPathIsShortest) {
  const RoadNetwork net = BuildTestNetwork(GetParam() + 40);
  const auto cost = EdgeCostFn::TravelTime(net);
  Dijkstra dijkstra(net);
  PenaltyOptions options;
  options.k = 4;
  const auto paths = PenaltyAlternatives(net, 2, 61, cost, options);
  const auto sp = dijkstra.ShortestPath(2, 61, cost);
  ASSERT_FALSE(paths.empty());
  ASSERT_TRUE(sp.has_value());
  EXPECT_NEAR(paths[0].cost, sp->cost, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PenaltyProperty, ::testing::Values(6, 16, 26));

TEST(Penalty, ProducesDiverseAlternatives) {
  const RoadNetwork net = BuildTestNetwork(9);
  const auto cost = EdgeCostFn::TravelTime(net);
  PenaltyOptions options;
  options.k = 5;
  options.penalty_factor = 1.5;
  const auto paths = PenaltyAlternatives(net, 0, 63, cost, options);
  ASSERT_GE(paths.size(), 3u);
  // Later alternatives must differ substantially from the shortest.
  const double sim =
      WeightedJaccard(net, paths.back().edges, paths.front().edges);
  EXPECT_LT(sim, 0.9);
}

TEST(Penalty, UnreachableYieldsEmpty) {
  graph::RoadNetworkBuilder b;
  b.AddVertex({57.0, 9.9});
  b.AddVertex({57.1, 9.9});
  b.AddEdge(1, 0, 10.0, graph::RoadCategory::kResidential);
  const RoadNetwork net = b.Build();
  const auto cost = EdgeCostFn::Length(net);
  EXPECT_TRUE(PenaltyAlternatives(net, 0, 1, cost, {}).empty());
}

}  // namespace
}  // namespace pathrank::routing
