// HMM map matcher: recovery of the true path from noisy simulated GPS and
// the cycle-removal helper.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/grid_index.h"
#include "graph/network_builder.h"
#include "routing/cost_model.h"
#include "routing/dijkstra.h"
#include "routing/path_similarity.h"
#include "traj/gps_simulator.h"
#include "traj/map_matcher.h"
#include "traj/trajectory_generator.h"

namespace pathrank::traj {
namespace {

using graph::BuildTestNetwork;
using graph::RoadNetwork;

class MapMatcherRecovery : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MapMatcherRecovery, RecoversSimulatedTrips) {
  const RoadNetwork net = BuildTestNetwork(GetParam());
  const graph::GridIndex index(net, 300.0);
  TrajectoryGeneratorConfig cfg;
  cfg.num_drivers = 4;
  cfg.num_trips = 8;
  cfg.min_trip_distance_m = 1500.0;
  cfg.seed = GetParam() * 3 + 2;
  const auto trips = TrajectoryGenerator(net, cfg).Generate();

  pathrank::Rng rng(GetParam() + 55);
  GpsSimulatorConfig gps_cfg;
  gps_cfg.sample_interval_s = 4.0;
  gps_cfg.noise_sigma_m = 12.0;
  MapMatcherConfig mm_cfg;
  mm_cfg.emission_sigma_m = 15.0;
  const MapMatcher matcher(net, index, mm_cfg);

  double total_similarity = 0.0;
  int matched_count = 0;
  for (const TripPath& trip : trips) {
    const Trajectory gps = SimulateGps(net, trip, gps_cfg, rng);
    const auto matched = matcher.Match(gps);
    if (!matched.has_value()) continue;
    ++matched_count;
    EXPECT_TRUE(routing::ValidatePath(net, *matched).empty());
    total_similarity +=
        routing::WeightedJaccard(net, matched->edges, trip.path.edges);
  }
  ASSERT_GE(matched_count, 6);  // nearly all trips should match
  // Average recovery quality must be high (>= 0.75 weighted Jaccard).
  EXPECT_GE(total_similarity / matched_count, 0.75);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapMatcherRecovery,
                         ::testing::Values(7, 13, 23));

TEST(MapMatcher, TooFewPointsReturnsNullopt) {
  const RoadNetwork net = BuildTestNetwork();
  const graph::GridIndex index(net);
  const MapMatcher matcher(net, index, {});
  Trajectory t;
  t.points.push_back({net.coordinate(0), 0.0});
  EXPECT_FALSE(matcher.Match(t).has_value());
}

TEST(MapMatcher, FarAwayTraceReturnsNullopt) {
  const RoadNetwork net = BuildTestNetwork();
  const graph::GridIndex index(net);
  const MapMatcher matcher(net, index, {});
  Trajectory t;
  // Points hundreds of km away from the network.
  t.points.push_back({{60.0, 15.0}, 0.0});
  t.points.push_back({{60.01, 15.0}, 10.0});
  t.points.push_back({{60.02, 15.0}, 20.0});
  EXPECT_FALSE(matcher.Match(t).has_value());
}

TEST(RemoveCycles, SplicesOutLoop) {
  const RoadNetwork net = BuildTestNetwork();
  // Construct a path 0 -> 1 -> 0 -> 8 artificially (if edges exist).
  const graph::EdgeId e01 = net.FindEdge(0, 1);
  const graph::EdgeId e10 = net.FindEdge(1, 0);
  const graph::EdgeId e08 = net.FindEdge(0, 8);
  ASSERT_NE(e01, graph::kInvalidEdge);
  ASSERT_NE(e10, graph::kInvalidEdge);
  ASSERT_NE(e08, graph::kInvalidEdge);
  routing::Path p;
  p.vertices = {0, 1, 0, 8};
  p.edges = {e01, e10, e08};
  routing::RecomputeTotals(net, &p);
  RemoveCycles(net, &p);
  EXPECT_EQ(p.vertices, (std::vector<graph::VertexId>{0, 8}));
  EXPECT_EQ(p.edges, (std::vector<graph::EdgeId>{e08}));
  EXPECT_TRUE(routing::ValidatePath(net, p).empty());
}

TEST(RemoveCycles, NoOpOnSimplePath) {
  const RoadNetwork net = BuildTestNetwork();
  routing::Dijkstra dijkstra(net);
  const auto cost = routing::EdgeCostFn::Length(net);
  auto p = dijkstra.ShortestPath(0, 63, cost);
  ASSERT_TRUE(p.has_value());
  const auto original_vertices = p->vertices;
  RemoveCycles(net, &*p);
  EXPECT_EQ(p->vertices, original_vertices);
}

}  // namespace
}  // namespace pathrank::traj
