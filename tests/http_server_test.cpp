// HttpServer: loopback round-trips bitwise equal to the in-process
// ServingEngine path (the serialization layer must never round a score),
// protocol errors (malformed JSON / oversized body / unknown route /
// wrong method -> 4xx), concurrent clients, the admission-control shed
// path (429 + Retry-After when max_inflight is saturated), /healthz
// flipping across SwapSnapshot, /statsz counters, and the JSON codec's
// double fidelity the round-trip guarantee rests on.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/model.h"
#include "graph/network_builder.h"
#include "serving/graph_store.h"
#include "serving/http_server.h"
#include "serving/json.h"
#include "serving/model_snapshot.h"
#include "serving/route_planner.h"
#include "serving/serving_engine.h"

namespace pathrank::serving {
namespace {

core::PathRankConfig SmallConfig() {
  core::PathRankConfig cfg;
  cfg.embedding_dim = 8;
  cfg.hidden_size = 12;
  cfg.seed = 3;
  return cfg;
}

/// Test server over a real ServingEngine on the loopback.
struct ServerFixture {
  graph::RoadNetwork network = graph::BuildTestNetwork();
  core::PathRankModel model;  // initialised after network (member order)
  ServingEngine engine;
  HttpServer server;

  static HttpServerOptions Options() {
    HttpServerOptions options;
    options.port = 0;  // ephemeral
    options.num_threads = 4;
    options.max_inflight = 16;
    return options;
  }

  static HttpBackend Backend(const ServingEngine& engine,
                             const graph::RoadNetwork& network) {
    HttpBackend backend;
    backend.rank = [&engine](graph::VertexId s, graph::VertexId d) {
      return engine.Rank(s, d);
    };
    backend.score = [&engine](std::vector<routing::Path> paths) {
      return engine.ScoreBatch(paths);
    };
    backend.swap_count = [&engine] { return engine.swap_count(); };
    backend.num_vertices = network.num_vertices();
    return backend;
  }

  ServerFixture()
      : model(network.num_vertices(), SmallConfig()),
        engine(network, model),
        server(Backend(engine, network), Options()) {
    server.Start();
  }

  /// Same wiring with caller-supplied options — the adversarial
  /// connection tests need short idle/request timeouts.
  explicit ServerFixture(const HttpServerOptions& options)
      : model(network.num_vertices(), SmallConfig()),
        engine(network, model),
        server(Backend(engine, network), options) {
    server.Start();
  }
};

std::string RankBody(graph::VertexId source, graph::VertexId destination) {
  json::Object object;
  object["source"] = json::Value(static_cast<uint64_t>(source));
  object["destination"] = json::Value(static_cast<uint64_t>(destination));
  return json::Dump(json::Value(std::move(object)));
}

/// Decodes a rank/score response body into (score, vertices) rows.
struct WireCandidate {
  double score = 0.0;
  std::vector<graph::VertexId> vertices;
};

std::vector<WireCandidate> ParseCandidates(const std::string& body) {
  std::string error;
  const auto parsed = json::Parse(body, &error);
  EXPECT_TRUE(parsed) << error << " in body: " << body;
  std::vector<WireCandidate> out;
  if (!parsed) return out;
  const json::Value* candidates = parsed->Find("candidates");
  EXPECT_TRUE(candidates != nullptr && candidates->is_array()) << body;
  if (candidates == nullptr || !candidates->is_array()) return out;
  for (const auto& entry : candidates->array()) {
    WireCandidate candidate;
    const json::Value* score = entry.Find("score");
    EXPECT_TRUE(score != nullptr && score->is_number());
    if (score) candidate.score = score->number_value();
    const json::Value* vertices = entry.Find("vertices");
    EXPECT_TRUE(vertices != nullptr && vertices->is_array());
    if (vertices) {
      for (const auto& v : vertices->array()) {
        candidate.vertices.push_back(
            static_cast<graph::VertexId>(v.number_value()));
      }
    }
    out.push_back(std::move(candidate));
  }
  return out;
}

void ExpectMatchesRanking(const std::vector<ScoredPath>& expected,
                          const std::vector<WireCandidate>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    // EXPECT_EQ on doubles: BITWISE equality, the serving stack's
    // headline guarantee carried over the wire by shortest-round-trip
    // (std::to_chars) serialization.
    EXPECT_EQ(expected[i].score, actual[i].score) << "rank " << i;
    EXPECT_EQ(expected[i].path.vertices, actual[i].vertices) << "rank " << i;
  }
}

TEST(HttpRank, RoundTripBitwiseEqualToInProcessRank) {
  ServerFixture fx;
  HttpClient client;
  client.Connect(fx.server.port());

  const std::vector<RankQuery> queries = {{0, 63}, {7, 56}, {21, 42}};
  for (const auto& query : queries) {
    const auto response = client.Request(
        "POST", "/v1/rank", RankBody(query.source, query.destination));
    ASSERT_EQ(response.status, 200) << response.body;
    const auto expected = fx.engine.Rank(query.source, query.destination);
    ExpectMatchesRanking(expected, ParseCandidates(response.body));
  }
}

TEST(HttpScore, RoundTripBitwiseEqualToInProcessScoreBatch) {
  ServerFixture fx;
  data::CandidateGenConfig gen;
  gen.k = 5;
  const auto paths = GenerateCandidates(fx.network, 0, 63, gen);
  ASSERT_FALSE(paths.empty());

  json::Array path_array;
  for (const auto& path : paths) {
    json::Array vertices;
    for (const auto v : path.vertices) {
      vertices.emplace_back(static_cast<uint64_t>(v));
    }
    path_array.emplace_back(std::move(vertices));
  }
  json::Object object;
  object["paths"] = json::Value(std::move(path_array));

  HttpClient client;
  client.Connect(fx.server.port());
  const auto response =
      client.Request("POST", "/v1/score", json::Dump(json::Value(object)));
  ASSERT_EQ(response.status, 200) << response.body;
  ExpectMatchesRanking(fx.engine.ScoreBatch(paths),
                       ParseCandidates(response.body));
}

TEST(HttpProtocol, MalformedJsonIs400) {
  ServerFixture fx;
  HttpClient client;
  client.Connect(fx.server.port());
  EXPECT_EQ(client.Request("POST", "/v1/rank", "{not json").status, 400);
  EXPECT_EQ(client.Request("POST", "/v1/rank", "").status, 400);
  // Valid JSON, wrong shape.
  EXPECT_EQ(client.Request("POST", "/v1/rank", "[1,2]").status, 400);
  EXPECT_EQ(client.Request("POST", "/v1/rank",
                           "{\"source\": 0}").status, 400);
  // Out-of-range vertex id: would be an out-of-bounds embedding lookup.
  EXPECT_EQ(client.Request("POST", "/v1/rank",
                           RankBody(0, 1u << 30)).status, 400);
  // Beyond VertexId entirely: the cast itself would be UB if admitted.
  EXPECT_EQ(client.Request("POST", "/v1/rank",
                           "{\"source\": 0, \"destination\": 1e18}").status,
            400);
  EXPECT_EQ(client.Request("POST", "/v1/rank",
                           "{\"source\": -1, \"destination\": 1}").status,
            400);
  EXPECT_EQ(client.Request("POST", "/v1/score",
                           "{\"paths\": [[]]}").status, 400);
  // The connection survives all of that (keep-alive, no close).
  EXPECT_EQ(client.Request("GET", "/healthz").status, 200);
}

/// Sends raw bytes on a fresh connection and returns the full response
/// stream — for protocol tests HttpClient would refuse to produce.
std::string RawRequest(uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char chunk[1024];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

// Request-smuggling vectors: a body framed two ways (Transfer-Encoding
// alongside Content-Length, or conflicting duplicate Content-Lengths)
// must be rejected outright, never framed by one of the candidates. A
// syntactically invalid Content-Length is 400, not an interpretation.
TEST(HttpProtocol, SmugglingShapedFramingIsRejected) {
  ServerFixture fx;
  EXPECT_EQ(RawRequest(fx.server.port(),
                       "POST /v1/rank HTTP/1.1\r\nHost: t\r\n"
                       "Content-Length: 5\r\nTransfer-Encoding: chunked\r\n"
                       "\r\n0\r\n\r\n")
                .substr(0, 12),
            "HTTP/1.1 400");
  EXPECT_EQ(RawRequest(fx.server.port(),
                       "POST /v1/rank HTTP/1.1\r\nHost: t\r\n"
                       "Content-Length: 5\r\nContent-Length: 50\r\n"
                       "\r\nhello")
                .substr(0, 12),
            "HTTP/1.1 400");
  EXPECT_EQ(RawRequest(fx.server.port(),
                       "POST /v1/rank HTTP/1.1\r\nHost: t\r\n"
                       "Content-Length: -1\r\n\r\n")
                .substr(0, 12),
            "HTTP/1.1 400");
  EXPECT_EQ(RawRequest(fx.server.port(),
                       "POST /v1/rank HTTP/1.1\r\nHost: t\r\n"
                       "Content-Length: +5\r\n\r\nhello")
                .substr(0, 12),
            "HTTP/1.1 400");
  // Whitespace before the colon would otherwise store the header under
  // "content-length " and frame the body as zero-length (desync).
  EXPECT_EQ(RawRequest(fx.server.port(),
                       "POST /v1/rank HTTP/1.1\r\nHost: t\r\n"
                       "Content-Length : 31\r\n\r\n"
                       "{\"source\": 1, \"destination\": 2}")
                .substr(0, 12),
            "HTTP/1.1 400");
}

TEST(HttpProtocol, OversizedBodyIs413) {
  ServerFixture fx;
  HttpClient client;
  client.Connect(fx.server.port());
  const std::string big(fx.server.options().max_body_bytes + 1, 'x');
  EXPECT_EQ(client.Request("POST", "/v1/rank", big).status, 413);
}

TEST(HttpProtocol, UnknownRouteIs404AndWrongMethodIs405) {
  ServerFixture fx;
  HttpClient client;
  client.Connect(fx.server.port());
  EXPECT_EQ(client.Request("GET", "/nope").status, 404);
  EXPECT_EQ(client.Request("POST", "/v1/rankz", RankBody(0, 1)).status, 404);
  EXPECT_EQ(client.Request("GET", "/v1/rank").status, 405);
  EXPECT_EQ(client.Request("POST", "/healthz").status, 405);
}

TEST(HttpConcurrency, ParallelClientsAllGetBitwiseCorrectAnswers) {
  ServerFixture fx;
  const std::vector<RankQuery> queries = {{0, 63}, {7, 56}, {3, 60},
                                          {21, 42}, {14, 49}, {8, 55}};
  // Expected rankings computed in-process, once.
  std::vector<std::vector<ScoredPath>> expected;
  expected.reserve(queries.size());
  for (const auto& query : queries) {
    expected.push_back(fx.engine.Rank(query.source, query.destination));
  }

  constexpr size_t kClients = 8;
  constexpr size_t kRequestsPerClient = 12;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      HttpClient client;
      client.Connect(fx.server.port());
      for (size_t r = 0; r < kRequestsPerClient; ++r) {
        const size_t q = (c + r) % queries.size();
        const auto response = client.Request(
            "POST", "/v1/rank",
            RankBody(queries[q].source, queries[q].destination));
        if (response.status != 200) {
          ++failures;
          continue;
        }
        const auto actual = ParseCandidates(response.body);
        if (actual.size() != expected[q].size()) {
          ++failures;
          continue;
        }
        for (size_t i = 0; i < actual.size(); ++i) {
          if (actual[i].score != expected[q][i].score ||
              actual[i].vertices != expected[q][i].path.vertices) {
            ++failures;
          }
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0);
}

/// Server over a backend whose rank() parks every call until Release() —
/// the admission-state transitions become deterministic: a slot is
/// provably occupied while a request is parked.
struct BlockingServerFixture {
  graph::RoadNetwork network = graph::BuildTestNetwork();
  std::mutex mu;
  std::condition_variable cv;
  size_t entered = 0;
  bool released = false;
  HttpServer server;

  explicit BlockingServerFixture(const HttpServerOptions& options)
      : server(MakeBackend(), options) {
    server.Start();
  }

  HttpBackend MakeBackend() {
    HttpBackend backend;
    backend.num_vertices = network.num_vertices();
    backend.rank = [this](graph::VertexId, graph::VertexId) {
      std::unique_lock<std::mutex> lock(mu);
      ++entered;
      cv.notify_all();
      cv.wait(lock, [this] { return released; });
      return std::vector<ScoredPath>{};
    };
    backend.score = [](std::vector<routing::Path>) {
      return std::vector<ScoredPath>{};
    };
    return backend;
  }

  /// Blocks until `count` rank calls are parked inside the backend.
  void WaitEntered(size_t count) {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                            [&] { return entered >= count; }));
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      released = true;
    }
    cv.notify_all();
  }

  /// One request on its own connection, status only.
  std::future<int> AsyncRank(graph::VertexId s, graph::VertexId d) {
    return std::async(std::launch::async, [this, s, d] {
      HttpClient client;
      client.Connect(server.port());
      return client.Request("POST", "/v1/rank", RankBody(s, d)).status;
    });
  }
};

TEST(HttpAdmission, SaturatedMaxInflightSheds429WithRetryAfter) {
  HttpServerOptions options;
  options.port = 0;
  options.num_threads = 4;
  options.max_inflight = 1;
  options.max_queue_wait_us = 0;  // shed immediately when saturated
  options.retry_after_s = 7;
  BlockingServerFixture fx(options);

  // Client A occupies the only slot...
  auto blocked = fx.AsyncRank(0, 1);
  fx.WaitEntered(1);

  // ...so client B is shed with 429 + Retry-After.
  HttpClient prober;
  prober.Connect(fx.server.port());
  const auto shed = prober.Request("POST", "/v1/rank", RankBody(2, 3));
  EXPECT_EQ(shed.status, 429);
  EXPECT_EQ(shed.retry_after_s, 7);

  // /healthz and /statsz bypass admission: they answer during overload.
  EXPECT_EQ(prober.Request("GET", "/healthz").status, 200);
  const auto statsz = prober.Request("GET", "/statsz");
  EXPECT_EQ(statsz.status, 200);
  const auto stats = json::Parse(statsz.body);
  ASSERT_TRUE(stats);
  EXPECT_EQ(stats->Find("shed_total")->number_value(), 1.0);
  EXPECT_EQ(stats->Find("inflight")->number_value(), 1.0);

  fx.Release();
  EXPECT_EQ(blocked.get(), 200);

  // With the slot free again, the same endpoint admits.
  EXPECT_EQ(prober.Request("POST", "/v1/rank", RankBody(0, 1)).status, 200);
  EXPECT_EQ(fx.server.stats().shed_total, 1u);
}

TEST(HttpAdmission, TimedWaitAdmitsWhenSlotFreesWithinWindow) {
  HttpServerOptions options;
  options.port = 0;
  options.num_threads = 4;
  options.max_inflight = 1;
  options.max_queue_wait_us = 10'000'000;  // far longer than the test
  BlockingServerFixture fx(options);

  auto holder = fx.AsyncRank(0, 1);
  fx.WaitEntered(1);

  // The second request queues for the slot instead of shedding.
  auto waiter = fx.AsyncRank(2, 3);
  HttpClient prober;
  prober.Connect(fx.server.port());
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  for (;;) {  // the waiter shows up in the admission queue depth
    const auto stats = fx.server.stats();
    if (stats.admission_waiting == 1) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "request never queued for admission";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_NE(waiter.wait_for(std::chrono::milliseconds(50)),
            std::future_status::ready);

  // Releasing the holder frees the slot; the waiter is admitted (200,
  // not 429) well before its wait window expires.
  fx.Release();
  EXPECT_EQ(holder.get(), 200);
  EXPECT_EQ(waiter.get(), 200);
  const auto stats = fx.server.stats();
  EXPECT_EQ(stats.shed_total, 0u);
  EXPECT_EQ(stats.admission_waiting, 0u);
  EXPECT_EQ(stats.inflight, 0u);
}

TEST(HttpAdmission, TimedWaitShedsAfterWindowExpires) {
  HttpServerOptions options;
  options.port = 0;
  options.num_threads = 4;
  options.max_inflight = 1;
  options.max_queue_wait_us = 30'000;  // 30 ms window, never released
  BlockingServerFixture fx(options);

  auto holder = fx.AsyncRank(0, 1);
  fx.WaitEntered(1);

  HttpClient prober;
  prober.Connect(fx.server.port());
  const auto shed = prober.Request("POST", "/v1/rank", RankBody(2, 3));
  EXPECT_EQ(shed.status, 429);

  fx.Release();
  EXPECT_EQ(holder.get(), 200);
  const auto stats = fx.server.stats();
  EXPECT_EQ(stats.shed_total, 1u);
  EXPECT_EQ(stats.admission_waiting, 0u);
}

// ---- Adversarial connections -------------------------------------------
//
// Misbehaving clients must cost the server a bounded amount of worker
// time and nothing else: no hang, no leaked slot, no crash.

/// Opens a raw connection without sending a full request.
int RawConnect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

/// Drains the connection until the server closes it; returns the bytes
/// received and asserts the close arrives within `limit`.
std::string DrainUntilClose(int fd, std::chrono::seconds limit) {
  const auto started = std::chrono::steady_clock::now();
  std::string received;
  char chunk[1024];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // 0 = orderly close, <0 = reset/timeout
    received.append(chunk, static_cast<size_t>(n));
    EXPECT_LT(std::chrono::steady_clock::now() - started, limit)
        << "server kept the connection alive past the deadline";
  }
  EXPECT_LT(std::chrono::steady_clock::now() - started, limit);
  return received;
}

HttpServerOptions ShortTimeoutOptions() {
  HttpServerOptions options;
  options.port = 0;
  options.num_threads = 4;
  options.max_inflight = 16;
  options.idle_timeout_s = 1;
  options.request_deadline_s = 1;
  return options;
}

TEST(HttpAdversarial, SlowLorisPartialHeadersGetDisconnected) {
  ServerFixture fx(ShortTimeoutOptions());
  // Drip a request line and half a header, then go silent: the read
  // deadline must sever the connection instead of pinning a worker.
  const int fd = RawConnect(fx.server.port());
  const std::string drip = "POST /v1/rank HTTP/1.1\r\nHost: t\r\nConte";
  ASSERT_EQ(::send(fd, drip.data(), drip.size(), 0),
            static_cast<ssize_t>(drip.size()));
  DrainUntilClose(fd, std::chrono::seconds(5));
  ::close(fd);
  // The worker pool survived the loris: a normal request still lands.
  HttpClient client;
  client.Connect(fx.server.port());
  EXPECT_EQ(client.Request("GET", "/healthz").status, 200);
  EXPECT_EQ(fx.server.stats().inflight, 0u);
}

TEST(HttpAdversarial, TruncatedContentLengthBodyGetsDisconnected) {
  ServerFixture fx(ShortTimeoutOptions());
  // Promise 100 bytes, deliver 5, never finish. The server must not
  // wait forever for the missing 95.
  const int fd = RawConnect(fx.server.port());
  const std::string lie =
      "POST /v1/rank HTTP/1.1\r\nHost: t\r\nContent-Length: 100\r\n\r\nhello";
  ASSERT_EQ(::send(fd, lie.data(), lie.size(), 0),
            static_cast<ssize_t>(lie.size()));
  DrainUntilClose(fd, std::chrono::seconds(5));
  ::close(fd);
  HttpClient client;
  client.Connect(fx.server.port());
  EXPECT_EQ(client.Request("GET", "/healthz").status, 200);
  EXPECT_EQ(fx.server.stats().inflight, 0u);
}

TEST(HttpAdversarial, ClientDisconnectMidResponseDoesNotLeakASlot) {
  HttpServerOptions options = ShortTimeoutOptions();
  options.max_inflight = 1;  // a leaked slot would wedge the server
  BlockingServerFixture fx(options);
  // Park a request in the backend, then vanish before the response.
  const int fd = RawConnect(fx.server.port());
  const std::string body = RankBody(0, 1);
  const std::string request =
      "POST /v1/rank HTTP/1.1\r\nHost: t\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\n\r\n" + body;
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  fx.WaitEntered(1);
  ::close(fd);  // gone before the backend answers
  fx.Release();
  // The admission slot must come back even though the write will fail.
  const auto started = std::chrono::steady_clock::now();
  while (fx.server.stats().inflight != 0) {
    ASSERT_LT(std::chrono::steady_clock::now() - started,
              std::chrono::seconds(5))
        << "in-flight slot leaked after client disconnect";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // And the only slot is usable by the next client.
  HttpClient client;
  client.Connect(fx.server.port());
  EXPECT_EQ(client.Request("POST", "/v1/rank", RankBody(2, 3)).status, 200);
}

// ---- Client-side retries -----------------------------------------------

TEST(HttpRetry, RetriesShed429UntilASlotFrees) {
  HttpServerOptions options;
  options.port = 0;
  options.num_threads = 4;
  options.max_inflight = 1;
  options.max_queue_wait_us = 0;  // shed immediately when saturated
  options.retry_after_s = 0;      // let the client's own backoff drive
  BlockingServerFixture fx(options);

  auto holder = fx.AsyncRank(0, 1);
  fx.WaitEntered(1);

  // A plain Request would take the 429; RequestWithRetry keeps trying
  // while the slot-holder drains, and lands a 200 on a later attempt.
  std::future<int> retried = std::async(std::launch::async, [&fx] {
    HttpClient client;
    client.Connect(fx.server.port());
    HttpClient::RetryOptions retry;
    retry.max_retries = 50;
    retry.base_backoff_ms = 1;
    retry.max_backoff_ms = 20;
    return client.RequestWithRetry("POST", "/v1/rank", RankBody(2, 3), retry)
        .status;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  fx.Release();
  EXPECT_EQ(holder.get(), 200);
  EXPECT_EQ(retried.get(), 200);
  EXPECT_GE(fx.server.stats().shed_total, 1u);  // at least one 429 eaten
}

TEST(HttpRetry, GivesUpAfterMaxRetriesWithTheLastResponse) {
  HttpServerOptions options;
  options.port = 0;
  options.num_threads = 4;
  options.max_inflight = 1;
  options.max_queue_wait_us = 0;
  options.retry_after_s = 0;
  BlockingServerFixture fx(options);

  auto holder = fx.AsyncRank(0, 1);
  fx.WaitEntered(1);  // the slot never frees during the retry loop

  HttpClient client;
  client.Connect(fx.server.port());
  HttpClient::RetryOptions retry;
  retry.max_retries = 3;
  retry.base_backoff_ms = 1;
  retry.max_backoff_ms = 4;
  const auto response =
      client.RequestWithRetry("POST", "/v1/rank", RankBody(2, 3), retry);
  EXPECT_EQ(response.status, 429);                    // last answer surfaces
  EXPECT_EQ(fx.server.stats().shed_total, 4u);        // 1 try + 3 retries

  fx.Release();
  EXPECT_EQ(holder.get(), 200);
}

TEST(HttpRetry, NonRetryableStatusReturnsImmediately) {
  ServerFixture fx;
  HttpClient client;
  client.Connect(fx.server.port());
  HttpClient::RetryOptions retry;
  retry.max_retries = 5;
  retry.base_backoff_ms = 1;
  // A 400 is the caller's bug: retrying it would just repeat the bug.
  const auto response =
      client.RequestWithRetry("POST", "/v1/rank", "{not json", retry);
  EXPECT_EQ(response.status, 400);
  const auto stats = json::Parse(client.Request("GET", "/statsz").body);
  ASSERT_TRUE(stats);
  const json::Value* rank = stats->Find("endpoints")->Find("/v1/rank");
  ASSERT_TRUE(rank != nullptr);
  EXPECT_EQ(rank->Find("requests")->number_value(), 1.0);  // exactly one try
}

TEST(HttpHealth, HealthzFlipsAcrossSwapSnapshot) {
  ServerFixture fx;
  HttpClient client;
  client.Connect(fx.server.port());

  const auto before = json::Parse(client.Request("GET", "/healthz").body);
  ASSERT_TRUE(before);
  EXPECT_EQ(before->Find("status")->string_value(), "ok");
  EXPECT_EQ(before->Find("swap_count")->number_value(), 0.0);

  // Hot-swap the served model; the health endpoint must reflect it so an
  // external watcher can observe the rollout landing.
  core::PathRankModel next(fx.network.num_vertices(), SmallConfig());
  fx.engine.SwapSnapshot(ModelSnapshot::Capture(next));

  const auto after = json::Parse(client.Request("GET", "/healthz").body);
  ASSERT_TRUE(after);
  EXPECT_EQ(after->Find("status")->string_value(), "ok");
  EXPECT_EQ(after->Find("swap_count")->number_value(), 1.0);

  // And ranking still works on the new snapshot, bitwise.
  const auto response = client.Request("POST", "/v1/rank", RankBody(0, 63));
  ASSERT_EQ(response.status, 200);
  ExpectMatchesRanking(fx.engine.Rank(0, 63),
                       ParseCandidates(response.body));
}

TEST(HttpStats, StatszTracksPerEndpointLatency) {
  ServerFixture fx;
  HttpClient client;
  client.Connect(fx.server.port());
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(client.Request("POST", "/v1/rank", RankBody(0, 63)).status,
              200);
  }
  const auto stats = json::Parse(client.Request("GET", "/statsz").body);
  ASSERT_TRUE(stats);
  const json::Value* endpoints = stats->Find("endpoints");
  ASSERT_TRUE(endpoints != nullptr);
  const json::Value* rank = endpoints->Find("/v1/rank");
  ASSERT_TRUE(rank != nullptr);
  EXPECT_EQ(rank->Find("requests")->number_value(), 3.0);
  EXPECT_EQ(rank->Find("errors")->number_value(), 0.0);
  EXPECT_GT(rank->Find("latency_p50_s")->number_value(), 0.0);
  EXPECT_GE(rank->Find("latency_p99_s")->number_value(),
            rank->Find("latency_p50_s")->number_value());
  EXPECT_EQ(stats->Find("requests_total")->number_value(), 4.0);
}

/// Server wired to a live GraphStore + epoch-aware RoutePlanner: the
/// POST /v1/traffic ingestion path and its observability surfaces.
struct TrafficServerFixture {
  graph::RoadNetwork network = graph::BuildTestNetwork();
  core::PathRankModel model;
  ServingEngine engine;
  GraphStore store;
  SpurEngine spur = SpurEngine::kDijkstra;
  RoutePlanner planner;
  HttpServer server;

  RoutePlannerConfig PlannerConfig() {
    RoutePlannerConfig config;
    config.store = &store;
    config.cache_capacity = 64;
    config.spur_engine = spur;
    return config;
  }

  HttpBackend Backend() {
    HttpBackend backend;
    backend.rank = [this](graph::VertexId s, graph::VertexId d) {
      return engine.Rank(s, d);
    };
    backend.score = [this](std::vector<routing::Path> paths) {
      return engine.ScoreBatch(paths);
    };
    backend.route = [this](const RouteRequest& request) {
      return planner.Plan(request);
    };
    backend.traffic = [this](const std::vector<graph::TrafficUpdate>& u) {
      return store.ApplyTraffic(u);
    };
    backend.graph_epoch = [this] { return store.epoch(); };
    backend.route_planner_stats = [this] { return planner.stats(); };
    backend.preprocessing_stats = [this] {
      return store.preprocessing_stats();
    };
    return backend;
  }

  explicit TrafficServerFixture(SpurEngine spur_engine = SpurEngine::kDijkstra)
      : model(network.num_vertices(), SmallConfig()),
        engine(network, model),
        store(graph::BuildTestNetwork()),
        spur(spur_engine),
        planner(PlannerConfig(),
                [this](std::vector<routing::Path> paths) {
                  return engine.ScoreBatch(paths);
                }),
        server(Backend(), ServerFixture::Options()) {
    if (spur == SpurEngine::kAlt) {
      PreprocessOptions pre;
      pre.num_landmarks = 3;
      store.EnablePreprocessing(pre);
    }
    server.Start();
  }
};

std::string RouteBody(graph::VertexId source, graph::VertexId destination) {
  return "{\"source\": " + std::to_string(source) +
         ", \"destination\": " + std::to_string(destination) + "}";
}

TEST(TrafficHttp, ValidBatchBumpsEpochAndInvalidatesRouteCache) {
  TrafficServerFixture fx;
  HttpClient client;
  client.Connect(fx.server.port());

  // Seed and hit the route cache at epoch 0; the epoch is on the wire.
  const auto miss = client.Request("POST", "/v1/route", RouteBody(3, 59));
  ASSERT_EQ(miss.status, 200);
  EXPECT_NE(miss.body.find("\"cache_hit\":false"), std::string::npos);
  EXPECT_NE(miss.body.find("\"graph_epoch\":0"), std::string::npos)
      << miss.body;
  const auto hit = client.Request("POST", "/v1/route", RouteBody(3, 59));
  ASSERT_EQ(hit.status, 200);
  EXPECT_NE(hit.body.find("\"cache_hit\":true"), std::string::npos);

  const auto applied = client.Request(
      "POST", "/v1/traffic",
      "{\"updates\": [{\"edge\": 0, \"travel_time_s\": 123.5}, "
      "{\"edge\": 1, \"closed\": true}]}");
  ASSERT_EQ(applied.status, 200) << applied.body;
  const auto ack = json::Parse(applied.body);
  ASSERT_TRUE(ack);
  EXPECT_EQ(ack->Find("epoch")->number_value(), 1.0);
  EXPECT_EQ(ack->Find("cost_updates")->number_value(), 1.0);
  EXPECT_EQ(ack->Find("closures")->number_value(), 1.0);
  EXPECT_EQ(ack->Find("reopenings")->number_value(), 0.0);

  // The epoch moved: the cached entry is stale and must NOT be served.
  const auto after = client.Request("POST", "/v1/route", RouteBody(3, 59));
  ASSERT_EQ(after.status, 200);
  EXPECT_NE(after.body.find("\"cache_hit\":false"), std::string::npos)
      << "stale cache entry served across /v1/traffic";
  EXPECT_NE(after.body.find("\"graph_epoch\":1"), std::string::npos)
      << after.body;

  // Observability: /healthz and /statsz expose the live epoch and the
  // planner's invalidation counters.
  const auto health = json::Parse(client.Request("GET", "/healthz").body);
  ASSERT_TRUE(health);
  ASSERT_NE(health->Find("graph_epoch"), nullptr);
  EXPECT_EQ(health->Find("graph_epoch")->number_value(), 1.0);
  const auto stats = json::Parse(client.Request("GET", "/statsz").body);
  ASSERT_TRUE(stats);
  EXPECT_EQ(stats->Find("graph_epoch")->number_value(), 1.0);
  const json::Value* planner_stats = stats->Find("route_planner");
  ASSERT_NE(planner_stats, nullptr);
  EXPECT_EQ(planner_stats->Find("cache_hits")->number_value(), 1.0);
  EXPECT_EQ(planner_stats->Find("invalidations")->number_value(), 1.0);
  EXPECT_GE(planner_stats->Find("enumerations")->number_value(), 2.0);
  const json::Value* traffic_endpoint =
      stats->Find("endpoints")->Find("/v1/traffic");
  ASSERT_NE(traffic_endpoint, nullptr);
  EXPECT_EQ(traffic_endpoint->Find("requests")->number_value(), 1.0);
  EXPECT_EQ(traffic_endpoint->Find("errors")->number_value(), 0.0);
}

/// Satellite surface checks for the spur-engine seam: every /v1/route
/// body names the engine that produced its candidate set, the algo a
/// cache hit reports is the one that SEEDED the entry (hit and miss
/// bodies stay byte-identical modulo cache_hit), and /statsz grows a
/// `preprocessing` block fed by GraphStore::preprocessing_stats().
TEST(RouteHttp, DefaultEngineReportsDijkstraAlgoOnMissAndHit) {
  TrafficServerFixture fx;
  HttpClient client;
  client.Connect(fx.server.port());

  const auto miss = client.Request("POST", "/v1/route", RouteBody(3, 59));
  ASSERT_EQ(miss.status, 200);
  EXPECT_NE(miss.body.find("\"algo\":\"dijkstra\""), std::string::npos)
      << miss.body;
  const auto hit = client.Request("POST", "/v1/route", RouteBody(3, 59));
  ASSERT_EQ(hit.status, 200);
  EXPECT_NE(hit.body.find("\"algo\":\"dijkstra\""), std::string::npos)
      << hit.body;

  // Preprocessing was never enabled: the block reports disabled zeros.
  const auto stats = json::Parse(client.Request("GET", "/statsz").body);
  ASSERT_TRUE(stats);
  const json::Value* pre = stats->Find("preprocessing");
  ASSERT_NE(pre, nullptr);
  EXPECT_EQ(pre->Find("enabled")->bool_value(), false);
  const json::Value* planner_stats = stats->Find("route_planner");
  ASSERT_NE(planner_stats, nullptr);
  ASSERT_NE(planner_stats->Find("alt_fallbacks"), nullptr);
  EXPECT_EQ(planner_stats->Find("alt_fallbacks")->number_value(), 0.0);
}

TEST(RouteHttp, AltEngineReportsAlgoAndPreprocessingStatsz) {
  TrafficServerFixture fx(SpurEngine::kAlt);
  HttpClient client;
  client.Connect(fx.server.port());

  const auto miss = client.Request("POST", "/v1/route", RouteBody(3, 59));
  ASSERT_EQ(miss.status, 200);
  EXPECT_NE(miss.body.find("\"algo\":\"alt\""), std::string::npos)
      << miss.body;
  // The cached algo travels with the candidate set: a hit reports the
  // engine that seeded it and the body is byte-identical modulo the
  // cache_hit flag.
  const auto hit = client.Request("POST", "/v1/route", RouteBody(3, 59));
  ASSERT_EQ(hit.status, 200);
  EXPECT_NE(hit.body.find("\"algo\":\"alt\""), std::string::npos)
      << hit.body;
  std::string normalized_miss = miss.body;
  std::string normalized_hit = hit.body;
  const auto strip = [](std::string* body) {
    const auto pos = body->find("\"cache_hit\":");
    ASSERT_NE(pos, std::string::npos);
    const auto comma = body->find(',', pos);
    body->erase(pos, comma - pos);
  };
  strip(&normalized_miss);
  strip(&normalized_hit);
  EXPECT_EQ(normalized_miss, normalized_hit);

  const auto stats = json::Parse(client.Request("GET", "/statsz").body);
  ASSERT_TRUE(stats);
  const json::Value* pre = stats->Find("preprocessing");
  ASSERT_NE(pre, nullptr);
  EXPECT_EQ(pre->Find("enabled")->bool_value(), true);
  EXPECT_EQ(pre->Find("landmarks")->number_value(), 3.0);
  ASSERT_NE(pre->Find("rebuilds"), nullptr);
  ASSERT_NE(pre->Find("rebuild_p50_s"), nullptr);
  ASSERT_NE(pre->Find("rebuild_p99_s"), nullptr);
  EXPECT_EQ(pre->Find("epochs_behind")->number_value(), 0.0);
}

void ExpectTrafficError(HttpClient& client, const std::string& body,
                        const std::string& slug) {
  const auto response = client.Request("POST", "/v1/traffic", body);
  EXPECT_EQ(response.status, 400) << body << " -> " << response.body;
  EXPECT_NE(response.body.find("\"status\":\"" + slug + "\""),
            std::string::npos)
      << body << " -> " << response.body;
}

TEST(TrafficHttp, MalformedBatchesAre400WithStableSlugs) {
  TrafficServerFixture fx;
  HttpClient client;
  client.Connect(fx.server.port());

  // Shape/type failures: the HTTP layer's generic bad_request slug.
  ExpectTrafficError(client, "{not json", "bad_request");
  ExpectTrafficError(client, "[1, 2]", "bad_request");
  ExpectTrafficError(client, "{}", "bad_request");
  ExpectTrafficError(client, "{\"updates\": 5}", "bad_request");
  ExpectTrafficError(client, "{\"updates\": [7]}", "bad_request");
  ExpectTrafficError(client, "{\"updates\": [{}]}", "bad_request");
  ExpectTrafficError(client, "{\"updates\": [{\"edge\": -1}]}",
                     "bad_request");
  ExpectTrafficError(client, "{\"updates\": [{\"edge\": 1.5}]}",
                     "bad_request");
  ExpectTrafficError(client, "{\"updates\": [{\"edge\": 1e300}]}",
                     "bad_request");
  ExpectTrafficError(
      client, "{\"updates\": [{\"edge\": \"0\", \"closed\": true}]}",
      "bad_request");
  ExpectTrafficError(
      client, "{\"updates\": [{\"edge\": 0, \"travel_time_s\": \"fast\"}]}",
      "bad_request");
  ExpectTrafficError(client,
                     "{\"updates\": [{\"edge\": 0, \"closed\": 1}]}",
                     "bad_request");
  // A literal NaN is not JSON (RFC 8259): rejected at the parse, with
  // the same slug — it must never reach the graph as a cost.
  ExpectTrafficError(
      client, "{\"updates\": [{\"edge\": 0, \"travel_time_s\": NaN}]}",
      "bad_request");

  // Semantic failures: the backend's specific slugs.
  ExpectTrafficError(client, "{\"updates\": []}", "empty_batch");
  ExpectTrafficError(
      client,
      "{\"updates\": [{\"edge\": 999999, \"travel_time_s\": 1.0}]}",
      "unknown_edge");
  ExpectTrafficError(client,
                     "{\"updates\": [{\"edge\": 0, \"travel_time_s\": 1.0}, "
                     "{\"edge\": 0, \"closed\": true}]}",
                     "duplicate_edge");
  ExpectTrafficError(
      client, "{\"updates\": [{\"edge\": 0, \"travel_time_s\": -5.0}]}",
      "bad_request");
  ExpectTrafficError(
      client, "{\"updates\": [{\"edge\": 0, \"travel_time_s\": 0.0}]}",
      "bad_request");
  // An update that specifies neither a cost nor a closure is a no-op by
  // construction — almost certainly a client bug, so it is rejected.
  ExpectTrafficError(client, "{\"updates\": [{\"edge\": 0}]}",
                     "bad_request");

  // Nothing above may have moved the epoch (all-or-nothing per batch,
  // and rejected batches do not publish).
  const auto stats = json::Parse(client.Request("GET", "/statsz").body);
  ASSERT_TRUE(stats);
  EXPECT_EQ(stats->Find("graph_epoch")->number_value(), 0.0);
}

TEST(TrafficHttp, OversizedBodyIs413AndWrongMethodIs405) {
  TrafficServerFixture fx;
  HttpClient client;
  client.Connect(fx.server.port());
  const std::string big(fx.server.options().max_body_bytes + 1, 'x');
  EXPECT_EQ(client.Request("POST", "/v1/traffic", big).status, 413);
  // The server hangs up after an oversized body (it cannot resync the
  // framing); the method check needs a fresh connection.
  HttpClient fresh;
  fresh.Connect(fx.server.port());
  EXPECT_EQ(fresh.Request("GET", "/v1/traffic").status, 405);
}

TEST(TrafficHttp, MissingTrafficBackendIs404) {
  // A server wired without the traffic seam must answer 404, not crash
  // on a null std::function — and its /healthz body must not grow a
  // graph_epoch field it cannot back.
  ServerFixture fx;
  HttpClient client;
  client.Connect(fx.server.port());
  const auto response = client.Request(
      "POST", "/v1/traffic",
      "{\"updates\": [{\"edge\": 0, \"travel_time_s\": 1.0}]}");
  EXPECT_EQ(response.status, 404);
  const auto health = json::Parse(client.Request("GET", "/healthz").body);
  ASSERT_TRUE(health);
  EXPECT_EQ(health->Find("graph_epoch"), nullptr);
}

// The wire-format property every bitwise assertion above rests on.
TEST(Json, DumpParseRoundTripsDoublesBitwise) {
  const std::vector<double> cases = {0.0,
                                     -0.0,
                                     1.0 / 3.0,
                                     -2.718281828459045,
                                     1e-300,
                                     -1.7976931348623157e308,
                                     5e-324,
                                     0.1f + 0.2f,
                                     42.0};
  for (const double d : cases) {
    const auto parsed = json::Parse(json::Dump(json::Value(d)));
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed->number_value(), d);
    // operator== treats -0.0 == 0.0; bitwise means the sign survives too.
    EXPECT_EQ(std::signbit(parsed->number_value()), std::signbit(d))
        << json::Dump(json::Value(d));
  }
}

TEST(Json, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "tru", "1.2.3", "\"\\q\"", "01",
        "{\"a\":1} extra", "\"unterminated", "[1 2]", "nan", "+1",
        "1e999", "-1e999"}) {
    EXPECT_FALSE(json::Parse(bad)) << bad;
  }
  // Deep nesting is rejected, not a stack overflow.
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(json::Parse(deep));
}

TEST(Json, UnderflowFoldsToSignedZeroButOverflowIsRejected) {
  const auto tiny = json::Parse("1e-999");
  ASSERT_TRUE(tiny);
  EXPECT_EQ(tiny->number_value(), 0.0);
  EXPECT_FALSE(std::signbit(tiny->number_value()));
  const auto tiny_negative = json::Parse("-0.0000000001e-2000");
  ASSERT_TRUE(tiny_negative);
  EXPECT_EQ(tiny_negative->number_value(), 0.0);
  EXPECT_TRUE(std::signbit(tiny_negative->number_value()));
  // A 400-digit integer overflows without any exponent field.
  EXPECT_FALSE(json::Parse("9" + std::string(399, '0')));
}

TEST(Json, ParsesEscapesAndStructures) {
  const auto parsed = json::Parse(
      "{\"text\": \"a\\n\\\"b\\\" \\u0041\\u00e9\\ud83d\\ude00\", "
      "\"list\": [1, -2.5, true, false, null]}");
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->Find("text")->string_value(),
            "a\n\"b\" A\xC3\xA9\xF0\x9F\x98\x80");
  const auto& list = parsed->Find("list")->array();
  ASSERT_EQ(list.size(), 5u);
  EXPECT_EQ(list[0].number_value(), 1.0);
  EXPECT_EQ(list[1].number_value(), -2.5);
  EXPECT_TRUE(list[2].bool_value());
  EXPECT_FALSE(list[3].bool_value());
  EXPECT_TRUE(list[4].is_null());
}

}  // namespace
}  // namespace pathrank::serving
