// Trajectory substrate: driver model, trip generation (including the
// paper's "neither shortest nor fastest" premise) and the GPS simulator.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/network_builder.h"
#include "routing/cost_model.h"
#include "routing/dijkstra.h"
#include "routing/path.h"
#include "traj/driver_model.h"
#include "traj/gps_simulator.h"
#include "traj/trajectory_generator.h"

namespace pathrank::traj {
namespace {

using graph::BuildSyntheticNetwork;
using graph::BuildTestNetwork;
using graph::RoadNetwork;
using graph::SyntheticNetworkConfig;

TEST(DriverModel, DeterministicUnderSameRngSeed) {
  pathrank::Rng rng1(5);
  pathrank::Rng rng2(5);
  const DriverPreferences a = SampleDriver(1, rng1);
  const DriverPreferences b = SampleDriver(1, rng2);
  EXPECT_EQ(a.noise_seed, b.noise_seed);
  for (int i = 0; i < graph::kNumRoadCategories; ++i) {
    EXPECT_DOUBLE_EQ(a.category_multiplier[i], b.category_multiplier[i]);
  }
}

TEST(DriverModel, PersonalizedCostsPositiveAndDeterministic) {
  const RoadNetwork net = BuildTestNetwork();
  pathrank::Rng rng(6);
  const DriverPreferences driver = SampleDriver(0, rng);
  const auto costs1 = PersonalizedEdgeCosts(net, driver);
  const auto costs2 = PersonalizedEdgeCosts(net, driver);
  ASSERT_EQ(costs1.size(), net.num_edges());
  for (size_t e = 0; e < costs1.size(); ++e) {
    EXPECT_GT(costs1[e], 0.0);
    EXPECT_DOUBLE_EQ(costs1[e], costs2[e]);
  }
}

TEST(DriverModel, DifferentDriversDifferentCosts) {
  const RoadNetwork net = BuildTestNetwork();
  pathrank::Rng rng(7);
  const auto c1 = PersonalizedEdgeCosts(net, SampleDriver(0, rng));
  const auto c2 = PersonalizedEdgeCosts(net, SampleDriver(1, rng));
  int differing = 0;
  for (size_t e = 0; e < c1.size(); ++e) {
    if (std::abs(c1[e] - c2[e]) > 1e-12) ++differing;
  }
  EXPECT_GT(differing, static_cast<int>(c1.size() / 2));
}

class GeneratorProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratorProperty, ProducesRequestedValidTrips) {
  SyntheticNetworkConfig net_cfg;
  net_cfg.rows = 20;
  net_cfg.cols = 20;
  net_cfg.seed = GetParam();
  const RoadNetwork net = BuildSyntheticNetwork(net_cfg);
  TrajectoryGeneratorConfig cfg;
  cfg.num_drivers = 10;
  cfg.num_trips = 60;
  cfg.min_trip_distance_m = 2000.0;
  cfg.seed = GetParam() + 1;
  TrajectoryGenerator gen(net, cfg);
  const auto trips = gen.Generate();
  ASSERT_EQ(trips.size(), 60u);
  for (const TripPath& trip : trips) {
    EXPECT_TRUE(routing::ValidatePath(net, trip.path).empty());
    EXPECT_TRUE(routing::IsSimplePath(trip.path));
    EXPECT_GE(trip.driver_id, 0);
    EXPECT_LT(trip.driver_id, cfg.num_drivers);
    EXPECT_GE(graph::FastDistanceMeters(net.coordinate(trip.source()),
                                        net.coordinate(trip.destination())),
              cfg.min_trip_distance_m * 0.999);
  }
}

TEST_P(GeneratorProperty, DeterministicUnderSeed) {
  const RoadNetwork net = BuildTestNetwork(GetParam());
  TrajectoryGeneratorConfig cfg;
  cfg.num_drivers = 5;
  cfg.num_trips = 20;
  cfg.min_trip_distance_m = 1000.0;
  cfg.seed = 99;
  const auto trips1 = TrajectoryGenerator(net, cfg).Generate();
  const auto trips2 = TrajectoryGenerator(net, cfg).Generate();
  ASSERT_EQ(trips1.size(), trips2.size());
  for (size_t i = 0; i < trips1.size(); ++i) {
    EXPECT_EQ(trips1[i].path.vertices, trips2[i].path.vertices);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorProperty,
                         ::testing::Values(21, 31, 41));

TEST(Generator, ReproducesPaperPremise) {
  // A meaningful share of trips must be neither length-shortest nor
  // time-fastest — the paper's core observation about local drivers.
  SyntheticNetworkConfig net_cfg;
  net_cfg.rows = 24;
  net_cfg.cols = 24;
  const RoadNetwork net = BuildSyntheticNetwork(net_cfg);
  TrajectoryGeneratorConfig cfg;
  cfg.num_drivers = 20;
  cfg.num_trips = 100;
  cfg.min_trip_distance_m = 3000.0;
  const auto trips = TrajectoryGenerator(net, cfg).Generate();

  routing::Dijkstra dijkstra(net);
  const auto length_cost = routing::EdgeCostFn::Length(net);
  const auto time_cost = routing::EdgeCostFn::TravelTime(net);
  int neither = 0;
  for (const TripPath& trip : trips) {
    const auto shortest =
        dijkstra.ShortestPath(trip.source(), trip.destination(), length_cost);
    const auto fastest =
        dijkstra.ShortestPath(trip.source(), trip.destination(), time_cost);
    ASSERT_TRUE(shortest.has_value());
    ASSERT_TRUE(fastest.has_value());
    const bool is_shortest = trip.path.vertices == shortest->vertices;
    const bool is_fastest = trip.path.vertices == fastest->vertices;
    if (!is_shortest && !is_fastest) ++neither;
  }
  // At least 30% of simulated trips deviate from both canonical routes.
  EXPECT_GE(neither, 30);
}

TEST(GpsSimulator, TimestampsMonotoneAndCoverTrip) {
  const RoadNetwork net = BuildTestNetwork();
  TrajectoryGeneratorConfig cfg;
  cfg.num_drivers = 3;
  cfg.num_trips = 5;
  cfg.min_trip_distance_m = 1500.0;
  const auto trips = TrajectoryGenerator(net, cfg).Generate();
  pathrank::Rng rng(3);
  GpsSimulatorConfig gps_cfg;
  gps_cfg.sample_interval_s = 5.0;
  gps_cfg.noise_sigma_m = 10.0;
  for (const TripPath& trip : trips) {
    const Trajectory t = SimulateGps(net, trip, gps_cfg, rng);
    ASSERT_GE(t.points.size(), 2u);
    for (size_t i = 1; i < t.points.size(); ++i) {
      EXPECT_GE(t.points[i].timestamp_s, t.points[i - 1].timestamp_s);
    }
    // Total duration matches the free-flow travel time.
    EXPECT_NEAR(t.points.back().timestamp_s, trip.path.time_s,
                gps_cfg.sample_interval_s + 1e-6);
  }
}

TEST(GpsSimulator, NoiseIsBounded) {
  const RoadNetwork net = BuildTestNetwork();
  TrajectoryGeneratorConfig cfg;
  cfg.num_drivers = 1;
  cfg.num_trips = 3;
  cfg.min_trip_distance_m = 1500.0;
  const auto trips = TrajectoryGenerator(net, cfg).Generate();
  pathrank::Rng rng(4);
  GpsSimulatorConfig gps_cfg;
  gps_cfg.noise_sigma_m = 5.0;
  const Trajectory t = SimulateGps(net, trips[0], gps_cfg, rng);
  // Every fix should be within ~6 sigma of some path vertex segment; a
  // cheap proxy: within 6 sigma + max edge length of the nearest vertex.
  double max_edge = 0.0;
  for (graph::EdgeId e : trips[0].path.edges) {
    max_edge = std::max(max_edge, net.edge(e).length_m);
  }
  for (const GpsPoint& p : t.points) {
    double best = 1e18;
    for (graph::VertexId v : trips[0].path.vertices) {
      best = std::min(best,
                      graph::FastDistanceMeters(p.position, net.coordinate(v)));
    }
    EXPECT_LT(best, max_edge / 2 + 6 * gps_cfg.noise_sigma_m + 1.0);
  }
}

TEST(GpsSimulator, HigherRateYieldsMorePoints) {
  const RoadNetwork net = BuildTestNetwork();
  TrajectoryGeneratorConfig cfg;
  cfg.num_drivers = 1;
  cfg.num_trips = 1;
  cfg.min_trip_distance_m = 2000.0;
  const auto trips = TrajectoryGenerator(net, cfg).Generate();
  pathrank::Rng rng1(5);
  pathrank::Rng rng2(5);
  GpsSimulatorConfig fast;
  fast.sample_interval_s = 1.0;
  GpsSimulatorConfig slow;
  slow.sample_interval_s = 10.0;
  const auto t_fast = SimulateGps(net, trips[0], fast, rng1);
  const auto t_slow = SimulateGps(net, trips[0], slow, rng2);
  EXPECT_GT(t_fast.points.size(), t_slow.points.size());
}

}  // namespace
}  // namespace pathrank::traj
