// Tests for the debug lock-rank runtime checker (common/lock_rank.h):
// acquiring ranked mutexes out of hierarchy order must abort with BOTH
// locks' names in the message, correct-order nesting must stay silent,
// and unranked / try_lock acquisitions must follow their documented
// carve-outs. The death fixtures only run in builds compiled with
// -DPATHRANK_DEBUG_LOCK_RANK=ON (the CI lock-rank leg); everywhere else
// they GTEST_SKIP, because without the checker the wrong-order pair
// simply locks fine.
#include <gtest/gtest.h>

#include <iterator>

#include "common/lock_rank.h"
#include "common/thread_annotations.h"

namespace pathrank {
namespace {

using common::LockRank;
using common::LockRankCheckingEnabled;
using common::LockRankHeldCount;
using common::Mutex;
using common::MutexLock;

TEST(LockRankRegistry, NamesRoundTrip) {
  EXPECT_STREQ(common::LockRankName(LockRank::kHttpStop), "http.stop");
  EXPECT_STREQ(common::LockRankName(LockRank::kPoolState), "pool.state");
  EXPECT_STREQ(common::LockRankName(LockRank::kStderrLog), "log.stderr");
  EXPECT_STREQ(common::LockRankName(0), "unranked");
  EXPECT_STREQ(common::LockRankName(-5), "unranked");
}

TEST(LockRankRegistry, RanksAreStrictlyIncreasingInTableOrder) {
  // The registry IS the hierarchy: a refactor that reorders two slots
  // without renumbering silently legalises the old inversion.
  const int ranks[] = {
      LockRank::kHttpStop,          LockRank::kHttpConn,
      LockRank::kHttpAdmit,         LockRank::kGraphRebuild,
      LockRank::kGraphStore,        LockRank::kRouteFlightTable,
      LockRank::kRouteFlight,       LockRank::kRouteCache,
      LockRank::kBatchingQueue,     LockRank::kEngineSnapshot,
      LockRank::kEngineBatchReplica, LockRank::kPoolRegion,
      LockRank::kPoolState,         LockRank::kPoolError,
      LockRank::kEngineReplica,     LockRank::kHttpEndpointStats,
      LockRank::kStderrLog,
  };
  for (size_t i = 1; i < std::size(ranks); ++i) {
    EXPECT_LT(ranks[i - 1], ranks[i]) << "registry slot " << i;
    EXPECT_GT(ranks[i - 1], 0);
  }
}

TEST(LockRankChecker, CorrectOrderIsSilentAndFullyReleased) {
  // Ascending acquisition is the contract; this must never abort, in
  // any build, and the held stack must drain to empty.
  Mutex low(10, "test.low");
  Mutex high(20, "test.high");
  {
    MutexLock outer(low);
    if (LockRankCheckingEnabled()) EXPECT_EQ(LockRankHeldCount(), 1u);
    MutexLock inner(high);
    if (LockRankCheckingEnabled()) EXPECT_EQ(LockRankHeldCount(), 2u);
  }
  EXPECT_EQ(LockRankHeldCount(), 0u);
}

TEST(LockRankChecker, UnrankedMutexIsInvisible) {
  // Rank 0 (the default constructor — tests, out-of-tree callers) takes
  // no part in the order: locking one between or around ranked locks in
  // any order must not fire the checker.
  Mutex unranked;
  Mutex high(20, "test.high");
  MutexLock outer(high);
  MutexLock inner(unranked);  // "descending" into rank 0: fine
  if (LockRankCheckingEnabled()) EXPECT_EQ(LockRankHeldCount(), 1u);
}

TEST(LockRankChecker, ManualUnlockMayReleaseOutOfLifoOrder) {
  // The wrappers release LIFO, but nothing requires it of manual
  // lock()/unlock() pairs; the held-stack bookkeeping must cope.
  Mutex low(10, "test.low");
  Mutex high(20, "test.high");
  low.lock();
  high.lock();
  low.unlock();  // out of LIFO order
  if (LockRankCheckingEnabled()) EXPECT_EQ(LockRankHeldCount(), 1u);
  high.unlock();
  EXPECT_EQ(LockRankHeldCount(), 0u);
}

TEST(LockRankChecker, TryLockBelowHeldRankIsAllowed) {
  // try_lock cannot deadlock (it would just fail), so an out-of-order
  // TRY is legal; the acquired lock still lands on the held stack.
  // Plain if rather than ASSERT_TRUE: clang's thread-safety analysis
  // only follows a TRY_ACQUIRE result that is branched on directly.
  Mutex low(10, "test.low");
  Mutex high(20, "test.high");
  MutexLock outer(high);
  if (low.try_lock()) {
    if (LockRankCheckingEnabled()) EXPECT_EQ(LockRankHeldCount(), 2u);
    low.unlock();
  } else {
    ADD_FAILURE() << "uncontended try_lock failed";
  }
}

TEST(LockRankCheckerDeath, WrongOrderAbortsWithBothNames) {
  if (!LockRankCheckingEnabled()) {
    GTEST_SKIP() << "build has no PATHRANK_DEBUG_LOCK_RANK checker";
  }
  // Death tests fork; threadsafe style re-executes the binary so the
  // child is not a fork of a multi-threaded gtest process mid-flight.
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex low(10, "test.low");
        Mutex high(20, "test.high");
        MutexLock outer(high);
        MutexLock inner(low);  // rank 10 under rank 20: inversion
      },
      "pathrank lock-rank violation: acquiring "
      "\"test\\.low\"(.|\n)*\"test\\.high\"");
}

TEST(LockRankCheckerDeath, EqualRankNestingAborts) {
  if (!LockRankCheckingEnabled()) {
    GTEST_SKIP() << "build has no PATHRANK_DEBUG_LOCK_RANK checker";
  }
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Two mutexes may share a rank ONLY when no thread holds both at
  // once; holding both is exactly the ABBA shape ranks exist to stop
  // (the other thread takes them in the other order), so the rule is
  // strictly-greater, not greater-or-equal.
  EXPECT_DEATH(
      {
        Mutex a(30, "test.peer_a");
        Mutex b(30, "test.peer_b");
        MutexLock outer(a);
        MutexLock inner(b);
      },
      "pathrank lock-rank violation: acquiring "
      "\"test\\.peer_b\"(.|\n)*\"test\\.peer_a\"");
}

TEST(LockRankCheckerDeath, BlockingAcquireChecksAgainstTryLockedRank) {
  if (!LockRankCheckingEnabled()) {
    GTEST_SKIP() << "build has no PATHRANK_DEBUG_LOCK_RANK checker";
  }
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  // A successful out-of-order try_lock leaves a LOWER rank on top of
  // the stack; later blocking acquisitions must be checked against the
  // MAXIMUM held rank, not the top, or this inversion goes unnoticed.
  EXPECT_DEATH(
      {
        Mutex low(10, "test.low");
        Mutex mid(15, "test.mid");
        Mutex high(20, "test.high");
        MutexLock outer(high);
        if (low.try_lock()) {    // legal: try below a held rank
          MutexLock inner(mid);  // 15 < max held (20): inversion, aborts
          low.unlock();          // unreachable; satisfies the analysis
        }
      },
      "pathrank lock-rank violation: acquiring "
      "\"test\\.mid\"(.|\n)*\"test\\.high\"");
}

}  // namespace
}  // namespace pathrank
