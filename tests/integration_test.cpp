// End-to-end pipeline test on a small network: synthesise trajectories,
// generate candidates, embed, train PathRank and verify it actually learns
// to rank (tau well above zero, MAE well below the label spread) — a
// miniature of the paper's experimental protocol.
#include <gtest/gtest.h>

#include "pathrank.h"

namespace pathrank {
namespace {

struct PipelineOutput {
  core::EvalResult test_result;
  core::TrainHistory history;
};

PipelineOutput RunPipeline(bool finetune_embedding,
                           data::CandidateStrategy strategy) {
  graph::SyntheticNetworkConfig net_cfg;
  net_cfg.rows = 14;
  net_cfg.cols = 14;
  net_cfg.seed = 5;
  const auto network = graph::BuildSyntheticNetwork(net_cfg);

  traj::TrajectoryGeneratorConfig traj_cfg;
  traj_cfg.num_drivers = 12;
  traj_cfg.num_trips = 150;
  traj_cfg.min_trip_distance_m = 2500.0;
  traj_cfg.max_path_vertices = 40;
  traj_cfg.seed = 6;
  const auto trips = traj::TrajectoryGenerator(network, traj_cfg).Generate();

  data::CandidateGenConfig gen_cfg;
  gen_cfg.strategy = strategy;
  gen_cfg.k = 6;
  gen_cfg.max_enumerated = 150;
  data::RankingDataset dataset;
  dataset.queries = data::GenerateQueries(network, trips, gen_cfg);

  Rng rng(7);
  const auto split = data::SplitDataset(dataset, 0.7, 0.1, rng);

  embedding::Node2VecConfig n2v;
  n2v.walk.walk_length = 20;
  n2v.walk.walks_per_vertex = 6;
  n2v.skipgram.dims = 16;
  n2v.skipgram.epochs = 2;
  n2v.seed = 8;
  const auto table = embedding::TrainNode2Vec(network, n2v);

  core::PathRankConfig model_cfg;
  model_cfg.embedding_dim = 16;
  model_cfg.hidden_size = 32;
  model_cfg.finetune_embedding = finetune_embedding;
  model_cfg.seed = 9;
  core::PathRankModel model(network.num_vertices(), model_cfg);
  model.InitializeEmbedding(table);

  core::TrainerConfig train_cfg;
  train_cfg.epochs = 25;
  train_cfg.batch_size = 32;
  train_cfg.learning_rate = 3e-3;
  train_cfg.patience = 0;  // fixed schedule for determinism
  train_cfg.seed = 10;
  PipelineOutput out;
  out.history = core::TrainPathRank(model, split.train, split.validation,
                                    train_cfg);
  out.test_result = core::Evaluate(model, split.test);
  return out;
}

TEST(Integration, PathRankLearnsToRank) {
  const auto out =
      RunPipeline(true, data::CandidateStrategy::kDiversifiedTopK);
  // Training loss must drop substantially.
  ASSERT_GE(out.history.epochs.size(), 3u);
  EXPECT_LT(out.history.epochs.back().train_loss,
            out.history.epochs.front().train_loss * 0.8);
  // Test metrics: clearly better than chance.
  EXPECT_LT(out.test_result.mae, 0.22);
  EXPECT_GT(out.test_result.kendall_tau, 0.25);
  EXPECT_GT(out.test_result.spearman_rho, 0.3);
  EXPECT_GT(out.test_result.num_queries, 10u);
}

TEST(Integration, TrainedModelBeatsUntrainedModel) {
  graph::SyntheticNetworkConfig net_cfg;
  net_cfg.rows = 12;
  net_cfg.cols = 12;
  const auto network = graph::BuildSyntheticNetwork(net_cfg);
  traj::TrajectoryGeneratorConfig traj_cfg;
  traj_cfg.num_drivers = 8;
  traj_cfg.num_trips = 60;
  traj_cfg.min_trip_distance_m = 2200.0;
  traj_cfg.max_path_vertices = 40;
  const auto trips = traj::TrajectoryGenerator(network, traj_cfg).Generate();
  data::CandidateGenConfig gen_cfg;
  gen_cfg.k = 5;
  gen_cfg.max_enumerated = 120;
  data::RankingDataset dataset;
  dataset.queries = data::GenerateQueries(network, trips, gen_cfg);
  Rng rng(20);
  const auto split = data::SplitDataset(dataset, 0.75, 0.0, rng);

  core::PathRankConfig model_cfg;
  model_cfg.embedding_dim = 12;
  model_cfg.hidden_size = 16;
  model_cfg.seed = 21;
  core::PathRankModel model(network.num_vertices(), model_cfg);
  const auto before = core::Evaluate(model, split.test);

  core::TrainerConfig train_cfg;
  train_cfg.epochs = 8;
  train_cfg.learning_rate = 3e-3;
  train_cfg.patience = 0;
  core::TrainPathRank(model, split.train, {}, train_cfg);
  const auto after = core::Evaluate(model, split.test);

  EXPECT_LT(after.mae, before.mae);
  EXPECT_GT(after.kendall_tau, before.kendall_tau);
}

TEST(Integration, EvaluateIsDeterministic) {
  const auto a = RunPipeline(false, data::CandidateStrategy::kTopK);
  const auto b = RunPipeline(false, data::CandidateStrategy::kTopK);
  EXPECT_DOUBLE_EQ(a.test_result.mae, b.test_result.mae);
  EXPECT_DOUBLE_EQ(a.test_result.kendall_tau, b.test_result.kendall_tau);
}

}  // namespace
}  // namespace pathrank
