// Deadline propagation, cooperative cancellation, and chaos-tested
// graceful degradation:
//
//   * Deadline/CancelToken unit semantics (sticky latch, parent
//     chaining, deterministic TripAfterChecks).
//   * The planner's degradation contract, driven DETERMINISTICALLY by
//     tripping the token after an exact number of checkpoints — every
//     possible cut point yields ok, degraded-partial, or
//     deadline_exceeded; nothing else, and partial sets never poison
//     the candidate cache.
//   * Deadline-free plans are bitwise identical with and without the
//     cancellation plumbing armed.
//   * FaultInjector spec parsing + deterministic firing.
//   * HTTP-level: an injected stall between deadline anchoring and
//     Plan() consumes the budget, so a small X-Deadline-Ms / budget_ms
//     deterministically answers 504 with the deadline_exceeded slug.
//   * A chaos hammer over all three engine compositions (bare, batched
//     queue, sharded) with injected stalls and errors plus concurrent
//     hot swaps: every request completes with an expected status, the
//     server never hangs, and admission slots never leak.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "core/model.h"
#include "graph/network_builder.h"
#include "serving/batching_queue.h"
#include "serving/fault_injector.h"
#include "serving/http_server.h"
#include "serving/json.h"
#include "serving/model_snapshot.h"
#include "serving/route_planner.h"
#include "serving/serving_engine.h"
#include "serving/sharded_engine.h"

namespace pathrank::serving {
namespace {

core::PathRankConfig SmallConfig() {
  core::PathRankConfig cfg;
  cfg.embedding_dim = 8;
  cfg.hidden_size = 12;
  cfg.seed = 3;
  return cfg;
}

// ---- Deadline / CancelToken unit semantics -----------------------------

TEST(Deadline, UnboundedNeverExpiresAndZeroBudgetAlreadyHas) {
  const Deadline unbounded;
  EXPECT_FALSE(unbounded.bounded());
  EXPECT_FALSE(unbounded.Expired());
  EXPECT_EQ(unbounded.Remaining(), std::chrono::microseconds::max());

  const Deadline spent = Deadline::After(std::chrono::microseconds(0));
  EXPECT_TRUE(spent.bounded());
  EXPECT_TRUE(spent.Expired());
  EXPECT_EQ(spent.Remaining(), std::chrono::microseconds::zero());

  EXPECT_FALSE(Deadline::AfterMs(60'000).Expired());
}

TEST(CancelToken, CancelIsStickyAndParentPropagates) {
  const CancelToken parent;
  const CancelToken child(Deadline{}, &parent);
  EXPECT_FALSE(child.Expired());
  parent.Cancel();
  EXPECT_TRUE(child.Expired());
  EXPECT_TRUE(child.Expired());  // sticky: never un-expires
}

TEST(CancelToken, TripAfterChecksFiresOnTheExactCall) {
  CancelToken token;
  token.TripAfterChecks(3);
  EXPECT_FALSE(token.Expired());  // check 0
  EXPECT_FALSE(token.Expired());  // check 1
  EXPECT_FALSE(token.Expired());  // check 2
  EXPECT_TRUE(token.Expired());   // check 3 trips the latch
  EXPECT_TRUE(token.Expired());
}

// ---- Planner degradation, deterministically ----------------------------

struct PlannerFixture {
  graph::RoadNetwork network = graph::BuildTestNetwork();
  core::PathRankModel model;
  ServingEngine engine;

  explicit PlannerFixture()
      : model(network.num_vertices(), SmallConfig()),
        engine(network, model) {}

  std::unique_ptr<RoutePlanner> MakePlanner(size_t cache_capacity) const {
    RoutePlannerConfig config;
    config.network = &network;
    config.cache_capacity = cache_capacity;
    return std::make_unique<RoutePlanner>(
        config, [this](std::vector<routing::Path> paths) {
          return engine.ScoreBatch(paths);
        });
  }
};

/// Sweeps the cancellation cut point across the whole enumeration: for
/// every trip-after-n-checks the outcome must be one of the three legal
/// shapes, and each shape must actually occur somewhere in the sweep —
/// an n too small to find a path 504s, a mid-range n degrades, a large
/// n finishes clean. No clocks involved: the sweep is exact and
/// repeatable down to the iteration.
TEST(PlannerDegradation, EveryCancellationCutPointYieldsALegalOutcome) {
  const PlannerFixture fx;
  const auto planner = fx.MakePlanner(/*cache_capacity=*/0);
  const auto reference = fx.MakePlanner(/*cache_capacity=*/0);
  const RouteResult full = reference->Plan({0, 63, /*k=*/8});
  ASSERT_EQ(full.status, RouteStatus::kOk);
  ASSERT_FALSE(full.degraded);
  const size_t full_size = full.ranked.size();
  ASSERT_GT(full_size, 1u);

  int exceeded = 0, degraded = 0, clean = 0;
  for (uint64_t n = 0; n < 400; ++n) {
    CancelToken trip;
    trip.TripAfterChecks(n);
    RouteRequest request{0, 63, /*k=*/8};
    request.cancel = &trip;
    const RouteResult result = planner->Plan(request);
    switch (result.status) {
      case RouteStatus::kDeadlineExceeded:
        ++exceeded;
        EXPECT_TRUE(result.ranked.empty());
        EXPECT_FALSE(result.degraded);
        break;
      case RouteStatus::kOk:
        ASSERT_FALSE(result.ranked.empty());
        if (result.degraded) {
          ++degraded;
          EXPECT_LE(result.ranked.size(), full_size);
        } else {
          ++clean;
          // An uncancelled run must be THE full answer, score for score.
          ASSERT_EQ(result.ranked.size(), full_size);
          for (size_t i = 0; i < full_size; ++i) {
            EXPECT_EQ(result.ranked[i].score, full.ranked[i].score);
          }
        }
        break;
      default:
        FAIL() << "unexpected status "
               << RouteStatusSlug(result.status) << " at n=" << n;
    }
  }
  // The sweep must traverse all three regimes, or it proves nothing.
  EXPECT_GT(exceeded, 0) << "no cut point hit the 504 path";
  EXPECT_GT(degraded, 0) << "no cut point hit the degraded path";
  EXPECT_GT(clean, 0) << "no cut point let the query finish";
  EXPECT_EQ(planner->deadline_exceeded_count(), static_cast<uint64_t>(exceeded));
  EXPECT_EQ(planner->degraded_count(), static_cast<uint64_t>(degraded));
}

TEST(PlannerDegradation, PartialResultsNeverPoisonTheCache) {
  const PlannerFixture fx;
  const auto planner = fx.MakePlanner(/*cache_capacity=*/64);

  // Trip almost immediately: out of budget before the first candidate.
  {
    CancelToken trip;
    trip.TripAfterChecks(0);
    RouteRequest request{0, 63, /*k=*/8};
    request.cancel = &trip;
    EXPECT_EQ(planner->Plan(request).status, RouteStatus::kDeadlineExceeded);
  }
  // Trip mid-enumeration: degraded partial set.
  bool saw_degraded = false;
  for (uint64_t n = 1; n < 200 && !saw_degraded; ++n) {
    CancelToken trip;
    trip.TripAfterChecks(n);
    RouteRequest request{0, 63, /*k=*/8};
    request.cancel = &trip;
    const RouteResult result = planner->Plan(request);
    saw_degraded = result.degraded;
  }
  ASSERT_TRUE(saw_degraded);

  // Neither outcome may have seeded the cache: the next unhurried query
  // must MISS, re-enumerate, and return the full set.
  EXPECT_EQ(planner->cache_size(), 0u);
  const RouteResult fresh = planner->Plan({0, 63, /*k=*/8});
  EXPECT_EQ(fresh.status, RouteStatus::kOk);
  EXPECT_FALSE(fresh.cache_hit);
  EXPECT_FALSE(fresh.degraded);
  // And THAT one is cached like any clean miss.
  const RouteResult hit = planner->Plan({0, 63, /*k=*/8});
  EXPECT_TRUE(hit.cache_hit);
  ASSERT_EQ(hit.ranked.size(), fresh.ranked.size());
  for (size_t i = 0; i < hit.ranked.size(); ++i) {
    EXPECT_EQ(hit.ranked[i].score, fresh.ranked[i].score);
  }
}

TEST(PlannerDeadline, GenerousDeadlineIsBitwiseIdenticalToNoDeadline) {
  const PlannerFixture fx;
  const auto planner = fx.MakePlanner(/*cache_capacity=*/0);
  const RouteResult bare = planner->Plan({7, 56, /*k=*/6});
  RouteRequest with_deadline{7, 56, /*k=*/6};
  with_deadline.deadline = Deadline::AfterMs(600'000);  // will not expire
  const RouteResult guarded = planner->Plan(with_deadline);
  // Arming the cancellable path must not perturb a single bit of the
  // answer — the checkpoints only READ the token.
  ASSERT_EQ(bare.status, RouteStatus::kOk);
  ASSERT_EQ(guarded.status, RouteStatus::kOk);
  EXPECT_FALSE(guarded.degraded);
  ASSERT_EQ(bare.ranked.size(), guarded.ranked.size());
  for (size_t i = 0; i < bare.ranked.size(); ++i) {
    EXPECT_EQ(bare.ranked[i].score, guarded.ranked[i].score);
    EXPECT_EQ(bare.ranked[i].path.vertices, guarded.ranked[i].path.vertices);
  }
}

TEST(PlannerDeadline, AlreadyExpiredBudgetIs504NotUnreachable) {
  const PlannerFixture fx;
  const auto planner = fx.MakePlanner(/*cache_capacity=*/64);
  RouteRequest request{0, 63, /*k=*/8};
  request.deadline = Deadline::After(std::chrono::microseconds(0));
  const RouteResult result = planner->Plan(request);
  EXPECT_EQ(result.status, RouteStatus::kDeadlineExceeded);
  EXPECT_TRUE(result.ranked.empty());
  EXPECT_EQ(planner->deadline_exceeded_count(), 1u);
  // The poisoning rule again: the pair is NOT "unreachable" now.
  const RouteResult retry = planner->Plan({0, 63, /*k=*/8});
  EXPECT_EQ(retry.status, RouteStatus::kOk);
  EXPECT_FALSE(retry.cache_hit);
}

// ---- FaultInjector -----------------------------------------------------

TEST(FaultInjector, ParsesTheGrammarAndRejectsJunk) {
  EXPECT_NE(FaultInjector::Parse("", 1), nullptr);
  const auto plan =
      FaultInjector::Parse("route:delay_ms=5;score:error:p=0.5", 1);
  ASSERT_NE(plan, nullptr);
  EXPECT_TRUE(plan->enabled());

  EXPECT_THROW(FaultInjector::Parse("route", 1), FaultSpecError);
  EXPECT_THROW(FaultInjector::Parse("route:delay_ms=x", 1), FaultSpecError);
  EXPECT_THROW(FaultInjector::Parse("route:p=1.5:error", 1), FaultSpecError);
  EXPECT_THROW(FaultInjector::Parse("route:frobnicate", 1), FaultSpecError);
  EXPECT_THROW(FaultInjector::Parse(";route:error", 1), FaultSpecError);
  EXPECT_THROW(FaultInjector::Parse("a:error;a:error", 1), FaultSpecError);
}

TEST(FaultInjector, MalformedSpecsThrowWithFieldDiagnostics) {
  // Each malformed grammar must throw — never parse to a silently
  // fault-free plan — and the message must name the rule and the
  // offending token in the common/parse "<field> expects ..., got
  // '<token>'" convention.
  const auto message_of = [](const std::string& spec) -> std::string {
    try {
      FaultInjector::Parse(spec, 1);
    } catch (const FaultSpecError& e) {
      return e.what();
    }
    return "";  // no throw: every EXPECT below fails loudly
  };

  // Missing fields: "site:" splits into an empty (unknown) field.
  EXPECT_NE(message_of("route:").find("unknown field ''"),
            std::string::npos);
  // Missing value after the key.
  EXPECT_NE(message_of("route:delay_ms=")
                .find("delay_ms expects a non-negative integer, got ''"),
            std::string::npos);
  // Junk probability.
  EXPECT_NE(message_of("route:error:p=fast")
                .find("p expects a number in [0,1], got 'fast'"),
            std::string::npos);
  EXPECT_NE(message_of("route:error:p=0..5").find("p expects"),
            std::string::npos);
  // Overflow: past INT64_MAX must throw, not truncate or wrap.
  EXPECT_NE(message_of("route:delay_ms=99999999999999999999")
                .find("delay_ms expects a non-negative integer"),
            std::string::npos);
  // Negative delay (whole-token parse accepts the sign; range does not).
  EXPECT_NE(message_of("route:delay_ms=-5").find("delay_ms expects"),
            std::string::npos);
  // The rule index is 1-based and names the offending rule, not rule 1.
  EXPECT_NE(message_of("a:error;b:delay_ms=x").find("fault spec rule 2:"),
            std::string::npos);
}

TEST(FaultInjector, FiresDeterministicallyPerSeedAndOrdinal) {
  const auto run = [](uint64_t seed) {
    const auto plan = FaultInjector::Parse("s:error:p=0.5", seed);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      try {
        plan->Inject("s");
        fired.push_back(false);
      } catch (const FaultInjectedError&) {
        fired.push_back(true);
      }
    }
    return fired;
  };
  const auto a = run(42), b = run(42), c = run(43);
  EXPECT_EQ(a, b);  // same seed -> identical firing sequence
  EXPECT_NE(a, c);  // different seed -> different plan
  EXPECT_GT(std::count(a.begin(), a.end(), true), 0);
  EXPECT_GT(std::count(a.begin(), a.end(), false), 0);
  // Unknown sites cost nothing and never fire.
  const auto plan = FaultInjector::Parse("s:error", 1);
  EXPECT_NO_THROW(plan->Inject("other"));
  EXPECT_EQ(plan->injected_errors(), 0u);
}

// ---- HTTP fixtures -----------------------------------------------------

/// Which engine composition backs the server — the chaos hammer runs
/// the same assault against all three.
enum class Composition { kBare, kBatched, kSharded };

/// HTTP server over a real model with optional fault injection, wired
/// exactly like `pathrank_cli serve`: faults wrap the seams BEFORE the
/// planner captures backend.score, and the "route" site fires between
/// deadline anchoring and Plan().
struct ChaosServerFixture {
  graph::RoadNetwork network = graph::BuildTestNetwork();
  core::PathRankModel model;
  ServingEngine engine;
  std::unique_ptr<BatchingQueue> queue;
  std::unique_ptr<ShardedEngine> sharded;
  std::shared_ptr<FaultInjector> faults;
  std::unique_ptr<RoutePlanner> planner;
  std::unique_ptr<HttpServer> server;

  explicit ChaosServerFixture(Composition composition,
                              const std::string& fault_spec = "",
                              uint64_t fault_seed = 1,
                              HttpServerOptions options = DefaultOptions())
      : model(network.num_vertices(), SmallConfig()),
        engine(network, model) {
    faults = FaultInjector::Parse(fault_spec, fault_seed);
    if (composition == Composition::kBatched) {
      queue = std::make_unique<BatchingQueue>(engine);
    } else if (composition == Composition::kSharded) {
      ShardedOptions shard_options;
      shard_options.num_shards = 2;
      sharded = std::make_unique<ShardedEngine>(
          network, engine.shared_snapshot(), shard_options);
    }

    HttpBackend backend;
    backend.num_vertices = network.num_vertices();
    if (sharded != nullptr) {
      backend.rank = [this](graph::VertexId s, graph::VertexId d) {
        return sharded->Rank(s, d);
      };
      backend.score = [this](std::vector<routing::Path> paths) {
        return sharded->ScoreBatch(paths);
      };
    } else if (queue != nullptr) {
      backend.rank = [this](graph::VertexId s, graph::VertexId d) {
        return queue->SubmitRank(s, d).get();
      };
      backend.score = [this](std::vector<routing::Path> paths) {
        return queue->SubmitScore(std::move(paths)).get();
      };
    } else {
      backend.rank = [this](graph::VertexId s, graph::VertexId d) {
        return engine.Rank(s, d);
      };
      backend.score = [this](std::vector<routing::Path> paths) {
        return engine.ScoreBatch(paths);
      };
    }
    backend.swap_count = [this] { return engine.swap_count(); };
    if (faults->enabled()) {
      backend.rank = [this, inner = backend.rank](graph::VertexId s,
                                                  graph::VertexId d) {
        faults->Inject("rank");
        return inner(s, d);
      };
      backend.score = [this, inner = backend.score](
                          std::vector<routing::Path> paths) {
        faults->Inject("score");
        return inner(std::move(paths));
      };
    }

    RoutePlannerConfig route_config;
    route_config.network = &network;
    route_config.cache_capacity = 64;
    planner = std::make_unique<RoutePlanner>(route_config, backend.score);
    backend.route = [this](const RouteRequest& request) {
      if (faults->enabled()) faults->Inject("route");
      return planner->Plan(request);
    };

    server = std::make_unique<HttpServer>(std::move(backend), options);
    server->Start();
  }

  static HttpServerOptions DefaultOptions() {
    HttpServerOptions options;
    options.port = 0;
    options.num_threads = 6;
    options.max_inflight = 4;
    options.retry_after_s = 0;
    return options;
  }

  void Swap() {
    const auto next = ModelSnapshot::Capture(model);
    if (sharded != nullptr) {
      sharded->SwapSnapshot(next);
    } else {
      engine.SwapSnapshot(next);
    }
  }
};

std::string RouteBody(graph::VertexId source, graph::VertexId destination,
                      int k = 0, int budget_ms = 0) {
  json::Object object;
  object["source"] = json::Value(static_cast<uint64_t>(source));
  object["destination"] = json::Value(static_cast<uint64_t>(destination));
  if (k > 0) object["k"] = json::Value(static_cast<uint64_t>(k));
  if (budget_ms > 0) {
    object["budget_ms"] = json::Value(static_cast<uint64_t>(budget_ms));
  }
  return json::Dump(json::Value(std::move(object)));
}

// ---- HTTP deadline semantics -------------------------------------------

TEST(HttpDeadline, InjectedStallBeforePlanConsumesTheBudget) {
  // The "route" fault site sits between the deadline anchor (HTTP
  // parse) and Plan(): a 60 ms stall against a 10 ms budget therefore
  // 504s deterministically — no race against real enumeration speed.
  ChaosServerFixture fx(Composition::kBare, "route:delay_ms=60");
  HttpClient client;
  client.Connect(fx.server->port());

  const auto response =
      client.Request("POST", "/v1/route", RouteBody(0, 63, 4, /*budget_ms=*/10));
  EXPECT_EQ(response.status, 504) << response.body;
  EXPECT_NE(response.body.find("\"deadline_exceeded\""), std::string::npos)
      << response.body;

  // The counters saw it: server-level, /statsz, and per-endpoint.
  const auto statsz = json::Parse(client.Request("GET", "/statsz").body);
  ASSERT_TRUE(statsz);
  EXPECT_EQ(statsz->Find("deadline_exceeded_count")->number_value(), 1.0);
  EXPECT_EQ(statsz->Find("degraded_count")->number_value(), 0.0);
  const json::Value* route_stats =
      statsz->Find("endpoints")->Find("/v1/route");
  ASSERT_NE(route_stats, nullptr);
  EXPECT_EQ(route_stats->Find("timeouts")->number_value(), 1.0);
  EXPECT_EQ(fx.server->stats().deadline_exceeded_total, 1u);

  // Same request without a budget: the stall just makes it slower.
  EXPECT_EQ(client.Request("POST", "/v1/route", RouteBody(0, 63, 4)).status,
            200);
}

TEST(HttpDeadline, XDeadlineMsHeaderWorksAndBodyFieldWins) {
  ChaosServerFixture fx(Composition::kBare, "route:delay_ms=60");
  // Raw request with the header (HttpClient emits fixed headers only).
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(fx.server->port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string body = RouteBody(0, 63, 4);
  const std::string request =
      "POST /v1/route HTTP/1.1\r\nHost: t\r\nX-Deadline-Ms: 10\r\n"
      "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n" + body;
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char chunk[1024];
  while (response.find("\"deadline_exceeded\"") == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_EQ(response.substr(0, 12), "HTTP/1.1 504") << response;

  // budget_ms in the body overrides the header: a generous body budget
  // under a hostile header must succeed.
  HttpClient client;
  client.Connect(fx.server->port());
  const auto ok = client.Request("POST", "/v1/route",
                                 RouteBody(0, 63, 4, /*budget_ms=*/60'000));
  EXPECT_EQ(ok.status, 200) << ok.body;
}

TEST(HttpDeadline, DeadlineFreeBodyIsByteIdenticalAcrossFaultedServer) {
  // A server with injection armed (but a route delay only) must answer a
  // deadline-free query with the EXACT bytes of an unfaulted server —
  // the whole cancellation/fault seam is invisible until it fires.
  ChaosServerFixture clean(Composition::kBare);
  ChaosServerFixture faulted(Composition::kBare, "route:delay_ms=5");
  HttpClient a, b;
  a.Connect(clean.server->port());
  b.Connect(faulted.server->port());
  const auto clean_body =
      a.Request("POST", "/v1/route", RouteBody(7, 56, 5)).body;
  const auto faulted_body =
      b.Request("POST", "/v1/route", RouteBody(7, 56, 5)).body;
  EXPECT_EQ(clean_body, faulted_body);
  EXPECT_EQ(clean_body.find("degraded"), std::string::npos);
}

TEST(HttpDeadline, MaxDeadlineMsCapsAndDefaultApplies) {
  // default_deadline_ms + a route stall: a client that sends NO budget
  // still gets the server-side default, and max_deadline_ms clamps an
  // extravagant client ask down to something the stall exhausts.
  HttpServerOptions options = ChaosServerFixture::DefaultOptions();
  options.default_deadline_ms = 10;
  options.max_deadline_ms = 15;
  ChaosServerFixture fx(Composition::kBare, "route:delay_ms=60", 1, options);
  HttpClient client;
  client.Connect(fx.server->port());
  // No budget sent: server default (10 ms) < stall -> 504.
  EXPECT_EQ(client.Request("POST", "/v1/route", RouteBody(0, 63, 4)).status,
            504);
  // Client asks for 100 s: capped to 15 ms -> still 504.
  EXPECT_EQ(client.Request("POST", "/v1/route",
                           RouteBody(0, 63, 4, /*budget_ms=*/100'000))
                .status,
            504);
}

// ---- The chaos hammer --------------------------------------------------

/// Hammers one composition with stalls + errors + tight budgets while
/// snapshots hot-swap underneath. Every request must complete with an
/// explainable status, nothing may hang, and the server must come out
/// healthy with zero in-flight slots.
void RunChaosHammer(Composition composition) {
  // score errors at p=0.25 -> 500s; route stalls at p=0.5 x 3 ms against
  // 8 ms budgets -> a mix of 504/degraded/ok; rank stalls keep admission
  // pressure on (max_inflight 4).
  ChaosServerFixture fx(composition,
                        "score:error:p=0.25;route:delay_ms=3:p=0.5;"
                        "rank:delay_ms=2:p=0.5",
                        /*fault_seed=*/7);

  std::atomic<bool> stop_swapping{false};
  std::thread swapper([&] {
    while (!stop_swapping.load()) {
      fx.Swap();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  constexpr int kThreads = 4;
  constexpr int kRequestsPerThread = 30;
  std::atomic<int> unexpected{0};
  std::atomic<int> slow{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&fx, &unexpected, &slow, t] {
      HttpClient client;
      client.Connect(fx.server->port());
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const graph::VertexId s = static_cast<graph::VertexId>((t * 7 + i) % 63);
        const graph::VertexId d = static_cast<graph::VertexId>(63 - s % 8);
        const auto started = std::chrono::steady_clock::now();
        int status = 0;
        try {
          if (i % 3 == 0) {
            status = client
                         .Request("POST", "/v1/route",
                                  RouteBody(s, d == s ? (s + 1) % 64 : d, 4,
                                            /*budget_ms=*/8))
                         .status;
          } else if (i % 3 == 1) {
            json::Object object;
            object["source"] = json::Value(static_cast<uint64_t>(s));
            object["destination"] =
                json::Value(static_cast<uint64_t>(d == s ? (s + 1) % 64 : d));
            status = client
                         .Request("POST", "/v1/rank",
                                  json::Dump(json::Value(std::move(object))))
                         .status;
          } else {
            status = client.Request("GET", "/healthz").status;
          }
        } catch (const std::exception&) {
          // Transport failure (server closed on us): reconnect and go
          // on — the assertion is about hangs and leaks, not about
          // every connection surviving.
          try {
            client.Connect(fx.server->port());
          } catch (const std::exception&) {
          }
          continue;
        }
        const auto elapsed = std::chrono::steady_clock::now() - started;
        // "Never hangs": every answer lands in bounded time. The bound
        // is generous (scheduler noise, sanitizers) but finite — orders
        // of magnitude below the idle/request timeouts.
        if (elapsed > std::chrono::seconds(5)) slow.fetch_add(1);
        switch (status) {
          case 200:   // served (possibly degraded)
          case 429:   // shed by admission control
          case 500:   // injected backend error
          case 504:   // budget exhausted before the first candidate
            break;
          default:
            unexpected.fetch_add(1);
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  stop_swapping.store(true);
  swapper.join();

  EXPECT_EQ(unexpected.load(), 0);
  EXPECT_EQ(slow.load(), 0);

  // The server survives the assault: healthy, no leaked admission
  // slots, no stuck waiters.
  HttpClient prober;
  prober.Connect(fx.server->port());
  EXPECT_EQ(prober.Request("GET", "/healthz").status, 200);
  const auto stats = fx.server->stats();
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_EQ(stats.admission_waiting, 0u);
  // And a clean stop: no in-flight request pins the join.
  fx.server->Stop();
}

TEST(Chaos, BareEngineShedsDegradesOr504sButNeverHangs) {
  RunChaosHammer(Composition::kBare);
}

TEST(Chaos, BatchedQueueShedsDegradesOr504sButNeverHangs) {
  RunChaosHammer(Composition::kBatched);
}

TEST(Chaos, ShardedEngineShedsDegradesOr504sButNeverHangs) {
  RunChaosHammer(Composition::kSharded);
}

}  // namespace
}  // namespace pathrank::serving
