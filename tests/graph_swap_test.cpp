// Epoch-versioned live graph: GraphSnapshot/GraphStore swap semantics,
// the epoch-keyed candidate cache, and the single-flight enumeration
// gate — the concurrency contract behind POST /v1/traffic. Asserts
// (1) concurrent route queries during a swap storm are each attributable
// to exactly ONE epoch (the ranking bitwise matches the reference for
// the graph state that epoch names — no torn reads), (2) the superseded
// snapshot is freed exactly when the last in-flight reference drops,
// (3) a cache entry from epoch N is a miss at N + 1 and the re-scored
// answer bitwise matches a fresh planner on the new graph — negative
// (unreachable) verdicts invalidate too, (4) N identical deadline-free
// queries racing after an invalidation run Yen exactly once and all
// return bitwise-identical sets, and a leader's exception reaches every
// follower (never a half-built set). Runs under both the ASan and TSan
// CI jobs next to hot_swap_test.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/model.h"
#include "graph/graph_snapshot.h"
#include "graph/network_builder.h"
#include "serving/graph_store.h"
#include "serving/route_planner.h"
#include "serving/serving_engine.h"

namespace pathrank::serving {
namespace {

core::PathRankConfig SmallConfig() {
  core::PathRankConfig cfg;
  cfg.embedding_dim = 8;
  cfg.hidden_size = 12;
  cfg.seed = 3;
  return cfg;
}

data::CandidateGenConfig GenConfig() {
  data::CandidateGenConfig gen;
  gen.strategy = data::CandidateStrategy::kDiversifiedTopK;
  gen.k = 5;
  gen.similarity_threshold = 0.6;
  gen.max_enumerated = 200;
  return gen;
}

/// Bitwise ranking comparison (no tolerance), as a predicate so the
/// attribution loop can test a result against BOTH references.
bool SameRanking(const std::vector<ScoredPath>& a,
                 const std::vector<ScoredPath>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].score != b[i].score || a[i].path.cost != b[i].path.cost ||
        a[i].path.vertices != b[i].path.vertices ||
        a[i].path.edges != b[i].path.edges) {
      return false;
    }
  }
  return true;
}

void ExpectSameRanking(const std::vector<ScoredPath>& actual,
                       const std::vector<ScoredPath>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].score, expected[i].score) << "rank " << i;
    EXPECT_EQ(actual[i].path.vertices, expected[i].path.vertices);
    EXPECT_EQ(actual[i].path.edges, expected[i].path.edges);
    EXPECT_EQ(actual[i].path.cost, expected[i].path.cost);
  }
}

/// GraphStore + live planner over a real engine on the 8x8 test grid.
struct SwapFixture {
  graph::RoadNetwork network = graph::BuildTestNetwork();
  core::PathRankModel model;
  ServingEngine engine;
  GraphStore store;
  RoutePlanner planner;

  static RoutePlannerConfig Config(size_t cache_capacity) {
    RoutePlannerConfig config;
    config.candidates = GenConfig();
    config.cache_capacity = cache_capacity;
    return config;
  }

  static RoutePlannerConfig WithStore(RoutePlannerConfig config,
                                      const GraphStore& store) {
    config.store = &store;
    return config;
  }

  static RoutePlannerConfig WithNetwork(RoutePlannerConfig config,
                                        const graph::RoadNetwork& network) {
    config.network = &network;
    return config;
  }

  explicit SwapFixture(RoutePlannerConfig config = Config(64))
      : model(network.num_vertices(), SmallConfig()),
        engine(network, model),
        store(graph::BuildTestNetwork()),
        planner(WithStore(std::move(config), store),
                [this](std::vector<routing::Path> paths) {
                  return engine.ScoreBatch(paths);
                }) {}

  RoutePlanner::ScoreFn Score() {
    return [this](std::vector<routing::Path> paths) {
      return engine.ScoreBatch(paths);
    };
  }
};

/// Traffic updates that multiply the given edges' travel times by 100 —
/// enough to push Yen onto different paths.
std::vector<graph::TrafficUpdate> SlowUpdates(
    const graph::RoadNetwork& network, const std::vector<graph::EdgeId>& edges,
    double factor) {
  std::vector<graph::TrafficUpdate> updates;
  updates.reserve(edges.size());
  for (const graph::EdgeId e : edges) {
    graph::TrafficUpdate update;
    update.edge = e;
    update.travel_time_s = network.edge(e).travel_time_s * factor;
    update.has_travel_time = true;
    updates.push_back(update);
  }
  return updates;
}

// ---- GraphSnapshot / GraphStore semantics ------------------------------

TEST(GraphSwap, TrafficRebuildKeepsEdgeIdsStable) {
  const auto base = graph::GraphSnapshot::Wrap(graph::BuildTestNetwork());
  EXPECT_EQ(base->epoch(), 0u);
  EXPECT_EQ(base->num_closed(), 0u);

  graph::TrafficUpdate update;
  update.edge = 7;
  update.travel_time_s = 1234.5;
  update.has_travel_time = true;
  const std::vector<graph::TrafficUpdate> updates{update};
  const auto next = base->WithTraffic(updates);

  EXPECT_EQ(next->epoch(), 1u);
  EXPECT_EQ(next->network().num_edges(), base->network().num_edges());
  EXPECT_EQ(next->network().num_vertices(), base->network().num_vertices());
  EXPECT_EQ(next->network().edge(7).travel_time_s, 1234.5);
  // The receiver is untouched (copy-on-write, not in-place).
  EXPECT_NE(base->network().edge(7).travel_time_s, 1234.5);
  // Every other edge record survives bit-for-bit.
  for (graph::EdgeId e = 0; e < base->network().num_edges(); ++e) {
    if (e == 7) continue;
    EXPECT_EQ(next->network().edge(e).travel_time_s,
              base->network().edge(e).travel_time_s);
    EXPECT_EQ(next->network().edge(e).from, base->network().edge(e).from);
    EXPECT_EQ(next->network().edge(e).to, base->network().edge(e).to);
  }
}

TEST(GraphSwap, ClosureRemovesEdgeFromAdjacencyAndReopeningRestoresIt) {
  const auto base = graph::GraphSnapshot::Wrap(graph::BuildTestNetwork());
  const graph::EdgeId edge = 0;
  const graph::VertexId from = base->network().edge(edge).from;
  const graph::VertexId to = base->network().edge(edge).to;
  ASSERT_NE(base->network().FindEdge(from, to), graph::kInvalidEdge);
  const size_t out_degree = base->network().OutDegree(from);

  graph::TrafficUpdate close;
  close.edge = edge;
  close.has_closed = true;
  close.closed = true;
  const std::vector<graph::TrafficUpdate> close_batch{close};
  const auto closed = base->WithTraffic(close_batch);
  EXPECT_TRUE(closed->IsClosed(edge));
  EXPECT_EQ(closed->num_closed(), 1u);
  // The record survives (stable ids) but no adjacency row yields it.
  EXPECT_EQ(closed->network().num_edges(), base->network().num_edges());
  EXPECT_EQ(closed->network().OutDegree(from), out_degree - 1);
  for (const graph::EdgeId e : closed->network().OutEdges(from)) {
    EXPECT_NE(e, edge);
  }

  graph::TrafficUpdate reopen;
  reopen.edge = edge;
  reopen.has_closed = true;
  reopen.closed = false;
  const std::vector<graph::TrafficUpdate> reopen_batch{reopen};
  const auto reopened = closed->WithTraffic(reopen_batch);
  EXPECT_FALSE(reopened->IsClosed(edge));
  EXPECT_EQ(reopened->network().OutDegree(from), out_degree);
  EXPECT_EQ(reopened->network().FindEdge(from, to),
            base->network().FindEdge(from, to));
}

TEST(GraphSwap, ApplyTrafficValidatesAndIsAllOrNothing) {
  GraphStore store(graph::BuildTestNetwork());
  const size_t num_edges = store.Current()->network().num_edges();

  EXPECT_EQ(store.ApplyTraffic({}).status, TrafficStatus::kEmptyBatch);

  graph::TrafficUpdate good;
  good.edge = 0;
  good.travel_time_s = 99.0;
  good.has_travel_time = true;

  graph::TrafficUpdate unknown = good;
  unknown.edge = static_cast<graph::EdgeId>(num_edges);
  EXPECT_EQ(store.ApplyTraffic({good, unknown}).status,
            TrafficStatus::kUnknownEdge);

  EXPECT_EQ(store.ApplyTraffic({good, good}).status,
            TrafficStatus::kDuplicateEdge);

  graph::TrafficUpdate negative = good;
  negative.edge = 1;
  negative.travel_time_s = -5.0;
  EXPECT_EQ(store.ApplyTraffic({good, negative}).status,
            TrafficStatus::kBadUpdate);

  graph::TrafficUpdate no_effect;
  no_effect.edge = 2;
  EXPECT_EQ(store.ApplyTraffic({good, no_effect}).status,
            TrafficStatus::kBadUpdate);

  // Every rejected batch above contained one valid update; none of it may
  // have been applied, and no epoch was published.
  EXPECT_EQ(store.epoch(), 0u);
  EXPECT_EQ(store.traffic_batches(), 0u);
  EXPECT_EQ(store.Current()->network().edge(0).travel_time_s,
            graph::BuildTestNetwork().edge(0).travel_time_s);

  const TrafficResult ok = store.ApplyTraffic({good});
  EXPECT_EQ(ok.status, TrafficStatus::kOk);
  EXPECT_EQ(ok.epoch, 1u);
  EXPECT_EQ(ok.cost_updates, 1u);
  EXPECT_EQ(store.epoch(), 1u);
  EXPECT_EQ(store.traffic_batches(), 1u);
  EXPECT_EQ(store.Current()->network().edge(0).travel_time_s, 99.0);
}

TEST(GraphSwap, OldSnapshotFreedAfterLastInFlightReferenceDrops) {
  GraphStore store(graph::BuildTestNetwork());
  // An "in-flight query": the one reference a Plan() call holds.
  auto in_flight = store.Current();
  std::weak_ptr<const graph::GraphSnapshot> probe = in_flight;

  graph::TrafficUpdate update;
  update.edge = 0;
  update.travel_time_s = 42.0;
  update.has_travel_time = true;
  ASSERT_EQ(store.ApplyTraffic({update}).status, TrafficStatus::kOk);

  // Swapped out, but the in-flight query still pins it.
  EXPECT_EQ(store.Current()->epoch(), 1u);
  EXPECT_FALSE(probe.expired());
  in_flight.reset();
  // Last reference gone -> freed immediately (no deferred reclamation).
  EXPECT_TRUE(probe.expired());

  // Same contract on the full-replacement (--watch-graph) path, which
  // hands the superseded snapshot back explicitly.
  auto old = store.SwapNetwork(graph::BuildTestNetwork());
  ASSERT_NE(old, nullptr);
  EXPECT_EQ(old->epoch(), 1u);
  EXPECT_EQ(store.Current()->epoch(), 2u);
  EXPECT_EQ(store.Current()->num_closed(), 0u);
  std::weak_ptr<const graph::GraphSnapshot> old_probe = old;
  old.reset();
  EXPECT_TRUE(old_probe.expired());
}

// ---- Attribution under a swap storm ------------------------------------

TEST(GraphSwap, ConcurrentQueriesAttributableToExactlyOneEpoch) {
  SwapFixture fx;
  const std::vector<std::pair<graph::VertexId, graph::VertexId>> queries = {
      {0, 63}, {7, 56}, {5, 60}, {16, 47}};

  // Reference rankings for the two alternating graph states: even epochs
  // serve boot costs, odd epochs the slowed costs. The slowed edges are
  // the spine of the boot best path, x100 — Yen must reroute.
  const RouteResult probe = fx.planner.Plan({0, 63});
  ASSERT_EQ(probe.status, RouteStatus::kOk);
  ASSERT_GE(probe.ranked.size(), 1u);
  const std::vector<graph::EdgeId> spine(
      probe.ranked[0].path.edges.begin(),
      probe.ranked[0].path.edges.begin() +
          std::min<size_t>(4, probe.ranked[0].path.edges.size()));
  const auto slow = SlowUpdates(fx.network, spine, 100.0);
  auto restore = SlowUpdates(fx.network, spine, 1.0);

  const auto slowed_snapshot =
      graph::GraphSnapshot::Wrap(graph::BuildTestNetwork())
          ->WithTraffic(slow);
  const RoutePlanner even_ref(
      SwapFixture::WithNetwork(SwapFixture::Config(0), fx.network),
      fx.Score());
  const RoutePlanner odd_ref(
      SwapFixture::WithNetwork(SwapFixture::Config(0),
                               slowed_snapshot->network()),
      fx.Score());
  std::vector<std::vector<ScoredPath>> even_ranked;
  std::vector<std::vector<ScoredPath>> odd_ranked;
  for (const auto& [s, d] : queries) {
    const RouteResult even = even_ref.Plan({s, d});
    const RouteResult odd = odd_ref.Plan({s, d});
    ASSERT_EQ(even.status, RouteStatus::kOk);
    ASSERT_EQ(odd.status, RouteStatus::kOk);
    even_ranked.push_back(even.ranked);
    odd_ranked.push_back(odd.ranked);
  }
  // The attribution check below is vacuous if the two states rank alike.
  ASSERT_FALSE(SameRanking(even_ranked[0], odd_ranked[0]))
      << "traffic updates too mild to attribute responses";

  constexpr int kThreads = 8;
  constexpr int kRounds = 12;
  constexpr int kSwaps = 20;
  std::atomic<bool> start{false};
  std::atomic<int> unattributable{0};
  std::atomic<int> wrong_epoch_payload{0};

  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      while (!start.load()) std::this_thread::yield();
      for (int round = 0; round < kRounds; ++round) {
        const size_t q = static_cast<size_t>(t + round) % queries.size();
        const RouteResult result =
            fx.planner.Plan({queries[q].first, queries[q].second});
        if (result.status != RouteStatus::kOk) {
          unattributable.fetch_add(1);
          continue;
        }
        // The epoch the result CLAIMS dictates exactly which reference it
        // must match bit-for-bit; matching neither (a torn read) or the
        // other one (misattribution) both fail.
        const auto& expected = (result.graph_epoch % 2 == 0)
                                   ? even_ranked[q]
                                   : odd_ranked[q];
        if (!SameRanking(result.ranked, expected)) {
          wrong_epoch_payload.fetch_add(1);
        }
      }
    });
  }

  std::thread writer([&] {
    while (!start.load()) std::this_thread::yield();
    for (int swap = 0; swap < kSwaps; ++swap) {
      const auto& batch = (swap % 2 == 0) ? slow : restore;
      const TrafficResult applied = fx.store.ApplyTraffic(batch);
      ASSERT_EQ(applied.status, TrafficStatus::kOk);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  start.store(true);
  for (auto& reader : readers) reader.join();
  writer.join();

  EXPECT_EQ(unattributable.load(), 0);
  EXPECT_EQ(wrong_epoch_payload.load(), 0);
  EXPECT_EQ(fx.store.epoch(), static_cast<uint64_t>(kSwaps));
  EXPECT_EQ(fx.store.traffic_batches(), static_cast<uint64_t>(kSwaps));
}

// ---- Epoch-keyed cache semantics ---------------------------------------

TEST(EpochCache, HitAtEpochNIsMissAtEpochNPlusOne) {
  SwapFixture fx;
  const RouteResult miss = fx.planner.Plan({5, 60});
  ASSERT_EQ(miss.status, RouteStatus::kOk);
  EXPECT_FALSE(miss.cache_hit);
  EXPECT_EQ(miss.graph_epoch, 0u);
  const RouteResult hit = fx.planner.Plan({5, 60});
  EXPECT_TRUE(hit.cache_hit);
  ExpectSameRanking(hit.ranked, miss.ranked);

  graph::TrafficUpdate update;
  update.edge = 0;
  update.travel_time_s =
      fx.store.Current()->network().edge(0).travel_time_s * 3.0;
  update.has_travel_time = true;
  ASSERT_EQ(fx.store.ApplyTraffic({update}).status, TrafficStatus::kOk);

  // Epoch moved: the cached set is stale by definition and must not be
  // served, whether or not the update touched this route.
  const RouteResult after = fx.planner.Plan({5, 60});
  ASSERT_EQ(after.status, RouteStatus::kOk);
  EXPECT_FALSE(after.cache_hit);
  EXPECT_EQ(after.graph_epoch, 1u);
  EXPECT_EQ(fx.planner.invalidations(), 1u);

  // Bitwise equal to a fresh planner pinned to the new graph — the
  // re-enumeration really ran against the swapped-in snapshot.
  const RoutePlanner fresh(
      SwapFixture::WithNetwork(SwapFixture::Config(0),
                               fx.store.Current()->network()),
      fx.Score());
  const RouteResult reference = fresh.Plan({5, 60});
  ASSERT_EQ(reference.status, RouteStatus::kOk);
  ExpectSameRanking(after.ranked, reference.ranked);

  // And the re-enumerated set is cached at the NEW epoch.
  const RouteResult rehit = fx.planner.Plan({5, 60});
  EXPECT_TRUE(rehit.cache_hit);
  EXPECT_EQ(rehit.graph_epoch, 1u);
  ExpectSameRanking(rehit.ranked, after.ranked);
}

TEST(EpochCache, NegativeUnreachableEntriesInvalidateToo) {
  // 0-1-2 and 3-4, bridged by a 2<->3 pair we close through traffic: the
  // unreachable verdict must be cached, and must NOT survive the reopen.
  graph::RoadNetworkBuilder b;
  for (int i = 0; i < 5; ++i) b.AddVertex({57.0 + 0.01 * i, 9.9});
  b.AddBidirectionalEdge(0, 1, 500.0, graph::RoadCategory::kResidential);
  b.AddBidirectionalEdge(1, 2, 500.0, graph::RoadCategory::kResidential);
  b.AddBidirectionalEdge(3, 4, 500.0, graph::RoadCategory::kResidential);
  const graph::EdgeId bridge =
      b.AddBidirectionalEdge(2, 3, 500.0, graph::RoadCategory::kResidential);
  graph::RoadNetwork network = b.Build();

  core::PathRankModel model(network.num_vertices(), SmallConfig());
  ServingEngine engine(network, model);
  GraphStore store(std::move(network));
  RoutePlanner planner(
      SwapFixture::WithStore(SwapFixture::Config(16), store),
      [&engine](std::vector<routing::Path> paths) {
        return engine.ScoreBatch(paths);
      });

  const auto set_closed = [&](bool closed) {
    std::vector<graph::TrafficUpdate> updates;
    for (const graph::EdgeId e : {bridge, bridge + 1}) {
      graph::TrafficUpdate update;
      update.edge = e;
      update.has_closed = true;
      update.closed = closed;
      updates.push_back(update);
    }
    ASSERT_EQ(store.ApplyTraffic(updates).status, TrafficStatus::kOk);
  };

  set_closed(true);  // epoch 1: the components are disconnected
  const RouteResult blocked = planner.Plan({0, 3});
  EXPECT_EQ(blocked.status, RouteStatus::kUnreachable);
  EXPECT_FALSE(blocked.cache_hit);
  EXPECT_EQ(blocked.graph_epoch, 1u);

  const RouteResult blocked_again = planner.Plan({0, 3});
  EXPECT_EQ(blocked_again.status, RouteStatus::kUnreachable);
  EXPECT_TRUE(blocked_again.cache_hit) << "negative results must cache";

  set_closed(false);  // epoch 2: the bridge is back
  const RouteResult reopened = planner.Plan({0, 3});
  EXPECT_EQ(reopened.status, RouteStatus::kOk)
      << "stale negative verdict served after reopening";
  EXPECT_FALSE(reopened.cache_hit);
  EXPECT_EQ(reopened.graph_epoch, 2u);
  EXPECT_GE(planner.invalidations(), 1u);
  ASSERT_FALSE(reopened.ranked.empty());
}

// ---- Single-flight -----------------------------------------------------

TEST(SingleFlight, StampedeRunsYenExactlyOnceAndAllSharesAreIdentical) {
  constexpr int kThreads = 8;
  std::atomic<bool> gate_armed{false};
  const RoutePlanner* planner_ptr = nullptr;

  RoutePlannerConfig config = SwapFixture::Config(64);
  config.enumeration_hook = [&] {
    if (!gate_armed.load()) return;
    // Leader of the stampede: hold the enumeration open until every other
    // thread is provably parked in the follower wait — the counter is
    // incremented BEFORE blocking, so waits == kThreads - 1 proves it.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (planner_ptr->single_flight_waits() <
               static_cast<uint64_t>(kThreads - 1) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
  };
  SwapFixture fx(config);
  planner_ptr = &fx.planner;

  gate_armed.store(true);
  std::atomic<bool> start{false};
  std::vector<RouteResult> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!start.load()) std::this_thread::yield();
      results[static_cast<size_t>(t)] = fx.planner.Plan({0, 63});
    });
  }
  start.store(true);
  for (auto& thread : threads) thread.join();
  gate_armed.store(false);

  // Exactly ONE Yen run served all eight queries.
  EXPECT_EQ(fx.planner.enumerations(), 1u);
  EXPECT_EQ(fx.planner.cache_misses(), static_cast<uint64_t>(kThreads));
  EXPECT_EQ(fx.planner.single_flight_waits(),
            static_cast<uint64_t>(kThreads - 1));

  // All callers (leader and followers alike) got the complete set,
  // bitwise identical, scored fresh through the engine.
  for (int t = 0; t < kThreads; ++t) {
    const RouteResult& result = results[static_cast<size_t>(t)];
    ASSERT_EQ(result.status, RouteStatus::kOk) << "thread " << t;
    EXPECT_FALSE(result.cache_hit);
    EXPECT_EQ(result.graph_epoch, 0u);
    ExpectSameRanking(result.ranked, results[0].ranked);
  }

  // The flight is gone: the next identical query is a plain cache hit.
  const RouteResult hit = fx.planner.Plan({0, 63});
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(fx.planner.enumerations(), 1u);
}

TEST(SingleFlight, LeaderExceptionReachesEveryFollowerAndFlightRetires) {
  constexpr int kThreads = 6;
  std::atomic<bool> gate_armed{false};
  const RoutePlanner* planner_ptr = nullptr;

  RoutePlannerConfig config = SwapFixture::Config(64);
  config.enumeration_hook = [&] {
    if (!gate_armed.load()) return;
    // Wait for every follower FIRST so none of them can miss the error
    // and start a flight of their own, THEN fail the enumeration.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (planner_ptr->single_flight_waits() <
               static_cast<uint64_t>(kThreads - 1) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    throw std::runtime_error("injected enumeration failure");
  };
  SwapFixture fx(config);
  planner_ptr = &fx.planner;

  gate_armed.store(true);
  std::atomic<bool> start{false};
  std::atomic<int> threw{0};
  std::atomic<int> returned{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!start.load()) std::this_thread::yield();
      try {
        const RouteResult result = fx.planner.Plan({7, 56});
        (void)result;
        returned.fetch_add(1);
      } catch (const std::runtime_error&) {
        threw.fetch_add(1);
      }
    });
  }
  start.store(true);
  for (auto& thread : threads) thread.join();
  gate_armed.store(false);

  // The leader threw and every follower rethrew the SAME failure — nobody
  // got a stale or half-built candidate set back.
  EXPECT_EQ(threw.load(), kThreads);
  EXPECT_EQ(returned.load(), 0);
  EXPECT_EQ(fx.planner.enumerations(), 1u);
  EXPECT_EQ(fx.planner.single_flight_waits(),
            static_cast<uint64_t>(kThreads - 1));

  // Nothing was cached, the dead flight was retired: the next query runs
  // a fresh (now healthy) enumeration and succeeds.
  const RouteResult recovered = fx.planner.Plan({7, 56});
  ASSERT_EQ(recovered.status, RouteStatus::kOk);
  EXPECT_FALSE(recovered.cache_hit);
  EXPECT_EQ(fx.planner.enumerations(), 2u);
}

TEST(SingleFlight, DeadlineBoundedQueriesBypassTheGate) {
  SwapFixture fx;
  // A bounded query must never lead or join a flight: its partial set
  // would be shared. With a generous budget it completes normally — and
  // the coalescing counters stay untouched.
  RouteRequest request{0, 63};
  request.deadline = Deadline::AfterMs(60'000);
  const RouteResult result = fx.planner.Plan(request);
  ASSERT_EQ(result.status, RouteStatus::kOk);
  EXPECT_EQ(fx.planner.single_flight_waits(), 0u);
  EXPECT_EQ(fx.planner.enumerations(), 1u);
}

}  // namespace
}  // namespace pathrank::serving
