// RoutePlanner: the online query -> candidates -> ranked-paths pipeline.
// Asserts (1) ranked output is bitwise identical to the offline
// GenerateCandidates + ServingEngine::ScoreBatch composition, (2) a cache
// hit returns bitwise-identical results (and byte-identical HTTP bodies
// modulo the cache_hit flag), (3) the LRU evicts and touches correctly,
// (4) the error taxonomy (unknown vertex, s == d, unreachable, bad k)
// maps to 4xx over HTTP with stable status slugs.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/model.h"
#include "graph/network_builder.h"
#include "serving/http_server.h"
#include "serving/json.h"
#include "serving/model_snapshot.h"
#include "serving/route_planner.h"
#include "serving/serving_engine.h"

namespace pathrank::serving {
namespace {

core::PathRankConfig SmallConfig() {
  core::PathRankConfig cfg;
  cfg.embedding_dim = 8;
  cfg.hidden_size = 12;
  cfg.seed = 3;
  return cfg;
}

data::CandidateGenConfig GenConfig() {
  data::CandidateGenConfig gen;
  gen.strategy = data::CandidateStrategy::kDiversifiedTopK;
  gen.k = 5;
  gen.similarity_threshold = 0.6;
  gen.max_enumerated = 200;
  return gen;
}

/// Planner over a real engine on the 8x8 test grid.
struct PlannerFixture {
  graph::RoadNetwork network = graph::BuildTestNetwork();
  core::PathRankModel model;
  ServingEngine engine;
  RoutePlanner planner;

  static RoutePlannerConfig Config(const graph::RoadNetwork& network,
                                   size_t cache_capacity) {
    RoutePlannerConfig config;
    config.network = &network;
    config.candidates = GenConfig();
    config.cache_capacity = cache_capacity;
    return config;
  }

  explicit PlannerFixture(size_t cache_capacity = 64)
      : model(network.num_vertices(), SmallConfig()),
        engine(network, model),
        planner(Config(network, cache_capacity),
                [this](std::vector<routing::Path> paths) {
                  return engine.ScoreBatch(paths);
                }) {}
};

/// Two disconnected components: 0-1-2 (bidirectional chain) and 3-4.
graph::RoadNetwork BuildDisconnectedNetwork() {
  graph::RoadNetworkBuilder b;
  for (int i = 0; i < 5; ++i) {
    b.AddVertex({57.0 + 0.01 * i, 9.9});
  }
  b.AddBidirectionalEdge(0, 1, 500.0, graph::RoadCategory::kResidential);
  b.AddBidirectionalEdge(1, 2, 500.0, graph::RoadCategory::kResidential);
  b.AddBidirectionalEdge(3, 4, 500.0, graph::RoadCategory::kResidential);
  return b.Build();
}

void ExpectSameRanking(const std::vector<ScoredPath>& actual,
                       const std::vector<ScoredPath>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    // Bitwise: double ==, no tolerance.
    EXPECT_EQ(actual[i].score, expected[i].score) << "rank " << i;
    EXPECT_EQ(actual[i].path.vertices, expected[i].path.vertices);
    EXPECT_EQ(actual[i].path.edges, expected[i].path.edges);
    EXPECT_EQ(actual[i].path.cost, expected[i].path.cost);
  }
}

TEST(RoutePlanner, MatchesOfflinePipelineBitwise) {
  PlannerFixture fx;
  const graph::VertexId source = 0;
  const graph::VertexId destination = 63;

  const auto offline = fx.engine.ScoreBatch(
      GenerateCandidates(fx.network, source, destination, GenConfig()));
  ASSERT_GT(offline.size(), 1u);

  const RouteResult result = fx.planner.Plan({source, destination});
  ASSERT_EQ(result.status, RouteStatus::kOk);
  EXPECT_FALSE(result.cache_hit);
  ExpectSameRanking(result.ranked, offline);
  // Ranked means ranked: scores descend.
  for (size_t i = 1; i < result.ranked.size(); ++i) {
    EXPECT_GE(result.ranked[i - 1].score, result.ranked[i].score);
  }
}

TEST(RoutePlanner, PerRequestKOverridesDefault) {
  PlannerFixture fx;
  auto gen = GenConfig();
  gen.k = 2;
  const auto offline = fx.engine.ScoreBatch(
      GenerateCandidates(fx.network, 0, 63, gen));

  const RouteResult result = fx.planner.Plan({0, 63, /*k=*/2});
  ASSERT_EQ(result.status, RouteStatus::kOk);
  ExpectSameRanking(result.ranked, offline);
  // Different k = different cache key: the k=2 entry must not shadow a
  // later default-k query.
  const RouteResult full = fx.planner.Plan({0, 63});
  EXPECT_FALSE(full.cache_hit);
  EXPECT_GT(full.ranked.size(), result.ranked.size());
}

TEST(RoutePlanner, CacheHitIsBitwiseIdenticalAndSkipsEnumeration) {
  PlannerFixture fx;
  const RouteResult miss = fx.planner.Plan({5, 60});
  ASSERT_EQ(miss.status, RouteStatus::kOk);
  EXPECT_FALSE(miss.cache_hit);
  EXPECT_EQ(fx.planner.cache_misses(), 1u);
  EXPECT_EQ(fx.planner.cache_hits(), 0u);

  const RouteResult hit = fx.planner.Plan({5, 60});
  ASSERT_EQ(hit.status, RouteStatus::kOk);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(fx.planner.cache_hits(), 1u);
  EXPECT_EQ(fx.planner.cache_misses(), 1u);
  ExpectSameRanking(hit.ranked, miss.ranked);
}

TEST(RoutePlanner, LruEvictsLeastRecentlyUsed) {
  PlannerFixture fx(/*cache_capacity=*/2);
  const RouteRequest a{0, 63};
  const RouteRequest b{1, 62};
  const RouteRequest c{2, 61};
  EXPECT_FALSE(fx.planner.Plan(a).cache_hit);  // {A}
  EXPECT_FALSE(fx.planner.Plan(b).cache_hit);  // {B, A}
  EXPECT_TRUE(fx.planner.Plan(a).cache_hit);   // touch: {A, B}
  EXPECT_FALSE(fx.planner.Plan(c).cache_hit);  // evicts B: {C, A}
  EXPECT_TRUE(fx.planner.Plan(a).cache_hit);   // A survived the eviction
  EXPECT_FALSE(fx.planner.Plan(b).cache_hit);  // B did not
  EXPECT_EQ(fx.planner.cache_size(), 2u);
}

TEST(RoutePlanner, ZeroCapacityDisablesCache) {
  PlannerFixture fx(/*cache_capacity=*/0);
  EXPECT_FALSE(fx.planner.Plan({0, 63}).cache_hit);
  EXPECT_FALSE(fx.planner.Plan({0, 63}).cache_hit);
  EXPECT_EQ(fx.planner.cache_size(), 0u);
  EXPECT_EQ(fx.planner.cache_hits(), 0u);
}

TEST(RoutePlanner, ErrorTaxonomy) {
  PlannerFixture fx;
  const auto n = static_cast<graph::VertexId>(fx.network.num_vertices());

  const RouteResult unknown = fx.planner.Plan({n, 0});
  EXPECT_EQ(unknown.status, RouteStatus::kUnknownVertex);
  EXPECT_TRUE(unknown.ranked.empty());
  EXPECT_NE(unknown.message.find(std::to_string(n)), std::string::npos);

  const RouteResult same = fx.planner.Plan({7, 7});
  EXPECT_EQ(same.status, RouteStatus::kSameVertex);

  const RouteResult too_big =
      fx.planner.Plan({0, 63, fx.planner.config().max_k + 1});
  EXPECT_EQ(too_big.status, RouteStatus::kBadRequest);

  EXPECT_STREQ(RouteStatusSlug(unknown.status), "unknown_vertex");
  EXPECT_STREQ(RouteStatusSlug(same.status), "same_vertex");
  EXPECT_STREQ(RouteStatusSlug(too_big.status), "bad_request");
}

TEST(RoutePlanner, ConfiguredDefaultKIsExemptFromMaxK) {
  // max_k bounds the CLIENT's k; the operator's own --k must keep
  // working even when it exceeds the cap.
  graph::RoadNetwork network = graph::BuildTestNetwork();
  const core::PathRankModel model(network.num_vertices(), SmallConfig());
  const ServingEngine engine(network, model);
  RoutePlannerConfig config;
  config.network = &network;
  config.candidates = GenConfig();
  config.candidates.strategy = data::CandidateStrategy::kTopK;
  config.candidates.k = 70;  // above max_k
  config.max_k = 64;
  config.cache_capacity = 4;
  const RoutePlanner planner(
      config, [&engine](std::vector<routing::Path> paths) {
        return engine.ScoreBatch(paths);
      });
  EXPECT_EQ(planner.Plan({0, 63}).status, RouteStatus::kOk);
  EXPECT_EQ(planner.Plan({0, 63, 70}).status, RouteStatus::kBadRequest);
}

TEST(RoutePlanner, UnreachablePairReportedAndNegativelyCached) {
  const auto network = BuildDisconnectedNetwork();
  const core::PathRankModel model(network.num_vertices(), SmallConfig());
  const ServingEngine engine(network, model);
  const RoutePlanner planner(
      PlannerFixture::Config(network, 8),
      [&engine](std::vector<routing::Path> paths) {
        return engine.ScoreBatch(paths);
      });

  const RouteResult miss = planner.Plan({0, 4});
  EXPECT_EQ(miss.status, RouteStatus::kUnreachable);
  EXPECT_FALSE(miss.cache_hit);
  // The dead-end verdict is cached too: the retry skips Yen.
  const RouteResult hit = planner.Plan({0, 4});
  EXPECT_EQ(hit.status, RouteStatus::kUnreachable);
  EXPECT_TRUE(hit.cache_hit);
  // Reachable pairs in the same component still rank.
  EXPECT_EQ(planner.Plan({0, 2}).status, RouteStatus::kOk);
}

TEST(RoutePlanner, ConcurrentPlansAgreeBitwise) {
  PlannerFixture fx;
  const RouteResult expected = fx.planner.Plan({0, 63});
  ASSERT_EQ(expected.status, RouteStatus::kOk);
  constexpr int kThreads = 8;
  std::vector<RouteResult> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&, t] { results[t] = fx.planner.Plan({0, 63}); });
  }
  for (auto& thread : threads) thread.join();
  for (const auto& result : results) {
    ASSERT_EQ(result.status, RouteStatus::kOk);
    EXPECT_TRUE(result.cache_hit);  // the sequential miss seeded the cache
    ExpectSameRanking(result.ranked, expected.ranked);
  }
}

// ---- HTTP mapping ------------------------------------------------------

/// Loopback server whose route seam is a real RoutePlanner. /v1/route
/// delegates vertex range checking to the planner regardless of
/// backend.num_vertices (so out-of-range ids earn the unknown_vertex
/// slug, not the generic 400 /v1/rank gives) — the taxonomy tests below
/// therefore exercise exactly what a production `pathrank_cli serve`
/// emits.
struct RouteServerFixture {
  graph::RoadNetwork network = graph::BuildTestNetwork();
  core::PathRankModel model;
  ServingEngine engine;
  RoutePlanner planner;
  HttpServer server;

  static HttpServerOptions ServerOptions() {
    HttpServerOptions options;
    options.port = 0;  // ephemeral
    options.num_threads = 4;
    options.max_inflight = 8;
    return options;
  }

  HttpBackend Backend() {
    HttpBackend backend;
    backend.rank = [this](graph::VertexId s, graph::VertexId d) {
      return engine.Rank(s, d);
    };
    backend.score = [this](std::vector<routing::Path> paths) {
      return engine.ScoreBatch(paths);
    };
    backend.route = [this](const RouteRequest& request) {
      return planner.Plan(request);
    };
    return backend;
  }

  RouteServerFixture()
      : model(network.num_vertices(), SmallConfig()),
        engine(network, model),
        planner(PlannerFixture::Config(network, 64),
                [this](std::vector<routing::Path> paths) {
                  return engine.ScoreBatch(paths);
                }),
        server(Backend(), ServerOptions()) {
    server.Start();
  }
};

std::string RouteBody(graph::VertexId source, graph::VertexId destination,
                      int k = 0) {
  std::string body = "{\"source\": " + std::to_string(source) +
                     ", \"destination\": " + std::to_string(destination);
  if (k > 0) body += ", \"k\": " + std::to_string(k);
  return body + "}";
}

TEST(RouteHttp, RoundTripMatchesOfflinePipelineBitwise) {
  RouteServerFixture fx;
  const auto offline = fx.engine.ScoreBatch(
      GenerateCandidates(fx.network, 3, 59, GenConfig()));
  ASSERT_GT(offline.size(), 1u);

  HttpClient client;
  client.Connect(fx.server.port());
  const auto response = client.Request("POST", "/v1/route", RouteBody(3, 59));
  ASSERT_EQ(response.status, 200);

  const auto parsed = json::Parse(response.body);
  ASSERT_TRUE(parsed.has_value());
  const json::Value* cache_hit = parsed->Find("cache_hit");
  ASSERT_NE(cache_hit, nullptr);
  EXPECT_FALSE(cache_hit->bool_value());
  const json::Value* routes = parsed->Find("routes");
  ASSERT_NE(routes, nullptr);
  ASSERT_EQ(routes->array().size(), offline.size());
  for (size_t i = 0; i < offline.size(); ++i) {
    const json::Value& route = routes->array()[i];
    // Shortest-round-trip doubles: the wire value parses back BITWISE
    // equal to the in-process score.
    EXPECT_EQ(route.Find("score")->number_value(), offline[i].score);
    EXPECT_EQ(route.Find("length_m")->number_value(),
              offline[i].path.length_m);
    EXPECT_EQ(route.Find("time_s")->number_value(), offline[i].path.time_s);
    EXPECT_EQ(route.Find("cost")->number_value(), offline[i].path.cost);
    const auto& vertices = route.Find("vertices")->array();
    ASSERT_EQ(vertices.size(), offline[i].path.vertices.size());
    for (size_t v = 0; v < vertices.size(); ++v) {
      EXPECT_EQ(static_cast<graph::VertexId>(vertices[v].number_value()),
                offline[i].path.vertices[v]);
    }
    const auto& edges = route.Find("edges")->array();
    ASSERT_EQ(edges.size(), offline[i].path.edges.size());
    for (size_t e = 0; e < edges.size(); ++e) {
      EXPECT_EQ(static_cast<graph::EdgeId>(edges[e].number_value()),
                offline[i].path.edges[e]);
    }
  }
}

TEST(RouteHttp, CachedResponseIsByteIdenticalModuloCacheFlag) {
  RouteServerFixture fx;
  HttpClient client;
  client.Connect(fx.server.port());
  const auto first = client.Request("POST", "/v1/route", RouteBody(10, 45));
  const auto second = client.Request("POST", "/v1/route", RouteBody(10, 45));
  ASSERT_EQ(first.status, 200);
  ASSERT_EQ(second.status, 200);
  ASSERT_NE(first.body.find("\"cache_hit\":false"), std::string::npos);
  ASSERT_NE(second.body.find("\"cache_hit\":true"), std::string::npos);
  // Same candidates, same snapshot, shortest-round-trip serialization:
  // the bodies must agree byte for byte once the flag is normalised.
  std::string normalized = second.body;
  normalized.replace(normalized.find("\"cache_hit\":true"),
                     std::string("\"cache_hit\":true").size(),
                     "\"cache_hit\":false");
  EXPECT_EQ(normalized, first.body);
}

TEST(RouteHttp, ErrorTaxonomyMapsTo4xx) {
  RouteServerFixture fx;
  const auto n = static_cast<graph::VertexId>(fx.network.num_vertices());
  HttpClient client;
  client.Connect(fx.server.port());

  const auto unknown =
      client.Request("POST", "/v1/route", RouteBody(n, 0));
  EXPECT_EQ(unknown.status, 400);
  EXPECT_NE(unknown.body.find("\"status\":\"unknown_vertex\""),
            std::string::npos)
      << unknown.body;

  const auto same = client.Request("POST", "/v1/route", RouteBody(4, 4));
  EXPECT_EQ(same.status, 400);
  EXPECT_NE(same.body.find("\"status\":\"same_vertex\""), std::string::npos);

  const auto bad_k =
      client.Request("POST", "/v1/route",
                     "{\"source\": 0, \"destination\": 9, \"k\": 0}");
  EXPECT_EQ(bad_k.status, 400);
  // HTTP-layer validation failures carry the slug too, not a bare error.
  EXPECT_NE(bad_k.body.find("\"status\":\"bad_request\""),
            std::string::npos)
      << bad_k.body;
  const auto negative_k =
      client.Request("POST", "/v1/route",
                     "{\"source\": 0, \"destination\": 9, \"k\": -3}");
  EXPECT_EQ(negative_k.status, 400);
  const auto huge_k = client.Request(
      "POST", "/v1/route", RouteBody(0, 9, fx.planner.config().max_k + 1));
  EXPECT_EQ(huge_k.status, 400);
  EXPECT_NE(huge_k.body.find("\"status\":\"bad_request\""),
            std::string::npos);

  const auto bad_json =
      client.Request("POST", "/v1/route", "{\"source\": }");
  EXPECT_EQ(bad_json.status, 400);
  // Unparseable JSON carries the slug like every other 4xx — clients
  // branch on "status", and this path used to return a bare error.
  EXPECT_NE(bad_json.body.find("\"status\":\"bad_request\""),
            std::string::npos)
      << bad_json.body;
  const auto wrong_method = client.Request("GET", "/v1/route");
  EXPECT_EQ(wrong_method.status, 405);
}

TEST(RouteHttp, UnreachablePairIs404) {
  const auto network = BuildDisconnectedNetwork();
  const core::PathRankModel model(network.num_vertices(), SmallConfig());
  const ServingEngine engine(network, model);
  const RoutePlanner planner(
      PlannerFixture::Config(network, 8),
      [&engine](std::vector<routing::Path> paths) {
        return engine.ScoreBatch(paths);
      });
  HttpBackend backend;
  backend.rank = [&engine](graph::VertexId s, graph::VertexId d) {
    return engine.Rank(s, d);
  };
  backend.score = [&engine](std::vector<routing::Path> paths) {
    return engine.ScoreBatch(paths);
  };
  backend.route = [&planner](const RouteRequest& request) {
    return planner.Plan(request);
  };
  HttpServer server(std::move(backend),
                    RouteServerFixture::ServerOptions());
  server.Start();
  HttpClient client;
  client.Connect(server.port());
  const auto response =
      client.Request("POST", "/v1/route", RouteBody(0, 4));
  EXPECT_EQ(response.status, 404);
  EXPECT_NE(response.body.find("\"status\":\"unreachable\""),
            std::string::npos)
      << response.body;
  server.Stop();
}

TEST(RouteHttp, MissingRouteBackendIs404) {
  // A server wired without the route seam (PR-4 style) must answer 404,
  // not crash on a null std::function.
  graph::RoadNetwork network = graph::BuildTestNetwork();
  const core::PathRankModel model(network.num_vertices(), SmallConfig());
  const ServingEngine engine(network, model);
  HttpBackend backend;
  backend.rank = [&engine](graph::VertexId s, graph::VertexId d) {
    return engine.Rank(s, d);
  };
  backend.score = [&engine](std::vector<routing::Path> paths) {
    return engine.ScoreBatch(paths);
  };
  HttpServer server(std::move(backend),
                    RouteServerFixture::ServerOptions());
  server.Start();
  HttpClient client;
  client.Connect(server.port());
  const auto response =
      client.Request("POST", "/v1/route", RouteBody(0, 9));
  EXPECT_EQ(response.status, 404);
  server.Stop();
}

}  // namespace
}  // namespace pathrank::serving
