// Model checkpointing: save/load round trips, config restoration, and
// multi-task model behaviour.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/model.h"
#include "core/model_io.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace pathrank::core {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

nn::SequenceBatch ToyBatch() {
  return nn::SequenceBatch::FromSequences({{1, 2, 3, 4}, {5, 6}, {7, 8, 9}});
}

PathRankConfig SmallConfig() {
  PathRankConfig cfg;
  cfg.embedding_dim = 8;
  cfg.hidden_size = 12;
  cfg.seed = 3;
  return cfg;
}

TEST(ModelIo, RoundTripReproducesScores) {
  PathRankModel model(16, SmallConfig());
  // Perturb away from init: one training step.
  nn::Adam adam(0.05);
  const auto batch = ToyBatch();
  const std::vector<float> truth{0.9f, 0.1f, 0.5f};
  std::vector<float> d;
  const auto scores0 = model.Forward(batch);
  nn::MseLoss(scores0, truth, &d);
  nn::ZeroGradients(model.Parameters());
  model.Backward(d);
  adam.Step(model.Parameters());

  const auto expected = model.Forward(batch);
  const std::string path = TempPath("pr_model.bin");
  SaveModel(model, path);
  auto loaded = LoadModel(path);
  const auto got = loaded->Forward(batch);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]);
  }
  std::remove(path.c_str());
}

TEST(ModelIo, RestoresConfig) {
  PathRankConfig cfg = SmallConfig();
  cfg.cell = nn::CellType::kLstm;
  cfg.bidirectional = false;
  cfg.pooling = Pooling::kFinalState;
  cfg.finetune_embedding = false;
  cfg.multi_task = true;
  cfg.aux_loss_weight = 0.7;
  PathRankModel model(20, cfg);
  const std::string path = TempPath("pr_model2.bin");
  SaveModel(model, path);
  auto loaded = LoadModel(path);
  EXPECT_EQ(loaded->vocab_size(), 20u);
  EXPECT_EQ(loaded->config().cell, nn::CellType::kLstm);
  EXPECT_FALSE(loaded->config().bidirectional);
  EXPECT_EQ(loaded->config().pooling, Pooling::kFinalState);
  EXPECT_FALSE(loaded->config().finetune_embedding);
  EXPECT_TRUE(loaded->config().multi_task);
  EXPECT_DOUBLE_EQ(loaded->config().aux_loss_weight, 0.7);
  std::remove(path.c_str());
}

TEST(ModelIo, RejectsGarbage) {
  const std::string path = TempPath("pr_model_garbage.bin");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    const char junk[] = "this is not a model";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  EXPECT_THROW(LoadModel(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(MultiTask, AuxOutputsPresentAndBounded) {
  PathRankConfig cfg = SmallConfig();
  cfg.multi_task = true;
  PathRankModel model(16, cfg);
  const auto outputs = model.ForwardFull(ToyBatch());
  ASSERT_EQ(outputs.aux_length.size(), 3u);
  ASSERT_EQ(outputs.aux_time.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_GT(outputs.aux_length[i], 0.0f);
    EXPECT_LT(outputs.aux_length[i], 1.0f);
    EXPECT_GT(outputs.aux_time[i], 0.0f);
    EXPECT_LT(outputs.aux_time[i], 1.0f);
  }
}

TEST(MultiTask, SingleTaskHasNoAuxOutputs) {
  PathRankModel model(16, SmallConfig());
  const auto outputs = model.ForwardFull(ToyBatch());
  EXPECT_TRUE(outputs.aux_length.empty());
  EXPECT_TRUE(outputs.aux_time.empty());
}

TEST(MultiTask, HasMoreParameters) {
  PathRankConfig cfg = SmallConfig();
  PathRankModel single(16, cfg);
  cfg.multi_task = true;
  PathRankModel multi(16, cfg);
  EXPECT_GT(multi.NumParameters(), single.NumParameters());
}

TEST(MultiTask, JointTrainingReducesAllLosses) {
  PathRankConfig cfg = SmallConfig();
  cfg.multi_task = true;
  cfg.aux_loss_weight = 0.5;
  PathRankModel model(16, cfg);
  const auto batch = ToyBatch();
  const std::vector<float> truth{0.9f, 0.1f, 0.5f};
  const std::vector<float> aux_len{0.3f, 0.8f, 0.6f};
  const std::vector<float> aux_time{0.4f, 0.7f, 0.5f};

  nn::Adam adam(0.02);
  const nn::ParameterList params = model.Parameters();
  std::vector<float> ds;
  std::vector<float> dl;
  std::vector<float> dt;
  double first = 0.0;
  double last = 0.0;
  for (int step = 0; step < 80; ++step) {
    const auto out = model.ForwardFull(batch);
    double loss = nn::MseLoss(out.scores, truth, &ds);
    loss += 0.5 * nn::MseLoss(out.aux_length, aux_len, &dl);
    loss += 0.5 * nn::MseLoss(out.aux_time, aux_time, &dt);
    for (float& g : dl) g *= 0.5f;
    for (float& g : dt) g *= 0.5f;
    if (step == 0) first = loss;
    last = loss;
    nn::ZeroGradients(params);
    model.BackwardFull(ds, dl, dt);
    adam.Step(params);
  }
  EXPECT_LT(last, first * 0.2);
}

TEST(MultiTask, BackwardFullRejectsAuxWithoutMultiTask) {
  PathRankModel model(16, SmallConfig());
  const auto batch = ToyBatch();
  model.Forward(batch);
  const std::vector<float> d{0.1f, 0.1f, 0.1f};
  EXPECT_THROW(model.BackwardFull(d, d, d), std::logic_error);
}

}  // namespace
}  // namespace pathrank::core
