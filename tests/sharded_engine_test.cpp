// ShardedEngine: bitwise equivalence to a single engine when shards share
// one snapshot (both policies), deterministic hash placement, per-shard
// snapshots (multi-model), canary and fleet-wide hot-swap.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "core/model.h"
#include "graph/network_builder.h"
#include "serving/model_snapshot.h"
#include "serving/sharded_engine.h"

namespace pathrank::serving {
namespace {

core::PathRankConfig ConfigWithSeed(uint64_t seed) {
  core::PathRankConfig cfg;
  cfg.embedding_dim = 8;
  cfg.hidden_size = 12;
  cfg.seed = seed;
  return cfg;
}

struct ShardFixture {
  graph::RoadNetwork network = graph::BuildTestNetwork();
  core::PathRankModel model_a;
  core::PathRankModel model_b;
  data::CandidateGenConfig gen;
  std::vector<RankQuery> queries = {{0, 63}, {7, 56}, {3, 60}, {21, 42},
                                    {14, 49}, {8, 55}, {2, 61}, {5, 58}};

  ShardFixture()
      : model_a(network.num_vertices(), ConfigWithSeed(3)),
        model_b(network.num_vertices(), ConfigWithSeed(31)) {
    gen.k = 5;
  }
};

bool SameRanking(const std::vector<ScoredPath>& expected,
                 const std::vector<ScoredPath>& got) {
  if (expected.size() != got.size()) return false;
  for (size_t i = 0; i < expected.size(); ++i) {
    if (expected[i].score != got[i].score ||
        expected[i].path.vertices != got[i].path.vertices) {
      return false;
    }
  }
  return true;
}

TEST(ShardedEngine, SharedSnapshotMatchesSingleEngineUnderBothPolicies) {
  ShardFixture fx;
  const auto snapshot = ModelSnapshot::Capture(fx.model_a);
  const ServingEngine single(fx.network, snapshot);

  for (ShardPolicy policy : {ShardPolicy::kHash, ShardPolicy::kRoundRobin}) {
    ShardedOptions options;
    options.num_shards = 3;
    options.policy = policy;
    options.engine_options.candidates = fx.gen;
    const ShardedEngine sharded(fx.network, snapshot, options);
    ASSERT_EQ(sharded.num_shards(), 3u);

    for (const auto& q : fx.queries) {
      EXPECT_TRUE(SameRanking(single.Rank(q.source, q.destination, fx.gen),
                              sharded.Rank(q.source, q.destination, fx.gen)))
          << "policy=" << static_cast<int>(policy);
    }
    const auto batched = sharded.RankBatch(fx.queries, fx.gen);
    ASSERT_EQ(batched.size(), fx.queries.size());
    for (size_t i = 0; i < fx.queries.size(); ++i) {
      EXPECT_TRUE(SameRanking(
          single.Rank(fx.queries[i].source, fx.queries[i].destination, fx.gen),
          batched[i]));
    }
    const auto paths =
        GenerateCandidates(fx.network, 0, 63, fx.gen);
    EXPECT_TRUE(
        SameRanking(single.ScoreBatch(paths), sharded.ScoreBatch(paths)));
  }
}

TEST(ShardedEngine, HashPlacementIsDeterministicAndSpreads) {
  ShardFixture fx;
  ShardedOptions options;
  options.num_shards = 4;
  options.policy = ShardPolicy::kHash;
  const ShardedEngine sharded(fx.network, ModelSnapshot::Capture(fx.model_a),
                              options);

  std::set<size_t> used;
  for (const auto& q : fx.queries) {
    const size_t shard = sharded.ShardFor(q.source, q.destination);
    ASSERT_LT(shard, 4u);
    used.insert(shard);
    // Pure function of the query: repeated lookups never move.
    for (int round = 0; round < 3; ++round) {
      EXPECT_EQ(shard, sharded.ShardFor(q.source, q.destination));
    }
  }
  // 8 well-mixed OD pairs over 4 shards should hit more than one shard.
  EXPECT_GT(used.size(), 1u);
}

TEST(ShardedEngine, RoundRobinRotates) {
  ShardFixture fx;
  ShardedOptions options;
  options.num_shards = 3;
  options.policy = ShardPolicy::kRoundRobin;
  const ShardedEngine sharded(fx.network, ModelSnapshot::Capture(fx.model_a),
                              options);
  const auto& q = fx.queries[0];
  // Strict rotation: the same query advances one shard per call.
  const size_t first = sharded.ShardFor(q.source, q.destination);
  EXPECT_EQ((first + 1) % 3, sharded.ShardFor(q.source, q.destination));
  EXPECT_EQ((first + 2) % 3, sharded.ShardFor(q.source, q.destination));
}

TEST(ShardedEngine, PerShardSnapshotsRouteByHash) {
  ShardFixture fx;
  const auto snap_a = ModelSnapshot::Capture(fx.model_a);
  const auto snap_b = ModelSnapshot::Capture(fx.model_b);
  const ServingEngine ref_a(fx.network, snap_a);
  const ServingEngine ref_b(fx.network, snap_b);

  ShardedOptions options;
  options.policy = ShardPolicy::kHash;
  options.engine_options.candidates = fx.gen;
  const ShardedEngine sharded(fx.network, {snap_a, snap_b}, options);
  ASSERT_EQ(sharded.num_shards(), 2u);

  for (const auto& q : fx.queries) {
    const size_t shard = sharded.ShardFor(q.source, q.destination);
    const auto& reference = shard == 0 ? ref_a : ref_b;
    EXPECT_TRUE(
        SameRanking(reference.Rank(q.source, q.destination, fx.gen),
                    sharded.Rank(q.source, q.destination, fx.gen)))
        << "shard " << shard;
  }
}

TEST(ShardedEngine, ZeroShardsIsRejected) {
  ShardFixture fx;
  ShardedOptions options;
  options.num_shards = 0;  // misconfiguration must surface, not clamp to 1
  EXPECT_THROW(ShardedEngine(fx.network, ModelSnapshot::Capture(fx.model_a),
                             options),
               std::exception);
}

TEST(ShardedEngine, CanarySwapThenFleetSwap) {
  ShardFixture fx;
  const auto snap_a = ModelSnapshot::Capture(fx.model_a);
  const auto snap_b = ModelSnapshot::Capture(fx.model_b);

  ShardedOptions options;
  options.num_shards = 3;
  ShardedEngine sharded(fx.network, snap_a, options);

  // Canary: shard 1 moves to B, the rest keep serving A.
  const auto old = sharded.SwapSnapshot(1, snap_b);
  EXPECT_EQ(old.get(), snap_a.get());
  EXPECT_EQ(sharded.shard(0).shared_snapshot().get(), snap_a.get());
  EXPECT_EQ(sharded.shard(1).shared_snapshot().get(), snap_b.get());
  EXPECT_EQ(sharded.shard(2).shared_snapshot().get(), snap_a.get());

  // Promotion: the whole fleet converges on B.
  sharded.SwapSnapshot(snap_b);
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    EXPECT_EQ(sharded.shard(s).shared_snapshot().get(), snap_b.get());
  }
}

}  // namespace
}  // namespace pathrank::serving
