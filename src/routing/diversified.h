// Diversified top-k shortest paths (the paper's D-TkDI candidate strategy).
//
// Enumerates simple paths in increasing cost order (Yen) and greedily
// accepts a path only when its weighted-Jaccard similarity to every
// previously accepted path is at most `similarity_threshold`. The shortest
// path is always accepted first. This yields a compact set of k mutually
// diverse near-shortest paths — the training-candidate distribution the
// paper shows to train better ranking models than plain top-k.
#pragma once

#include <vector>

#include "common/deadline.h"
#include "routing/cost_model.h"
#include "routing/path.h"

namespace pathrank::routing {

class ShortestPathEngine;

/// Options for diversified enumeration.
struct DiversifiedOptions {
  /// Number of paths requested.
  int k = 10;
  /// Maximum allowed pairwise weighted-Jaccard similarity between accepted
  /// paths. Lower = more diverse. The paper's poster uses a "compact set of
  /// diversified paths"; 0.8 reproduces the reported behaviour well.
  double similarity_threshold = 0.8;
  /// Upper bound on how many paths Yen may enumerate before giving up
  /// (guards against pathological queries where diversity is unreachable).
  int max_enumerated = 400;
  /// When true and fewer than k diverse paths exist within the enumeration
  /// budget, pad the result with the cheapest rejected paths so callers
  /// always receive k candidates when the graph allows it.
  bool pad_with_rejected = true;
};

/// Returns up to k mutually diverse shortest paths in cost order. When
/// `cancel` expires mid-enumeration the paths accepted so far (padded
/// with already-enumerated rejects when configured) are returned —
/// possibly fewer than k, possibly zero. `engine` (optional, borrowed)
/// runs the underlying Yen spur searches; nullptr = owned plain Dijkstra.
std::vector<Path> DiversifiedTopK(const RoadNetwork& network, VertexId source,
                                  VertexId target, const EdgeCostFn& cost,
                                  const DiversifiedOptions& options,
                                  const CancelToken* cancel = nullptr,
                                  ShortestPathEngine* engine = nullptr);

}  // namespace pathrank::routing
