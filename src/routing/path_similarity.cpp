#include "routing/path_similarity.h"

#include <algorithm>
#include <vector>

namespace pathrank::routing {
namespace {

template <typename Id>
std::vector<Id> SortedUnique(std::span<const Id> ids) {
  std::vector<Id> v(ids.begin(), ids.end());
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

}  // namespace

double WeightedJaccard(const graph::RoadNetwork& network,
                       std::span<const graph::EdgeId> a,
                       std::span<const graph::EdgeId> b) {
  if (a.empty() && b.empty()) return 1.0;
  const auto sa = SortedUnique(a);
  const auto sb = SortedUnique(b);
  double inter = 0.0;
  double uni = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < sa.size() && j < sb.size()) {
    if (sa[i] == sb[j]) {
      const double len = network.edge(sa[i]).length_m;
      inter += len;
      uni += len;
      ++i;
      ++j;
    } else if (sa[i] < sb[j]) {
      uni += network.edge(sa[i]).length_m;
      ++i;
    } else {
      uni += network.edge(sb[j]).length_m;
      ++j;
    }
  }
  for (; i < sa.size(); ++i) uni += network.edge(sa[i]).length_m;
  for (; j < sb.size(); ++j) uni += network.edge(sb[j]).length_m;
  return uni > 0.0 ? inter / uni : 1.0;
}

double EdgeJaccard(std::span<const graph::EdgeId> a,
                   std::span<const graph::EdgeId> b) {
  if (a.empty() && b.empty()) return 1.0;
  const auto sa = SortedUnique(a);
  const auto sb = SortedUnique(b);
  size_t inter = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < sa.size() && j < sb.size()) {
    if (sa[i] == sb[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (sa[i] < sb[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const size_t uni = sa.size() + sb.size() - inter;
  return uni > 0 ? static_cast<double>(inter) / static_cast<double>(uni)
                 : 1.0;
}

double VertexJaccard(std::span<const graph::VertexId> a,
                     std::span<const graph::VertexId> b) {
  if (a.empty() && b.empty()) return 1.0;
  const auto sa = SortedUnique(a);
  const auto sb = SortedUnique(b);
  size_t inter = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < sa.size() && j < sb.size()) {
    if (sa[i] == sb[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (sa[i] < sb[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const size_t uni = sa.size() + sb.size() - inter;
  return uni > 0 ? static_cast<double>(inter) / static_cast<double>(uni)
                 : 1.0;
}

}  // namespace pathrank::routing
