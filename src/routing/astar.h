// A* point-to-point search with admissible geometric heuristics.
//
// For the length metric the heuristic is the great-circle distance to the
// target; for the travel-time metric it is that distance divided by the
// network's maximum free-flow speed. Both are admissible and consistent, so
// A* returns exact shortest paths while settling far fewer vertices than
// Dijkstra. Custom metrics fall back to a zero heuristic (== Dijkstra).
#pragma once

#include <optional>
#include <vector>

#include "common/deadline.h"
#include "routing/ban_set.h"
#include "routing/cost_model.h"
#include "routing/path.h"

namespace pathrank::routing {

/// Reusable A* engine; not thread-safe.
class AStar {
 public:
  explicit AStar(const RoadNetwork& network);

  /// Exact shortest path from `source` to `target` under `cost`. `bans`
  /// (optional) excludes banned edges and banned arrival vertices —
  /// Dijkstra semantics, and the geometric heuristic stays admissible
  /// because bans only remove edges. `cancel` (optional) is polled every
  /// Dijkstra::kCancelCheckPops pops; expiry aborts with std::nullopt.
  std::optional<Path> ShortestPath(VertexId source, VertexId target,
                                   const EdgeCostFn& cost,
                                   const BanSet* bans = nullptr,
                                   const CancelToken* cancel = nullptr);

  /// Vertices settled by the last query (for benchmarks).
  size_t last_settled_count() const { return settled_count_; }

 private:
  struct QueueEntry {
    double f;
    double g;
    VertexId vertex;
    bool operator>(const QueueEntry& o) const { return f > o.f; }
  };

  const RoadNetwork* network_;
  std::vector<double> dist_;
  std::vector<EdgeId> parent_edge_;
  std::vector<uint32_t> stamp_;
  uint32_t epoch_ = 0;
  size_t settled_count_ = 0;
};

}  // namespace pathrank::routing
