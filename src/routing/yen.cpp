#include "routing/yen.h"

#include <algorithm>

#include "common/logging.h"

namespace pathrank::routing {

YenEnumerator::YenEnumerator(const RoadNetwork& network, VertexId source,
                             VertexId target, const EdgeCostFn& cost,
                             const CancelToken* cancel,
                             ShortestPathEngine* engine)
    : network_(&network),
      source_(source),
      target_(target),
      cost_(cost),
      cancel_(cancel),
      owned_engine_(engine == nullptr
                        ? std::make_unique<DijkstraEngine>(network)
                        : nullptr),
      engine_(engine != nullptr ? engine : owned_engine_.get()),
      bans_(network.num_vertices(), network.num_edges()) {}

uint64_t YenEnumerator::HashVertexSeq(
    const std::vector<VertexId>& seq) const {
  // FNV-1a over the raw vertex ids; collisions are vanishingly unlikely at
  // the path counts Yen enumerates (hundreds), and a collision merely
  // suppresses one candidate.
  uint64_t h = 1469598103934665603ULL;
  for (VertexId v : seq) {
    h ^= v;
    h *= 1099511628211ULL;
  }
  return h;
}

std::optional<Path> YenEnumerator::Next() {
  // Both latches make every later call O(1): exhaustion means the path
  // space is provably empty, and cancellation is sticky — the engine's
  // explicit Cancelled outcome is what lets us latch instead of re-running
  // the whole exhausted-state check (spur pass + pool inspection) on every
  // call against an expired token.
  if (exhausted_ || cancelled_) return std::nullopt;
  if (cancel_ != nullptr && cancel_->Expired()) {
    cancelled_ = true;
    return std::nullopt;
  }

  if (!first_done_) {
    first_done_ = true;
    SearchResult r = engine_->FindPath(source_, target_, cost_,
                                       /*bans=*/nullptr, cancel_);
    if (r.outcome == SearchOutcome::kCancelled) {
      cancelled_ = true;
      return std::nullopt;
    }
    if (r.outcome == SearchOutcome::kUnreachable || r.path.edges.empty()) {
      exhausted_ = true;
      return std::nullopt;
    }
    accepted_.push_back(std::move(r.path));
    seen_hash_.insert(HashVertexSeq(accepted_.back().vertices));
    return accepted_.back();
  }

  // Generate deviations of the most recently accepted path, then pop the
  // cheapest candidate overall.
  if (!GenerateSpurs(accepted_.back())) {
    // The spur pass was cut short, so the candidate pool may be missing
    // cheaper deviations: popping from it could yield out-of-order paths.
    // Stop here; accepted() still holds a correct (partial) prefix.
    cancelled_ = true;
    return std::nullopt;
  }
  if (candidates_.empty()) {
    exhausted_ = true;
    return std::nullopt;
  }
  auto it = candidates_.begin();
  accepted_.push_back(it->path);
  candidates_.erase(it);
  return accepted_.back();
}

bool YenEnumerator::GenerateSpurs(const Path& base) {
  // For each spur position i on the base path: root = base[0..i],
  // ban (a) the i-th edge of every accepted path sharing that root and
  // (b) all root vertices except the spur node, then search spur->target.
  for (size_t i = 0; i + 1 < base.vertices.size(); ++i) {
    const VertexId spur = base.vertices[i];

    bans_.Clear();
    for (const Path& p : accepted_) {
      if (p.vertices.size() > i &&
          std::equal(p.vertices.begin(), p.vertices.begin() + i + 1,
                     base.vertices.begin())) {
        if (i < p.edges.size()) bans_.BanEdge(p.edges[i]);
      }
    }
    for (size_t j = 0; j < i; ++j) {
      bans_.BanVertex(base.vertices[j]);
    }

    SearchResult r =
        engine_->FindPath(spur, target_, cost_, &bans_, cancel_);
    if (r.outcome == SearchOutcome::kCancelled) return false;
    if (r.outcome == SearchOutcome::kUnreachable) continue;
    Path& spur_path = r.path;

    Candidate cand;
    cand.spur_index = i;
    cand.path.edges.assign(base.edges.begin(), base.edges.begin() + i);
    cand.path.edges.insert(cand.path.edges.end(), spur_path.edges.begin(),
                           spur_path.edges.end());
    cand.path.vertices.assign(base.vertices.begin(),
                              base.vertices.begin() + i);
    cand.path.vertices.insert(cand.path.vertices.end(),
                              spur_path.vertices.begin(),
                              spur_path.vertices.end());
    const uint64_t h = HashVertexSeq(cand.path.vertices);
    if (!seen_hash_.insert(h).second) continue;  // already generated

    double root_cost = 0.0;
    for (size_t j = 0; j < i; ++j) root_cost += cost_(base.edges[j]);
    cand.path.cost = root_cost + spur_path.cost;
    cand.cost = cand.path.cost;
    RecomputeTotals(*network_, &cand.path);
    candidates_.insert(std::move(cand));
  }
  return true;
}

std::vector<Path> TopKShortestPaths(const RoadNetwork& network,
                                    VertexId source, VertexId target,
                                    const EdgeCostFn& cost, int k,
                                    const CancelToken* cancel,
                                    ShortestPathEngine* engine) {
  PR_CHECK(k >= 1) << "k must be positive";
  YenEnumerator yen(network, source, target, cost, cancel, engine);
  std::vector<Path> out;
  out.reserve(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    auto p = yen.Next();
    if (!p.has_value()) break;
    out.push_back(std::move(*p));
  }
  return out;
}

}  // namespace pathrank::routing
