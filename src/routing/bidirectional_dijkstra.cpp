#include "routing/bidirectional_dijkstra.h"

#include <limits>
#include <queue>

#include "common/logging.h"
#include "routing/dijkstra.h"

namespace pathrank::routing {
namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

BidirectionalDijkstra::BidirectionalDijkstra(const RoadNetwork& network)
    : network_(&network),
      dist_fwd_(network.num_vertices(), kInf),
      dist_bwd_(network.num_vertices(), kInf),
      parent_fwd_(network.num_vertices(), graph::kInvalidEdge),
      parent_bwd_(network.num_vertices(), graph::kInvalidEdge),
      stamp_fwd_(network.num_vertices(), 0),
      stamp_bwd_(network.num_vertices(), 0) {}

std::optional<Path> BidirectionalDijkstra::ShortestPath(
    VertexId source, VertexId target, const EdgeCostFn& cost,
    const BanSet* bans, const CancelToken* cancel) {
  PR_CHECK(source < network_->num_vertices());
  PR_CHECK(target < network_->num_vertices());
  if (cancel != nullptr && cancel->Expired()) return std::nullopt;
  ++epoch_;
  settled_count_ = 0;
  if (source == target) {
    Path p;
    p.vertices.push_back(source);
    return p;
  }
  // A banned target blocks every arrival, exactly as the unidirectional
  // search (which skips all of the target's in-edges) would conclude.
  if (bans != nullptr && bans->IsVertexBanned(target)) return std::nullopt;

  using Queue = std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                                    std::greater<QueueEntry>>;
  Queue fwd_queue;
  Queue bwd_queue;
  dist_fwd_[source] = 0.0;
  stamp_fwd_[source] = epoch_;
  parent_fwd_[source] = graph::kInvalidEdge;
  fwd_queue.push({0.0, source});
  dist_bwd_[target] = 0.0;
  stamp_bwd_[target] = epoch_;
  parent_bwd_[target] = graph::kInvalidEdge;
  bwd_queue.push({0.0, target});

  double best = kInf;
  VertexId meet = graph::kInvalidVertex;

  auto try_meet = [&](VertexId v) {
    if (stamp_fwd_[v] == epoch_ && stamp_bwd_[v] == epoch_) {
      const double total = dist_fwd_[v] + dist_bwd_[v];
      if (total < best) {
        best = total;
        meet = v;
      }
    }
  };

  double top_fwd = 0.0;
  double top_bwd = 0.0;
  size_t pops = 0;
  while (!fwd_queue.empty() || !bwd_queue.empty()) {
    // Same amortised checkpoint as Dijkstra::Run: free when no token, and
    // never influences which frontier expands, so deadline-free results
    // stay bitwise identical.
    if (cancel != nullptr &&
        (++pops & (Dijkstra::kCancelCheckPops - 1)) == 0 &&
        cancel->Expired()) {
      return std::nullopt;
    }
    top_fwd = fwd_queue.empty() ? kInf : fwd_queue.top().dist;
    top_bwd = bwd_queue.empty() ? kInf : bwd_queue.top().dist;
    // Termination: the meeting-point path cannot improve once the sum of
    // the two frontier minima exceeds the best meeting cost.
    if (top_fwd + top_bwd >= best) break;

    const bool expand_fwd = top_fwd <= top_bwd;
    Queue& queue = expand_fwd ? fwd_queue : bwd_queue;
    auto& dist = expand_fwd ? dist_fwd_ : dist_bwd_;
    auto& stamp = expand_fwd ? stamp_fwd_ : stamp_bwd_;
    auto& parent = expand_fwd ? parent_fwd_ : parent_bwd_;

    const QueueEntry top = queue.top();
    queue.pop();
    const VertexId u = top.vertex;
    if (stamp[u] != epoch_ || top.dist > dist[u]) continue;
    ++settled_count_;

    // Backward labels mean "suffix u -> target": extending one through a
    // banned u would make u an ARRIVAL vertex of the longer suffix, which
    // ban semantics forbid. The label itself stays usable as a meeting
    // point — the forward half is what arrives at the meet vertex, and
    // its own relaxation already refused banned arrivals.
    if (!expand_fwd && bans != nullptr && u != target &&
        bans->IsVertexBanned(u)) {
      continue;
    }

    const auto edges = expand_fwd ? network_->OutEdges(u)
                                  : network_->InEdges(u);
    for (EdgeId e : edges) {
      if (bans != nullptr && bans->IsEdgeBanned(e)) continue;
      const auto& rec = network_->edge(e);
      const VertexId v = expand_fwd ? rec.to : rec.from;
      if (expand_fwd && bans != nullptr && bans->IsVertexBanned(v)) continue;
      const double nd = top.dist + cost(e);
      if (stamp[v] != epoch_ || nd < dist[v]) {
        stamp[v] = epoch_;
        dist[v] = nd;
        parent[v] = e;
        queue.push({nd, v});
        try_meet(v);
      }
    }
  }

  if (meet == graph::kInvalidVertex) return std::nullopt;

  Path path;
  // Forward half (reversed parent walk).
  std::vector<EdgeId> rev;
  VertexId cur = meet;
  while (parent_fwd_[cur] != graph::kInvalidEdge) {
    const EdgeId e = parent_fwd_[cur];
    rev.push_back(e);
    cur = network_->edge(e).from;
  }
  path.edges.assign(rev.rbegin(), rev.rend());
  // Backward half (already forward-oriented edges over in-parents).
  cur = meet;
  while (parent_bwd_[cur] != graph::kInvalidEdge) {
    const EdgeId e = parent_bwd_[cur];
    path.edges.push_back(e);
    cur = network_->edge(e).to;
  }
  path.vertices.reserve(path.edges.size() + 1);
  path.vertices.push_back(source);
  for (EdgeId e : path.edges) path.vertices.push_back(network_->edge(e).to);
  RecomputeTotals(*network_, &path);
  // Re-sum the cost sequentially along the path rather than taking
  // `best` (forward-dist + backward-dist): the different association
  // order differs in the low float bits, and callers (Yen candidate
  // sets) rely on costs being BITWISE identical across engines.
  path.cost = 0.0;
  for (const EdgeId e : path.edges) path.cost += cost(e);
  return path;
}

}  // namespace pathrank::routing
