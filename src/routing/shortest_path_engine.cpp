#include "routing/shortest_path_engine.h"

#include <utility>

#include "common/logging.h"
#include "routing/preprocessed_graph.h"

namespace pathrank::routing {
namespace {

/// Classifies a router's std::nullopt: the token is sticky, so a search
/// that was cut short always reads Expired() == true afterwards. (The
/// converse misclassification — a genuinely unreachable pair whose token
/// expired just after the search finished — is conservative: the caller
/// stops instead of concluding unreachability, which is always safe.)
SearchResult Classify(std::optional<Path> path, const CancelToken* cancel) {
  if (path.has_value()) return SearchResult::Found(std::move(*path));
  if (cancel != nullptr && cancel->Expired()) return SearchResult::Cancelled();
  return SearchResult::Unreachable();
}

}  // namespace

SearchResult DijkstraEngine::FindPath(VertexId source, VertexId target,
                                      const EdgeCostFn& cost,
                                      const BanSet* bans,
                                      const CancelToken* cancel) {
  return Classify(dijkstra_.ShortestPath(source, target, cost, bans, cancel),
                  cancel);
}

SearchResult BidirectionalDijkstraEngine::FindPath(VertexId source,
                                                   VertexId target,
                                                   const EdgeCostFn& cost,
                                                   const BanSet* bans,
                                                   const CancelToken* cancel) {
  return Classify(bidi_.ShortestPath(source, target, cost, bans, cancel),
                  cancel);
}

SearchResult AStarEngine::FindPath(VertexId source, VertexId target,
                                   const EdgeCostFn& cost, const BanSet* bans,
                                   const CancelToken* cancel) {
  return Classify(astar_.ShortestPath(source, target, cost, bans, cancel),
                  cancel);
}

AltEngine::AltEngine(const RoadNetwork& network, const EdgeCostFn& cost,
                     std::shared_ptr<const PreprocessedGraph> tables)
    : tables_(std::move(tables)), alt_(network, cost, tables_) {}

SearchResult AltEngine::FindPath(VertexId source, VertexId target,
                                 const EdgeCostFn& cost, const BanSet* bans,
                                 const CancelToken* cancel) {
  // The landmark bounds are only lower bounds for the preprocessing
  // metric; a mismatched query metric would silently return wrong paths.
  PR_CHECK(tables_->CompatibleWith(cost))
      << "AltEngine query metric does not match the preprocessing metric";
  return Classify(alt_.ShortestPath(source, target, bans, cancel), cancel);
}

}  // namespace pathrank::routing
