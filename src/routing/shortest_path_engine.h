// The pluggable point-to-point shortest-path seam.
//
// Every concrete router in this directory (Dijkstra, A*, bidirectional
// Dijkstra, ALT) historically had its own ad-hoc constructor/query shape,
// so no caller could swap search strategies — YenEnumerator hard-coded a
// Dijkstra member. ShortestPathEngine is the one query contract they all
// adapt to:
//
//   FindPath(source, target, cost, bans, cancel) -> SearchResult
//
// with a tri-state result instead of an overloaded std::nullopt:
// kFound carries the path, kUnreachable means the path space is provably
// empty under the bans, kCancelled means the token expired before the
// search finished (the caller must NOT conclude anything about
// reachability). Yen's spur searches run through this seam, which is what
// lets the serving cold path swap plain Dijkstra for ALT landmarks.
//
// Engine instances are single-threaded scratch holders (like the routers
// they wrap): create one per enumeration/thread. They borrow the network
// (and, for ALT, share an immutable PreprocessedGraph) — the caller keeps
// both alive.
//
// Exactness contract: every adapter here returns an exact shortest path
// under the query metric, so swapping engines never changes path COSTS.
// When shortest paths are unique (no cost ties) the returned paths — and
// therefore Yen candidate sets — are bitwise identical across engines.
#pragma once

#include <memory>

#include "common/deadline.h"
#include "routing/alt.h"
#include "routing/astar.h"
#include "routing/ban_set.h"
#include "routing/bidirectional_dijkstra.h"
#include "routing/cost_model.h"
#include "routing/dijkstra.h"
#include "routing/path.h"

namespace pathrank::routing {

/// Tri-state outcome of one point-to-point query.
enum class SearchOutcome {
  kFound,        ///< `path` holds an exact shortest path
  kUnreachable,  ///< no path exists under the given bans
  kCancelled,    ///< the cancel token expired mid-search; reachability unknown
};

/// One answered point-to-point query.
struct SearchResult {
  SearchOutcome outcome = SearchOutcome::kUnreachable;
  /// Meaningful only when outcome == kFound.
  Path path;

  bool found() const { return outcome == SearchOutcome::kFound; }

  static SearchResult Found(Path p) {
    SearchResult r;
    r.outcome = SearchOutcome::kFound;
    r.path = std::move(p);
    return r;
  }
  static SearchResult Unreachable() { return SearchResult{}; }
  static SearchResult Cancelled() {
    SearchResult r;
    r.outcome = SearchOutcome::kCancelled;
    return r;
  }
};

/// Abstract point-to-point shortest-path engine. Not thread-safe; one
/// instance per concurrent enumeration.
class ShortestPathEngine {
 public:
  virtual ~ShortestPathEngine() = default;

  /// Exact shortest path from `source` to `target` under `cost`,
  /// excluding banned edges and banned (arrival) vertices. `bans` and
  /// `cancel` are optional and borrowed for the duration of the call.
  ///
  /// Ban semantics match Dijkstra's: a banned vertex blocks ARRIVAL (its
  /// in-edges), never departure — so a banned source still routes, and a
  /// banned target is unreachable. (Yen bans root vertices, which are
  /// never the spur node or the target.)
  virtual SearchResult FindPath(VertexId source, VertexId target,
                                const EdgeCostFn& cost, const BanSet* bans,
                                const CancelToken* cancel) = 0;

  /// Stable lower_snake_case engine name ("dijkstra", "bidirectional",
  /// "astar", "alt") — surfaced as the /v1/route "algo" field.
  virtual const char* name() const = 0;

  /// Vertices settled by the last FindPath (diagnostics/benchmarks).
  virtual size_t last_settled_count() const = 0;
};

/// Plain Dijkstra. The default spur engine; YenEnumerator without an
/// explicit engine behaves bitwise identically to the pre-seam code.
class DijkstraEngine final : public ShortestPathEngine {
 public:
  explicit DijkstraEngine(const RoadNetwork& network) : dijkstra_(network) {}

  SearchResult FindPath(VertexId source, VertexId target,
                        const EdgeCostFn& cost, const BanSet* bans,
                        const CancelToken* cancel) override;
  const char* name() const override { return "dijkstra"; }
  size_t last_settled_count() const override {
    return dijkstra_.last_settled_count();
  }

 private:
  Dijkstra dijkstra_;
};

/// Bidirectional Dijkstra: meets in the middle, settling roughly half the
/// vertices of the unidirectional search on long queries.
class BidirectionalDijkstraEngine final : public ShortestPathEngine {
 public:
  explicit BidirectionalDijkstraEngine(const RoadNetwork& network)
      : bidi_(network) {}

  SearchResult FindPath(VertexId source, VertexId target,
                        const EdgeCostFn& cost, const BanSet* bans,
                        const CancelToken* cancel) override;
  const char* name() const override { return "bidirectional"; }
  size_t last_settled_count() const override {
    return bidi_.last_settled_count();
  }

 private:
  BidirectionalDijkstra bidi_;
};

/// A* with the geometric (great-circle) heuristic. Exact for the length
/// and travel-time metrics; degrades to Dijkstra for custom metrics.
class AStarEngine final : public ShortestPathEngine {
 public:
  explicit AStarEngine(const RoadNetwork& network) : astar_(network) {}

  SearchResult FindPath(VertexId source, VertexId target,
                        const EdgeCostFn& cost, const BanSet* bans,
                        const CancelToken* cancel) override;
  const char* name() const override { return "astar"; }
  size_t last_settled_count() const override {
    return astar_.last_settled_count();
  }

 private:
  AStar astar_;
};

/// ALT (A* with landmarks): shares an immutable PreprocessedGraph built
/// for one (network, metric) pair. The per-call cost function MUST be the
/// metric the tables were preprocessed under — checked for the length and
/// travel-time kinds, the caller's responsibility for custom metrics.
/// Landmark lower bounds stay admissible under bans (removing edges only
/// increases true distances), so results stay exact.
class AltEngine final : public ShortestPathEngine {
 public:
  /// `cost` must be the metric `tables` was preprocessed under.
  AltEngine(const RoadNetwork& network, const EdgeCostFn& cost,
            std::shared_ptr<const PreprocessedGraph> tables);

  SearchResult FindPath(VertexId source, VertexId target,
                        const EdgeCostFn& cost, const BanSet* bans,
                        const CancelToken* cancel) override;
  const char* name() const override { return "alt"; }
  size_t last_settled_count() const override {
    return alt_.last_settled_count();
  }

 private:
  std::shared_ptr<const PreprocessedGraph> tables_;
  AltRouter alt_;
};

}  // namespace pathrank::routing
