#include "routing/astar.h"

#include <limits>
#include <queue>

#include "common/logging.h"
#include "routing/dijkstra.h"

namespace pathrank::routing {
namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

AStar::AStar(const RoadNetwork& network)
    : network_(&network),
      dist_(network.num_vertices(), kInf),
      parent_edge_(network.num_vertices(), graph::kInvalidEdge),
      stamp_(network.num_vertices(), 0) {}

std::optional<Path> AStar::ShortestPath(VertexId source, VertexId target,
                                        const EdgeCostFn& cost,
                                        const BanSet* bans,
                                        const CancelToken* cancel) {
  PR_CHECK(source < network_->num_vertices());
  PR_CHECK(target < network_->num_vertices());
  if (cancel != nullptr && cancel->Expired()) return std::nullopt;
  ++epoch_;
  settled_count_ = 0;

  const graph::Coordinate goal = network_->coordinate(target);
  const double inv_max_speed =
      network_->max_speed_mps() > 0.0 ? 1.0 / network_->max_speed_mps() : 0.0;
  auto heuristic = [&](VertexId v) -> double {
    if (cost.is_length()) {
      // FastDistanceMeters slightly underestimates haversine at regional
      // scale; scale down a hair to keep it admissible in all cases.
      return 0.995 * graph::FastDistanceMeters(network_->coordinate(v), goal);
    }
    if (cost.is_travel_time()) {
      return 0.995 * graph::FastDistanceMeters(network_->coordinate(v), goal) *
             inv_max_speed;
    }
    return 0.0;
  };

  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  dist_[source] = 0.0;
  parent_edge_[source] = graph::kInvalidEdge;
  stamp_[source] = epoch_;
  queue.push({heuristic(source), 0.0, source});

  size_t pops = 0;
  while (!queue.empty()) {
    // Same amortised checkpoint cadence as Dijkstra::Run.
    if (cancel != nullptr &&
        (++pops & (Dijkstra::kCancelCheckPops - 1)) == 0 &&
        cancel->Expired()) {
      return std::nullopt;
    }
    const QueueEntry top = queue.top();
    queue.pop();
    const VertexId u = top.vertex;
    if (stamp_[u] != epoch_ || top.g > dist_[u]) continue;
    ++settled_count_;
    if (u == target) {
      Path path;
      path.cost = top.g;
      std::vector<EdgeId> rev;
      VertexId cur = target;
      while (parent_edge_[cur] != graph::kInvalidEdge) {
        const EdgeId e = parent_edge_[cur];
        rev.push_back(e);
        cur = network_->edge(e).from;
      }
      path.edges.assign(rev.rbegin(), rev.rend());
      path.vertices.reserve(path.edges.size() + 1);
      path.vertices.push_back(cur);
      for (EdgeId e : path.edges) {
        path.vertices.push_back(network_->edge(e).to);
      }
      RecomputeTotals(*network_, &path);
      return path;
    }
    for (EdgeId e : network_->OutEdges(u)) {
      if (bans != nullptr && bans->IsEdgeBanned(e)) continue;
      const auto& rec = network_->edge(e);
      const VertexId v = rec.to;
      if (bans != nullptr && bans->IsVertexBanned(v)) continue;
      const double ng = top.g + cost(e);
      if (stamp_[v] != epoch_ || ng < dist_[v]) {
        stamp_[v] = epoch_;
        dist_[v] = ng;
        parent_edge_[v] = e;
        queue.push({ng + heuristic(v), ng, v});
      }
    }
  }
  return std::nullopt;
}

}  // namespace pathrank::routing
