// Bidirectional Dijkstra: simultaneous forward search from the source and
// backward search (over in-edges) from the target; meets in the middle.
// Exact for any non-negative metric; typically settles ~2*sqrt of the
// vertices plain Dijkstra settles on road networks.
#pragma once

#include <optional>
#include <vector>

#include "common/deadline.h"
#include "routing/ban_set.h"
#include "routing/cost_model.h"
#include "routing/path.h"

namespace pathrank::routing {

/// Reusable bidirectional point-to-point engine; not thread-safe.
class BidirectionalDijkstra {
 public:
  explicit BidirectionalDijkstra(const RoadNetwork& network);

  /// Exact shortest path under `cost`; std::nullopt when unreachable.
  /// `bans` (optional) excludes banned edges and banned arrival vertices
  /// with Dijkstra's semantics: the backward search only extends through
  /// a vertex when arriving there is allowed, so forward and backward
  /// halves agree with the unidirectional search on which paths exist.
  /// `cancel` (optional) is polled every Dijkstra::kCancelCheckPops pops;
  /// an expired token aborts the search with std::nullopt (callers
  /// re-check cancel->Expired() to distinguish that from unreachable).
  std::optional<Path> ShortestPath(VertexId source, VertexId target,
                                   const EdgeCostFn& cost,
                                   const BanSet* bans = nullptr,
                                   const CancelToken* cancel = nullptr);

  /// Vertices settled by the last query (both directions).
  size_t last_settled_count() const { return settled_count_; }

 private:
  struct QueueEntry {
    double dist;
    VertexId vertex;
    bool operator>(const QueueEntry& o) const { return dist > o.dist; }
  };

  const RoadNetwork* network_;
  std::vector<double> dist_fwd_, dist_bwd_;
  std::vector<EdgeId> parent_fwd_, parent_bwd_;
  std::vector<uint32_t> stamp_fwd_, stamp_bwd_;
  uint32_t epoch_ = 0;
  size_t settled_count_ = 0;
};

}  // namespace pathrank::routing
