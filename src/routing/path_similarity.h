// Path-to-path similarity measures.
//
// The paper uses length-weighted Jaccard similarity over edge sets both as
// the ground-truth ranking score and as the diversity criterion of the
// D-TkDI candidate generator:
//
//   WJ(P, P') = sum_{e in P ∩ P'} len(e) / sum_{e in P ∪ P'} len(e)
#pragma once

#include <span>

#include "graph/road_network.h"

namespace pathrank::routing {

/// Length-weighted Jaccard similarity of two edge-id sets, in [0, 1].
/// 1.0 iff the sets are identical and non-empty; 0.0 when disjoint.
/// Two empty paths have similarity 1.0 by convention.
double WeightedJaccard(const graph::RoadNetwork& network,
                       std::span<const graph::EdgeId> a,
                       std::span<const graph::EdgeId> b);

/// Unweighted Jaccard similarity of two edge-id sets.
double EdgeJaccard(std::span<const graph::EdgeId> a,
                   std::span<const graph::EdgeId> b);

/// Unweighted Jaccard similarity of two vertex-id sets.
double VertexJaccard(std::span<const graph::VertexId> a,
                     std::span<const graph::VertexId> b);

}  // namespace pathrank::routing
