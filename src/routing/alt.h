// ALT: A* with Landmarks and the Triangle inequality (Goldberg & Harrelson
// 2005). Preprocessing (see routing/preprocessed_graph.h) selects a small
// set of landmarks with farthest-point sampling and stores exact distances
// to and from every vertex; queries run A* with the lower bound
//
//   h(v) = max over landmarks L of
//          max( d(L, t) - d(L, v),  d(v, L) - d(t, L) )
//
// which is admissible and consistent for the metric used at preprocessing
// time. On hierarchical road networks ALT settles far fewer vertices than
// plain Dijkstra and, unlike the geometric A* heuristic, works for custom
// metrics such as the simulated drivers' personalised costs.
//
// The landmark tables live in a shareable PreprocessedGraph, so many
// AltRouter instances (one per thread/enumeration — the router itself is
// query scratch and not thread-safe) can run over one preprocessing
// artifact, and the serving layer can rebuild the artifact per graph
// epoch without touching the routers.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/deadline.h"
#include "routing/ban_set.h"
#include "routing/cost_model.h"
#include "routing/path.h"
#include "routing/preprocessed_graph.h"

namespace pathrank::routing {

/// ALT query engine for one (network, metric) pair. Holds per-query
/// scratch; the (immutable, shareable) landmark tables live in the
/// PreprocessedGraph.
class AltRouter {
 public:
  /// Builds private tables: preprocesses `num_landmarks` landmarks under
  /// `cost`. O(L * E log V).
  AltRouter(const RoadNetwork& network, const EdgeCostFn& cost,
            int num_landmarks = 8);

  /// Shares existing tables (the per-epoch artifact path). `cost` must be
  /// the metric `tables` was preprocessed under — checked for the length
  /// and travel-time kinds; custom metrics are the caller's contract.
  AltRouter(const RoadNetwork& network, const EdgeCostFn& cost,
            std::shared_ptr<const PreprocessedGraph> tables);

  /// Exact shortest path under the preprocessing metric. `bans` excludes
  /// banned edges and banned arrival vertices (Dijkstra semantics; the
  /// landmark bounds stay admissible because bans only remove edges).
  /// `cancel` is polled on the same amortised cadence as Dijkstra; an
  /// expired token yields std::nullopt regardless of reachability.
  std::optional<Path> ShortestPath(VertexId source, VertexId target,
                                   const BanSet* bans = nullptr,
                                   const CancelToken* cancel = nullptr);

  /// Vertices settled by the last query.
  size_t last_settled_count() const { return settled_count_; }

  /// The selected landmark vertices (diagnostics/tests).
  const std::vector<VertexId>& landmarks() const {
    return tables_->landmarks();
  }

  /// The shared preprocessing artifact.
  const std::shared_ptr<const PreprocessedGraph>& tables() const {
    return tables_;
  }

 private:
  struct QueueEntry {
    double f;
    double g;
    VertexId vertex;
    bool operator>(const QueueEntry& o) const { return f > o.f; }
  };

  const RoadNetwork* network_;
  EdgeCostFn cost_;
  std::shared_ptr<const PreprocessedGraph> tables_;

  std::vector<double> dist_;
  std::vector<EdgeId> parent_edge_;
  std::vector<uint32_t> stamp_;
  uint32_t epoch_ = 0;
  size_t settled_count_ = 0;
};

}  // namespace pathrank::routing
