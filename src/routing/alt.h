// ALT: A* with Landmarks and the Triangle inequality (Goldberg & Harrelson
// 2005). Preprocessing selects a small set of landmarks with farthest-point
// sampling and stores exact distances to and from every vertex; queries run
// A* with the lower bound
//
//   h(v) = max over landmarks L of
//          max( d(L, t) - d(L, v),  d(v, L) - d(t, L) )
//
// which is admissible and consistent for the metric used at preprocessing
// time. On hierarchical road networks ALT settles far fewer vertices than
// plain Dijkstra and, unlike the geometric A* heuristic, works for custom
// metrics such as the simulated drivers' personalised costs.
#pragma once

#include <optional>
#include <vector>

#include "routing/cost_model.h"
#include "routing/path.h"

namespace pathrank::routing {

/// Preprocessed ALT engine for one (network, metric) pair.
class AltRouter {
 public:
  /// Preprocesses `num_landmarks` landmarks under `cost`. O(L * E log V).
  AltRouter(const RoadNetwork& network, const EdgeCostFn& cost,
            int num_landmarks = 8);

  /// Exact shortest path under the preprocessing metric.
  std::optional<Path> ShortestPath(VertexId source, VertexId target);

  /// Vertices settled by the last query.
  size_t last_settled_count() const { return settled_count_; }

  /// The selected landmark vertices (diagnostics/tests).
  const std::vector<VertexId>& landmarks() const { return landmarks_; }

 private:
  struct QueueEntry {
    double f;
    double g;
    VertexId vertex;
    bool operator>(const QueueEntry& o) const { return f > o.f; }
  };

  double Heuristic(VertexId v, VertexId target) const;

  const RoadNetwork* network_;
  EdgeCostFn cost_;
  std::vector<VertexId> landmarks_;
  // dist_from_[l][v] = d(landmark_l -> v); dist_to_[l][v] = d(v -> landmark_l).
  std::vector<std::vector<double>> dist_from_;
  std::vector<std::vector<double>> dist_to_;

  std::vector<double> dist_;
  std::vector<EdgeId> parent_edge_;
  std::vector<uint32_t> stamp_;
  uint32_t epoch_ = 0;
  size_t settled_count_ = 0;
};

}  // namespace pathrank::routing
