// Dijkstra shortest paths with target early-exit, reusable state (epoch
// trick), and optional vertex/edge bans (required by Yen's algorithm).
#pragma once

#include <optional>
#include <vector>

#include "common/deadline.h"
#include "routing/ban_set.h"
#include "routing/cost_model.h"
#include "routing/path.h"

namespace pathrank::routing {

/// Reusable single-source shortest-path engine. Not thread-safe; create one
/// instance per thread.
class Dijkstra {
 public:
  explicit Dijkstra(const RoadNetwork& network);

  /// Point-to-point query; returns std::nullopt when `target` is
  /// unreachable. `bans` (optional) excludes vertices/edges from the search;
  /// the source itself must not be banned. `cancel` (optional) is polled
  /// every kCancelCheckPops heap pops; an expired token aborts the search
  /// with std::nullopt — indistinguishable from "unreachable" here, so
  /// callers that must tell the two apart re-check cancel->Expired().
  std::optional<Path> ShortestPath(VertexId source, VertexId target,
                                   const EdgeCostFn& cost,
                                   const BanSet* bans = nullptr,
                                   const CancelToken* cancel = nullptr);

  /// Cancellation-poll cadence, in heap pops. Small enough that even the
  /// tiny test graphs hit a checkpoint, large enough that the per-pop
  /// cost with a live token is one predictable branch plus a rare clock
  /// read.
  static constexpr size_t kCancelCheckPops = 64;

  /// Full one-to-all relaxation from `source`. After the call,
  /// DistanceTo/PathTo answer queries for any target.
  void ComputeAllFrom(VertexId source, const EdgeCostFn& cost);

  /// Distance from the last ComputeAllFrom source; +inf when unreachable.
  double DistanceTo(VertexId v) const;

  /// True when v was reached by the last search.
  bool Reached(VertexId v) const;

  /// Reconstructs the path to `v` after ComputeAllFrom (empty optional when
  /// unreachable).
  std::optional<Path> PathTo(VertexId v) const;

  /// Number of vertices settled by the last search (for benchmarks).
  size_t last_settled_count() const { return settled_count_; }

 private:
  struct QueueEntry {
    double dist;
    VertexId vertex;
    bool operator>(const QueueEntry& o) const { return dist > o.dist; }
  };

  void Reset();
  std::optional<Path> Run(VertexId source, VertexId target,
                          const EdgeCostFn& cost, const BanSet* bans,
                          const CancelToken* cancel);
  Path Reconstruct(VertexId target, double dist) const;

  const RoadNetwork* network_;
  const EdgeCostFn* cost_ = nullptr;
  std::vector<double> dist_;
  std::vector<EdgeId> parent_edge_;
  std::vector<uint32_t> stamp_;  // epoch per vertex
  uint32_t epoch_ = 0;
  size_t settled_count_ = 0;
  VertexId last_source_ = graph::kInvalidVertex;
};

}  // namespace pathrank::routing
