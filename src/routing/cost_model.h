// Edge-cost abstraction: routing algorithms are generic over the metric
// (physical length, free-flow travel time, or an externally supplied
// per-edge weight vector such as a simulated driver's personalised costs).
#pragma once

#include <span>
#include <vector>

#include "common/logging.h"
#include "graph/road_network.h"

namespace pathrank::routing {

/// Cheap, copyable view of an edge-cost function. The referenced network
/// (and custom weight array, if any) must outlive the view.
class EdgeCostFn {
 public:
  /// Physical length in metres.
  static EdgeCostFn Length(const graph::RoadNetwork& network) {
    return EdgeCostFn(&network, Mode::kLength, {});
  }

  /// Free-flow travel time in seconds.
  static EdgeCostFn TravelTime(const graph::RoadNetwork& network) {
    return EdgeCostFn(&network, Mode::kTravelTime, {});
  }

  /// Arbitrary positive per-edge weights (size must equal num_edges()).
  static EdgeCostFn Custom(const graph::RoadNetwork& network,
                           std::span<const double> weights) {
    PR_CHECK(weights.size() == network.num_edges())
        << "custom weights size mismatch";
    return EdgeCostFn(&network, Mode::kCustom, weights);
  }

  double operator()(graph::EdgeId e) const {
    switch (mode_) {
      case Mode::kLength:
        return network_->edge(e).length_m;
      case Mode::kTravelTime:
        return network_->edge(e).travel_time_s;
      case Mode::kCustom:
        return custom_[e];
    }
    return 0.0;
  }

  const graph::RoadNetwork& network() const { return *network_; }

  /// True when this is the physical-length metric (enables exact geometric
  /// A* heuristics).
  bool is_length() const { return mode_ == Mode::kLength; }

  /// True when this is the travel-time metric.
  bool is_travel_time() const { return mode_ == Mode::kTravelTime; }

 private:
  enum class Mode { kLength, kTravelTime, kCustom };

  EdgeCostFn(const graph::RoadNetwork* network, Mode mode,
             std::span<const double> custom)
      : network_(network), mode_(mode), custom_(custom) {}

  const graph::RoadNetwork* network_;
  Mode mode_;
  std::span<const double> custom_;
};

}  // namespace pathrank::routing
