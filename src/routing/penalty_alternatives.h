// Penalty-based alternative routes (iterative penalty method, cf. the
// alternative-routing literature the paper's candidate generators compete
// with): repeatedly compute the shortest path, then multiply the weights
// of its edges by a penalty factor so the next iteration is pushed onto
// different roads. Cheaper than Yen for small k and produces naturally
// diverse alternatives; included as a third candidate-generation baseline.
#pragma once

#include <vector>

#include "common/deadline.h"
#include "routing/cost_model.h"
#include "routing/path.h"

namespace pathrank::routing {

/// Options for the penalty method.
struct PenaltyOptions {
  /// Number of distinct paths requested.
  int k = 10;
  /// Multiplier applied to the weights of every edge on each found path.
  double penalty_factor = 1.35;
  /// Iteration budget (a path repeating an earlier vertex sequence does
  /// not count towards k).
  int max_iterations = 60;
};

/// Returns up to k distinct paths. The first is always the true shortest
/// path under `cost`; later paths are progressively more different.
/// Paths are reported with their *unpenalised* cost and sorted by it.
/// When `cancel` expires mid-iteration the paths found so far are
/// returned (possibly fewer than k, possibly zero).
std::vector<Path> PenaltyAlternatives(const graph::RoadNetwork& network,
                                      VertexId source, VertexId target,
                                      const EdgeCostFn& cost,
                                      const PenaltyOptions& options,
                                      const CancelToken* cancel = nullptr);

}  // namespace pathrank::routing
