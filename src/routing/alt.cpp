#include "routing/alt.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/logging.h"
#include "routing/dijkstra.h"

namespace pathrank::routing {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One-to-all distances over *reversed* edges: d(v -> source) for all v.
std::vector<double> ReverseDistances(const graph::RoadNetwork& net,
                                     VertexId source, const EdgeCostFn& cost) {
  std::vector<double> dist(net.num_vertices(), kInf);
  dist[source] = 0.0;
  using Entry = std::pair<double, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  queue.push({0.0, source});
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;
    for (graph::EdgeId e : net.InEdges(u)) {
      const auto& rec = net.edge(e);
      const double nd = d + cost(e);
      if (nd < dist[rec.from]) {
        dist[rec.from] = nd;
        queue.push({nd, rec.from});
      }
    }
  }
  return dist;
}

}  // namespace

AltRouter::AltRouter(const RoadNetwork& network, const EdgeCostFn& cost,
                     int num_landmarks)
    : network_(&network),
      cost_(cost),
      dist_(network.num_vertices(), kInf),
      parent_edge_(network.num_vertices(), graph::kInvalidEdge),
      stamp_(network.num_vertices(), 0) {
  PR_CHECK(num_landmarks >= 1);
  PR_CHECK(network.num_vertices() > 0);

  Dijkstra dijkstra(network);
  // Farthest-point landmark selection: start from vertex 0, repeatedly add
  // the vertex farthest (under the metric) from the current landmark set.
  VertexId current = 0;
  std::vector<double> min_dist(network.num_vertices(), kInf);
  for (int l = 0; l < num_landmarks; ++l) {
    landmarks_.push_back(current);
    dijkstra.ComputeAllFrom(current, cost_);
    std::vector<double> from(network.num_vertices(), kInf);
    for (VertexId v = 0; v < network.num_vertices(); ++v) {
      if (dijkstra.Reached(v)) from[v] = dijkstra.DistanceTo(v);
    }
    dist_to_.push_back(ReverseDistances(network, current, cost_));
    dist_from_.push_back(std::move(from));

    // Update farthest-point bookkeeping and pick the next landmark.
    VertexId next = current;
    double best = -1.0;
    for (VertexId v = 0; v < network.num_vertices(); ++v) {
      const double d = dist_from_.back()[v];
      if (d < min_dist[v]) min_dist[v] = d;
      if (min_dist[v] != kInf && min_dist[v] > best) {
        best = min_dist[v];
        next = v;
      }
    }
    current = next;
  }
}

double AltRouter::Heuristic(VertexId v, VertexId target) const {
  double best = 0.0;
  for (size_t l = 0; l < landmarks_.size(); ++l) {
    const double from_l_t = dist_from_[l][target];
    const double from_l_v = dist_from_[l][v];
    if (from_l_t != kInf && from_l_v != kInf) {
      best = std::max(best, from_l_t - from_l_v);
    }
    const double to_l_v = dist_to_[l][v];
    const double to_l_t = dist_to_[l][target];
    if (to_l_v != kInf && to_l_t != kInf) {
      best = std::max(best, to_l_v - to_l_t);
    }
  }
  return best;
}

std::optional<Path> AltRouter::ShortestPath(VertexId source, VertexId target) {
  PR_CHECK(source < network_->num_vertices());
  PR_CHECK(target < network_->num_vertices());
  ++epoch_;
  settled_count_ = 0;

  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  dist_[source] = 0.0;
  parent_edge_[source] = graph::kInvalidEdge;
  stamp_[source] = epoch_;
  queue.push({Heuristic(source, target), 0.0, source});

  while (!queue.empty()) {
    const QueueEntry top = queue.top();
    queue.pop();
    const VertexId u = top.vertex;
    if (stamp_[u] != epoch_ || top.g > dist_[u]) continue;
    ++settled_count_;
    if (u == target) {
      Path path;
      path.cost = top.g;
      std::vector<EdgeId> rev;
      VertexId cur = target;
      while (parent_edge_[cur] != graph::kInvalidEdge) {
        const EdgeId e = parent_edge_[cur];
        rev.push_back(e);
        cur = network_->edge(e).from;
      }
      path.edges.assign(rev.rbegin(), rev.rend());
      path.vertices.reserve(path.edges.size() + 1);
      path.vertices.push_back(cur);
      for (EdgeId e : path.edges) {
        path.vertices.push_back(network_->edge(e).to);
      }
      RecomputeTotals(*network_, &path);
      return path;
    }
    for (EdgeId e : network_->OutEdges(u)) {
      const auto& rec = network_->edge(e);
      const VertexId v = rec.to;
      const double ng = top.g + cost_(e);
      if (stamp_[v] != epoch_ || ng < dist_[v]) {
        stamp_[v] = epoch_;
        dist_[v] = ng;
        parent_edge_[v] = e;
        queue.push({ng + Heuristic(v, target), ng, v});
      }
    }
  }
  return std::nullopt;
}

}  // namespace pathrank::routing
