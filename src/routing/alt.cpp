#include "routing/alt.h"

#include <queue>
#include <utility>

#include "common/logging.h"
#include "routing/dijkstra.h"

namespace pathrank::routing {

AltRouter::AltRouter(const RoadNetwork& network, const EdgeCostFn& cost,
                     int num_landmarks)
    : AltRouter(network, cost,
                std::make_shared<const PreprocessedGraph>(network, cost,
                                                          num_landmarks)) {}

AltRouter::AltRouter(const RoadNetwork& network, const EdgeCostFn& cost,
                     std::shared_ptr<const PreprocessedGraph> tables)
    : network_(&network),
      cost_(cost),
      tables_(std::move(tables)),
      dist_(network.num_vertices()),
      parent_edge_(network.num_vertices(), graph::kInvalidEdge),
      stamp_(network.num_vertices(), 0) {
  PR_CHECK(tables_ != nullptr);
  PR_CHECK(tables_->num_vertices() == network.num_vertices())
      << "preprocessed tables index a different network";
  PR_CHECK(tables_->CompatibleWith(cost_))
      << "query metric does not match the preprocessing metric";
}

std::optional<Path> AltRouter::ShortestPath(VertexId source, VertexId target,
                                            const BanSet* bans,
                                            const CancelToken* cancel) {
  PR_CHECK(source < network_->num_vertices());
  PR_CHECK(target < network_->num_vertices());
  if (cancel != nullptr && cancel->Expired()) return std::nullopt;
  ++epoch_;
  settled_count_ = 0;
  const PreprocessedGraph& tables = *tables_;

  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  dist_[source] = 0.0;
  parent_edge_[source] = graph::kInvalidEdge;
  stamp_[source] = epoch_;
  queue.push({tables.LowerBound(source, target), 0.0, source});

  size_t pops = 0;
  while (!queue.empty()) {
    // Same amortised checkpoint cadence as Dijkstra::Run: free when no
    // token, and never influences expansion order.
    if (cancel != nullptr &&
        (++pops & (Dijkstra::kCancelCheckPops - 1)) == 0 &&
        cancel->Expired()) {
      return std::nullopt;
    }
    const QueueEntry top = queue.top();
    queue.pop();
    const VertexId u = top.vertex;
    if (stamp_[u] != epoch_ || top.g > dist_[u]) continue;
    ++settled_count_;
    if (u == target) {
      Path path;
      path.cost = top.g;
      std::vector<EdgeId> rev;
      VertexId cur = target;
      while (parent_edge_[cur] != graph::kInvalidEdge) {
        const EdgeId e = parent_edge_[cur];
        rev.push_back(e);
        cur = network_->edge(e).from;
      }
      path.edges.assign(rev.rbegin(), rev.rend());
      path.vertices.reserve(path.edges.size() + 1);
      path.vertices.push_back(cur);
      for (EdgeId e : path.edges) {
        path.vertices.push_back(network_->edge(e).to);
      }
      RecomputeTotals(*network_, &path);
      return path;
    }
    for (EdgeId e : network_->OutEdges(u)) {
      if (bans != nullptr && bans->IsEdgeBanned(e)) continue;
      const auto& rec = network_->edge(e);
      const VertexId v = rec.to;
      if (bans != nullptr && bans->IsVertexBanned(v)) continue;
      const double ng = top.g + cost_(e);
      if (stamp_[v] != epoch_ || ng < dist_[v]) {
        stamp_[v] = epoch_;
        dist_[v] = ng;
        parent_edge_[v] = e;
        queue.push({ng + tables.LowerBound(v, target), ng, v});
      }
    }
  }
  return std::nullopt;
}

}  // namespace pathrank::routing
