// Temporarily banned vertices/edges for spur-path computations (Yen).
// Uses epoch stamping so Clear() is O(1) across the many thousands of
// Dijkstra calls a single Yen enumeration performs.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace pathrank::routing {

/// O(1)-clear set of banned vertices and edges.
class BanSet {
 public:
  BanSet(size_t num_vertices, size_t num_edges)
      : vertex_epoch_(num_vertices, 0), edge_epoch_(num_edges, 0) {}

  void BanVertex(graph::VertexId v) { vertex_epoch_[v] = epoch_; }
  void BanEdge(graph::EdgeId e) { edge_epoch_[e] = epoch_; }

  bool IsVertexBanned(graph::VertexId v) const {
    return vertex_epoch_[v] == epoch_;
  }
  bool IsEdgeBanned(graph::EdgeId e) const { return edge_epoch_[e] == epoch_; }

  /// Un-bans everything in O(1).
  void Clear() { ++epoch_; }

 private:
  uint32_t epoch_ = 1;
  std::vector<uint32_t> vertex_epoch_;
  std::vector<uint32_t> edge_epoch_;
};

}  // namespace pathrank::routing
