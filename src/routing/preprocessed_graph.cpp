#include "routing/preprocessed_graph.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/logging.h"
#include "routing/dijkstra.h"

namespace pathrank::routing {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One-to-all distances over *reversed* edges: d(v -> source) for all v.
std::vector<double> ReverseDistances(const graph::RoadNetwork& net,
                                     VertexId source, const EdgeCostFn& cost) {
  std::vector<double> dist(net.num_vertices(), kInf);
  dist[source] = 0.0;
  using Entry = std::pair<double, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  queue.push({0.0, source});
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;
    for (graph::EdgeId e : net.InEdges(u)) {
      const auto& rec = net.edge(e);
      const double nd = d + cost(e);
      if (nd < dist[rec.from]) {
        dist[rec.from] = nd;
        queue.push({nd, rec.from});
      }
    }
  }
  return dist;
}

PreprocessedGraph::Metric MetricOf(const EdgeCostFn& cost) {
  if (cost.is_length()) return PreprocessedGraph::Metric::kLength;
  if (cost.is_travel_time()) return PreprocessedGraph::Metric::kTravelTime;
  return PreprocessedGraph::Metric::kCustom;
}

}  // namespace

PreprocessedGraph::PreprocessedGraph(const RoadNetwork& network,
                                     const EdgeCostFn& cost,
                                     int num_landmarks)
    : metric_(MetricOf(cost)), num_vertices_(network.num_vertices()) {
  PR_CHECK(num_landmarks >= 1);
  PR_CHECK(network.num_vertices() > 0);

  Dijkstra dijkstra(network);
  // Farthest-point landmark selection: start from vertex 0, repeatedly add
  // the vertex farthest (under the metric) from the current landmark set.
  VertexId current = 0;
  std::vector<double> min_dist(network.num_vertices(), kInf);
  for (int l = 0; l < num_landmarks; ++l) {
    landmarks_.push_back(current);
    dijkstra.ComputeAllFrom(current, cost);
    std::vector<double> from(network.num_vertices(), kInf);
    for (VertexId v = 0; v < network.num_vertices(); ++v) {
      if (dijkstra.Reached(v)) from[v] = dijkstra.DistanceTo(v);
    }
    dist_to_.push_back(ReverseDistances(network, current, cost));
    dist_from_.push_back(std::move(from));

    // Update farthest-point bookkeeping and pick the next landmark.
    VertexId next = current;
    double best = -1.0;
    for (VertexId v = 0; v < network.num_vertices(); ++v) {
      const double d = dist_from_.back()[v];
      if (d < min_dist[v]) min_dist[v] = d;
      if (min_dist[v] != kInf && min_dist[v] > best) {
        best = min_dist[v];
        next = v;
      }
    }
    current = next;
  }
}

bool PreprocessedGraph::CompatibleWith(const EdgeCostFn& cost) const {
  if (cost.network().num_vertices() != num_vertices_) return false;
  switch (metric_) {
    case Metric::kLength:
      return cost.is_length();
    case Metric::kTravelTime:
      return cost.is_travel_time();
    case Metric::kCustom:
      // A type-erased custom metric cannot be compared; trust the caller.
      return !cost.is_length() && !cost.is_travel_time();
  }
  return false;
}

double PreprocessedGraph::LowerBound(VertexId v, VertexId target) const {
  double best = 0.0;
  for (size_t l = 0; l < landmarks_.size(); ++l) {
    const double from_l_t = dist_from_[l][target];
    const double from_l_v = dist_from_[l][v];
    if (from_l_t != kInf && from_l_v != kInf) {
      best = std::max(best, from_l_t - from_l_v);
    }
    const double to_l_v = dist_to_[l][v];
    const double to_l_t = dist_to_[l][target];
    if (to_l_v != kInf && to_l_t != kInf) {
      best = std::max(best, to_l_v - to_l_t);
    }
  }
  return best;
}

}  // namespace pathrank::routing
