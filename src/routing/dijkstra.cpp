#include "routing/dijkstra.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/logging.h"

namespace pathrank::routing {
namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

Dijkstra::Dijkstra(const RoadNetwork& network)
    : network_(&network),
      dist_(network.num_vertices(), kInf),
      parent_edge_(network.num_vertices(), graph::kInvalidEdge),
      stamp_(network.num_vertices(), 0) {}

void Dijkstra::Reset() {
  ++epoch_;
  settled_count_ = 0;
}

std::optional<Path> Dijkstra::ShortestPath(VertexId source, VertexId target,
                                           const EdgeCostFn& cost,
                                           const BanSet* bans,
                                           const CancelToken* cancel) {
  PR_CHECK(source < network_->num_vertices());
  PR_CHECK(target < network_->num_vertices());
  return Run(source, target, cost, bans, cancel);
}

void Dijkstra::ComputeAllFrom(VertexId source, const EdgeCostFn& cost) {
  PR_CHECK(source < network_->num_vertices());
  Run(source, graph::kInvalidVertex, cost, nullptr, nullptr);
}

std::optional<Path> Dijkstra::Run(VertexId source, VertexId target,
                                  const EdgeCostFn& cost,
                                  const BanSet* bans,
                                  const CancelToken* cancel) {
  // Entry checkpoint: an already-expired token (deadline spent before the
  // search even starts) must not buy a full search.
  if (cancel != nullptr && cancel->Expired()) return std::nullopt;
  Reset();
  cost_ = &cost;
  last_source_ = source;

  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  dist_[source] = 0.0;
  parent_edge_[source] = graph::kInvalidEdge;
  stamp_[source] = epoch_;
  queue.push({0.0, source});

  // Settled marker: we reuse stamp_ for "touched"; settled is implied by
  // popping an entry whose dist matches dist_ (lazy deletion).
  size_t pops = 0;
  while (!queue.empty()) {
    // Cooperative cancellation, amortised to every kCancelCheckPops pops.
    // With cancel == nullptr (every pre-deadline call site) this is one
    // never-taken branch: no arithmetic the result depends on, so the
    // deadline-free search stays bitwise identical.
    if (cancel != nullptr && (++pops & (kCancelCheckPops - 1)) == 0 &&
        cancel->Expired()) {
      return std::nullopt;
    }
    const QueueEntry top = queue.top();
    queue.pop();
    const VertexId u = top.vertex;
    if (stamp_[u] != epoch_ || top.dist > dist_[u]) continue;  // stale
    ++settled_count_;
    if (u == target) {
      return Reconstruct(target, top.dist);
    }
    for (EdgeId e : network_->OutEdges(u)) {
      if (bans != nullptr && bans->IsEdgeBanned(e)) continue;
      const auto& rec = network_->edge(e);
      const VertexId v = rec.to;
      if (bans != nullptr && bans->IsVertexBanned(v)) continue;
      const double w = cost(e);
      const double nd = top.dist + w;
      if (stamp_[v] != epoch_ || nd < dist_[v]) {
        stamp_[v] = epoch_;
        dist_[v] = nd;
        parent_edge_[v] = e;
        queue.push({nd, v});
      }
    }
  }
  if (target == graph::kInvalidVertex) return std::nullopt;  // one-to-all
  return std::nullopt;  // unreachable
}

double Dijkstra::DistanceTo(VertexId v) const {
  return stamp_[v] == epoch_ ? dist_[v] : kInf;
}

bool Dijkstra::Reached(VertexId v) const { return stamp_[v] == epoch_; }

std::optional<Path> Dijkstra::PathTo(VertexId v) const {
  if (!Reached(v)) return std::nullopt;
  return Reconstruct(v, dist_[v]);
}

Path Dijkstra::Reconstruct(VertexId target, double dist) const {
  Path path;
  path.cost = dist;
  // Walk parents backwards.
  std::vector<EdgeId> rev_edges;
  VertexId cur = target;
  while (parent_edge_[cur] != graph::kInvalidEdge) {
    const EdgeId e = parent_edge_[cur];
    rev_edges.push_back(e);
    cur = network_->edge(e).from;
  }
  path.edges.assign(rev_edges.rbegin(), rev_edges.rend());
  path.vertices.reserve(path.edges.size() + 1);
  path.vertices.push_back(cur);
  for (EdgeId e : path.edges) path.vertices.push_back(network_->edge(e).to);
  RecomputeTotals(*network_, &path);
  return path;
}

}  // namespace pathrank::routing
