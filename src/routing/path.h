// Path type and helpers shared by all routing algorithms.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/road_network.h"

namespace pathrank::routing {

using graph::EdgeId;
using graph::RoadNetwork;
using graph::VertexId;

/// A path is a vertex sequence v0..vZ and the Z connecting edge ids.
/// `cost` is the value under the metric the algorithm that produced the
/// path optimised (length, time, or a custom weighting); `length_m` and
/// `time_s` are always the physical totals.
struct Path {
  std::vector<VertexId> vertices;
  std::vector<EdgeId> edges;
  double cost = 0.0;
  double length_m = 0.0;
  double time_s = 0.0;

  bool empty() const { return vertices.empty(); }
  VertexId source() const { return vertices.front(); }
  VertexId destination() const { return vertices.back(); }
  size_t num_vertices() const { return vertices.size(); }
};

/// Builds a Path from an edge-id sequence, filling vertices and totals.
/// The edges must be contiguous (edge[i].to == edge[i+1].from).
Path PathFromEdges(const RoadNetwork& network, std::span<const EdgeId> edges);

/// True when no vertex repeats.
bool IsSimplePath(const Path& path);

/// True when both paths traverse the same vertex sequence.
bool SameVertexSequence(const Path& a, const Path& b);

/// Validates structural invariants (edges connect consecutive vertices,
/// totals match edge attributes). Returns an empty string when valid, else
/// a description of the first violation.
std::string ValidatePath(const RoadNetwork& network, const Path& path);

/// Recomputes length/time totals from the network (e.g. after surgery).
void RecomputeTotals(const RoadNetwork& network, Path* path);

}  // namespace pathrank::routing
