// Yen's algorithm for k shortest loopless paths, exposed both as a one-shot
// TopKShortestPaths() and as an incremental enumerator (YenEnumerator) that
// yields simple paths in non-decreasing cost order. The enumerator form is
// what the diversified top-k generator consumes: it keeps pulling paths
// until enough mutually-dissimilar ones have been accepted.
//
// Spur searches run through the pluggable ShortestPathEngine seam: by
// default an owned plain Dijkstra (bitwise identical to the pre-seam
// enumerator), or any caller-supplied engine — the serving layer passes an
// ALT engine over per-epoch landmark tables to accelerate cold routes.
// Because every engine is exact, the candidate sets are identical across
// engines whenever shortest paths are unique.
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <unordered_set>
#include <vector>

#include "routing/ban_set.h"
#include "routing/cost_model.h"
#include "routing/path.h"
#include "routing/shortest_path_engine.h"

namespace pathrank::routing {

/// Incremental k-shortest-simple-paths enumerator (Yen 1971, with the
/// standard root-path sharing optimisation). Create one per (source,
/// target) query; call Next() repeatedly.
class YenEnumerator {
 public:
  /// `cancel` (optional, borrowed — must outlive the enumerator) threads
  /// cooperative cancellation into every spur search. Once it expires,
  /// Next() returns std::nullopt; paths already accepted stay valid, which
  /// is what lets callers degrade to a partial candidate set.
  ///
  /// `engine` (optional, borrowed — must outlive the enumerator; not
  /// shareable across concurrent enumerators) runs every shortest-path
  /// search, including the spur searches. nullptr = an internally owned
  /// plain Dijkstra.
  YenEnumerator(const RoadNetwork& network, VertexId source, VertexId target,
                const EdgeCostFn& cost, const CancelToken* cancel = nullptr,
                ShortestPathEngine* engine = nullptr);

  /// Returns the next shortest simple path, or std::nullopt when the path
  /// space is exhausted or the cancel token has expired. The first call
  /// returns the shortest path.
  std::optional<Path> Next();

  /// Paths returned so far.
  const std::vector<Path>& accepted() const { return accepted_; }

  /// True when the path space is provably exhausted (every engine search
  /// that could extend it reported Unreachable and the candidate pool is
  /// empty). False after a cancellation — "ran out of time" is not "ran
  /// out of paths".
  bool exhausted() const { return exhausted_; }

  /// True once a search was cut short by the cancel token. Latched: no
  /// later Next() re-runs any search (the token is sticky, so none could
  /// make progress anyway).
  bool cancelled() const { return cancelled_; }

  /// The engine spur searches run through (diagnostics).
  const ShortestPathEngine& engine() const { return *engine_; }

 private:
  struct Candidate {
    double cost;
    // Deviation position: index into the parent path where the spur starts.
    size_t spur_index;
    Path path;
    bool operator<(const Candidate& o) const {
      if (cost != o.cost) return cost < o.cost;
      return path.vertices < o.path.vertices;
    }
  };

  /// Generates deviations of `base`. Returns false when a spur search was
  /// cancelled mid-pass (the pool may be missing cheaper deviations).
  bool GenerateSpurs(const Path& base);
  uint64_t HashVertexSeq(const std::vector<VertexId>& seq) const;

  const RoadNetwork* network_;
  VertexId source_;
  VertexId target_;
  EdgeCostFn cost_;
  const CancelToken* cancel_;
  std::unique_ptr<ShortestPathEngine> owned_engine_;
  ShortestPathEngine* engine_;
  BanSet bans_;
  std::vector<Path> accepted_;
  std::set<Candidate> candidates_;          // ordered pool (B set)
  std::unordered_set<uint64_t> seen_hash_;  // dedup of generated paths
  bool exhausted_ = false;
  bool cancelled_ = false;
  bool first_done_ = false;
};

/// One-shot convenience: up to k shortest simple paths in cost order.
/// When `cancel` expires mid-enumeration the paths found so far are
/// returned (possibly fewer than k, possibly zero). `engine` (optional,
/// borrowed) runs the spur searches; nullptr = owned plain Dijkstra.
std::vector<Path> TopKShortestPaths(const RoadNetwork& network,
                                    VertexId source, VertexId target,
                                    const EdgeCostFn& cost, int k,
                                    const CancelToken* cancel = nullptr,
                                    ShortestPathEngine* engine = nullptr);

}  // namespace pathrank::routing
