#include "routing/diversified.h"

#include <algorithm>

#include "common/logging.h"
#include "routing/path_similarity.h"
#include "routing/yen.h"

namespace pathrank::routing {

std::vector<Path> DiversifiedTopK(const RoadNetwork& network, VertexId source,
                                  VertexId target, const EdgeCostFn& cost,
                                  const DiversifiedOptions& options,
                                  const CancelToken* cancel,
                                  ShortestPathEngine* engine) {
  PR_CHECK(options.k >= 1);
  PR_CHECK(options.similarity_threshold >= 0.0 &&
           options.similarity_threshold <= 1.0);

  // The enumerator polls the token inside every spur search; an expired
  // token makes Next() return nullopt, which ends the loop below and
  // falls through to the normal pad-and-sort — so a cancelled run returns
  // a well-formed (just shorter) candidate set.
  YenEnumerator yen(network, source, target, cost, cancel, engine);
  std::vector<Path> accepted;
  std::vector<Path> rejected;
  int enumerated = 0;
  while (static_cast<int>(accepted.size()) < options.k &&
         enumerated < options.max_enumerated) {
    auto next = yen.Next();
    if (!next.has_value()) break;
    ++enumerated;
    bool diverse = true;
    for (const Path& a : accepted) {
      if (WeightedJaccard(network, next->edges, a.edges) >
          options.similarity_threshold) {
        diverse = false;
        break;
      }
    }
    if (diverse) {
      accepted.push_back(std::move(*next));
    } else if (options.pad_with_rejected) {
      rejected.push_back(std::move(*next));
    }
  }

  if (options.pad_with_rejected) {
    // Rejected paths arrive in cost order; take the cheapest ones.
    for (Path& p : rejected) {
      if (static_cast<int>(accepted.size()) >= options.k) break;
      accepted.push_back(std::move(p));
    }
    std::sort(accepted.begin(), accepted.end(),
              [](const Path& a, const Path& b) { return a.cost < b.cost; });
  }
  return accepted;
}

}  // namespace pathrank::routing
