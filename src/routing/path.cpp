#include "routing/path.h"

#include <unordered_set>

#include "common/string_util.h"

namespace pathrank::routing {

Path PathFromEdges(const RoadNetwork& network,
                   std::span<const EdgeId> edges) {
  Path path;
  if (edges.empty()) return path;
  path.edges.assign(edges.begin(), edges.end());
  path.vertices.reserve(edges.size() + 1);
  path.vertices.push_back(network.edge(edges.front()).from);
  for (EdgeId e : edges) {
    path.vertices.push_back(network.edge(e).to);
  }
  RecomputeTotals(network, &path);
  path.cost = path.length_m;
  return path;
}

bool IsSimplePath(const Path& path) {
  std::unordered_set<VertexId> seen;
  seen.reserve(path.vertices.size() * 2);
  for (VertexId v : path.vertices) {
    if (!seen.insert(v).second) return false;
  }
  return true;
}

bool SameVertexSequence(const Path& a, const Path& b) {
  return a.vertices == b.vertices;
}

std::string ValidatePath(const RoadNetwork& network, const Path& path) {
  if (path.vertices.empty() && path.edges.empty()) return "";
  if (path.vertices.size() != path.edges.size() + 1) {
    return "vertex/edge count mismatch";
  }
  double length = 0.0;
  double time = 0.0;
  for (size_t i = 0; i < path.edges.size(); ++i) {
    const auto& rec = network.edge(path.edges[i]);
    if (rec.from != path.vertices[i] || rec.to != path.vertices[i + 1]) {
      return StrFormat("edge %zu does not connect vertices %zu -> %zu", i, i,
                       i + 1);
    }
    length += rec.length_m;
    time += rec.travel_time_s;
  }
  if (std::abs(length - path.length_m) > 1e-6 * std::max(1.0, length)) {
    return "length_m does not match edge sum";
  }
  if (std::abs(time - path.time_s) > 1e-6 * std::max(1.0, time)) {
    return "time_s does not match edge sum";
  }
  return "";
}

void RecomputeTotals(const RoadNetwork& network, Path* path) {
  path->length_m = network.PathLengthMeters(path->edges);
  path->time_s = network.PathTravelTimeSeconds(path->edges);
}

}  // namespace pathrank::routing
