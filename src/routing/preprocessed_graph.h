// Immutable preprocessing artifact for goal-directed shortest-path
// acceleration, built once per (network, metric) pair — in serving, once
// per GraphSnapshot epoch (serving::GraphStore owns that lifecycle and
// rebuilds it in the background after every /v1/traffic or --watch-graph
// swap).
//
// Today the artifact is ALT landmark tables (Goldberg & Harrelson 2005):
// farthest-point-sampled landmark vertices plus exact distances from and
// to every landmark, giving the admissible, consistent lower bound
//
//   h(v) = max over landmarks L of
//          max( d(L, t) - d(L, v),  d(v, L) - d(t, L) ).
//
// The type is deliberately a plain data holder (no network pointer, no
// query scratch) so one instance can be shared read-only across any
// number of concurrent AltRouter/AltEngine instances and outlive the
// query that captured it. It is designed to grow — a CH-lite shortcut
// overlay would live here next to the landmark tables.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "routing/cost_model.h"
#include "routing/path.h"

namespace pathrank::routing {

/// Landmark distance tables for one (network, metric) pair. Immutable
/// after construction; share via shared_ptr<const PreprocessedGraph>.
class PreprocessedGraph {
 public:
  /// The metric kind the tables were built under. Lower bounds are only
  /// valid for queries under the same metric.
  enum class Metric { kLength, kTravelTime, kCustom };

  /// Preprocesses `num_landmarks` landmarks under `cost`: farthest-point
  /// selection from vertex 0, then one forward and one reverse
  /// one-to-all Dijkstra per landmark. O(L * E log V).
  PreprocessedGraph(const RoadNetwork& network, const EdgeCostFn& cost,
                    int num_landmarks = 8);

  /// The selected landmark vertices (diagnostics/tests).
  const std::vector<VertexId>& landmarks() const { return landmarks_; }

  /// Vertex count of the network the tables index — a cheap structural
  /// guard against pairing the artifact with the wrong snapshot.
  size_t num_vertices() const { return num_vertices_; }

  Metric metric() const { return metric_; }

  /// True when `cost` is provably the preprocessing metric (length /
  /// travel-time kinds over a same-sized network). Custom metrics cannot
  /// be compared through the type-erased view, so kCustom tables accept
  /// any custom cost — matching them is the caller's contract.
  bool CompatibleWith(const EdgeCostFn& cost) const;

  /// Admissible lower bound on d(v, target) under the preprocessing
  /// metric. Never negative; 0 when no landmark pair gives a finite
  /// bound.
  double LowerBound(VertexId v, VertexId target) const;

 private:
  Metric metric_;
  size_t num_vertices_;
  std::vector<VertexId> landmarks_;
  // dist_from_[l][v] = d(landmark_l -> v); dist_to_[l][v] = d(v -> landmark_l).
  std::vector<std::vector<double>> dist_from_;
  std::vector<std::vector<double>> dist_to_;
};

}  // namespace pathrank::routing
