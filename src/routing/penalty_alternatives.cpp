#include "routing/penalty_alternatives.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "routing/dijkstra.h"

namespace pathrank::routing {

std::vector<Path> PenaltyAlternatives(const graph::RoadNetwork& network,
                                      VertexId source, VertexId target,
                                      const EdgeCostFn& cost,
                                      const PenaltyOptions& options,
                                      const CancelToken* cancel) {
  PR_CHECK(options.k >= 1);
  PR_CHECK(options.penalty_factor > 1.0);

  // Working copy of the weights that accumulates penalties.
  std::vector<double> weights(network.num_edges());
  for (graph::EdgeId e = 0; e < network.num_edges(); ++e) {
    weights[e] = cost(e);
  }

  Dijkstra dijkstra(network);
  std::vector<Path> found;
  std::set<std::vector<VertexId>> seen;
  for (int iter = 0;
       iter < options.max_iterations &&
       static_cast<int>(found.size()) < options.k;
       ++iter) {
    // Per-iteration checkpoint on top of the per-pop polling inside the
    // search below: an expired token ends the loop with whatever distinct
    // paths have accumulated (the degraded partial set).
    if (cancel != nullptr && cancel->Expired()) break;
    const auto penalised = EdgeCostFn::Custom(network, weights);
    auto path = dijkstra.ShortestPath(source, target, penalised,
                                      /*bans=*/nullptr, cancel);
    if (!path.has_value() || path->edges.empty()) break;

    // Penalise the edges of this path (and their reverse twins, so the
    // next iteration does not simply drive the same street backwards).
    for (graph::EdgeId e : path->edges) {
      weights[e] *= options.penalty_factor;
      const auto& rec = network.edge(e);
      const graph::EdgeId twin = network.FindEdge(rec.to, rec.from);
      if (twin != graph::kInvalidEdge) {
        weights[twin] *= options.penalty_factor;
      }
    }

    if (!seen.insert(path->vertices).second) continue;  // repeat
    // Report the true (unpenalised) cost.
    double true_cost = 0.0;
    for (graph::EdgeId e : path->edges) true_cost += cost(e);
    path->cost = true_cost;
    found.push_back(std::move(*path));
  }
  std::sort(found.begin(), found.end(),
            [](const Path& a, const Path& b) { return a.cost < b.cost; });
  return found;
}

}  // namespace pathrank::routing
