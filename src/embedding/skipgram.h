// Skip-gram with negative sampling (SGNS) over random-walk corpora —
// the word2vec objective node2vec optimises.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "graph/types.h"
#include "nn/matrix.h"

namespace pathrank::embedding {

/// SGNS hyperparameters.
struct SkipGramConfig {
  /// Embedding dimensionality (the paper's M).
  int dims = 64;
  /// Symmetric context window.
  int window = 5;
  /// Negative samples per positive pair.
  int negatives = 5;
  /// Passes over the walk corpus.
  int epochs = 3;
  /// Initial SGD learning rate; decays linearly to lr0/100.
  double lr0 = 0.025;
  /// Exponent of the unigram negative-sampling distribution.
  double unigram_power = 0.75;
};

/// Trains SGNS embeddings for `vocab_size` tokens on `corpus`.
/// Returns the input-embedding matrix [vocab_size x dims].
nn::Matrix TrainSkipGram(const std::vector<std::vector<graph::VertexId>>& corpus,
                         size_t vocab_size, const SkipGramConfig& config,
                         pathrank::Rng& rng);

}  // namespace pathrank::embedding
