// End-to-end node2vec: biased walks + SGNS = the paper's "spatial network
// embedding" that initialises PathRank's vertex-embedding matrix B.
#pragma once

#include "embedding/random_walk.h"
#include "embedding/skipgram.h"
#include "graph/road_network.h"
#include "nn/matrix.h"

namespace pathrank::embedding {

/// Combined node2vec configuration.
struct Node2VecConfig {
  RandomWalkConfig walk;
  SkipGramConfig skipgram;
  uint64_t seed = 99;
};

/// Cosine similarity of two embedding rows (diagnostics & tests).
double CosineSimilarity(const nn::Matrix& embeddings, size_t a, size_t b);

/// Trains vertex embeddings for `network`. Returns [num_vertices x dims].
nn::Matrix TrainNode2Vec(const graph::RoadNetwork& network,
                         const Node2VecConfig& config);

}  // namespace pathrank::embedding
