#include "embedding/node2vec.h"

#include <cmath>

#include "common/logging.h"
#include "common/stopwatch.h"

namespace pathrank::embedding {

double CosineSimilarity(const nn::Matrix& embeddings, size_t a, size_t b) {
  PR_CHECK(a < embeddings.rows() && b < embeddings.rows());
  const float* va = embeddings.row(a);
  const float* vb = embeddings.row(b);
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (size_t d = 0; d < embeddings.cols(); ++d) {
    dot += static_cast<double>(va[d]) * vb[d];
    na += static_cast<double>(va[d]) * va[d];
    nb += static_cast<double>(vb[d]) * vb[d];
  }
  const double denom = std::sqrt(na) * std::sqrt(nb);
  return denom > 0.0 ? dot / denom : 0.0;
}

nn::Matrix TrainNode2Vec(const graph::RoadNetwork& network,
                         const Node2VecConfig& config) {
  pathrank::Stopwatch watch;
  pathrank::Rng rng(config.seed);
  RandomWalker walker(network, config.walk);
  const auto corpus = walker.GenerateCorpus(rng);
  PR_LOG_DEBUG << "node2vec: " << corpus.size() << " walks in "
               << watch.ElapsedMillis() << " ms";
  watch.Reset();
  nn::Matrix embeddings =
      TrainSkipGram(corpus, network.num_vertices(), config.skipgram, rng);
  PR_LOG_DEBUG << "node2vec: SGNS trained in " << watch.ElapsedMillis()
               << " ms";
  return embeddings;
}

}  // namespace pathrank::embedding
