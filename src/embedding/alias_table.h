// Walker's alias method: O(1) sampling from a fixed discrete distribution
// after O(n) construction. Used by the node2vec walker (neighbour choice)
// and the SGNS negative-sampling table.
#pragma once

#include <span>
#include <vector>

#include "common/rng.h"

namespace pathrank::embedding {

/// Immutable alias table over n outcomes.
class AliasTable {
 public:
  AliasTable() = default;

  /// Builds from non-negative weights (at least one strictly positive).
  explicit AliasTable(std::span<const double> weights);

  /// Draws an index in [0, size()).
  size_t Sample(pathrank::Rng& rng) const;

  size_t size() const { return prob_.size(); }
  bool empty() const { return prob_.empty(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace pathrank::embedding
