#include "embedding/alias_table.h"

#include <numeric>

#include "common/logging.h"

namespace pathrank::embedding {

AliasTable::AliasTable(std::span<const double> weights) {
  const size_t n = weights.size();
  PR_CHECK(n > 0) << "alias table over empty support";
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  PR_CHECK(total > 0.0) << "alias table needs positive total weight";

  prob_.resize(n);
  alias_.resize(n);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    PR_CHECK(weights[i] >= 0.0) << "negative weight";
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }

  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = scaled[l] + scaled[s] - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are 1.0 up to floating-point error.
  for (uint32_t i : large) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
  for (uint32_t i : small) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
}

size_t AliasTable::Sample(pathrank::Rng& rng) const {
  const size_t i = static_cast<size_t>(rng.NextBounded(prob_.size()));
  return rng.NextDouble() < prob_[i] ? i : alias_[i];
}

}  // namespace pathrank::embedding
