#include "embedding/random_walk.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace pathrank::embedding {

RandomWalker::RandomWalker(const graph::RoadNetwork& network,
                           const RandomWalkConfig& config)
    : network_(&network), config_(config) {
  PR_CHECK(config.p > 0.0 && config.q > 0.0);
  PR_CHECK(config.walk_length >= 2);
  first_order_.reserve(network.num_vertices());
  std::vector<double> weights;
  for (graph::VertexId v = 0; v < network.num_vertices(); ++v) {
    const auto edges = network.OutEdges(v);
    weights.resize(edges.size());
    for (size_t i = 0; i < edges.size(); ++i) {
      // Weighted node2vec: transition probability proportional to edge
      // speed, so walks flow along the road hierarchy and the embedding
      // geometry encodes it (original node2vec supports edge weights).
      const auto& rec = network.edge(edges[i]);
      weights[i] = rec.travel_time_s > 0.0
                       ? rec.length_m / rec.travel_time_s
                       : 1.0;
    }
    if (edges.empty()) {
      first_order_.emplace_back();
    } else {
      first_order_.emplace_back(weights);
    }
  }
  envelope_ = std::max({1.0, 1.0 / config.p, 1.0 / config.q});
}

graph::VertexId RandomWalker::SampleNeighbor(graph::VertexId prev,
                                             graph::VertexId cur,
                                             pathrank::Rng& rng) const {
  const auto edges = network_->OutEdges(cur);
  if (edges.empty()) return graph::kInvalidVertex;
  const AliasTable& table = first_order_[cur];
  // Rejection sampling of the second-order kernel.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const size_t pick = table.Sample(rng);
    const graph::VertexId x = network_->edge(edges[pick]).to;
    double bias;
    if (x == prev) {
      bias = 1.0 / config_.p;
    } else if (network_->FindEdge(prev, x) != graph::kInvalidEdge) {
      bias = 1.0;
    } else {
      bias = 1.0 / config_.q;
    }
    if (rng.NextDouble() * envelope_ <= bias) return x;
  }
  // Degenerate acceptance (extreme p/q): fall back to first-order.
  const size_t pick = table.Sample(rng);
  return network_->edge(edges[pick]).to;
}

std::vector<graph::VertexId> RandomWalker::Walk(graph::VertexId start,
                                                pathrank::Rng& rng) const {
  std::vector<graph::VertexId> walk;
  walk.reserve(static_cast<size_t>(config_.walk_length));
  walk.push_back(start);

  // First hop is first-order.
  const auto first_edges = network_->OutEdges(start);
  if (first_edges.empty()) return walk;
  const size_t pick = first_order_[start].Sample(rng);
  walk.push_back(network_->edge(first_edges[pick]).to);

  while (static_cast<int>(walk.size()) < config_.walk_length) {
    const graph::VertexId next =
        SampleNeighbor(walk[walk.size() - 2], walk.back(), rng);
    if (next == graph::kInvalidVertex) break;
    walk.push_back(next);
  }
  return walk;
}

std::vector<std::vector<graph::VertexId>> RandomWalker::GenerateCorpus(
    pathrank::Rng& rng) const {
  // Plan all start vertices serially (the shuffles consume the caller's
  // stream), then walk in parallel with one forked Rng stream per shard.
  // The corpus is deterministic for a fixed (seed, thread count).
  std::vector<graph::VertexId> order(network_->num_vertices());
  std::iota(order.begin(), order.end(), graph::VertexId{0});
  std::vector<graph::VertexId> starts;
  starts.reserve(order.size() *
                 static_cast<size_t>(config_.walks_per_vertex));
  for (int rep = 0; rep < config_.walks_per_vertex; ++rep) {
    rng.Shuffle(order);
    starts.insert(starts.end(), order.begin(), order.end());
  }

  const size_t num_shards = NumShardsFor(starts.size());
  std::vector<pathrank::Rng> shard_rngs;
  shard_rngs.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) shard_rngs.push_back(rng.Fork());

  std::vector<std::vector<graph::VertexId>> corpus(starts.size());
  ParallelForShards(
      0, starts.size(),
      [&](size_t shard, size_t lo, size_t hi) {
        pathrank::Rng& shard_rng = shard_rngs[shard];
        for (size_t i = lo; i < hi; ++i) {
          corpus[i] = Walk(starts[i], shard_rng);
        }
      },
      num_shards);
  return corpus;
}

}  // namespace pathrank::embedding
