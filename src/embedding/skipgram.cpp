#include "embedding/skipgram.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "embedding/alias_table.h"

namespace pathrank::embedding {
namespace {

/// Numerically safe logistic.
inline float Sigmoid(float x) {
  if (x > 8.0f) return 1.0f;
  if (x < -8.0f) return 0.0f;
  return 1.0f / (1.0f + std::exp(-x));
}

}  // namespace

nn::Matrix TrainSkipGram(
    const std::vector<std::vector<graph::VertexId>>& corpus,
    size_t vocab_size, const SkipGramConfig& config, pathrank::Rng& rng) {
  PR_CHECK(config.dims > 0);
  PR_CHECK(config.window >= 1);
  PR_CHECK(config.negatives >= 1);
  const auto dims = static_cast<size_t>(config.dims);

  // Unigram^power negative-sampling distribution.
  std::vector<double> counts(vocab_size, 0.0);
  size_t total_tokens = 0;
  for (const auto& walk : corpus) {
    for (graph::VertexId v : walk) {
      PR_CHECK(static_cast<size_t>(v) < vocab_size);
      counts[v] += 1.0;
      ++total_tokens;
    }
  }
  PR_CHECK(total_tokens > 0) << "empty corpus";
  for (double& c : counts) c = std::pow(c, config.unigram_power);
  const AliasTable negative_table(counts);

  // word2vec-style init: input U(-0.5/d, 0.5/d), output zero.
  nn::Matrix in(vocab_size, dims);
  nn::Matrix out(vocab_size, dims);
  nn::UniformInit(&in, 0.5f / static_cast<float>(dims), rng);

  const size_t pairs_per_epoch = total_tokens;  // approx, for LR decay
  const double total_steps =
      static_cast<double>(config.epochs) * static_cast<double>(pairs_per_epoch);
  double step = 0.0;

  std::vector<float> grad_center(dims);
  std::vector<size_t> walk_order(corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) walk_order[i] = i;

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(walk_order);
    for (const size_t wi : walk_order) {
      const auto& walk = corpus[wi];
      for (size_t pos = 0; pos < walk.size(); ++pos, ++step) {
        const double lr_frac = 1.0 - step / total_steps;
        const float lr = static_cast<float>(
            config.lr0 * std::max(lr_frac, 0.01));
        // Dynamic window shrink (word2vec trick): uniform in [1, window].
        const int w = 1 + static_cast<int>(rng.NextBounded(
                              static_cast<uint64_t>(config.window)));
        const size_t center = walk[pos];
        float* v_in = in.row(center);

        const size_t lo = pos >= static_cast<size_t>(w) ? pos - w : 0;
        const size_t hi = std::min(walk.size() - 1, pos + static_cast<size_t>(w));
        for (size_t ctx = lo; ctx <= hi; ++ctx) {
          if (ctx == pos) continue;
          std::fill(grad_center.begin(), grad_center.end(), 0.0f);
          // One positive + `negatives` negative targets.
          for (int neg = -1; neg < config.negatives; ++neg) {
            size_t target;
            float label;
            if (neg < 0) {
              target = walk[ctx];
              label = 1.0f;
            } else {
              target = negative_table.Sample(rng);
              if (target == center) continue;
              label = 0.0f;
            }
            float* v_out = out.row(target);
            float dot = 0.0f;
            for (size_t d = 0; d < dims; ++d) dot += v_in[d] * v_out[d];
            const float g = (label - Sigmoid(dot)) * lr;
            for (size_t d = 0; d < dims; ++d) {
              grad_center[d] += g * v_out[d];
              v_out[d] += g * v_in[d];
            }
          }
          for (size_t d = 0; d < dims; ++d) v_in[d] += grad_center[d];
        }
      }
    }
  }
  return in;
}

}  // namespace pathrank::embedding
