#include "embedding/skipgram.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "embedding/alias_table.h"

namespace pathrank::embedding {
namespace {

/// Numerically safe logistic.
inline float Sigmoid(float x) {
  if (x > 8.0f) return 1.0f;
  if (x < -8.0f) return 0.0f;
  return 1.0f / (1.0f + std::exp(-x));
}

/// SGD state shared by the serial and data-parallel paths.
struct SgnsContext {
  const std::vector<std::vector<graph::VertexId>>* corpus = nullptr;
  const SkipGramConfig* config = nullptr;
  const AliasTable* negative_table = nullptr;
  size_t dims = 0;
  double total_steps = 0.0;
};

/// Runs the word2vec SGNS inner loop over walks
/// walk_order[[begin, end)], updating `in`/`out` in place. `step_base` is
/// the global token index of walk_order[begin] — the linear lr decay then
/// matches the serial schedule exactly no matter how the range is
/// sharded.
void TrainWalkRange(const SgnsContext& ctx,
                    const std::vector<size_t>& walk_order, size_t begin,
                    size_t end, double step_base, nn::Matrix* in,
                    nn::Matrix* out, pathrank::Rng& rng,
                    std::vector<float>& grad_center) {
  const SkipGramConfig& config = *ctx.config;
  const size_t dims = ctx.dims;
  double step = step_base;
  for (size_t wi = begin; wi < end; ++wi) {
    const auto& walk = (*ctx.corpus)[walk_order[wi]];
    for (size_t pos = 0; pos < walk.size(); ++pos, ++step) {
      const double lr_frac = 1.0 - step / ctx.total_steps;
      const float lr =
          static_cast<float>(config.lr0 * std::max(lr_frac, 0.01));
      // Dynamic window shrink (word2vec trick): uniform in [1, window].
      const int w = 1 + static_cast<int>(rng.NextBounded(
                            static_cast<uint64_t>(config.window)));
      const size_t center = walk[pos];
      float* v_in = in->row(center);

      const size_t lo = pos >= static_cast<size_t>(w) ? pos - w : 0;
      const size_t hi =
          std::min(walk.size() - 1, pos + static_cast<size_t>(w));
      for (size_t ctx_pos = lo; ctx_pos <= hi; ++ctx_pos) {
        if (ctx_pos == pos) continue;
        std::fill(grad_center.begin(), grad_center.end(), 0.0f);
        // One positive + `negatives` negative targets.
        for (int neg = -1; neg < config.negatives; ++neg) {
          size_t target;
          float label;
          if (neg < 0) {
            target = walk[ctx_pos];
            label = 1.0f;
          } else {
            target = ctx.negative_table->Sample(rng);
            if (target == center) continue;
            label = 0.0f;
          }
          float* v_out = out->row(target);
          float dot = 0.0f;
          for (size_t d = 0; d < dims; ++d) dot += v_in[d] * v_out[d];
          const float g = (label - Sigmoid(dot)) * lr;
          for (size_t d = 0; d < dims; ++d) {
            grad_center[d] += g * v_out[d];
            v_out[d] += g * v_in[d];
          }
        }
        for (size_t d = 0; d < dims; ++d) v_in[d] += grad_center[d];
      }
    }
  }
}

}  // namespace

nn::Matrix TrainSkipGram(
    const std::vector<std::vector<graph::VertexId>>& corpus,
    size_t vocab_size, const SkipGramConfig& config, pathrank::Rng& rng) {
  PR_CHECK(config.dims > 0);
  PR_CHECK(config.window >= 1);
  PR_CHECK(config.negatives >= 1);
  const auto dims = static_cast<size_t>(config.dims);

  // Unigram^power negative-sampling distribution.
  std::vector<double> counts(vocab_size, 0.0);
  size_t total_tokens = 0;
  for (const auto& walk : corpus) {
    for (graph::VertexId v : walk) {
      PR_CHECK(static_cast<size_t>(v) < vocab_size);
      counts[v] += 1.0;
      ++total_tokens;
    }
  }
  PR_CHECK(total_tokens > 0) << "empty corpus";
  for (double& c : counts) c = std::pow(c, config.unigram_power);
  const AliasTable negative_table(counts);

  // word2vec-style init: input U(-0.5/d, 0.5/d), output zero.
  nn::Matrix in(vocab_size, dims);
  nn::Matrix out(vocab_size, dims);
  nn::UniformInit(&in, 0.5f / static_cast<float>(dims), rng);

  SgnsContext ctx;
  ctx.corpus = &corpus;
  ctx.config = &config;
  ctx.negative_table = &negative_table;
  ctx.dims = dims;
  ctx.total_steps = static_cast<double>(config.epochs) *
                    static_cast<double>(total_tokens);

  std::vector<size_t> walk_order(corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) walk_order[i] = i;
  // Token-prefix counts over the shuffled order, recomputed per epoch:
  // pref[i] is the number of tokens in walks before position i, which
  // anchors each shard's lr schedule at its exact serial step.
  std::vector<size_t> pref(corpus.size() + 1, 0);

  // Data-parallel local SGD: each round, every shard trains on a private
  // copy of the matrices over its slice of walks (own Rng stream), then
  // the copies are averaged in shard order. One shard degenerates to the
  // classic serial loop on the canonical matrices. Deterministic for a
  // fixed (seed, thread count); rounds are short enough that the averaged
  // trajectory tracks serial SGD closely.
  const size_t max_shards = NumShardsFor(corpus.size());
  constexpr size_t kWalksPerShardPerRound = 64;
  // Averaging traffic is O(vocab * dims) per round regardless of the SGD
  // work done, so also require ~4 round tokens per vocabulary row; for
  // large graphs this grows the round instead of letting the averaging
  // dominate.
  const size_t avg_walk_tokens =
      std::max<size_t>(1, total_tokens / corpus.size());
  const size_t min_round_walks = 4 * vocab_size / avg_walk_tokens + 1;
  const size_t round_walks =
      max_shards == 1
          ? corpus.size()
          : std::max(max_shards * kWalksPerShardPerRound, min_round_walks);

  std::vector<nn::Matrix> shard_in(max_shards);
  std::vector<nn::Matrix> shard_out(max_shards);
  std::vector<std::vector<float>> shard_grad(max_shards,
                                             std::vector<float>(dims));
  std::vector<pathrank::Rng> shard_rngs;

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(walk_order);
    for (size_t i = 0; i < walk_order.size(); ++i) {
      pref[i + 1] = pref[i] + corpus[walk_order[i]].size();
    }
    const double epoch_base =
        static_cast<double>(epoch) * static_cast<double>(total_tokens);

    for (size_t r0 = 0; r0 < walk_order.size(); r0 += round_walks) {
      const size_t r1 = std::min(walk_order.size(), r0 + round_walks);
      const size_t shards = NumShardsFor(r1 - r0, max_shards);
      shard_rngs.clear();
      for (size_t s = 0; s < shards; ++s) shard_rngs.push_back(rng.Fork());

      if (shards == 1) {
        TrainWalkRange(ctx, walk_order, r0, r1,
                       epoch_base + static_cast<double>(pref[r0]), &in,
                       &out, shard_rngs[0], shard_grad[0]);
        continue;
      }

      for (size_t s = 0; s < shards; ++s) {
        shard_in[s] = in;
        shard_out[s] = out;
      }
      ParallelForShards(
          r0, r1,
          [&](size_t s, size_t lo, size_t hi) {
            TrainWalkRange(ctx, walk_order, lo, hi,
                           epoch_base + static_cast<double>(pref[lo]),
                           &shard_in[s], &shard_out[s], shard_rngs[s],
                           shard_grad[s]);
          },
          shards);
      // Shard-ordered averaging back onto the canonical matrices.
      const float inv = 1.0f / static_cast<float>(shards);
      in = std::move(shard_in[0]);
      out = std::move(shard_out[0]);
      for (size_t s = 1; s < shards; ++s) {
        in.Add(shard_in[s]);
        out.Add(shard_out[s]);
      }
      in.Scale(inv);
      out.Scale(inv);
    }
  }
  return in;
}

}  // namespace pathrank::embedding
