// node2vec biased second-order random walks (Grover & Leskovec 2016).
//
// Neighbour proposal uses a per-vertex first-order alias table; the
// second-order (p, q) bias is applied by rejection sampling with envelope
// max(1, 1/p, 1/q), which avoids the O(sum_v deg(v)^2) memory of
// precomputing per-edge alias tables while remaining exact.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "embedding/alias_table.h"
#include "graph/road_network.h"

namespace pathrank::embedding {

/// Walk generation parameters.
struct RandomWalkConfig {
  /// Walk length in vertices (including the start vertex).
  int walk_length = 40;
  /// Walks started per vertex.
  int walks_per_vertex = 10;
  /// Return parameter: likelihood of revisiting the previous vertex.
  double p = 1.0;
  /// In-out parameter: q < 1 biases outward (DFS-like) exploration, which
  /// suits road networks.
  double q = 0.5;
};

/// Generates node2vec walks over the network.
class RandomWalker {
 public:
  RandomWalker(const graph::RoadNetwork& network,
               const RandomWalkConfig& config);

  /// One walk starting at `start`; length <= walk_length (shorter only at
  /// dead ends). The walk is a vertex-id sequence.
  std::vector<graph::VertexId> Walk(graph::VertexId start,
                                    pathrank::Rng& rng) const;

  /// walks_per_vertex walks from every vertex, in shuffled vertex order.
  std::vector<std::vector<graph::VertexId>> GenerateCorpus(
      pathrank::Rng& rng) const;

 private:
  graph::VertexId SampleNeighbor(graph::VertexId prev, graph::VertexId cur,
                                 pathrank::Rng& rng) const;

  const graph::RoadNetwork* network_;
  RandomWalkConfig config_;
  std::vector<AliasTable> first_order_;  // per-vertex neighbour sampler
  double envelope_;                      // rejection envelope
};

}  // namespace pathrank::embedding
