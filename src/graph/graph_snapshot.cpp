#include "graph/graph_snapshot.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"

namespace pathrank::graph {

GraphSnapshot::GraphSnapshot(RoadNetwork network, uint64_t epoch,
                             std::vector<uint8_t> closed)
    : network_(std::move(network)),
      epoch_(epoch),
      closed_(std::move(closed)) {
  PR_CHECK(closed_.size() == network_.num_edges())
      << "closed mask must cover every edge";
}

std::shared_ptr<const GraphSnapshot> GraphSnapshot::Wrap(
    RoadNetwork network) {
  std::vector<uint8_t> closed(network.num_edges(), 0);
  return std::make_shared<const GraphSnapshot>(std::move(network), 0,
                                               std::move(closed));
}

size_t GraphSnapshot::num_closed() const {
  return static_cast<size_t>(
      std::count_if(closed_.begin(), closed_.end(),
                    [](uint8_t c) { return c != 0; }));
}

std::shared_ptr<const GraphSnapshot> GraphSnapshot::WithTraffic(
    std::span<const TrafficUpdate> updates) const {
  // Copy the current state, patch it, rebuild the CSR. Edge ids are
  // positional in `records`, so ids (and every in-flight response that
  // names them) stay valid across the rebuild.
  std::vector<Coordinate> coordinates(network_.num_vertices());
  for (VertexId v = 0; v < network_.num_vertices(); ++v) {
    coordinates[v] = network_.coordinate(v);
  }
  std::vector<EdgeRecord> records;
  records.reserve(network_.num_edges());
  for (EdgeId e = 0; e < network_.num_edges(); ++e) {
    records.push_back(network_.edge(e));
  }
  std::vector<uint8_t> closed = closed_;
  for (const TrafficUpdate& update : updates) {
    PR_CHECK(update.edge < records.size())
        << "traffic update for unknown edge " << update.edge;
    if (update.has_travel_time) {
      PR_CHECK(update.travel_time_s > 0.0 &&
               std::isfinite(update.travel_time_s))
          << "traffic update travel time must be positive and finite";
      records[update.edge].travel_time_s = update.travel_time_s;
    }
    if (update.has_closed) closed[update.edge] = update.closed ? 1 : 0;
  }
  RoadNetwork next = RoadNetworkBuilder::BuildFrom(std::move(coordinates),
                                                   std::move(records), closed);
  return std::make_shared<const GraphSnapshot>(std::move(next), epoch_ + 1,
                                               std::move(closed));
}

std::shared_ptr<const GraphSnapshot> GraphSnapshot::WithNetwork(
    RoadNetwork network) const {
  std::vector<uint8_t> closed(network.num_edges(), 0);
  return std::make_shared<const GraphSnapshot>(std::move(network), epoch_ + 1,
                                               std::move(closed));
}

}  // namespace pathrank::graph
