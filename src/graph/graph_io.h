// Persistence for road networks: a human-readable CSV pair
// (vertices.csv + edges.csv) and a compact binary format.
#pragma once

#include <string>

#include "graph/road_network.h"

namespace pathrank::graph {

/// Writes `<prefix>_vertices.csv` (id,lat,lon) and
/// `<prefix>_edges.csv` (from,to,length_m,travel_time_s,category).
void SaveNetworkCsv(const RoadNetwork& network, const std::string& prefix);

/// Loads a network previously written by SaveNetworkCsv. Throws
/// std::runtime_error naming the file, line and offending token on
/// malformed rows.
RoadNetwork LoadNetworkCsv(const std::string& prefix);

/// Loads a network from a single edges CSV (the `<prefix>_edges.csv`
/// half of the pair: from,to,length_m,travel_time_s,category with a
/// header row). The vertex set is inferred as [0, max referenced id] and
/// every coordinate defaults to (0, 0) — sufficient for the travel-time
/// candidate generation and serving paths (Dijkstra/Yen need topology
/// and costs only; a zero-coordinate heuristic is admissible), not for
/// coordinate-based tooling like map matching. Throws std::runtime_error
/// with file:line:token context on malformed rows, and when the file has
/// no edge rows at all.
RoadNetwork LoadNetworkEdgesCsv(const std::string& path);

/// Writes a single binary file (magic + counts + raw arrays).
void SaveNetworkBinary(const RoadNetwork& network, const std::string& path);

/// Loads a binary network file; throws std::runtime_error on format errors.
RoadNetwork LoadNetworkBinary(const std::string& path);

}  // namespace pathrank::graph
