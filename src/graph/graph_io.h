// Persistence for road networks: a human-readable CSV pair
// (vertices.csv + edges.csv) and a compact binary format.
#pragma once

#include <string>

#include "graph/road_network.h"

namespace pathrank::graph {

/// Writes `<prefix>_vertices.csv` (id,lat,lon) and
/// `<prefix>_edges.csv` (from,to,length_m,travel_time_s,category).
void SaveNetworkCsv(const RoadNetwork& network, const std::string& prefix);

/// Loads a network previously written by SaveNetworkCsv.
RoadNetwork LoadNetworkCsv(const std::string& prefix);

/// Writes a single binary file (magic + counts + raw arrays).
void SaveNetworkBinary(const RoadNetwork& network, const std::string& path);

/// Loads a binary network file; throws std::runtime_error on format errors.
RoadNetwork LoadNetworkBinary(const std::string& path);

}  // namespace pathrank::graph
