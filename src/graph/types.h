// Fundamental identifier and geometry types for spatial road networks.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

namespace pathrank::graph {

using VertexId = uint32_t;
using EdgeId = uint32_t;

inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

/// Functional road classes, ordered from highest to lowest capacity.
/// Mirrors the OSM highway hierarchy the paper's North Jutland network uses.
enum class RoadCategory : uint8_t {
  kMotorway = 0,
  kTrunk = 1,
  kPrimary = 2,
  kSecondary = 3,
  kTertiary = 4,
  kResidential = 5,
  kService = 6,
};

inline constexpr int kNumRoadCategories = 7;

/// Default free-flow speed (km/h) per category, used to derive travel times
/// when a speed is not given explicitly.
double DefaultSpeedKmh(RoadCategory category);

/// Human-readable category name ("motorway", ...).
std::string RoadCategoryName(RoadCategory category);

/// Parses a category name; throws std::invalid_argument on unknown names.
RoadCategory ParseRoadCategory(const std::string& name);

/// WGS84 geographic coordinate.
struct Coordinate {
  double lat = 0.0;
  double lon = 0.0;

  bool operator==(const Coordinate& other) const {
    return lat == other.lat && lon == other.lon;
  }
};

/// Great-circle distance in metres (haversine formula).
double HaversineMeters(const Coordinate& a, const Coordinate& b);

/// Equirectangular approximation of distance in metres; accurate to <0.5%
/// at regional scale and several times faster than haversine. Used by the
/// A* heuristic and the spatial index.
double FastDistanceMeters(const Coordinate& a, const Coordinate& b);

/// Axis-aligned geographic bounding box.
struct BoundingBox {
  double min_lat = std::numeric_limits<double>::infinity();
  double min_lon = std::numeric_limits<double>::infinity();
  double max_lat = -std::numeric_limits<double>::infinity();
  double max_lon = -std::numeric_limits<double>::infinity();

  /// Grows the box to include `c`.
  void Extend(const Coordinate& c) {
    min_lat = std::min(min_lat, c.lat);
    max_lat = std::max(max_lat, c.lat);
    min_lon = std::min(min_lon, c.lon);
    max_lon = std::max(max_lon, c.lon);
  }

  bool Contains(const Coordinate& c) const {
    return c.lat >= min_lat && c.lat <= max_lat && c.lon >= min_lon &&
           c.lon <= max_lon;
  }
};

}  // namespace pathrank::graph
