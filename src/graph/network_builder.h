// Synthetic spatial road-network generator.
//
// The paper evaluates on the North Jutland (Denmark) road network extracted
// from OpenStreetMap. That data is not redistributable here, so this module
// generates a structurally comparable stand-in: an irregular grid street
// fabric with a functional hierarchy (residential fabric, arterial rows and
// columns, a motorway spine with sparse ramps), jittered geometry, randomly
// deleted segments (rivers, dead ends), and diagonal shortcuts. The result
// has realistic degree distribution (mostly 3-4-way intersections), edge
// length distribution, and hierarchical shortest-path structure, which is
// what the routing, embedding and ranking code paths depend on.
//
// Generation is deterministic under `seed`.
#pragma once

#include <cstdint>

#include "graph/road_network.h"

namespace pathrank::graph {

/// Parameters for the synthetic network. Defaults produce a ~2.4k-vertex
/// regional network in a few milliseconds.
struct SyntheticNetworkConfig {
  /// Grid dimensions; the vertex count is approximately rows * cols.
  int rows = 48;
  int cols = 50;
  /// Nominal spacing between adjacent intersections, metres.
  double spacing_m = 450.0;
  /// Coordinate jitter as a fraction of spacing (0 = perfect grid).
  double jitter = 0.35;
  /// Probability that a grid segment is absent (water, missing link).
  double deletion_prob = 0.12;
  /// Probability of adding a diagonal shortcut at a grid cell.
  double diagonal_prob = 0.06;
  /// Every `arterial_every`-th row/column is upgraded to an arterial.
  int arterial_every = 6;
  /// Whether to add a motorway spine along the middle row with ramps.
  bool motorway = true;
  /// Geographic anchor of the south-west corner (defaults to North Jutland).
  double origin_lat = 56.85;
  double origin_lon = 9.30;
  /// RNG seed.
  uint64_t seed = 42;
};

/// Generates a connected synthetic road network. All roads are
/// bidirectional (two directed edges); the network is strongly connected.
RoadNetwork BuildSyntheticNetwork(const SyntheticNetworkConfig& config);

/// Convenience: small deterministic network for unit tests
/// (8 x 8 grid, no deletions). Strongly connected.
RoadNetwork BuildTestNetwork(uint64_t seed = 7);

}  // namespace pathrank::graph
