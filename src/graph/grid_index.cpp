#include "graph/grid_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace pathrank::graph {

const std::vector<VertexId> GridIndex::kEmptyCell;

namespace {
constexpr double kMetersPerDegLat = 111320.0;
}

GridIndex::GridIndex(const RoadNetwork& network, double cell_m)
    : network_(&network) {
  const BoundingBox& bb = network.bounds();
  min_lat_ = bb.min_lat;
  min_lon_ = bb.min_lon;
  cell_deg_lat_ = cell_m / kMetersPerDegLat;
  const double mean_lat = 0.5 * (bb.min_lat + bb.max_lat);
  const double meters_per_deg_lon =
      kMetersPerDegLat * std::cos(mean_lat * 3.14159265358979323846 / 180.0);
  cell_deg_lon_ = cell_m / std::max(1.0, meters_per_deg_lon);

  if (network.num_vertices() == 0) return;
  rows_ = static_cast<int>((bb.max_lat - bb.min_lat) / cell_deg_lat_) + 1;
  cols_ = static_cast<int>((bb.max_lon - bb.min_lon) / cell_deg_lon_) + 1;
  cells_.resize(static_cast<size_t>(rows_) * cols_);
  for (VertexId v = 0; v < network.num_vertices(); ++v) {
    const Coordinate& c = network.coordinate(v);
    const int r = CellRow(c.lat);
    const int col = CellCol(c.lon);
    cells_[static_cast<size_t>(r) * cols_ + col].push_back(v);
  }
}

int GridIndex::CellRow(double lat) const {
  const int r = static_cast<int>((lat - min_lat_) / cell_deg_lat_);
  return std::clamp(r, 0, rows_ - 1);
}

int GridIndex::CellCol(double lon) const {
  const int c = static_cast<int>((lon - min_lon_) / cell_deg_lon_);
  return std::clamp(c, 0, cols_ - 1);
}

const std::vector<VertexId>& GridIndex::Cell(int row, int col) const {
  if (row < 0 || row >= rows_ || col < 0 || col >= cols_) return kEmptyCell;
  return cells_[static_cast<size_t>(row) * cols_ + col];
}

VertexId GridIndex::NearestVertex(const Coordinate& query) const {
  if (network_->num_vertices() == 0) return kInvalidVertex;
  const int r0 = CellRow(query.lat);
  const int c0 = CellCol(query.lon);

  VertexId best = kInvalidVertex;
  double best_d = std::numeric_limits<double>::infinity();
  const double cell_m = cell_deg_lat_ * kMetersPerDegLat;

  const int max_ring = std::max(rows_, cols_);
  for (int ring = 0; ring <= max_ring; ++ring) {
    // Once a candidate exists and the next ring cannot contain anything
    // closer, stop. A vertex in ring k is at least (k-1)*cell_m away.
    if (best != kInvalidVertex &&
        static_cast<double>(ring - 1) * cell_m > best_d) {
      break;
    }
    for (int dr = -ring; dr <= ring; ++dr) {
      for (int dc = -ring; dc <= ring; ++dc) {
        if (std::max(std::abs(dr), std::abs(dc)) != ring) continue;
        for (VertexId v : Cell(r0 + dr, c0 + dc)) {
          const double d =
              FastDistanceMeters(query, network_->coordinate(v));
          if (d < best_d) {
            best_d = d;
            best = v;
          }
        }
      }
    }
  }
  return best;
}

std::vector<VertexId> GridIndex::VerticesWithin(const Coordinate& query,
                                                double radius_m) const {
  std::vector<VertexId> out;
  if (network_->num_vertices() == 0) return out;
  const double cell_m = cell_deg_lat_ * kMetersPerDegLat;
  const int ring = static_cast<int>(radius_m / cell_m) + 1;
  const int r0 = CellRow(query.lat);
  const int c0 = CellCol(query.lon);
  for (int dr = -ring; dr <= ring; ++dr) {
    for (int dc = -ring; dc <= ring; ++dc) {
      for (VertexId v : Cell(r0 + dr, c0 + dc)) {
        if (FastDistanceMeters(query, network_->coordinate(v)) <= radius_m) {
          out.push_back(v);
        }
      }
    }
  }
  return out;
}

}  // namespace pathrank::graph
