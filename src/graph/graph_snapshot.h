// Epoch-versioned immutable view of the road network — the graph-side
// analogue of serving::ModelSnapshot. A GraphSnapshot pins one
// RoadNetwork plus a monotonically increasing epoch; live-traffic
// ingestion never mutates a snapshot, it derives a NEW one (copy-on-write
// rebuild via WithTraffic) at epoch + 1 and the serving layer swaps the
// shared pointer. Every query that captured the old snapshot keeps a
// reference, so the old graph is freed only after the last in-flight
// query releases it.
//
// Closures keep their EdgeRecord (edge ids are stable across traffic
// epochs — a client can keep referring to edge 17 after any number of
// batches) but the closed edge appears in no adjacency row, so routing
// never traverses it and FindEdge cannot return it. Reopening an edge
// (closed: false) restores it to the adjacency at the next rebuild.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/road_network.h"
#include "graph/types.h"

namespace pathrank::graph {

/// One edge-level change inside a traffic batch. A single update may
/// carry a new free-flow travel time, a closure/reopening, or both; the
/// `has_*` flags distinguish "absent" from sentinel values so the HTTP
/// layer never smuggles a 0 through as "no change".
struct TrafficUpdate {
  EdgeId edge = kInvalidEdge;
  double travel_time_s = 0.0;  ///< meaningful only when has_travel_time
  bool has_travel_time = false;
  bool has_closed = false;
  bool closed = false;  ///< meaningful only when has_closed
};

/// Immutable (network, epoch, closed-set) triple. Construction goes
/// through Wrap (epoch 0, everything open) or WithTraffic / WithNetwork
/// (epoch + 1); the class itself never changes after construction, so a
/// shared_ptr<const GraphSnapshot> is safe to read from any thread.
class GraphSnapshot {
 public:
  GraphSnapshot(RoadNetwork network, uint64_t epoch,
                std::vector<uint8_t> closed);

  /// Epoch-0 snapshot over `network` with every edge open.
  static std::shared_ptr<const GraphSnapshot> Wrap(RoadNetwork network);

  const RoadNetwork& network() const { return network_; }
  uint64_t epoch() const { return epoch_; }

  /// Whether edge `e` is currently closed (excluded from adjacency).
  bool IsClosed(EdgeId e) const { return closed_[e] != 0; }
  size_t num_closed() const;

  /// Copy-on-write rebuild: returns a NEW snapshot at epoch() + 1 with
  /// `updates` applied on top of this one. Updates must be pre-validated
  /// (edge ids in range, travel times positive and finite — the serving
  /// layer's GraphStore does this); violations are programming errors
  /// and PR_CHECK-fail. The receiver is left untouched.
  std::shared_ptr<const GraphSnapshot> WithTraffic(
      std::span<const TrafficUpdate> updates) const;

  /// Full replacement (the --watch-graph reload path): a new snapshot at
  /// epoch() + 1 over `network`, closed set reset to all-open.
  std::shared_ptr<const GraphSnapshot> WithNetwork(RoadNetwork network) const;

 private:
  RoadNetwork network_;
  uint64_t epoch_ = 0;
  /// One byte per edge id; nonzero = closed. vector<uint8_t> rather than
  /// vector<bool> so concurrent readers touch whole bytes.
  std::vector<uint8_t> closed_;
};

}  // namespace pathrank::graph
