#include "graph/network_builder.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace pathrank::graph {
namespace {

// Metres per degree of latitude (approximately constant).
constexpr double kMetersPerDegLat = 111320.0;

struct GridGeometry {
  int rows;
  int cols;
  std::vector<Coordinate> coords;  // rows * cols entries, row-major.

  int Index(int r, int c) const { return r * cols + c; }
};

GridGeometry MakeGeometry(const SyntheticNetworkConfig& cfg, Rng& rng) {
  GridGeometry geo;
  geo.rows = cfg.rows;
  geo.cols = cfg.cols;
  geo.coords.resize(static_cast<size_t>(cfg.rows) * cfg.cols);
  const double meters_per_deg_lon =
      kMetersPerDegLat *
      std::cos(cfg.origin_lat * 3.14159265358979323846 / 180.0);
  for (int r = 0; r < cfg.rows; ++r) {
    for (int c = 0; c < cfg.cols; ++c) {
      const double jx = rng.NextGaussian(0.0, cfg.jitter * cfg.spacing_m);
      const double jy = rng.NextGaussian(0.0, cfg.jitter * cfg.spacing_m);
      Coordinate coord;
      coord.lat = cfg.origin_lat + (r * cfg.spacing_m + jy) / kMetersPerDegLat;
      coord.lon = cfg.origin_lon + (c * cfg.spacing_m + jx) / meters_per_deg_lon;
      geo.coords[static_cast<size_t>(geo.Index(r, c))] = coord;
    }
  }
  return geo;
}

RoadCategory CategoryFor(const SyntheticNetworkConfig& cfg, int fixed_index,
                         bool horizontal, int row, int col, Rng& rng) {
  // The middle row hosts the motorway spine (horizontal edges only).
  if (cfg.motorway && horizontal && row == cfg.rows / 2) {
    return RoadCategory::kMotorway;
  }
  const int line = horizontal ? row : col;
  if (cfg.arterial_every > 0 && line % cfg.arterial_every == 0) {
    // Alternate primary/secondary arterials for variety.
    return (line / cfg.arterial_every) % 2 == 0 ? RoadCategory::kPrimary
                                                : RoadCategory::kSecondary;
  }
  (void)fixed_index;
  // Base fabric: mostly residential with some tertiary connectors.
  return rng.NextBernoulli(0.3) ? RoadCategory::kTertiary
                                : RoadCategory::kResidential;
}

/// Connects all weakly connected components by adding the shortest
/// inter-component link until one component remains.
void EnsureConnected(RoadNetworkBuilder& builder,
                     const std::vector<Coordinate>& coords,
                     std::vector<std::pair<VertexId, VertexId>>& edges_seen) {
  const size_t n = coords.size();
  // Union-find over undirected adjacency.
  std::vector<uint32_t> parent(n);
  for (size_t i = 0; i < n; ++i) parent[i] = static_cast<uint32_t>(i);
  std::vector<uint32_t> rank_(n, 0);
  auto find = [&](uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](uint32_t a, uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (rank_[a] < rank_[b]) std::swap(a, b);
    parent[b] = a;
    if (rank_[a] == rank_[b]) ++rank_[a];
  };
  for (const auto& [u, v] : edges_seen) unite(u, v);

  // Collect component members.
  while (true) {
    std::vector<uint32_t> roots;
    std::vector<int> root_of(n);
    for (size_t i = 0; i < n; ++i) {
      const uint32_t r = find(static_cast<uint32_t>(i));
      root_of[i] = static_cast<int>(r);
    }
    for (size_t i = 0; i < n; ++i) {
      if (root_of[i] == static_cast<int>(i)) roots.push_back(static_cast<uint32_t>(i));
    }
    if (roots.size() <= 1) break;

    // Link the second component to the first via the closest vertex pair.
    const uint32_t main_root = find(0);
    uint32_t other_root = kInvalidVertex;
    for (uint32_t r : roots) {
      if (r != main_root) {
        other_root = r;
        break;
      }
    }
    double best = std::numeric_limits<double>::infinity();
    VertexId best_a = kInvalidVertex;
    VertexId best_b = kInvalidVertex;
    for (size_t a = 0; a < n; ++a) {
      if (find(static_cast<uint32_t>(a)) != main_root) continue;
      for (size_t b = 0; b < n; ++b) {
        if (find(static_cast<uint32_t>(b)) != other_root) continue;
        const double d = FastDistanceMeters(coords[a], coords[b]);
        if (d < best) {
          best = d;
          best_a = static_cast<VertexId>(a);
          best_b = static_cast<VertexId>(b);
        }
      }
    }
    PR_CHECK(best_a != kInvalidVertex);
    builder.AddBidirectionalEdge(best_a, best_b, std::max(best, 1.0),
                                 RoadCategory::kTertiary);
    edges_seen.emplace_back(best_a, best_b);
    unite(best_a, best_b);
  }
}

}  // namespace

RoadNetwork BuildSyntheticNetwork(const SyntheticNetworkConfig& cfg) {
  PR_CHECK(cfg.rows >= 2 && cfg.cols >= 2) << "grid too small";
  Rng rng(cfg.seed);
  const GridGeometry geo = MakeGeometry(cfg, rng);

  RoadNetworkBuilder builder;
  for (const Coordinate& c : geo.coords) builder.AddVertex(c);

  std::vector<std::pair<VertexId, VertexId>> undirected_edges;
  auto add_road = [&](VertexId a, VertexId b, RoadCategory cat) {
    const double len =
        std::max(25.0, HaversineMeters(geo.coords[a], geo.coords[b]));
    builder.AddBidirectionalEdge(a, b, len, cat);
    undirected_edges.emplace_back(a, b);
  };

  // Grid fabric with deletions. Arterials and the motorway spine are kept
  // intact (deletion only applies to the local fabric).
  for (int r = 0; r < cfg.rows; ++r) {
    for (int c = 0; c < cfg.cols; ++c) {
      const auto v = static_cast<VertexId>(geo.Index(r, c));
      if (c + 1 < cfg.cols) {
        const RoadCategory cat = CategoryFor(cfg, r, /*horizontal=*/true, r, c, rng);
        const bool protected_edge = cat != RoadCategory::kResidential &&
                                    cat != RoadCategory::kTertiary;
        if (protected_edge || !rng.NextBernoulli(cfg.deletion_prob)) {
          add_road(v, static_cast<VertexId>(geo.Index(r, c + 1)), cat);
        }
      }
      if (r + 1 < cfg.rows) {
        const RoadCategory cat = CategoryFor(cfg, c, /*horizontal=*/false, r, c, rng);
        const bool protected_edge = cat != RoadCategory::kResidential &&
                                    cat != RoadCategory::kTertiary;
        if (protected_edge || !rng.NextBernoulli(cfg.deletion_prob)) {
          add_road(v, static_cast<VertexId>(geo.Index(r + 1, c)), cat);
        }
      }
      // Diagonal shortcut across the cell.
      if (r + 1 < cfg.rows && c + 1 < cfg.cols &&
          rng.NextBernoulli(cfg.diagonal_prob)) {
        const bool down_right = rng.NextBernoulli(0.5);
        const VertexId a =
            down_right ? v : static_cast<VertexId>(geo.Index(r, c + 1));
        const VertexId b = down_right
                               ? static_cast<VertexId>(geo.Index(r + 1, c + 1))
                               : static_cast<VertexId>(geo.Index(r + 1, c));
        add_road(a, b, RoadCategory::kTertiary);
      }
    }
  }

  EnsureConnected(builder, geo.coords, undirected_edges);
  RoadNetwork net = builder.Build();
  PR_LOG_DEBUG << "synthetic network: " << net.Summary();
  return net;
}

RoadNetwork BuildTestNetwork(uint64_t seed) {
  SyntheticNetworkConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  cfg.deletion_prob = 0.0;
  cfg.diagonal_prob = 0.0;
  cfg.jitter = 0.1;
  cfg.arterial_every = 4;
  cfg.motorway = false;
  cfg.seed = seed;
  return BuildSyntheticNetwork(cfg);
}

}  // namespace pathrank::graph
