// Uniform-grid spatial index over network vertices; supports nearest-vertex
// and radius queries. Used by the GPS simulator and the HMM map matcher.
#pragma once

#include <vector>

#include "graph/road_network.h"

namespace pathrank::graph {

/// Buckets vertex ids into a uniform lat/lon grid.
class GridIndex {
 public:
  /// Builds an index with cells approximately `cell_m` metres wide.
  explicit GridIndex(const RoadNetwork& network, double cell_m = 500.0);

  /// Returns the vertex closest to `query` (kInvalidVertex on an empty
  /// network). Exact: expands the search ring until the best candidate is
  /// provably closest.
  VertexId NearestVertex(const Coordinate& query) const;

  /// Returns all vertices within `radius_m` metres of `query`, unordered.
  std::vector<VertexId> VerticesWithin(const Coordinate& query,
                                       double radius_m) const;

 private:
  int CellRow(double lat) const;
  int CellCol(double lon) const;
  const std::vector<VertexId>& Cell(int row, int col) const;

  const RoadNetwork* network_;
  double cell_deg_lat_;
  double cell_deg_lon_;
  double min_lat_;
  double min_lon_;
  int rows_ = 0;
  int cols_ = 0;
  std::vector<std::vector<VertexId>> cells_;
  static const std::vector<VertexId> kEmptyCell;
};

}  // namespace pathrank::graph
