#include "graph/road_network.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/string_util.h"

namespace pathrank::graph {

VertexId RoadNetworkBuilder::AddVertex(Coordinate coordinate) {
  coordinates_.push_back(coordinate);
  return static_cast<VertexId>(coordinates_.size() - 1);
}

EdgeId RoadNetworkBuilder::AddEdge(VertexId from, VertexId to,
                                   double length_m, RoadCategory category,
                                   double travel_time_s) {
  PR_CHECK(from < coordinates_.size()) << "edge source out of range";
  PR_CHECK(to < coordinates_.size()) << "edge target out of range";
  PR_CHECK(length_m > 0.0) << "edge length must be positive";
  EdgeRecord rec;
  rec.from = from;
  rec.to = to;
  rec.length_m = length_m;
  rec.category = category;
  rec.travel_time_s = travel_time_s > 0.0
                          ? travel_time_s
                          : length_m / (DefaultSpeedKmh(category) / 3.6);
  edges_.push_back(rec);
  return static_cast<EdgeId>(edges_.size() - 1);
}

EdgeId RoadNetworkBuilder::AddBidirectionalEdge(VertexId a, VertexId b,
                                                double length_m,
                                                RoadCategory category,
                                                double travel_time_s) {
  const EdgeId first = AddEdge(a, b, length_m, category, travel_time_s);
  AddEdge(b, a, length_m, category, travel_time_s);
  return first;
}

RoadNetwork RoadNetworkBuilder::Build() {
  RoadNetwork net =
      BuildFrom(std::move(coordinates_), std::move(edges_));
  coordinates_.clear();
  edges_.clear();
  return net;
}

RoadNetwork RoadNetworkBuilder::BuildFrom(
    std::vector<Coordinate> coordinates, std::vector<EdgeRecord> edges,
    const std::vector<uint8_t>& closed) {
  PR_CHECK(closed.empty() || closed.size() == edges.size())
      << "closed mask must be empty or cover every edge";
  RoadNetwork net;
  net.coordinates_ = std::move(coordinates);
  net.edge_records_ = std::move(edges);

  const size_t n = net.coordinates_.size();
  const size_t m = net.edge_records_.size();
  const auto is_open = [&closed](EdgeId e) {
    return closed.empty() || closed[e] == 0;
  };

  // Counting sort of edge ids into CSR rows, out- and in-adjacency.
  // Closed edges keep their record (stable ids) but enter no row, so the
  // adjacency arrays hold only the open edges.
  net.out_offsets_.assign(n + 1, 0);
  net.in_offsets_.assign(n + 1, 0);
  size_t open = 0;
  for (EdgeId e = 0; e < m; ++e) {
    if (!is_open(e)) continue;
    const EdgeRecord& rec = net.edge_records_[e];
    ++net.out_offsets_[rec.from + 1];
    ++net.in_offsets_[rec.to + 1];
    ++open;
  }
  std::partial_sum(net.out_offsets_.begin(), net.out_offsets_.end(),
                   net.out_offsets_.begin());
  std::partial_sum(net.in_offsets_.begin(), net.in_offsets_.end(),
                   net.in_offsets_.begin());

  net.out_edge_ids_.resize(open);
  net.in_edge_ids_.resize(open);
  std::vector<uint32_t> out_cursor(net.out_offsets_.begin(),
                                   net.out_offsets_.end() - 1);
  std::vector<uint32_t> in_cursor(net.in_offsets_.begin(),
                                  net.in_offsets_.end() - 1);
  for (EdgeId e = 0; e < m; ++e) {
    if (!is_open(e)) continue;
    const EdgeRecord& rec = net.edge_records_[e];
    net.out_edge_ids_[out_cursor[rec.from]++] = e;
    net.in_edge_ids_[in_cursor[rec.to]++] = e;
  }

  // Sort each out-row by target id so FindEdge can binary search.
  for (VertexId v = 0; v < n; ++v) {
    auto begin = net.out_edge_ids_.begin() + net.out_offsets_[v];
    auto end = net.out_edge_ids_.begin() + net.out_offsets_[v + 1];
    std::sort(begin, end, [&net](EdgeId a, EdgeId b) {
      const auto& ra = net.edge_records_[a];
      const auto& rb = net.edge_records_[b];
      if (ra.to != rb.to) return ra.to < rb.to;
      return ra.length_m < rb.length_m;
    });
  }

  for (const Coordinate& c : net.coordinates_) net.bounds_.Extend(c);
  // max_speed_mps_ feeds the admissible A* heuristic; closed edges are
  // untraversable, so only open edges bound the speed.
  for (EdgeId e = 0; e < m; ++e) {
    if (!is_open(e)) continue;
    const EdgeRecord& rec = net.edge_records_[e];
    if (rec.travel_time_s > 0.0) {
      net.max_speed_mps_ =
          std::max(net.max_speed_mps_, rec.length_m / rec.travel_time_s);
    }
  }
  return net;
}

EdgeId RoadNetwork::FindEdge(VertexId from, VertexId to) const {
  const auto row = OutEdges(from);
  // Binary search over the row (sorted by target, then length ascending).
  size_t lo = 0;
  size_t hi = row.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (edge_records_[row[mid]].to < to) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < row.size() && edge_records_[row[lo]].to == to) return row[lo];
  return kInvalidEdge;
}

double RoadNetwork::PathLengthMeters(std::span<const EdgeId> edges) const {
  double total = 0.0;
  for (EdgeId e : edges) total += edge_records_[e].length_m;
  return total;
}

double RoadNetwork::PathTravelTimeSeconds(
    std::span<const EdgeId> edges) const {
  double total = 0.0;
  for (EdgeId e : edges) total += edge_records_[e].travel_time_s;
  return total;
}

std::string RoadNetwork::Summary() const {
  return StrFormat("RoadNetwork(|V|=%zu, |E|=%zu)", num_vertices(),
                   num_edges());
}

}  // namespace pathrank::graph
