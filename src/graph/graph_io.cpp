#include "graph/graph_io.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "common/csv.h"
#include "common/parse.h"
#include "common/string_util.h"

namespace pathrank::graph {
namespace {

constexpr uint32_t kBinaryMagic = 0x50524E31;  // "PRN1"

/// ParseRoadCategory with loader context: the bare version throws
/// std::invalid_argument with no hint of WHERE the bad field sits.
RoadCategory ParseRoadCategoryField(const std::string& token,
                                    const std::string& file, size_t line) {
  try {
    return ParseRoadCategory(token);
  } catch (const std::invalid_argument&) {
    throw std::runtime_error(file + ":" + std::to_string(line) +
                             ": category expects a road category name, "
                             "got '" +
                             token + "'");
  }
}

/// One parsed edges.csv data row, validated field by field.
struct EdgeRow {
  VertexId from;
  VertexId to;
  double length_m;
  double travel_time_s;
  RoadCategory category;
};

/// Parses one edges.csv data row with per-field diagnostics. Shared by
/// the CSV-pair loader and the edges-only loader so both report
/// malformed fields the same way. Rejects negative lengths/times outright
/// (ParseDoubleField already rejects nan/inf): a negative edge cost
/// breaks the shortest-path algorithms' non-negative-weight assumption,
/// and a negative travel time would be silently replaced by the
/// builder's category-speed default instead of surfacing the bad field.
EdgeRow ParseEdgeRow(const std::vector<std::string>& row,
                     const std::string& file, size_t line) {
  if (row.size() < 5) {
    throw std::runtime_error(
        file + ":" + std::to_string(line) +
        ": expected 5 fields (from,to,length_m,travel_time_s,category), "
        "got " +
        std::to_string(row.size()));
  }
  EdgeRow edge{ParseUInt32Field(row[0], "from", file, line),
               ParseUInt32Field(row[1], "to", file, line),
               ParseDoubleField(row[2], "length_m", file, line),
               ParseDoubleField(row[3], "travel_time_s", file, line),
               ParseRoadCategoryField(row[4], file, line)};
  if (edge.length_m < 0 || edge.travel_time_s < 0) {
    throw std::runtime_error(file + ":" + std::to_string(line) +
                             ": negative edge length/travel time");
  }
  return edge;
}

}  // namespace

void SaveNetworkCsv(const RoadNetwork& network, const std::string& prefix) {
  {
    CsvWriter w(prefix + "_vertices.csv");
    w.WriteRow({"id", "lat", "lon"});
    for (VertexId v = 0; v < network.num_vertices(); ++v) {
      const Coordinate& c = network.coordinate(v);
      w.WriteRow({std::to_string(v), StrFormat("%.7f", c.lat),
                  StrFormat("%.7f", c.lon)});
    }
  }
  {
    CsvWriter w(prefix + "_edges.csv");
    w.WriteRow({"from", "to", "length_m", "travel_time_s", "category"});
    for (EdgeId e = 0; e < network.num_edges(); ++e) {
      const EdgeRecord& rec = network.edge(e);
      w.WriteRow({std::to_string(rec.from), std::to_string(rec.to),
                  StrFormat("%.3f", rec.length_m),
                  StrFormat("%.3f", rec.travel_time_s),
                  RoadCategoryName(rec.category)});
    }
  }
}

RoadNetwork LoadNetworkCsv(const std::string& prefix) {
  RoadNetworkBuilder builder;
  {
    const std::string file = prefix + "_vertices.csv";
    CsvReader r(file);
    for (size_t i = 1; i < r.num_rows(); ++i) {
      const auto& row = r.row(i);
      const size_t line = r.line(i);
      if (row.size() < 3) {
        throw std::runtime_error(file + ":" + std::to_string(line) +
                                 ": expected 3 fields (id,lat,lon), got " +
                                 std::to_string(row.size()));
      }
      builder.AddVertex({ParseDoubleField(row[1], "lat", file, line),
                         ParseDoubleField(row[2], "lon", file, line)});
    }
  }
  {
    const std::string file = prefix + "_edges.csv";
    CsvReader r(file);
    for (size_t i = 1; i < r.num_rows(); ++i) {
      const EdgeRow edge = ParseEdgeRow(r.row(i), file, r.line(i));
      builder.AddEdge(edge.from, edge.to, edge.length_m, edge.category,
                      edge.travel_time_s);
    }
  }
  return builder.Build();
}

RoadNetwork LoadNetworkEdgesCsv(const std::string& path) {
  CsvReader r(path);
  // Vertex ids must exist in the builder before edges reference them, so
  // parse everything first (one pass), then seed [0, max id] placeholder
  // coordinates, then add the edges.
  std::vector<EdgeRow> edges;
  edges.reserve(r.num_rows() > 0 ? r.num_rows() - 1 : 0);
  VertexId max_vertex = 0;
  for (size_t i = 1; i < r.num_rows(); ++i) {
    const EdgeRow edge = ParseEdgeRow(r.row(i), path, r.line(i));
    if (edge.from >= kInvalidVertex || edge.to >= kInvalidVertex) {
      // UINT32_MAX is the kInvalidVertex sentinel — and would also wrap
      // the seeding loop below into an infinite one.
      throw std::runtime_error(path + ":" + std::to_string(r.line(i)) +
                               ": vertex id " +
                               std::to_string(std::max(edge.from, edge.to)) +
                               " collides with the invalid-vertex sentinel");
    }
    max_vertex = std::max({max_vertex, edge.from, edge.to});
    edges.push_back(edge);
  }
  if (edges.empty()) {
    throw std::runtime_error(path + ": no edge rows (nothing to serve)");
  }
  // Every vertex id in a real network appears in SOME edge, so the id
  // space cannot plausibly dwarf the edge count. Without this cap one
  // corrupt id (say 4000000000) would make the seeding loop allocate
  // billions of placeholder vertices — an OOM, not a diagnostic.
  const size_t implied_vertices = static_cast<size_t>(max_vertex) + 1;
  if (implied_vertices > 64 * edges.size() + 1024) {
    throw std::runtime_error(
        path + ": vertex id " + std::to_string(max_vertex) + " implies " +
        std::to_string(implied_vertices) + " vertices from only " +
        std::to_string(edges.size()) +
        " edge rows — the id is almost certainly corrupt");
  }
  RoadNetworkBuilder builder;
  for (VertexId v = 0; v <= max_vertex; ++v) {
    builder.AddVertex({0.0, 0.0});
  }
  for (const EdgeRow& edge : edges) {
    builder.AddEdge(edge.from, edge.to, edge.length_m, edge.category,
                    edge.travel_time_s);
  }
  return builder.Build();
}

void SaveNetworkBinary(const RoadNetwork& network, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + path);
  auto put32 = [&out](uint32_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  put32(kBinaryMagic);
  put32(static_cast<uint32_t>(network.num_vertices()));
  put32(static_cast<uint32_t>(network.num_edges()));
  for (VertexId v = 0; v < network.num_vertices(); ++v) {
    const Coordinate& c = network.coordinate(v);
    out.write(reinterpret_cast<const char*>(&c.lat), sizeof(double));
    out.write(reinterpret_cast<const char*>(&c.lon), sizeof(double));
  }
  for (EdgeId e = 0; e < network.num_edges(); ++e) {
    const EdgeRecord& rec = network.edge(e);
    put32(rec.from);
    put32(rec.to);
    out.write(reinterpret_cast<const char*>(&rec.length_m), sizeof(double));
    out.write(reinterpret_cast<const char*>(&rec.travel_time_s),
              sizeof(double));
    const auto cat = static_cast<uint8_t>(rec.category);
    out.write(reinterpret_cast<const char*>(&cat), sizeof(cat));
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

RoadNetwork LoadNetworkBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  auto get32 = [&in]() {
    uint32_t v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof(v));
    return v;
  };
  if (get32() != kBinaryMagic) {
    throw std::runtime_error("bad magic in " + path);
  }
  const uint32_t n = get32();
  const uint32_t m = get32();
  RoadNetworkBuilder builder;
  for (uint32_t i = 0; i < n; ++i) {
    Coordinate c;
    in.read(reinterpret_cast<char*>(&c.lat), sizeof(double));
    in.read(reinterpret_cast<char*>(&c.lon), sizeof(double));
    builder.AddVertex(c);
  }
  for (uint32_t i = 0; i < m; ++i) {
    const VertexId from = get32();
    const VertexId to = get32();
    double length = 0.0;
    double time = 0.0;
    uint8_t cat = 0;
    in.read(reinterpret_cast<char*>(&length), sizeof(double));
    in.read(reinterpret_cast<char*>(&time), sizeof(double));
    in.read(reinterpret_cast<char*>(&cat), sizeof(cat));
    builder.AddEdge(from, to, length, static_cast<RoadCategory>(cat), time);
  }
  if (!in) throw std::runtime_error("truncated file: " + path);
  return builder.Build();
}

}  // namespace pathrank::graph
