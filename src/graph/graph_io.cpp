#include "graph/graph_io.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "common/csv.h"
#include "common/string_util.h"

namespace pathrank::graph {
namespace {

constexpr uint32_t kBinaryMagic = 0x50524E31;  // "PRN1"

}  // namespace

void SaveNetworkCsv(const RoadNetwork& network, const std::string& prefix) {
  {
    CsvWriter w(prefix + "_vertices.csv");
    w.WriteRow({"id", "lat", "lon"});
    for (VertexId v = 0; v < network.num_vertices(); ++v) {
      const Coordinate& c = network.coordinate(v);
      w.WriteRow({std::to_string(v), StrFormat("%.7f", c.lat),
                  StrFormat("%.7f", c.lon)});
    }
  }
  {
    CsvWriter w(prefix + "_edges.csv");
    w.WriteRow({"from", "to", "length_m", "travel_time_s", "category"});
    for (EdgeId e = 0; e < network.num_edges(); ++e) {
      const EdgeRecord& rec = network.edge(e);
      w.WriteRow({std::to_string(rec.from), std::to_string(rec.to),
                  StrFormat("%.3f", rec.length_m),
                  StrFormat("%.3f", rec.travel_time_s),
                  RoadCategoryName(rec.category)});
    }
  }
}

RoadNetwork LoadNetworkCsv(const std::string& prefix) {
  RoadNetworkBuilder builder;
  {
    CsvReader r(prefix + "_vertices.csv");
    for (size_t i = 1; i < r.num_rows(); ++i) {
      const auto& row = r.row(i);
      if (row.size() < 3) {
        throw std::runtime_error("vertices.csv: malformed row");
      }
      builder.AddVertex({std::stod(row[1]), std::stod(row[2])});
    }
  }
  {
    CsvReader r(prefix + "_edges.csv");
    for (size_t i = 1; i < r.num_rows(); ++i) {
      const auto& row = r.row(i);
      if (row.size() < 5) {
        throw std::runtime_error("edges.csv: malformed row");
      }
      builder.AddEdge(static_cast<VertexId>(std::stoul(row[0])),
                      static_cast<VertexId>(std::stoul(row[1])),
                      std::stod(row[2]), ParseRoadCategory(row[4]),
                      std::stod(row[3]));
    }
  }
  return builder.Build();
}

void SaveNetworkBinary(const RoadNetwork& network, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + path);
  auto put32 = [&out](uint32_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  put32(kBinaryMagic);
  put32(static_cast<uint32_t>(network.num_vertices()));
  put32(static_cast<uint32_t>(network.num_edges()));
  for (VertexId v = 0; v < network.num_vertices(); ++v) {
    const Coordinate& c = network.coordinate(v);
    out.write(reinterpret_cast<const char*>(&c.lat), sizeof(double));
    out.write(reinterpret_cast<const char*>(&c.lon), sizeof(double));
  }
  for (EdgeId e = 0; e < network.num_edges(); ++e) {
    const EdgeRecord& rec = network.edge(e);
    put32(rec.from);
    put32(rec.to);
    out.write(reinterpret_cast<const char*>(&rec.length_m), sizeof(double));
    out.write(reinterpret_cast<const char*>(&rec.travel_time_s),
              sizeof(double));
    const auto cat = static_cast<uint8_t>(rec.category);
    out.write(reinterpret_cast<const char*>(&cat), sizeof(cat));
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

RoadNetwork LoadNetworkBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  auto get32 = [&in]() {
    uint32_t v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof(v));
    return v;
  };
  if (get32() != kBinaryMagic) {
    throw std::runtime_error("bad magic in " + path);
  }
  const uint32_t n = get32();
  const uint32_t m = get32();
  RoadNetworkBuilder builder;
  for (uint32_t i = 0; i < n; ++i) {
    Coordinate c;
    in.read(reinterpret_cast<char*>(&c.lat), sizeof(double));
    in.read(reinterpret_cast<char*>(&c.lon), sizeof(double));
    builder.AddVertex(c);
  }
  for (uint32_t i = 0; i < m; ++i) {
    const VertexId from = get32();
    const VertexId to = get32();
    double length = 0.0;
    double time = 0.0;
    uint8_t cat = 0;
    in.read(reinterpret_cast<char*>(&length), sizeof(double));
    in.read(reinterpret_cast<char*>(&time), sizeof(double));
    in.read(reinterpret_cast<char*>(&cat), sizeof(cat));
    builder.AddEdge(from, to, length, static_cast<RoadCategory>(cat), time);
  }
  if (!in) throw std::runtime_error("truncated file: " + path);
  return builder.Build();
}

}  // namespace pathrank::graph
