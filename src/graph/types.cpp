#include "graph/types.h"

#include <stdexcept>

namespace pathrank::graph {
namespace {

constexpr double kEarthRadiusMeters = 6371008.8;
constexpr double kDegToRad = 3.14159265358979323846 / 180.0;

}  // namespace

double DefaultSpeedKmh(RoadCategory category) {
  switch (category) {
    case RoadCategory::kMotorway:
      return 110.0;
    case RoadCategory::kTrunk:
      return 90.0;
    case RoadCategory::kPrimary:
      return 80.0;
    case RoadCategory::kSecondary:
      return 70.0;
    case RoadCategory::kTertiary:
      return 55.0;
    case RoadCategory::kResidential:
      return 40.0;
    case RoadCategory::kService:
      return 20.0;
  }
  return 50.0;
}

std::string RoadCategoryName(RoadCategory category) {
  switch (category) {
    case RoadCategory::kMotorway:
      return "motorway";
    case RoadCategory::kTrunk:
      return "trunk";
    case RoadCategory::kPrimary:
      return "primary";
    case RoadCategory::kSecondary:
      return "secondary";
    case RoadCategory::kTertiary:
      return "tertiary";
    case RoadCategory::kResidential:
      return "residential";
    case RoadCategory::kService:
      return "service";
  }
  return "unknown";
}

RoadCategory ParseRoadCategory(const std::string& name) {
  for (int i = 0; i < kNumRoadCategories; ++i) {
    const auto cat = static_cast<RoadCategory>(i);
    if (RoadCategoryName(cat) == name) return cat;
  }
  throw std::invalid_argument("unknown road category: " + name);
}

double HaversineMeters(const Coordinate& a, const Coordinate& b) {
  const double lat1 = a.lat * kDegToRad;
  const double lat2 = b.lat * kDegToRad;
  const double dlat = (b.lat - a.lat) * kDegToRad;
  const double dlon = (b.lon - a.lon) * kDegToRad;
  const double sin_dlat = std::sin(dlat / 2.0);
  const double sin_dlon = std::sin(dlon / 2.0);
  const double h = sin_dlat * sin_dlat +
                   std::cos(lat1) * std::cos(lat2) * sin_dlon * sin_dlon;
  return 2.0 * kEarthRadiusMeters * std::asin(std::min(1.0, std::sqrt(h)));
}

double FastDistanceMeters(const Coordinate& a, const Coordinate& b) {
  const double mean_lat = 0.5 * (a.lat + b.lat) * kDegToRad;
  const double dx = (b.lon - a.lon) * kDegToRad * std::cos(mean_lat);
  const double dy = (b.lat - a.lat) * kDegToRad;
  return kEarthRadiusMeters * std::sqrt(dx * dx + dy * dy);
}

}  // namespace pathrank::graph
