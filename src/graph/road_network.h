// Immutable spatial road network stored in CSR (compressed sparse row) form.
//
// The network is a directed multigraph: every physical road segment is one
// directed edge carrying length, free-flow travel time and a functional road
// category. Bidirectional roads are modelled as two directed edges.
//
// Construction goes through RoadNetworkBuilder; once built, a RoadNetwork is
// immutable and safe to share read-only across threads.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/types.h"

namespace pathrank::graph {

/// Attributes of one directed edge.
struct EdgeRecord {
  VertexId from = kInvalidVertex;
  VertexId to = kInvalidVertex;
  double length_m = 0.0;
  double travel_time_s = 0.0;
  RoadCategory category = RoadCategory::kResidential;
};

/// Incremental builder; collects vertices and edges then produces the CSR
/// representation in one pass.
class RoadNetworkBuilder {
 public:
  /// Adds a vertex and returns its id (ids are dense, starting at 0).
  VertexId AddVertex(Coordinate coordinate);

  /// Adds one directed edge. Travel time defaults to
  /// length / DefaultSpeedKmh(category) when `travel_time_s` <= 0.
  EdgeId AddEdge(VertexId from, VertexId to, double length_m,
                 RoadCategory category, double travel_time_s = -1.0);

  /// Adds a pair of opposing directed edges; returns the id of the first.
  EdgeId AddBidirectionalEdge(VertexId a, VertexId b, double length_m,
                              RoadCategory category,
                              double travel_time_s = -1.0);

  size_t num_vertices() const { return coordinates_.size(); }
  size_t num_edges() const { return edges_.size(); }

  /// Finalises and returns the network. The builder is left empty.
  class RoadNetwork Build();

  /// Builds a network directly from explicit per-edge records: edge ids
  /// are positional in `edges`, so a caller rebuilding an existing
  /// network (the live-traffic copy-on-write path, graph_snapshot.h)
  /// keeps every id stable. Edges flagged nonzero in `closed` keep their
  /// record — edge(e), PathLengthMeters etc. still work — but appear in
  /// no adjacency row: OutEdges/InEdges never yield them and FindEdge
  /// cannot return them, which is exactly "closed road" to the routing
  /// layer. `closed` may be empty (nothing closed) or one entry per edge.
  static class RoadNetwork BuildFrom(std::vector<Coordinate> coordinates,
                                     std::vector<EdgeRecord> edges,
                                     const std::vector<uint8_t>& closed = {});

 private:
  std::vector<Coordinate> coordinates_;
  std::vector<EdgeRecord> edges_;
};

/// Immutable CSR road network.
class RoadNetwork {
 public:
  RoadNetwork() = default;

  size_t num_vertices() const { return coordinates_.size(); }
  size_t num_edges() const { return edge_records_.size(); }

  /// Geographic position of vertex `v`.
  const Coordinate& coordinate(VertexId v) const { return coordinates_[v]; }

  /// Attributes of edge `e`.
  const EdgeRecord& edge(EdgeId e) const { return edge_records_[e]; }

  /// Ids of edges leaving `v`, sorted by target vertex id.
  std::span<const EdgeId> OutEdges(VertexId v) const {
    return {out_edge_ids_.data() + out_offsets_[v],
            out_offsets_[v + 1] - out_offsets_[v]};
  }

  /// Ids of edges entering `v`.
  std::span<const EdgeId> InEdges(VertexId v) const {
    return {in_edge_ids_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }

  /// Out-degree of `v`.
  size_t OutDegree(VertexId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }

  /// Finds a directed edge from `from` to `to`; returns kInvalidEdge when
  /// absent. If parallel edges exist, the shortest one is returned.
  EdgeId FindEdge(VertexId from, VertexId to) const;

  /// Sum of `length_m` over a sequence of edge ids.
  double PathLengthMeters(std::span<const EdgeId> edges) const;

  /// Sum of `travel_time_s` over a sequence of edge ids.
  double PathTravelTimeSeconds(std::span<const EdgeId> edges) const;

  /// Bounding box of all vertex coordinates.
  const BoundingBox& bounds() const { return bounds_; }

  /// Highest free-flow speed present in the network (m/s); used for
  /// admissible travel-time A* heuristics.
  double max_speed_mps() const { return max_speed_mps_; }

  /// Human-readable one-line summary ("|V|=..., |E|=...").
  std::string Summary() const;

 private:
  friend class RoadNetworkBuilder;

  std::vector<Coordinate> coordinates_;
  std::vector<EdgeRecord> edge_records_;
  // CSR over out-edges and in-edges: offsets have num_vertices()+1 entries.
  std::vector<uint32_t> out_offsets_;
  std::vector<EdgeId> out_edge_ids_;
  std::vector<uint32_t> in_offsets_;
  std::vector<EdgeId> in_edge_ids_;
  BoundingBox bounds_;
  double max_speed_mps_ = 0.0;
};

}  // namespace pathrank::graph
