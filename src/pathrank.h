// Umbrella header: include this to use the full PathRank library.
//
// Typical end-to-end flow (see examples/quickstart.cpp):
//
//   auto network = graph::BuildSyntheticNetwork({});
//   auto trips   = traj::TrajectoryGenerator(network, {}).Generate();
//   auto queries = data::GenerateQueries(network, trips, genConfig);
//   auto split   = data::SplitDataset({queries}, 0.7, 0.1, rng);
//   auto table   = embedding::TrainNode2Vec(network, n2vConfig);
//   core::PathRankModel model(network.num_vertices(), modelConfig);
//   model.InitializeEmbedding(table);
//   core::TrainPathRank(model, split.train, split.validation, trainConfig);
//   auto result  = core::Evaluate(model, split.test);
//
// Deployment goes through the serving stack: capture an immutable snapshot
// of the trained weights and serve it from a thread-safe replica-pool
// engine (any number of threads may query one shared engine):
//
//   serving::ServingEngine engine(network,
//                                 serving::ModelSnapshot::Capture(model));
//   auto ranked  = engine.Rank(source, destination);         // one query
//   auto batches = engine.RankBatch(queries);                // many queries
//   auto scored  = engine.ScoreBatch(candidatePaths);        // own candidates
//
// See docs/serving.md for the threading and determinism contract.
#pragma once

#include "core/config.h"       // IWYU pragma: export
#include "core/evaluator.h"    // IWYU pragma: export
#include "core/model.h"        // IWYU pragma: export
#include "core/model_io.h"     // IWYU pragma: export
#include "core/trainer.h"      // IWYU pragma: export
#include "data/batcher.h"      // IWYU pragma: export
#include "data/candidate_generation.h"  // IWYU pragma: export
#include "data/dataset.h"      // IWYU pragma: export
#include "embedding/node2vec.h"         // IWYU pragma: export
#include "graph/network_builder.h"      // IWYU pragma: export
#include "graph/road_network.h"         // IWYU pragma: export
#include "metrics/ranking_metrics.h"    // IWYU pragma: export
#include "routing/astar.h"     // IWYU pragma: export
#include "routing/dijkstra.h"  // IWYU pragma: export
#include "routing/diversified.h"        // IWYU pragma: export
#include "routing/yen.h"       // IWYU pragma: export
#include "serving/batching_queue.h"     // IWYU pragma: export
#include "serving/model_snapshot.h"     // IWYU pragma: export
#include "serving/serving_engine.h"     // IWYU pragma: export
#include "serving/sharded_engine.h"     // IWYU pragma: export
#include "traj/trajectory_generator.h"  // IWYU pragma: export
