#include "nn/parameter.h"

#include <cmath>

namespace pathrank::nn {

double GradientSquaredNorm(const ParameterList& params) {
  double sum = 0.0;
  for (const Parameter* p : params) {
    if (p->frozen) continue;
    sum += p->grad.SquaredNorm();
  }
  return sum;
}

double ClipGradientNorm(const ParameterList& params, double max_norm) {
  const double norm = std::sqrt(GradientSquaredNorm(params));
  if (norm > max_norm && norm > 0.0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (Parameter* p : params) {
      if (p->frozen) continue;
      p->grad.Scale(scale);
    }
  }
  return norm;
}

void ZeroGradients(const ParameterList& params) {
  for (Parameter* p : params) p->ZeroGrad();
}

}  // namespace pathrank::nn
