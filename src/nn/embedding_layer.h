// Trainable token-embedding table, the model's vertex-embedding matrix B.
// Initialised from node2vec output (the paper's "spatial network
// embedding") and either frozen (PR-A1) or fine-tuned (PR-A2).
#pragma once

#include <cstdint>
#include <span>

#include "nn/parameter.h"
#include "nn/sequence_batch.h"

namespace pathrank::nn {

/// Embedding lookup with sparse gradient accumulation.
class EmbeddingLayer {
 public:
  /// Creates a [vocab_size x dim] table initialised U(-0.05, 0.05).
  EmbeddingLayer(size_t vocab_size, size_t dim, pathrank::Rng& rng);

  /// Skip-init construction: the table is allocated but left zero, for
  /// callers that overwrite it wholesale (replicas, checkpoint loads).
  EmbeddingLayer(size_t vocab_size, size_t dim, SkipInit);

  /// Replaces the table content (e.g. with node2vec vectors); the matrix
  /// must be [vocab_size x dim].
  void LoadTable(const Matrix& table);

  /// Looks up timestep `t` of `batch` into `out` [batch_size x dim].
  /// Padding rows (t >= length) produce the embedding of token 0, but their
  /// gradients are masked out in AccumulateGrad.
  void Lookup(const SequenceBatch& batch, size_t t, Matrix* out) const;

  /// Accumulates d_out into the table gradient for timestep `t`, skipping
  /// padded rows.
  void AccumulateGrad(const SequenceBatch& batch, size_t t,
                      const Matrix& d_out);

  /// Marks the table frozen (PR-A1) or trainable (PR-A2).
  void set_frozen(bool frozen) { table_.frozen = frozen; }
  bool frozen() const { return table_.frozen; }

  size_t vocab_size() const { return table_.value.rows(); }
  size_t dim() const { return table_.value.cols(); }

  Parameter& parameter() { return table_; }
  const Parameter& parameter() const { return table_; }
  const Matrix& table() const { return table_.value; }

 private:
  Parameter table_;
};

}  // namespace pathrank::nn
