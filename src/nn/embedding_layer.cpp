#include "nn/embedding_layer.h"

#include <cstring>

namespace pathrank::nn {

EmbeddingLayer::EmbeddingLayer(size_t vocab_size, size_t dim,
                               pathrank::Rng& rng)
    : table_("embedding", vocab_size, dim) {
  UniformInit(&table_.value, 0.05f, rng);
}

EmbeddingLayer::EmbeddingLayer(size_t vocab_size, size_t dim, SkipInit)
    : table_("embedding", vocab_size, dim) {}

void EmbeddingLayer::LoadTable(const Matrix& table) {
  PR_CHECK(table.rows() == table_.value.rows() &&
           table.cols() == table_.value.cols())
      << "embedding table shape mismatch: " << table.ShapeString() << " vs "
      << table_.value.ShapeString();
  table_.value = table;
}

void EmbeddingLayer::Lookup(const SequenceBatch& batch, size_t t,
                            Matrix* out) const {
  const size_t b_size = batch.batch_size;
  const size_t d = dim();
  out->ResizeNoZero(b_size, d);  // every row is overwritten below
  for (size_t b = 0; b < b_size; ++b) {
    const auto id = static_cast<size_t>(batch.id_at(b, t));
    PR_CHECK(id < vocab_size()) << "token id out of range";
    std::memcpy(out->row(b), table_.value.row(id), d * sizeof(float));
  }
}

void EmbeddingLayer::AccumulateGrad(const SequenceBatch& batch, size_t t,
                                    const Matrix& d_out) {
  const size_t d = dim();
  for (size_t b = 0; b < batch.batch_size; ++b) {
    if (static_cast<int32_t>(t) >= batch.lengths[b]) continue;  // padding
    const auto id = static_cast<size_t>(batch.id_at(b, t));
    float* grad_row = table_.grad.row(id);
    const float* src = d_out.row(b);
    for (size_t c = 0; c < d; ++c) grad_row[c] += src[c];
  }
}

}  // namespace pathrank::nn
