// Fully-connected layer Y = X W + b.
#pragma once

#include <string>

#include "nn/parameter.h"

namespace pathrank::nn {

/// Affine layer with cached input for backprop.
class LinearLayer {
 public:
  LinearLayer(size_t input_size, size_t output_size, pathrank::Rng& rng,
              const std::string& name_prefix = "fc");

  /// Skip-init construction (weights left zero, to be copied into).
  LinearLayer(size_t input_size, size_t output_size, SkipInit,
              const std::string& name_prefix = "fc");

  /// Y[B x out] = X[B x in] W + b. Caches X.
  void Forward(const Matrix& x, Matrix* y);

  /// Inference-only forward: same arithmetic as Forward but no input
  /// cache, so it never mutates the layer and is safe to call from many
  /// threads concurrently.
  void ForwardInference(const Matrix& x, Matrix* y) const;

  /// Accumulates dW, db and writes dX.
  void Backward(const Matrix& d_y, Matrix* d_x);

  ParameterList Parameters() { return {&w_, &b_}; }
  ConstParameterList Parameters() const { return {&w_, &b_}; }
  size_t input_size() const { return w_.value.rows(); }
  size_t output_size() const { return w_.value.cols(); }

 private:
  Parameter w_;  // [in x out]
  Parameter b_;  // [1 x out]
  Matrix x_cache_;
};

}  // namespace pathrank::nn
