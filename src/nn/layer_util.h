// Small helpers shared by layer implementations.
#pragma once

#include <vector>

#include "nn/matrix.h"

namespace pathrank::nn {

/// bias_grad[0,c] += sum over rows of m[.,c].
inline void AddColumnSums(const Matrix& m, Matrix* bias_grad) {
  PR_CHECK(bias_grad->rows() == 1 && bias_grad->cols() == m.cols());
  float* g = bias_grad->row(0);
  for (size_t r = 0; r < m.rows(); ++r) {
    const float* row = m.row(r);
    for (size_t c = 0; c < m.cols(); ++c) g[c] += row[c];
  }
}

/// Sizes a per-timestep cache to `num_steps` matrices of [rows x cols]
/// without zeroing, reusing buffers from previous calls. Every matrix the
/// caller reads must be fully written first (activation caches are).
inline void EnsureStepShapes(std::vector<Matrix>* steps, size_t num_steps,
                             size_t rows, size_t cols) {
  if (steps->size() != num_steps) steps->resize(num_steps);
  for (Matrix& m : *steps) m.ResizeNoZero(rows, cols);
}

/// Per-row binary mask for timestep t: 1 when t < lengths[b].
inline std::vector<float> StepMask(const std::vector<int32_t>& lengths,
                                   size_t t) {
  std::vector<float> mask(lengths.size());
  for (size_t b = 0; b < lengths.size(); ++b) {
    mask[b] = (static_cast<int32_t>(t) < lengths[b]) ? 1.0f : 0.0f;
  }
  return mask;
}

/// out[r,c] = m[r,c] * mask[r].
inline void ScaleRows(const Matrix& m, const std::vector<float>& mask,
                      Matrix* out) {
  if (!out->SameShape(m)) out->Resize(m.rows(), m.cols());
  for (size_t r = 0; r < m.rows(); ++r) {
    const float s = mask[r];
    const float* src = m.row(r);
    float* dst = out->row(r);
    for (size_t c = 0; c < m.cols(); ++c) dst[c] = src[c] * s;
  }
}

}  // namespace pathrank::nn
