// Named trainable parameter (value + gradient) and parameter registry.
// Layers expose their parameters through CollectParameters(); optimizers
// iterate the registry.
#pragma once

#include <string>
#include <vector>

#include "nn/matrix.h"

namespace pathrank::nn {

/// One trainable tensor. The gradient always has the value's shape.
struct Parameter {
  std::string name;
  Matrix value;
  Matrix grad;
  /// Frozen parameters receive gradients but are skipped by optimizers
  /// (used by PR-A1 to keep the embedding matrix fixed).
  bool frozen = false;

  Parameter() = default;
  Parameter(std::string n, size_t rows, size_t cols)
      : name(std::move(n)), value(rows, cols), grad(rows, cols) {}

  void ZeroGrad() { grad.Zero(); }
};

/// Non-owning list of parameters (layers own their Parameter members).
using ParameterList = std::vector<Parameter*>;

/// Read-only view of a parameter list — the inference/serving side of the
/// API (snapshots, checkpointing) walks parameters without mutation
/// rights.
using ConstParameterList = std::vector<const Parameter*>;

/// Tag selecting a construction path that skips random weight
/// initialisation. Used by replica/snapshot builders whose values are
/// immediately overwritten (CopyParametersFrom, checkpoint load), saving
/// O(vocab x dim) RNG draws per replica.
struct SkipInit {};
inline constexpr SkipInit kSkipInit{};

/// Sum of squared gradient norms across a list. Frozen parameters are
/// excluded: optimizers never apply their gradients, so they must not
/// consume clip budget either.
double GradientSquaredNorm(const ParameterList& params);

/// Scales all non-frozen gradients so their global L2 norm is at most
/// `max_norm`. Returns the pre-clip norm.
double ClipGradientNorm(const ParameterList& params, double max_norm);

/// Zeroes every gradient in the list.
void ZeroGradients(const ParameterList& params);

}  // namespace pathrank::nn
