#include "nn/loss.h"

#include <cmath>

#include "common/logging.h"

namespace pathrank::nn {

double MseLoss(std::span<const float> predicted, std::span<const float> truth,
               std::vector<float>* d_predicted) {
  PR_CHECK(predicted.size() == truth.size() && !predicted.empty());
  const size_t n = predicted.size();
  d_predicted->assign(n, 0.0f);
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (size_t i = 0; i < n; ++i) {
    const float diff = predicted[i] - truth[i];
    loss += static_cast<double>(diff) * diff;
    (*d_predicted)[i] = 2.0f * diff * inv_n;
  }
  return loss / static_cast<double>(n);
}

double MaeLoss(std::span<const float> predicted, std::span<const float> truth,
               std::vector<float>* d_predicted) {
  PR_CHECK(predicted.size() == truth.size() && !predicted.empty());
  const size_t n = predicted.size();
  d_predicted->assign(n, 0.0f);
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (size_t i = 0; i < n; ++i) {
    const float diff = predicted[i] - truth[i];
    loss += std::abs(static_cast<double>(diff));
    (*d_predicted)[i] = (diff > 0.0f ? 1.0f : (diff < 0.0f ? -1.0f : 0.0f)) *
                        inv_n;
  }
  return loss / static_cast<double>(n);
}

double HuberLoss(std::span<const float> predicted,
                 std::span<const float> truth, float delta,
                 std::vector<float>* d_predicted) {
  PR_CHECK(predicted.size() == truth.size() && !predicted.empty());
  PR_CHECK(delta > 0.0f);
  const size_t n = predicted.size();
  d_predicted->assign(n, 0.0f);
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (size_t i = 0; i < n; ++i) {
    const float diff = predicted[i] - truth[i];
    const float ad = std::abs(diff);
    if (ad <= delta) {
      loss += 0.5 * static_cast<double>(diff) * diff;
      (*d_predicted)[i] = diff * inv_n;
    } else {
      loss += static_cast<double>(delta) * (ad - 0.5 * delta);
      (*d_predicted)[i] = (diff > 0.0f ? delta : -delta) * inv_n;
    }
  }
  return loss / static_cast<double>(n);
}

double ComputeLoss(LossType type, std::span<const float> predicted,
                   std::span<const float> truth,
                   std::vector<float>* d_predicted) {
  switch (type) {
    case LossType::kMse:
      return MseLoss(predicted, truth, d_predicted);
    case LossType::kMae:
      return MaeLoss(predicted, truth, d_predicted);
    case LossType::kHuber:
      return HuberLoss(predicted, truth, 0.1f, d_predicted);
  }
  return 0.0;
}

}  // namespace pathrank::nn
