// First-order optimizers over a ParameterList. Frozen parameters are
// skipped (their state slots exist but are never advanced), which is how
// PR-A1 keeps the node2vec embedding matrix fixed.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "nn/parameter.h"

namespace pathrank::nn {

/// Abstract optimizer. Step() consumes the current gradients.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update using each parameter's current gradient.
  virtual void Step(const ParameterList& params) = 0;

  /// Current learning rate.
  double learning_rate() const { return lr_; }
  /// Sets the learning rate (called by schedulers between steps).
  void set_learning_rate(double lr) { lr_ = lr; }

  virtual std::string Name() const = 0;

 protected:
  explicit Optimizer(double lr) : lr_(lr) {}
  double lr_;
};

/// SGD with optional classical momentum.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0);
  void Step(const ParameterList& params) override;
  std::string Name() const override { return "sgd"; }

 private:
  double momentum_;
  std::unordered_map<const Parameter*, Matrix> velocity_;
};

/// Adam (Kingma & Ba 2015) with bias correction; optional decoupled weight
/// decay turns it into AdamW.
class Adam final : public Optimizer {
 public:
  Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
       double epsilon = 1e-8, double weight_decay = 0.0);
  void Step(const ParameterList& params) override;
  std::string Name() const override {
    return weight_decay_ > 0.0 ? "adamw" : "adam";
  }

 private:
  struct State {
    Matrix m;
    Matrix v;
  };
  double beta1_, beta2_, epsilon_, weight_decay_;
  int64_t t_ = 0;
  std::unordered_map<const Parameter*, State> state_;
};

}  // namespace pathrank::nn
