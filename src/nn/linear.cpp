#include "nn/linear.h"

#include "nn/layer_util.h"

namespace pathrank::nn {

LinearLayer::LinearLayer(size_t input_size, size_t output_size,
                         pathrank::Rng& rng, const std::string& p)
    : w_(p + ".w", input_size, output_size), b_(p + ".b", 1, output_size) {
  XavierInit(&w_.value, rng);
}

LinearLayer::LinearLayer(size_t input_size, size_t output_size, SkipInit,
                         const std::string& p)
    : w_(p + ".w", input_size, output_size), b_(p + ".b", 1, output_size) {}

void LinearLayer::Forward(const Matrix& x, Matrix* y) {
  x_cache_ = x;
  ForwardInference(x, y);
}

void LinearLayer::ForwardInference(const Matrix& x, Matrix* y) const {
  PR_CHECK(x.cols() == input_size());
  if (y->rows() != x.rows() || y->cols() != output_size()) {
    y->Resize(x.rows(), output_size());
  }
  GemmNN(x, w_.value, y);
  AddRowBroadcast(b_.value, y);
}

void LinearLayer::Backward(const Matrix& d_y, Matrix* d_x) {
  PR_CHECK(d_y.rows() == x_cache_.rows() && d_y.cols() == output_size());
  GemmTN(x_cache_, d_y, &w_.grad, 1.0f, 1.0f);
  AddColumnSums(d_y, &b_.grad);
  if (d_x != nullptr) {
    if (!d_x->SameShape(x_cache_)) {
      d_x->Resize(x_cache_.rows(), x_cache_.cols());
    }
    GemmNT(d_y, w_.value, d_x, 1.0f, 0.0f);
  }
}

}  // namespace pathrank::nn
