// Regression losses over a batch of scalar predictions. Each returns the
// mean loss and writes d(loss)/d(pred) (already divided by batch size).
#pragma once

#include <span>
#include <vector>

namespace pathrank::nn {

/// Loss selector.
enum class LossType { kMse, kMae, kHuber };

/// Mean squared error: L = mean((p - t)^2).
double MseLoss(std::span<const float> predicted, std::span<const float> truth,
               std::vector<float>* d_predicted);

/// Mean absolute error: L = mean(|p - t|). Subgradient 0 at p == t.
double MaeLoss(std::span<const float> predicted, std::span<const float> truth,
               std::vector<float>* d_predicted);

/// Huber loss with threshold `delta`.
double HuberLoss(std::span<const float> predicted,
                 std::span<const float> truth, float delta,
                 std::vector<float>* d_predicted);

/// Dispatch on LossType (Huber uses delta = 0.1).
double ComputeLoss(LossType type, std::span<const float> predicted,
                   std::span<const float> truth,
                   std::vector<float>* d_predicted);

}  // namespace pathrank::nn
