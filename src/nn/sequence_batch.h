// Padded mini-batch of vertex-id sequences — the input format of the
// recurrent layers. Row b holds sequence b left-aligned and padded with 0;
// `lengths[b]` gives the true length. Masking inside the recurrent layers
// makes the final hidden state of row b equal the state after step
// lengths[b], regardless of padding.
#pragma once

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace pathrank::nn {

/// One padded batch of token (vertex) id sequences.
struct SequenceBatch {
  size_t batch_size = 0;
  size_t max_len = 0;
  /// Row-major [batch_size x max_len] padded token ids.
  std::vector<int32_t> ids;
  /// True sequence lengths, each in [1, max_len].
  std::vector<int32_t> lengths;

  int32_t id_at(size_t b, size_t t) const { return ids[b * max_len + t]; }

  /// Builds a padded batch from ragged sequences.
  static SequenceBatch FromSequences(
      const std::vector<std::vector<int32_t>>& sequences) {
    SequenceBatch batch;
    batch.batch_size = sequences.size();
    for (const auto& s : sequences) {
      PR_CHECK(!s.empty()) << "empty sequence in batch";
      batch.max_len = std::max(batch.max_len, s.size());
    }
    batch.ids.assign(batch.batch_size * batch.max_len, 0);
    batch.lengths.resize(batch.batch_size);
    for (size_t b = 0; b < batch.batch_size; ++b) {
      batch.lengths[b] = static_cast<int32_t>(sequences[b].size());
      for (size_t t = 0; t < sequences[b].size(); ++t) {
        batch.ids[b * batch.max_len + t] = sequences[b][t];
      }
    }
    return batch;
  }

  /// Reversed copy (prefix of each row reversed in place, padding kept at
  /// the tail) — used by the backward direction of bidirectional models.
  SequenceBatch Reversed() const {
    SequenceBatch rev = *this;
    for (size_t b = 0; b < batch_size; ++b) {
      const size_t len = static_cast<size_t>(lengths[b]);
      for (size_t t = 0; t < len / 2; ++t) {
        std::swap(rev.ids[b * max_len + t], rev.ids[b * max_len + len - 1 - t]);
      }
    }
    return rev;
  }
};

}  // namespace pathrank::nn
