// Recurrent sequence encoders: GRU (the paper's choice), vanilla tanh RNN
// and LSTM (ablations). All share one interface:
//
//   Forward(x_steps, lengths, &final_h)   — x_steps[t] is the [B x input]
//     embedding of timestep t; final_h receives the hidden state of each
//     row after its true length (padding is masked, not processed).
//   Backward(d_final_h, &d_x_steps)       — exact BPTT; returns gradients
//     with respect to every input step and accumulates parameter grads.
//
// Implementations cache activations in Forward; a Backward call must follow
// the matching Forward call (standard training loop discipline).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/parameter.h"

namespace pathrank::nn {

/// Caller-owned activation buffers for the const inference path of the
/// recurrent layers (ForwardInference). One scratch per concurrent caller;
/// buffers are reshaped, not reallocated, when batch geometry repeats.
/// After ForwardInference, `h[t + 1]` is the hidden state after step t
/// (`h[0]` is the zero initial state) — the mean-pooling head reads it.
struct RecurrentScratch {
  std::vector<Matrix> h;   // [num_steps + 1] hidden states
  std::vector<Matrix> c;   // [num_steps + 1] LSTM cell states (LSTM only)
  Matrix g1, g2, g3, g4;   // per-step gate scratch, reused across steps
  Matrix tmp, tmp2;        // per-step intermediate scratch
};

/// Abstract masked recurrent encoder.
class RecurrentLayer {
 public:
  virtual ~RecurrentLayer() = default;

  /// Consumes `x_steps` (one [B x input_size] matrix per timestep) and
  /// writes the per-row final hidden state into `final_h` [B x hidden].
  virtual void Forward(const std::vector<Matrix>& x_steps,
                       const std::vector<int32_t>& lengths,
                       Matrix* final_h) = 0;

  /// Inference-only forward: bitwise-identical arithmetic to Forward, but
  /// every activation lands in the caller-owned `scratch` instead of the
  /// member caches, so the layer itself is never mutated — many threads
  /// may call this concurrently on one shared layer, each with its own
  /// scratch. No Backward may follow (use Forward for training).
  virtual void ForwardInference(const std::vector<Matrix>& x_steps,
                                const std::vector<int32_t>& lengths,
                                RecurrentScratch* scratch,
                                Matrix* final_h) const = 0;

  /// Hidden state after step `t` of the last Forward ([B x hidden]).
  /// Padded rows carry the last real state forward.
  virtual const Matrix& hidden_state(size_t t) const = 0;

  /// Backpropagates `d_final_h` [B x hidden]; writes input gradients into
  /// `d_x_steps` (resized to match the last Forward) and accumulates
  /// parameter gradients.
  void Backward(const Matrix& d_final_h, std::vector<Matrix>* d_x_steps) {
    BackwardImpl(&d_final_h, nullptr, d_x_steps);
  }

  /// Backpropagates per-step hidden-state gradients (`d_h_steps[t]` is the
  /// gradient on hidden_state(t)); used by mean-pooling heads. Rows beyond
  /// a sequence's true length must carry zero gradient.
  void BackwardSteps(const std::vector<Matrix>& d_h_steps,
                     std::vector<Matrix>* d_x_steps) {
    BackwardImpl(nullptr, &d_h_steps, d_x_steps);
  }

  virtual ParameterList Parameters() = 0;
  virtual ConstParameterList Parameters() const = 0;
  virtual size_t input_size() const = 0;
  virtual size_t hidden_size() const = 0;
  virtual std::string Name() const = 0;

 protected:
  /// Exactly one of `d_final_h` / `d_h_steps` is non-null.
  virtual void BackwardImpl(const Matrix* d_final_h,
                            const std::vector<Matrix>* d_h_steps,
                            std::vector<Matrix>* d_x_steps) = 0;
};

/// Cell selector used by configs and the ablation bench.
enum class CellType { kGru, kRnn, kLstm };

std::string CellTypeName(CellType type);
CellType ParseCellType(const std::string& name);

/// GRU with update gate z, reset gate r:
///   z = sigmoid(x Wz + h Uz + bz),  r = sigmoid(x Wr + h Ur + br)
///   hhat = tanh(x Wh + (r*h) Uh + bh),  h' = (1-z)*h + z*hhat
class GruLayer final : public RecurrentLayer {
 public:
  GruLayer(size_t input_size, size_t hidden_size, pathrank::Rng& rng,
           const std::string& name_prefix = "gru");
  GruLayer(size_t input_size, size_t hidden_size, SkipInit,
           const std::string& name_prefix = "gru");

  void Forward(const std::vector<Matrix>& x_steps,
               const std::vector<int32_t>& lengths, Matrix* final_h) override;
  void ForwardInference(const std::vector<Matrix>& x_steps,
                        const std::vector<int32_t>& lengths,
                        RecurrentScratch* scratch,
                        Matrix* final_h) const override;
  const Matrix& hidden_state(size_t t) const override { return h_[t + 1]; }
  ParameterList Parameters() override;
  ConstParameterList Parameters() const override;
  size_t input_size() const override { return wz_.value.rows(); }
  size_t hidden_size() const override { return wz_.value.cols(); }
  std::string Name() const override { return "gru"; }

 protected:
  void BackwardImpl(const Matrix* d_final_h,
                    const std::vector<Matrix>* d_h_steps,
                    std::vector<Matrix>* d_x_steps) override;

 private:
  Parameter wz_, wr_, wh_;  // [input x hidden]
  Parameter uz_, ur_, uh_;  // [hidden x hidden]
  Parameter bz_, br_, bh_;  // [1 x hidden]

  // Forward caches.
  const std::vector<Matrix>* x_steps_ = nullptr;
  std::vector<int32_t> lengths_;
  std::vector<Matrix> h_;     // h_[t] = state after step t; h_[0] = 0
  std::vector<Matrix> z_;     // raw update gate per step
  std::vector<Matrix> r_;     // raw reset gate per step
  std::vector<Matrix> hhat_;  // candidate state per step
  std::vector<Matrix> rh_;    // r * h_prev per step
};

/// Vanilla tanh RNN: h' = tanh(x W + h U + b).
class RnnLayer final : public RecurrentLayer {
 public:
  RnnLayer(size_t input_size, size_t hidden_size, pathrank::Rng& rng,
           const std::string& name_prefix = "rnn");
  RnnLayer(size_t input_size, size_t hidden_size, SkipInit,
           const std::string& name_prefix = "rnn");

  void Forward(const std::vector<Matrix>& x_steps,
               const std::vector<int32_t>& lengths, Matrix* final_h) override;
  void ForwardInference(const std::vector<Matrix>& x_steps,
                        const std::vector<int32_t>& lengths,
                        RecurrentScratch* scratch,
                        Matrix* final_h) const override;
  const Matrix& hidden_state(size_t t) const override { return h_[t + 1]; }
  ParameterList Parameters() override;
  ConstParameterList Parameters() const override;
  size_t input_size() const override { return w_.value.rows(); }
  size_t hidden_size() const override { return w_.value.cols(); }
  std::string Name() const override { return "rnn"; }

 protected:
  void BackwardImpl(const Matrix* d_final_h,
                    const std::vector<Matrix>* d_h_steps,
                    std::vector<Matrix>* d_x_steps) override;

 private:
  Parameter w_, u_, b_;

  const std::vector<Matrix>* x_steps_ = nullptr;
  std::vector<int32_t> lengths_;
  std::vector<Matrix> h_;      // masked states; h_[0] = 0
  std::vector<Matrix> hnew_;   // unmasked tanh output per step
};

/// LSTM with forget/input/output gates and cell state.
class LstmLayer final : public RecurrentLayer {
 public:
  LstmLayer(size_t input_size, size_t hidden_size, pathrank::Rng& rng,
            const std::string& name_prefix = "lstm");
  LstmLayer(size_t input_size, size_t hidden_size, SkipInit,
            const std::string& name_prefix = "lstm");

  void Forward(const std::vector<Matrix>& x_steps,
               const std::vector<int32_t>& lengths, Matrix* final_h) override;
  void ForwardInference(const std::vector<Matrix>& x_steps,
                        const std::vector<int32_t>& lengths,
                        RecurrentScratch* scratch,
                        Matrix* final_h) const override;
  const Matrix& hidden_state(size_t t) const override { return h_[t + 1]; }
  ParameterList Parameters() override;
  ConstParameterList Parameters() const override;
  size_t input_size() const override { return wi_.value.rows(); }
  size_t hidden_size() const override { return wi_.value.cols(); }
  std::string Name() const override { return "lstm"; }

 protected:
  void BackwardImpl(const Matrix* d_final_h,
                    const std::vector<Matrix>* d_h_steps,
                    std::vector<Matrix>* d_x_steps) override;

 private:
  Parameter wi_, wf_, wo_, wg_;  // [input x hidden]
  Parameter ui_, uf_, uo_, ug_;  // [hidden x hidden]
  Parameter bi_, bf_, bo_, bg_;  // [1 x hidden]

  const std::vector<Matrix>* x_steps_ = nullptr;
  std::vector<int32_t> lengths_;
  std::vector<Matrix> h_, c_;               // masked states; index 0 = 0
  std::vector<Matrix> i_, f_, o_, g_;       // gates per step
  std::vector<Matrix> c_new_, tanh_c_new_;  // unmasked cell and tanh(cell)
};

/// Factory for the configured cell type. `name_prefix` namespaces the
/// parameters (must be unique per layer instance within a model so
/// checkpoints can address them).
std::unique_ptr<RecurrentLayer> MakeRecurrentLayer(
    CellType type, size_t input_size, size_t hidden_size, pathrank::Rng& rng,
    const std::string& name_prefix);

/// Skip-init factory variant for replica/snapshot builders: weights are
/// left zero and must be copied into before use.
std::unique_ptr<RecurrentLayer> MakeRecurrentLayer(
    CellType type, size_t input_size, size_t hidden_size, SkipInit,
    const std::string& name_prefix);

}  // namespace pathrank::nn
