#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <unordered_map>

namespace pathrank::nn {
namespace {

constexpr uint32_t kMatrixMagic = 0x50524D31;  // "PRM1"
constexpr uint32_t kParamsMagic = 0x50525031;  // "PRP1"

void Put32(std::ostream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

uint32_t Get32(std::istream& in) {
  uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("truncated stream");
  return v;
}

void PutString(std::ostream& out, const std::string& s) {
  Put32(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string GetString(std::istream& in) {
  const uint32_t n = Get32(in);
  std::string s(n, '\0');
  in.read(s.data(), n);
  if (!in) throw std::runtime_error("truncated stream");
  return s;
}

}  // namespace

void WriteMatrix(std::ostream& out, const Matrix& m) {
  Put32(out, kMatrixMagic);
  Put32(out, static_cast<uint32_t>(m.rows()));
  Put32(out, static_cast<uint32_t>(m.cols()));
  out.write(reinterpret_cast<const char*>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(float)));
}

Matrix ReadMatrix(std::istream& in) {
  if (Get32(in) != kMatrixMagic) {
    throw std::runtime_error("bad matrix magic");
  }
  const uint32_t rows = Get32(in);
  const uint32_t cols = Get32(in);
  Matrix m(rows, cols);
  in.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.size() * sizeof(float)));
  if (!in) throw std::runtime_error("truncated matrix payload");
  return m;
}

void SaveParameters(const ParameterList& params, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + path);
  Put32(out, kParamsMagic);
  Put32(out, static_cast<uint32_t>(params.size()));
  for (const Parameter* p : params) {
    PutString(out, p->name);
    WriteMatrix(out, p->value);
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

void LoadParameters(const ParameterList& params, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  if (Get32(in) != kParamsMagic) {
    throw std::runtime_error("bad params magic in " + path);
  }
  const uint32_t count = Get32(in);
  std::unordered_map<std::string, Matrix> loaded;
  for (uint32_t i = 0; i < count; ++i) {
    std::string name = GetString(in);
    loaded.emplace(std::move(name), ReadMatrix(in));
  }
  for (Parameter* p : params) {
    auto it = loaded.find(p->name);
    if (it == loaded.end()) {
      throw std::runtime_error("parameter not in checkpoint: " + p->name);
    }
    if (!it->second.SameShape(p->value)) {
      throw std::runtime_error("shape mismatch for parameter: " + p->name);
    }
    p->value = std::move(it->second);
  }
}

void SaveMatrix(const Matrix& m, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + path);
  WriteMatrix(out, m);
  if (!out) throw std::runtime_error("write failed: " + path);
}

Matrix LoadMatrix(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return ReadMatrix(in);
}

}  // namespace pathrank::nn
