#include "nn/optimizer.h"

#include <cmath>

namespace pathrank::nn {

Sgd::Sgd(double lr, double momentum) : Optimizer(lr), momentum_(momentum) {}

void Sgd::Step(const ParameterList& params) {
  const auto lr = static_cast<float>(lr_);
  for (Parameter* p : params) {
    if (p->frozen) continue;
    if (momentum_ > 0.0) {
      Matrix& vel = velocity_[p];
      if (!vel.SameShape(p->value)) vel.Resize(p->value.rows(), p->value.cols());
      const auto mu = static_cast<float>(momentum_);
      float* v = vel.data();
      const float* g = p->grad.data();
      float* w = p->value.data();
      const size_t n = p->value.size();
      for (size_t i = 0; i < n; ++i) {
        v[i] = mu * v[i] + g[i];
        w[i] -= lr * v[i];
      }
    } else {
      p->value.Axpy(-lr, p->grad);
    }
  }
}

Adam::Adam(double lr, double beta1, double beta2, double epsilon,
           double weight_decay)
    : Optimizer(lr),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      weight_decay_(weight_decay) {}

void Adam::Step(const ParameterList& params) {
  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  const auto lr = static_cast<float>(lr_);
  const auto b1 = static_cast<float>(beta1_);
  const auto b2 = static_cast<float>(beta2_);
  const auto eps = static_cast<float>(epsilon_);
  const auto wd = static_cast<float>(weight_decay_);
  const auto inv_bias1 = static_cast<float>(1.0 / bias1);
  const auto inv_bias2 = static_cast<float>(1.0 / bias2);

  for (Parameter* p : params) {
    if (p->frozen) continue;
    State& s = state_[p];
    if (!s.m.SameShape(p->value)) {
      s.m.Resize(p->value.rows(), p->value.cols());
      s.v.Resize(p->value.rows(), p->value.cols());
    }
    float* m = s.m.data();
    float* v = s.v.data();
    const float* g = p->grad.data();
    float* w = p->value.data();
    const size_t n = p->value.size();
    for (size_t i = 0; i < n; ++i) {
      m[i] = b1 * m[i] + (1.0f - b1) * g[i];
      v[i] = b2 * v[i] + (1.0f - b2) * g[i] * g[i];
      const float mhat = m[i] * inv_bias1;
      const float vhat = v[i] * inv_bias2;
      w[i] -= lr * (mhat / (std::sqrt(vhat) + eps) + wd * w[i]);
    }
  }
}

}  // namespace pathrank::nn
