// Learning-rate schedules. Stateless functions of the epoch index applied
// to an optimizer between epochs.
#pragma once

#include <algorithm>
#include <cmath>

namespace pathrank::nn {

/// Schedule selector.
enum class ScheduleType { kConstant, kStepDecay, kCosine };

/// Schedule parameters.
struct ScheduleConfig {
  ScheduleType type = ScheduleType::kConstant;
  double base_lr = 1e-3;
  /// kStepDecay: multiply by `decay` every `step_every` epochs.
  double decay = 0.5;
  int step_every = 4;
  /// kCosine: anneal to `min_lr` over `total_epochs`.
  double min_lr = 1e-5;
  int total_epochs = 10;
};

/// Learning rate for `epoch` (0-based).
inline double LearningRateAt(const ScheduleConfig& cfg, int epoch) {
  switch (cfg.type) {
    case ScheduleType::kConstant:
      return cfg.base_lr;
    case ScheduleType::kStepDecay: {
      const int steps = cfg.step_every > 0 ? epoch / cfg.step_every : 0;
      return cfg.base_lr * std::pow(cfg.decay, steps);
    }
    case ScheduleType::kCosine: {
      const double T = std::max(1, cfg.total_epochs - 1);
      const double frac = std::clamp(epoch / T, 0.0, 1.0);
      return cfg.min_lr + 0.5 * (cfg.base_lr - cfg.min_lr) *
                              (1.0 + std::cos(3.14159265358979323846 * frac));
    }
  }
  return cfg.base_lr;
}

}  // namespace pathrank::nn
