#include "nn/recurrent.h"

#include <algorithm>
#include <stdexcept>

#include "nn/layer_util.h"

namespace pathrank::nn {
namespace {

/// out[i] = dh[i] * g[i] * (1 - g[i])  (sigmoid derivative through gate g).
void SigmoidBackward(const Matrix& dh, const Matrix& g, Matrix* out) {
  PR_CHECK(dh.SameShape(g));
  if (!out->SameShape(g)) out->Resize(g.rows(), g.cols());
  const float* pd = dh.data();
  const float* pg = g.data();
  float* po = out->data();
  for (size_t i = 0; i < g.size(); ++i) {
    po[i] = pd[i] * pg[i] * (1.0f - pg[i]);
  }
}

/// out[i] = dh[i] * (1 - t[i]^2)  (tanh derivative through activation t).
void TanhBackward(const Matrix& dh, const Matrix& t, Matrix* out) {
  PR_CHECK(dh.SameShape(t));
  if (!out->SameShape(t)) out->Resize(t.rows(), t.cols());
  const float* pd = dh.data();
  const float* pt = t.data();
  float* po = out->data();
  for (size_t i = 0; i < t.size(); ++i) {
    po[i] = pd[i] * (1.0f - pt[i] * pt[i]);
  }
}

}  // namespace

std::string CellTypeName(CellType type) {
  switch (type) {
    case CellType::kGru:
      return "gru";
    case CellType::kRnn:
      return "rnn";
    case CellType::kLstm:
      return "lstm";
  }
  return "?";
}

CellType ParseCellType(const std::string& name) {
  if (name == "gru") return CellType::kGru;
  if (name == "rnn") return CellType::kRnn;
  if (name == "lstm") return CellType::kLstm;
  throw std::invalid_argument("unknown cell type: " + name);
}

// ---------------------------------------------------------------- GRU ----

GruLayer::GruLayer(size_t input_size, size_t hidden_size, pathrank::Rng& rng,
                   const std::string& p)
    : wz_(p + ".wz", input_size, hidden_size),
      wr_(p + ".wr", input_size, hidden_size),
      wh_(p + ".wh", input_size, hidden_size),
      uz_(p + ".uz", hidden_size, hidden_size),
      ur_(p + ".ur", hidden_size, hidden_size),
      uh_(p + ".uh", hidden_size, hidden_size),
      bz_(p + ".bz", 1, hidden_size),
      br_(p + ".br", 1, hidden_size),
      bh_(p + ".bh", 1, hidden_size) {
  for (Parameter* w : {&wz_, &wr_, &wh_, &uz_, &ur_, &uh_}) {
    XavierInit(&w->value, rng);
  }
}

GruLayer::GruLayer(size_t input_size, size_t hidden_size, SkipInit,
                   const std::string& p)
    : wz_(p + ".wz", input_size, hidden_size),
      wr_(p + ".wr", input_size, hidden_size),
      wh_(p + ".wh", input_size, hidden_size),
      uz_(p + ".uz", hidden_size, hidden_size),
      ur_(p + ".ur", hidden_size, hidden_size),
      uh_(p + ".uh", hidden_size, hidden_size),
      bz_(p + ".bz", 1, hidden_size),
      br_(p + ".br", 1, hidden_size),
      bh_(p + ".bh", 1, hidden_size) {}

void GruLayer::Forward(const std::vector<Matrix>& x_steps,
                       const std::vector<int32_t>& lengths, Matrix* final_h) {
  const size_t num_steps = x_steps.size();
  PR_CHECK(num_steps > 0);
  const size_t batch = x_steps[0].rows();
  const size_t hidden = hidden_size();

  x_steps_ = &x_steps;
  lengths_ = lengths;
  // Caches persist across calls; only reshaped (never reallocated when the
  // batch geometry repeats). Gates are computed directly into their cache
  // slot, so each step allocates nothing.
  EnsureStepShapes(&h_, num_steps + 1, batch, hidden);
  EnsureStepShapes(&z_, num_steps, batch, hidden);
  EnsureStepShapes(&r_, num_steps, batch, hidden);
  EnsureStepShapes(&hhat_, num_steps, batch, hidden);
  EnsureStepShapes(&rh_, num_steps, batch, hidden);
  h_[0].Zero();  // zero initial state

  for (size_t t = 0; t < num_steps; ++t) {
    const Matrix& x = x_steps[t];
    const Matrix& h_prev = h_[t];
    PR_CHECK(x.cols() == input_size());

    Matrix& z = z_[t];
    GemmNN(x, wz_.value, &z);
    GemmNN(h_prev, uz_.value, &z, 1.0f, 1.0f);
    AddRowBroadcast(bz_.value, &z);
    SigmoidInPlace(&z);

    Matrix& r = r_[t];
    GemmNN(x, wr_.value, &r);
    GemmNN(h_prev, ur_.value, &r, 1.0f, 1.0f);
    AddRowBroadcast(br_.value, &r);
    SigmoidInPlace(&r);

    Hadamard(r, h_prev, &rh_[t]);

    Matrix& hhat = hhat_[t];
    GemmNN(x, wh_.value, &hhat);
    GemmNN(rh_[t], uh_.value, &hhat, 1.0f, 1.0f);
    AddRowBroadcast(bh_.value, &hhat);
    TanhInPlace(&hhat);

    // h_new = h_prev + m*z*(hhat - h_prev): masked rows keep h_prev.
    const auto mask = StepMask(lengths_, t);
    Matrix& h_new = h_[t + 1];
    for (size_t b = 0; b < batch; ++b) {
      float* hn = h_new.row(b);
      const float* hp = h_prev.row(b);
      if (mask[b] == 0.0f) {
        std::copy(hp, hp + hidden, hn);
        continue;
      }
      const float* zz = z.row(b);
      const float* hh = hhat.row(b);
      for (size_t c = 0; c < hidden; ++c) {
        hn[c] = (1.0f - zz[c]) * hp[c] + zz[c] * hh[c];
      }
    }
  }
  *final_h = h_[num_steps];
}

void GruLayer::ForwardInference(const std::vector<Matrix>& x_steps,
                                const std::vector<int32_t>& lengths,
                                RecurrentScratch* s, Matrix* final_h) const {
  const size_t num_steps = x_steps.size();
  PR_CHECK(num_steps > 0);
  const size_t batch = x_steps[0].rows();
  const size_t hidden = hidden_size();

  // Same arithmetic and operation order as Forward — scores must be
  // bitwise identical — but gates live in per-step scratch (no Backward
  // follows) and hidden states in the caller's buffers.
  EnsureStepShapes(&s->h, num_steps + 1, batch, hidden);
  Matrix& z = s->g1;
  Matrix& r = s->g2;
  Matrix& hhat = s->g3;
  Matrix& rh = s->g4;
  z.ResizeNoZero(batch, hidden);
  r.ResizeNoZero(batch, hidden);
  hhat.ResizeNoZero(batch, hidden);
  rh.ResizeNoZero(batch, hidden);
  s->h[0].Zero();

  for (size_t t = 0; t < num_steps; ++t) {
    const Matrix& x = x_steps[t];
    const Matrix& h_prev = s->h[t];
    PR_CHECK(x.cols() == input_size());

    GemmNN(x, wz_.value, &z);
    GemmNN(h_prev, uz_.value, &z, 1.0f, 1.0f);
    AddRowBroadcast(bz_.value, &z);
    SigmoidInPlace(&z);

    GemmNN(x, wr_.value, &r);
    GemmNN(h_prev, ur_.value, &r, 1.0f, 1.0f);
    AddRowBroadcast(br_.value, &r);
    SigmoidInPlace(&r);

    Hadamard(r, h_prev, &rh);

    GemmNN(x, wh_.value, &hhat);
    GemmNN(rh, uh_.value, &hhat, 1.0f, 1.0f);
    AddRowBroadcast(bh_.value, &hhat);
    TanhInPlace(&hhat);

    const auto mask = StepMask(lengths, t);
    Matrix& h_new = s->h[t + 1];
    for (size_t b = 0; b < batch; ++b) {
      float* hn = h_new.row(b);
      const float* hp = h_prev.row(b);
      if (mask[b] == 0.0f) {
        std::copy(hp, hp + hidden, hn);
        continue;
      }
      const float* zz = z.row(b);
      const float* hh = hhat.row(b);
      for (size_t c = 0; c < hidden; ++c) {
        hn[c] = (1.0f - zz[c]) * hp[c] + zz[c] * hh[c];
      }
    }
  }
  *final_h = s->h[num_steps];
}

void GruLayer::BackwardImpl(const Matrix* d_final_h,
                            const std::vector<Matrix>* d_h_steps,
                            std::vector<Matrix>* d_x_steps) {
  PR_CHECK(x_steps_ != nullptr) << "Backward without Forward";
  const auto& x_steps = *x_steps_;
  const size_t num_steps = x_steps.size();
  const size_t batch = x_steps[0].rows();
  const size_t hidden = hidden_size();

  EnsureStepShapes(d_x_steps, num_steps, batch, input_size());
  Matrix dh(batch, hidden);
  if (d_final_h != nullptr) dh = *d_final_h;
  // Scratch: every element is overwritten before use each step.
  Matrix dh_prev(batch, hidden);
  Matrix dhhat(batch, hidden);
  Matrix dz_raw(batch, hidden);
  Matrix da(batch, hidden);
  Matrix drh(batch, hidden);
  Matrix dr(batch, hidden);

  for (size_t t = num_steps; t-- > 0;) {
    if (d_h_steps != nullptr) dh.Add((*d_h_steps)[t]);
    const Matrix& x = x_steps[t];
    const Matrix& h_prev = h_[t];
    const Matrix& z = z_[t];
    const Matrix& r = r_[t];
    const Matrix& hhat = hhat_[t];
    const auto mask = StepMask(lengths_, t);

    Matrix& dx = (*d_x_steps)[t];

    // dhhat = dh * z * m ;  dz_raw = dh * (hhat - h_prev) * m
    // dh_prev = dh * (1 - z*m)
    for (size_t b = 0; b < batch; ++b) {
      const float m = mask[b];
      const float* pdh = dh.row(b);
      const float* pz = z.row(b);
      const float* phh = hhat.row(b);
      const float* php = h_prev.row(b);
      float* pdhh = dhhat.row(b);
      float* pdz = dz_raw.row(b);
      float* pdhp = dh_prev.row(b);
      for (size_t c = 0; c < hidden; ++c) {
        const float zm = pz[c] * m;
        pdhh[c] = pdh[c] * zm;
        pdz[c] = pdh[c] * (phh[c] - php[c]) * m;
        pdhp[c] = pdh[c] * (1.0f - zm);
      }
    }

    // Candidate branch.
    TanhBackward(dhhat, hhat, &da);
    GemmTN(x, da, &wh_.grad, 1.0f, 1.0f);
    GemmTN(rh_[t], da, &uh_.grad, 1.0f, 1.0f);
    AddColumnSums(da, &bh_.grad);
    GemmNT(da, wh_.value, &dx, 1.0f, 0.0f);
    GemmNT(da, uh_.value, &drh, 1.0f, 0.0f);

    // Reset branch: drh splits into dr (through r) and dh_prev (through h).
    Hadamard(drh, h_prev, &dr);
    {
      // dh_prev += drh * r
      const float* pd = drh.data();
      const float* pr = r.data();
      float* po = dh_prev.data();
      for (size_t i = 0; i < drh.size(); ++i) po[i] += pd[i] * pr[i];
    }

    // Update gate.
    SigmoidBackward(dz_raw, z, &da);
    GemmTN(x, da, &wz_.grad, 1.0f, 1.0f);
    GemmTN(h_prev, da, &uz_.grad, 1.0f, 1.0f);
    AddColumnSums(da, &bz_.grad);
    GemmNT(da, wz_.value, &dx, 1.0f, 1.0f);
    GemmNT(da, uz_.value, &dh_prev, 1.0f, 1.0f);

    // Reset gate.
    SigmoidBackward(dr, r, &da);
    GemmTN(x, da, &wr_.grad, 1.0f, 1.0f);
    GemmTN(h_prev, da, &ur_.grad, 1.0f, 1.0f);
    AddColumnSums(da, &br_.grad);
    GemmNT(da, wr_.value, &dx, 1.0f, 1.0f);
    GemmNT(da, ur_.value, &dh_prev, 1.0f, 1.0f);

    std::swap(dh, dh_prev);
  }
  x_steps_ = nullptr;
}

ParameterList GruLayer::Parameters() {
  return {&wz_, &wr_, &wh_, &uz_, &ur_, &uh_, &bz_, &br_, &bh_};
}

ConstParameterList GruLayer::Parameters() const {
  return {&wz_, &wr_, &wh_, &uz_, &ur_, &uh_, &bz_, &br_, &bh_};
}

// ---------------------------------------------------------------- RNN ----

RnnLayer::RnnLayer(size_t input_size, size_t hidden_size, pathrank::Rng& rng,
                   const std::string& p)
    : w_(p + ".w", input_size, hidden_size),
      u_(p + ".u", hidden_size, hidden_size),
      b_(p + ".b", 1, hidden_size) {
  XavierInit(&w_.value, rng);
  XavierInit(&u_.value, rng);
}

RnnLayer::RnnLayer(size_t input_size, size_t hidden_size, SkipInit,
                   const std::string& p)
    : w_(p + ".w", input_size, hidden_size),
      u_(p + ".u", hidden_size, hidden_size),
      b_(p + ".b", 1, hidden_size) {}

void RnnLayer::Forward(const std::vector<Matrix>& x_steps,
                       const std::vector<int32_t>& lengths, Matrix* final_h) {
  const size_t num_steps = x_steps.size();
  PR_CHECK(num_steps > 0);
  const size_t batch = x_steps[0].rows();
  const size_t hidden = hidden_size();

  x_steps_ = &x_steps;
  lengths_ = lengths;
  EnsureStepShapes(&h_, num_steps + 1, batch, hidden);
  EnsureStepShapes(&hnew_, num_steps, batch, hidden);
  h_[0].Zero();

  for (size_t t = 0; t < num_steps; ++t) {
    const Matrix& x = x_steps[t];
    const Matrix& h_prev = h_[t];
    Matrix& hnew = hnew_[t];
    GemmNN(x, w_.value, &hnew);
    GemmNN(h_prev, u_.value, &hnew, 1.0f, 1.0f);
    AddRowBroadcast(b_.value, &hnew);
    TanhInPlace(&hnew);

    const auto mask = StepMask(lengths_, t);
    Matrix& h_new = h_[t + 1];
    for (size_t bb = 0; bb < batch; ++bb) {
      const float* src = mask[bb] == 0.0f ? h_prev.row(bb) : hnew.row(bb);
      std::copy(src, src + hidden, h_new.row(bb));
    }
  }
  *final_h = h_[num_steps];
}

void RnnLayer::ForwardInference(const std::vector<Matrix>& x_steps,
                                const std::vector<int32_t>& lengths,
                                RecurrentScratch* s, Matrix* final_h) const {
  const size_t num_steps = x_steps.size();
  PR_CHECK(num_steps > 0);
  const size_t batch = x_steps[0].rows();
  const size_t hidden = hidden_size();

  EnsureStepShapes(&s->h, num_steps + 1, batch, hidden);
  Matrix& hnew = s->g1;
  hnew.ResizeNoZero(batch, hidden);
  s->h[0].Zero();

  for (size_t t = 0; t < num_steps; ++t) {
    const Matrix& x = x_steps[t];
    const Matrix& h_prev = s->h[t];
    GemmNN(x, w_.value, &hnew);
    GemmNN(h_prev, u_.value, &hnew, 1.0f, 1.0f);
    AddRowBroadcast(b_.value, &hnew);
    TanhInPlace(&hnew);

    const auto mask = StepMask(lengths, t);
    Matrix& h_new = s->h[t + 1];
    for (size_t bb = 0; bb < batch; ++bb) {
      const float* src = mask[bb] == 0.0f ? h_prev.row(bb) : hnew.row(bb);
      std::copy(src, src + hidden, h_new.row(bb));
    }
  }
  *final_h = s->h[num_steps];
}

void RnnLayer::BackwardImpl(const Matrix* d_final_h,
                            const std::vector<Matrix>* d_h_steps,
                            std::vector<Matrix>* d_x_steps) {
  PR_CHECK(x_steps_ != nullptr) << "Backward without Forward";
  const auto& x_steps = *x_steps_;
  const size_t num_steps = x_steps.size();
  const size_t batch = x_steps[0].rows();
  const size_t hidden = hidden_size();

  EnsureStepShapes(d_x_steps, num_steps, batch, input_size());
  Matrix dh(batch, hidden);
  if (d_final_h != nullptr) dh = *d_final_h;
  // Scratch: fully overwritten each step.
  Matrix dh_prev(batch, hidden);
  Matrix dhnew(batch, hidden);
  Matrix da(batch, hidden);

  for (size_t t = num_steps; t-- > 0;) {
    if (d_h_steps != nullptr) dh.Add((*d_h_steps)[t]);
    const Matrix& x = x_steps[t];
    const Matrix& h_prev = h_[t];
    const auto mask = StepMask(lengths_, t);

    for (size_t bb = 0; bb < batch; ++bb) {
      const float m = mask[bb];
      const float* pdh = dh.row(bb);
      float* pn = dhnew.row(bb);
      float* pp = dh_prev.row(bb);
      for (size_t c = 0; c < hidden; ++c) {
        pn[c] = pdh[c] * m;
        pp[c] = pdh[c] * (1.0f - m);
      }
    }

    TanhBackward(dhnew, hnew_[t], &da);
    GemmTN(x, da, &w_.grad, 1.0f, 1.0f);
    GemmTN(h_prev, da, &u_.grad, 1.0f, 1.0f);
    AddColumnSums(da, &b_.grad);
    Matrix& dx = (*d_x_steps)[t];
    GemmNT(da, w_.value, &dx, 1.0f, 0.0f);
    GemmNT(da, u_.value, &dh_prev, 1.0f, 1.0f);

    std::swap(dh, dh_prev);
  }
  x_steps_ = nullptr;
}

ParameterList RnnLayer::Parameters() { return {&w_, &u_, &b_}; }

ConstParameterList RnnLayer::Parameters() const { return {&w_, &u_, &b_}; }

// --------------------------------------------------------------- LSTM ----

LstmLayer::LstmLayer(size_t input_size, size_t hidden_size,
                     pathrank::Rng& rng, const std::string& p)
    : wi_(p + ".wi", input_size, hidden_size),
      wf_(p + ".wf", input_size, hidden_size),
      wo_(p + ".wo", input_size, hidden_size),
      wg_(p + ".wg", input_size, hidden_size),
      ui_(p + ".ui", hidden_size, hidden_size),
      uf_(p + ".uf", hidden_size, hidden_size),
      uo_(p + ".uo", hidden_size, hidden_size),
      ug_(p + ".ug", hidden_size, hidden_size),
      bi_(p + ".bi", 1, hidden_size),
      bf_(p + ".bf", 1, hidden_size),
      bo_(p + ".bo", 1, hidden_size),
      bg_(p + ".bg", 1, hidden_size) {
  for (Parameter* w : {&wi_, &wf_, &wo_, &wg_, &ui_, &uf_, &uo_, &ug_}) {
    XavierInit(&w->value, rng);
  }
  bf_.value.Fill(1.0f);  // standard forget-gate bias init
}

LstmLayer::LstmLayer(size_t input_size, size_t hidden_size, SkipInit,
                     const std::string& p)
    : wi_(p + ".wi", input_size, hidden_size),
      wf_(p + ".wf", input_size, hidden_size),
      wo_(p + ".wo", input_size, hidden_size),
      wg_(p + ".wg", input_size, hidden_size),
      ui_(p + ".ui", hidden_size, hidden_size),
      uf_(p + ".uf", hidden_size, hidden_size),
      uo_(p + ".uo", hidden_size, hidden_size),
      ug_(p + ".ug", hidden_size, hidden_size),
      bi_(p + ".bi", 1, hidden_size),
      bf_(p + ".bf", 1, hidden_size),
      bo_(p + ".bo", 1, hidden_size),
      bg_(p + ".bg", 1, hidden_size) {}

void LstmLayer::Forward(const std::vector<Matrix>& x_steps,
                        const std::vector<int32_t>& lengths,
                        Matrix* final_h) {
  const size_t num_steps = x_steps.size();
  PR_CHECK(num_steps > 0);
  const size_t batch = x_steps[0].rows();
  const size_t hidden = hidden_size();

  x_steps_ = &x_steps;
  lengths_ = lengths;
  EnsureStepShapes(&h_, num_steps + 1, batch, hidden);
  EnsureStepShapes(&c_, num_steps + 1, batch, hidden);
  EnsureStepShapes(&i_, num_steps, batch, hidden);
  EnsureStepShapes(&f_, num_steps, batch, hidden);
  EnsureStepShapes(&o_, num_steps, batch, hidden);
  EnsureStepShapes(&g_, num_steps, batch, hidden);
  EnsureStepShapes(&c_new_, num_steps, batch, hidden);
  EnsureStepShapes(&tanh_c_new_, num_steps, batch, hidden);
  h_[0].Zero();
  c_[0].Zero();

  // Gates are computed directly into their cache slot.
  auto gate = [](const Matrix& x, const Matrix& h_prev, const Parameter& w,
                 const Parameter& u, const Parameter& b, bool is_tanh,
                 Matrix* out) {
    GemmNN(x, w.value, out);
    GemmNN(h_prev, u.value, out, 1.0f, 1.0f);
    AddRowBroadcast(b.value, out);
    if (is_tanh) {
      TanhInPlace(out);
    } else {
      SigmoidInPlace(out);
    }
  };

  for (size_t t = 0; t < num_steps; ++t) {
    const Matrix& x = x_steps[t];
    const Matrix& h_prev = h_[t];
    const Matrix& c_prev = c_[t];
    gate(x, h_prev, wi_, ui_, bi_, false, &i_[t]);
    gate(x, h_prev, wf_, uf_, bf_, false, &f_[t]);
    gate(x, h_prev, wo_, uo_, bo_, false, &o_[t]);
    gate(x, h_prev, wg_, ug_, bg_, true, &g_[t]);

    Matrix& cn = c_new_[t];
    for (size_t bb = 0; bb < batch; ++bb) {
      const float* pf = f_[t].row(bb);
      const float* pi = i_[t].row(bb);
      const float* pg = g_[t].row(bb);
      const float* pc = c_prev.row(bb);
      float* pcn = cn.row(bb);
      for (size_t cidx = 0; cidx < hidden; ++cidx) {
        pcn[cidx] = pf[cidx] * pc[cidx] + pi[cidx] * pg[cidx];
      }
    }
    tanh_c_new_[t] = cn;
    TanhInPlace(&tanh_c_new_[t]);

    const auto mask = StepMask(lengths_, t);
    Matrix& h_next = h_[t + 1];
    Matrix& c_next = c_[t + 1];
    for (size_t bb = 0; bb < batch; ++bb) {
      float* ph = h_next.row(bb);
      float* pc = c_next.row(bb);
      if (mask[bb] == 0.0f) {
        std::copy(h_prev.row(bb), h_prev.row(bb) + hidden, ph);
        std::copy(c_prev.row(bb), c_prev.row(bb) + hidden, pc);
        continue;
      }
      const float* po = o_[t].row(bb);
      const float* ptc = tanh_c_new_[t].row(bb);
      const float* pcn = cn.row(bb);
      for (size_t cidx = 0; cidx < hidden; ++cidx) {
        ph[cidx] = po[cidx] * ptc[cidx];
        pc[cidx] = pcn[cidx];
      }
    }
  }
  *final_h = h_[num_steps];
}

void LstmLayer::ForwardInference(const std::vector<Matrix>& x_steps,
                                 const std::vector<int32_t>& lengths,
                                 RecurrentScratch* s, Matrix* final_h) const {
  const size_t num_steps = x_steps.size();
  PR_CHECK(num_steps > 0);
  const size_t batch = x_steps[0].rows();
  const size_t hidden = hidden_size();

  EnsureStepShapes(&s->h, num_steps + 1, batch, hidden);
  EnsureStepShapes(&s->c, num_steps + 1, batch, hidden);
  Matrix& ig = s->g1;
  Matrix& fg = s->g2;
  Matrix& og = s->g3;
  Matrix& gg = s->g4;
  Matrix& cn = s->tmp;
  Matrix& tanh_cn = s->tmp2;
  for (Matrix* m : {&ig, &fg, &og, &gg, &cn}) {
    m->ResizeNoZero(batch, hidden);
  }
  s->h[0].Zero();
  s->c[0].Zero();

  auto gate = [](const Matrix& x, const Matrix& h_prev, const Parameter& w,
                 const Parameter& u, const Parameter& b, bool is_tanh,
                 Matrix* out) {
    GemmNN(x, w.value, out);
    GemmNN(h_prev, u.value, out, 1.0f, 1.0f);
    AddRowBroadcast(b.value, out);
    if (is_tanh) {
      TanhInPlace(out);
    } else {
      SigmoidInPlace(out);
    }
  };

  for (size_t t = 0; t < num_steps; ++t) {
    const Matrix& x = x_steps[t];
    const Matrix& h_prev = s->h[t];
    const Matrix& c_prev = s->c[t];
    gate(x, h_prev, wi_, ui_, bi_, false, &ig);
    gate(x, h_prev, wf_, uf_, bf_, false, &fg);
    gate(x, h_prev, wo_, uo_, bo_, false, &og);
    gate(x, h_prev, wg_, ug_, bg_, true, &gg);

    for (size_t bb = 0; bb < batch; ++bb) {
      const float* pf = fg.row(bb);
      const float* pi = ig.row(bb);
      const float* pg = gg.row(bb);
      const float* pc = c_prev.row(bb);
      float* pcn = cn.row(bb);
      for (size_t cidx = 0; cidx < hidden; ++cidx) {
        pcn[cidx] = pf[cidx] * pc[cidx] + pi[cidx] * pg[cidx];
      }
    }
    tanh_cn = cn;
    TanhInPlace(&tanh_cn);

    const auto mask = StepMask(lengths, t);
    Matrix& h_next = s->h[t + 1];
    Matrix& c_next = s->c[t + 1];
    for (size_t bb = 0; bb < batch; ++bb) {
      float* ph = h_next.row(bb);
      float* pc = c_next.row(bb);
      if (mask[bb] == 0.0f) {
        std::copy(h_prev.row(bb), h_prev.row(bb) + hidden, ph);
        std::copy(c_prev.row(bb), c_prev.row(bb) + hidden, pc);
        continue;
      }
      const float* po = og.row(bb);
      const float* ptc = tanh_cn.row(bb);
      const float* pcn = cn.row(bb);
      for (size_t cidx = 0; cidx < hidden; ++cidx) {
        ph[cidx] = po[cidx] * ptc[cidx];
        pc[cidx] = pcn[cidx];
      }
    }
  }
  *final_h = s->h[num_steps];
}

void LstmLayer::BackwardImpl(const Matrix* d_final_h,
                             const std::vector<Matrix>* d_h_steps,
                             std::vector<Matrix>* d_x_steps) {
  PR_CHECK(x_steps_ != nullptr) << "Backward without Forward";
  const auto& x_steps = *x_steps_;
  const size_t num_steps = x_steps.size();
  const size_t batch = x_steps[0].rows();
  const size_t hidden = hidden_size();

  EnsureStepShapes(d_x_steps, num_steps, batch, input_size());
  Matrix dh(batch, hidden);
  if (d_final_h != nullptr) dh = *d_final_h;
  Matrix dc(batch, hidden);  // zero: loss reads h only
  // Scratch: fully overwritten each step.
  Matrix dh_prev(batch, hidden);
  Matrix dc_prev(batch, hidden);
  Matrix dgate(batch, hidden);
  Matrix da(batch, hidden);
  Matrix dc_new(batch, hidden);
  Matrix dh_new(batch, hidden);

  for (size_t t = num_steps; t-- > 0;) {
    if (d_h_steps != nullptr) dh.Add((*d_h_steps)[t]);
    const Matrix& x = x_steps[t];
    const Matrix& h_prev = h_[t];
    const Matrix& c_prev = c_[t];
    const auto mask = StepMask(lengths_, t);

    Matrix& dx = (*d_x_steps)[t];

    // Pointwise split of dh/dc across the mask, and cell backward.
    for (size_t bb = 0; bb < batch; ++bb) {
      const float m = mask[bb];
      const float* pdh = dh.row(bb);
      const float* pdc = dc.row(bb);
      const float* po = o_[t].row(bb);
      const float* ptc = tanh_c_new_[t].row(bb);
      const float* pf = f_[t].row(bb);
      float* pdhn = dh_new.row(bb);
      float* pdcn = dc_new.row(bb);
      float* pdhp = dh_prev.row(bb);
      float* pdcp = dc_prev.row(bb);
      for (size_t cidx = 0; cidx < hidden; ++cidx) {
        const float dhn = pdh[cidx] * m;
        pdhn[cidx] = dhn;
        const float dcn =
            pdc[cidx] * m + dhn * po[cidx] * (1.0f - ptc[cidx] * ptc[cidx]);
        pdcn[cidx] = dcn;
        pdhp[cidx] = pdh[cidx] * (1.0f - m);
        pdcp[cidx] = pdc[cidx] * (1.0f - m) + dcn * pf[cidx];
      }
    }

    auto backprop_gate = [&](const Matrix& dgate_raw, const Matrix& act,
                             bool is_tanh, Parameter& w, Parameter& u,
                             Parameter& b, bool first_dx) {
      if (is_tanh) {
        TanhBackward(dgate_raw, act, &da);
      } else {
        SigmoidBackward(dgate_raw, act, &da);
      }
      GemmTN(x, da, &w.grad, 1.0f, 1.0f);
      GemmTN(h_prev, da, &u.grad, 1.0f, 1.0f);
      AddColumnSums(da, &b.grad);
      GemmNT(da, w.value, &dx, 1.0f, first_dx ? 0.0f : 1.0f);
      GemmNT(da, u.value, &dh_prev, 1.0f, 1.0f);
    };

    // Output gate: dO = dh_new * tanh_c_new.
    Hadamard(dh_new, tanh_c_new_[t], &dgate);
    backprop_gate(dgate, o_[t], false, wo_, uo_, bo_, /*first_dx=*/true);
    // Input gate: dI = dc_new * g.
    Hadamard(dc_new, g_[t], &dgate);
    backprop_gate(dgate, i_[t], false, wi_, ui_, bi_, false);
    // Forget gate: dF = dc_new * c_prev.
    Hadamard(dc_new, c_prev, &dgate);
    backprop_gate(dgate, f_[t], false, wf_, uf_, bf_, false);
    // Cell candidate: dG = dc_new * i.
    Hadamard(dc_new, i_[t], &dgate);
    backprop_gate(dgate, g_[t], true, wg_, ug_, bg_, false);

    std::swap(dh, dh_prev);
    std::swap(dc, dc_prev);
  }
  x_steps_ = nullptr;
}

ParameterList LstmLayer::Parameters() {
  return {&wi_, &wf_, &wo_, &wg_, &ui_, &uf_, &uo_, &ug_,
          &bi_, &bf_, &bo_, &bg_};
}

ConstParameterList LstmLayer::Parameters() const {
  return {&wi_, &wf_, &wo_, &wg_, &ui_, &uf_, &uo_, &ug_,
          &bi_, &bf_, &bo_, &bg_};
}

std::unique_ptr<RecurrentLayer> MakeRecurrentLayer(
    CellType type, size_t input_size, size_t hidden_size, pathrank::Rng& rng,
    const std::string& name_prefix) {
  switch (type) {
    case CellType::kGru:
      return std::make_unique<GruLayer>(input_size, hidden_size, rng,
                                        name_prefix);
    case CellType::kRnn:
      return std::make_unique<RnnLayer>(input_size, hidden_size, rng,
                                        name_prefix);
    case CellType::kLstm:
      return std::make_unique<LstmLayer>(input_size, hidden_size, rng,
                                         name_prefix);
  }
  return nullptr;
}

std::unique_ptr<RecurrentLayer> MakeRecurrentLayer(
    CellType type, size_t input_size, size_t hidden_size, SkipInit,
    const std::string& name_prefix) {
  switch (type) {
    case CellType::kGru:
      return std::make_unique<GruLayer>(input_size, hidden_size, kSkipInit,
                                        name_prefix);
    case CellType::kRnn:
      return std::make_unique<RnnLayer>(input_size, hidden_size, kSkipInit,
                                        name_prefix);
    case CellType::kLstm:
      return std::make_unique<LstmLayer>(input_size, hidden_size, kSkipInit,
                                         name_prefix);
  }
  return nullptr;
}

}  // namespace pathrank::nn
