// Dense row-major float matrix and the linear-algebra kernels the neural
// layers are built on. The GEMM kernels are register/cache blocked and
// shard their independent output rows across the global thread pool above
// a size threshold; per-element accumulation order is fixed, so results
// are bitwise identical for any thread count (see docs/performance.md).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace pathrank::nn {

/// Row-major dense matrix of floats. A 1 x N matrix doubles as a vector.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  float* row(size_t r) { return data_.data() + r * cols_; }
  const float* row(size_t r) const { return data_.data() + r * cols_; }

  std::span<float> row_span(size_t r) { return {row(r), cols_}; }
  std::span<const float> row_span(size_t r) const { return {row(r), cols_}; }

  /// Sets every element to `value`.
  void Fill(float value);

  /// Sets every element to zero.
  void Zero() { Fill(0.0f); }

  /// Resizes and zero-fills: after the call every element is 0, even when
  /// the shape is unchanged. Several callers (pooling, gradient
  /// accumulators) rely on this; use ResizeNoZero for scratch buffers
  /// whose contents are fully overwritten.
  void Resize(size_t rows, size_t cols);

  /// Resizes without the zero-fill: contents are unspecified (a no-op when
  /// the element count is unchanged). For scratch buffers only.
  void ResizeNoZero(size_t rows, size_t cols);

  /// Element-wise in-place scale.
  void Scale(float factor);

  /// this += other (same shape).
  void Add(const Matrix& other);

  /// this += factor * other (same shape).
  void Axpy(float factor, const Matrix& other);

  /// Sum of squares of all elements.
  double SquaredNorm() const;

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  std::string ShapeString() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

// ---- GEMM kernels -----------------------------------------------------
// All kernels compute C = alpha * op(A) * op(B) + beta * C and require C to
// be pre-sized to the result shape. beta is restricted to {0, 1}: 0
// overwrites C, 1 accumulates (the only cases backprop needs).

/// C[M x N] (+)= A[M x K] * B[K x N].
void GemmNN(const Matrix& a, const Matrix& b, Matrix* c, float alpha = 1.0f,
            float beta = 0.0f);

/// C[M x N] (+)= A[M x K] * B^T, with B stored [N x K].
void GemmNT(const Matrix& a, const Matrix& b, Matrix* c, float alpha = 1.0f,
            float beta = 0.0f);

/// C[K x N] (+)= A^T * B, with A stored [M x K], B stored [M x N].
void GemmTN(const Matrix& a, const Matrix& b, Matrix* c, float alpha = 1.0f,
            float beta = 0.0f);

// ---- Element-wise helpers ----------------------------------------------

/// y[i] (+)= bias broadcast over rows: Y[r,c] += bias[0,c].
void AddRowBroadcast(const Matrix& bias, Matrix* y);

/// out = a (elementwise*) b; shapes must match; out may alias a or b.
void Hadamard(const Matrix& a, const Matrix& b, Matrix* out);

/// In-place logistic sigmoid.
void SigmoidInPlace(Matrix* m);

/// In-place tanh.
void TanhInPlace(Matrix* m);

// ---- Initialisation ----------------------------------------------------

/// Uniform(-limit, limit) init.
void UniformInit(Matrix* m, float limit, pathrank::Rng& rng);

/// Xavier/Glorot uniform init for a [fan_in x fan_out] weight.
void XavierInit(Matrix* m, pathrank::Rng& rng);

/// N(0, stddev) init.
void GaussianInit(Matrix* m, float stddev, pathrank::Rng& rng);

}  // namespace pathrank::nn
