#include "nn/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "common/thread_pool.h"

namespace pathrank::nn {

void Matrix::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::Resize(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0f);
}

void Matrix::ResizeNoZero(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

void Matrix::Scale(float factor) {
  for (float& v : data_) v *= factor;
}

void Matrix::Add(const Matrix& other) {
  PR_CHECK(SameShape(other)) << ShapeString() << " vs " << other.ShapeString();
  const float* src = other.data();
  float* dst = data();
  const size_t n = size();
  for (size_t i = 0; i < n; ++i) dst[i] += src[i];
}

void Matrix::Axpy(float factor, const Matrix& other) {
  PR_CHECK(SameShape(other));
  const float* src = other.data();
  float* dst = data();
  const size_t n = size();
  for (size_t i = 0; i < n; ++i) dst[i] += factor * src[i];
}

double Matrix::SquaredNorm() const {
  double sum = 0.0;
  for (float v : data_) sum += static_cast<double>(v) * v;
  return sum;
}

std::string Matrix::ShapeString() const {
  return StrFormat("[%zu x %zu]", rows_, cols_);
}

// ---- GEMM kernels ------------------------------------------------------
//
// Blocking scheme (row-major everywhere):
//   * K is cut into panels of kKBlock so the active slice of B stays in
//     L2 across the output rows of a panel.
//   * N is cut into strips of kNBlock so the C rows being updated stay in
//     L1 across a K panel.
//   * Output rows are computed four at a time, which reuses every loaded
//     B row (NN/TN) or lets four dot-product chains run in parallel (NT).
// The M loop shards across the thread pool above kParallelMinFlops of
// work. Each output element's accumulation order depends only on the
// blocking constants — never on the shard boundaries or the 4-row/1-row
// kernel split — so results are bitwise identical for any thread count.

namespace {

constexpr size_t kKBlock = 256;
// Parallelise when the multiply-add count crosses ~128K (where region
// dispatch overhead drops below ~10% of kernel time).
constexpr size_t kParallelMinFlops = 128 * 1024;

size_t GemmRowGrain(size_t m, size_t flops_per_row) {
  const size_t grain =
      flops_per_row > 0 ? kParallelMinFlops / flops_per_row : m;
  return std::max<size_t>(1, std::min(grain, m));
}

// Register-tile width: 16 floats = two AVX2 vectors. With 4 output rows
// the accumulators occupy 8 vector registers and are written to memory
// once per K panel instead of once per k step.
constexpr size_t kTileN = 16;

/// One 4 x w register tile of C (w <= kTileN): accumulates
/// sum_{kk in [k0,k1)} alpha * A[i+r, kk] * B[kk, j+l] into registers,
/// then adds the panel total onto C. Per-element accumulation order
/// depends only on (k0, k1), matching the 1-row kernel below exactly.
inline void GemmNNTile4(const float* a0, const float* a1, const float* a2,
                        const float* a3, const Matrix& b, float alpha,
                        size_t k0, size_t k1, size_t j, size_t w, float* c0,
                        float* c1, float* c2, float* c3) {
  float acc0[kTileN] = {};
  float acc1[kTileN] = {};
  float acc2[kTileN] = {};
  float acc3[kTileN] = {};
  if (w == kTileN) {
    for (size_t kk = k0; kk < k1; ++kk) {
      const float* bp = b.row(kk) + j;
      const float a0k = alpha * a0[kk];
      const float a1k = alpha * a1[kk];
      const float a2k = alpha * a2[kk];
      const float a3k = alpha * a3[kk];
      for (size_t l = 0; l < kTileN; ++l) {
        acc0[l] += a0k * bp[l];
        acc1[l] += a1k * bp[l];
        acc2[l] += a2k * bp[l];
        acc3[l] += a3k * bp[l];
      }
    }
  } else {
    for (size_t kk = k0; kk < k1; ++kk) {
      const float* bp = b.row(kk) + j;
      const float a0k = alpha * a0[kk];
      const float a1k = alpha * a1[kk];
      const float a2k = alpha * a2[kk];
      const float a3k = alpha * a3[kk];
      for (size_t l = 0; l < w; ++l) {
        acc0[l] += a0k * bp[l];
        acc1[l] += a1k * bp[l];
        acc2[l] += a2k * bp[l];
        acc3[l] += a3k * bp[l];
      }
    }
  }
  for (size_t l = 0; l < w; ++l) {
    c0[j + l] += acc0[l];
    c1[j + l] += acc1[l];
    c2[j + l] += acc2[l];
    c3[j + l] += acc3[l];
  }
}

/// 1 x w register tile, same accumulation structure as GemmNNTile4.
inline void GemmNNTile1(const float* a_row, const Matrix& b, float alpha,
                        size_t k0, size_t k1, size_t j, size_t w,
                        float* c_row) {
  float acc[kTileN] = {};
  if (w == kTileN) {
    for (size_t kk = k0; kk < k1; ++kk) {
      const float* bp = b.row(kk) + j;
      const float ak = alpha * a_row[kk];
      for (size_t l = 0; l < kTileN; ++l) acc[l] += ak * bp[l];
    }
  } else {
    for (size_t kk = k0; kk < k1; ++kk) {
      const float* bp = b.row(kk) + j;
      const float ak = alpha * a_row[kk];
      for (size_t l = 0; l < w; ++l) acc[l] += ak * bp[l];
    }
  }
  for (size_t l = 0; l < w; ++l) c_row[j + l] += acc[l];
}

/// C rows [i_begin, i_end) of C[M x N] += A[M x K] * B[K x N], A scaled by
/// alpha. C must already hold the beta-scaled base.
void GemmNNRows(const Matrix& a, const Matrix& b, Matrix* c, float alpha,
                size_t i_begin, size_t i_end) {
  const size_t k = a.cols();
  const size_t n = b.cols();
  for (size_t k0 = 0; k0 < k; k0 += kKBlock) {
    const size_t k1 = std::min(k, k0 + kKBlock);
    size_t i = i_begin;
    for (; i + 4 <= i_end; i += 4) {
      const float* a0 = a.row(i);
      const float* a1 = a.row(i + 1);
      const float* a2 = a.row(i + 2);
      const float* a3 = a.row(i + 3);
      float* c0 = c->row(i);
      float* c1 = c->row(i + 1);
      float* c2 = c->row(i + 2);
      float* c3 = c->row(i + 3);
      size_t j = 0;
      for (; j + kTileN <= n; j += kTileN) {
        GemmNNTile4(a0, a1, a2, a3, b, alpha, k0, k1, j, kTileN, c0, c1, c2,
                    c3);
      }
      if (j < n) {
        GemmNNTile4(a0, a1, a2, a3, b, alpha, k0, k1, j, n - j, c0, c1, c2,
                    c3);
      }
    }
    for (; i < i_end; ++i) {
      const float* a_row = a.row(i);
      float* c_row = c->row(i);
      size_t j = 0;
      for (; j + kTileN <= n; j += kTileN) {
        GemmNNTile1(a_row, b, alpha, k0, k1, j, kTileN, c_row);
      }
      if (j < n) GemmNNTile1(a_row, b, alpha, k0, k1, j, n - j, c_row);
    }
  }
}

/// Dot product with a fixed 8-way split accumulation order (vectorises
/// without -ffast-math; identical order wherever it is called from).
inline float DotSplit8(const float* a, const float* b, size_t k) {
  float acc[8] = {};
  size_t kk = 0;
  for (; kk + 8 <= k; kk += 8) {
    for (size_t l = 0; l < 8; ++l) acc[l] += a[kk + l] * b[kk + l];
  }
  float tail = 0.0f;
  for (; kk < k; ++kk) tail += a[kk] * b[kk];
  const float lo = (acc[0] + acc[1]) + (acc[2] + acc[3]);
  const float hi = (acc[4] + acc[5]) + (acc[6] + acc[7]);
  return (lo + hi) + tail;
}

/// C rows [i_begin, i_end) of C[M x N] (+)= A[M x K] * B^T, B is [N x K].
void GemmNTRows(const Matrix& a, const Matrix& b, Matrix* c, float alpha,
                float beta, size_t i_begin, size_t i_end) {
  const size_t k = a.cols();
  const size_t n = b.rows();
  for (size_t i = i_begin; i < i_end; ++i) {
    const float* a_row = a.row(i);
    float* c_row = c->row(i);
    size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      // Four independent dot chains per A row: each reuses the cached
      // A row and keeps the FMA pipeline full.
      const float d0 = DotSplit8(a_row, b.row(j), k);
      const float d1 = DotSplit8(a_row, b.row(j + 1), k);
      const float d2 = DotSplit8(a_row, b.row(j + 2), k);
      const float d3 = DotSplit8(a_row, b.row(j + 3), k);
      if (beta == 0.0f) {
        c_row[j] = alpha * d0;
        c_row[j + 1] = alpha * d1;
        c_row[j + 2] = alpha * d2;
        c_row[j + 3] = alpha * d3;
      } else {
        c_row[j] += alpha * d0;
        c_row[j + 1] += alpha * d1;
        c_row[j + 2] += alpha * d2;
        c_row[j + 3] += alpha * d3;
      }
    }
    for (; j < n; ++j) {
      const float d = DotSplit8(a_row, b.row(j), k);
      c_row[j] = alpha * d + (beta == 0.0f ? 0.0f : c_row[j]);
    }
  }
}

/// One 4 x w register tile of C[K x N] += A^T * B: accumulates
/// sum_{i in [i0,i1)} alpha * A[i, kk+r] * B[i, j+l] in registers, then
/// adds the panel total onto C. The A reads are the transposed access
/// (four scalars per i from one A row); B reads are unit-stride.
inline void GemmTNTile4(const Matrix& a, const Matrix& b, float alpha,
                        size_t i0, size_t i1, size_t kk, size_t j, size_t w,
                        float* c0, float* c1, float* c2, float* c3) {
  float acc0[kTileN] = {};
  float acc1[kTileN] = {};
  float acc2[kTileN] = {};
  float acc3[kTileN] = {};
  if (w == kTileN) {
    for (size_t i = i0; i < i1; ++i) {
      const float* a_row = a.row(i);
      const float* bp = b.row(i) + j;
      const float a0k = alpha * a_row[kk];
      const float a1k = alpha * a_row[kk + 1];
      const float a2k = alpha * a_row[kk + 2];
      const float a3k = alpha * a_row[kk + 3];
      for (size_t l = 0; l < kTileN; ++l) {
        acc0[l] += a0k * bp[l];
        acc1[l] += a1k * bp[l];
        acc2[l] += a2k * bp[l];
        acc3[l] += a3k * bp[l];
      }
    }
  } else {
    for (size_t i = i0; i < i1; ++i) {
      const float* a_row = a.row(i);
      const float* bp = b.row(i) + j;
      const float a0k = alpha * a_row[kk];
      const float a1k = alpha * a_row[kk + 1];
      const float a2k = alpha * a_row[kk + 2];
      const float a3k = alpha * a_row[kk + 3];
      for (size_t l = 0; l < w; ++l) {
        acc0[l] += a0k * bp[l];
        acc1[l] += a1k * bp[l];
        acc2[l] += a2k * bp[l];
        acc3[l] += a3k * bp[l];
      }
    }
  }
  for (size_t l = 0; l < w; ++l) {
    c0[j + l] += acc0[l];
    c1[j + l] += acc1[l];
    c2[j + l] += acc2[l];
    c3[j + l] += acc3[l];
  }
}

/// 1 x w register tile, same accumulation structure as GemmTNTile4.
inline void GemmTNTile1(const Matrix& a, const Matrix& b, float alpha,
                        size_t i0, size_t i1, size_t kk, size_t j, size_t w,
                        float* c_row) {
  float acc[kTileN] = {};
  if (w == kTileN) {
    for (size_t i = i0; i < i1; ++i) {
      const float ak = alpha * a.row(i)[kk];
      const float* bp = b.row(i) + j;
      for (size_t l = 0; l < kTileN; ++l) acc[l] += ak * bp[l];
    }
  } else {
    for (size_t i = i0; i < i1; ++i) {
      const float ak = alpha * a.row(i)[kk];
      const float* bp = b.row(i) + j;
      for (size_t l = 0; l < w; ++l) acc[l] += ak * bp[l];
    }
  }
  for (size_t l = 0; l < w; ++l) c_row[j + l] += acc[l];
}

/// C rows [kk_begin, kk_end) of C[K x N] += A^T * B with A [M x K],
/// B [M x N]. Per element, accumulation over i is ascending within fixed
/// kKBlock panels regardless of the shard boundaries or which tile width
/// computed it.
void GemmTNRows(const Matrix& a, const Matrix& b, Matrix* c, float alpha,
                size_t kk_begin, size_t kk_end) {
  const size_t m = a.rows();
  const size_t n = b.cols();
  for (size_t i0 = 0; i0 < m; i0 += kKBlock) {
    const size_t i1 = std::min(m, i0 + kKBlock);
    size_t kk = kk_begin;
    for (; kk + 4 <= kk_end; kk += 4) {
      float* c0 = c->row(kk);
      float* c1 = c->row(kk + 1);
      float* c2 = c->row(kk + 2);
      float* c3 = c->row(kk + 3);
      size_t j = 0;
      for (; j + kTileN <= n; j += kTileN) {
        GemmTNTile4(a, b, alpha, i0, i1, kk, j, kTileN, c0, c1, c2, c3);
      }
      if (j < n) {
        GemmTNTile4(a, b, alpha, i0, i1, kk, j, n - j, c0, c1, c2, c3);
      }
    }
    for (; kk < kk_end; ++kk) {
      float* c_row = c->row(kk);
      size_t j = 0;
      for (; j + kTileN <= n; j += kTileN) {
        GemmTNTile1(a, b, alpha, i0, i1, kk, j, kTileN, c_row);
      }
      if (j < n) GemmTNTile1(a, b, alpha, i0, i1, kk, j, n - j, c_row);
    }
  }
}

}  // namespace

void GemmNN(const Matrix& a, const Matrix& b, Matrix* c, float alpha,
            float beta) {
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  PR_CHECK(b.rows() == k) << "GemmNN inner-dim mismatch";
  PR_CHECK(c->rows() == m && c->cols() == n) << "GemmNN output shape";
  if (beta == 0.0f) c->Zero();
  const size_t flops_per_row = k * n;
  if (m * flops_per_row >= kParallelMinFlops) {
    ParallelFor(0, m, GemmRowGrain(m, flops_per_row),
                [&](size_t lo, size_t hi) {
                  GemmNNRows(a, b, c, alpha, lo, hi);
                });
  } else {
    GemmNNRows(a, b, c, alpha, 0, m);
  }
}

void GemmNT(const Matrix& a, const Matrix& b, Matrix* c, float alpha,
            float beta) {
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.rows();
  PR_CHECK(b.cols() == k) << "GemmNT inner-dim mismatch";
  PR_CHECK(c->rows() == m && c->cols() == n) << "GemmNT output shape";
  const size_t flops_per_row = k * n;
  if (m * flops_per_row >= kParallelMinFlops) {
    ParallelFor(0, m, GemmRowGrain(m, flops_per_row),
                [&](size_t lo, size_t hi) {
                  GemmNTRows(a, b, c, alpha, beta, lo, hi);
                });
  } else {
    GemmNTRows(a, b, c, alpha, beta, 0, m);
  }
}

void GemmTN(const Matrix& a, const Matrix& b, Matrix* c, float alpha,
            float beta) {
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  PR_CHECK(b.rows() == m) << "GemmTN inner-dim mismatch";
  PR_CHECK(c->rows() == k && c->cols() == n) << "GemmTN output shape";
  if (beta == 0.0f) c->Zero();
  // Sharding over C rows = columns of A; every shard scans all of B.
  const size_t flops_per_row = m * n;
  if (k * flops_per_row >= kParallelMinFlops) {
    ParallelFor(0, k, GemmRowGrain(k, flops_per_row),
                [&](size_t lo, size_t hi) {
                  GemmTNRows(a, b, c, alpha, lo, hi);
                });
  } else {
    GemmTNRows(a, b, c, alpha, 0, k);
  }
}

void AddRowBroadcast(const Matrix& bias, Matrix* y) {
  PR_CHECK(bias.rows() == 1 && bias.cols() == y->cols());
  const float* b = bias.row(0);
  for (size_t r = 0; r < y->rows(); ++r) {
    float* row = y->row(r);
    for (size_t c = 0; c < y->cols(); ++c) row[c] += b[c];
  }
}

void Hadamard(const Matrix& a, const Matrix& b, Matrix* out) {
  PR_CHECK(a.SameShape(b));
  if (!out->SameShape(a)) out->ResizeNoZero(a.rows(), a.cols());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out->data();
  const size_t n = a.size();
  for (size_t i = 0; i < n; ++i) po[i] = pa[i] * pb[i];
}

// Element-wise transcendentals are ~20x the cost of an FMA, so they are
// worth sharding at much smaller sizes than the GEMMs.
constexpr size_t kElementwiseGrain = 4096;

void SigmoidInPlace(Matrix* m) {
  float* p = m->data();
  ParallelFor(0, m->size(), kElementwiseGrain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      p[i] = 1.0f / (1.0f + std::exp(-p[i]));
    }
  });
}

void TanhInPlace(Matrix* m) {
  float* p = m->data();
  ParallelFor(0, m->size(), kElementwiseGrain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      p[i] = std::tanh(p[i]);
    }
  });
}

void UniformInit(Matrix* m, float limit, pathrank::Rng& rng) {
  float* p = m->data();
  const size_t n = m->size();
  for (size_t i = 0; i < n; ++i) {
    p[i] = static_cast<float>(rng.NextUniform(-limit, limit));
  }
}

void XavierInit(Matrix* m, pathrank::Rng& rng) {
  const float limit = std::sqrt(
      6.0f / static_cast<float>(m->rows() + m->cols()));
  UniformInit(m, limit, rng);
}

void GaussianInit(Matrix* m, float stddev, pathrank::Rng& rng) {
  float* p = m->data();
  const size_t n = m->size();
  for (size_t i = 0; i < n; ++i) {
    p[i] = static_cast<float>(rng.NextGaussian(0.0, stddev));
  }
}

}  // namespace pathrank::nn
