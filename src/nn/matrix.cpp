#include "nn/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace pathrank::nn {

void Matrix::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::Resize(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0f);
}

void Matrix::Scale(float factor) {
  for (float& v : data_) v *= factor;
}

void Matrix::Add(const Matrix& other) {
  PR_CHECK(SameShape(other)) << ShapeString() << " vs " << other.ShapeString();
  const float* src = other.data();
  float* dst = data();
  const size_t n = size();
  for (size_t i = 0; i < n; ++i) dst[i] += src[i];
}

void Matrix::Axpy(float factor, const Matrix& other) {
  PR_CHECK(SameShape(other));
  const float* src = other.data();
  float* dst = data();
  const size_t n = size();
  for (size_t i = 0; i < n; ++i) dst[i] += factor * src[i];
}

double Matrix::SquaredNorm() const {
  double sum = 0.0;
  for (float v : data_) sum += static_cast<double>(v) * v;
  return sum;
}

std::string Matrix::ShapeString() const {
  return StrFormat("[%zu x %zu]", rows_, cols_);
}

void GemmNN(const Matrix& a, const Matrix& b, Matrix* c, float alpha,
            float beta) {
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  PR_CHECK(b.rows() == k) << "GemmNN inner-dim mismatch";
  PR_CHECK(c->rows() == m && c->cols() == n) << "GemmNN output shape";
  if (beta == 0.0f) c->Zero();
  // i-k-j order: unit-stride access on B and C rows; auto-vectorises.
  for (size_t i = 0; i < m; ++i) {
    float* c_row = c->row(i);
    const float* a_row = a.row(i);
    for (size_t kk = 0; kk < k; ++kk) {
      const float aik = alpha * a_row[kk];
      if (aik == 0.0f) continue;
      const float* b_row = b.row(kk);
      for (size_t j = 0; j < n; ++j) {
        c_row[j] += aik * b_row[j];
      }
    }
  }
}

void GemmNT(const Matrix& a, const Matrix& b, Matrix* c, float alpha,
            float beta) {
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.rows();
  PR_CHECK(b.cols() == k) << "GemmNT inner-dim mismatch";
  PR_CHECK(c->rows() == m && c->cols() == n) << "GemmNT output shape";
  for (size_t i = 0; i < m; ++i) {
    const float* a_row = a.row(i);
    float* c_row = c->row(i);
    for (size_t j = 0; j < n; ++j) {
      const float* b_row = b.row(j);
      float dot = 0.0f;
      for (size_t kk = 0; kk < k; ++kk) {
        dot += a_row[kk] * b_row[kk];
      }
      c_row[j] = alpha * dot + (beta == 0.0f ? 0.0f : c_row[j]);
    }
  }
}

void GemmTN(const Matrix& a, const Matrix& b, Matrix* c, float alpha,
            float beta) {
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  PR_CHECK(b.rows() == m) << "GemmTN inner-dim mismatch";
  PR_CHECK(c->rows() == k && c->cols() == n) << "GemmTN output shape";
  if (beta == 0.0f) c->Zero();
  // Accumulate rank-1 updates: C[kk,:] += A[i,kk] * B[i,:].
  for (size_t i = 0; i < m; ++i) {
    const float* a_row = a.row(i);
    const float* b_row = b.row(i);
    for (size_t kk = 0; kk < k; ++kk) {
      const float aik = alpha * a_row[kk];
      if (aik == 0.0f) continue;
      float* c_row = c->row(kk);
      for (size_t j = 0; j < n; ++j) {
        c_row[j] += aik * b_row[j];
      }
    }
  }
}

void AddRowBroadcast(const Matrix& bias, Matrix* y) {
  PR_CHECK(bias.rows() == 1 && bias.cols() == y->cols());
  const float* b = bias.row(0);
  for (size_t r = 0; r < y->rows(); ++r) {
    float* row = y->row(r);
    for (size_t c = 0; c < y->cols(); ++c) row[c] += b[c];
  }
}

void Hadamard(const Matrix& a, const Matrix& b, Matrix* out) {
  PR_CHECK(a.SameShape(b));
  if (!out->SameShape(a)) out->Resize(a.rows(), a.cols());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out->data();
  const size_t n = a.size();
  for (size_t i = 0; i < n; ++i) po[i] = pa[i] * pb[i];
}

void SigmoidInPlace(Matrix* m) {
  float* p = m->data();
  const size_t n = m->size();
  for (size_t i = 0; i < n; ++i) {
    p[i] = 1.0f / (1.0f + std::exp(-p[i]));
  }
}

void TanhInPlace(Matrix* m) {
  float* p = m->data();
  const size_t n = m->size();
  for (size_t i = 0; i < n; ++i) {
    p[i] = std::tanh(p[i]);
  }
}

void UniformInit(Matrix* m, float limit, pathrank::Rng& rng) {
  float* p = m->data();
  const size_t n = m->size();
  for (size_t i = 0; i < n; ++i) {
    p[i] = static_cast<float>(rng.NextUniform(-limit, limit));
  }
}

void XavierInit(Matrix* m, pathrank::Rng& rng) {
  const float limit = std::sqrt(
      6.0f / static_cast<float>(m->rows() + m->cols()));
  UniformInit(m, limit, rng);
}

void GaussianInit(Matrix* m, float stddev, pathrank::Rng& rng) {
  float* p = m->data();
  const size_t n = m->size();
  for (size_t i = 0; i < n; ++i) {
    p[i] = static_cast<float>(rng.NextGaussian(0.0, stddev));
  }
}

}  // namespace pathrank::nn
