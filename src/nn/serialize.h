// Binary (de)serialization of matrices and named parameter collections —
// model checkpoints and pre-trained embedding tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "nn/parameter.h"

namespace pathrank::nn {

/// Writes one matrix (shape header + row-major floats).
void WriteMatrix(std::ostream& out, const Matrix& m);

/// Reads one matrix; throws std::runtime_error on malformed input.
Matrix ReadMatrix(std::istream& in);

/// Saves named parameter values (not gradients) to `path`.
void SaveParameters(const ParameterList& params, const std::string& path);

/// Loads parameter values by name from `path` into `params`. Every
/// parameter in `params` must be present in the file with matching shape;
/// extra entries in the file are ignored.
void LoadParameters(const ParameterList& params, const std::string& path);

/// Saves a bare matrix to `path` (embedding tables).
void SaveMatrix(const Matrix& m, const std::string& path);

/// Loads a bare matrix from `path`.
Matrix LoadMatrix(const std::string& path);

}  // namespace pathrank::nn
