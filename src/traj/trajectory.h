// Trajectory data types.
//
// A *trajectory* is a timestamped GPS point sequence as recorded by a
// vehicle; a *trip path* is the map-matched road-network path the vehicle
// followed. The paper's pipeline consumes trip paths (trajectory paths);
// the GPS layer exists so the full raw-GPS -> map-matched-path loop can be
// exercised and tested.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "routing/path.h"

namespace pathrank::traj {

/// One GPS fix.
struct GpsPoint {
  graph::Coordinate position;
  double timestamp_s = 0.0;
};

/// Raw GPS recording of one trip by one driver.
struct Trajectory {
  int driver_id = 0;
  std::vector<GpsPoint> points;
};

/// Map-matched (or directly simulated) road-network path of one trip.
struct TripPath {
  int driver_id = 0;
  routing::Path path;

  graph::VertexId source() const { return path.source(); }
  graph::VertexId destination() const { return path.destination(); }
};

}  // namespace pathrank::traj
