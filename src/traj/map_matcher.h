// HMM map matching (Newson & Krumm style, vertex-based).
//
// Hidden states per GPS point are nearby network vertices; emission
// probability is Gaussian in the point-to-vertex distance; transition
// probability decays exponentially in the difference between on-network
// route distance and great-circle distance of consecutive fixes. Viterbi
// decoding yields the most probable vertex sequence, which is stitched into
// a connected path with shortest-path segments and de-looped.
#pragma once

#include <optional>

#include "graph/grid_index.h"
#include "graph/road_network.h"
#include "traj/trajectory.h"

namespace pathrank::traj {

/// Matching parameters.
struct MapMatcherConfig {
  /// Candidate-vertex search radius around each fix, metres.
  double candidate_radius_m = 80.0;
  /// At most this many nearest candidates per fix.
  int max_candidates = 8;
  /// Emission noise sigma, metres (should match GPS noise).
  double emission_sigma_m = 20.0;
  /// Transition scale beta, metres: larger = more tolerant of detours.
  double transition_beta_m = 60.0;
  /// Fixes more frequent than this are skipped to keep layers informative.
  double min_point_spacing_m = 30.0;
};

/// Matches a raw trajectory onto the network. Returns std::nullopt when no
/// fix has candidates or Viterbi finds no connected state sequence.
class MapMatcher {
 public:
  MapMatcher(const graph::RoadNetwork& network,
             const graph::GridIndex& index, const MapMatcherConfig& config);

  std::optional<routing::Path> Match(const Trajectory& trajectory) const;

 private:
  const graph::RoadNetwork* network_;
  const graph::GridIndex* index_;
  MapMatcherConfig config_;
};

/// Removes cycles from a path in place (keeps the first occurrence of each
/// repeated vertex and splices out the loop). Exposed for testing.
void RemoveCycles(const graph::RoadNetwork& network, routing::Path* path);

}  // namespace pathrank::traj
