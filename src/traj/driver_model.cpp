#include "traj/driver_model.h"

#include <algorithm>
#include <cmath>

namespace pathrank::traj {
namespace {

/// SplitMix64-style hash for (seed, edge) -> uniform double in [0,1).
double HashUniform(uint64_t seed, uint64_t edge) {
  uint64_t z = seed ^ (edge * 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z = z ^ (z >> 31);
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

/// Approximate inverse normal CDF (Acklam) — good to ~1e-9, plenty for
/// noise generation without carrying RNG state per edge.
double InverseNormalCdf(double p) {
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  const double phigh = 1 - plow;
  if (p < plow) {
    const double q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p <= phigh) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  }
  const double q = std::sqrt(-2 * std::log(1 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

}  // namespace

PopulationPreferences SamplePopulationPreferences(pathrank::Rng& rng) {
  PopulationPreferences p;
  auto idx = [](graph::RoadCategory c) { return static_cast<size_t>(c); };
  // Locals favour the high-capacity hierarchy beyond free-flow time (it is
  // predictable, has fewer junctions) and avoid residential cut-throughs.
  p[idx(graph::RoadCategory::kMotorway)] = rng.NextUniform(0.78, 0.88);
  p[idx(graph::RoadCategory::kTrunk)] = rng.NextUniform(0.84, 0.92);
  p[idx(graph::RoadCategory::kPrimary)] = rng.NextUniform(0.84, 0.94);
  p[idx(graph::RoadCategory::kSecondary)] = rng.NextUniform(0.9, 1.0);
  p[idx(graph::RoadCategory::kTertiary)] = rng.NextUniform(1.0, 1.1);
  p[idx(graph::RoadCategory::kResidential)] = rng.NextUniform(1.1, 1.25);
  p[idx(graph::RoadCategory::kService)] = rng.NextUniform(1.25, 1.45);
  return p;
}

PopulationPreferences NeutralPopulation() {
  PopulationPreferences p;
  p.fill(1.0);
  return p;
}

DriverPreferences SampleDriver(int driver_id, pathrank::Rng& rng,
                               const PopulationPreferences& population) {
  DriverPreferences d;
  d.driver_id = driver_id;
  d.noise_seed = rng.NextU64();
  // Calibrated so the population's trips deviate from shortest/fastest
  // paths (the paper's premise) while remaining predictable from the path
  // itself — the label regime of the paper's GPS corpus.
  d.familiarity_sigma = rng.NextUniform(0.04, 0.1);

  auto& m = d.category_multiplier;
  auto idx = [](graph::RoadCategory c) { return static_cast<size_t>(c); };
  for (int i = 0; i < graph::kNumRoadCategories; ++i) {
    // Mild idiosyncratic jitter around the regional consensus.
    m[static_cast<size_t>(i)] =
        population[static_cast<size_t>(i)] *
        std::exp(rng.NextGaussian(0.0, 0.04));
  }
  // A minority of stronger archetypes keeps the population heterogeneous.
  const double archetype = rng.NextDouble();
  if (archetype < 0.08) {
    // Highway avoider.
    m[idx(graph::RoadCategory::kMotorway)] *= rng.NextUniform(1.3, 1.6);
    m[idx(graph::RoadCategory::kTrunk)] *= rng.NextUniform(1.15, 1.35);
  } else if (archetype < 0.16) {
    // Back-street connoisseur: does not mind residential shortcuts.
    m[idx(graph::RoadCategory::kResidential)] *= rng.NextUniform(0.75, 0.9);
    m[idx(graph::RoadCategory::kTertiary)] *= rng.NextUniform(0.85, 0.95);
  }
  return d;
}

DriverPreferences SampleDriver(int driver_id, pathrank::Rng& rng) {
  return SampleDriver(driver_id, rng, NeutralPopulation());
}

std::vector<double> PersonalizedEdgeCosts(const graph::RoadNetwork& network,
                                          const DriverPreferences& driver) {
  std::vector<double> costs(network.num_edges());
  for (graph::EdgeId e = 0; e < network.num_edges(); ++e) {
    const auto& rec = network.edge(e);
    const double pref =
        driver.category_multiplier[static_cast<size_t>(rec.category)];
    // Deterministic log-normal familiarity noise per (driver, edge).
    const double u =
        std::clamp(HashUniform(driver.noise_seed, e), 1e-12, 1.0 - 1e-12);
    const double noise =
        std::exp(driver.familiarity_sigma * InverseNormalCdf(u));
    costs[e] = rec.travel_time_s * pref * noise;
  }
  return costs;
}

}  // namespace pathrank::traj
