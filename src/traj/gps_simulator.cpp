#include "traj/gps_simulator.h"

#include <cmath>

#include "common/logging.h"

namespace pathrank::traj {
namespace {

constexpr double kMetersPerDegLat = 111320.0;

/// Linear interpolation between coordinates (adequate at edge scale).
graph::Coordinate Lerp(const graph::Coordinate& a, const graph::Coordinate& b,
                       double t) {
  return {a.lat + (b.lat - a.lat) * t, a.lon + (b.lon - a.lon) * t};
}

}  // namespace

Trajectory SimulateGps(const graph::RoadNetwork& network,
                       const TripPath& trip, const GpsSimulatorConfig& config,
                       pathrank::Rng& rng) {
  PR_CHECK(config.sample_interval_s > 0.0);
  PR_CHECK(config.speed_factor > 0.0);
  Trajectory out;
  out.driver_id = trip.driver_id;
  if (trip.path.edges.empty()) return out;

  const double mean_lat = network.coordinate(trip.path.vertices[0]).lat;
  const double meters_per_deg_lon =
      kMetersPerDegLat * std::cos(mean_lat * 3.14159265358979323846 / 180.0);
  auto noisy = [&](const graph::Coordinate& c) {
    graph::Coordinate n = c;
    n.lat += rng.NextGaussian(0.0, config.noise_sigma_m) / kMetersPerDegLat;
    n.lon += rng.NextGaussian(0.0, config.noise_sigma_m) / meters_per_deg_lon;
    return n;
  };

  double t = 0.0;              // current simulated time
  double next_sample = 0.0;    // next emission time
  for (size_t i = 0; i < trip.path.edges.size(); ++i) {
    const auto& rec = network.edge(trip.path.edges[i]);
    const double edge_duration =
        rec.travel_time_s / config.speed_factor;
    const graph::Coordinate& from = network.coordinate(rec.from);
    const graph::Coordinate& to = network.coordinate(rec.to);
    while (next_sample <= t + edge_duration) {
      const double frac =
          edge_duration > 0.0 ? (next_sample - t) / edge_duration : 0.0;
      out.points.push_back({noisy(Lerp(from, to, frac)), next_sample});
      next_sample += config.sample_interval_s;
    }
    t += edge_duration;
  }
  // Always emit the final position so short trips have >= 2 fixes.
  const graph::Coordinate& last =
      network.coordinate(trip.path.vertices.back());
  out.points.push_back({noisy(last), t});
  return out;
}

}  // namespace pathrank::traj
