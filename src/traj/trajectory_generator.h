// Trajectory (trip-path) simulation.
//
// Substitutes the paper's 180M-GPS-record North Jutland trajectory corpus:
// a population of heterogeneous drivers (see driver_model.h) makes trips
// between gravity-sampled source/destination pairs; each trip's ground
// truth path is the shortest path under that driver's personalised costs.
#pragma once

#include <vector>

#include "common/rng.h"
#include "graph/road_network.h"
#include "traj/driver_model.h"
#include "traj/trajectory.h"

namespace pathrank::traj {

/// Parameters of the simulated trajectory corpus.
struct TrajectoryGeneratorConfig {
  /// Number of distinct drivers (the paper has 183 vehicles).
  int num_drivers = 60;
  /// Number of trips to generate.
  int num_trips = 600;
  /// Minimum great-circle distance between trip endpoints, metres;
  /// very short trips carry no ranking signal.
  double min_trip_distance_m = 3000.0;
  /// Maximum great-circle distance between endpoints, metres (0 = off).
  double max_trip_distance_m = 0.0;
  /// Maximum path length in vertices; longer trips are resampled to keep
  /// downstream RNN sequences bounded (0 = off).
  int max_path_vertices = 120;
  /// Commute structure: each driver owns a pool of frequent
  /// origin-destination pairs (home-work, school runs). Real GPS corpora —
  /// including the paper's — are dominated by such repeated trips, which
  /// is what makes driver preferences learnable per corridor. 0 disables
  /// the pool (every trip gets a fresh random OD pair).
  int od_pairs_per_driver = 5;
  /// Fraction of trips drawn from the driver's OD pool; the rest are
  /// fresh random trips (errands, one-offs).
  double commute_fraction = 0.85;
  /// RNG seed.
  uint64_t seed = 1234;
};

/// Generates a deterministic corpus of trip paths.
class TrajectoryGenerator {
 public:
  TrajectoryGenerator(const graph::RoadNetwork& network,
                      const TrajectoryGeneratorConfig& config);

  /// Runs the simulation, returning `num_trips` trip paths. Each trip is a
  /// simple path with at least 2 vertices.
  std::vector<TripPath> Generate();

  /// Driver profiles used by the simulation (index = driver_id).
  const std::vector<DriverPreferences>& drivers() const { return drivers_; }

 private:
  const graph::RoadNetwork* network_;
  TrajectoryGeneratorConfig config_;
  std::vector<DriverPreferences> drivers_;
  pathrank::Rng rng_;
};

}  // namespace pathrank::traj
