// Simulated driver route-choice model.
//
// The paper's premise: "local drivers often choose paths that are neither
// shortest nor fastest", and those choices are *learnable* from historical
// trajectories — i.e. drivers in a region share common preferences.
//
// We reproduce both properties with a two-level personalised-cost model:
//
//   * A population-level consensus preference over road categories
//     (sampled once per simulation): locals as a group prefer arterials
//     and motorways beyond what free-flow time implies, and avoid
//     residential shortcuts. This makes driver paths deviate
//     systematically from both the shortest and the fastest path while
//     remaining predictable from the path itself — the signal PathRank
//     learns.
//   * Per-driver deviation: a small multiplicative jitter on the consensus,
//     a minority of stronger archetypes (highway avoiders / lovers), and
//     log-normal per-edge "familiarity" noise fixed per (driver, edge) via
//     hashing, consistent across that driver's trips.
//
// A trip's ground-truth path is the shortest path under
//   cost(e) = travel_time(e) * pref[category(e)] * familiarity(e).
#pragma once

#include <array>
#include <vector>

#include "common/rng.h"
#include "graph/road_network.h"

namespace pathrank::traj {

/// Population-level multiplier per road category (1.0 = neutral,
/// < 1 preferred, > 1 avoided).
using PopulationPreferences = std::array<double, graph::kNumRoadCategories>;

/// Draws the regional consensus: big roads preferred, residential avoided.
PopulationPreferences SamplePopulationPreferences(pathrank::Rng& rng);

/// Neutral consensus (all 1.0) — drivers then differ only by their own
/// archetype and noise. Useful for tests.
PopulationPreferences NeutralPopulation();

/// Per-driver route-choice parameters.
struct DriverPreferences {
  int driver_id = 0;
  /// Multiplier applied to travel time per road category; 1.0 = neutral.
  std::array<double, graph::kNumRoadCategories> category_multiplier{};
  /// Standard deviation of the log-normal familiarity noise.
  double familiarity_sigma = 0.1;
  /// Seed mixing the driver identity into per-edge noise.
  uint64_t noise_seed = 0;
};

/// Draws a driver around the population consensus: mild jitter for most
/// drivers, stronger archetypes for a minority.
DriverPreferences SampleDriver(int driver_id, pathrank::Rng& rng,
                               const PopulationPreferences& population);

/// Convenience overload with a neutral population (tests).
DriverPreferences SampleDriver(int driver_id, pathrank::Rng& rng);

/// Materialises the personalised per-edge cost vector for one driver.
/// Deterministic in (driver, network).
std::vector<double> PersonalizedEdgeCosts(
    const graph::RoadNetwork& network, const DriverPreferences& driver);

}  // namespace pathrank::traj
