// Converts a trip path into a raw GPS trace: the vehicle moves along the
// path geometry at free-flow speed and emits a fix every `sample_interval_s`
// seconds with isotropic Gaussian position noise. Together with the HMM map
// matcher this closes the raw-GPS loop the paper's data pipeline performs.
#pragma once

#include "common/rng.h"
#include "graph/road_network.h"
#include "traj/trajectory.h"

namespace pathrank::traj {

/// GPS emission parameters.
struct GpsSimulatorConfig {
  /// Seconds between consecutive fixes (the paper's data is 1 Hz).
  double sample_interval_s = 5.0;
  /// Standard deviation of position noise, metres.
  double noise_sigma_m = 15.0;
  /// Speed factor applied to free-flow travel times (1.0 = free flow).
  double speed_factor = 1.0;
};

/// Simulates the GPS trace of driving `trip` at free-flow speeds.
Trajectory SimulateGps(const graph::RoadNetwork& network,
                       const TripPath& trip, const GpsSimulatorConfig& config,
                       pathrank::Rng& rng);

}  // namespace pathrank::traj
