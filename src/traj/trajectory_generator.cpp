#include "traj/trajectory_generator.h"

#include <algorithm>

#include "common/logging.h"
#include "routing/cost_model.h"
#include "routing/dijkstra.h"

namespace pathrank::traj {

TrajectoryGenerator::TrajectoryGenerator(
    const graph::RoadNetwork& network,
    const TrajectoryGeneratorConfig& config)
    : network_(&network), config_(config), rng_(config.seed) {
  PR_CHECK(config_.num_drivers >= 1);
  PR_CHECK(config_.num_trips >= 1);
  drivers_.reserve(static_cast<size_t>(config_.num_drivers));
  const PopulationPreferences population =
      SamplePopulationPreferences(rng_);
  for (int d = 0; d < config_.num_drivers; ++d) {
    drivers_.push_back(SampleDriver(d, rng_, population));
  }
}

std::vector<TripPath> TrajectoryGenerator::Generate() {
  std::vector<TripPath> trips;
  trips.reserve(static_cast<size_t>(config_.num_trips));

  routing::Dijkstra dijkstra(*network_);
  const size_t n = network_->num_vertices();
  PR_CHECK(n >= 2);

  // Personalised cost vectors are materialised lazily per driver and
  // cached (drivers make many trips).
  std::vector<std::vector<double>> cost_cache(drivers_.size());
  // Per-driver pool of frequent OD pairs (commutes), filled lazily.
  std::vector<std::vector<std::pair<graph::VertexId, graph::VertexId>>>
      od_pools(drivers_.size());

  auto endpoints_valid = [&](graph::VertexId s, graph::VertexId d) {
    if (s == d) return false;
    const double crow = graph::FastDistanceMeters(network_->coordinate(s),
                                                  network_->coordinate(d));
    if (crow < config_.min_trip_distance_m) return false;
    if (config_.max_trip_distance_m > 0.0 &&
        crow > config_.max_trip_distance_m) {
      return false;
    }
    return true;
  };

  int attempts = 0;
  const int max_attempts = config_.num_trips * 50;
  while (static_cast<int>(trips.size()) < config_.num_trips &&
         attempts < max_attempts) {
    ++attempts;
    const int driver_id =
        static_cast<int>(rng_.NextBounded(drivers_.size()));

    graph::VertexId s;
    graph::VertexId d;
    const bool commute = config_.od_pairs_per_driver > 0 &&
                         rng_.NextBernoulli(config_.commute_fraction);
    if (commute) {
      auto& pool = od_pools[static_cast<size_t>(driver_id)];
      while (static_cast<int>(pool.size()) < config_.od_pairs_per_driver) {
        const auto ps = static_cast<graph::VertexId>(rng_.NextBounded(n));
        const auto pd = static_cast<graph::VertexId>(rng_.NextBounded(n));
        if (endpoints_valid(ps, pd)) pool.emplace_back(ps, pd);
      }
      const auto& od = pool[rng_.NextBounded(pool.size())];
      s = od.first;
      d = od.second;
    } else {
      s = static_cast<graph::VertexId>(rng_.NextBounded(n));
      d = static_cast<graph::VertexId>(rng_.NextBounded(n));
      if (!endpoints_valid(s, d)) continue;
    }

    auto& costs = cost_cache[static_cast<size_t>(driver_id)];
    if (costs.empty()) {
      costs = PersonalizedEdgeCosts(*network_, drivers_[driver_id]);
    }
    const auto cost_fn = routing::EdgeCostFn::Custom(*network_, costs);
    auto path = dijkstra.ShortestPath(s, d, cost_fn);
    if (!path.has_value() || path->edges.empty()) continue;
    if (config_.max_path_vertices > 0 &&
        static_cast<int>(path->vertices.size()) > config_.max_path_vertices) {
      continue;
    }

    TripPath trip;
    trip.driver_id = driver_id;
    trip.path = std::move(*path);
    trips.push_back(std::move(trip));
  }
  PR_CHECK(static_cast<int>(trips.size()) == config_.num_trips)
      << "could not generate enough trips; network too small or "
         "min_trip_distance too large";
  PR_LOG_DEBUG << "generated " << trips.size() << " trips in " << attempts
               << " attempts";
  return trips;
}

}  // namespace pathrank::traj
