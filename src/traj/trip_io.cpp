#include "traj/trip_io.h"

#include <stdexcept>

#include "common/csv.h"
#include "common/parse.h"
#include "common/string_util.h"
#include "routing/path.h"

namespace pathrank::traj {

void SaveTrips(const std::vector<TripPath>& trips, const std::string& path) {
  CsvWriter w(path);
  w.WriteRow({"driver_id", "vertices"});
  for (const TripPath& trip : trips) {
    std::vector<std::string> vertex_strings;
    vertex_strings.reserve(trip.path.vertices.size());
    for (graph::VertexId v : trip.path.vertices) {
      vertex_strings.push_back(std::to_string(v));
    }
    w.WriteRow({std::to_string(trip.driver_id),
                Join(vertex_strings, ";")});
  }
}

std::vector<TripPath> LoadTrips(const graph::RoadNetwork& network,
                                const std::string& path) {
  CsvReader reader(path);
  std::vector<TripPath> trips;
  for (size_t i = 1; i < reader.num_rows(); ++i) {
    const auto& row = reader.row(i);
    const size_t line = reader.line(i);  // NOT i + 1: blank lines skip
    if (row.size() < 2) {
      throw std::runtime_error(path + ":" + std::to_string(line) +
                               ": expected 2 fields (driver_id,vertices), "
                               "got " +
                               std::to_string(row.size()));
    }
    TripPath trip;
    trip.driver_id = ParseInt32Field(row[0], "driver_id", path, line);
    std::vector<graph::EdgeId> edges;
    graph::VertexId prev = graph::kInvalidVertex;
    for (const std::string& tok : Split(row[1], ';')) {
      const auto v = static_cast<graph::VertexId>(
          ParseUInt32Field(tok, "vertex id", path, line));
      if (v >= network.num_vertices()) {
        throw std::runtime_error(
            path + ":" + std::to_string(line) + ": vertex id " + tok +
            " is out of range (network has " +
            std::to_string(network.num_vertices()) + " vertices)");
      }
      if (prev != graph::kInvalidVertex) {
        const graph::EdgeId e = network.FindEdge(prev, v);
        if (e == graph::kInvalidEdge) {
          throw std::runtime_error(
              path + ":" + std::to_string(line) +
              ": consecutive vertices " + std::to_string(prev) + " -> " +
              tok + " are not connected");
        }
        edges.push_back(e);
      }
      prev = v;
    }
    if (edges.empty()) {
      throw std::runtime_error(path + ":" + std::to_string(line) +
                               ": trip with fewer than 2 vertices");
    }
    trip.path = routing::PathFromEdges(network, edges);
    trips.push_back(std::move(trip));
  }
  return trips;
}

}  // namespace pathrank::traj
