#include "traj/map_matcher.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/logging.h"
#include "routing/cost_model.h"
#include "routing/dijkstra.h"

namespace pathrank::traj {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct LayerState {
  graph::VertexId vertex;
  double emission_nll;  // negative log emission probability (up to consts)
};

}  // namespace

MapMatcher::MapMatcher(const graph::RoadNetwork& network,
                       const graph::GridIndex& index,
                       const MapMatcherConfig& config)
    : network_(&network), index_(&index), config_(config) {}

std::optional<routing::Path> MapMatcher::Match(
    const Trajectory& trajectory) const {
  if (trajectory.points.size() < 2) return std::nullopt;

  // 1. Thin the trace and build candidate layers.
  std::vector<const GpsPoint*> kept;
  for (const GpsPoint& p : trajectory.points) {
    if (!kept.empty() &&
        graph::FastDistanceMeters(kept.back()->position, p.position) <
            config_.min_point_spacing_m) {
      continue;
    }
    kept.push_back(&p);
  }
  if (kept.size() < 2) return std::nullopt;

  std::vector<std::vector<LayerState>> layers;
  layers.reserve(kept.size());
  const double inv_2sigma2 =
      1.0 / (2.0 * config_.emission_sigma_m * config_.emission_sigma_m);
  for (const GpsPoint* p : kept) {
    auto cands = index_->VerticesWithin(p->position, config_.candidate_radius_m);
    if (cands.empty()) continue;  // drop fixes with no nearby network
    std::sort(cands.begin(), cands.end(),
              [&](graph::VertexId a, graph::VertexId b) {
                return graph::FastDistanceMeters(p->position,
                                                 network_->coordinate(a)) <
                       graph::FastDistanceMeters(p->position,
                                                 network_->coordinate(b));
              });
    if (static_cast<int>(cands.size()) > config_.max_candidates) {
      cands.resize(static_cast<size_t>(config_.max_candidates));
    }
    std::vector<LayerState> layer;
    layer.reserve(cands.size());
    for (graph::VertexId v : cands) {
      const double d =
          graph::FastDistanceMeters(p->position, network_->coordinate(v));
      layer.push_back({v, d * d * inv_2sigma2});
    }
    layers.push_back(std::move(layer));
  }
  if (layers.size() < 2) return std::nullopt;

  // Record the great-circle distances between the fixes whose layers
  // survived (needed for the transition model).
  std::vector<double> crow;  // crow[i] = distance between layer i and i+1
  {
    // Re-derive which kept points produced layers: redo the loop cheaply.
    std::vector<const GpsPoint*> layer_points;
    for (const GpsPoint* p : kept) {
      auto cands =
          index_->VerticesWithin(p->position, config_.candidate_radius_m);
      if (!cands.empty()) layer_points.push_back(p);
    }
    PR_CHECK(layer_points.size() == layers.size());
    for (size_t i = 0; i + 1 < layer_points.size(); ++i) {
      crow.push_back(graph::FastDistanceMeters(layer_points[i]->position,
                                               layer_points[i + 1]->position));
    }
  }

  // 2. Viterbi.
  routing::Dijkstra dijkstra(*network_);
  const auto cost_fn = routing::EdgeCostFn::Length(*network_);
  const size_t num_layers = layers.size();
  std::vector<std::vector<double>> best(num_layers);
  std::vector<std::vector<int>> back(num_layers);
  best[0].resize(layers[0].size());
  back[0].assign(layers[0].size(), -1);
  for (size_t j = 0; j < layers[0].size(); ++j) {
    best[0][j] = layers[0][j].emission_nll;
  }

  for (size_t i = 1; i < num_layers; ++i) {
    best[i].assign(layers[i].size(), kInf);
    back[i].assign(layers[i].size(), -1);
    // Route distances from every layer i-1 candidate to layer i candidates.
    for (size_t a = 0; a < layers[i - 1].size(); ++a) {
      if (best[i - 1][a] == kInf) continue;
      dijkstra.ComputeAllFrom(layers[i - 1][a].vertex, cost_fn);
      for (size_t b = 0; b < layers[i].size(); ++b) {
        const double route = dijkstra.DistanceTo(layers[i][b].vertex);
        if (route == kInf) continue;
        const double transition_nll =
            std::abs(route - crow[i - 1]) / config_.transition_beta_m;
        const double total =
            best[i - 1][a] + transition_nll + layers[i][b].emission_nll;
        if (total < best[i][b]) {
          best[i][b] = total;
          back[i][b] = static_cast<int>(a);
        }
      }
    }
    // All transitions unreachable: fall back to restarting at this layer
    // (keeps matching robust to gaps).
    bool any = false;
    for (double v : best[i]) any = any || v != kInf;
    if (!any) {
      for (size_t b = 0; b < layers[i].size(); ++b) {
        best[i][b] = layers[i][b].emission_nll;
        back[i][b] = -1;
      }
    }
  }

  // 3. Backtrack the vertex sequence.
  size_t arg = 0;
  for (size_t b = 1; b < best.back().size(); ++b) {
    if (best.back()[b] < best.back()[arg]) arg = b;
  }
  std::vector<graph::VertexId> matched(num_layers, graph::kInvalidVertex);
  int cur = static_cast<int>(arg);
  for (size_t i = num_layers; i-- > 0;) {
    if (cur < 0) {
      // Restart boundary: take the locally best state for earlier layers.
      size_t local = 0;
      for (size_t b = 1; b < best[i].size(); ++b) {
        if (best[i][b] < best[i][local]) local = b;
      }
      cur = static_cast<int>(local);
    }
    matched[i] = layers[i][static_cast<size_t>(cur)].vertex;
    cur = back[i][static_cast<size_t>(cur)];
  }

  // 4. Stitch consecutive matched vertices with shortest-path segments.
  routing::Path full;
  full.vertices.push_back(matched[0]);
  for (size_t i = 1; i < matched.size(); ++i) {
    if (matched[i] == full.vertices.back()) continue;
    auto seg =
        dijkstra.ShortestPath(full.vertices.back(), matched[i], cost_fn);
    if (!seg.has_value()) continue;  // disconnected; skip this hop
    full.edges.insert(full.edges.end(), seg->edges.begin(), seg->edges.end());
    full.vertices.insert(full.vertices.end(), seg->vertices.begin() + 1,
                         seg->vertices.end());
  }
  if (full.edges.empty()) return std::nullopt;
  RemoveCycles(*network_, &full);
  routing::RecomputeTotals(*network_, &full);
  full.cost = full.length_m;
  return full;
}

void RemoveCycles(const graph::RoadNetwork& network, routing::Path* path) {
  std::unordered_map<graph::VertexId, size_t> first_pos;
  std::vector<graph::VertexId> vertices;
  std::vector<graph::EdgeId> edges;
  vertices.reserve(path->vertices.size());
  edges.reserve(path->edges.size());

  vertices.push_back(path->vertices[0]);
  first_pos[path->vertices[0]] = 0;
  for (size_t i = 0; i < path->edges.size(); ++i) {
    const graph::VertexId next = path->vertices[i + 1];
    auto it = first_pos.find(next);
    if (it != first_pos.end()) {
      // Splice out the loop: rewind to the first occurrence.
      const size_t keep = it->second;
      for (size_t j = keep + 1; j < vertices.size(); ++j) {
        first_pos.erase(vertices[j]);
      }
      vertices.resize(keep + 1);
      edges.resize(keep);
    } else {
      edges.push_back(path->edges[i]);
      vertices.push_back(next);
      first_pos[next] = vertices.size() - 1;
    }
  }
  path->vertices = std::move(vertices);
  path->edges = std::move(edges);
  routing::RecomputeTotals(network, path);
}

}  // namespace pathrank::traj
