// CSV persistence for trip-path corpora, so simulation, training and
// evaluation can run as separate processes (see tools/pathrank_cli.cpp).
#pragma once

#include <string>
#include <vector>

#include "graph/road_network.h"
#include "traj/trajectory.h"

namespace pathrank::traj {

/// Writes trips as CSV rows: driver_id, then the vertex sequence joined
/// with ';' (edge ids are reconstructed at load time).
void SaveTrips(const std::vector<TripPath>& trips, const std::string& path);

/// Loads trips written by SaveTrips, rebuilding edges against `network`.
/// Throws std::runtime_error on malformed rows or broken vertex sequences.
std::vector<TripPath> LoadTrips(const graph::RoadNetwork& network,
                                const std::string& path);

}  // namespace pathrank::traj
