// Deterministic fault injection for chaos-testing the serving stack.
//
// A FaultInjector holds a set of per-SITE rules parsed from a compact
// spec string; instrumented seams (the HttpBackend lambdas the CLI and
// the tests build, plus any std::function boundary that wants coverage)
// call Inject("site") on every pass. A matching rule may
//
//   * stall the caller (`delay_ms=N`) — models a slow engine, a GC-like
//     pause, a blocked shard — and/or
//   * throw FaultInjectedError (`error`) — models a crashed backend; the
//     HTTP layer turns it into a 500 like any other handler exception,
//
// each gated by an optional probability (`p=F`).
//
// Spec grammar (';'-separated rules, ':'-separated fields):
//
//   spec  := rule (';' rule)*
//   rule  := site (':' field)*
//   field := "delay_ms=" integer | "p=" float-in-[0,1] | "error"
//
// e.g.  "route:delay_ms=50"  "score:error:p=0.2;rank:delay_ms=5:p=0.5"
//
// Determinism: probabilistic rules draw from splitmix64 keyed on
// (seed, site-name hash, per-site call ordinal) — no global RNG, no
// wall clock — so a single-threaded call sequence injects the exact
// same faults on every run, and a concurrent one injects the same
// MULTISET of faults (ordinals are handed out atomically; only their
// assignment to callers varies). That is what lets chaos_test assert
// exact outcome sets instead of "roughly N errors".
//
// Thread-safety: Inject is const and safe from any number of threads;
// rules are immutable after Parse.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>

namespace pathrank::serving {

/// Thrown by Inject for `error` rules. Catchable upstream of the seam;
/// the HTTP handlers let it escape and answer 500.
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(const std::string& site)
      : std::runtime_error("injected fault at site '" + site + "'") {}
};

/// Thrown by Parse on a malformed spec. Messages follow the
/// common/parse field-diagnostic convention — "fault spec rule <n>:
/// <field> expects ..., got '<token>'" — so a typo in a
/// PATHRANK_FAULTS-style flag is a one-glance fix instead of a
/// silently fault-free chaos run.
class FaultSpecError : public std::invalid_argument {
 public:
  explicit FaultSpecError(const std::string& message)
      : std::invalid_argument(message) {}
};

/// Parsed, immutable fault plan. Default-constructed = no faults (every
/// Inject is a no-op), so seams can call unconditionally.
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Parses `spec` (grammar above). Throws FaultSpecError on a malformed
  /// spec — unknown field, bad or overflowing number, p outside [0,1],
  /// empty site, duplicate site, rule with no effect. Never returns
  /// nullptr: an empty spec parses to a no-fault injector. Shared-ptr
  /// because the backend lambdas that capture the injector must copy,
  /// and the per-site ordinals must stay shared.
  static std::shared_ptr<FaultInjector> Parse(const std::string& spec,
                                              uint64_t seed);

  /// Applies the rule for `site`, if any: maybe-sleep then maybe-throw
  /// FaultInjectedError. Unknown sites are free (one hash lookup).
  void Inject(const std::string& site) const;

  bool enabled() const { return !rules_.empty(); }
  /// Faults actually fired so far (for the shutdown report / asserts).
  uint64_t injected_delays() const {
    return delays_.load(std::memory_order_relaxed);
  }
  uint64_t injected_errors() const {
    return errors_.load(std::memory_order_relaxed);
  }

 private:
  struct Rule {
    int64_t delay_ms = 0;
    double probability = 1.0;
    bool error = false;
    /// Per-site call counter: the third key of the deterministic draw.
    mutable std::atomic<uint64_t> ordinal{0};
  };

  uint64_t seed_ = 0;
  /// Node-based map: Rule holds an atomic (immovable), so rules are
  /// emplaced once at parse time and never moved after.
  std::unordered_map<std::string, Rule> rules_;
  mutable std::atomic<uint64_t> delays_{0};
  mutable std::atomic<uint64_t> errors_{0};
};

}  // namespace pathrank::serving
