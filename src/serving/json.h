// Minimal JSON reader/writer for the HTTP serving front end — the wire
// format between HttpServer and its clients. Hand-rolled (no third-party
// dependency, matching the repo's dependency-free rule) and deliberately
// small: the server's request/response schemas need objects, arrays,
// strings, doubles and bools, nothing exotic.
//
// Fidelity contract: Dump prints doubles in their shortest
// round-trippable form (std::to_chars) so Parse(Dump(x)) == x bitwise
// for every finite double, independent of the process locale. This is
// what lets the HTTP round-trip tests assert scores BITWISE equal to the
// in-process ServingEngine path — the serialization layer never rounds.
//
// Parsing is strict RFC-8259: exactly one value, no trailing input, no
// comments, no trailing commas, \uXXXX escapes (surrogate pairs included)
// decoded to UTF-8, nesting depth capped so a hostile body cannot blow
// the stack.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace pathrank::serving::json {

class Value;
/// Array / object payloads. std::map keeps Dump output deterministic
/// (keys in sorted order), which the tests and docs examples rely on.
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

/// One JSON value: null, bool, number (double), string, array or object.
/// The payload is a tagged union (std::variant), not side-by-side
/// members: a parsed number costs one variant slot rather than dormant
/// string/array/map containers — which matters when a request body near
/// max_body_bytes parses into hundreds of thousands of Values.
class Value {
 public:
  /// Enumerators are in variant-alternative order: type() is the index.
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;
  Value(bool b) : data_(b) {}
  Value(double d) : data_(d) {}
  Value(int i) : data_(static_cast<double>(i)) {}
  Value(int64_t i) : data_(static_cast<double>(i)) {}
  Value(uint64_t u) : data_(static_cast<double>(u)) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  Type type() const { return static_cast<Type>(data_.index()); }
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_number() const { return type() == Type::kNumber; }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  /// Typed accessors. Calling the wrong one returns the type's zero value
  /// (false / 0.0 / empty) rather than throwing — callers check type()
  /// or is_*() first; the HTTP handlers always do.
  bool bool_value() const {
    const bool* b = std::get_if<bool>(&data_);
    return b != nullptr && *b;
  }
  double number_value() const {
    const double* d = std::get_if<double>(&data_);
    return d != nullptr ? *d : 0.0;
  }
  const std::string& string_value() const {
    static const std::string kEmpty;
    const std::string* s = std::get_if<std::string>(&data_);
    return s != nullptr ? *s : kEmpty;
  }
  const Array& array() const {
    static const Array kEmpty;
    const Array* a = std::get_if<Array>(&data_);
    return a != nullptr ? *a : kEmpty;
  }
  const Object& object() const {
    static const Object kEmpty;
    const Object* o = std::get_if<Object>(&data_);
    return o != nullptr ? *o : kEmpty;
  }

  /// Object member lookup: the value at `key`, or nullptr when this is
  /// not an object or the key is absent.
  const Value* Find(const std::string& key) const {
    const Object* o = std::get_if<Object>(&data_);
    if (o == nullptr) return nullptr;
    const auto it = o->find(key);
    return it != o->end() ? &it->second : nullptr;
  }

 private:
  std::variant<std::monostate, bool, double, std::string, Array, Object>
      data_;
};

/// Parses exactly one JSON value spanning all of `text` (surrounding
/// whitespace allowed). Returns nullopt on malformed input and, when
/// `error` is non-null, stores a one-line "offset N: what went wrong"
/// description for the 400 response body.
std::optional<Value> Parse(std::string_view text, std::string* error = nullptr);

/// Serialises compactly (no whitespace). Doubles print in their shortest
/// round-trippable form (std::to_chars, locale-independent) so
/// Parse(Dump(v)) reproduces them bitwise; integral doubles print as
/// plain integers ("17", not "1.7e+01") so ids stay readable.
std::string Dump(const Value& value);

}  // namespace pathrank::serving::json
