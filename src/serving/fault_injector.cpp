#include "serving/fault_injector.h"

#include <chrono>
#include <thread>
#include <vector>

#include "common/parse.h"

namespace pathrank::serving {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashName(const std::string& name) {
  // FNV-1a: stable across runs and platforms (std::hash is neither
  // guaranteed), which the determinism contract needs.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Uniform draw in [0,1) from the keyed counter — the same finalizer-on-
/// a-counter construction common::Rng uses.
double UniformDraw(uint64_t seed, uint64_t site_hash, uint64_t ordinal) {
  const uint64_t bits = SplitMix64(seed ^ SplitMix64(site_hash ^ ordinal));
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

/// Rule-indexed spec diagnostic, in the common/parse field convention
/// ("<where>: <what>, got '<token>'"). Rules are 1-based, like lines.
[[noreturn]] void ThrowSpecError(size_t rule_index,
                                 const std::string& what) {
  throw FaultSpecError("fault spec rule " + std::to_string(rule_index) +
                       ": " + what);
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

}  // namespace

std::shared_ptr<FaultInjector> FaultInjector::Parse(const std::string& spec,
                                                    uint64_t seed) {
  auto injector = std::shared_ptr<FaultInjector>(new FaultInjector());
  injector->seed_ = seed;
  if (spec.empty()) return injector;
  size_t rule_index = 0;
  for (const std::string& rule_text : Split(spec, ';')) {
    ++rule_index;
    if (rule_text.empty()) {
      ThrowSpecError(rule_index, "empty rule (stray ';'?)");
    }
    const std::vector<std::string> fields = Split(rule_text, ':');
    const std::string& site = fields[0];
    if (site.empty() || site.find('=') != std::string::npos) {
      ThrowSpecError(rule_index,
                     "site expects a name, got '" + site + "'");
    }
    auto [it, inserted] = injector->rules_.try_emplace(site);
    if (!inserted) {
      ThrowSpecError(rule_index, "duplicate site '" + site + "'");
    }
    Rule& rule = it->second;
    bool has_effect = false;
    for (size_t i = 1; i < fields.size(); ++i) {
      const std::string& field = fields[i];
      if (field == "error") {
        rule.error = true;
        has_effect = true;
      } else if (field.rfind("delay_ms=", 0) == 0) {
        const std::string token = field.substr(9);
        // Whole-token, overflow-checked: "delay_ms=12x" and a value past
        // INT64_MAX both throw instead of installing a truncated delay.
        if (!ParseInt64(token, &rule.delay_ms) || rule.delay_ms < 0) {
          ThrowSpecError(rule_index,
                         "delay_ms expects a non-negative integer, got '" +
                             token + "'");
        }
        has_effect = true;
      } else if (field.rfind("p=", 0) == 0) {
        const std::string token = field.substr(2);
        if (!ParseDouble(token, &rule.probability) ||
            rule.probability < 0.0 || rule.probability > 1.0) {
          ThrowSpecError(rule_index,
                         "p expects a number in [0,1], got '" + token +
                             "'");
        }
      } else {
        ThrowSpecError(rule_index, "unknown field '" + field + "'");
      }
    }
    if (!has_effect) {
      ThrowSpecError(rule_index, "rule '" + rule_text +
                                     "' has no effect (need delay_ms= "
                                     "or error)");
    }
  }
  return injector;
}

void FaultInjector::Inject(const std::string& site) const {
  const auto it = rules_.find(site);
  if (it == rules_.end()) return;
  const Rule& rule = it->second;
  // The ordinal advances on every PASS through the site (fired or not):
  // which calls fault is then a pure function of (seed, site, ordinal),
  // independent of timing.
  const uint64_t ordinal = rule.ordinal.fetch_add(1, std::memory_order_relaxed);
  if (rule.probability < 1.0 &&
      UniformDraw(seed_, HashName(site), ordinal) >= rule.probability) {
    return;
  }
  if (rule.delay_ms > 0) {
    delays_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(rule.delay_ms));
  }
  if (rule.error) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    throw FaultInjectedError(site);
  }
}

}  // namespace pathrank::serving
