#include "serving/fault_injector.h"

#include <chrono>
#include <thread>
#include <vector>

namespace pathrank::serving {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashName(const std::string& name) {
  // FNV-1a: stable across runs and platforms (std::hash is neither
  // guaranteed), which the determinism contract needs.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Uniform draw in [0,1) from the keyed counter — the same finalizer-on-
/// a-counter construction common::Rng uses.
double UniformDraw(uint64_t seed, uint64_t site_hash, uint64_t ordinal) {
  const uint64_t bits = SplitMix64(seed ^ SplitMix64(site_hash ^ ordinal));
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

std::nullptr_t Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return nullptr;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

bool ParseInt(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  int64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    if (value > (INT64_MAX - (c - '0')) / 10) return false;
    value = value * 10 + (c - '0');
  }
  *out = value;
  return true;
}

bool ParseProbability(const std::string& s, double* out) {
  // Accepts "0", "1", "0.25" — digits with at most one dot; strtod-free
  // to keep behaviour locale-independent.
  if (s.empty()) return false;
  int64_t whole = 0;
  double frac = 0.0;
  const size_t dot = s.find('.');
  if (!ParseInt(s.substr(0, dot == std::string::npos ? s.size() : dot),
                &whole)) {
    return false;
  }
  if (dot != std::string::npos) {
    const std::string tail = s.substr(dot + 1);
    int64_t digits = 0;
    if (!ParseInt(tail, &digits)) return false;
    double scale = 1.0;
    for (size_t i = 0; i < tail.size(); ++i) scale *= 10.0;
    frac = static_cast<double>(digits) / scale;
  }
  const double value = static_cast<double>(whole) + frac;
  if (value < 0.0 || value > 1.0) return false;
  *out = value;
  return true;
}

}  // namespace

std::shared_ptr<FaultInjector> FaultInjector::Parse(const std::string& spec,
                                                    uint64_t seed,
                                                    std::string* error) {
  auto injector = std::shared_ptr<FaultInjector>(new FaultInjector());
  injector->seed_ = seed;
  if (spec.empty()) return injector;
  for (const std::string& rule_text : Split(spec, ';')) {
    if (rule_text.empty()) {
      return Fail(error, "empty rule in fault spec");
    }
    const std::vector<std::string> fields = Split(rule_text, ':');
    const std::string& site = fields[0];
    if (site.empty() || site.find('=') != std::string::npos) {
      return Fail(error, "bad site name in rule '" + rule_text + "'");
    }
    auto [it, inserted] = injector->rules_.try_emplace(site);
    if (!inserted) {
      return Fail(error, "duplicate site '" + site + "' in fault spec");
    }
    Rule& rule = it->second;
    bool has_effect = false;
    for (size_t i = 1; i < fields.size(); ++i) {
      const std::string& field = fields[i];
      if (field == "error") {
        rule.error = true;
        has_effect = true;
      } else if (field.rfind("delay_ms=", 0) == 0) {
        if (!ParseInt(field.substr(9), &rule.delay_ms)) {
          return Fail(error, "bad delay in '" + field + "'");
        }
        has_effect = true;
      } else if (field.rfind("p=", 0) == 0) {
        if (!ParseProbability(field.substr(2), &rule.probability)) {
          return Fail(error,
                      "bad probability in '" + field + "' (want [0,1])");
        }
      } else {
        return Fail(error, "unknown field '" + field + "' in rule '" +
                               rule_text + "'");
      }
    }
    if (!has_effect) {
      return Fail(error, "rule '" + rule_text +
                             "' has no effect (need delay_ms= or error)");
    }
  }
  return injector;
}

void FaultInjector::Inject(const std::string& site) const {
  const auto it = rules_.find(site);
  if (it == rules_.end()) return;
  const Rule& rule = it->second;
  // The ordinal advances on every PASS through the site (fired or not):
  // which calls fault is then a pure function of (seed, site, ordinal),
  // independent of timing.
  const uint64_t ordinal = rule.ordinal.fetch_add(1, std::memory_order_relaxed);
  if (rule.probability < 1.0 &&
      UniformDraw(seed_, HashName(site), ordinal) >= rule.probability) {
    return;
  }
  if (rule.delay_ms > 0) {
    delays_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(rule.delay_ms));
  }
  if (rule.error) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    throw FaultInjectedError(site);
  }
}

}  // namespace pathrank::serving
