// Thread-safe ranking service: one immutable ModelSnapshot shared by a
// pool of scoring replicas, dispatched round-robin behind per-replica
// locks (the cuBERT multi-instance pattern). Because the snapshot's
// inference path is const, a "replica" is just per-caller scratch state —
// no parameter copies — so the pool is cheap to size at one replica per
// expected concurrent caller.
//
// Thread-safety contract: Rank / RankBatch / ScoreBatch may be called
// concurrently from any number of threads on one shared engine. Scores are
// bitwise identical to the single-threaded path for any thread or replica
// count (the inference kernels are deterministic and replicas share the
// exact same parameters).
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "core/model.h"
#include "data/candidate_generation.h"
#include "graph/road_network.h"
#include "routing/path.h"
#include "serving/model_snapshot.h"

namespace pathrank::serving {

/// One ranked candidate.
struct ScoredPath {
  routing::Path path;
  double score = 0.0;
};

/// One (source, destination) ranking request.
struct RankQuery {
  graph::VertexId source = graph::kInvalidVertex;
  graph::VertexId destination = graph::kInvalidVertex;
};

/// Engine construction options.
struct ServingOptions {
  /// Scoring replicas (scratch + lock). 0 = one per global pool thread.
  size_t num_replicas = 0;
  /// Candidate strategy used by Rank/RankBatch when no per-call config is
  /// given (defaults to D-TkDI, the paper's deployment strategy).
  data::CandidateGenConfig candidates;
};

/// Generates candidate paths for one query with the configured strategy —
/// the advanced-routing half of Rank, exposed for tools and tests.
std::vector<routing::Path> GenerateCandidates(
    const graph::RoadNetwork& network, graph::VertexId source,
    graph::VertexId destination, const data::CandidateGenConfig& gen);

/// Replica-pool serving facade. The engine borrows the network (caller
/// keeps it alive) and shares ownership of the snapshot.
class ServingEngine {
 public:
  ServingEngine(const graph::RoadNetwork& network,
                std::shared_ptr<const ModelSnapshot> snapshot,
                const ServingOptions& options = {});

  /// Convenience: captures a snapshot of `model` at construction. Later
  /// training of `model` does not affect this engine.
  ServingEngine(const graph::RoadNetwork& network,
                const core::PathRankModel& model,
                const ServingOptions& options = {});

  ~ServingEngine();
  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Generates candidates for (source, destination) and returns them
  /// sorted by descending estimated score. Thread-safe.
  std::vector<ScoredPath> Rank(graph::VertexId source,
                               graph::VertexId destination) const;
  std::vector<ScoredPath> Rank(graph::VertexId source,
                               graph::VertexId destination,
                               const data::CandidateGenConfig& gen) const;

  /// Ranks a batch of queries, sharding them across the global worker
  /// pool; results[i] corresponds to queries[i] and is bitwise identical
  /// to Rank(queries[i]). Thread-safe.
  std::vector<std::vector<ScoredPath>> RankBatch(
      const std::vector<RankQuery>& queries) const;
  std::vector<std::vector<ScoredPath>> RankBatch(
      const std::vector<RankQuery>& queries,
      const data::CandidateGenConfig& gen) const;

  /// Scores externally supplied candidate paths (sorted descending).
  /// Thread-safe.
  std::vector<ScoredPath> ScoreBatch(
      const std::vector<routing::Path>& paths) const;

  const ModelSnapshot& snapshot() const { return *snapshot_; }
  std::shared_ptr<const ModelSnapshot> shared_snapshot() const {
    return snapshot_;
  }
  const graph::RoadNetwork& network() const { return *network_; }
  size_t num_replicas() const { return replicas_.size(); }
  const ServingOptions& options() const { return options_; }

 private:
  struct Replica;

  /// Round-robin pick + lock, then score `batch` on the shared snapshot
  /// with the replica's scratch.
  std::vector<float> ScoreSequences(const nn::SequenceBatch& batch) const;

  const graph::RoadNetwork* network_;
  std::shared_ptr<const ModelSnapshot> snapshot_;
  ServingOptions options_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  mutable std::atomic<uint32_t> round_robin_{0};
};

}  // namespace pathrank::serving
