// Thread-safe ranking service: one immutable ModelSnapshot shared by a
// pool of scoring replicas, dispatched round-robin behind per-replica
// locks (the cuBERT multi-instance pattern). Because the snapshot's
// inference path is const, a "replica" is just per-caller scratch state —
// no parameter copies — so the pool is cheap to size at one replica per
// expected concurrent caller.
//
// Thread-safety contract: Rank / RankBatch / ScoreBatch / ScoreSequences
// may be called concurrently from any number of threads on one shared
// engine. Scores are bitwise identical to the single-threaded path for any
// thread or replica count (the inference kernels are deterministic and
// replicas share the exact same parameters).
//
// Hot-swap contract: SwapSnapshot atomically replaces the served model.
// Every scoring call captures the snapshot pointer exactly once at entry,
// so each response is computed entirely on one snapshot — never a mix —
// and in-flight requests finish on the snapshot they started with. The old
// snapshot is freed when the last in-flight request drops its reference.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "common/deadline.h"
#include "common/thread_annotations.h"
#include "core/model.h"
#include "data/candidate_generation.h"
#include "graph/road_network.h"
#include "routing/path.h"
#include "serving/model_snapshot.h"

namespace pathrank::serving {

/// One ranked candidate.
struct ScoredPath {
  routing::Path path;
  double score = 0.0;
};

/// One (source, destination) ranking request.
struct RankQuery {
  graph::VertexId source = graph::kInvalidVertex;
  graph::VertexId destination = graph::kInvalidVertex;
};

/// Engine construction options.
struct ServingOptions {
  /// Scoring replicas (scratch + lock). 0 = one per global pool thread.
  size_t num_replicas = 0;
  /// Candidate strategy used by Rank/RankBatch when no per-call config is
  /// given (defaults to D-TkDI, the paper's deployment strategy).
  data::CandidateGenConfig candidates;
};

/// Generates candidate paths for one query with the configured strategy —
/// the advanced-routing half of Rank, exposed for tools and tests.
/// `cancel` (optional) threads the request deadline into the enumeration
/// loops; an expired token yields the candidates found so far. `engine`
/// (optional, borrowed, not thread-safe) runs the Yen spur searches —
/// nullptr keeps the historical owned-Dijkstra behaviour bitwise intact.
std::vector<routing::Path> GenerateCandidates(
    const graph::RoadNetwork& network, graph::VertexId source,
    graph::VertexId destination, const data::CandidateGenConfig& gen,
    const CancelToken* cancel = nullptr,
    routing::ShortestPathEngine* engine = nullptr);

/// Encodes one candidate path's vertex ids as the model's token sequence.
/// The single source of truth for the Path -> SequenceBatch-row mapping:
/// ScoreBatch and the BatchingQueue's coalesced flushes both use it, which
/// is part of why coalesced scoring is bitwise equal to per-request
/// scoring.
std::vector<int32_t> PathToSequence(const routing::Path& path);

/// Pairs paths[i] with scores[offset + i] and sorts descending — the one
/// ordering rule behind ScoreBatch and the BatchingQueue's per-request
/// results (the other half of the bitwise-equivalence guarantee).
std::vector<ScoredPath> AssembleRanking(std::vector<routing::Path> paths,
                                        const std::vector<float>& scores,
                                        size_t offset = 0);

/// Replica-pool serving facade. The engine borrows the network (caller
/// keeps it alive) and shares ownership of the snapshot.
class ServingEngine {
 public:
  ServingEngine(const graph::RoadNetwork& network,
                std::shared_ptr<const ModelSnapshot> snapshot,
                const ServingOptions& options = {});

  /// Convenience: captures a snapshot of `model` at construction. Later
  /// training of `model` does not affect this engine.
  ServingEngine(const graph::RoadNetwork& network,
                const core::PathRankModel& model,
                const ServingOptions& options = {});

  ~ServingEngine();
  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Generates candidates for (source, destination) and returns them
  /// sorted by descending estimated score. Thread-safe.
  std::vector<ScoredPath> Rank(graph::VertexId source,
                               graph::VertexId destination) const;
  std::vector<ScoredPath> Rank(graph::VertexId source,
                               graph::VertexId destination,
                               const data::CandidateGenConfig& gen) const;

  /// Ranks a batch of queries, sharding them across the global worker
  /// pool; results[i] corresponds to queries[i] and is bitwise identical
  /// to Rank(queries[i]). Thread-safe.
  std::vector<std::vector<ScoredPath>> RankBatch(
      const std::vector<RankQuery>& queries) const;
  std::vector<std::vector<ScoredPath>> RankBatch(
      const std::vector<RankQuery>& queries,
      const data::CandidateGenConfig& gen) const;

  /// Scores externally supplied candidate paths (sorted descending).
  /// Thread-safe.
  std::vector<ScoredPath> ScoreBatch(
      const std::vector<routing::Path>& paths) const;

  /// Scores a prepared SequenceBatch on the current snapshot, row for row
  /// (no sorting) — the raw scoring primitive under ScoreBatch. Runs the
  /// kernels serially on the calling thread (parallelism lives across
  /// callers). Thread-safe.
  std::vector<float> ScoreSequences(const nn::SequenceBatch& batch) const;

  /// Scores a coalesced SequenceBatch (many requests' rows in one batch,
  /// see BatchingQueue) on a dedicated replica. Unlike ScoreSequences the
  /// kernels may shard over the global pool — safe here because the
  /// dedicated replica's lock is never taken from a pool worker, and
  /// bitwise identical because the kernels are thread-count stable. When
  /// `used` is non-null it receives the snapshot the batch was scored on,
  /// so every coalesced response is attributable to exactly one snapshot
  /// even while SwapSnapshot runs. Thread-safe.
  std::vector<float> ScoreCoalesced(
      const nn::SequenceBatch& batch,
      std::shared_ptr<const ModelSnapshot>* used = nullptr) const;

  /// Atomically replaces the served snapshot and returns the previous one.
  /// In-flight requests finish on the snapshot they captured at entry; new
  /// requests score on `next`. The old snapshot is destroyed when its last
  /// in-flight request completes (or when the caller drops the returned
  /// handle, whichever is later). Thread-safe; callable under full load.
  std::shared_ptr<const ModelSnapshot> SwapSnapshot(
      std::shared_ptr<const ModelSnapshot> next) EXCLUDES(snapshot_mu_);

  /// The currently served snapshot (a new swap may supersede it at any
  /// time; the returned handle stays valid regardless).
  std::shared_ptr<const ModelSnapshot> shared_snapshot() const
      EXCLUDES(snapshot_mu_) {
    common::MutexLock lock(snapshot_mu_);
    return snapshot_;
  }
  /// Number of SwapSnapshot calls since construction.
  uint64_t swap_count() const {
    return swap_count_.load(std::memory_order_relaxed);
  }
  const graph::RoadNetwork& network() const { return *network_; }
  size_t num_replicas() const { return replicas_.size(); }
  const ServingOptions& options() const { return options_; }

 private:
  struct Replica;

  /// Round-robin pick + lock, then score `batch` on `snap` with the
  /// replica's scratch, serially on the calling thread.
  std::vector<float> ScoreOn(const ModelSnapshot& snap,
                             const nn::SequenceBatch& batch) const;

  const graph::RoadNetwork* network_;
  /// Guarded by a mutex rather than std::atomic<shared_ptr>: the critical
  /// section is one refcounted copy (noise next to a forward pass), and
  /// libstdc++'s lock-bit _Sp_atomic protocol is opaque to TSan, which
  /// the CI thread-sanitizer gate runs against. Never held while taking
  /// a replica lock (the snapshot handle is copied out first), hence the
  /// rank before both replica families.
  mutable common::Mutex snapshot_mu_{common::LockRank::kEngineSnapshot,
                                     "engine.snapshot"};
  std::shared_ptr<const ModelSnapshot> snapshot_ GUARDED_BY(snapshot_mu_);
  std::atomic<uint64_t> swap_count_{0};
  ServingOptions options_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  /// Reserved for ScoreCoalesced: never in the round-robin rotation, so no
  /// pool worker can ever hold or wait on its lock — which is what makes
  /// it safe for its holder to block on the pool.
  std::unique_ptr<Replica> batch_replica_;
  mutable std::atomic<uint32_t> round_robin_{0};
};

}  // namespace pathrank::serving
