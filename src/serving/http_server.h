// HTTP/1.1 front end for the serving stack — the network layer over
// ServingEngine / ShardedEngine / BatchingQueue. Dependency-free: POSIX
// sockets, an accept loop, and a fixed pool of connection worker threads
// (plain threads, NEVER the global compute pool — workers block on
// sockets and on BatchingQueue futures, both of which are forbidden on
// pool workers).
//
// Endpoints (JSON over HTTP/1.1, keep-alive supported):
//   POST /v1/rank    {"source": id, "destination": id}
//                    -> {"candidates": [{"score", "vertices",
//                                        "length_m", "time_s"}, ...]}
//   POST /v1/score   {"paths": [[id, id, ...], ...]}
//                    -> {"candidates": [{"score", "vertices"}, ...]}
//   POST /v1/route   {"source": id, "destination": id, "k": n?,
//                     "budget_ms": n?}  (X-Deadline-Ms header also works;
//                    the body field wins when both are present)
//                    -> {"cache_hit": b, "routes": [{"score", "cost",
//                        "length_m", "time_s", "vertices", "edges"},...]}
//                    (RoutePlanner pipeline: candidate cache + explicit
//                    error taxonomy; 404 when no route backend is set.
//                    An expired budget answers 504 "deadline_exceeded"
//                    when no candidate was found in time, or 200 with
//                    "degraded": true and the partial set otherwise —
//                    see docs/serving.md.)
//   POST /v1/traffic {"updates": [{"edge": id, "travel_time_s": s?,
//                      "closed": b?}, ...]}
//                    -> {"epoch": n, "cost_updates": n, "closures": n,
//                        "reopenings": n}
//                    (live-graph ingestion: validates the batch, rebuilds
//                    a new GraphSnapshot at epoch + 1 and swaps it in
//                    atomically. All-or-nothing per batch; rejections are
//                    400 with a TrafficStatusSlug. 404 when no traffic
//                    backend is set — see docs/serving.md.)
//   GET  /healthz    -> {"status": "ok", "swap_count": n, ...}
//   GET  /statsz     -> queue depth, shed count, per-endpoint latency,
//                       graph_epoch + route-planner cache counters
//
// Admission control: the /v1/* endpoints share a bounded in-flight
// budget (`max_inflight`). A request that cannot take a slot within
// `max_queue_wait_us` is SHED with `429 Too Many Requests` +
// `Retry-After` instead of queuing unboundedly — under overload the
// server's latency stays bounded and clients get an explicit back-off
// signal rather than a growing queue. /healthz and /statsz bypass
// admission, and the default worker sizing (max_inflight + 4) keeps
// spare workers, so health checks and dashboards keep answering while
// the admission budget is saturated. (A flood of CONNECTIONS — beyond
// num_threads keep-alive clients — can still occupy every worker;
// admission bounds engine work, not sockets.)
//
// Fidelity: scores travel in shortest-round-trip double form (see
// json.h), so a response body parses back bitwise identical to the
// in-process ServingEngine::Rank / ScoreBatch result (http_server_test
// asserts it).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "serving/route_planner.h"
#include "serving/serving_engine.h"

namespace pathrank::serving {

/// Server construction knobs.
struct HttpServerOptions {
  /// Dotted-quad address to bind. Tests bind the loopback; deployments
  /// usually want "0.0.0.0".
  std::string bind_address = "127.0.0.1";
  /// TCP port. 0 lets the OS pick a free one (see HttpServer::port()).
  uint16_t port = 0;
  /// Connection worker threads: the keep-alive concurrency ceiling (each
  /// worker drives one connection at a time). 0 = max_inflight + 4 — the
  /// default, and the sizing that makes admission control the binding
  /// constraint: with fewer workers than max_inflight the 429 path could
  /// never trigger (concurrency is already below the budget), and with
  /// no spare workers a saturated engine would starve /healthz probes.
  size_t num_threads = 0;
  /// Admission budget shared by /v1/rank and /v1/score: at most this many
  /// requests may be past admission (executing) at once. Keep it BELOW
  /// num_threads (the default sizing above does) or shedding never
  /// engages.
  size_t max_inflight = 64;
  /// How long admission may hold a request waiting for a slot before
  /// shedding it. 0 = shed immediately when the budget is exhausted.
  int64_t max_queue_wait_us = 0;
  /// Request bodies above this are rejected with 413 (and the connection
  /// closed, so the server never reads an unbounded body).
  size_t max_body_bytes = 1 << 20;
  /// Value of the Retry-After header on shed (429) responses, seconds.
  int retry_after_s = 1;
  /// Idle keep-alive connections are dropped after this long (applied as
  /// SO_RCVTIMEO + SO_SNDTIMEO) so a silent client cannot hold a worker
  /// forever. The send half also bounds Stop() against a non-reading
  /// client. Clamped to >= 1.
  int idle_timeout_s = 30;
  /// Wall-clock budget for reading ONE request (headers + body + error
  /// drain). The idle timeout alone is per-recv: a slow-trickle client
  /// feeding one byte per tick would otherwise hold a worker for days.
  /// Clamped to >= 1.
  int request_deadline_s = 60;
  /// Route-planning budget (ms) applied when the client sends neither an
  /// X-Deadline-Ms header nor a budget_ms body field. 0 = unbounded, the
  /// default — deadline-free requests take the planner's nullptr fast
  /// path and answer bitwise identically to a server without deadlines.
  int64_t default_deadline_ms = 0;
  /// Ceiling on the CLIENT-supplied budget: larger asks are clamped down
  /// to this (the operator's protection against a client buying an
  /// unbounded enumeration by sending a huge budget). 0 = uncapped.
  int64_t max_deadline_ms = 0;
};

/// Point-in-time per-endpoint counters, reported by stats() / GET /statsz.
struct HttpEndpointStats {
  uint64_t requests = 0;      ///< admitted + completed (any status)
  uint64_t errors = 0;        ///< completed with a 4xx/5xx status
  uint64_t timeouts = 0;      ///< completed with 504 (subset of errors)
  double latency_mean_s = 0;  ///< over all completed requests
  double latency_p50_s = 0;   ///< over a ring of recent completions
  double latency_p99_s = 0;
};

/// Point-in-time server counters.
struct HttpServerStats {
  uint64_t connections_accepted = 0;
  uint64_t requests_total = 0;  ///< every parsed request, any endpoint
  uint64_t shed_total = 0;      ///< requests refused with 429
  uint64_t deadline_exceeded_total = 0;  ///< /v1/route answered 504
  uint64_t degraded_total = 0;  ///< /v1/route answered with a partial set
  uint64_t inflight = 0;        ///< currently past admission
  uint64_t admission_waiting = 0;  ///< currently queued for a slot
  /// Epoch of the graph snapshot currently served (0 when the server has
  /// no live-graph backend — the boot graph is epoch 0 by definition).
  uint64_t graph_epoch = 0;
  /// Route-planner cache/coalescing counters (all zero when no
  /// route_planner_stats seam is set).
  RoutePlannerStats route_planner;
  /// ALT preprocessing lifecycle counters (disabled/zero when no
  /// preprocessing_stats seam is set).
  PreprocessingStats preprocessing;
  HttpEndpointStats rank;
  HttpEndpointStats score;
  HttpEndpointStats route;
  HttpEndpointStats traffic;
};

/// What the server serves. Thin std::function seams rather than a fixed
/// engine type, so one HttpServer front-ends a bare ServingEngine, a
/// ShardedEngine, or a BatchingQueue (futures resolved inside `rank`) —
/// exactly the compositions `pathrank_cli serve` offers.
struct HttpBackend {
  /// Required: POST /v1/rank. May throw; the server answers 500.
  std::function<std::vector<ScoredPath>(graph::VertexId source,
                                        graph::VertexId destination)>
      rank;
  /// Required: POST /v1/score. May throw; the server answers 500.
  std::function<std::vector<ScoredPath>(std::vector<routing::Path> paths)>
      score;
  /// Optional: POST /v1/route — the full RoutePlanner pipeline (candidate
  /// enumeration + cache + scoring). When absent the endpoint answers 404
  /// ("route planning is not enabled"). RouteResult::status maps to the
  /// HTTP code (kUnreachable -> 404, other non-kOk -> 400); only a thrown
  /// exception becomes a 500.
  std::function<RouteResult(const RouteRequest& request)> route;
  /// Optional: POST /v1/traffic — live edge cost/closure ingestion,
  /// normally GraphStore::ApplyTraffic. When absent the endpoint answers
  /// 404. TrafficResult::status != kOk maps to 400 with the
  /// TrafficStatusSlug; only a thrown exception becomes a 500.
  std::function<TrafficResult(const std::vector<graph::TrafficUpdate>&)>
      traffic;
  /// Optional: the served graph epoch (GraphStore::epoch), surfaced in
  /// /healthz and /statsz as "graph_epoch".
  std::function<uint64_t()> graph_epoch;
  /// Optional: the planner's cache/coalescing counters
  /// (RoutePlanner::stats), surfaced in /statsz as "route_planner".
  std::function<RoutePlannerStats()> route_planner_stats;
  /// Optional: the graph store's ALT preprocessing counters
  /// (GraphStore::preprocessing_stats), surfaced in /statsz as
  /// "preprocessing".
  std::function<PreprocessingStats()> preprocessing_stats;
  /// Optional: surfaced in /healthz as "swap_count" so a watcher can see
  /// a model hot-swap land (the value flips when SwapSnapshot runs).
  std::function<uint64_t()> swap_count;
  /// Vertex-id validation bound for request bodies (ids >= this are 400,
  /// protecting the embedding lookup). 0 disables the check.
  size_t num_vertices = 0;
};

/// The server. Construct, Start(), then Stop() (or destroy — the
/// destructor stops). Start binds + listens, spawns the accept loop and
/// `num_threads` connection workers; Stop closes the listener, shuts
/// down every live connection and joins all threads. In-flight requests
/// finish; queued-but-unserviced connections are closed.
class HttpServer {
 public:
  HttpServer(HttpBackend backend, const HttpServerOptions& options = {});
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds and starts serving. Throws std::runtime_error when the
  /// address/port cannot be bound.
  void Start();
  /// Idempotent; safe to call from any thread (not from a handler).
  void Stop() EXCLUDES(stop_mu_, conn_mu_, admit_mu_);

  /// The bound port — the OS-assigned one when options.port was 0.
  /// Valid after Start().
  uint16_t port() const { return port_; }
  const HttpServerOptions& options() const { return options_; }

  /// Consistent-enough snapshot of the counters (individual fields are
  /// exact; cross-field skew of a few requests is possible under load).
  HttpServerStats stats() const EXCLUDES(admit_mu_);

 private:
  struct Endpoint;  // counters + latency ring, defined in the .cpp

  void AcceptLoop() EXCLUDES(conn_mu_);
  void WorkerLoop() EXCLUDES(conn_mu_);
  /// Serves one connection until close/error; returns when it is done.
  void ServeConnection(int fd) EXCLUDES(admit_mu_);
  /// Takes an admission slot, waiting at most max_queue_wait_us.
  bool Admit() EXCLUDES(admit_mu_);
  void Release() EXCLUDES(admit_mu_);

  HttpBackend backend_;
  HttpServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{true};
  /// Serialises Stop() callers (join is not reentrant). The one server
  /// lock held across others: Stop drains the connection queue and wakes
  /// admission waiters under it, hence the rank before both.
  common::Mutex stop_mu_ ACQUIRED_BEFORE(conn_mu_, admit_mu_){
      common::LockRank::kHttpStop, "http.stop"};

  // Accepted connections waiting for a worker.
  common::Mutex conn_mu_{common::LockRank::kHttpConn, "http.conn"};
  common::CondVar conn_cv_;
  std::deque<int> conn_queue_ GUARDED_BY(conn_mu_);
  // fds being served, for Stop() shutdown
  std::set<int> active_fds_ GUARDED_BY(conn_mu_);

  // Admission state.
  mutable common::Mutex admit_mu_{common::LockRank::kHttpAdmit, "http.admit"};
  common::CondVar admit_cv_;
  size_t inflight_ GUARDED_BY(admit_mu_) = 0;
  size_t admission_waiting_ GUARDED_BY(admit_mu_) = 0;

  // Counters.
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> requests_total_{0};
  std::atomic<uint64_t> shed_total_{0};
  std::atomic<uint64_t> deadline_exceeded_total_{0};
  std::atomic<uint64_t> degraded_total_{0};
  std::unique_ptr<Endpoint> rank_stats_;
  std::unique_ptr<Endpoint> score_stats_;
  std::unique_ptr<Endpoint> route_stats_;
  std::unique_ptr<Endpoint> traffic_stats_;

  std::thread acceptor_;
  std::vector<std::thread> workers_;
};

/// Retry policy for HttpClient::RequestWithRetry. Backoff for attempt i
/// (0-based) is min(base << i, max) milliseconds plus deterministic
/// jitter in [0, backoff/2) drawn from jitter_seed — seeded, so tests
/// replay the exact same sleep schedule. (Namespace scope, not nested:
/// a nested struct's field defaults cannot appear in the enclosing
/// class's own default arguments.)
struct HttpRetryOptions {
  /// Retries AFTER the first attempt (so max_retries + 1 tries total).
  int max_retries = 3;
  int base_backoff_ms = 50;
  int max_backoff_ms = 2000;
  uint64_t jitter_seed = 0;
};

/// Minimal blocking HTTP/1.1 client for tests and the bench load driver:
/// one keep-alive connection, sequential requests. Not a general client —
/// just enough to drive HttpServer over the loopback. Its framing code is
/// deliberately independent of the server's ReadRequest (not shared): the
/// round-trip tests use this client as the server's counterparty, and a
/// shared parser would let a framing bug cancel itself out.
class HttpClient {
 public:
  /// One response, status line + headers parsed.
  struct Response {
    int status = 0;
    std::string body;
    /// Retry-After header value when present (shed responses), else -1.
    int retry_after_s = -1;
  };

  HttpClient() = default;
  ~HttpClient();
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Connects to 127.0.0.1:port. Throws std::runtime_error on failure.
  void Connect(uint16_t port);
  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Sends one request and reads the full response (Content-Length
  /// framed). The connection stays open for the next call; on a
  /// socket-level failure the connection closes and a runtime_error is
  /// thrown.
  Response Request(const std::string& method, const std::string& path,
                   const std::string& body = "");

  using RetryOptions = HttpRetryOptions;

  /// Request() plus bounded, opt-in resilience: a 429 response waits
  /// max(Retry-After, backoff) and retries; a transport failure (send
  /// error, connection lost) reconnects and retries. Anything else — any
  /// other status, including 5xx — returns immediately: only explicit
  /// back-pressure and broken transport are known-safe to replay, a 500
  /// may have side effects. Exhausted retries return the last 429 or
  /// rethrow the last transport error.
  Response RequestWithRetry(const std::string& method,
                            const std::string& path,
                            const std::string& body = "",
                            const RetryOptions& retry = {});

 private:
  /// Sleeps max(capped exponential backoff + jitter, Retry-After).
  static void SleepBackoff(int attempt, const RetryOptions& retry,
                           int retry_after_s, uint64_t jitter_bits);

  int fd_ = -1;
  uint16_t port_ = 0;   ///< last Connect() target, for retry reconnects
  std::string buffer_;  ///< bytes read past the previous response
};

}  // namespace pathrank::serving
