#include "serving/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <system_error>

namespace pathrank::serving::json {
namespace {

/// Nesting cap: a body within HttpServerOptions::max_body_bytes can still
/// encode ~500k nested arrays ("[[[[..."), which would overflow the stack
/// of a recursive parser long before it exhausts memory.
constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> Run(std::string* error) {
    auto value = ParseValue(0);
    if (value) {
      SkipWhitespace();
      if (pos_ != text_.size()) {
        Fail("trailing characters after the JSON value");
        value.reset();
      }
    }
    if (!value && error) *error = error_;
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Fail(const std::string& what) {
    if (error_.empty()) {
      error_ = "offset " + std::to_string(pos_) + ": " + what;
    }
    return false;
  }

  bool Consume(char expected, const char* what) {
    SkipWhitespace();
    if (pos_ >= text_.size() || text_[pos_] != expected) {
      return Fail(std::string("expected ") + what);
    }
    ++pos_;
    return true;
  }

  std::optional<Value> ParseValue(int depth) {
    if (depth > kMaxDepth) {
      Fail("nesting deeper than " + std::to_string(kMaxDepth));
      return std::nullopt;
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return std::nullopt;
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        std::string s;
        if (!ParseString(&s)) return std::nullopt;
        return Value(std::move(s));
      }
      case 't':
        if (!ConsumeLiteral("true")) return std::nullopt;
        return Value(true);
      case 'f':
        if (!ConsumeLiteral("false")) return std::nullopt;
        return Value(false);
      case 'n':
        if (!ConsumeLiteral("null")) return std::nullopt;
        return Value();
      default:
        return ParseNumber();
    }
  }

  bool ConsumeLiteral(const char* literal) {
    const size_t len = std::strlen(literal);
    if (text_.substr(pos_, len) != literal) {
      return Fail(std::string("expected '") + literal + "'");
    }
    pos_ += len;
    return true;
  }

  std::optional<Value> ParseObject(int depth) {
    ++pos_;  // '{'
    Object object;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return Value(std::move(object));
    }
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        Fail("expected string key");
        return std::nullopt;
      }
      std::string key;
      if (!ParseString(&key)) return std::nullopt;
      if (!Consume(':', "':' after object key")) return std::nullopt;
      auto value = ParseValue(depth + 1);
      if (!value) return std::nullopt;
      // Duplicate keys: last one wins (the common lenient behaviour).
      object.insert_or_assign(std::move(key), std::move(*value));
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (!Consume('}', "',' or '}' in object")) return std::nullopt;
      return Value(std::move(object));
    }
  }

  std::optional<Value> ParseArray(int depth) {
    ++pos_;  // '['
    Array array;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Value(std::move(array));
    }
    for (;;) {
      auto value = ParseValue(depth + 1);
      if (!value) return std::nullopt;
      array.push_back(std::move(*value));
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (!Consume(']', "',' or ']' in array")) return std::nullopt;
      return Value(std::move(array));
    }
  }

  bool ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Fail("non-hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = code;
    return true;
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;  // '\'
      if (pos_ >= text_.size()) return Fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t code = 0;
          if (!ParseHex4(&code)) return false;
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Fail("high surrogate without a low surrogate");
            }
            pos_ += 2;
            uint32_t low = 0;
            if (!ParseHex4(&low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              return Fail("invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Fail("unpaired low surrogate");
          }
          AppendUtf8(code, out);
          break;
        }
        default:
          return Fail("unknown escape character");
      }
    }
    return Fail("unterminated string");
  }

  /// For a grammar-valid literal that from_chars reported out of range:
  /// true when its magnitude fell BELOW the doubles (underflow — folds
  /// to signed zero, strtod-style), false when it rose above (overflow —
  /// no double value exists). Discriminator: the decimal exponent of the
  /// most significant digit plus the explicit exponent; underflow needs
  /// it below 0, overflow needs it at 308+, so the sign decides.
  static bool Underflows(std::string_view literal) {
    size_t p = literal.empty() ? 0 : (literal[0] == '-' ? 1 : 0);
    const size_t int_begin = p;
    while (p < literal.size() &&
           std::isdigit(static_cast<unsigned char>(literal[p]))) {
      ++p;
    }
    const size_t int_len = p - int_begin;
    bool seen_significant = false;
    int64_t msd_exp = 0;  // decimal exponent of the most significant digit
    for (size_t k = int_begin; k < int_begin + int_len; ++k) {
      if (literal[k] != '0') {
        seen_significant = true;
        msd_exp = static_cast<int64_t>(int_len - 1 - (k - int_begin));
        break;
      }
    }
    if (p < literal.size() && literal[p] == '.') {
      ++p;
      const size_t frac_begin = p;
      while (p < literal.size() &&
             std::isdigit(static_cast<unsigned char>(literal[p]))) {
        ++p;
      }
      if (!seen_significant) {
        for (size_t k = frac_begin; k < p; ++k) {
          if (literal[k] != '0') {
            seen_significant = true;
            msd_exp = -static_cast<int64_t>(k - frac_begin) - 1;
            break;
          }
        }
      }
    }
    int64_t exponent = 0;
    if (p < literal.size() && (literal[p] == 'e' || literal[p] == 'E')) {
      ++p;
      bool negative = false;
      if (p < literal.size() && (literal[p] == '+' || literal[p] == '-')) {
        negative = literal[p] == '-';
        ++p;
      }
      while (p < literal.size() &&
             std::isdigit(static_cast<unsigned char>(literal[p]))) {
        if (exponent < 100000000) {  // clamp: direction is all that matters
          exponent = exponent * 10 + (literal[p] - '0');
        }
        ++p;
      }
      if (negative) exponent = -exponent;
    }
    if (!seen_significant) return true;  // literal zero never errors; safe
    return msd_exp + exponent < 0;
  }

  std::optional<Value> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    // Integer part: one zero, or a nonzero digit run (no leading zeros).
    if (pos_ < text_.size() && text_[pos_] == '0') {
      ++pos_;
    } else if (pos_ < text_.size() && text_[pos_] >= '1' &&
               text_[pos_] <= '9') {
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    } else {
      Fail("expected a value");
      return std::nullopt;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        Fail("expected digit after decimal point");
        return std::nullopt;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        Fail("expected digit in exponent");
        return std::nullopt;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    // The slice start..pos_ is a valid JSON number by construction.
    // std::from_chars, unlike strtod, is locale-independent — a host
    // application's setlocale(LC_NUMERIC, ...) must not change how the
    // wire format parses.
    double parsed = 0.0;
    const char* begin = text_.data() + start;
    const auto result = std::from_chars(begin, text_.data() + pos_, parsed);
    if (result.ec == std::errc::result_out_of_range) {
      // from_chars reports both directions as out_of_range. Underflow
      // ("1e-999") is valid JSON every mainstream parser folds to zero,
      // so fold it (sign preserved); overflow ("1e999") has no double
      // value, and silently folding it to 0.0 would hand the handler a
      // different number than the client sent — reject it.
      const std::string_view literal = text_.substr(start, pos_ - start);
      if (Underflows(literal)) {
        return Value(literal[0] == '-' ? -0.0 : 0.0);
      }
      pos_ = start;
      Fail("number out of double range");
      return std::nullopt;
    }
    return Value(parsed);
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

void DumpString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void DumpNumber(double d, std::string* out) {
  // JSON has no Infinity/NaN; null is the conventional stand-in.
  if (!std::isfinite(d)) {
    *out += "null";
    return;
  }
  // std::to_chars: the shortest representation that parses back bitwise
  // (sign of -0.0 included), locale-independent — snprintf would emit a
  // comma decimal point (invalid JSON) under an LC_NUMERIC locale the
  // host application might set. Integral doubles print as plain
  // integers ("42"), which keeps ids and counters readable.
  char buf[32];  // longest shortest-form double is 24 chars
  const auto result = std::to_chars(buf, buf + sizeof(buf), d);
  out->append(buf, result.ptr);
}

void DumpValue(const Value& value, std::string* out) {
  switch (value.type()) {
    case Value::Type::kNull:
      *out += "null";
      break;
    case Value::Type::kBool:
      *out += value.bool_value() ? "true" : "false";
      break;
    case Value::Type::kNumber:
      DumpNumber(value.number_value(), out);
      break;
    case Value::Type::kString:
      DumpString(value.string_value(), out);
      break;
    case Value::Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const auto& element : value.array()) {
        if (!first) out->push_back(',');
        first = false;
        DumpValue(element, out);
      }
      out->push_back(']');
      break;
    }
    case Value::Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, element] : value.object()) {
        if (!first) out->push_back(',');
        first = false;
        DumpString(key, out);
        out->push_back(':');
        DumpValue(element, out);
      }
      out->push_back('}');
      break;
    }
  }
}

}  // namespace

std::optional<Value> Parse(std::string_view text, std::string* error) {
  return Parser(text).Run(error);
}

std::string Dump(const Value& value) {
  std::string out;
  DumpValue(value, &out);
  return out;
}

}  // namespace pathrank::serving::json
