// Hot-swappable holder of the served road network — the graph-side
// analogue of ServingEngine's snapshot slot, generalising the model
// hot-swap pattern to the graph itself. The store owns a
// shared_ptr<const graph::GraphSnapshot>; readers (RoutePlanner::Plan,
// the /v1/traffic handler's validation) capture the pointer once per
// operation, so every response is attributable to exactly one epoch and
// the old graph is freed only after the last in-flight query releases
// its reference.
//
// Writers — ApplyTraffic (copy-on-write rebuild of the CSR off the
// query path) and SwapNetwork (the --watch-graph full reload) — are
// serialised by rebuild_mu_, so each batch rebuilds on top of the batch
// before it and epochs advance by exactly one per publish. Queries never
// wait on a rebuild: they only ever contend on mu_ for the duration of
// one refcounted pointer copy.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "graph/graph_snapshot.h"

namespace pathrank::serving {

/// Outcome taxonomy for one traffic batch. Everything except kOk is a
/// client-input condition and maps to 400 over HTTP with the stable slug
/// below — the same error-body convention as the /v1/route taxonomy
/// (RouteStatusSlug).
enum class TrafficStatus {
  kOk,
  kEmptyBatch,      ///< the batch carries no updates
  kUnknownEdge,     ///< an update names an edge the network does not have
  kDuplicateEdge,   ///< two updates in one batch name the same edge
  kBadUpdate,       ///< non-positive/non-finite cost, or a no-effect update
};

/// Stable lower_snake_case slug ("unknown_edge", ...) used in HTTP error
/// bodies and logs. kBadUpdate reuses "bad_request" so clients branch on
/// one malformed-input slug across /v1/route and /v1/traffic.
const char* TrafficStatusSlug(TrafficStatus status);

/// One answered traffic batch.
struct TrafficResult {
  TrafficStatus status = TrafficStatus::kOk;
  /// Human-readable detail when status != kOk.
  std::string message;
  /// The epoch serving AFTER this call: the new epoch on kOk, the
  /// unchanged current epoch on a rejected batch (rejections never
  /// publish).
  uint64_t epoch = 0;
  size_t cost_updates = 0;  ///< updates that changed an edge travel time
  size_t closures = 0;      ///< updates that set closed = true
  size_t reopenings = 0;    ///< updates that set closed = false
};

/// Thread-safe epoch-versioned graph slot. Construct with the boot-time
/// network (epoch 0); swap via ApplyTraffic or SwapNetwork.
class GraphStore {
 public:
  explicit GraphStore(graph::RoadNetwork network);
  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;

  /// The currently served snapshot (a swap may supersede it at any time;
  /// the returned handle stays valid regardless). Thread-safe.
  std::shared_ptr<const graph::GraphSnapshot> Current() const;

  /// Epoch of the currently served snapshot. Thread-safe.
  uint64_t epoch() const { return Current()->epoch(); }

  /// Validates and applies one batch of edge cost/closure updates:
  /// rebuilds a fresh snapshot at epoch + 1 (copy-on-write, outside the
  /// swap lock) and publishes it with one pointer swap. A rejected batch
  /// (status != kOk) publishes nothing — traffic ingestion is
  /// all-or-nothing per batch. Thread-safe; concurrent batches are
  /// serialised. Never throws on bad input (that is what
  /// TrafficResult::status is for).
  TrafficResult ApplyTraffic(
      const std::vector<graph::TrafficUpdate>& updates);

  /// Replaces the whole network (the --watch-graph reload path): a new
  /// snapshot at epoch + 1 with the closed set reset. Returns the
  /// superseded snapshot so the caller can observe its lifetime.
  /// Thread-safe; callable under full query load.
  std::shared_ptr<const graph::GraphSnapshot> SwapNetwork(
      graph::RoadNetwork network);

  /// Traffic batches applied (kOk only) since construction.
  uint64_t traffic_batches() const {
    return traffic_batches_.load(std::memory_order_relaxed);
  }
  /// Snapshot publishes (ApplyTraffic + SwapNetwork) since construction.
  uint64_t swap_count() const {
    return swap_count_.load(std::memory_order_relaxed);
  }

 private:
  /// Publishes `next` as the served snapshot and returns the old one.
  std::shared_ptr<const graph::GraphSnapshot> Publish(
      std::shared_ptr<const graph::GraphSnapshot> next);

  /// Serialises writers: held across read-current + validate + rebuild +
  /// publish so concurrent batches stack instead of clobbering each
  /// other. Always acquired BEFORE mu_ (Publish); readers take mu_ only.
  common::Mutex rebuild_mu_;
  /// Guarded by a mutex rather than std::atomic<shared_ptr> for the same
  /// reason as ServingEngine::snapshot_: the critical section is one
  /// refcounted copy, and libstdc++'s lock-bit _Sp_atomic protocol is
  /// opaque to TSan, which the CI thread-sanitizer gate runs against.
  mutable common::Mutex mu_;
  std::shared_ptr<const graph::GraphSnapshot> current_ GUARDED_BY(mu_);
  std::atomic<uint64_t> traffic_batches_{0};
  std::atomic<uint64_t> swap_count_{0};
};

}  // namespace pathrank::serving
