// Hot-swappable holder of the served road network — the graph-side
// analogue of ServingEngine's snapshot slot, generalising the model
// hot-swap pattern to the graph itself. The store owns a
// shared_ptr<const graph::GraphSnapshot>; readers (RoutePlanner::Plan,
// the /v1/traffic handler's validation) capture the pointer once per
// operation, so every response is attributable to exactly one epoch and
// the old graph is freed only after the last in-flight query releases
// its reference.
//
// Writers — ApplyTraffic (copy-on-write rebuild of the CSR off the
// query path) and SwapNetwork (the --watch-graph full reload) — are
// serialised by rebuild_mu_, so each batch rebuilds on top of the batch
// before it and epochs advance by exactly one per publish. Queries never
// wait on a rebuild: they only ever contend on mu_ for the duration of
// one refcounted pointer copy.
// The store can also own the routing-preprocessing lifecycle
// (EnablePreprocessing): a background worker rebuilds the ALT landmark
// tables whenever a publish advances the epoch, and publishes the new
// (snapshot, tables) pair only when it is complete. Queries capture the
// snapshot and the artifact pairwise (CaptureForQuery) and fall back to
// plain Dijkstra whenever the artifact's epoch trails the snapshot's —
// stale lower bounds are never consulted, so mid-rebuild queries stay
// exact at the cost of speed, never the reverse.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "graph/graph_snapshot.h"

namespace pathrank::routing {
class PreprocessedGraph;
}  // namespace pathrank::routing

namespace pathrank::serving {

/// Outcome taxonomy for one traffic batch. Everything except kOk is a
/// client-input condition and maps to 400 over HTTP with the stable slug
/// below — the same error-body convention as the /v1/route taxonomy
/// (RouteStatusSlug).
enum class TrafficStatus {
  kOk,
  kEmptyBatch,      ///< the batch carries no updates
  kUnknownEdge,     ///< an update names an edge the network does not have
  kDuplicateEdge,   ///< two updates in one batch name the same edge
  kBadUpdate,       ///< non-positive/non-finite cost, or a no-effect update
};

/// Stable lower_snake_case slug ("unknown_edge", ...) used in HTTP error
/// bodies and logs. kBadUpdate reuses "bad_request" so clients branch on
/// one malformed-input slug across /v1/route and /v1/traffic.
const char* TrafficStatusSlug(TrafficStatus status);

/// One answered traffic batch.
struct TrafficResult {
  TrafficStatus status = TrafficStatus::kOk;
  /// Human-readable detail when status != kOk.
  std::string message;
  /// The epoch serving AFTER this call: the new epoch on kOk, the
  /// unchanged current epoch on a rejected batch (rejections never
  /// publish).
  uint64_t epoch = 0;
  size_t cost_updates = 0;  ///< updates that changed an edge travel time
  size_t closures = 0;      ///< updates that set closed = true
  size_t reopenings = 0;    ///< updates that set closed = false
};

/// Routing-preprocessing configuration for EnablePreprocessing.
struct PreprocessOptions {
  /// ALT landmarks per artifact. More landmarks = tighter lower bounds =
  /// fewer settled vertices per query, at num_landmarks Dijkstra sweeps
  /// of rebuild cost and two doubles per (landmark, vertex) of memory.
  int num_landmarks = 8;
  /// Test seam: runs on the worker thread before each BACKGROUND rebuild
  /// starts building tables (never for the synchronous boot-time build).
  /// May block — the rebuild, and artifact publication, stall with it.
  std::function<void(uint64_t epoch)> rebuild_hook;
};

/// One immutable (snapshot, ALT tables) pair. The snapshot handle keeps
/// the network the tables were computed over alive, so holders can always
/// run an ALT query against a consistent graph/table pair.
struct GraphArtifact {
  uint64_t epoch = 0;
  std::shared_ptr<const graph::GraphSnapshot> snapshot;
  std::shared_ptr<const routing::PreprocessedGraph> tables;
};

/// Preprocessing counters for /statsz.
struct PreprocessingStats {
  bool enabled = false;
  int landmarks = 0;
  /// Background rebuilds completed (the synchronous boot build excluded).
  uint64_t rebuilds = 0;
  /// Percentiles over recent background-rebuild wall times (0 until the
  /// first rebuild completes).
  double rebuild_p50_s = 0.0;
  double rebuild_p99_s = 0.0;
  /// Served epoch minus artifact epoch: 0 when ALT is fully caught up,
  /// >0 while a rebuild is in flight (queries fall back to Dijkstra).
  uint64_t epochs_behind = 0;
};

/// A pairwise-consistent read of the store: the served snapshot and the
/// artifact slot captured under one lock hold. `artifact` is null when
/// preprocessing is disabled and may trail `snapshot` by one or more
/// epochs mid-rebuild — callers must use the tables only when
/// `artifact->epoch == snapshot->epoch()`.
struct GraphQueryView {
  std::shared_ptr<const graph::GraphSnapshot> snapshot;
  std::shared_ptr<const GraphArtifact> artifact;
};

/// Thread-safe epoch-versioned graph slot. Construct with the boot-time
/// network (epoch 0); swap via ApplyTraffic or SwapNetwork.
class GraphStore {
 public:
  explicit GraphStore(graph::RoadNetwork network);
  ~GraphStore();
  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;

  /// The currently served snapshot (a swap may supersede it at any time;
  /// the returned handle stays valid regardless). Thread-safe.
  std::shared_ptr<const graph::GraphSnapshot> Current() const EXCLUDES(mu_);

  /// Epoch of the currently served snapshot. Thread-safe.
  uint64_t epoch() const { return Current()->epoch(); }

  /// Validates and applies one batch of edge cost/closure updates:
  /// rebuilds a fresh snapshot at epoch + 1 (copy-on-write, outside the
  /// swap lock) and publishes it with one pointer swap. A rejected batch
  /// (status != kOk) publishes nothing — traffic ingestion is
  /// all-or-nothing per batch. Thread-safe; concurrent batches are
  /// serialised. Never throws on bad input (that is what
  /// TrafficResult::status is for).
  TrafficResult ApplyTraffic(const std::vector<graph::TrafficUpdate>& updates)
      EXCLUDES(rebuild_mu_, mu_);

  /// Replaces the whole network (the --watch-graph reload path): a new
  /// snapshot at epoch + 1 with the closed set reset. Returns the
  /// superseded snapshot so the caller can observe its lifetime.
  /// Thread-safe; callable under full query load.
  std::shared_ptr<const graph::GraphSnapshot> SwapNetwork(
      graph::RoadNetwork network) EXCLUDES(rebuild_mu_, mu_);

  /// Starts the ALT preprocessing lifecycle: builds the artifact for the
  /// current snapshot synchronously (so the first query after boot already
  /// has tables) and spawns the background worker that rebuilds it after
  /// every publish. Call at most once, before serving traffic. Tables
  /// are built under the free-flow travel-time metric — the one metric
  /// candidate generation enumerates with.
  void EnablePreprocessing(const PreprocessOptions& options = {})
      EXCLUDES(mu_);

  /// The newest completed artifact, or null when preprocessing is off.
  /// Mid-rebuild this is the PREVIOUS epoch's artifact — still internally
  /// consistent (it owns its snapshot) but not valid for queries against
  /// the current graph. Thread-safe.
  std::shared_ptr<const GraphArtifact> CurrentArtifact() const EXCLUDES(mu_);

  /// Captures the served snapshot and the artifact slot under one lock
  /// hold, so the pair is consistent-in-time. Thread-safe; this is what
  /// RoutePlanner calls once per query. Guarantee: if the returned
  /// artifact's epoch equals the returned snapshot's epoch, the tables
  /// were built from exactly that snapshot's network.
  GraphQueryView CaptureForQuery() const EXCLUDES(mu_);

  /// Preprocessing counters for /statsz (all zero / disabled when
  /// EnablePreprocessing was never called). Thread-safe.
  PreprocessingStats preprocessing_stats() const EXCLUDES(mu_);

  /// Traffic batches applied (kOk only) since construction.
  uint64_t traffic_batches() const {
    return traffic_batches_.load(std::memory_order_relaxed);
  }
  /// Snapshot publishes (ApplyTraffic + SwapNetwork) since construction.
  uint64_t swap_count() const {
    return swap_count_.load(std::memory_order_relaxed);
  }

 private:
  /// Publishes `next` as the served snapshot and returns the old one.
  /// Every publish happens inside a writer's rebuild_mu_ critical
  /// section — REQUIRES makes a lock-free publish path a compile error.
  std::shared_ptr<const graph::GraphSnapshot> Publish(
      std::shared_ptr<const graph::GraphSnapshot> next)
      REQUIRES(rebuild_mu_) EXCLUDES(mu_);

  /// Builds the (snapshot, tables) artifact for `snap`. Runs unlocked —
  /// this is the expensive part (num_landmarks full Dijkstra sweeps).
  std::shared_ptr<const GraphArtifact> BuildArtifact(
      std::shared_ptr<const graph::GraphSnapshot> snap) const EXCLUDES(mu_);

  /// Background worker: waits for the artifact to fall behind the served
  /// epoch, rebuilds, publishes if still newest, repeats until shutdown.
  void PreprocessLoop() EXCLUDES(mu_);

  /// Installs `artifact` unless the slot already holds a newer epoch.
  void PublishArtifactIfNewest(std::shared_ptr<const GraphArtifact> artifact)
      EXCLUDES(mu_);

  /// Serialises writers: held across read-current + validate + rebuild +
  /// publish so concurrent batches stack instead of clobbering each
  /// other. Always acquired BEFORE mu_ (Publish); readers take mu_ only.
  common::Mutex rebuild_mu_ ACQUIRED_BEFORE(mu_){
      common::LockRank::kGraphRebuild, "graph.rebuild"};
  /// Guarded by a mutex rather than std::atomic<shared_ptr> for the same
  /// reason as ServingEngine::snapshot_: the critical section is one
  /// refcounted copy, and libstdc++'s lock-bit _Sp_atomic protocol is
  /// opaque to TSan, which the CI thread-sanitizer gate runs against.
  mutable common::Mutex mu_{common::LockRank::kGraphStore, "graph.store"};
  std::shared_ptr<const graph::GraphSnapshot> current_ GUARDED_BY(mu_);
  std::atomic<uint64_t> traffic_batches_{0};
  std::atomic<uint64_t> swap_count_{0};

  // --- preprocessing lifecycle (all inert until EnablePreprocessing) ---
  /// Newest completed artifact; trails current_ while a rebuild runs.
  std::shared_ptr<const GraphArtifact> artifact_ GUARDED_BY(mu_);
  bool pre_enabled_ GUARDED_BY(mu_) = false;
  bool pre_stop_ GUARDED_BY(mu_) = false;
  PreprocessOptions pre_options_ GUARDED_BY(mu_);
  /// Completed background rebuilds; their wall times feed the p50/p99.
  uint64_t pre_rebuilds_ GUARDED_BY(mu_) = 0;
  /// Bounded ring of recent rebuild wall times (seconds).
  std::vector<double> pre_durations_ GUARDED_BY(mu_);
  size_t pre_durations_next_ GUARDED_BY(mu_) = 0;
  /// Wakes the worker after every Publish and at shutdown.
  mutable common::CondVar pre_cv_;
  std::thread pre_worker_;
};

}  // namespace pathrank::serving
