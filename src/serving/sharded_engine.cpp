#include "serving/sharded_engine.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace pathrank::serving {
namespace {

/// splitmix64 finaliser over the packed (source, destination) pair — a
/// cheap stateless mix whose low bits are well distributed, so `% shards`
/// spreads OD pairs evenly even on grid networks where raw vertex ids are
/// highly structured.
uint64_t HashQuery(graph::VertexId source, graph::VertexId destination) {
  uint64_t x = (static_cast<uint64_t>(source) << 32) |
               static_cast<uint64_t>(destination);
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ShardedEngine::ShardedEngine(const graph::RoadNetwork& network,
                             std::shared_ptr<const ModelSnapshot> snapshot,
                             const ShardedOptions& options)
    : ShardedEngine(
          // num_shards == 0 yields an empty vector, which the delegated
          // constructor rejects — a misconfiguration is surfaced, not
          // silently clamped to one shard.
          network,
          std::vector<std::shared_ptr<const ModelSnapshot>>(
              options.num_shards, std::move(snapshot)),
          options) {}

ShardedEngine::ShardedEngine(
    const graph::RoadNetwork& network,
    std::vector<std::shared_ptr<const ModelSnapshot>> snapshots,
    const ShardedOptions& options)
    : options_(options) {
  PR_CHECK(!snapshots.empty())
      << "ShardedEngine needs >= 1 shard (num_shards/snapshots was 0)";
  options_.num_shards = snapshots.size();
  shards_.reserve(snapshots.size());
  for (auto& snapshot : snapshots) {
    shards_.push_back(std::make_unique<ServingEngine>(
        network, std::move(snapshot), options_.engine_options));
  }
}

size_t ShardedEngine::ShardFor(graph::VertexId source,
                               graph::VertexId destination) const {
  if (options_.policy == ShardPolicy::kHash) {
    return HashQuery(source, destination) % shards_.size();
  }
  return rotation_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
}

std::vector<ScoredPath> ShardedEngine::Rank(
    graph::VertexId source, graph::VertexId destination) const {
  return shards_[ShardFor(source, destination)]->Rank(source, destination);
}

std::vector<ScoredPath> ShardedEngine::Rank(
    graph::VertexId source, graph::VertexId destination,
    const data::CandidateGenConfig& gen) const {
  return shards_[ShardFor(source, destination)]->Rank(source, destination,
                                                      gen);
}

std::vector<std::vector<ScoredPath>> ShardedEngine::RankBatch(
    const std::vector<RankQuery>& queries) const {
  return RankBatch(queries, options_.engine_options.candidates);
}

std::vector<std::vector<ScoredPath>> ShardedEngine::RankBatch(
    const std::vector<RankQuery>& queries,
    const data::CandidateGenConfig& gen) const {
  std::vector<std::vector<ScoredPath>> results(queries.size());
  if (queries.empty()) return results;
  // Same per-query decomposition as ServingEngine::RankBatch; the shard an
  // individual query scores on is chosen by the policy, not the worker.
  ParallelForShards(0, queries.size(),
                    [&](size_t /*shard*/, size_t lo, size_t hi) {
                      for (size_t q = lo; q < hi; ++q) {
                        const auto& query = queries[q];
                        results[q] =
                            shards_[ShardFor(query.source, query.destination)]
                                ->Rank(query.source, query.destination, gen);
                      }
                    });
  return results;
}

std::vector<ScoredPath> ShardedEngine::ScoreBatch(
    const std::vector<routing::Path>& paths) const {
  const size_t shard =
      rotation_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  return shards_[shard]->ScoreBatch(paths);
}

void ShardedEngine::SwapSnapshot(std::shared_ptr<const ModelSnapshot> next) {
  for (auto& shard : shards_) shard->SwapSnapshot(next);
}

std::shared_ptr<const ModelSnapshot> ShardedEngine::SwapSnapshot(
    size_t shard, std::shared_ptr<const ModelSnapshot> next) {
  PR_CHECK(shard < shards_.size()) << "shard index out of range";
  return shards_[shard]->SwapSnapshot(std::move(next));
}

}  // namespace pathrank::serving
