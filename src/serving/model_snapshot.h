// Immutable, shareable view of a trained PathRank model's parameters — the
// deployment artefact of the serving stack. A snapshot is captured once
// from a (possibly still-training) model and never mutated afterwards, so
// any number of threads may score through `model()`'s const inference path
// concurrently. Snapshots are passed by shared_ptr<const ModelSnapshot>;
// an engine keeps its snapshot alive for as long as it serves, which is
// what makes ServingEngine::SwapSnapshot safe: the exchange replaces the
// shared_ptr, in-flight queries finish on the old snapshot, and the old
// snapshot is destroyed when its last reference drops.
#pragma once

#include <memory>

#include "core/model.h"

namespace pathrank::serving {

/// Frozen copy of a model's architecture + parameter values.
class ModelSnapshot {
 public:
  /// Deep-copies `model`'s parameters (skip-init build + value copy — no
  /// RNG draws). The source model may keep training afterwards; the
  /// snapshot does not follow it.
  explicit ModelSnapshot(const core::PathRankModel& model);

  /// Convenience: capture into the shared handle the engines consume.
  static std::shared_ptr<const ModelSnapshot> Capture(
      const core::PathRankModel& model);

  const core::PathRankConfig& config() const { return model_->config(); }
  size_t vocab_size() const { return model_->vocab_size(); }
  size_t NumParameters() const { return model_->NumParameters(); }

  /// The frozen model. Only the const inference surface
  /// (ForwardInference / ForwardInferenceFull) may be used on it.
  const core::PathRankModel& model() const { return *model_; }

  /// Builds a fresh mutable model initialised to this snapshot's values
  /// (e.g. to resume fine-tuning from a deployed checkpoint).
  std::unique_ptr<core::PathRankModel> Materialize() const;

 private:
  // Never mutated after construction; exposed only as const.
  std::unique_ptr<core::PathRankModel> model_;
};

}  // namespace pathrank::serving
