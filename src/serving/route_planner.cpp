#include "serving/route_planner.h"

#include "common/logging.h"
#include "routing/cost_model.h"
#include "routing/preprocessed_graph.h"
#include "routing/shortest_path_engine.h"

namespace pathrank::serving {

const char* SpurEngineName(SpurEngine engine) {
  switch (engine) {
    case SpurEngine::kDijkstra: return "dijkstra";
    case SpurEngine::kBidirectional: return "bidirectional";
    case SpurEngine::kAlt: return "alt";
  }
  return "?";
}

bool ParseSpurEngine(const std::string& text, SpurEngine* out) {
  if (text == "dijkstra") {
    *out = SpurEngine::kDijkstra;
  } else if (text == "bidi" || text == "bidirectional") {
    *out = SpurEngine::kBidirectional;
  } else if (text == "alt") {
    *out = SpurEngine::kAlt;
  } else {
    return false;
  }
  return true;
}

const char* RouteStatusSlug(RouteStatus status) {
  switch (status) {
    case RouteStatus::kOk: return "ok";
    case RouteStatus::kUnknownVertex: return "unknown_vertex";
    case RouteStatus::kSameVertex: return "same_vertex";
    case RouteStatus::kUnreachable: return "unreachable";
    case RouteStatus::kBadRequest: return "bad_request";
    case RouteStatus::kDeadlineExceeded: return "deadline_exceeded";
  }
  return "?";
}

size_t RoutePlanner::CacheKeyHash::operator()(const CacheKey& key) const {
  // splitmix64 finalizer over the packed fields: cheap, and good enough
  // that grid-network id patterns do not cluster buckets.
  uint64_t h = (static_cast<uint64_t>(key.source) << 32) | key.destination;
  h ^= ((static_cast<uint64_t>(static_cast<uint32_t>(key.k)) << 32) |
        static_cast<uint32_t>(key.strategy)) *
       0x9e3779b97f4a7c15ULL;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return static_cast<size_t>(h);
}

RoutePlanner::RoutePlanner(const RoutePlannerConfig& config, ScoreFn score)
    : score_(std::move(score)), config_(config) {
  PR_CHECK(score_ != nullptr) << "RoutePlanner needs a scoring backend";
  PR_CHECK((config_.network != nullptr) != (config_.store != nullptr))
      << "RoutePlannerConfig needs exactly one of network / store";
  if (config_.spur_engine == SpurEngine::kAlt && config_.network != nullptr) {
    // Pinned graphs never change, so one synchronous build at construction
    // serves every query this planner will ever answer. Store-backed ALT
    // planners instead read the store's per-epoch artifact per query.
    PR_CHECK(config_.num_landmarks >= 1);
    pinned_tables_ = std::make_shared<const routing::PreprocessedGraph>(
        *config_.network, routing::EdgeCostFn::TravelTime(*config_.network),
        config_.num_landmarks);
  }
}

RoutePlanner::CacheValue RoutePlanner::CacheLookup(const CacheKey& key,
                                                   uint64_t epoch) const {
  common::MutexLock lock(cache_mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  if (it->second->second.epoch != epoch) {
    // Enumerated against a superseded graph: lazy invalidation. Erasing
    // here (rather than at swap time) keeps /v1/traffic O(1) in the
    // cache size and means stale entries cost at most one miss each.
    lru_.erase(it->second);
    index_.erase(it);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  // Touch: move the node to the front without invalidating iterators.
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second.paths;
}

void RoutePlanner::CacheInsert(const CacheKey& key, uint64_t epoch,
                               CacheValue value) const {
  if (config_.cache_capacity == 0) return;
  common::MutexLock lock(cache_mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // A concurrent miss for the same key beat us here; both computed the
    // same deterministic set (or ours is from a newer epoch, in which
    // case overwriting is the invalidation), so last insert wins.
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->second = CacheEntry{epoch, std::move(value)};
    return;
  }
  lru_.emplace_front(key, CacheEntry{epoch, std::move(value)});
  index_[key] = lru_.begin();
  while (lru_.size() > config_.cache_capacity) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

size_t RoutePlanner::cache_size() const {
  common::MutexLock lock(cache_mu_);
  return lru_.size();
}

RoutePlannerStats RoutePlanner::stats() const {
  RoutePlannerStats s;
  s.cache_hits = cache_hits();
  s.cache_misses = cache_misses();
  s.invalidations = invalidations();
  s.single_flight_waits = single_flight_waits();
  s.enumerations = enumerations();
  s.alt_fallbacks = alt_fallbacks();
  return s;
}

RoutePlanner::CacheValue RoutePlanner::Enumerate(
    const graph::RoadNetwork& network, const RouteRequest& request,
    const data::CandidateGenConfig& gen, const CancelToken* cancel,
    const std::shared_ptr<const routing::PreprocessedGraph>& tables) const {
  enumerations_.fetch_add(1, std::memory_order_relaxed);
  if (config_.enumeration_hook) config_.enumeration_hook();

  // One engine per enumeration: engines are single-threaded scratch.
  // nullptr = Yen's own Dijkstra, bitwise the pre-seam behaviour.
  std::unique_ptr<routing::ShortestPathEngine> engine;
  const char* algo = SpurEngineName(SpurEngine::kDijkstra);
  switch (config_.spur_engine) {
    case SpurEngine::kDijkstra:
      break;
    case SpurEngine::kBidirectional:
      engine = std::make_unique<routing::BidirectionalDijkstraEngine>(network);
      algo = SpurEngineName(SpurEngine::kBidirectional);
      break;
    case SpurEngine::kAlt:
      if (tables != nullptr) {
        // Candidate generation enumerates under free-flow travel time —
        // the metric the tables were preprocessed with (checked again by
        // AltEngine per call).
        engine = std::make_unique<routing::AltEngine>(
            network, routing::EdgeCostFn::TravelTime(network), tables);
        algo = SpurEngineName(SpurEngine::kAlt);
      } else {
        // No current-epoch artifact (rebuild in flight, or preprocessing
        // never enabled): exact Dijkstra fallback, never stale bounds.
        alt_fallbacks_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
  }

  auto set = std::make_shared<CandidateSet>();
  set->algo = algo;
  set->paths = GenerateCandidates(network, request.source,
                                  request.destination, gen, cancel,
                                  engine.get());
  return set;
}

RoutePlanner::CacheValue RoutePlanner::EnumerateSingleFlight(
    const CacheKey& key, uint64_t epoch, const graph::RoadNetwork& network,
    const RouteRequest& request, const data::CandidateGenConfig& gen,
    const std::shared_ptr<const routing::PreprocessedGraph>& tables) const {
  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    common::MutexLock lock(flight_mu_);
    const auto it = flights_.find(key);
    if (it != flights_.end() && it->second->epoch == epoch) {
      flight = it->second;
    } else {
      // No joinable flight (none, or one pinned to a superseded epoch —
      // its leader still finishes and wakes its own followers; replacing
      // the table entry only stops NEW arrivals from joining it).
      flight = std::make_shared<Flight>(epoch);
      flights_[key] = flight;
      leader = true;
    }
  }

  if (!leader) {
    // Count BEFORE blocking so a test (or operator) watching the counter
    // can tell when every follower has committed to waiting.
    single_flight_waits_.fetch_add(1, std::memory_order_relaxed);
    common::MutexLock lock(flight->mu);
    while (!flight->done) flight->cv.Wait(flight->mu);
    if (flight->error) std::rethrow_exception(flight->error);
    return flight->result;
  }

  CacheValue value;
  std::exception_ptr error;
  try {
    value = Enumerate(network, request, gen, nullptr, tables);
    // Insert before publishing: by the time any follower wakes, the set
    // is already served from cache for everyone after them.
    CacheInsert(key, epoch, value);
  } catch (...) {
    error = std::current_exception();
  }
  {
    common::MutexLock lock(flight->mu);
    flight->result = value;
    flight->error = error;
    flight->done = true;
    flight->cv.NotifyAll();
  }
  {
    // Pointer-compare so a failed (or slow) leader never erases the
    // replacement flight a newer-epoch arrival installed.
    common::MutexLock lock(flight_mu_);
    const auto it = flights_.find(key);
    if (it != flights_.end() && it->second == flight) flights_.erase(it);
  }
  if (error) std::rethrow_exception(error);
  return value;
}

RouteResult RoutePlanner::Plan(const RouteRequest& request) const {
  // Capture the graph exactly once: everything below — validation,
  // enumeration, attribution — sees this one snapshot even if a swap
  // lands mid-query. The shared_ptr keeps the old graph alive until the
  // last in-flight query returns. For an ALT planner the preprocessing
  // artifact is captured in the SAME lock hold as the snapshot, and its
  // tables are used only when the epochs match — a query can never pair a
  // new graph with old landmark bounds (or vice versa).
  std::shared_ptr<const graph::GraphSnapshot> snapshot;
  std::shared_ptr<const routing::PreprocessedGraph> tables;
  const graph::RoadNetwork* network = config_.network;
  uint64_t epoch = 0;
  if (config_.store != nullptr) {
    GraphQueryView view = config_.store->CaptureForQuery();
    snapshot = std::move(view.snapshot);
    network = &snapshot->network();
    epoch = snapshot->epoch();
    if (config_.spur_engine == SpurEngine::kAlt &&
        view.artifact != nullptr && view.artifact->epoch == epoch) {
      tables = view.artifact->tables;
    }
  } else if (config_.spur_engine == SpurEngine::kAlt) {
    tables = pinned_tables_;
  }

  RouteResult result;
  result.graph_epoch = epoch;
  const size_t num_vertices = network->num_vertices();
  if (request.source >= num_vertices ||
      request.destination >= num_vertices) {
    const graph::VertexId offender =
        request.source >= num_vertices ? request.source
                                       : request.destination;
    result.status = RouteStatus::kUnknownVertex;
    result.message = "unknown vertex " + std::to_string(offender) +
                     " (network has " + std::to_string(num_vertices) +
                     " vertices)";
    return result;
  }
  if (request.source == request.destination) {
    result.status = RouteStatus::kSameVertex;
    result.message = "source and destination are both vertex " +
                     std::to_string(request.source) + "; nothing to rank";
    return result;
  }
  const int k = request.k > 0 ? request.k : config_.candidates.k;
  if (k <= 0) {
    result.status = RouteStatus::kBadRequest;
    result.message = "k must be positive (got " + std::to_string(k) + ")";
    return result;
  }
  // The cap applies to the CLIENT's k only: the operator's configured
  // default (candidates.k) is trusted however large, so starting the
  // server with --k 100 must not make every default-k query a 400.
  if (config_.max_k > 0 && request.k > config_.max_k) {
    result.status = RouteStatus::kBadRequest;
    result.message = "k = " + std::to_string(request.k) +
                     " exceeds this server's limit of " +
                     std::to_string(config_.max_k);
    return result;
  }

  data::CandidateGenConfig gen = config_.candidates;
  gen.k = k;
  const CacheKey key{request.source, request.destination,
                     static_cast<int>(gen.strategy), k};
  CacheValue candidates = CacheLookup(key, epoch);
  if (candidates != nullptr) {
    result.cache_hit = true;
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
    const bool cancellable =
        request.deadline.bounded() || request.cancel != nullptr;
    if (!cancellable) {
      // Deadline-free queries coalesce: after an invalidation, N
      // identical concurrent queries cost ONE Yen run, and every caller
      // gets the same (complete) set.
      candidates =
          EnumerateSingleFlight(key, epoch, *network, request, gen, tables);
    } else {
      // One token per query, chaining the request deadline to any
      // external cancel source. Expiry is sticky (the token latches), so
      // checking it after enumeration reliably distinguishes "ran out of
      // budget" from "ran out of paths". Cancellable queries never join
      // a flight and never lead one: each has its own budget, and a
      // partial set must never be shared or cached.
      const CancelToken token(request.deadline, request.cancel);
      candidates = Enumerate(*network, request, gen, &token, tables);
      if (token.Expired()) {
        if (candidates->paths.empty()) {
          // Out of budget before the first candidate: nothing useful to
          // return. NOT cached — a verdict cut short by a deadline says
          // nothing about the graph, and caching it would poison later
          // unhurried queries with a false "unreachable".
          deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
          result.status = RouteStatus::kDeadlineExceeded;
          result.message =
              "deadline expired before any candidate was found (route " +
              std::to_string(request.source) + " -> " +
              std::to_string(request.destination) + ")";
          return result;
        }
        // Graceful degradation: score and return what enumeration
        // managed. Same cache-poisoning rule — a partial set must never
        // be served to a later query as if it were the full top-k.
        degraded_.fetch_add(1, std::memory_order_relaxed);
        result.degraded = true;
        result.algo = candidates->algo;
        result.ranked = score_(candidates->paths);
        return result;
      }
      CacheInsert(key, epoch, candidates);
    }
  }

  // Attribute the engine that actually enumerated this set — for a hit,
  // the one that seeded the cache entry (so hit and miss bodies match).
  result.algo = candidates->algo;
  if (candidates->paths.empty()) {
    result.status = RouteStatus::kUnreachable;
    result.message = "no route from " + std::to_string(request.source) +
                     " to " + std::to_string(request.destination) +
                     " (strategy " +
                     data::CandidateStrategyName(gen.strategy) + ")";
    return result;
  }
  // The backend takes ownership of its input, and the cached set must
  // survive for the next hit: hand it a copy. Scoring runs on the
  // CURRENT snapshot every time — the cache holds paths, never scores.
  result.ranked = score_(candidates->paths);
  return result;
}

}  // namespace pathrank::serving
