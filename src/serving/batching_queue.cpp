#include "serving/batching_queue.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace pathrank::serving {

BatchingQueue::BatchingQueue(const ServingEngine& engine,
                             const BatchingOptions& options)
    : engine_(&engine), options_(options) {
  PR_CHECK(options_.max_batch > 0) << "max_batch must be >= 1";
  PR_CHECK(options_.max_wait_us >= 0) << "max_wait_us must be >= 0";
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

BatchingQueue::~BatchingQueue() {
  {
    common::MutexLock lock(mu_);
    stop_ = true;
  }
  wake_.NotifyAll();
  dispatcher_.join();
  // The dispatcher drains the queue before exiting, so no promise is ever
  // abandoned (a dangling future would throw broken_promise at the
  // caller).
}

std::future<std::vector<ScoredPath>> BatchingQueue::SubmitScore(
    std::vector<routing::Path> paths) {
  // Validate on the submitter: an empty path would only blow up later in
  // SequenceBatch::FromSequences — on the dispatcher thread, where an
  // escaped exception terminates the process and takes every coalesced
  // request with it. Throwing here matches ScoreBatch semantics (the
  // offending caller gets the error, nobody else).
  for (const routing::Path& p : paths) {
    PR_CHECK(!p.vertices.empty()) << "empty path in SubmitScore";
  }
  Request request;
  request.paths = std::move(paths);
  request.enqueued = std::chrono::steady_clock::now();
  auto future = request.promise.get_future();
  if (request.paths.empty()) {
    // Nothing to score; complete inline rather than waking the dispatcher.
    request.promise.set_value({});
    return future;
  }
  {
    common::MutexLock lock(mu_);
    PR_CHECK(!stop_) << "SubmitScore on a stopped BatchingQueue";
    pending_rows_ += request.paths.size();
    pending_.push_back(std::move(request));
  }
  wake_.NotifyOne();
  return future;
}

std::future<std::vector<ScoredPath>> BatchingQueue::SubmitRank(
    graph::VertexId source, graph::VertexId destination) {
  return SubmitRank(source, destination, engine_->options().candidates);
}

std::future<std::vector<ScoredPath>> BatchingQueue::SubmitRank(
    graph::VertexId source, graph::VertexId destination,
    const data::CandidateGenConfig& gen) {
  // Candidate generation stays on the caller thread (as in Rank): it is
  // pure routing with no model access, so coalescing it would only
  // serialise independent work behind the dispatcher.
  return SubmitScore(
      GenerateCandidates(engine_->network(), source, destination, gen));
}

void BatchingQueue::DispatchLoop() {
  const auto max_wait = std::chrono::microseconds(options_.max_wait_us);
  std::vector<Request> taken;
  for (;;) {
    {
      common::MutexLock lock(mu_);
      while (!(stop_ || !pending_.empty())) wake_.Wait(mu_);
      if (pending_.empty()) return;  // stop_ set and fully drained
      // Linger until the batch fills, the oldest request's deadline
      // passes, or shutdown begins — then flush whatever is pending.
      const auto deadline = pending_.front().enqueued + max_wait;
      while (!(stop_ || pending_rows_ >= options_.max_batch)) {
        if (wake_.WaitUntil(mu_, deadline) == std::cv_status::timeout) break;
      }
      // Take greedily while under the row cap; always take at least one
      // request so an oversized request flushes alone rather than
      // starving.
      size_t rows = 0;
      while (!pending_.empty() &&
             (taken.empty() ||
              rows + pending_.front().paths.size() <= options_.max_batch)) {
        rows += pending_.front().paths.size();
        pending_rows_ -= pending_.front().paths.size();
        taken.push_back(std::move(pending_.front()));
        pending_.pop_front();
      }
    }
    Flush(taken);
    taken.clear();
  }
}

void BatchingQueue::Flush(std::vector<Request>& taken) {
  // The whole flush is fenced: an exception escaping the dispatcher
  // thread would std::terminate the process, so every failure is instead
  // delivered to the coalesced requests' futures.
  try {
    // One combined batch: request r's rows occupy [offset[r],
    // offset[r+1]), encoded with the same Path -> row mapping as
    // ScoreBatch (PathToSequence — part of the bitwise-equivalence
    // guarantee).
    std::vector<std::vector<int32_t>> seqs;
    std::vector<size_t> offsets = {0};
    for (const Request& request : taken) {
      for (const routing::Path& p : request.paths) {
        seqs.push_back(PathToSequence(p));
      }
      offsets.push_back(seqs.size());
    }
    const size_t rows = seqs.size();

    const auto batch = nn::SequenceBatch::FromSequences(seqs);
    const std::vector<float> scores = engine_->ScoreCoalesced(batch);

    // Counters before fulfilment: a caller that resumed from get() must
    // already see this flush in the stats.
    num_flushes_.fetch_add(1, std::memory_order_relaxed);
    num_requests_.fetch_add(taken.size(), std::memory_order_relaxed);
    num_rows_.fetch_add(rows, std::memory_order_relaxed);

    for (size_t r = 0; r < taken.size(); ++r) {
      Request& request = taken[r];
      // Same assembly + ordering rule as ScoreBatch (AssembleRanking is
      // the one source of truth).
      request.promise.set_value(
          AssembleRanking(std::move(request.paths), scores, offsets[r]));
    }
  } catch (...) {
    const auto error = std::current_exception();
    for (Request& request : taken) {
      // Requests whose promise was already fulfilled above cannot take an
      // exception again; only the still-pending ones receive it.
      try {
        request.promise.set_exception(error);
      } catch (const std::future_error&) {
      }
    }
    return;
  }
}

}  // namespace pathrank::serving
