// Online route-ranking pipeline: the first request path that spans every
// layer of the repo. For one (origin, destination) query a RoutePlanner
//
//   1. validates the query against the road network (explicit error
//      taxonomy: unknown vertex, source == destination, unreachable pair,
//      malformed k),
//   2. enumerates candidate paths with the configured strategy (Yen
//      TkDI / D-TkDI / penalty baselines — the same
//      data::CandidateGenConfig training used, so served candidates match
//      the training distribution),
//   3. scores the candidates through the injected engine backend (a bare
//      ServingEngine::ScoreBatch, a BatchingQueue submit-and-wait, or a
//      ShardedEngine — the same seam HttpBackend::score uses), and
//   4. returns them ordered by descending predicted score.
//
// Candidate enumeration dominates the cost (Yen is milliseconds; scoring
// a handful of short sequences is not), so the planner keeps an LRU cache
// of candidate SETS keyed by (source, destination, strategy, k). A cache
// hit skips Yen entirely but still scores through the engine — cached
// responses always reflect the CURRENT model snapshot, so hot-swap
// semantics are unchanged. Because enumeration and scoring are both
// deterministic, a cache hit is bitwise identical to the miss that seeded
// it (route_planner_test asserts the HTTP bodies are byte-identical).
//
// Live graph: a planner constructed over a GraphStore captures the
// current GraphSnapshot ONCE per query, so every response is computed
// against — and attributed to, via RouteResult::graph_epoch — exactly one
// graph version. Cache entries remember the epoch they were enumerated
// at; a lookup from a newer epoch treats the entry as a miss and erases
// it (lazy invalidation — /v1/traffic never walks the cache). Identical
// deadline-free queries that miss concurrently are collapsed by a
// per-key single-flight gate: one leader runs Yen, the followers wait on
// its condition variable and share the leader's (bitwise identical)
// candidate set, so an invalidation storm costs one enumeration per
// distinct key, not one per request.
//
// Spur engine: enumeration runs through the routing::ShortestPathEngine
// seam, selected by RoutePlannerConfig::spur_engine. An ALT planner over
// a GraphStore captures the snapshot AND the preprocessing artifact
// pairwise (one lock hold) per query, and uses the landmark tables only
// when the artifact's epoch matches the snapshot's — mid-rebuild queries
// fall back to plain Dijkstra (exact, just slower; counted in
// alt_fallbacks). Every engine returns exact shortest paths, so the
// response body is independent of the engine modulo the "algo" field.
//
// Thread-safety: Plan may be called concurrently from any number of
// threads (the HTTP worker pool does). The cache is guarded by one
// mutex; enumeration and scoring run outside it. Deadline-bounded or
// cancellable queries bypass the single-flight gate (each has its own
// budget, and a partial set must never be shared), so for those the old
// rule stands: concurrent misses for the same key may both enumerate,
// last insert wins.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "data/candidate_generation.h"
#include "graph/road_network.h"
#include "routing/path.h"
#include "serving/graph_store.h"
#include "serving/serving_engine.h"

namespace pathrank::routing {
class PreprocessedGraph;
}  // namespace pathrank::routing

namespace pathrank::serving {

/// Which engine runs the Yen spur searches of candidate enumeration.
/// Every choice returns exact shortest paths, so the RANKED OUTPUT is
/// identical across engines (bitwise, when shortest paths are unique) —
/// only the work per query changes.
enum class SpurEngine {
  kDijkstra,       ///< plain Dijkstra (the historical default)
  kBidirectional,  ///< bidirectional Dijkstra, no preprocessing needed
  kAlt,            ///< ALT landmarks; needs a per-epoch PreprocessedGraph
};

/// Stable lower_snake_case engine name ("dijkstra", "bidirectional",
/// "alt") — the /v1/route "algo" vocabulary.
const char* SpurEngineName(SpurEngine engine);

/// Parses "dijkstra" / "bidi" / "bidirectional" / "alt" (the --spur-engine
/// vocabulary). Returns false on anything else, leaving *out untouched.
bool ParseSpurEngine(const std::string& text, SpurEngine* out);

/// Outcome taxonomy for one route query. Everything except kOk and
/// kDeadlineExceeded is a client-input condition and maps to a 4xx over
/// HTTP (kUnreachable to 404, the rest to 400) — never a 500.
/// kDeadlineExceeded maps to 504 Gateway Timeout: the budget ran out
/// before even one candidate was found. (When the budget runs out with
/// candidates in hand the planner degrades instead — kOk with
/// RouteResult::degraded set.)
enum class RouteStatus {
  kOk,
  kUnknownVertex,  ///< source or destination is not a vertex of the network
  kSameVertex,     ///< source == destination: nothing to rank
  kUnreachable,    ///< the strategy found no path between the endpoints
  kBadRequest,     ///< malformed parameters (k out of range)
  kDeadlineExceeded,  ///< budget expired with zero candidates found
};

/// Stable lower_snake_case slug ("unknown_vertex", ...) used in HTTP
/// error bodies and logs.
const char* RouteStatusSlug(RouteStatus status);

/// One (origin, destination) route query. k <= 0 means "use the
/// planner's configured candidate count"; an explicit non-positive k on
/// the wire is rejected by the HTTP layer before it gets here.
struct RouteRequest {
  RouteRequest() = default;
  /// Endpoint-and-k form: the common construction everywhere (tests, the
  /// HTTP layer, the bench driver). A real constructor rather than
  /// aggregate init so `{source, destination, k}` call sites neither
  /// repeat the deadline/cancel defaults nor trip
  /// -Wmissing-field-initializers under the -Wextra gate.
  RouteRequest(graph::VertexId source_in, graph::VertexId destination_in,
               int k_in = 0)
      : source(source_in), destination(destination_in), k(k_in) {}

  graph::VertexId source = graph::kInvalidVertex;
  graph::VertexId destination = graph::kInvalidVertex;
  int k = 0;
  /// Wall-clock budget for this query. Default unbounded. The HTTP layer
  /// anchors it at request receipt (X-Deadline-Ms header / budget_ms
  /// field, capped by HttpServerOptions), so parse time counts against
  /// the budget.
  Deadline deadline;
  /// Optional external cancellation (borrowed; must outlive Plan). The
  /// planner's internal token chains to it, so either source — deadline
  /// or caller — stops the enumeration.
  const CancelToken* cancel = nullptr;
};

/// One answered route query.
struct RouteResult {
  RouteStatus status = RouteStatus::kOk;
  /// Human-readable detail when status != kOk.
  std::string message;
  /// True when the candidate set came from the LRU cache (set for cached
  /// unreachable verdicts too — negative results are cached so repeated
  /// dead-end queries also skip Yen).
  bool cache_hit = false;
  /// True when the deadline expired mid-enumeration but at least one
  /// candidate was already found: status is kOk and `ranked` holds the
  /// scored PARTIAL set (never cached — the next query re-enumerates).
  bool degraded = false;
  /// Epoch of the graph snapshot this query was answered against. Always
  /// 0 for a planner pinned to a bare RoadNetwork; for a planner over a
  /// GraphStore it names the one snapshot captured at query entry, so
  /// every response — including errors — is attributable to exactly one
  /// graph version.
  uint64_t graph_epoch = 0;
  /// Engine that enumerated this candidate set ("dijkstra",
  /// "bidirectional", "alt"). On a cache hit: the engine that seeded the
  /// entry, so hit and miss bodies stay byte-identical. Empty on error
  /// results that never reached enumeration. An ALT planner mid-rebuild
  /// reports "dijkstra" — the fallback that actually ran.
  std::string algo;
  /// Candidates sorted by descending predicted score; empty unless kOk.
  std::vector<ScoredPath> ranked;
};

/// Planner construction: graph source and knobs in one struct with named
/// fields, replacing the old two-constructor (network vs store) split.
/// Exactly one of `network` / `store` must be set (both borrowed; the
/// caller keeps them alive for the planner's lifetime).
struct RoutePlannerConfig {
  /// Pinned-network form: every query runs against this network, epoch 0
  /// forever. The offline pipeline and single-graph tests use this.
  const graph::RoadNetwork* network = nullptr;
  /// Live-graph form: every query captures store->CaptureForQuery() once
  /// at entry, so /v1/traffic swaps take effect between queries, never
  /// within one.
  const GraphStore* store = nullptr;
  /// Candidate strategy and parameters; `candidates.k` is the default
  /// per-query k.
  data::CandidateGenConfig candidates;
  /// LRU capacity in candidate sets. 0 disables caching (every query
  /// re-enumerates).
  size_t cache_capacity = 1024;
  /// Largest CLIENT-supplied per-request k accepted (kBadRequest above
  /// it): enumeration cost grows with k, and an open endpoint must not
  /// let one request buy an unbounded Yen run. The configured default
  /// (candidates.k) is exempt — the operator set it deliberately, and a
  /// `--k` above this cap must not turn every default-k query into a
  /// 400. <= 0 disables the cap.
  int max_k = 64;
  /// Engine for the Yen spur searches. kAlt over a GraphStore uses the
  /// store's per-epoch artifact (EnablePreprocessing) and falls back to
  /// Dijkstra — exact, just slower — whenever the artifact trails the
  /// served epoch; kAlt over a pinned network builds private tables at
  /// planner construction.
  SpurEngine spur_engine = SpurEngine::kDijkstra;
  /// Landmark count for the pinned-network kAlt tables (store-backed
  /// planners take the landmark count from the store's PreprocessOptions).
  int num_landmarks = 8;
  /// Test seam: runs on the enumeration path, after the planner has
  /// committed to enumerating (and, for single-flight leaders, before
  /// followers are released). graph_swap_test uses it to hold a leader
  /// mid-flight until every follower is provably waiting. Leave unset in
  /// production.
  std::function<void()> enumeration_hook;
};

/// Point-in-time snapshot of the planner's counters, as one coherent
/// struct so /statsz renders them together. Individual fields may be a
/// tick apart under concurrent load (each is an independent relaxed
/// atomic); each is individually exact.
struct RoutePlannerStats {
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Cache entries discarded because a lookup arrived from a newer graph
  /// epoch than the entry was enumerated at.
  uint64_t invalidations = 0;
  /// Queries that joined an in-progress identical enumeration instead of
  /// running their own (single-flight followers).
  uint64_t single_flight_waits = 0;
  /// Candidate enumerations actually executed (cache misses minus
  /// single-flight coalescing).
  uint64_t enumerations = 0;
  /// Enumerations an ALT planner ran on the Dijkstra fallback because no
  /// current-epoch artifact was available (preprocessing disabled, or a
  /// rebuild still in flight). Always 0 for non-ALT planners.
  uint64_t alt_fallbacks = 0;
};

/// The query -> candidates -> ranked-paths pipeline behind POST
/// /v1/route. Borrows the network or graph store (caller keeps it alive)
/// and owns a copy of the scoring seam.
class RoutePlanner {
 public:
  /// Scores candidate paths, returning them sorted by descending score —
  /// the contract of ServingEngine::ScoreBatch and
  /// BatchingQueue::SubmitScore(...).get() (same signature as
  /// HttpBackend::score, so the CLI reuses one lambda for both seams).
  using ScoreFn =
      std::function<std::vector<ScoredPath>(std::vector<routing::Path>)>;

  /// The one constructor: graph source and knobs arrive together in the
  /// config (see RoutePlannerConfig field docs). Checks that exactly one
  /// of config.network / config.store is set.
  RoutePlanner(const RoutePlannerConfig& config, ScoreFn score);

  /// Answers one query. Thread-safe; never throws on bad input (that is
  /// what RouteResult::status is for). Exceptions out of the scoring
  /// backend propagate (the HTTP layer answers 500).
  RouteResult Plan(const RouteRequest& request) const
      EXCLUDES(cache_mu_, flight_mu_);

  /// Queries answered from / past the candidate cache so far.
  uint64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  uint64_t cache_misses() const {
    return cache_misses_.load(std::memory_order_relaxed);
  }
  /// Cache entries lazily evicted because the graph epoch moved on.
  uint64_t invalidations() const {
    return invalidations_.load(std::memory_order_relaxed);
  }
  /// Queries that waited on another thread's identical enumeration.
  uint64_t single_flight_waits() const {
    return single_flight_waits_.load(std::memory_order_relaxed);
  }
  /// Candidate enumerations actually executed.
  uint64_t enumerations() const {
    return enumerations_.load(std::memory_order_relaxed);
  }
  /// Queries that ran out of budget with zero candidates (-> 504).
  uint64_t deadline_exceeded_count() const {
    return deadline_exceeded_.load(std::memory_order_relaxed);
  }
  /// Queries answered with a partial candidate set (degraded == true).
  uint64_t degraded_count() const {
    return degraded_.load(std::memory_order_relaxed);
  }
  /// ALT enumerations that ran on the Dijkstra fallback.
  uint64_t alt_fallbacks() const {
    return alt_fallbacks_.load(std::memory_order_relaxed);
  }
  /// Candidate sets currently cached (<= config().cache_capacity).
  size_t cache_size() const EXCLUDES(cache_mu_);

  /// All counters in one struct (see RoutePlannerStats).
  RoutePlannerStats stats() const;

  const RoutePlannerConfig& config() const { return config_; }

 private:
  struct CacheKey {
    graph::VertexId source;
    graph::VertexId destination;
    int strategy;
    int k;
    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    size_t operator()(const CacheKey& key) const;
  };
  /// One enumerated candidate set plus the engine that produced it. The
  /// algo travels WITH the cached paths so a cache hit reports the engine
  /// that actually enumerated — keeping hit and miss response bodies
  /// byte-identical even when the planner's live engine choice would
  /// differ (e.g. an ALT planner that seeded the entry mid-rebuild).
  struct CandidateSet {
    std::vector<routing::Path> paths;
    /// SpurEngineName(...) of the engine that ran the enumeration.
    std::string algo;
  };
  /// Cached candidate sets are shared_ptr so a hit can score a set that a
  /// concurrent insert is about to evict.
  using CacheValue = std::shared_ptr<const CandidateSet>;
  /// Each cached set remembers the epoch it was enumerated at; the key
  /// stays (source, destination, strategy, k) so a swap costs nothing up
  /// front and stale entries never crowd out live ones — they are erased
  /// the first time a newer-epoch lookup touches them.
  struct CacheEntry {
    uint64_t epoch;
    CacheValue paths;
  };
  using LruNode = std::pair<CacheKey, CacheEntry>;

  /// One in-progress enumeration that identical queries can join. The
  /// leader publishes result-or-error under `mu` and notifies; followers
  /// wait in a predicate loop. `epoch` is immutable so a follower can
  /// tell a joinable flight from a stale one without taking `mu`.
  struct Flight {
    explicit Flight(uint64_t epoch_in) : epoch(epoch_in) {}
    const uint64_t epoch;
    /// All flights share kRouteFlight: a thread holds at most one
    /// flight's lock at a time (leaders publish, followers wait —
    /// never two flights in one scope), and never under flight_mu_.
    common::Mutex mu{common::LockRank::kRouteFlight, "planner.flight"};
    common::CondVar cv;
    bool done GUARDED_BY(mu) = false;
    CacheValue result GUARDED_BY(mu);
    std::exception_ptr error GUARDED_BY(mu);
  };

  CacheValue CacheLookup(const CacheKey& key, uint64_t epoch) const
      EXCLUDES(cache_mu_);
  void CacheInsert(const CacheKey& key, uint64_t epoch,
                   CacheValue value) const EXCLUDES(cache_mu_);
  /// Runs one candidate enumeration (counter + test hook + Yen) with the
  /// configured spur engine. `tables` is the current-epoch ALT artifact
  /// (null = none available: a kAlt planner falls back to Dijkstra and
  /// counts alt_fallbacks_; other engines ignore it).
  CacheValue Enumerate(
      const graph::RoadNetwork& network, const RouteRequest& request,
      const data::CandidateGenConfig& gen, const CancelToken* cancel,
      const std::shared_ptr<const routing::PreprocessedGraph>& tables) const;
  /// Single-flight enumeration for deadline-free queries: exactly one
  /// caller per (key, epoch) runs Yen; the rest wait and share its set.
  /// Rethrows the leader's exception in every joined caller.
  CacheValue EnumerateSingleFlight(
      const CacheKey& key, uint64_t epoch, const graph::RoadNetwork& network,
      const RouteRequest& request, const data::CandidateGenConfig& gen,
      const std::shared_ptr<const routing::PreprocessedGraph>& tables) const
      EXCLUDES(flight_mu_, cache_mu_);

  ScoreFn score_;
  RoutePlannerConfig config_;
  /// Pinned-network kAlt only: tables built once at construction (the
  /// pinned graph never changes, so they never go stale). Store-backed
  /// planners take tables from the store's per-epoch artifact instead.
  std::shared_ptr<const routing::PreprocessedGraph> pinned_tables_;

  /// The planner's three locks never nest (lookup, flight wait and
  /// insert are sequential scopes of Plan), but they still get distinct
  /// ranks — table before flight before cache, matching the order the
  /// scopes RUN in — so a future refactor that nests them is forced into
  /// the deadlock-free order.
  mutable common::Mutex cache_mu_{common::LockRank::kRouteCache,
                                  "planner.cache"};
  /// Front = most recently used. The map indexes list nodes for O(1)
  /// lookup + splice-to-front.
  mutable std::list<LruNode> lru_ GUARDED_BY(cache_mu_);
  mutable std::unordered_map<CacheKey, std::list<LruNode>::iterator,
                             CacheKeyHash>
      index_ GUARDED_BY(cache_mu_);

  mutable common::Mutex flight_mu_ ACQUIRED_BEFORE(cache_mu_){
      common::LockRank::kRouteFlightTable, "planner.flight_table"};
  /// In-progress enumerations by key. An entry whose epoch is older than
  /// the arriving query's is replaced (its leader still completes and
  /// notifies its own followers; the pointer-compare on erase keeps it
  /// from removing its successor).
  mutable std::unordered_map<CacheKey, std::shared_ptr<Flight>, CacheKeyHash>
      flights_ GUARDED_BY(flight_mu_);

  mutable std::atomic<uint64_t> cache_hits_{0};
  mutable std::atomic<uint64_t> cache_misses_{0};
  mutable std::atomic<uint64_t> invalidations_{0};
  mutable std::atomic<uint64_t> single_flight_waits_{0};
  mutable std::atomic<uint64_t> enumerations_{0};
  mutable std::atomic<uint64_t> deadline_exceeded_{0};
  mutable std::atomic<uint64_t> degraded_{0};
  mutable std::atomic<uint64_t> alt_fallbacks_{0};
};

}  // namespace pathrank::serving
