// Horizontal scaling unit for the serving stack: N independent
// ServingEngines behind one facade, with query traffic partitioned by a
// deterministic (source, destination) hash or by round-robin.
//
// Why shard: one engine already scales across threads (replica pool), but
// a single replica set shares one round-robin counter and — more
// importantly — one snapshot. Sharding is the next axis: each shard owns
// its replicas outright (no cross-shard contention), can pin to a NUMA
// node or socket, and can serve a DIFFERENT snapshot, which is what
// multi-model deployment and canarying a new model on a traffic slice
// need.
//
// Equivalence: when every shard serves the same snapshot, results are
// bitwise identical to a single engine regardless of policy — all shards
// read the same parameters and the kernels are deterministic. With
// per-shard snapshots only kHash keeps responses reproducible (a query
// always lands on the same shard); kRoundRobin trades that for perfect
// load spreading.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "serving/serving_engine.h"

namespace pathrank::serving {

/// How queries pick a shard.
enum class ShardPolicy {
  /// shard = Hash(source, destination) % num_shards. Deterministic: the
  /// same query always lands on the same shard (required for per-shard
  /// snapshots to give reproducible responses; also gives per-OD-pair
  /// cache locality).
  kHash,
  /// Strict rotation via an atomic counter. Best load spreading; shard
  /// assignment depends on arrival order.
  kRoundRobin,
};

/// Sharded facade construction options.
struct ShardedOptions {
  /// Number of engines. Must be >= 1.
  size_t num_shards = 2;
  ShardPolicy policy = ShardPolicy::kHash;
  /// Applied to every shard's engine (replica count, default candidate
  /// strategy).
  ServingOptions engine_options;
};

/// N-engine serving facade. Thread-safe exactly like ServingEngine: any
/// number of threads may call Rank / RankBatch / ScoreBatch / swap
/// concurrently.
class ShardedEngine {
 public:
  /// Every shard serves `snapshot` (shared — parameters exist once).
  ShardedEngine(const graph::RoadNetwork& network,
                std::shared_ptr<const ModelSnapshot> snapshot,
                const ShardedOptions& options = {});

  /// Multi-model: shard i serves snapshots[i]. snapshots.size() overrides
  /// options.num_shards.
  ShardedEngine(const graph::RoadNetwork& network,
                std::vector<std::shared_ptr<const ModelSnapshot>> snapshots,
                const ShardedOptions& options = {});

  /// The shard (source, destination) lands on under the configured
  /// policy. For kHash this is a pure function of the query; for
  /// kRoundRobin it advances the rotation.
  size_t ShardFor(graph::VertexId source, graph::VertexId destination) const;

  /// Same results as the underlying ServingEngine calls (see class
  /// comment for when they are bitwise identical to a single engine).
  std::vector<ScoredPath> Rank(graph::VertexId source,
                               graph::VertexId destination) const;
  std::vector<ScoredPath> Rank(graph::VertexId source,
                               graph::VertexId destination,
                               const data::CandidateGenConfig& gen) const;
  std::vector<std::vector<ScoredPath>> RankBatch(
      const std::vector<RankQuery>& queries) const;
  std::vector<std::vector<ScoredPath>> RankBatch(
      const std::vector<RankQuery>& queries,
      const data::CandidateGenConfig& gen) const;
  /// Externally supplied candidates carry no (source, destination) key, so
  /// ScoreBatch always rotates round-robin.
  std::vector<ScoredPath> ScoreBatch(
      const std::vector<routing::Path>& paths) const;

  /// Hot-swaps every shard to `next` (one SwapSnapshot per shard, in shard
  /// order; each shard cuts over atomically, the fleet converges within
  /// the loop).
  void SwapSnapshot(std::shared_ptr<const ModelSnapshot> next);
  /// Hot-swaps one shard (canary / multi-model); returns its previous
  /// snapshot.
  std::shared_ptr<const ModelSnapshot> SwapSnapshot(
      size_t shard, std::shared_ptr<const ModelSnapshot> next);

  size_t num_shards() const { return shards_.size(); }
  const ServingEngine& shard(size_t i) const { return *shards_[i]; }
  const ShardedOptions& options() const { return options_; }

 private:
  ShardedOptions options_;
  std::vector<std::unique_ptr<ServingEngine>> shards_;
  /// Lock-free on purpose — the router tier owns no mutex of its own, so
  /// it has no slot in the lock hierarchy (common/lock_rank.h): every
  /// lock a sharded call touches belongs to the shard engines beneath.
  mutable std::atomic<uint64_t> rotation_{0};
};

}  // namespace pathrank::serving
