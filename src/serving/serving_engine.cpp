#include "serving/serving_engine.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace pathrank::serving {

std::vector<routing::Path> GenerateCandidates(
    const graph::RoadNetwork& network, graph::VertexId source,
    graph::VertexId destination, const data::CandidateGenConfig& gen) {
  // Single source of truth with training-data generation: deployment-time
  // candidates always match the training distribution.
  return data::GenerateCandidatePaths(network, source, destination, gen);
}

/// One scoring slot: a lock plus the per-caller activation scratch the
/// const inference path writes into. No parameters live here — every
/// replica scores against the one shared snapshot.
struct ServingEngine::Replica {
  std::mutex mu;
  core::InferenceScratch scratch;
};

ServingEngine::ServingEngine(const graph::RoadNetwork& network,
                             std::shared_ptr<const ModelSnapshot> snapshot,
                             const ServingOptions& options)
    : network_(&network), snapshot_(std::move(snapshot)), options_(options) {
  PR_CHECK(snapshot_ != nullptr) << "ServingEngine needs a snapshot";
  PR_CHECK(snapshot_->vocab_size() == network.num_vertices())
      << "model/network vertex-count mismatch";
  const size_t n = options_.num_replicas > 0 ? options_.num_replicas
                                             : std::max<size_t>(1, GetNumThreads());
  replicas_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    replicas_.push_back(std::make_unique<Replica>());
  }
}

ServingEngine::ServingEngine(const graph::RoadNetwork& network,
                             const core::PathRankModel& model,
                             const ServingOptions& options)
    : ServingEngine(network, ModelSnapshot::Capture(model), options) {}

ServingEngine::~ServingEngine() = default;

std::vector<float> ServingEngine::ScoreSequences(
    const nn::SequenceBatch& batch) const {
  // cuBERT-style dispatch: round-robin over the pool, blocking on the
  // chosen replica's lock. Scratch contents never influence scores, so the
  // choice only affects contention, not results.
  const uint32_t idx =
      round_robin_.fetch_add(1, std::memory_order_relaxed) %
      static_cast<uint32_t>(replicas_.size());
  Replica& replica = *replicas_[idx];
  std::lock_guard<std::mutex> lock(replica.mu);
  // Score serially on this thread: parallelism lives across queries (many
  // callers / RankBatch shards), and a caller that holds a replica lock
  // must never block on the global pool — a pool worker could be waiting
  // on this very lock.
  SerialRegionScope serial;
  return snapshot_->model().ForwardInference(batch, &replica.scratch);
}

std::vector<ScoredPath> ServingEngine::Rank(
    graph::VertexId source, graph::VertexId destination) const {
  return Rank(source, destination, options_.candidates);
}

std::vector<ScoredPath> ServingEngine::Rank(
    graph::VertexId source, graph::VertexId destination,
    const data::CandidateGenConfig& gen) const {
  return ScoreBatch(GenerateCandidates(*network_, source, destination, gen));
}

std::vector<std::vector<ScoredPath>> ServingEngine::RankBatch(
    const std::vector<RankQuery>& queries) const {
  return RankBatch(queries, options_.candidates);
}

std::vector<std::vector<ScoredPath>> ServingEngine::RankBatch(
    const std::vector<RankQuery>& queries,
    const data::CandidateGenConfig& gen) const {
  std::vector<std::vector<ScoredPath>> results(queries.size());
  if (queries.empty()) return results;
  // Each query is handled end-to-end by one worker; per-query slots make
  // the output order (and every score) independent of scheduling.
  ParallelForShards(0, queries.size(),
                    [&](size_t /*shard*/, size_t lo, size_t hi) {
                      for (size_t q = lo; q < hi; ++q) {
                        results[q] =
                            Rank(queries[q].source, queries[q].destination,
                                 gen);
                      }
                    });
  return results;
}

std::vector<ScoredPath> ServingEngine::ScoreBatch(
    const std::vector<routing::Path>& paths) const {
  std::vector<ScoredPath> scored;
  if (paths.empty()) return scored;

  std::vector<std::vector<int32_t>> seqs;
  seqs.reserve(paths.size());
  for (const auto& p : paths) {
    std::vector<int32_t> seq;
    seq.reserve(p.vertices.size());
    for (graph::VertexId v : p.vertices) {
      seq.push_back(static_cast<int32_t>(v));
    }
    seqs.push_back(std::move(seq));
  }
  const auto batch = nn::SequenceBatch::FromSequences(seqs);
  const std::vector<float> scores = ScoreSequences(batch);

  scored.reserve(paths.size());
  for (size_t i = 0; i < paths.size(); ++i) {
    scored.push_back({paths[i], static_cast<double>(scores[i])});
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredPath& a, const ScoredPath& b) {
              return a.score > b.score;
            });
  return scored;
}

}  // namespace pathrank::serving
