#include "serving/serving_engine.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace pathrank::serving {

std::vector<int32_t> PathToSequence(const routing::Path& path) {
  std::vector<int32_t> seq;
  seq.reserve(path.vertices.size());
  for (graph::VertexId v : path.vertices) {
    seq.push_back(static_cast<int32_t>(v));
  }
  return seq;
}

std::vector<ScoredPath> AssembleRanking(std::vector<routing::Path> paths,
                                        const std::vector<float>& scores,
                                        size_t offset) {
  PR_CHECK(offset + paths.size() <= scores.size())
      << "score slice out of range";
  std::vector<ScoredPath> scored;
  scored.reserve(paths.size());
  for (size_t i = 0; i < paths.size(); ++i) {
    scored.push_back(
        {std::move(paths[i]), static_cast<double>(scores[offset + i])});
  }
  // Determinism note: exact float scores make ties sort identically for
  // identical inputs, so the order is reproducible despite std::sort
  // being unstable.
  std::sort(scored.begin(), scored.end(),
            [](const ScoredPath& a, const ScoredPath& b) {
              return a.score > b.score;
            });
  return scored;
}

namespace {

nn::SequenceBatch BatchFromPaths(const std::vector<routing::Path>& paths) {
  std::vector<std::vector<int32_t>> seqs;
  seqs.reserve(paths.size());
  for (const auto& p : paths) {
    seqs.push_back(PathToSequence(p));
  }
  return nn::SequenceBatch::FromSequences(seqs);
}

}  // namespace

std::vector<routing::Path> GenerateCandidates(
    const graph::RoadNetwork& network, graph::VertexId source,
    graph::VertexId destination, const data::CandidateGenConfig& gen,
    const CancelToken* cancel, routing::ShortestPathEngine* engine) {
  // Single source of truth with training-data generation: deployment-time
  // candidates always match the training distribution.
  return data::GenerateCandidatePaths(network, source, destination, gen,
                                      cancel, engine);
}

/// One scoring slot: a lock plus the per-caller activation scratch the
/// const inference path writes into. No parameters live here — every
/// replica scores against the one shared snapshot.
struct ServingEngine::Replica {
  /// Round-robin replicas share kEngineReplica (a caller holds exactly
  /// one); the coalescing replica gets kEngineBatchReplica because its
  /// holder — and only its holder — may dispatch a pool region, so it
  /// must rank BEFORE pool.region while the round-robin locks rank after
  /// (RankBatch chunks take them under the region owner's pool.region).
  Replica(int rank, const char* name) : mu(rank, name) {}
  common::Mutex mu;
  core::InferenceScratch scratch GUARDED_BY(mu);
};

ServingEngine::ServingEngine(const graph::RoadNetwork& network,
                             std::shared_ptr<const ModelSnapshot> snapshot,
                             const ServingOptions& options)
    : network_(&network), options_(options) {
  PR_CHECK(snapshot != nullptr) << "ServingEngine needs a snapshot";
  PR_CHECK(snapshot->vocab_size() == network.num_vertices())
      << "model/network vertex-count mismatch";
  snapshot_ = std::move(snapshot);
  // Touch the global pool now, while this thread holds no engine lock.
  // Replica locks rank ABOVE the pool bands (src/common/lock_rank.h), so
  // if an inference call's ParallelFor were also the process's FIRST pool
  // use, the lazy ThreadPool::Global() constructor would acquire
  // pool.region under engine.replica — a rank inversion (and the one
  // pool-under-replica path the SerialRegionScope in ScoreOn cannot
  // prevent). Engine construction is the one point that can guarantee a
  // lock-free context before any replica lock exists.
  const size_t pool_threads = std::max<size_t>(1, GetNumThreads());
  const size_t n =
      options_.num_replicas > 0 ? options_.num_replicas : pool_threads;
  replicas_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    replicas_.push_back(std::make_unique<Replica>(
        common::LockRank::kEngineReplica, "engine.replica"));
  }
  batch_replica_ = std::make_unique<Replica>(
      common::LockRank::kEngineBatchReplica, "engine.batch_replica");
}

ServingEngine::ServingEngine(const graph::RoadNetwork& network,
                             const core::PathRankModel& model,
                             const ServingOptions& options)
    : ServingEngine(network, ModelSnapshot::Capture(model), options) {}

ServingEngine::~ServingEngine() = default;

std::shared_ptr<const ModelSnapshot> ServingEngine::SwapSnapshot(
    std::shared_ptr<const ModelSnapshot> next) {
  PR_CHECK(next != nullptr) << "SwapSnapshot needs a snapshot";
  PR_CHECK(next->vocab_size() == network_->num_vertices())
      << "model/network vertex-count mismatch";
  swap_count_.fetch_add(1, std::memory_order_relaxed);
  // One locked exchange is the entire cut-over: requests that already
  // copied the old pointer finish on it (their shared_ptr copy keeps it
  // alive); requests that copy after this line see `next`.
  common::MutexLock lock(snapshot_mu_);
  snapshot_.swap(next);
  return next;
}

std::vector<float> ServingEngine::ScoreOn(
    const ModelSnapshot& snap, const nn::SequenceBatch& batch) const {
  // cuBERT-style dispatch: round-robin over the pool, blocking on the
  // chosen replica's lock. Scratch contents never influence scores, so the
  // choice only affects contention, not results.
  const uint32_t idx =
      round_robin_.fetch_add(1, std::memory_order_relaxed) %
      static_cast<uint32_t>(replicas_.size());
  Replica& replica = *replicas_[idx];
  common::MutexLock lock(replica.mu);
  // Score serially on this thread: parallelism lives across queries (many
  // callers / RankBatch shards), and a caller that holds a replica lock
  // must never block on the global pool — a pool worker could be waiting
  // on this very lock.
  SerialRegionScope serial;
  return snap.model().ForwardInference(batch, &replica.scratch);
}

std::vector<float> ServingEngine::ScoreSequences(
    const nn::SequenceBatch& batch) const {
  // Capture once: the whole batch scores on one snapshot even if a swap
  // lands mid-call.
  const auto snap = shared_snapshot();
  return ScoreOn(*snap, batch);
}

std::vector<float> ServingEngine::ScoreCoalesced(
    const nn::SequenceBatch& batch,
    std::shared_ptr<const ModelSnapshot>* used) const {
  const auto snap = shared_snapshot();
  if (used != nullptr) *used = snap;
  if (InParallelRegion()) {
    // Already inside a pool region (or a SerialRegionScope): the kernels
    // would run serially anyway, and blocking on the dedicated replica's
    // lock from a pool worker could deadlock against a holder that is
    // blocked on this very region. Use the ordinary serial path instead.
    return ScoreOn(*snap, batch);
  }
  // Dedicated replica, kernels free to shard over the pool: a coalesced
  // batch is the one serving call big enough for intra-batch parallelism
  // to pay. Deadlock-free because only ScoreCoalesced callers ever take
  // this lock and none of them is a pool worker (guarded above), so no
  // pool region can be waiting on it. Bitwise identical to the serial
  // path: the GEMM kernels are thread-count stable (docs/performance.md).
  common::MutexLock lock(batch_replica_->mu);
  return snap->model().ForwardInference(batch, &batch_replica_->scratch);
}

std::vector<ScoredPath> ServingEngine::Rank(
    graph::VertexId source, graph::VertexId destination) const {
  return Rank(source, destination, options_.candidates);
}

std::vector<ScoredPath> ServingEngine::Rank(
    graph::VertexId source, graph::VertexId destination,
    const data::CandidateGenConfig& gen) const {
  return ScoreBatch(GenerateCandidates(*network_, source, destination, gen));
}

std::vector<std::vector<ScoredPath>> ServingEngine::RankBatch(
    const std::vector<RankQuery>& queries) const {
  return RankBatch(queries, options_.candidates);
}

std::vector<std::vector<ScoredPath>> ServingEngine::RankBatch(
    const std::vector<RankQuery>& queries,
    const data::CandidateGenConfig& gen) const {
  std::vector<std::vector<ScoredPath>> results(queries.size());
  if (queries.empty()) return results;
  // Each query is handled end-to-end by one worker; per-query slots make
  // the output order (and every score) independent of scheduling.
  ParallelForShards(0, queries.size(),
                    [&](size_t /*shard*/, size_t lo, size_t hi) {
                      for (size_t q = lo; q < hi; ++q) {
                        results[q] =
                            Rank(queries[q].source, queries[q].destination,
                                 gen);
                      }
                    });
  return results;
}

std::vector<ScoredPath> ServingEngine::ScoreBatch(
    const std::vector<routing::Path>& paths) const {
  if (paths.empty()) return {};
  const auto batch = BatchFromPaths(paths);
  return AssembleRanking(paths, ScoreSequences(batch));
}

}  // namespace pathrank::serving
