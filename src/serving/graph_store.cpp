#include "serving/graph_store.h"

#include <cmath>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"

namespace pathrank::serving {

const char* TrafficStatusSlug(TrafficStatus status) {
  switch (status) {
    case TrafficStatus::kOk:
      return "ok";
    case TrafficStatus::kEmptyBatch:
      return "empty_batch";
    case TrafficStatus::kUnknownEdge:
      return "unknown_edge";
    case TrafficStatus::kDuplicateEdge:
      return "duplicate_edge";
    case TrafficStatus::kBadUpdate:
      return "bad_request";
  }
  return "unknown";
}

GraphStore::GraphStore(graph::RoadNetwork network)
    : current_(graph::GraphSnapshot::Wrap(std::move(network))) {}

std::shared_ptr<const graph::GraphSnapshot> GraphStore::Current() const {
  common::MutexLock lock(mu_);
  return current_;
}

std::shared_ptr<const graph::GraphSnapshot> GraphStore::Publish(
    std::shared_ptr<const graph::GraphSnapshot> next) {
  std::shared_ptr<const graph::GraphSnapshot> old;
  {
    common::MutexLock lock(mu_);
    old = std::move(current_);
    current_ = std::move(next);
  }
  swap_count_.fetch_add(1, std::memory_order_relaxed);
  return old;
}

TrafficResult GraphStore::ApplyTraffic(
    const std::vector<graph::TrafficUpdate>& updates) {
  // One writer at a time: validation must run against the snapshot the
  // rebuild will stack on, so read-current + validate + rebuild + publish
  // form one critical section. Readers are untouched — they contend only
  // on mu_ inside Current()/Publish.
  common::MutexLock rebuild_lock(rebuild_mu_);
  const std::shared_ptr<const graph::GraphSnapshot> base = Current();

  TrafficResult result;
  result.epoch = base->epoch();
  if (updates.empty()) {
    result.status = TrafficStatus::kEmptyBatch;
    result.message = "traffic batch carries no updates";
    return result;
  }

  const size_t num_edges = base->network().num_edges();
  std::unordered_set<graph::EdgeId> seen;
  seen.reserve(updates.size());
  for (const graph::TrafficUpdate& update : updates) {
    if (update.edge >= num_edges) {
      result.status = TrafficStatus::kUnknownEdge;
      result.message =
          StrFormat("unknown edge %u (network has %zu edges)", update.edge,
                    num_edges);
      return result;
    }
    if (!seen.insert(update.edge).second) {
      result.status = TrafficStatus::kDuplicateEdge;
      result.message =
          StrFormat("edge %u appears more than once in the batch",
                    update.edge);
      return result;
    }
    if (!update.has_travel_time && !update.has_closed) {
      result.status = TrafficStatus::kBadUpdate;
      result.message = StrFormat(
          "update for edge %u changes nothing (needs travel_time_s and/or "
          "closed)",
          update.edge);
      return result;
    }
    if (update.has_travel_time &&
        (!std::isfinite(update.travel_time_s) ||
         update.travel_time_s <= 0.0)) {
      result.status = TrafficStatus::kBadUpdate;
      result.message = StrFormat(
          "travel_time_s for edge %u must be positive and finite",
          update.edge);
      return result;
    }
    if (update.has_travel_time) ++result.cost_updates;
    if (update.has_closed) {
      if (update.closed) {
        ++result.closures;
      } else {
        ++result.reopenings;
      }
    }
  }

  // Copy-on-write rebuild off the reader lock, then one pointer swap.
  Publish(base->WithTraffic(updates));
  result.epoch = base->epoch() + 1;
  traffic_batches_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

std::shared_ptr<const graph::GraphSnapshot> GraphStore::SwapNetwork(
    graph::RoadNetwork network) {
  common::MutexLock rebuild_lock(rebuild_mu_);
  const std::shared_ptr<const graph::GraphSnapshot> base = Current();
  return Publish(base->WithNetwork(std::move(network)));
}

}  // namespace pathrank::serving
