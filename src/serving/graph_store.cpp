#include "serving/graph_store.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "common/percentile.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "routing/cost_model.h"
#include "routing/preprocessed_graph.h"

namespace pathrank::serving {

namespace {
/// Ring size for rebuild wall times: enough samples for a stable p99
/// without unbounded growth on long-lived servers.
constexpr size_t kRebuildDurationWindow = 128;
}  // namespace

const char* TrafficStatusSlug(TrafficStatus status) {
  switch (status) {
    case TrafficStatus::kOk:
      return "ok";
    case TrafficStatus::kEmptyBatch:
      return "empty_batch";
    case TrafficStatus::kUnknownEdge:
      return "unknown_edge";
    case TrafficStatus::kDuplicateEdge:
      return "duplicate_edge";
    case TrafficStatus::kBadUpdate:
      return "bad_request";
  }
  return "unknown";
}

GraphStore::GraphStore(graph::RoadNetwork network)
    : current_(graph::GraphSnapshot::Wrap(std::move(network))) {}

GraphStore::~GraphStore() {
  {
    common::MutexLock lock(mu_);
    pre_stop_ = true;
  }
  pre_cv_.NotifyAll();
  if (pre_worker_.joinable()) pre_worker_.join();
}

std::shared_ptr<const graph::GraphSnapshot> GraphStore::Current() const {
  common::MutexLock lock(mu_);
  return current_;
}

std::shared_ptr<const graph::GraphSnapshot> GraphStore::Publish(
    std::shared_ptr<const graph::GraphSnapshot> next) {
  std::shared_ptr<const graph::GraphSnapshot> old;
  {
    common::MutexLock lock(mu_);
    old = std::move(current_);
    current_ = std::move(next);
  }
  swap_count_.fetch_add(1, std::memory_order_relaxed);
  // The artifact (if any) now trails the served epoch; wake the worker.
  // Harmless when preprocessing is off — nobody is waiting.
  pre_cv_.NotifyAll();
  return old;
}

std::shared_ptr<const GraphArtifact> GraphStore::BuildArtifact(
    std::shared_ptr<const graph::GraphSnapshot> snap) const {
  int landmarks;
  {
    common::MutexLock lock(mu_);
    landmarks = pre_options_.num_landmarks;
  }
  // Free-flow travel time: the single metric candidate generation
  // enumerates under (see data::GenerateCandidatePaths), so the tables
  // are valid lower bounds for every spur search the planner issues.
  const auto cost = routing::EdgeCostFn::TravelTime(snap->network());
  auto artifact = std::make_shared<GraphArtifact>();
  artifact->epoch = snap->epoch();
  artifact->tables = std::make_shared<const routing::PreprocessedGraph>(
      snap->network(), cost, landmarks);
  artifact->snapshot = std::move(snap);
  return artifact;
}

void GraphStore::EnablePreprocessing(const PreprocessOptions& options) {
  {
    common::MutexLock lock(mu_);
    PR_CHECK(!pre_enabled_) << "EnablePreprocessing called twice";
    PR_CHECK(options.num_landmarks >= 1);
    pre_enabled_ = true;
    pre_options_ = options;
  }
  // Boot-time build runs synchronously on the caller's thread: servers
  // come up with ALT ready instead of racing the first queries.
  PublishArtifactIfNewest(BuildArtifact(Current()));
  pre_worker_ = std::thread([this] { PreprocessLoop(); });
}

void GraphStore::PreprocessLoop() {
  for (;;) {
    std::shared_ptr<const graph::GraphSnapshot> snap;
    std::function<void(uint64_t)> hook;
    {
      common::MutexLock lock(mu_);
      while (!pre_stop_ && artifact_ != nullptr &&
             artifact_->epoch == current_->epoch()) {
        pre_cv_.Wait(mu_);
      }
      if (pre_stop_) return;
      snap = current_;
      hook = pre_options_.rebuild_hook;
    }
    if (hook) hook(snap->epoch());
    Stopwatch timer;
    auto artifact = BuildArtifact(std::move(snap));
    const double elapsed_s = timer.ElapsedSeconds();
    {
      common::MutexLock lock(mu_);
      ++pre_rebuilds_;
      if (pre_durations_.size() < kRebuildDurationWindow) {
        pre_durations_.push_back(elapsed_s);
      } else {
        pre_durations_[pre_durations_next_] = elapsed_s;
      }
      pre_durations_next_ =
          (pre_durations_next_ + 1) % kRebuildDurationWindow;
    }
    PublishArtifactIfNewest(std::move(artifact));
  }
}

void GraphStore::PublishArtifactIfNewest(
    std::shared_ptr<const GraphArtifact> artifact) {
  common::MutexLock lock(mu_);
  // A rebuild can race a faster later rebuild (epochs advanced while we
  // were building); never let an older artifact clobber a newer one.
  if (artifact_ == nullptr || artifact->epoch > artifact_->epoch) {
    artifact_ = std::move(artifact);
  }
}

std::shared_ptr<const GraphArtifact> GraphStore::CurrentArtifact() const {
  common::MutexLock lock(mu_);
  return artifact_;
}

GraphQueryView GraphStore::CaptureForQuery() const {
  common::MutexLock lock(mu_);
  return GraphQueryView{current_, artifact_};
}

PreprocessingStats GraphStore::preprocessing_stats() const {
  PreprocessingStats stats;
  std::vector<double> durations;
  {
    common::MutexLock lock(mu_);
    stats.enabled = pre_enabled_;
    if (!pre_enabled_) return stats;
    stats.landmarks = pre_options_.num_landmarks;
    stats.rebuilds = pre_rebuilds_;
    const uint64_t served = current_->epoch();
    const uint64_t built = artifact_ != nullptr ? artifact_->epoch : 0;
    stats.epochs_behind = served > built ? served - built : 0;
    durations = pre_durations_;
  }
  if (!durations.empty()) {
    std::sort(durations.begin(), durations.end());
    stats.rebuild_p50_s = PercentileSorted(durations, 0.50);
    stats.rebuild_p99_s = PercentileSorted(durations, 0.99);
  }
  return stats;
}

TrafficResult GraphStore::ApplyTraffic(
    const std::vector<graph::TrafficUpdate>& updates) {
  // One writer at a time: validation must run against the snapshot the
  // rebuild will stack on, so read-current + validate + rebuild + publish
  // form one critical section. Readers are untouched — they contend only
  // on mu_ inside Current()/Publish.
  common::MutexLock rebuild_lock(rebuild_mu_);
  const std::shared_ptr<const graph::GraphSnapshot> base = Current();

  TrafficResult result;
  result.epoch = base->epoch();
  if (updates.empty()) {
    result.status = TrafficStatus::kEmptyBatch;
    result.message = "traffic batch carries no updates";
    return result;
  }

  const size_t num_edges = base->network().num_edges();
  std::unordered_set<graph::EdgeId> seen;
  seen.reserve(updates.size());
  for (const graph::TrafficUpdate& update : updates) {
    if (update.edge >= num_edges) {
      result.status = TrafficStatus::kUnknownEdge;
      result.message =
          StrFormat("unknown edge %u (network has %zu edges)", update.edge,
                    num_edges);
      return result;
    }
    if (!seen.insert(update.edge).second) {
      result.status = TrafficStatus::kDuplicateEdge;
      result.message =
          StrFormat("edge %u appears more than once in the batch",
                    update.edge);
      return result;
    }
    if (!update.has_travel_time && !update.has_closed) {
      result.status = TrafficStatus::kBadUpdate;
      result.message = StrFormat(
          "update for edge %u changes nothing (needs travel_time_s and/or "
          "closed)",
          update.edge);
      return result;
    }
    if (update.has_travel_time &&
        (!std::isfinite(update.travel_time_s) ||
         update.travel_time_s <= 0.0)) {
      result.status = TrafficStatus::kBadUpdate;
      result.message = StrFormat(
          "travel_time_s for edge %u must be positive and finite",
          update.edge);
      return result;
    }
    if (update.has_travel_time) ++result.cost_updates;
    if (update.has_closed) {
      if (update.closed) {
        ++result.closures;
      } else {
        ++result.reopenings;
      }
    }
  }

  // Copy-on-write rebuild off the reader lock, then one pointer swap.
  Publish(base->WithTraffic(updates));
  result.epoch = base->epoch() + 1;
  traffic_batches_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

std::shared_ptr<const graph::GraphSnapshot> GraphStore::SwapNetwork(
    graph::RoadNetwork network) {
  common::MutexLock rebuild_lock(rebuild_mu_);
  const std::shared_ptr<const graph::GraphSnapshot> base = Current();
  return Publish(base->WithNetwork(std::move(network)));
}

}  // namespace pathrank::serving
