#include "serving/model_snapshot.h"

namespace pathrank::serving {

ModelSnapshot::ModelSnapshot(const core::PathRankModel& model)
    : model_(std::make_unique<core::PathRankModel>(
          model.vocab_size(), model.config(), core::InitMode::kSkipInit)) {
  model_->CopyParametersFrom(model);
}

std::shared_ptr<const ModelSnapshot> ModelSnapshot::Capture(
    const core::PathRankModel& model) {
  return std::make_shared<const ModelSnapshot>(model);
}

std::unique_ptr<core::PathRankModel> ModelSnapshot::Materialize() const {
  auto copy = std::make_unique<core::PathRankModel>(
      vocab_size(), config(), core::InitMode::kSkipInit);
  copy->CopyParametersFrom(*model_);
  return copy;
}

}  // namespace pathrank::serving
