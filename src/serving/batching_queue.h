// Request coalescing for the serving engine: concurrent Rank / Score
// requests are queued, merged into ONE SequenceBatch, scored in a single
// engine call on a dedicated dispatcher thread, then split back and
// completed through per-request futures.
//
// Why coalesce: a single query's candidate set is a handful of short
// sequences — too small to amortise dispatch, replica locking and padding,
// and far too small for intra-batch kernel parallelism. Merging the rows
// of many concurrent requests turns serving into the same wide-batch
// regime training runs in (one GEMM over `sum(rows)` sequences), which is
// where the blocked kernels earn their keep.
//
// Equivalence guarantee: a request's scores are bitwise identical to
// scoring it alone via ServingEngine::ScoreBatch. Every row of the model
// is row-independent — embedding lookup, the masked recurrent steps and
// pooling read only that row's tokens, and the GEMM kernels fix each
// output element's accumulation order regardless of how many other rows
// share the batch (verified by batching_test).
//
// Snapshot attribution: each flush scores on exactly one snapshot
// (captured once per coalesced call), so every response produced by one
// flush is attributable to a single model version even while
// ServingEngine::SwapSnapshot runs concurrently.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "serving/serving_engine.h"

namespace pathrank::serving {

/// Coalescing knobs.
struct BatchingOptions {
  /// Flush when the pending rows (sequences) reach this many. A single
  /// request larger than the cap still flushes (whole, never split).
  size_t max_batch = 64;
  /// Flush at the latest this long after the oldest pending request
  /// arrived, full or not. 0 = flush as soon as the dispatcher wakes
  /// (lowest latency, least coalescing).
  int64_t max_wait_us = 200;
};

/// Coalescing front end over one ServingEngine. Thread-safe: any number of
/// threads may submit concurrently. The destructor drains every pending
/// request (futures never dangle), then joins the dispatcher.
///
/// Caveat: never block on a returned future from inside a global-pool
/// region (ParallelFor / ParallelForShards). The dispatcher's coalesced
/// scoring may itself need a pool region, and the pool runs one region at
/// a time — a region whose workers wait on queue futures deadlocks
/// against it. Submit-and-wait from plain threads (as the CLI and bench
/// drivers do); fire-and-forget submission from anywhere is fine.
class BatchingQueue {
 public:
  BatchingQueue(const ServingEngine& engine,
                const BatchingOptions& options = {});
  ~BatchingQueue();
  BatchingQueue(const BatchingQueue&) = delete;
  BatchingQueue& operator=(const BatchingQueue&) = delete;

  /// Queues `paths` for coalesced scoring. The future yields the paths
  /// sorted by descending score — bitwise identical to
  /// engine.ScoreBatch(paths).
  std::future<std::vector<ScoredPath>> SubmitScore(
      std::vector<routing::Path> paths) EXCLUDES(mu_);

  /// Generates candidates on the calling thread (exactly as Rank does),
  /// then queues them for coalesced scoring. The future yields what
  /// engine.Rank(source, destination[, gen]) would return, bitwise.
  std::future<std::vector<ScoredPath>> SubmitRank(
      graph::VertexId source, graph::VertexId destination) EXCLUDES(mu_);
  std::future<std::vector<ScoredPath>> SubmitRank(
      graph::VertexId source, graph::VertexId destination,
      const data::CandidateGenConfig& gen) EXCLUDES(mu_);

  const BatchingOptions& options() const { return options_; }

  /// Coalesced scoring calls issued so far.
  uint64_t num_flushes() const {
    return num_flushes_.load(std::memory_order_relaxed);
  }
  /// Requests completed so far (across all flushes).
  uint64_t num_requests() const {
    return num_requests_.load(std::memory_order_relaxed);
  }
  /// Sequences scored so far; num_rows()/num_flushes() is the achieved
  /// mean coalesced batch size.
  uint64_t num_rows() const {
    return num_rows_.load(std::memory_order_relaxed);
  }

 private:
  struct Request {
    std::vector<routing::Path> paths;
    std::promise<std::vector<ScoredPath>> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void DispatchLoop() EXCLUDES(mu_);
  /// Scores `taken` as one coalesced batch and completes their promises.
  /// Runs with mu_ released: the engine call underneath takes the
  /// coalescing-replica and pool locks, which all rank after mu_ anyway,
  /// but holding a queue lock across a forward pass would serialise
  /// submitters behind the GEMM.
  void Flush(std::vector<Request>& taken) EXCLUDES(mu_);

  const ServingEngine* engine_;
  BatchingOptions options_;

  /// Pending-queue lock. Ranked before the engine locks because the
  /// dispatcher (never a submitter) is the only thread that goes on to
  /// score — after dropping mu_ — and rank order must still cover the
  /// brief window where Flush's callees log under it.
  common::Mutex mu_{common::LockRank::kBatchingQueue, "batching.queue"};
  common::CondVar wake_;
  std::deque<Request> pending_ GUARDED_BY(mu_);
  size_t pending_rows_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;

  std::atomic<uint64_t> num_flushes_{0};
  std::atomic<uint64_t> num_requests_{0};
  std::atomic<uint64_t> num_rows_{0};

  std::thread dispatcher_;
};

}  // namespace pathrank::serving
