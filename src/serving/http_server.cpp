#include "serving/http_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <stdexcept>

#include "common/deadline.h"
#include "common/parse.h"
#include "common/percentile.h"
#include "common/stopwatch.h"
#include "serving/json.h"

namespace pathrank::serving {
namespace {

/// Caps the request line + headers. Bigger means a client that never
/// sends "\r\n\r\n" ties up a worker and its buffer; 16 KB fits any sane
/// request many times over.
constexpr size_t kMaxHeaderBytes = 16 * 1024;
/// Connections queued for a worker beyond this are closed outright —
/// a connection flood must not grow memory without bound.
constexpr size_t kMaxQueuedConnections = 1024;
/// Latency samples kept per endpoint for the /statsz percentiles.
constexpr size_t kLatencyRing = 1024;

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

/// One parsed request. Header names are lowercased at parse time.
struct Request {
  std::string method;
  std::string target;
  std::map<std::string, std::string> headers;
  std::string body;
  bool keep_alive = true;

  std::string Header(const std::string& name) const {
    const auto it = headers.find(name);
    return it != headers.end() ? it->second : std::string();
  }
};

/// One response about to be written.
struct Response {
  int status = 200;
  std::string body;
  int retry_after_s = -1;
};

Response ErrorResponse(int status, const std::string& message) {
  Response response;
  response.status = status;
  json::Object object;
  object["error"] = json::Value(message);
  response.body = json::Dump(json::Value(std::move(object)));
  return response;
}

/// Strict 1*DIGIT parse (RFC 9110 numeric fields): non-empty, digits
/// only — no sign, no whitespace, no trailing junk — and bounded well
/// inside uint64_t. Used by HttpClient for status codes, Content-Length
/// and Retry-After, where the std::atoi/strtoull "garbage parses as 0"
/// behaviour hid malformed responses from callers.
bool ParseDigits(const std::string& s, uint64_t* out) {
  if (s.empty() || s.size() > 18) return false;
  uint64_t value = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

bool SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool WriteResponse(int fd, const Response& response, bool keep_alive) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     StatusText(response.status) + "\r\n";
  head += "Content-Type: application/json\r\n";
  head += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  if (response.retry_after_s >= 0) {
    head += "Retry-After: " + std::to_string(response.retry_after_s) + "\r\n";
  }
  head += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  head += "\r\n";
  return SendAll(fd, head.data(), head.size()) &&
         SendAll(fd, response.body.data(), response.body.size());
}

/// Reads one request off `fd` into `request`, consuming from/refilling
/// `buffer` (bytes already read past the previous request).
enum class ReadResult { kOk, kClosed, kBadRequest };

ReadResult ReadRequest(int fd, std::string* buffer, Request* request,
                       size_t max_body_bytes, int* error_status,
                       const std::chrono::steady_clock::time_point deadline) {
  *error_status = 400;
  const auto past_deadline = [deadline] {
    return std::chrono::steady_clock::now() >= deadline;
  };
  // Headers: read until the blank line.
  size_t header_end = std::string::npos;
  for (;;) {
    header_end = buffer->find("\r\n\r\n");
    if (header_end != std::string::npos) break;
    if (buffer->size() > kMaxHeaderBytes) {
      *error_status = 431;
      return ReadResult::kBadRequest;
    }
    if (past_deadline()) return ReadResult::kClosed;
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) return ReadResult::kClosed;
    if (n < 0) {
      if (errno == EINTR) continue;
      return ReadResult::kClosed;  // timeout or reset: just drop it
    }
    buffer->append(chunk, static_cast<size_t>(n));
  }

  // Request line: METHOD SP TARGET SP VERSION.
  const std::string head = buffer->substr(0, header_end);
  const size_t line_end = head.find("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    return ReadResult::kBadRequest;
  }
  request->method = request_line.substr(0, sp1);
  request->target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = request_line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return ReadResult::kBadRequest;
  }

  // Headers, names lowercased.
  request->headers.clear();
  size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string line = head.substr(pos, eol - pos);
    pos = eol + 2;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) return ReadResult::kBadRequest;
    std::string name = line.substr(0, colon);
    // Whitespace before the colon must be a 400 (RFC 9112 §5.1), not a
    // silently ignored header: "Content-Length : N" stored under the
    // key "content-length " would mis-frame the body — the third
    // smuggling vector next to the TE+CL and duplicate-CL ones below.
    if (name.empty() || name.back() == ' ' || name.back() == '\t') {
      return ReadResult::kBadRequest;
    }
    std::transform(name.begin(), name.end(), name.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    // Trim optional whitespace (space or HTAB, RFC 9110 §5.6.3) off both
    // ends of the value: "Content-Length:\t5 " must parse as "5".
    size_t value_begin = colon + 1;
    while (value_begin < line.size() &&
           (line[value_begin] == ' ' || line[value_begin] == '\t')) {
      ++value_begin;
    }
    size_t value_end = line.size();
    while (value_end > value_begin &&
           (line[value_end - 1] == ' ' || line[value_end - 1] == '\t')) {
      --value_end;
    }
    // Duplicate Content-Length is the other RFC 7230 §3.3.3 desync
    // vector (a proxy framing by the first value, us by the last):
    // reject instead of letting the map fold it last-one-wins.
    if (name == "content-length" && request->headers.count(name) > 0) {
      return ReadResult::kBadRequest;
    }
    request->headers[name] = line.substr(value_begin, value_end - value_begin);
  }

  // Keep-alive: HTTP/1.1 default unless "Connection: close"; HTTP/1.0
  // only with an explicit keep-alive.
  std::string connection = request->Header("connection");
  std::transform(connection.begin(), connection.end(), connection.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  request->keep_alive = version == "HTTP/1.1" ? connection != "close"
                                              : connection == "keep-alive";

  // Body, Content-Length framed. Chunked is rejected OUTRIGHT — even
  // alongside a Content-Length. Framing a TE+CL message by the length
  // is the classic request-smuggling desync (RFC 7230 §3.3.3): leftover
  // chunk bytes would be parsed as the next request on this connection.
  buffer->erase(0, header_end + 4);
  if (!request->Header("transfer-encoding").empty()) {
    return ReadResult::kBadRequest;
  }
  size_t content_length = 0;
  const auto length_it = request->headers.find("content-length");
  if (length_it != request->headers.end()) {
    // 1*DIGIT per RFC 9110: the whole-token unsigned parse rejects "-1",
    // "+5", trailing junk, and a value past uint64 (no strtoull-style
    // saturation to ULLONG_MAX).
    uint64_t parsed = 0;
    if (!ParseUInt64(length_it->second, &parsed)) {
      return ReadResult::kBadRequest;
    }
    content_length = static_cast<size_t>(parsed);
  }
  if (content_length > max_body_bytes) {
    *error_status = 413;
    return ReadResult::kBadRequest;
  }
  // curl sends "Expect: 100-continue" before larger bodies and waits for
  // the interim response. The token is case-insensitive (RFC 9110
  // §10.1.1) — a client sending "100-Continue" must not stall.
  std::string expect = request->Header("expect");
  std::transform(expect.begin(), expect.end(), expect.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (expect.find("100-continue") != std::string::npos) {
    const char kContinue[] = "HTTP/1.1 100 Continue\r\n\r\n";
    if (!SendAll(fd, kContinue, sizeof(kContinue) - 1)) {
      return ReadResult::kClosed;
    }
  }
  while (buffer->size() < content_length) {
    if (past_deadline()) return ReadResult::kClosed;
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) return ReadResult::kClosed;
    if (n < 0) {
      if (errno == EINTR) continue;
      return ReadResult::kClosed;
    }
    buffer->append(chunk, static_cast<size_t>(n));
  }
  request->body = buffer->substr(0, content_length);
  buffer->erase(0, content_length);
  return ReadResult::kOk;
}

/// Extracts a vertex id (integral, in [0, num_vertices)) or returns
/// false with a message.
bool ParseVertexId(const json::Value* value, size_t num_vertices,
                   const char* what, graph::VertexId* out,
                   std::string* message) {
  if (value == nullptr || !value->is_number()) {
    *message = std::string("missing or non-numeric \"") + what + "\"";
    return false;
  }
  const double d = value->number_value();
  // The VertexId-representability bound is unconditional — casting an
  // out-of-range double would be UB even when the num_vertices check is
  // disabled.
  if (d < 0 || d != std::floor(d) ||
      d > static_cast<double>(std::numeric_limits<graph::VertexId>::max())) {
    *message = std::string("\"") + what +
               "\" must be a non-negative integer vertex id";
    return false;
  }
  if (num_vertices > 0 && d >= static_cast<double>(num_vertices)) {
    *message = std::string("\"") + what + "\" is out of range (network has " +
               std::to_string(num_vertices) + " vertices)";
    return false;
  }
  *out = static_cast<graph::VertexId>(d);
  return true;
}

json::Value ScoredPathJson(const ScoredPath& scored, bool with_totals) {
  json::Object object;
  object["score"] = json::Value(scored.score);
  json::Array vertices;
  vertices.reserve(scored.path.vertices.size());
  for (const auto v : scored.path.vertices) {
    vertices.emplace_back(static_cast<uint64_t>(v));
  }
  object["vertices"] = json::Value(std::move(vertices));
  if (with_totals) {
    object["length_m"] = json::Value(scored.path.length_m);
    object["time_s"] = json::Value(scored.path.time_s);
  }
  return json::Value(std::move(object));
}

json::Value RankingJson(const std::vector<ScoredPath>& ranking,
                        bool with_totals) {
  json::Array candidates;
  candidates.reserve(ranking.size());
  for (const auto& scored : ranking) {
    candidates.push_back(ScoredPathJson(scored, with_totals));
  }
  json::Object object;
  object["candidates"] = json::Value(std::move(candidates));
  return json::Value(std::move(object));
}

Response HandleRank(const HttpBackend& backend, const std::string& body);
Response HandleScore(const HttpBackend& backend, const std::string& body);
/// What /v1/route did beyond the status code — feeds the server-level
/// deadline/degradation counters ServeConnection maintains.
struct RouteOutcome {
  bool deadline_exceeded = false;
  bool degraded = false;
};
Response HandleRoute(const HttpBackend& backend, const Request& request,
                     const HttpServerOptions& options, RouteOutcome* outcome);
Response HandleTraffic(const HttpBackend& backend, const std::string& body);
json::Value StatszJson(const HttpServerStats& stats,
                       const HttpServerOptions& options);

}  // namespace

/// Per-endpoint counters + a ring of recent latencies for percentiles.
struct HttpServer::Endpoint {
  /// Near-leaf rank: Record() runs after the response is written, with
  /// every request lock long dropped, and nothing is acquired under it.
  /// (All four endpoints share the rank — no thread holds two at once.)
  mutable common::Mutex mu{common::LockRank::kHttpEndpointStats,
                           "http.endpoint_stats"};
  uint64_t requests GUARDED_BY(mu) = 0;
  uint64_t errors GUARDED_BY(mu) = 0;
  uint64_t timeouts GUARDED_BY(mu) = 0;
  double latency_sum_s GUARDED_BY(mu) = 0;
  std::vector<double> ring GUARDED_BY(mu);
  size_t ring_next GUARDED_BY(mu) = 0;

  void Record(double latency_s, bool error, bool timeout = false)
      EXCLUDES(mu) {
    common::MutexLock lock(mu);
    ++requests;
    if (error) ++errors;
    if (timeout) ++timeouts;
    latency_sum_s += latency_s;
    if (ring.size() < kLatencyRing) {
      ring.push_back(latency_s);
    } else {
      ring[ring_next] = latency_s;
      ring_next = (ring_next + 1) % kLatencyRing;
    }
  }

  HttpEndpointStats Snapshot() const EXCLUDES(mu) {
    HttpEndpointStats stats;
    std::vector<double> sorted;
    {
      // Copy under the lock, sort outside it: Record() sits on the
      // request hot path, and /statsz polling (admission-exempt, so
      // hammered hardest during overload) must not stall it for a
      // 1024-element sort.
      common::MutexLock lock(mu);
      stats.requests = requests;
      stats.errors = errors;
      stats.timeouts = timeouts;
      if (requests > 0) {
        stats.latency_mean_s = latency_sum_s / static_cast<double>(requests);
      }
      sorted = ring;
    }
    if (!sorted.empty()) {
      std::sort(sorted.begin(), sorted.end());
      stats.latency_p50_s = PercentileSorted(sorted, 0.50);
      stats.latency_p99_s = PercentileSorted(sorted, 0.99);
    }
    return stats;
  }
};

HttpServer::HttpServer(HttpBackend backend, const HttpServerOptions& options)
    : backend_(std::move(backend)),
      options_(options),
      rank_stats_(std::make_unique<Endpoint>()),
      score_stats_(std::make_unique<Endpoint>()),
      route_stats_(std::make_unique<Endpoint>()),
      traffic_stats_(std::make_unique<Endpoint>()) {
  if (!backend_.rank || !backend_.score) {
    throw std::invalid_argument("HttpBackend needs rank and score handlers");
  }
  if (options_.max_inflight == 0) options_.max_inflight = 1;
  // Zero timeouts would turn every recv into an immediate failure;
  // clamp rather than surprise (timeval has no "infinite" either).
  if (options_.idle_timeout_s < 1) options_.idle_timeout_s = 1;
  if (options_.request_deadline_s < 1) options_.request_deadline_s = 1;
  if (options_.num_threads == 0) {
    // Headroom above the admission budget: the budget stays the binding
    // constraint, and /healthz keeps a worker while the engine is full.
    options_.num_threads = options_.max_inflight + 4;
  }
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Start() {
  if (!stop_.load()) return;  // already serving

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("invalid bind address: " + options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string what = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bind(" + options_.bind_address + ":" +
                             std::to_string(options_.port) +
                             ") failed: " + what);
  }
  if (::listen(listen_fd_, 256) < 0) {
    const std::string what = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("listen() failed: " + what);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  // Non-blocking listener + poll() in the accept loop: the portable way
  // for Stop() to be noticed promptly (shutdown() on a LISTENING socket
  // wakes accept() on Linux but fails with ENOTCONN on the BSDs).
  const int listen_flags = ::fcntl(listen_fd_, F_GETFL, 0);
  ::fcntl(listen_fd_, F_SETFL, listen_flags | O_NONBLOCK);

  stop_.store(false);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(options_.num_threads);
  for (size_t i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void HttpServer::Stop() {
  // One joiner at a time: Stop is advertised as callable from any
  // thread, and two racing callers must not both join the same
  // std::thread (UB). The loser blocks here, then finds nothing to do.
  common::MutexLock stop_lock(stop_mu_);
  if (stop_.exchange(true)) {
    // Never started, or already stopped: nothing to join.
    if (!acceptor_.joinable() && workers_.empty()) return;
  }
  // The acceptor polls with a bounded timeout, so it observes stop_
  // within a tick on its own; the listener is closed only after the
  // join, which is what keeps AcceptLoop from ever racing a close or
  // accepting on a recycled fd number.
  {
    // Live connections: a half-close makes any blocked recv() return so
    // the worker can finish its in-flight response and exit.
    common::MutexLock lock(conn_mu_);
    for (const int fd : active_fds_) ::shutdown(fd, SHUT_RD);
  }
  conn_cv_.NotifyAll();
  {
    // Taken (and immediately dropped) so the notify cannot slip between
    // an Admit() waiter's predicate check and its block — the classic
    // lost-wakeup, which would stall shutdown by up to max_queue_wait_us.
    common::MutexLock admit_lock(admit_mu_);
  }
  admit_cv_.NotifyAll();
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Accepted-but-unserviced connections are dropped.
  common::MutexLock lock(conn_mu_);
  for (const int fd : conn_queue_) ::close(fd);
  conn_queue_.clear();
}

void HttpServer::AcceptLoop() {
  while (!stop_.load()) {
    // Bounded poll rather than a blocking accept, so Stop() is observed
    // within one tick without touching the listener from another thread.
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stop_
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stop_.load()) break;
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK) {
        continue;
      }
      // Resource exhaustion (fd table full, no buffers) is transient:
      // back off and keep accepting — exiting here would permanently
      // stop admitting new connections while /healthz still answers ok
      // on existing ones.
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      break;  // listener gone
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    // Accepted sockets must block (the workers' recv/send model); some
    // platforms inherit the listener's O_NONBLOCK, so clear it.
    const int fd_flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, fd_flags & ~O_NONBLOCK);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    timeval idle{};
    idle.tv_sec = options_.idle_timeout_s;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &idle, sizeof(idle));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &idle, sizeof(idle));
    {
      common::MutexLock lock(conn_mu_);
      if (conn_queue_.size() >= kMaxQueuedConnections) {
        ::close(fd);  // connection flood: drop rather than grow
        continue;
      }
      conn_queue_.push_back(fd);
    }
    conn_cv_.NotifyOne();
  }
}

void HttpServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      common::MutexLock lock(conn_mu_);
      while (!(stop_.load() || !conn_queue_.empty())) conn_cv_.Wait(conn_mu_);
      // Once stopping, queued connections are dropped by Stop(), not
      // served — picking one up here could block on a silent client.
      if (stop_.load()) return;
      if (conn_queue_.empty()) continue;
      fd = conn_queue_.front();
      conn_queue_.pop_front();
      active_fds_.insert(fd);
    }
    ServeConnection(fd);
    {
      common::MutexLock lock(conn_mu_);
      active_fds_.erase(fd);
    }
    ::close(fd);
  }
}

bool HttpServer::Admit() {
  common::MutexLock lock(admit_mu_);
  if (inflight_ < options_.max_inflight) {
    ++inflight_;
    return true;
  }
  if (options_.max_queue_wait_us <= 0) return false;
  ++admission_waiting_;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(options_.max_queue_wait_us);
  while (!(stop_.load() || inflight_ < options_.max_inflight)) {
    if (admit_cv_.WaitUntil(admit_mu_, deadline) ==
        std::cv_status::timeout) {
      break;
    }
  }
  --admission_waiting_;
  if (stop_.load() || inflight_ >= options_.max_inflight) return false;
  ++inflight_;
  return true;
}

void HttpServer::Release() {
  {
    common::MutexLock lock(admit_mu_);
    --inflight_;
  }
  admit_cv_.NotifyOne();
}

void HttpServer::ServeConnection(int fd) {
  std::string buffer;
  for (;;) {
    Request request;
    int error_status = 400;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::seconds(options_.request_deadline_s);
    const ReadResult read = ReadRequest(fd, &buffer, &request,
                                        options_.max_body_bytes,
                                        &error_status, deadline);
    if (read == ReadResult::kClosed) return;
    if (read == ReadResult::kBadRequest) {
      // The stream may be mid-body garbage: answer and hang up. FIN
      // first (shutdown), then drain what the client is still sending —
      // close() with unread bytes in the receive queue would RST and
      // destroy the error response before the client reads it. The
      // drain is capped so a hostile endless body cannot pin the worker.
      Response response = ErrorResponse(
          error_status, error_status == 413 ? "request body too large"
                                            : "malformed HTTP request");
      WriteResponse(fd, response, /*keep_alive=*/false);
      ::shutdown(fd, SHUT_WR);
      char sink[4096];
      size_t drained = 0;
      while (drained < (8u << 20) &&
             std::chrono::steady_clock::now() < deadline) {
        const ssize_t n = ::recv(fd, sink, sizeof(sink), 0);
        if (n <= 0) break;
        drained += static_cast<size_t>(n);
      }
      return;
    }
    requests_total_.fetch_add(1, std::memory_order_relaxed);

    Response response;
    if (request.target == "/healthz") {
      if (request.method != "GET") {
        response = ErrorResponse(405, "use GET");
      } else {
        json::Object object;
        object["status"] = json::Value("ok");
        object["swap_count"] = json::Value(
            backend_.swap_count ? backend_.swap_count() : uint64_t{0});
        // Only servers with a live-graph backend report an epoch — the
        // body of a graph-less server stays byte-identical to before the
        // endpoint existed.
        if (backend_.graph_epoch) {
          object["graph_epoch"] = json::Value(backend_.graph_epoch());
        }
        {
          common::MutexLock lock(admit_mu_);
          object["inflight"] = json::Value(static_cast<uint64_t>(inflight_));
        }
        object["max_inflight"] =
            json::Value(static_cast<uint64_t>(options_.max_inflight));
        response.body = json::Dump(json::Value(std::move(object)));
      }
    } else if (request.target == "/statsz") {
      if (request.method != "GET") {
        response = ErrorResponse(405, "use GET");
      } else {
        response.body = json::Dump(StatszJson(stats(), options_));
      }
    } else if (request.target == "/v1/rank" ||
               request.target == "/v1/score" ||
               request.target == "/v1/route" ||
               request.target == "/v1/traffic") {
      const bool is_rank = request.target == "/v1/rank";
      const bool is_route = request.target == "/v1/route";
      const bool is_traffic = request.target == "/v1/traffic";
      if (request.method != "POST") {
        response = ErrorResponse(405, "use POST");
      } else if (is_route && !backend_.route) {
        // Cheap rejection before admission: no backend work happens.
        response = ErrorResponse(
            404, "route planning is not enabled on this server");
      } else if (is_traffic && !backend_.traffic) {
        response = ErrorResponse(
            404, "live traffic ingestion is not enabled on this server");
      } else if (!Admit()) {
        shed_total_.fetch_add(1, std::memory_order_relaxed);
        response = ErrorResponse(429, "overloaded: max_inflight reached");
        response.retry_after_s = options_.retry_after_s;
      } else {
        Stopwatch watch;
        RouteOutcome outcome;
        try {
          response = is_route
                         ? HandleRoute(backend_, request, options_, &outcome)
                     : is_traffic ? HandleTraffic(backend_, request.body)
                     : is_rank    ? HandleRank(backend_, request.body)
                                  : HandleScore(backend_, request.body);
        } catch (...) {
          // Non-std exceptions from the backend seam (and bad_alloc in
          // the response path) must not escape this std::thread —
          // std::terminate would take the whole server down — and must
          // not leak the admission slot.
          response = ErrorResponse(500, "internal error");
        }
        Release();
        if (outcome.deadline_exceeded) {
          deadline_exceeded_total_.fetch_add(1, std::memory_order_relaxed);
        }
        if (outcome.degraded) {
          degraded_total_.fetch_add(1, std::memory_order_relaxed);
        }
        (is_route     ? route_stats_
         : is_traffic ? traffic_stats_
         : is_rank    ? rank_stats_
                      : score_stats_)
            ->Record(watch.ElapsedSeconds(), response.status >= 400,
                     response.status == 504);
      }
    } else {
      response = ErrorResponse(404, "no such endpoint: " + request.target);
    }

    const bool keep_alive = request.keep_alive && !stop_.load();
    if (!WriteResponse(fd, response, keep_alive)) return;
    if (!keep_alive) return;
  }
}

namespace {

Response HandleRank(const HttpBackend& backend, const std::string& body) {
  std::string parse_error;
  const auto parsed = json::Parse(body, &parse_error);
  if (!parsed) return ErrorResponse(400, "invalid JSON: " + parse_error);
  graph::VertexId source = 0;
  graph::VertexId destination = 0;
  std::string message;
  if (!ParseVertexId(parsed->Find("source"), backend.num_vertices, "source",
                     &source, &message) ||
      !ParseVertexId(parsed->Find("destination"), backend.num_vertices,
                     "destination", &destination, &message)) {
    return ErrorResponse(400, message);
  }
  try {
    const auto ranking = backend.rank(source, destination);
    Response response;
    response.body = json::Dump(RankingJson(ranking, /*with_totals=*/true));
    return response;
  } catch (const std::exception& e) {
    // Server log gets the details; the wire gets a generic body — the
    // exception text can name internal paths/state, and the default
    // bind is 0.0.0.0.
    std::fprintf(stderr, "http: /v1/rank backend error: %s\n", e.what());
    return ErrorResponse(500, "internal error");
  } catch (...) {
    std::fprintf(stderr, "http: /v1/rank backend error (non-std)\n");
    return ErrorResponse(500, "internal error");
  }
}

Response HandleScore(const HttpBackend& backend, const std::string& body) {
  std::string parse_error;
  const auto parsed = json::Parse(body, &parse_error);
  if (!parsed) return ErrorResponse(400, "invalid JSON: " + parse_error);
  const json::Value* paths_value = parsed->Find("paths");
  if (paths_value == nullptr || !paths_value->is_array()) {
    return ErrorResponse(400, "missing or non-array \"paths\"");
  }
  std::vector<routing::Path> paths;
  paths.reserve(paths_value->array().size());
  for (const auto& path_value : paths_value->array()) {
    if (!path_value.is_array() || path_value.array().empty()) {
      return ErrorResponse(400,
                           "every path must be a non-empty vertex-id array");
    }
    routing::Path path;
    path.vertices.reserve(path_value.array().size());
    for (const auto& vertex_value : path_value.array()) {
      graph::VertexId vertex = 0;
      std::string message;
      if (!ParseVertexId(&vertex_value, backend.num_vertices, "paths[][]",
                         &vertex, &message)) {
        return ErrorResponse(400, message);
      }
      path.vertices.push_back(vertex);
    }
    paths.push_back(std::move(path));
  }
  try {
    std::vector<ScoredPath> ranking;
    if (!paths.empty()) ranking = backend.score(std::move(paths));
    Response response;
    response.body = json::Dump(RankingJson(ranking, /*with_totals=*/false));
    return response;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "http: /v1/score backend error: %s\n", e.what());
    return ErrorResponse(500, "internal error");
  } catch (...) {
    std::fprintf(stderr, "http: /v1/score backend error (non-std)\n");
    return ErrorResponse(500, "internal error");
  }
}

/// Renders a RouteResult's ranked paths: the /v1/rank candidate fields
/// plus the enumeration cost and the edge-id list (clients replaying the
/// route on the network need edges, not just vertices — parallel edges
/// make the vertex list ambiguous).
json::Value RouteJson(const RouteResult& result) {
  json::Array routes;
  routes.reserve(result.ranked.size());
  for (const auto& scored : result.ranked) {
    json::Object route;
    route["score"] = json::Value(scored.score);
    route["cost"] = json::Value(scored.path.cost);
    route["length_m"] = json::Value(scored.path.length_m);
    route["time_s"] = json::Value(scored.path.time_s);
    json::Array vertices;
    vertices.reserve(scored.path.vertices.size());
    for (const auto v : scored.path.vertices) {
      vertices.emplace_back(static_cast<uint64_t>(v));
    }
    route["vertices"] = json::Value(std::move(vertices));
    json::Array edges;
    edges.reserve(scored.path.edges.size());
    for (const auto e : scored.path.edges) {
      edges.emplace_back(static_cast<uint64_t>(e));
    }
    route["edges"] = json::Value(std::move(edges));
    routes.push_back(json::Value(std::move(route)));
  }
  json::Object object;
  // The engine that enumerated this candidate set. For a cache hit this
  // is the engine that SEEDED the entry (the algo is cached alongside the
  // paths), so a hit's body stays byte-identical to the miss it repeats.
  object["algo"] = json::Value(result.algo);
  object["cache_hit"] = json::Value(result.cache_hit);
  // Emitted only when true: a deadline-free request's body stays byte
  // identical to a server that predates deadlines, which the route
  // round-trip tests (and any byte-diffing client) rely on.
  if (result.degraded) object["degraded"] = json::Value(true);
  // Unconditional (0 on a graph-less server): a hit and the miss that
  // seeded it carry the same epoch, so the cache-hit byte-identity
  // guarantee is unaffected — and a client can pin any answer to the
  // graph version it was computed against.
  object["graph_epoch"] = json::Value(result.graph_epoch);
  object["routes"] = json::Value(std::move(routes));
  return json::Value(std::move(object));
}

/// Route error bodies carry the taxonomy slug next to the message so
/// clients can branch on "unreachable" vs "unknown_vertex" without
/// string-matching prose.
Response RouteErrorResponse(int http_status, const RouteResult& result) {
  Response response;
  response.status = http_status;
  json::Object object;
  object["error"] = json::Value(result.message);
  object["status"] = json::Value(RouteStatusSlug(result.status));
  response.body = json::Dump(json::Value(std::move(object)));
  return response;
}

Response HandleRoute(const HttpBackend& backend, const Request& request,
                     const HttpServerOptions& options, RouteOutcome* outcome) {
  // Local validation failures carry the taxonomy slug too — clients
  // branching on body["status"] per the docs must never see a bare
  // {"error": ...} from this endpoint. That includes the parse failure
  // below: unparseable JSON is as much a bad request as a bad field.
  const auto bad_request = [](std::string message) {
    RouteResult result;
    result.status = RouteStatus::kBadRequest;
    result.message = std::move(message);
    return RouteErrorResponse(400, result);
  };
  std::string parse_error;
  const auto parsed = json::Parse(request.body, &parse_error);
  if (!parsed) return bad_request("invalid JSON: " + parse_error);
  graph::VertexId source = 0;
  graph::VertexId destination = 0;
  std::string message;
  // num_vertices is deliberately NOT passed: the range check belongs to
  // the route backend, so an out-of-range id earns the unknown_vertex
  // slug instead of this generic 400. (ParseVertexId still enforces the
  // VertexId-representability bound — casting an out-of-range double
  // would be UB.)
  if (!ParseVertexId(parsed->Find("source"), /*num_vertices=*/0, "source",
                     &source, &message) ||
      !ParseVertexId(parsed->Find("destination"), /*num_vertices=*/0,
                     "destination", &destination, &message)) {
    return bad_request(message);
  }
  int k = 0;  // 0 = the planner's configured default
  if (const json::Value* k_value = parsed->Find("k"); k_value != nullptr) {
    const double d = k_value->number_value();
    // The int-representability bound is checked here because casting an
    // out-of-range double is UB; the planner's max_k policy cap comes
    // after.
    if (!k_value->is_number() || d < 1 || d != std::floor(d) ||
        d > static_cast<double>(std::numeric_limits<int>::max())) {
      return bad_request("\"k\" must be a positive integer");
    }
    k = static_cast<int>(d);
  }
  // Budget: the budget_ms body field wins over the X-Deadline-Ms header
  // (the field travels with the query; the header is for clients that
  // cannot touch the body, e.g. proxies stamping a global budget).
  // Anchored HERE — before the backend call — so time lost between
  // anchor and enumeration (a stalled engine, an injected fault) counts
  // against the budget rather than extending it.
  int64_t budget_ms = -1;  // -1 = client sent nothing
  if (const json::Value* b = parsed->Find("budget_ms"); b != nullptr) {
    const double d = b->number_value();
    if (!b->is_number() || d < 1 || d != std::floor(d) ||
        d > static_cast<double>(std::numeric_limits<int32_t>::max())) {
      return bad_request("\"budget_ms\" must be a positive integer");
    }
    budget_ms = static_cast<int64_t>(d);
  } else if (const std::string header = request.Header("x-deadline-ms");
             !header.empty()) {
    uint64_t parsed_ms = 0;
    if (!ParseDigits(header, &parsed_ms) || parsed_ms == 0) {
      return bad_request("X-Deadline-Ms must be a positive integer");
    }
    budget_ms = static_cast<int64_t>(parsed_ms);
  }
  if (budget_ms < 0) budget_ms = options.default_deadline_ms;  // 0 = none
  if (options.max_deadline_ms > 0 &&
      (budget_ms == 0 || budget_ms > options.max_deadline_ms)) {
    budget_ms = options.max_deadline_ms;
  }
  RouteRequest route_request{source, destination, k};
  if (budget_ms > 0) route_request.deadline = Deadline::AfterMs(budget_ms);
  try {
    const RouteResult result = backend.route(route_request);
    outcome->deadline_exceeded =
        result.status == RouteStatus::kDeadlineExceeded;
    outcome->degraded = result.degraded;
    switch (result.status) {
      case RouteStatus::kOk: {
        Response response;
        response.body = json::Dump(RouteJson(result));
        return response;
      }
      case RouteStatus::kUnreachable:
        return RouteErrorResponse(404, result);
      case RouteStatus::kDeadlineExceeded:
        return RouteErrorResponse(504, result);
      default:
        return RouteErrorResponse(400, result);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "http: /v1/route backend error: %s\n", e.what());
    return ErrorResponse(500, "internal error");
  } catch (...) {
    std::fprintf(stderr, "http: /v1/route backend error (non-std)\n");
    return ErrorResponse(500, "internal error");
  }
}

/// Traffic error bodies mirror the /v1/route convention: prose message
/// plus the stable TrafficStatusSlug for clients to branch on.
Response TrafficErrorResponse(int http_status, const TrafficResult& result) {
  Response response;
  response.status = http_status;
  json::Object object;
  object["error"] = json::Value(result.message);
  object["status"] = json::Value(TrafficStatusSlug(result.status));
  response.body = json::Dump(json::Value(std::move(object)));
  return response;
}

Response HandleTraffic(const HttpBackend& backend, const std::string& body) {
  // Shape/type errors found here and semantic errors found by the
  // backend (GraphStore::ApplyTraffic) share one taxonomy; this layer
  // only ever earns the generic bad_request slug.
  const auto bad_request = [](std::string message) {
    TrafficResult result;
    result.status = TrafficStatus::kBadUpdate;
    result.message = std::move(message);
    return TrafficErrorResponse(400, result);
  };
  std::string parse_error;
  const auto parsed = json::Parse(body, &parse_error);
  if (!parsed) return bad_request("invalid JSON: " + parse_error);
  const json::Value* updates_value = parsed->Find("updates");
  if (updates_value == nullptr || !updates_value->is_array()) {
    return bad_request("missing or non-array \"updates\"");
  }
  std::vector<graph::TrafficUpdate> updates;
  updates.reserve(updates_value->array().size());
  for (const auto& update_value : updates_value->array()) {
    if (!update_value.is_object()) {
      return bad_request("every update must be an object");
    }
    graph::TrafficUpdate update;
    const json::Value* edge = update_value.Find("edge");
    if (edge == nullptr || !edge->is_number()) {
      return bad_request("missing or non-numeric \"edge\"");
    }
    const double d = edge->number_value();
    // The EdgeId-representability bound is checked here because casting
    // an out-of-range double is UB; the existence check against the
    // CURRENT graph belongs to the backend (unknown_edge slug).
    if (d < 0 || d != std::floor(d) ||
        d > static_cast<double>(std::numeric_limits<graph::EdgeId>::max())) {
      return bad_request("\"edge\" must be a non-negative integer edge id");
    }
    update.edge = static_cast<graph::EdgeId>(d);
    if (const json::Value* tt = update_value.Find("travel_time_s");
        tt != nullptr) {
      // Type check only — positivity/finiteness is the backend's call so
      // the rule lives in exactly one place. (A literal NaN never gets
      // here: it is not valid JSON and fails the parse above.)
      if (!tt->is_number()) {
        return bad_request("\"travel_time_s\" must be a number");
      }
      update.travel_time_s = tt->number_value();
      update.has_travel_time = true;
    }
    if (const json::Value* closed = update_value.Find("closed");
        closed != nullptr) {
      if (!closed->is_bool()) {
        return bad_request("\"closed\" must be a boolean");
      }
      update.closed = closed->bool_value();
      update.has_closed = true;
    }
    updates.push_back(update);
  }
  try {
    const TrafficResult result = backend.traffic(updates);
    if (result.status != TrafficStatus::kOk) {
      return TrafficErrorResponse(400, result);
    }
    Response response;
    json::Object object;
    object["epoch"] = json::Value(result.epoch);
    object["cost_updates"] =
        json::Value(static_cast<uint64_t>(result.cost_updates));
    object["closures"] = json::Value(static_cast<uint64_t>(result.closures));
    object["reopenings"] =
        json::Value(static_cast<uint64_t>(result.reopenings));
    response.body = json::Dump(json::Value(std::move(object)));
    return response;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "http: /v1/traffic backend error: %s\n", e.what());
    return ErrorResponse(500, "internal error");
  } catch (...) {
    std::fprintf(stderr, "http: /v1/traffic backend error (non-std)\n");
    return ErrorResponse(500, "internal error");
  }
}

json::Value StatszJson(const HttpServerStats& stats,
                       const HttpServerOptions& options) {
  json::Object object;
  object["connections_accepted"] = json::Value(stats.connections_accepted);
  object["requests_total"] = json::Value(stats.requests_total);
  object["shed_total"] = json::Value(stats.shed_total);
  object["deadline_exceeded_count"] =
      json::Value(stats.deadline_exceeded_total);
  object["degraded_count"] = json::Value(stats.degraded_total);
  object["inflight"] = json::Value(stats.inflight);
  object["admission_waiting"] = json::Value(stats.admission_waiting);
  object["max_inflight"] =
      json::Value(static_cast<uint64_t>(options.max_inflight));
  object["max_queue_wait_us"] =
      json::Value(static_cast<int64_t>(options.max_queue_wait_us));
  object["graph_epoch"] = json::Value(stats.graph_epoch);
  {
    json::Object planner;
    planner["cache_hits"] = json::Value(stats.route_planner.cache_hits);
    planner["cache_misses"] = json::Value(stats.route_planner.cache_misses);
    planner["invalidations"] =
        json::Value(stats.route_planner.invalidations);
    planner["single_flight_waits"] =
        json::Value(stats.route_planner.single_flight_waits);
    planner["enumerations"] = json::Value(stats.route_planner.enumerations);
    planner["alt_fallbacks"] =
        json::Value(stats.route_planner.alt_fallbacks);
    object["route_planner"] = json::Value(std::move(planner));
  }
  {
    json::Object preprocessing;
    preprocessing["enabled"] = json::Value(stats.preprocessing.enabled);
    preprocessing["landmarks"] = json::Value(
        static_cast<uint64_t>(stats.preprocessing.landmarks));
    preprocessing["rebuilds"] = json::Value(stats.preprocessing.rebuilds);
    preprocessing["rebuild_p50_s"] =
        json::Value(stats.preprocessing.rebuild_p50_s);
    preprocessing["rebuild_p99_s"] =
        json::Value(stats.preprocessing.rebuild_p99_s);
    preprocessing["epochs_behind"] =
        json::Value(stats.preprocessing.epochs_behind);
    object["preprocessing"] = json::Value(std::move(preprocessing));
  }
  json::Object endpoints;
  const auto endpoint_json = [](const HttpEndpointStats& endpoint_stats) {
    json::Object endpoint;
    endpoint["requests"] = json::Value(endpoint_stats.requests);
    endpoint["errors"] = json::Value(endpoint_stats.errors);
    endpoint["timeouts"] = json::Value(endpoint_stats.timeouts);
    endpoint["latency_mean_s"] = json::Value(endpoint_stats.latency_mean_s);
    endpoint["latency_p50_s"] = json::Value(endpoint_stats.latency_p50_s);
    endpoint["latency_p99_s"] = json::Value(endpoint_stats.latency_p99_s);
    return json::Value(std::move(endpoint));
  };
  endpoints["/v1/rank"] = endpoint_json(stats.rank);
  endpoints["/v1/score"] = endpoint_json(stats.score);
  endpoints["/v1/route"] = endpoint_json(stats.route);
  endpoints["/v1/traffic"] = endpoint_json(stats.traffic);
  object["endpoints"] = json::Value(std::move(endpoints));
  return json::Value(std::move(object));
}

}  // namespace

HttpServerStats HttpServer::stats() const {
  HttpServerStats stats;
  stats.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  stats.requests_total = requests_total_.load(std::memory_order_relaxed);
  stats.shed_total = shed_total_.load(std::memory_order_relaxed);
  stats.deadline_exceeded_total =
      deadline_exceeded_total_.load(std::memory_order_relaxed);
  stats.degraded_total = degraded_total_.load(std::memory_order_relaxed);
  {
    common::MutexLock lock(admit_mu_);
    stats.inflight = inflight_;
    stats.admission_waiting = admission_waiting_;
  }
  if (backend_.graph_epoch) stats.graph_epoch = backend_.graph_epoch();
  if (backend_.route_planner_stats) {
    stats.route_planner = backend_.route_planner_stats();
  }
  if (backend_.preprocessing_stats) {
    stats.preprocessing = backend_.preprocessing_stats();
  }
  stats.rank = rank_stats_->Snapshot();
  stats.score = score_stats_->Snapshot();
  stats.route = route_stats_->Snapshot();
  stats.traffic = traffic_stats_->Snapshot();
  return stats;
}

// ---- HttpClient --------------------------------------------------------

HttpClient::~HttpClient() { Close(); }

void HttpClient::Connect(uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error("socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string what = std::strerror(errno);
    Close();
    throw std::runtime_error("connect(127.0.0.1:" + std::to_string(port) +
                             ") failed: " + what);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // A stalled server must fail the request, not hang the test/bench
  // process in recv() past every wall cap.
  timeval io_timeout{};
  io_timeout.tv_sec = 10;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &io_timeout, sizeof(io_timeout));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &io_timeout, sizeof(io_timeout));
  port_ = port;
  buffer_.clear();
}

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

HttpClient::Response HttpClient::Request(const std::string& method,
                                         const std::string& path,
                                         const std::string& body) {
  if (fd_ < 0) throw std::runtime_error("HttpClient is not connected");
  std::string request = method + " " + path + " HTTP/1.1\r\n";
  request += "Host: 127.0.0.1\r\n";
  request += "Content-Type: application/json\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  request += "\r\n";
  request += body;
  if (!SendAll(fd_, request.data(), request.size())) {
    Close();
    throw std::runtime_error("send failed");
  }

  // Read status line + headers.
  size_t header_end;
  for (;;) {
    header_end = buffer_.find("\r\n\r\n");
    if (header_end != std::string::npos) break;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      Close();
      throw std::runtime_error("connection closed before response");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
  const std::string head = buffer_.substr(0, header_end);
  buffer_.erase(0, header_end + 4);

  Response response;
  // Status line: "HTTP/1.x SP 3DIGIT SP reason". std::atoi here would
  // read a garbled line ("HTTP/0.9 garbage") as status 0 and hand it to
  // the caller as if the server had answered — bench and tests could not
  // tell a broken counterparty from a real response. Parse strictly and
  // make malformation an error instead.
  size_t line_end = head.find("\r\n");
  if (line_end == std::string::npos) line_end = head.size();
  const std::string status_line = head.substr(0, line_end);
  const size_t sp = status_line.find(' ');
  bool status_ok = status_line.rfind("HTTP/1.", 0) == 0 &&
                   sp != std::string::npos;
  if (status_ok) {
    size_t code_end = status_line.find(' ', sp + 1);
    if (code_end == std::string::npos) code_end = status_line.size();
    uint64_t code = 0;
    status_ok = code_end - (sp + 1) == 3 &&
                ParseDigits(status_line.substr(sp + 1, 3), &code) &&
                code >= 100 && code <= 599;
    response.status = static_cast<int>(code);
  }
  if (!status_ok) {
    Close();
    throw std::runtime_error("malformed status line: '" + status_line + "'");
  }

  size_t content_length = 0;
  bool server_closes = false;
  size_t pos = head.find("\r\n");
  while (pos != std::string::npos && pos + 2 < head.size()) {
    size_t eol = head.find("\r\n", pos + 2);
    if (eol == std::string::npos) eol = head.size();
    std::string line = head.substr(pos + 2, eol - pos - 2);
    pos = eol == head.size() ? std::string::npos : eol;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string name = line.substr(0, colon);
    std::transform(name.begin(), name.end(), name.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    size_t value_begin = colon + 1;
    while (value_begin < line.size() && line[value_begin] == ' ') {
      ++value_begin;
    }
    const std::string value = line.substr(value_begin);
    if (name == "content-length") {
      // strtoull would wrap "-1" to ULLONG_MAX and stop at junk; a bad
      // length mis-frames every response after this one on the
      // keep-alive connection, so bail out instead.
      uint64_t length = 0;
      if (!ParseDigits(value, &length)) {
        Close();
        throw std::runtime_error("malformed Content-Length: '" + value +
                                 "'");
      }
      content_length = static_cast<size_t>(length);
    } else if (name == "retry-after") {
      // Delta-seconds only (what HttpServer emits). std::atoi read
      // garbage as 0, which callers treat as "retry immediately" — the
      // opposite of what a mangled back-off hint should do.
      uint64_t delay = 0;
      if (!ParseDigits(value, &delay) ||
          delay > static_cast<uint64_t>(std::numeric_limits<int>::max())) {
        Close();
        throw std::runtime_error("malformed Retry-After: '" + value + "'");
      }
      response.retry_after_s = static_cast<int>(delay);
    } else if (name == "connection" && value == "close") {
      server_closes = true;
    }
  }

  while (buffer_.size() < content_length) {
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      Close();
      throw std::runtime_error("connection lost mid-body");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
  response.body = buffer_.substr(0, content_length);
  buffer_.erase(0, content_length);
  if (server_closes) Close();
  return response;
}

HttpClient::Response HttpClient::RequestWithRetry(const std::string& method,
                                                  const std::string& path,
                                                  const std::string& body,
                                                  const RetryOptions& retry) {
  uint64_t jitter_state = retry.jitter_seed;
  const auto next_jitter = [&jitter_state] {
    // splitmix64 step: deterministic per (seed, attempt), no global RNG.
    jitter_state += 0x9e3779b97f4a7c15ULL;
    uint64_t z = jitter_state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  for (int attempt = 0;; ++attempt) {
    const bool last = attempt >= retry.max_retries;
    Response response;
    try {
      response = Request(method, path, body);
    } catch (const std::runtime_error&) {
      // Transport failure: Request() already closed the connection.
      // Reconnect and replay — the request never completed, so a replay
      // cannot double-apply it any harder than the network already
      // might. (Connect throws through when the server is truly gone.)
      if (last) throw;
      SleepBackoff(attempt, retry, /*retry_after_s=*/-1, next_jitter());
      Connect(port_);
      continue;
    }
    // Only explicit back-pressure is retried: 429 *asks* for a replay.
    // Any other status — success or failure — is the server's answer.
    if (response.status != 429 || last) return response;
    SleepBackoff(attempt, retry, response.retry_after_s, next_jitter());
  }
}

void HttpClient::SleepBackoff(int attempt, const RetryOptions& retry,
                              int retry_after_s, uint64_t jitter_bits) {
  int64_t backoff_ms =
      attempt < 30 ? static_cast<int64_t>(retry.base_backoff_ms) << attempt
                   : retry.max_backoff_ms;
  if (backoff_ms > retry.max_backoff_ms) backoff_ms = retry.max_backoff_ms;
  if (backoff_ms < 0) backoff_ms = 0;
  if (backoff_ms > 0) {
    // Up to +50% jitter so a herd of retrying clients decorrelates.
    backoff_ms += static_cast<int64_t>(
        jitter_bits % static_cast<uint64_t>(backoff_ms / 2 + 1));
  }
  // The server's explicit hint is a floor, never ignored: backing off
  // LESS than Retry-After would re-trip the very admission control that
  // shed us.
  if (retry_after_s > 0) {
    backoff_ms = std::max<int64_t>(backoff_ms, int64_t{retry_after_s} * 1000);
  }
  if (backoff_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
  }
}

}  // namespace pathrank::serving
