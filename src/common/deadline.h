// Request deadlines and cooperative cancellation for the serving stack.
//
// A Deadline is a point on the steady clock (or "unbounded"); a
// CancelToken latches "this work should stop" from any of three sources:
// an explicit Cancel() call, an expired Deadline, or a parent token (so a
// token derived for one pipeline stage inherits cancellation from the
// request-level token above it). Expired() is sticky: once it returns
// true it returns true forever, so checkpoint code never sees cancellation
// "un-happen" mid-loop.
//
// Cost contract: the routing hot loops take `const CancelToken*` defaulted
// to nullptr and test it once per checkpoint. With no token the fast path
// pays one pointer compare per N heap pops — and because no arithmetic or
// iteration order depends on the token, deadline-free results stay bitwise
// identical to the pre-deadline code.
//
// TripAfterChecks(n) is the deterministic fault-injection hook (see
// serving/fault_injector.h): the token expires on the (n+1)-th Expired()
// call regardless of the clock, which lets chaos tests drive cancellation
// into an exact spot of the enumeration pipeline reproducibly.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

namespace pathrank {

/// A point on the steady clock before which work must finish. Default
/// constructed = unbounded (never expires).
class Deadline {
 public:
  Deadline() = default;

  /// Expires `budget` from now. A non-positive budget is already expired.
  static Deadline After(std::chrono::microseconds budget) {
    Deadline d;
    d.bounded_ = true;
    d.at_ = std::chrono::steady_clock::now() + budget;
    return d;
  }

  static Deadline AfterMs(int64_t budget_ms) {
    return After(std::chrono::microseconds(budget_ms * 1000));
  }

  bool bounded() const { return bounded_; }

  bool Expired() const {
    return bounded_ && std::chrono::steady_clock::now() >= at_;
  }

  /// Time left; clamped to zero when expired. Unbounded deadlines report
  /// microseconds::max().
  std::chrono::microseconds Remaining() const {
    if (!bounded_) return std::chrono::microseconds::max();
    const auto left = std::chrono::duration_cast<std::chrono::microseconds>(
        at_ - std::chrono::steady_clock::now());
    return left.count() > 0 ? left : std::chrono::microseconds::zero();
  }

 private:
  bool bounded_ = false;
  std::chrono::steady_clock::time_point at_{};
};

/// Sticky cooperative-cancellation latch, checkable from any thread.
/// Owned by the request (typically on the planner's stack) and passed by
/// const pointer down the enumeration pipeline.
class CancelToken {
 public:
  CancelToken() = default;
  explicit CancelToken(Deadline deadline, const CancelToken* parent = nullptr)
      : deadline_(deadline), parent_(parent) {}
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation (sticky). Callable from any thread.
  void Cancel() const { expired_.store(true, std::memory_order_relaxed); }

  /// Fault hook: Expired() latches true on its (n+1)-th invocation.
  void TripAfterChecks(uint64_t n) { trip_after_ = n; }

  /// True once cancelled, past the deadline, past the check budget, or
  /// once the parent expired — whichever comes first. Sticky.
  bool Expired() const {
    if (expired_.load(std::memory_order_relaxed)) return true;
    if (parent_ != nullptr && parent_->Expired()) {
      Cancel();
      return true;
    }
    if (trip_after_ != kNoTrip &&
        checks_.fetch_add(1, std::memory_order_relaxed) >= trip_after_) {
      Cancel();
      return true;
    }
    if (deadline_.Expired()) {
      Cancel();
      return true;
    }
    return false;
  }

  const Deadline& deadline() const { return deadline_; }

 private:
  static constexpr uint64_t kNoTrip = std::numeric_limits<uint64_t>::max();

  Deadline deadline_;
  const CancelToken* parent_ = nullptr;
  uint64_t trip_after_ = kNoTrip;
  mutable std::atomic<bool> expired_{false};
  mutable std::atomic<uint64_t> checks_{0};
};

}  // namespace pathrank
