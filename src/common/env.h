// Helpers for reading experiment configuration from environment variables
// (used by the benchmark harness to select workload scale without
// recompiling).
#pragma once

#include <cstdint>
#include <string>

namespace pathrank {

/// Returns the value of `name`, or `fallback` when unset/empty.
std::string EnvString(const char* name, const std::string& fallback);

/// Returns `name` parsed as int64, or `fallback` when unset or unparsable.
int64_t EnvInt(const char* name, int64_t fallback);

/// Returns `name` parsed as double, or `fallback` when unset or unparsable.
double EnvDouble(const char* name, double fallback);

/// Returns true for "1", "true", "yes", "on" (case-insensitive).
bool EnvBool(const char* name, bool fallback);

}  // namespace pathrank
