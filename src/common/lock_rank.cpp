#include "common/lock_rank.h"

#include <cstdio>
#include <cstdlib>

namespace pathrank::common {

const char* LockRankName(int rank) {
  switch (rank) {
    case LockRank::kHttpStop: return "http.stop";
    case LockRank::kHttpConn: return "http.conn";
    case LockRank::kHttpAdmit: return "http.admit";
    case LockRank::kGraphRebuild: return "graph.rebuild";
    case LockRank::kGraphStore: return "graph.store";
    case LockRank::kRouteFlightTable: return "planner.flight_table";
    case LockRank::kRouteFlight: return "planner.flight";
    case LockRank::kRouteCache: return "planner.cache";
    case LockRank::kBatchingQueue: return "batching.queue";
    case LockRank::kEngineSnapshot: return "engine.snapshot";
    case LockRank::kEngineBatchReplica: return "engine.batch_replica";
    case LockRank::kPoolRegion: return "pool.region";
    case LockRank::kPoolState: return "pool.state";
    case LockRank::kPoolError: return "pool.error";
    case LockRank::kEngineReplica: return "engine.replica";
    case LockRank::kHttpEndpointStats: return "http.endpoint_stats";
    case LockRank::kStderrLog: return "log.stderr";
    default: return "unranked";
  }
}

#if defined(PATHRANK_DEBUG_LOCK_RANK)

namespace {

/// One held ranked lock. `name` is the construction-site literal (static
/// storage — Mutex keeps only the pointer), never owned here.
struct HeldLock {
  int rank = 0;
  const char* name = nullptr;
};

/// Deeper than any legitimate acquisition chain in this tree (the
/// longest real one is four deep); hitting the cap is itself a bug.
constexpr size_t kMaxHeldLocks = 32;

thread_local HeldLock t_held[kMaxHeldLocks];
thread_local size_t t_depth = 0;

/// Prints the acquiring lock plus the whole held stack, then aborts.
/// Raw fprintf on purpose: logging itself takes a ranked mutex, and the
/// process is about to die — no layering underneath us can be trusted.
[[noreturn]] void FailInversion(int rank, const char* name,
                                const char* why) {
  std::fprintf(stderr,
               "pathrank lock-rank violation: %s \"%s\" (rank %d); held "
               "locks, outermost first:\n",
               why, name != nullptr ? name : "?", rank);
  for (size_t i = 0; i < t_depth; ++i) {
    std::fprintf(stderr, "  \"%s\" (rank %d)\n",
                 t_held[i].name != nullptr ? t_held[i].name : "?",
                 t_held[i].rank);
  }
  std::fprintf(stderr,
               "lock ranks must strictly increase along every "
               "acquisition chain; see src/common/lock_rank.h and "
               "docs/static_analysis.md#lock-hierarchy\n");
  std::fflush(stderr);
  std::abort();
}

void Push(int rank, const char* name) {
  if (t_depth == kMaxHeldLocks) {
    FailInversion(rank, name, "held-lock stack overflow acquiring");
  }
  t_held[t_depth].rank = rank;
  t_held[t_depth].name = name;
  ++t_depth;
}

}  // namespace

void LockRankOnAcquire(int rank, const char* name) {
  if (rank == 0) return;
  // Compare against the MAXIMUM held rank, not the top of stack: a
  // successful out-of-order try_lock (allowed — it cannot deadlock) may
  // have pushed a lower rank on top.
  int max_held = 0;
  for (size_t i = 0; i < t_depth; ++i) {
    if (t_held[i].rank > max_held) max_held = t_held[i].rank;
  }
  if (rank <= max_held) {
    FailInversion(rank, name, "acquiring");
  }
  Push(rank, name);
}

void LockRankOnTryAcquire(int rank, const char* name) {
  if (rank == 0) return;
  Push(rank, name);
}

void LockRankOnRelease(int rank, const char* name) noexcept {
  if (rank == 0) return;
  // Search from the top: manual lock()/unlock() pairs may release out of
  // LIFO order, and two same-rank locks are told apart by name pointer.
  for (size_t i = t_depth; i > 0; --i) {
    if (t_held[i - 1].rank == rank && t_held[i - 1].name == name) {
      for (size_t j = i - 1; j + 1 < t_depth; ++j) {
        t_held[j] = t_held[j + 1];
      }
      --t_depth;
      return;
    }
  }
  // Releasing a lock that was never recorded: tolerated (a Mutex built
  // before the checker was compiled in cannot occur — same binary — so
  // this only happens for rank-0, already returned above).
}

size_t LockRankHeldCount() noexcept { return t_depth; }

#endif  // PATHRANK_DEBUG_LOCK_RANK

}  // namespace pathrank::common
