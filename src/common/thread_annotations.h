// Compile-time lock-discipline checking for the serving stack.
//
// Clang's -Wthread-safety analysis proves, per translation unit, that
// every member annotated GUARDED_BY(mu) is only touched while `mu` is
// held, that functions annotated REQUIRES(mu) are only called with it
// held, and that scoped locks are never leaked — the whole class of
// "forgot the lock_guard" bugs the TSan CI job can only catch when a
// test happens to race. The static-analysis CI job builds with
// -Wthread-safety -Werror=thread-safety-analysis, so a missing lock is
// a build break, not a flaky report.
//
// The attributes only exist on clang; on GCC (and anything else) every
// macro expands to nothing and the wrappers below compile to the exact
// same code as the std types they forward to.
//
// Usage pattern (the same shape as Abseil's mutex annotations):
//
//   class Account {
//     common::Mutex mu_;
//     int64_t balance_ GUARDED_BY(mu_);
//     void Deposit(int64_t n) {
//       common::MutexLock lock(mu_);
//       balance_ += n;             // OK: mu_ held
//     }
//   };
//
// Condition variables: std::condition_variable only accepts
// std::unique_lock<std::mutex>, which the analysis cannot see through.
// common::CondVar wraps one and exposes Wait/WaitUntil/WaitFor taking
// the annotated Mutex directly (REQUIRES(mu)), so waiting code stays
// inside the proof. Predicates are written as explicit while-loops in
// the caller — never as lambdas — so guarded reads in the condition are
// visibly under the lock:
//
//   common::MutexLock lock(mu_);
//   while (!stop_ && queue_.empty()) cv_.Wait(mu_);
//
// Conventions (docs/static_analysis.md):
//   * every mutex-guarded member carries GUARDED_BY;
//   * helpers called with a lock held carry REQUIRES instead of
//     re-locking;
//   * every Mutex in src/ is constructed with its common::LockRank and
//     hierarchy name, and mutexes of one class that nest carry
//     ACQUIRED_BEFORE / ACQUIRED_AFTER relating them;
//   * public methods that take a lock internally carry EXCLUDES so a
//     caller already holding it is a compile-time error, not a
//     self-deadlock;
//   * NO_THREAD_SAFETY_ANALYSIS is a last resort and needs a comment
//     explaining why the analysis cannot follow the code.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/lock_rank.h"

#if defined(__clang__)
#define PATHRANK_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define PATHRANK_THREAD_ANNOTATION_(x)
#endif

/// Declares a type that acts as a lock (used on common::Mutex below).
#define CAPABILITY(x) PATHRANK_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type that acquires in its constructor and releases
/// in its destructor (common::MutexLock).
#define SCOPED_CAPABILITY PATHRANK_THREAD_ANNOTATION_(scoped_lockable)

/// Data members: may only be read or written while holding `x`.
#define GUARDED_BY(x) PATHRANK_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer members: the pointee (not the pointer) is guarded by `x`.
#define PT_GUARDED_BY(x) PATHRANK_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Mutex members: this mutex is always acquired before / after the
/// listed ones — the within-class slice of the global lock hierarchy
/// (common/lock_rank.h). Checked by clang under -Wthread-safety-beta
/// (on in the CI static-analysis job): code that acquires the two in
/// the other order fails the -Werror build.
#define ACQUIRED_BEFORE(...) \
  PATHRANK_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  PATHRANK_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Functions: caller must already hold the listed capabilities.
#define REQUIRES(...) \
  PATHRANK_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Functions: caller must NOT hold the listed capabilities (deadlock
/// documentation — a function that takes the lock itself).
#define EXCLUDES(...) PATHRANK_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Functions that acquire / release a capability and return with it in
/// the new state (lock() / unlock() on the wrappers).
#define ACQUIRE(...) \
  PATHRANK_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define RELEASE(...) \
  PATHRANK_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  PATHRANK_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Asserts (at analysis time) that the capability is held — for code
/// reached only via paths the analysis cannot follow.
#define ASSERT_CAPABILITY(x) \
  PATHRANK_THREAD_ANNOTATION_(assert_capability(x))

/// Functions returning a reference to a capability-guarding mutex.
#define RETURN_CAPABILITY(x) PATHRANK_THREAD_ANNOTATION_(lock_returned(x))

/// Opt-out, with a mandatory justification comment at the use site.
#define NO_THREAD_SAFETY_ANALYSIS \
  PATHRANK_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace pathrank::common {

class CondVar;

/// std::mutex with the `capability` attribute the analysis keys on.
/// Identical layout and cost in default builds — every method is an
/// inline forward.
///
/// The ranked constructor places the mutex in the global lock hierarchy
/// (common/lock_rank.h): under -DPATHRANK_DEBUG_LOCK_RANK=ON, lock()
/// verifies the rank is strictly greater than every ranked lock this
/// thread already holds and aborts (with both names) on inversion. In
/// default builds the rank and name are discarded at compile time and
/// Mutex is byte-identical to the unranked form. Every Mutex in src/
/// must use the ranked form; the default constructor exists for tests
/// and out-of-tree callers (rank 0 = invisible to the checker).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
#if defined(PATHRANK_DEBUG_LOCK_RANK)
  Mutex(int rank, const char* name) : rank_(rank), name_(name) {}
#else
  Mutex(int /*rank*/, const char* /*name*/) {}
#endif
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
#if defined(PATHRANK_DEBUG_LOCK_RANK)
    // Check BEFORE blocking: an inversion aborts with both stacks'
    // names instead of deadlocking (or racing TSan to the report).
    LockRankOnAcquire(rank_, name_);
#endif
    mu_.lock();
  }
  void unlock() RELEASE() {
#if defined(PATHRANK_DEBUG_LOCK_RANK)
    LockRankOnRelease(rank_, name_);
#endif
    mu_.unlock();
  }
  bool try_lock() TRY_ACQUIRE(true) {
    const bool acquired = mu_.try_lock();
#if defined(PATHRANK_DEBUG_LOCK_RANK)
    // A failed (or out-of-order) try_lock cannot deadlock, so there is
    // no order check — but a held lock must be on the stack so later
    // blocking acquisitions are checked against it.
    if (acquired) LockRankOnTryAcquire(rank_, name_);
#endif
    return acquired;
  }

 private:
  friend class CondVar;
  std::mutex mu_;
#if defined(PATHRANK_DEBUG_LOCK_RANK)
  int rank_ = 0;
  const char* name_ = nullptr;
#endif
};

/// std::lock_guard over Mutex, visible to the analysis as a scoped
/// capability: acquiring constructor, releasing destructor, no leaks.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to the annotated Mutex. Every wait requires
/// the mutex held (REQUIRES), releases it for the duration of the block,
/// and reacquires before returning — the standard CV contract, but now
/// machine-checked at the call site. Spurious wakeups are possible, as
/// with std::condition_variable: always wait in a predicate loop.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    // Adopt the already-held native mutex so std::condition_variable can
    // unlock/relock it, then release ownership WITHOUT unlocking — the
    // caller still holds the capability, exactly as annotated.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status;
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(native, timeout);
    native.release();
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace pathrank::common
