#include "common/csv.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pathrank {

struct CsvWriter::Impl {
  std::ofstream out;
};

CsvWriter::CsvWriter(const std::string& path) : impl_(new Impl) {
  impl_->out.open(path, std::ios::out | std::ios::trunc);
  if (!impl_->out) {
    delete impl_;
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

CsvWriter::~CsvWriter() { delete impl_; }

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) impl_->out << ',';
    impl_->out << EscapeCsvField(fields[i]);
  }
  impl_->out << '\n';
}

void CsvWriter::Close() { impl_->out.close(); }

std::string EscapeCsvField(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else {
      if (c == '"') {
        in_quotes = true;
      } else if (c == ',') {
        fields.push_back(std::move(cur));
        cur.clear();
      } else if (c == '\r') {
        // Tolerate CRLF input.
      } else {
        cur += c;
      }
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

CsvReader::CsvReader(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("CsvReader: cannot open " + path);
  }
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;  // skipped — which is why lines_ exists
    rows_.push_back(ParseCsvLine(line));
    lines_.push_back(line_number);
  }
}

}  // namespace pathrank
