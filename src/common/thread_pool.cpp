#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <thread>
#include <utility>
#include <vector>

#include "common/env.h"
#include "common/thread_annotations.h"

namespace pathrank {
namespace {

using common::CondVar;
using common::Mutex;
using common::MutexLock;

/// True while this thread is executing chunks of a parallel region (pool
/// worker or the region's caller); nested regions are collapsed to serial
/// execution instead of deadlocking the pool.
thread_local bool t_in_parallel_region = false;

/// One blocking parallel region: workers and the caller pull chunk indices
/// from a shared counter until exhausted. A fresh Batch lives on the
/// caller's stack per region; the pool threads persist.
struct Batch {
  size_t num_chunks = 0;
  std::function<void(size_t)> run_chunk;  // invoked with the chunk index

  std::atomic<size_t> next_chunk{0};
  std::atomic<size_t> done_chunks{0};
  std::atomic<size_t> active_workers{0};  // pool workers inside Work()
  /// Taken by chunk bodies (no pool lock held) and by the region owner
  /// (under region_mutex_, after the region retired) — never under
  /// mutex_, hence the rank between pool.state and the leaf locks.
  Mutex error_mutex{common::LockRank::kPoolError, "pool.error"};
  std::exception_ptr first_error GUARDED_BY(error_mutex);

  /// Claims and runs chunks until none remain.
  void Work() EXCLUDES(error_mutex) {
    const bool was_in_region = t_in_parallel_region;
    t_in_parallel_region = true;
    for (;;) {
      const size_t chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) break;
      try {
        run_chunk(chunk);
      } catch (...) {
        MutexLock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      done_chunks.fetch_add(1, std::memory_order_release);
    }
    t_in_parallel_region = was_in_region;
  }

  bool Finished() const {
    return done_chunks.load(std::memory_order_acquire) == num_chunks;
  }

  /// The first chunk exception, if any — for the region owner, after the
  /// region retired (taking the lock anyway keeps the proof airtight).
  std::exception_ptr TakeError() EXCLUDES(error_mutex) {
    MutexLock lock(error_mutex);
    return first_error;
  }
};

class ThreadPool {
 public:
  static ThreadPool& Global() {
    static ThreadPool* pool = new ThreadPool();  // leaked: outlives statics
    return *pool;
  }

  size_t num_threads() const {
    return num_threads_.load(std::memory_order_relaxed);
  }

  void Resize(size_t n) EXCLUDES(region_mutex_, mutex_) {
    if (n == 0) n = DefaultThreads();
    MutexLock region_lock(region_mutex_);
    if (n == num_threads()) return;
    StopWorkers();
    num_threads_.store(n, std::memory_order_relaxed);
    StartWorkers();
  }

  /// Executes `batch`; the calling thread participates. Blocks until every
  /// chunk finished, then rethrows the first chunk exception, if any.
  void Run(Batch& batch) EXCLUDES(region_mutex_, mutex_) {
    MutexLock region_lock(region_mutex_);
    {
      MutexLock lock(mutex_);
      current_ = &batch;
    }
    wake_.NotifyAll();
    batch.Work();
    {
      MutexLock lock(mutex_);
      // Wait for the last chunk AND for every worker to step out of the
      // batch, so it can be destroyed as soon as Run returns.
      while (!(batch.Finished() &&
               batch.active_workers.load(std::memory_order_acquire) == 0)) {
        finished_.Wait(mutex_);
      }
      current_ = nullptr;
      ++region_seq_;
    }
    idle_.NotifyAll();
    if (std::exception_ptr error = batch.TakeError()) {
      std::rethrow_exception(error);
    }
  }

 private:
  ThreadPool() {
    const int64_t env = EnvInt("PATHRANK_THREADS", 0);
    num_threads_.store(env > 0 ? static_cast<size_t>(env) : DefaultThreads(),
                       std::memory_order_relaxed);
    MutexLock region_lock(region_mutex_);
    StartWorkers();
  }

  static size_t DefaultThreads() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<size_t>(hw) : 1;
  }

  void StartWorkers() REQUIRES(region_mutex_) {
    {
      MutexLock lock(mutex_);
      stop_ = false;
    }
    // The caller participates in every region, so N threads of compute
    // need only N - 1 pool workers.
    const size_t n = num_threads();
    const size_t helpers = n > 0 ? n - 1 : 0;
    workers_.reserve(helpers);
    for (size_t i = 0; i < helpers; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void StopWorkers() REQUIRES(region_mutex_) {
    {
      MutexLock lock(mutex_);
      stop_ = true;
    }
    wake_.NotifyAll();
    idle_.NotifyAll();
    for (std::thread& t : workers_) t.join();
    workers_.clear();
  }

  void WorkerLoop() EXCLUDES(mutex_) {
    for (;;) {
      Batch* batch = nullptr;
      uint64_t my_region = 0;
      {
        MutexLock lock(mutex_);
        while (!(stop_ || (current_ != nullptr && !current_->Finished()))) {
          wake_.Wait(mutex_);
        }
        if (stop_) return;
        batch = current_;
        my_region = region_seq_;
        // Registered under the mutex: the region owner cannot observe
        // completion (and destroy the batch) before this worker is
        // counted in.
        batch->active_workers.fetch_add(1, std::memory_order_acq_rel);
      }
      batch->Work();
      batch->active_workers.fetch_sub(1, std::memory_order_acq_rel);
      // Lock-then-notify so the completion cannot slip into the window
      // between the region owner's predicate check and its sleep.
      { MutexLock lock(mutex_); }
      finished_.NotifyAll();
      // Park until this region is retired (or shutdown); otherwise the
      // wake_ predicate would spin on the still-current batch.
      MutexLock lock(mutex_);
      while (!(stop_ || region_seq_ != my_region)) idle_.Wait(mutex_);
      if (stop_) return;
    }
  }

  /// Serialises Run()/Resize() callers. Held for a region's whole
  /// lifetime, during which the owner's chunks may take any lock ranked
  /// after kPoolRegion (replica locks, the error slot, logging) — which
  /// is why callers holding coarser serving locks (the batch replica)
  /// rank BEFORE it and callers may never enter a region while holding
  /// anything ranked after it.
  Mutex region_mutex_{common::LockRank::kPoolRegion, "pool.region"};
  /// Scheduler state; taken under region_mutex_ by the owner, alone by
  /// workers.
  Mutex mutex_ ACQUIRED_AFTER(region_mutex_){common::LockRank::kPoolState,
                                             "pool.state"};
  CondVar wake_;      // new region available or shutdown
  CondVar finished_;  // last chunk of a region done
  CondVar idle_;      // region retired
  Batch* current_ GUARDED_BY(mutex_) = nullptr;
  uint64_t region_seq_ GUARDED_BY(mutex_) = 0;  // bumped on region retire
  bool stop_ GUARDED_BY(mutex_) = false;
  /// Relaxed atomic rather than GUARDED_BY(region_mutex_): GetNumThreads
  /// is called on every parallel-loop entry and must not contend with a
  /// running region; Resize still serialises writers via region_mutex_.
  std::atomic<size_t> num_threads_{1};
  std::vector<std::thread> workers_ GUARDED_BY(region_mutex_);
};

}  // namespace

SerialRegionScope::SerialRegionScope() : previous_(t_in_parallel_region) {
  t_in_parallel_region = true;
}

SerialRegionScope::~SerialRegionScope() { t_in_parallel_region = previous_; }

bool InParallelRegion() { return t_in_parallel_region; }

size_t GetNumThreads() { return ThreadPool::Global().num_threads(); }

void SetNumThreads(size_t n) { ThreadPool::Global().Resize(n); }

size_t NumShardsFor(size_t range, size_t max_shards) {
  if (range == 0) return 0;
  size_t shards = max_shards > 0 ? max_shards : GetNumThreads();
  return std::min(shards > 0 ? shards : 1, range);
}

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  if (begin >= end) return;
  const size_t range = end - begin;
  if (grain == 0) grain = 1;
  const size_t threads = GetNumThreads();
  size_t num_chunks = (range + grain - 1) / grain;
  // A few chunks per worker load-balances uneven work without flooding
  // the chunk counter.
  num_chunks = std::min(num_chunks, threads * 4);

  if (threads == 1 || num_chunks <= 1 || t_in_parallel_region) {
    const bool was_in_region = t_in_parallel_region;
    t_in_parallel_region = true;
    try {
      fn(begin, end);
    } catch (...) {
      t_in_parallel_region = was_in_region;
      throw;
    }
    t_in_parallel_region = was_in_region;
    return;
  }

  const size_t chunk_size = (range + num_chunks - 1) / num_chunks;
  Batch batch;
  batch.num_chunks = (range + chunk_size - 1) / chunk_size;
  batch.run_chunk = [&](size_t chunk) {
    const size_t lo = begin + chunk * chunk_size;
    const size_t hi = std::min(end, lo + chunk_size);
    fn(lo, hi);
  };
  ThreadPool::Global().Run(batch);
}

void ParallelForShards(
    size_t begin, size_t end,
    const std::function<void(size_t, size_t, size_t)>& fn,
    size_t max_shards) {
  if (begin >= end) return;
  const size_t range = end - begin;
  const size_t shards = NumShardsFor(range, max_shards);
  // Fixed decomposition: depends only on (range, shards), never on which
  // worker runs which shard, so shard-ordered reductions are
  // bit-reproducible for a fixed shard count.
  const size_t base = range / shards;
  const size_t extra = range % shards;
  auto shard_bounds = [&](size_t s) {
    const size_t lo = begin + s * base + std::min(s, extra);
    return std::pair<size_t, size_t>(lo, lo + base + (s < extra ? 1 : 0));
  };

  if (shards == 1 || GetNumThreads() == 1 || t_in_parallel_region) {
    const bool was_in_region = t_in_parallel_region;
    t_in_parallel_region = true;
    try {
      for (size_t s = 0; s < shards; ++s) {
        const auto [lo, hi] = shard_bounds(s);
        fn(s, lo, hi);
      }
    } catch (...) {
      t_in_parallel_region = was_in_region;
      throw;
    }
    t_in_parallel_region = was_in_region;
    return;
  }

  Batch batch;
  batch.num_chunks = shards;
  batch.run_chunk = [&](size_t s) {
    const auto [lo, hi] = shard_bounds(s);
    fn(s, lo, hi);
  };
  ThreadPool::Global().Run(batch);
}

}  // namespace pathrank
