#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/env.h"

namespace pathrank {
namespace {

/// True while this thread is executing chunks of a parallel region (pool
/// worker or the region's caller); nested regions are collapsed to serial
/// execution instead of deadlocking the pool.
thread_local bool t_in_parallel_region = false;

/// One blocking parallel region: workers and the caller pull chunk indices
/// from a shared counter until exhausted. A fresh Batch lives on the
/// caller's stack per region; the pool threads persist.
struct Batch {
  size_t num_chunks = 0;
  std::function<void(size_t)> run_chunk;  // invoked with the chunk index

  std::atomic<size_t> next_chunk{0};
  std::atomic<size_t> done_chunks{0};
  std::atomic<size_t> active_workers{0};  // pool workers inside Work()
  std::mutex error_mutex;
  std::exception_ptr first_error;

  /// Claims and runs chunks until none remain.
  void Work() {
    const bool was_in_region = t_in_parallel_region;
    t_in_parallel_region = true;
    for (;;) {
      const size_t chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) break;
      try {
        run_chunk(chunk);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      done_chunks.fetch_add(1, std::memory_order_release);
    }
    t_in_parallel_region = was_in_region;
  }

  bool Finished() const {
    return done_chunks.load(std::memory_order_acquire) == num_chunks;
  }
};

class ThreadPool {
 public:
  static ThreadPool& Global() {
    static ThreadPool* pool = new ThreadPool();  // leaked: outlives statics
    return *pool;
  }

  size_t num_threads() const { return num_threads_; }

  void Resize(size_t n) {
    if (n == 0) n = DefaultThreads();
    std::lock_guard<std::mutex> region_lock(region_mutex_);
    if (n == num_threads_) return;
    StopWorkers();
    num_threads_ = n;
    StartWorkers();
  }

  /// Executes `batch`; the calling thread participates. Blocks until every
  /// chunk finished, then rethrows the first chunk exception, if any.
  void Run(Batch& batch) {
    std::unique_lock<std::mutex> region_lock(region_mutex_);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      current_ = &batch;
    }
    wake_.notify_all();
    batch.Work();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // Wait for the last chunk AND for every worker to step out of the
      // batch, so it can be destroyed as soon as Run returns.
      finished_.wait(lock, [&] {
        return batch.Finished() &&
               batch.active_workers.load(std::memory_order_acquire) == 0;
      });
      current_ = nullptr;
      ++region_seq_;
    }
    idle_.notify_all();
    if (batch.first_error) std::rethrow_exception(batch.first_error);
  }

 private:
  ThreadPool() {
    const int64_t env = EnvInt("PATHRANK_THREADS", 0);
    num_threads_ = env > 0 ? static_cast<size_t>(env) : DefaultThreads();
    StartWorkers();
  }

  static size_t DefaultThreads() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<size_t>(hw) : 1;
  }

  void StartWorkers() {
    stop_ = false;
    // The caller participates in every region, so N threads of compute
    // need only N - 1 pool workers.
    const size_t helpers = num_threads_ > 0 ? num_threads_ - 1 : 0;
    workers_.reserve(helpers);
    for (size_t i = 0; i < helpers; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void StopWorkers() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    idle_.notify_all();
    for (std::thread& t : workers_) t.join();
    workers_.clear();
  }

  void WorkerLoop() {
    for (;;) {
      Batch* batch = nullptr;
      uint64_t my_region = 0;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [&] {
          return stop_ || (current_ != nullptr && !current_->Finished());
        });
        if (stop_) return;
        batch = current_;
        my_region = region_seq_;
        // Registered under the mutex: the region owner cannot observe
        // completion (and destroy the batch) before this worker is
        // counted in.
        batch->active_workers.fetch_add(1, std::memory_order_acq_rel);
      }
      batch->Work();
      batch->active_workers.fetch_sub(1, std::memory_order_acq_rel);
      // Lock-then-notify so the completion cannot slip into the window
      // between the region owner's predicate check and its sleep.
      { std::lock_guard<std::mutex> lock(mutex_); }
      finished_.notify_all();
      // Park until this region is retired (or shutdown); otherwise the
      // wake_ predicate would spin on the still-current batch.
      std::unique_lock<std::mutex> lock(mutex_);
      idle_.wait(lock, [&] { return stop_ || region_seq_ != my_region; });
      if (stop_) return;
    }
  }

  std::mutex region_mutex_;  // serialises Run()/Resize() callers
  std::mutex mutex_;
  std::condition_variable wake_;      // new region available or shutdown
  std::condition_variable finished_;  // last chunk of a region done
  std::condition_variable idle_;      // region retired
  Batch* current_ = nullptr;
  uint64_t region_seq_ = 0;  // bumped when a region retires
  bool stop_ = false;
  size_t num_threads_ = 1;
  std::vector<std::thread> workers_;
};

}  // namespace

SerialRegionScope::SerialRegionScope() : previous_(t_in_parallel_region) {
  t_in_parallel_region = true;
}

SerialRegionScope::~SerialRegionScope() { t_in_parallel_region = previous_; }

bool InParallelRegion() { return t_in_parallel_region; }

size_t GetNumThreads() { return ThreadPool::Global().num_threads(); }

void SetNumThreads(size_t n) { ThreadPool::Global().Resize(n); }

size_t NumShardsFor(size_t range, size_t max_shards) {
  if (range == 0) return 0;
  size_t shards = max_shards > 0 ? max_shards : GetNumThreads();
  return std::min(shards > 0 ? shards : 1, range);
}

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  if (begin >= end) return;
  const size_t range = end - begin;
  if (grain == 0) grain = 1;
  const size_t threads = GetNumThreads();
  size_t num_chunks = (range + grain - 1) / grain;
  // A few chunks per worker load-balances uneven work without flooding
  // the chunk counter.
  num_chunks = std::min(num_chunks, threads * 4);

  if (threads == 1 || num_chunks <= 1 || t_in_parallel_region) {
    const bool was_in_region = t_in_parallel_region;
    t_in_parallel_region = true;
    try {
      fn(begin, end);
    } catch (...) {
      t_in_parallel_region = was_in_region;
      throw;
    }
    t_in_parallel_region = was_in_region;
    return;
  }

  const size_t chunk_size = (range + num_chunks - 1) / num_chunks;
  Batch batch;
  batch.num_chunks = (range + chunk_size - 1) / chunk_size;
  batch.run_chunk = [&](size_t chunk) {
    const size_t lo = begin + chunk * chunk_size;
    const size_t hi = std::min(end, lo + chunk_size);
    fn(lo, hi);
  };
  ThreadPool::Global().Run(batch);
}

void ParallelForShards(
    size_t begin, size_t end,
    const std::function<void(size_t, size_t, size_t)>& fn,
    size_t max_shards) {
  if (begin >= end) return;
  const size_t range = end - begin;
  const size_t shards = NumShardsFor(range, max_shards);
  // Fixed decomposition: depends only on (range, shards), never on which
  // worker runs which shard, so shard-ordered reductions are
  // bit-reproducible for a fixed shard count.
  const size_t base = range / shards;
  const size_t extra = range % shards;
  auto shard_bounds = [&](size_t s) {
    const size_t lo = begin + s * base + std::min(s, extra);
    return std::pair<size_t, size_t>(lo, lo + base + (s < extra ? 1 : 0));
  };

  if (shards == 1 || GetNumThreads() == 1 || t_in_parallel_region) {
    const bool was_in_region = t_in_parallel_region;
    t_in_parallel_region = true;
    try {
      for (size_t s = 0; s < shards; ++s) {
        const auto [lo, hi] = shard_bounds(s);
        fn(s, lo, hi);
      }
    } catch (...) {
      t_in_parallel_region = was_in_region;
      throw;
    }
    t_in_parallel_region = was_in_region;
    return;
  }

  Batch batch;
  batch.num_chunks = shards;
  batch.run_chunk = [&](size_t s) {
    const auto [lo, hi] = shard_bounds(s);
    fn(s, lo, hi);
  };
  ThreadPool::Global().Run(batch);
}

}  // namespace pathrank
