#include "common/parse.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace pathrank {
namespace {

/// std::from_chars for the integral types: no locale, no allocation, and
/// "did the whole token convert" is one pointer comparison.
template <typename T>
bool ParseIntegral(const std::string& s, T* out) {
  if (s.empty()) return false;
  T value{};
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return false;
  *out = value;
  return true;
}

[[noreturn]] void ThrowFieldError(const std::string& token,
                                  const char* column, const char* expected,
                                  const std::string& file, size_t line) {
  throw std::runtime_error(file + ":" + std::to_string(line) + ": " +
                           column + " expects " + expected + ", got '" +
                           token + "'");
}

}  // namespace

bool ParseInt32(const std::string& s, int32_t* out) {
  return ParseIntegral(s, out);
}

bool ParseUInt32(const std::string& s, uint32_t* out) {
  // from_chars on an unsigned type rejects "-1" outright (no modular
  // wrap-around like strtoul's).
  return ParseIntegral(s, out);
}

bool ParseInt64(const std::string& s, int64_t* out) {
  return ParseIntegral(s, out);
}

bool ParseUInt64(const std::string& s, uint64_t* out) {
  return ParseIntegral(s, out);
}

bool ParseDouble(const std::string& s, double* out) {
  // strtod rather than from_chars<double>: the FP overload is still
  // missing from some libstdc++/libc++ versions this repo builds on.
  // strtod skips leading whitespace, so reject that explicitly to keep
  // the whole-token contract.
  if (s.empty() || std::isspace(static_cast<unsigned char>(s.front()))) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || errno == ERANGE) return false;
  // strtod happily reads "nan" and "inf"; no field in this repo's file
  // formats legitimately holds a non-finite value, and a NaN edge cost
  // would poison every shortest-path comparison downstream.
  if (!std::isfinite(value)) return false;
  *out = value;
  return true;
}

int32_t ParseInt32Field(const std::string& token, const char* column,
                        const std::string& file, size_t line) {
  int32_t value = 0;
  if (!ParseInt32(token, &value)) {
    ThrowFieldError(token, column, "an integer", file, line);
  }
  return value;
}

uint32_t ParseUInt32Field(const std::string& token, const char* column,
                          const std::string& file, size_t line) {
  uint32_t value = 0;
  if (!ParseUInt32(token, &value)) {
    ThrowFieldError(token, column, "a non-negative integer", file, line);
  }
  return value;
}

double ParseDoubleField(const std::string& token, const char* column,
                        const std::string& file, size_t line) {
  double value = 0.0;
  if (!ParseDouble(token, &value)) {
    ThrowFieldError(token, column, "a number", file, line);
  }
  return value;
}

}  // namespace pathrank
