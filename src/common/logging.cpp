#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

#include "common/thread_annotations.h"

namespace pathrank {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::once_flag g_env_once;

/// Serialises emission to stderr: a log line and a check-failure dump
/// must each land contiguously even when many serving threads log at
/// once. (POSIX makes a single write atomic-ish, but fputs + fflush is
/// two calls.) Leaked function-local static: loggers may run during
/// static destruction.
common::Mutex& StderrMutex() {
  // kStderrLog is the highest rank in the hierarchy: any code path may
  // log while holding anything, so this lock must never be held while
  // acquiring another ranked lock (LogMessage's destructor only fputs).
  static common::Mutex* mu =
      new common::Mutex(common::LockRank::kStderrLog, "log.stderr");
  return *mu;
}

void InitFromEnv() {
  const char* env = std::getenv("PATHRANK_LOG_LEVEL");
  if (env != nullptr) {
    g_log_level.store(static_cast<int>(ParseLogLevel(env)),
                      std::memory_order_relaxed);
  }
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  std::call_once(g_env_once, InitFromEnv);
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

LogLevel ParseLogLevel(const std::string& name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn" || name == "warning") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off" || name == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

bool LogLevelEnabled(LogLevel level) { return level >= GetLogLevel(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  common::MutexLock lock(StderrMutex());
  std::fputs(stream_.str().c_str(), stderr);
}

CheckFailure::CheckFailure(const char* condition, const char* file, int line) {
  stream_ << "PR_CHECK failed: " << condition << " at " << file << ":" << line
          << " ";
}

CheckFailure::~CheckFailure() noexcept(false) {
  {
    common::MutexLock lock(StderrMutex());
    std::fputs((stream_.str() + "\n").c_str(), stderr);
    std::fflush(stderr);
  }
  throw std::logic_error(stream_.str());
}

}  // namespace internal
}  // namespace pathrank
