// Deterministic, fast pseudo-random number generation used across the
// library. Every stochastic component (network synthesis, trajectory
// simulation, node2vec, neural initialisation, batching) takes an explicit
// seed so that experiments reproduce bit-for-bit.
#pragma once

#include <cmath>
#include <cstdint>

namespace pathrank {

/// xoshiro256** by Blackman & Vigna, seeded through SplitMix64.
///
/// Not cryptographically secure; chosen for speed and excellent statistical
/// quality in simulation workloads.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the generator deterministically from a single 64-bit value.
  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the full 256-bit state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  /// Returns the next raw 64-bit value.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float NextFloat() {
    return static_cast<float>(NextU64() >> 40) * 0x1.0p-24f;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's nearly-divisionless method.
    uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t t = -bound % bound;
      while (l < t) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal via Box-Muller (cached second value).
  double NextGaussian() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    do {
      u1 = NextDouble();
    } while (u1 <= 1e-300);
    const double u2 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Normal with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Bernoulli draw with success probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void Shuffle(Container& c) {
    for (size_t i = c.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(NextBounded(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  /// Derives an independent child generator; useful for giving each worker
  /// or component its own deterministic stream.
  Rng Fork() { return Rng(NextU64() ^ 0xA3EC4E6C9A2B15D7ULL); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4] = {};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace pathrank
