// Nearest-rank percentile over an ascending-sorted sample — the ONE
// quantile convention shared by the serving bench metrics
// (bench_throughput's serve_rank_* / serve_batched_* p50/p99) and the
// pathrank_cli serve latency report, so the CLI's numbers and the gated
// bench numbers can never silently disagree for the same sample.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace pathrank {

/// p-quantile by index of `sorted` (ascending, non-empty): element
/// floor(p * n), clamped to the last element.
inline double PercentileSorted(const std::vector<double>& sorted, double p) {
  return sorted[std::min(
      sorted.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted.size())))];
}

}  // namespace pathrank
