// Nearest-rank percentile over an ascending-sorted sample — the ONE
// quantile convention shared by the serving bench metrics
// (bench_throughput's serve_rank_* / serve_batched_* / serve_route_*
// p50/p99) and the pathrank_cli serve latency report, so the CLI's numbers
// and the gated bench numbers can never silently disagree for the same
// sample.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace pathrank {

/// p-quantile of `sorted` (ascending, non-empty) by the nearest-rank
/// convention: the smallest element whose cumulative frequency is >= p,
/// i.e. index ceil(p * n) - 1, clamped to [0, n-1]. (The previous
/// floor(p * n) indexing was one rank too high whenever p * n landed on
/// an integer: the p50 of 4 samples returned the 3rd, not the 2nd.)
inline double PercentileSorted(const std::vector<double>& sorted, double p) {
  const double rank =
      std::ceil(p * static_cast<double>(sorted.size()));
  const size_t index = rank <= 1.0 ? 0 : static_cast<size_t>(rank) - 1;
  return sorted[std::min(sorted.size() - 1, index)];
}

}  // namespace pathrank
