// The global lock-order hierarchy, and the debug runtime checker that
// enforces it.
//
// Clang's thread-safety analysis (common/thread_annotations.h) proves
// WHERE a lock is held; nothing in that proof constrains the ORDER two
// locks nest in, so an ABBA deadlock between, say, the graph store's
// rebuild lock and the route planner's cache lock would compile clean
// and only hang when a test happens to interleave it. This header is the
// single source of truth for the order: every common::Mutex in src/ is
// constructed with one of the ranks below, and a thread may only acquire
// a ranked mutex whose rank is STRICTLY GREATER than every ranked mutex
// it already holds. Rank increases inward: outermost locks (taken first,
// held longest) have the smallest ranks, leaf locks that may be taken
// under anything (the stderr logging mutex) have the largest.
//
// Three independent enforcement layers (docs/static_analysis.md):
//   1. static   — ACQUIRED_BEFORE / ACQUIRED_AFTER annotations on mutex
//                 members express the within-class slices of this table;
//                 clang's analysis (-Wthread-safety-beta, on in the CI
//                 static-analysis job) rejects out-of-order acquisition
//                 at build time.
//   2. runtime  — builds with -DPATHRANK_DEBUG_LOCK_RANK=ON compile the
//                 checker below into Mutex::lock(): each thread keeps a
//                 stack of held ranked locks, and acquiring out of order
//                 aborts immediately with both locks' names and the full
//                 held stack — deterministically, on the first wrong
//                 nesting, not only on the unlucky interleaving.
//   3. dynamic  — the TSan CI job runs with detect_deadlocks=1, which
//                 reports lock-order inversions between ANY mutexes
//                 (ranked or not) that actually occur during the tests.
//
// Picking a rank for a new mutex: find every lock that can be held when
// yours is acquired (callers' locks) and every lock code under yours can
// acquire (callees' locks — remember logging), then pick a rank strictly
// between them. The table leaves gaps of 10 for exactly this. Two
// mutexes may share a rank ONLY when no thread ever holds both at once
// (the per-replica scoring locks do this; a caller holds exactly one).
// When off (the default), the checker costs nothing: Mutex carries no
// extra state and lock()/unlock() compile to the bare std::mutex calls.
#pragma once

#include <cstddef>

namespace pathrank::common {

/// The rank registry: one named slot per mutex (or per interchangeable
/// family) in src/, in acquisition order. Outermost first; a thread's
/// held ranks must be strictly increasing. See docs/static_analysis.md
/// ("Lock hierarchy") for the prose version of every entry.
struct LockRank {
  // -- serving front end (HttpServer) -----------------------------------
  /// HttpServer::stop_mu_ — serialises Stop() callers; held across the
  /// connection and admission locks while shutting down.
  static constexpr int kHttpStop = 10;
  /// HttpServer::conn_mu_ — connection queue + active-fd set.
  static constexpr int kHttpConn = 20;
  /// HttpServer::admit_mu_ — admission budget (inflight / waiting).
  static constexpr int kHttpAdmit = 30;

  // -- live graph (GraphStore) ------------------------------------------
  /// GraphStore::rebuild_mu_ — writer serialisation; held across the
  /// whole validate + copy-on-write rebuild + publish sequence.
  static constexpr int kGraphRebuild = 40;
  /// GraphStore::mu_ — the served (snapshot, artifact) slot; taken under
  /// rebuild_mu_ by Publish, alone by every reader.
  static constexpr int kGraphStore = 50;

  // -- route planner -----------------------------------------------------
  /// RoutePlanner::flight_mu_ — the single-flight table.
  static constexpr int kRouteFlightTable = 60;
  /// RoutePlanner::Flight::mu — one in-progress enumeration's state. A
  /// thread holds at most one flight's lock at a time.
  static constexpr int kRouteFlight = 70;
  /// RoutePlanner::cache_mu_ — the LRU candidate cache.
  static constexpr int kRouteCache = 80;

  // -- model serving -----------------------------------------------------
  /// BatchingQueue::mu_ — the pending-request queue. Flushes score
  /// OUTSIDE it, so it never nests over the engine locks below.
  static constexpr int kBatchingQueue = 90;
  /// ServingEngine::snapshot_mu_ — the served-snapshot slot.
  static constexpr int kEngineSnapshot = 100;
  /// ServingEngine::batch_replica_->mu — the coalesced-scoring replica.
  /// Ranked BEFORE the pool locks: its holder is the one scoring path
  /// allowed to dispatch a pool region (ScoreCoalesced).
  static constexpr int kEngineBatchReplica = 110;

  // -- global thread pool ------------------------------------------------
  /// ThreadPool::region_mutex_ — one parallel region at a time; held by
  /// the region owner for the region's whole lifetime (during which its
  /// chunks may take any lock ranked below).
  static constexpr int kPoolRegion = 120;
  /// ThreadPool::mutex_ — scheduler state (current batch, stop flag).
  static constexpr int kPoolState = 130;
  /// Batch::error_mutex — first-exception slot; taken by chunk bodies
  /// (no pool lock held) and by the region owner under region_mutex_.
  static constexpr int kPoolError = 140;

  // -- leaves ------------------------------------------------------------
  /// ServingEngine round-robin Replica::mu — per-caller scoring scratch.
  /// Ranked AFTER the pool locks because RankBatch's region owner holds
  /// region_mutex_ while its chunks score (each chunk locks exactly one
  /// replica, so all replicas share this rank). The inference under it
  /// runs serially (SerialRegionScope) — it never re-enters the pool.
  static constexpr int kEngineReplica = 150;
  /// HttpServer::Endpoint::mu — per-endpoint latency/error counters.
  static constexpr int kHttpEndpointStats = 160;
  /// logging's StderrMutex — serialises emission to stderr. The absolute
  /// innermost lock: any code path may log while holding anything.
  static constexpr int kStderrLog = 170;
};

/// Hierarchy name for a registry rank above ("http.stop", "pool.state",
/// ...); "unranked" for 0 and anything not in the table. For logs, tests
/// and the checker's abort message.
const char* LockRankName(int rank);

/// True in builds compiled with -DPATHRANK_DEBUG_LOCK_RANK=ON (tests use
/// this to skip the death fixture instead of failing it).
constexpr bool LockRankCheckingEnabled() {
#if defined(PATHRANK_DEBUG_LOCK_RANK)
  return true;
#else
  return false;
#endif
}

#if defined(PATHRANK_DEBUG_LOCK_RANK)
/// Records `rank` as acquired on this thread, after verifying it is
/// strictly greater than every ranked lock already held; on violation,
/// prints the acquiring lock and the full held stack (names + ranks) to
/// stderr and aborts. Rank 0 (unranked) is invisible to the checker.
void LockRankOnAcquire(int rank, const char* name);

/// Records a SUCCESSFUL try_lock. No order check: an out-of-order
/// try_lock cannot deadlock (it would just fail), but the lock must
/// still be on the stack so later blocking acquisitions are checked
/// against it.
void LockRankOnTryAcquire(int rank, const char* name);

/// Removes `rank`/`name` from this thread's held stack (wherever it
/// sits — manual lock()/unlock() pairs need not be LIFO).
void LockRankOnRelease(int rank, const char* name) noexcept;

/// Ranked locks the calling thread currently holds (test hook).
size_t LockRankHeldCount() noexcept;
#else
inline size_t LockRankHeldCount() noexcept { return 0; }
#endif

}  // namespace pathrank::common
