// Small string helpers shared across modules.
#pragma once

#include <string>
#include <vector>

namespace pathrank {

/// Splits `s` on `sep`; consecutive separators yield empty fields.
std::vector<std::string> Split(const std::string& s, char sep);

/// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Returns true when `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// Lower-cases ASCII characters.
std::string ToLower(const std::string& s);

}  // namespace pathrank
