#include "common/env.h"

#include <algorithm>
#include <cstdlib>

#include "common/parse.h"

namespace pathrank {
namespace {

const char* RawEnv(const char* name) {
  const char* v = std::getenv(name);
  return (v != nullptr && v[0] != '\0') ? v : nullptr;
}

}  // namespace

std::string EnvString(const char* name, const std::string& fallback) {
  const char* v = RawEnv(name);
  return v != nullptr ? std::string(v) : fallback;
}

int64_t EnvInt(const char* name, int64_t fallback) {
  // Whole-token or fallback: "12abc" and an overflowing value fall back
  // rather than half-parse (strtoll would yield 12 / a clamped extreme).
  const char* v = RawEnv(name);
  if (v == nullptr) return fallback;
  int64_t parsed = 0;
  return ParseInt64(v, &parsed) ? parsed : fallback;
}

double EnvDouble(const char* name, double fallback) {
  const char* v = RawEnv(name);
  if (v == nullptr) return fallback;
  double parsed = 0.0;
  return ParseDouble(v, &parsed) ? parsed : fallback;
}

bool EnvBool(const char* name, bool fallback) {
  const char* v = RawEnv(name);
  if (v == nullptr) return fallback;
  std::string s(v);
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  return fallback;
}

}  // namespace pathrank
