#include "common/env.h"

#include <algorithm>
#include <cstdlib>

namespace pathrank {
namespace {

const char* RawEnv(const char* name) {
  const char* v = std::getenv(name);
  return (v != nullptr && v[0] != '\0') ? v : nullptr;
}

}  // namespace

std::string EnvString(const char* name, const std::string& fallback) {
  const char* v = RawEnv(name);
  return v != nullptr ? std::string(v) : fallback;
}

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* v = RawEnv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return fallback;
  return static_cast<int64_t>(parsed);
}

double EnvDouble(const char* name, double fallback) {
  const char* v = RawEnv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v) return fallback;
  return parsed;
}

bool EnvBool(const char* name, bool fallback) {
  const char* v = RawEnv(name);
  if (v == nullptr) return fallback;
  std::string s(v);
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  return fallback;
}

}  // namespace pathrank
