// Wall-clock stopwatch for coarse timing of experiment phases.
#pragma once

#include <chrono>

namespace pathrank {

/// Measures elapsed wall-clock time; starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pathrank
