// Strict, non-throwing numeric parsing plus loader-facing wrappers that
// turn a garbled CSV field into a diagnosable error. The std::sto*
// family is the wrong tool for file loaders twice over: it throws bare
// std::invalid_argument / std::out_of_range (which, uncaught on a
// non-numeric field, terminates the whole process), and it happily
// accepts trailing junk ("12abc" parses as 12). These helpers consume
// the ENTIRE token or fail, and the *Field variants report the file,
// line number and offending token so a bad row in a 10^5-line edge list
// is a one-glance fix.
#pragma once

#include <cstdint>
#include <string>

namespace pathrank {

/// Parses all of `s` as the target type. Returns false on an empty
/// string, leading whitespace, trailing junk, an out-of-range value, or
/// (for doubles) a non-finite value; never throws. ("1e3" and "-0.5"
/// parse; "12,3", "nan" and "inf" do not.)
bool ParseInt32(const std::string& s, int32_t* out);
bool ParseUInt32(const std::string& s, uint32_t* out);
bool ParseInt64(const std::string& s, int64_t* out);
bool ParseUInt64(const std::string& s, uint64_t* out);
bool ParseDouble(const std::string& s, double* out);

/// Loader-facing wrappers: parse one field of `file` or throw
/// std::runtime_error("<file>:<line>: <column> expects ..., got
/// '<token>'"). `line` is 1-based (header row = line 1).
int32_t ParseInt32Field(const std::string& token, const char* column,
                        const std::string& file, size_t line);
uint32_t ParseUInt32Field(const std::string& token, const char* column,
                          const std::string& file, size_t line);
double ParseDoubleField(const std::string& token, const char* column,
                        const std::string& file, size_t line);

}  // namespace pathrank
