// Lightweight leveled logging for the PathRank library.
//
// Usage:
//   PR_LOG_INFO << "trained epoch " << epoch << " loss=" << loss;
//
// The log level is controlled globally (SetLogLevel) or via the
// PATHRANK_LOG_LEVEL environment variable (trace|debug|info|warn|error|off),
// read once at startup.
#pragma once

#include <sstream>
#include <string>

namespace pathrank {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Sets the global log level. Thread-compatible (call before logging starts).
void SetLogLevel(LogLevel level);

/// Returns the current global log level.
LogLevel GetLogLevel();

/// Parses a level name ("info", "debug", ...). Unknown names map to kInfo.
LogLevel ParseLogLevel(const std::string& name);

namespace internal {

/// Accumulates one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is disabled.
class NullMessage {
 public:
  template <typename T>
  NullMessage& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

bool LogLevelEnabled(LogLevel level);

}  // namespace pathrank

#define PR_LOG(level)                                     \
  if (!::pathrank::LogLevelEnabled(level)) {              \
  } else                                                  \
    ::pathrank::internal::LogMessage(level, __FILE__, __LINE__)

#define PR_LOG_TRACE PR_LOG(::pathrank::LogLevel::kTrace)
#define PR_LOG_DEBUG PR_LOG(::pathrank::LogLevel::kDebug)
#define PR_LOG_INFO PR_LOG(::pathrank::LogLevel::kInfo)
#define PR_LOG_WARN PR_LOG(::pathrank::LogLevel::kWarn)
#define PR_LOG_ERROR PR_LOG(::pathrank::LogLevel::kError)

// PR_CHECK: invariant checking that stays on in release builds.
#define PR_CHECK(cond)                                                      \
  if (cond) {                                                               \
  } else                                                                    \
    ::pathrank::internal::CheckFailure(#cond, __FILE__, __LINE__).stream()

namespace pathrank::internal {

/// Aborts the process after streaming a diagnostic message.
class CheckFailure {
 public:
  CheckFailure(const char* condition, const char* file, int line);
  [[noreturn]] ~CheckFailure() noexcept(false);

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace pathrank::internal
