// Process-wide worker pool and data-parallel loop primitives.
//
// Every hot path in the library (GEMM, training shards, walk generation,
// candidate generation, evaluation) funnels through ParallelFor /
// ParallelForShards so one knob controls all concurrency:
//
//   SetNumThreads(n)          — resize the pool (n >= 1; 1 = fully serial)
//   PATHRANK_THREADS          — env override consulted on first use
//   default                   — std::thread::hardware_concurrency()
//
// Determinism contract: ParallelForShards always cuts [begin, end) into
// the SAME contiguous shards for a given (range, max_shards) regardless of
// how many workers execute them, and shard index is passed to the body, so
// callers can keep per-shard state (Rng streams, gradient buffers) and
// reduce in shard order. Results are then bit-reproducible for a fixed
// shard count no matter how the OS schedules the workers.
#pragma once

#include <cstddef>
#include <functional>

namespace pathrank {

/// Number of worker threads the pool runs with (>= 1).
size_t GetNumThreads();

/// True when the calling thread is executing inside a parallel region (a
/// pool worker or a region's caller) or under a SerialRegionScope — i.e.
/// when ParallelFor / ParallelForShards called from this thread would run
/// serially inline instead of dispatching to the pool. Lets callers that
/// hold locks decide whether blocking on the pool is safe (the serving
/// engine's coalesced scoring path uses this to pick between pool-parallel
/// and serial kernels).
bool InParallelRegion();

/// Resizes the global pool. n == 0 means "hardware concurrency".
/// Safe to call between parallel regions; not from inside one.
void SetNumThreads(size_t n);

/// Runs fn(chunk_begin, chunk_end) over a partition of [begin, end) with
/// chunks of at least `grain` iterations. Blocks until every chunk
/// finished. Exceptions thrown by `fn` are rethrown (the first one) in the
/// caller. Calls from inside a worker run serially (nested parallelism is
/// collapsed rather than deadlocking the pool).
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn);

/// Number of shards ParallelForShards will use for `range` iterations
/// capped at `max_shards` (0 = pool size). Exposed so callers can size
/// per-shard buffers before the loop.
size_t NumShardsFor(size_t range, size_t max_shards = 0);

/// Runs fn(shard, shard_begin, shard_end) over NumShardsFor(end - begin,
/// max_shards) contiguous shards. The decomposition depends only on the
/// range and shard count — never on scheduling — so per-shard results can
/// be reduced in shard order for deterministic parallel reductions.
void ParallelForShards(
    size_t begin, size_t end,
    const std::function<void(size_t, size_t, size_t)>& fn,
    size_t max_shards = 0);

/// RAII guard that marks the current thread as already inside a parallel
/// region: ParallelFor / ParallelForShards called on this thread run
/// serially instead of dispatching to (and blocking on) the global pool.
///
/// Callers that manage their own concurrency — the serving engine scores
/// queries on caller threads — use this so independent work neither
/// serialises on the pool's one-region-at-a-time lock nor deadlocks when a
/// pool region is waiting on a lock this thread holds.
class SerialRegionScope {
 public:
  SerialRegionScope();
  ~SerialRegionScope();
  SerialRegionScope(const SerialRegionScope&) = delete;
  SerialRegionScope& operator=(const SerialRegionScope&) = delete;

 private:
  bool previous_;
};

}  // namespace pathrank
