// Minimal CSV reading and writing used by the dataset and experiment I/O.
// Supports quoted fields, embedded commas and embedded quotes ("" escaping).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace pathrank {

/// Writes rows of string fields as RFC-4180-style CSV.
class CsvWriter {
 public:
  /// Creates (truncates) `path`. Throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Writes one row; fields are quoted only when required.
  void WriteRow(const std::vector<std::string>& fields);

  /// Flushes and closes the underlying file early.
  void Close();

 private:
  struct Impl;
  Impl* impl_;
};

/// Parses an entire CSV file into memory. Suitable for the modest file sizes
/// this project manipulates (networks up to ~10^5 edges).
class CsvReader {
 public:
  /// Reads and parses `path`. Throws std::runtime_error on I/O failure.
  explicit CsvReader(const std::string& path);

  /// Number of parsed rows (including any header row).
  size_t num_rows() const { return rows_.size(); }

  /// Returns row `i`.
  const std::vector<std::string>& row(size_t i) const { return rows_[i]; }

  /// 1-based source line of row `i`. Not simply i + 1: empty lines are
  /// skipped at parse time, so this is what loader diagnostics must
  /// report for the message to point at the right line in the file.
  size_t line(size_t i) const { return lines_[i]; }

  /// All rows.
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::vector<std::string>> rows_;
  std::vector<size_t> lines_;
};

/// Parses one CSV line into fields (exposed for testing).
std::vector<std::string> ParseCsvLine(const std::string& line);

/// Escapes one field for CSV output (exposed for testing).
std::string EscapeCsvField(const std::string& field);

}  // namespace pathrank
