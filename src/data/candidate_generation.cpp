#include "data/candidate_generation.h"

#include "common/logging.h"
#include "common/thread_pool.h"
#include "routing/cost_model.h"
#include "routing/path_similarity.h"
#include "routing/penalty_alternatives.h"
#include "routing/yen.h"

namespace pathrank::data {

std::string CandidateStrategyName(CandidateStrategy strategy) {
  switch (strategy) {
    case CandidateStrategy::kTopK:
      return "TkDI";
    case CandidateStrategy::kDiversifiedTopK:
      return "D-TkDI";
    case CandidateStrategy::kPenalty:
      return "Penalty";
  }
  return "?";
}

std::vector<routing::Path> GenerateCandidatePaths(
    const graph::RoadNetwork& network, graph::VertexId source,
    graph::VertexId destination, const CandidateGenConfig& config,
    const CancelToken* cancel, routing::ShortestPathEngine* engine) {
  // Candidates are enumerated under free-flow travel time: the metric
  // commercial routing engines optimise and the domain the simulated
  // drivers perturb. (Length-based enumeration systematically misses the
  // arterial/motorway routes drivers actually take.)
  const auto cost = routing::EdgeCostFn::TravelTime(network);
  switch (config.strategy) {
    case CandidateStrategy::kTopK:
      return routing::TopKShortestPaths(network, source, destination, cost,
                                        config.k, cancel, engine);
    case CandidateStrategy::kDiversifiedTopK: {
      routing::DiversifiedOptions options;
      options.k = config.k;
      options.similarity_threshold = config.similarity_threshold;
      options.max_enumerated = config.max_enumerated;
      return routing::DiversifiedTopK(network, source, destination, cost,
                                      options, cancel, engine);
    }
    case CandidateStrategy::kPenalty: {
      routing::PenaltyOptions options;
      options.k = config.k;
      options.penalty_factor = config.penalty_factor;
      return routing::PenaltyAlternatives(network, source, destination, cost,
                                          options, cancel);
    }
  }
  return {};
}

RankingQuery GenerateQuery(const graph::RoadNetwork& network,
                           const traj::TripPath& trip, int query_id,
                           const CandidateGenConfig& config) {
  PR_CHECK(!trip.path.empty());
  RankingQuery query;
  query.query_id = query_id;
  query.driver_id = trip.driver_id;
  query.source = trip.source();
  query.destination = trip.destination();
  query.truth = trip.path;

  std::vector<routing::Path> paths =
      GenerateCandidatePaths(network, query.source, query.destination,
                             config);

  query.candidates.reserve(paths.size());
  for (routing::Path& p : paths) {
    RankingCandidate cand;
    cand.label =
        routing::WeightedJaccard(network, p.edges, query.truth.edges);
    cand.path = std::move(p);
    query.candidates.push_back(std::move(cand));
  }
  return query;
}

std::vector<RankingQuery> GenerateQueries(
    const graph::RoadNetwork& network,
    const std::vector<traj::TripPath>& trips,
    const CandidateGenConfig& config) {
  // Each query's enumeration (Yen / diversified / penalty search) is
  // independent and draws no randomness, so the output is identical for
  // any thread count.
  std::vector<RankingQuery> queries(trips.size());
  ParallelFor(0, trips.size(), 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      queries[i] =
          GenerateQuery(network, trips[i], static_cast<int>(i), config);
    }
  });
  return queries;
}

}  // namespace pathrank::data
