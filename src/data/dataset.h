// Ranking dataset: query-grouped labelled candidate paths, query-level
// train/validation/test splitting, and summary statistics.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "data/candidate_generation.h"

namespace pathrank::data {

/// A collection of ranking queries (candidate sets with labels).
struct RankingDataset {
  std::vector<RankingQuery> queries;

  size_t num_queries() const { return queries.size(); }
  size_t num_examples() const;
};

/// Train/validation/test partition of a dataset (disjoint by query, so no
/// candidate of a test trajectory is ever seen in training).
struct DatasetSplit {
  RankingDataset train;
  RankingDataset validation;
  RankingDataset test;
};

/// Splits by query with the given fractions (test gets the remainder).
DatasetSplit SplitDataset(const RankingDataset& dataset, double train_frac,
                          double val_frac, pathrank::Rng& rng);

/// Dataset summary statistics (used in docs and experiment logs).
struct DatasetStats {
  size_t num_queries = 0;
  size_t num_examples = 0;
  double mean_candidates_per_query = 0.0;
  double mean_path_vertices = 0.0;
  size_t max_path_vertices = 0;
  double mean_label = 0.0;
  double min_label = 1.0;
  double max_label = 0.0;
};

DatasetStats ComputeStats(const RankingDataset& dataset);

std::string StatsToString(const DatasetStats& stats);

}  // namespace pathrank::data
