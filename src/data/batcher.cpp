#include "data/batcher.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace pathrank::data {

std::vector<RankingExample> FlattenDataset(const RankingDataset& dataset) {
  double max_length = 0.0;
  double max_time = 0.0;
  for (const auto& q : dataset.queries) {
    for (const auto& c : q.candidates) {
      max_length = std::max(max_length, c.path.length_m);
      max_time = std::max(max_time, c.path.time_s);
    }
  }
  const double inv_length = max_length > 0.0 ? 1.0 / max_length : 0.0;
  const double inv_time = max_time > 0.0 ? 1.0 / max_time : 0.0;

  std::vector<RankingExample> examples;
  examples.reserve(dataset.num_examples());
  for (const auto& q : dataset.queries) {
    for (const auto& c : q.candidates) {
      RankingExample ex;
      ex.vertices.reserve(c.path.vertices.size());
      for (graph::VertexId v : c.path.vertices) {
        ex.vertices.push_back(static_cast<int32_t>(v));
      }
      ex.label = static_cast<float>(c.label);
      ex.norm_length = static_cast<float>(c.path.length_m * inv_length);
      ex.norm_time = static_cast<float>(c.path.time_s * inv_time);
      ex.query_id = q.query_id;
      examples.push_back(std::move(ex));
    }
  }
  return examples;
}

Batcher::Batcher(std::vector<RankingExample> examples, size_t batch_size)
    : examples_(std::move(examples)), batch_size_(batch_size) {
  PR_CHECK(batch_size_ >= 1);
  PR_CHECK(!examples_.empty()) << "batcher over empty dataset";
  std::stable_sort(examples_.begin(), examples_.end(),
                   [](const RankingExample& a, const RankingExample& b) {
                     return a.vertices.size() < b.vertices.size();
                   });
  for (size_t start = 0; start < examples_.size(); start += batch_size_) {
    batch_starts_.push_back(start);
  }
  visit_order_.resize(batch_starts_.size());
  std::iota(visit_order_.begin(), visit_order_.end(), size_t{0});
}

void Batcher::Reshuffle(pathrank::Rng& rng) { rng.Shuffle(visit_order_); }

ModelBatch Batcher::GetBatch(size_t i) const {
  PR_CHECK(i < visit_order_.size());
  const size_t start = batch_starts_[visit_order_[i]];
  const size_t end = std::min(start + batch_size_, examples_.size());

  std::vector<std::vector<int32_t>> seqs;
  ModelBatch batch;
  seqs.reserve(end - start);
  batch.labels.reserve(end - start);
  batch.norm_lengths.reserve(end - start);
  batch.norm_times.reserve(end - start);
  for (size_t e = start; e < end; ++e) {
    seqs.push_back(examples_[e].vertices);
    batch.labels.push_back(examples_[e].label);
    batch.norm_lengths.push_back(examples_[e].norm_length);
    batch.norm_times.push_back(examples_[e].norm_time);
  }
  batch.sequences = nn::SequenceBatch::FromSequences(seqs);
  return batch;
}

}  // namespace pathrank::data
