// Training-data generation (Section "Training Data Generation" of the
// paper): for each trajectory path PT from s to d, generate a candidate set
// with one of two strategies —
//   * TkDI   — top-k shortest paths (Yen),
//   * D-TkDI — diversified top-k shortest paths,
// and label every candidate P with WeightedJaccard(P, PT), its ground-truth
// ranking score.
#pragma once

#include <string>
#include <vector>

#include "common/deadline.h"
#include "routing/diversified.h"
#include "routing/path.h"
#include "traj/trajectory.h"

namespace pathrank::routing {
class ShortestPathEngine;
}  // namespace pathrank::routing

namespace pathrank::data {

/// Candidate-set construction strategy.
enum class CandidateStrategy {
  kTopK,             // TkDI: plain top-k shortest paths
  kDiversifiedTopK,  // D-TkDI: diversified top-k shortest paths
  kPenalty,          // iterative penalty-method alternatives (baseline)
};

std::string CandidateStrategyName(CandidateStrategy strategy);

/// Candidate generation parameters.
struct CandidateGenConfig {
  CandidateStrategy strategy = CandidateStrategy::kDiversifiedTopK;
  /// Candidate paths per query (the paper's k).
  int k = 10;
  /// D-TkDI pairwise weighted-Jaccard ceiling.
  double similarity_threshold = 0.8;
  /// Yen enumeration budget for D-TkDI.
  int max_enumerated = 400;
  /// kPenalty: multiplier applied to used edges each iteration.
  double penalty_factor = 1.35;
};

/// One labelled candidate path.
struct RankingCandidate {
  routing::Path path;
  /// Ground-truth score: WeightedJaccard(path, trajectory path) in [0,1].
  double label = 0.0;
};

/// One query: a trajectory path and its labelled candidate set.
struct RankingQuery {
  int query_id = 0;
  int driver_id = 0;
  graph::VertexId source = graph::kInvalidVertex;
  graph::VertexId destination = graph::kInvalidVertex;
  /// The ground-truth (trajectory) path.
  routing::Path truth;
  std::vector<RankingCandidate> candidates;
};

/// Enumerates candidate paths for one (source, destination) pair with the
/// configured strategy under the free-flow travel-time metric — the one
/// switch shared by training-data generation and the serving engine, so
/// deployment-time candidates always match the training distribution.
/// `cancel` (optional, serving only — training never sets it) threads
/// cooperative cancellation into the strategy's enumeration loops; when
/// it expires mid-run the candidates found so far are returned.
/// `engine` (optional, borrowed, not thread-safe — one per concurrent
/// call) runs the Yen spur searches of the kTopK and kDiversifiedTopK
/// strategies; nullptr = owned plain Dijkstra. kPenalty re-weights edges
/// each iteration, which invalidates any preprocessing-based engine, so
/// it always searches with its own Dijkstra and ignores `engine`.
std::vector<routing::Path> GenerateCandidatePaths(
    const graph::RoadNetwork& network, graph::VertexId source,
    graph::VertexId destination, const CandidateGenConfig& config,
    const CancelToken* cancel = nullptr,
    routing::ShortestPathEngine* engine = nullptr);

/// Generates the candidate set for one trip. Candidates are computed with
/// the free-flow travel-time metric (the advanced-routing component of the
/// paper's pipeline). Returns fewer than k candidates only when the graph
/// does not admit k simple paths.
RankingQuery GenerateQuery(const graph::RoadNetwork& network,
                           const traj::TripPath& trip, int query_id,
                           const CandidateGenConfig& config);

/// Generates queries for an entire trip corpus.
std::vector<RankingQuery> GenerateQueries(
    const graph::RoadNetwork& network,
    const std::vector<traj::TripPath>& trips,
    const CandidateGenConfig& config);

}  // namespace pathrank::data
