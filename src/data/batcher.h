// Length-bucketed mini-batching of ranking examples.
//
// Padding waste in the recurrent layers is proportional to the length
// spread inside a batch, so examples are sorted by sequence length, cut
// into contiguous batches, and the *batch order* (not the contents) is
// reshuffled every epoch. This keeps epochs stochastic while bounding
// padding overhead.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "nn/sequence_batch.h"

namespace pathrank::data {

/// One flat training example: a vertex-id sequence and its label, plus the
/// normalised physical targets used by multi-task training.
struct RankingExample {
  std::vector<int32_t> vertices;
  float label = 0.0f;
  /// Path length and travel time scaled into (0, 1] by the dataset-wide
  /// maxima (targets for the auxiliary heads).
  float norm_length = 0.0f;
  float norm_time = 0.0f;
  int query_id = 0;
};

/// Flattens query-grouped candidates into training examples, computing the
/// normalised auxiliary targets from the dataset's length/time maxima.
std::vector<RankingExample> FlattenDataset(const RankingDataset& dataset);

/// Materialised batch ready for the model.
struct ModelBatch {
  nn::SequenceBatch sequences;
  std::vector<float> labels;
  std::vector<float> norm_lengths;
  std::vector<float> norm_times;
};

/// Deterministic length-bucketed batcher.
class Batcher {
 public:
  Batcher(std::vector<RankingExample> examples, size_t batch_size);

  size_t num_batches() const { return batch_starts_.size(); }
  size_t num_examples() const { return examples_.size(); }

  /// Re-randomises the batch visit order (call once per epoch).
  void Reshuffle(pathrank::Rng& rng);

  /// Returns batch `i` under the current visit order.
  ModelBatch GetBatch(size_t i) const;

 private:
  std::vector<RankingExample> examples_;  // sorted by length
  size_t batch_size_;
  std::vector<size_t> batch_starts_;  // start offset of each batch
  std::vector<size_t> visit_order_;   // permutation of batch indices
};

}  // namespace pathrank::data
