#include "data/dataset.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/string_util.h"

namespace pathrank::data {

size_t RankingDataset::num_examples() const {
  size_t n = 0;
  for (const auto& q : queries) n += q.candidates.size();
  return n;
}

DatasetSplit SplitDataset(const RankingDataset& dataset, double train_frac,
                          double val_frac, pathrank::Rng& rng) {
  PR_CHECK(train_frac > 0.0 && val_frac >= 0.0 &&
           train_frac + val_frac < 1.0 + 1e-9);
  std::vector<size_t> order(dataset.queries.size());
  std::iota(order.begin(), order.end(), size_t{0});
  rng.Shuffle(order);

  const auto n = static_cast<double>(order.size());
  const size_t n_train = static_cast<size_t>(n * train_frac);
  const size_t n_val = static_cast<size_t>(n * val_frac);

  DatasetSplit split;
  for (size_t i = 0; i < order.size(); ++i) {
    const RankingQuery& q = dataset.queries[order[i]];
    if (i < n_train) {
      split.train.queries.push_back(q);
    } else if (i < n_train + n_val) {
      split.validation.queries.push_back(q);
    } else {
      split.test.queries.push_back(q);
    }
  }
  return split;
}

DatasetStats ComputeStats(const RankingDataset& dataset) {
  DatasetStats stats;
  stats.num_queries = dataset.num_queries();
  double vertex_sum = 0.0;
  double label_sum = 0.0;
  for (const auto& q : dataset.queries) {
    for (const auto& c : q.candidates) {
      ++stats.num_examples;
      vertex_sum += static_cast<double>(c.path.num_vertices());
      stats.max_path_vertices =
          std::max(stats.max_path_vertices, c.path.num_vertices());
      label_sum += c.label;
      stats.min_label = std::min(stats.min_label, c.label);
      stats.max_label = std::max(stats.max_label, c.label);
    }
  }
  if (stats.num_examples > 0) {
    stats.mean_candidates_per_query =
        static_cast<double>(stats.num_examples) /
        static_cast<double>(std::max<size_t>(1, stats.num_queries));
    stats.mean_path_vertices =
        vertex_sum / static_cast<double>(stats.num_examples);
    stats.mean_label = label_sum / static_cast<double>(stats.num_examples);
  }
  return stats;
}

std::string StatsToString(const DatasetStats& s) {
  return StrFormat(
      "queries=%zu examples=%zu cand/query=%.2f mean_len=%.1f max_len=%zu "
      "label[mean=%.3f min=%.3f max=%.3f]",
      s.num_queries, s.num_examples, s.mean_candidates_per_query,
      s.mean_path_vertices, s.max_path_vertices, s.mean_label, s.min_label,
      s.max_label);
}

}  // namespace pathrank::data
