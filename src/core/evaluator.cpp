#include "core/evaluator.h"

#include <memory>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "metrics/ranking_metrics.h"

namespace pathrank::core {
namespace {

/// Scores one query's candidate set with `model`.
void ScoreQuery(PathRankModel& model, const data::RankingQuery& query,
                std::vector<double>* predicted, std::vector<double>* truth) {
  std::vector<std::vector<int32_t>> seqs;
  seqs.reserve(query.candidates.size());
  truth->reserve(query.candidates.size());
  for (const auto& cand : query.candidates) {
    std::vector<int32_t> seq;
    seq.reserve(cand.path.vertices.size());
    for (graph::VertexId v : cand.path.vertices) {
      seq.push_back(static_cast<int32_t>(v));
    }
    seqs.push_back(std::move(seq));
    truth->push_back(cand.label);
  }
  const auto batch = nn::SequenceBatch::FromSequences(seqs);
  const std::vector<float> scores = model.Forward(batch);
  predicted->assign(scores.begin(), scores.end());
}

/// Single source of truth for the evaluation shard count: below 16
/// queries the replica/dispatch overhead outweighs the parallelism.
/// `max_shards` of 0 caps at the pool size.
size_t EvalShards(size_t num_queries, size_t max_shards) {
  if (num_queries < 16) return 1;
  return std::max<size_t>(1, NumShardsFor(num_queries, max_shards));
}

}  // namespace

std::string EvalResult::ToString() const {
  return StrFormat(
      "MAE=%.4f MARE=%.4f tau=%.4f rho=%.4f top1=%.3f ndcg=%.4f (n=%zu)",
      mae, mare, kendall_tau, spearman_rho, top1_accuracy, ndcg, num_queries);
}

EvalResult Evaluate(PathRankModel& model,
                    const data::RankingDataset& dataset) {
  // Forward caches make a model non-reentrant, so parallel evaluation
  // runs one replica per shard (shard 0 scores with the caller's model).
  const size_t num_shards = EvalShards(dataset.queries.size(), 0);
  std::vector<std::unique_ptr<PathRankModel>> replicas;
  std::vector<PathRankModel*> models(num_shards, &model);
  for (size_t s = 1; s < num_shards; ++s) {
    replicas.push_back(std::make_unique<PathRankModel>(model.vocab_size(),
                                                       model.config()));
    replicas.back()->CopyParametersFrom(model);
    models[s] = replicas.back().get();
  }
  return EvaluateWithReplicas(models, dataset);
}

EvalResult EvaluateWithReplicas(const std::vector<PathRankModel*>& models,
                                const data::RankingDataset& dataset) {
  PR_CHECK(!models.empty());
  const size_t num_queries = dataset.queries.size();
  // Scores are identical for any shard count — GEMM is bitwise stable and
  // replicas share the exact parameter values — and metrics are
  // accumulated in query order afterwards.
  const size_t num_shards = EvalShards(num_queries, models.size());
  std::vector<std::vector<double>> predicted(num_queries);
  std::vector<std::vector<double>> truth(num_queries);

  if (num_shards <= 1) {
    for (size_t q = 0; q < num_queries; ++q) {
      if (dataset.queries[q].candidates.empty()) continue;
      ScoreQuery(*models[0], dataset.queries[q], &predicted[q], &truth[q]);
    }
  } else {
    ParallelForShards(
        0, num_queries,
        [&](size_t shard, size_t lo, size_t hi) {
          PathRankModel& shard_model = *models[shard];
          for (size_t q = lo; q < hi; ++q) {
            if (dataset.queries[q].candidates.empty()) continue;
            ScoreQuery(shard_model, dataset.queries[q], &predicted[q],
                       &truth[q]);
          }
        },
        num_shards);
  }

  metrics::MetricAccumulator acc;
  for (size_t q = 0; q < num_queries; ++q) {
    if (predicted[q].empty()) continue;
    acc.AddQuery(predicted[q], truth[q]);
  }

  EvalResult result;
  result.mae = acc.mae();
  result.mare = acc.mare();
  result.kendall_tau = acc.mean_kendall_tau();
  result.spearman_rho = acc.mean_spearman_rho();
  result.top1_accuracy = acc.mean_top1();
  result.ndcg = acc.mean_ndcg();
  result.num_queries = acc.num_queries();
  return result;
}

}  // namespace pathrank::core
