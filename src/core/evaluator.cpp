#include "core/evaluator.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "metrics/ranking_metrics.h"

namespace pathrank::core {
namespace {

/// Scores one query's candidate set through the const inference path.
void ScoreQuery(const PathRankModel& model, InferenceScratch* scratch,
                const data::RankingQuery& query,
                std::vector<double>* predicted, std::vector<double>* truth) {
  std::vector<std::vector<int32_t>> seqs;
  seqs.reserve(query.candidates.size());
  truth->reserve(query.candidates.size());
  for (const auto& cand : query.candidates) {
    std::vector<int32_t> seq;
    seq.reserve(cand.path.vertices.size());
    for (graph::VertexId v : cand.path.vertices) {
      seq.push_back(static_cast<int32_t>(v));
    }
    seqs.push_back(std::move(seq));
    truth->push_back(cand.label);
  }
  const auto batch = nn::SequenceBatch::FromSequences(seqs);
  const std::vector<float> scores = model.ForwardInference(batch, scratch);
  predicted->assign(scores.begin(), scores.end());
}

/// Single source of truth for the evaluation shard count: below 16
/// queries the dispatch overhead outweighs the parallelism.
size_t EvalShards(size_t num_queries) {
  if (num_queries < 16) return 1;
  return std::max<size_t>(1, NumShardsFor(num_queries, 0));
}

}  // namespace

std::string EvalResult::ToString() const {
  return StrFormat(
      "MAE=%.4f MARE=%.4f tau=%.4f rho=%.4f top1=%.3f ndcg=%.4f (n=%zu)",
      mae, mare, kendall_tau, spearman_rho, top1_accuracy, ndcg, num_queries);
}

EvalResult Evaluate(const PathRankModel& model,
                    const data::RankingDataset& dataset) {
  const size_t num_queries = dataset.queries.size();
  // Scores are identical for any shard count — the inference kernels are
  // bitwise stable and every shard reads the same shared parameters — and
  // metrics are accumulated in query order afterwards.
  const size_t num_shards = EvalShards(num_queries);
  std::vector<std::vector<double>> predicted(num_queries);
  std::vector<std::vector<double>> truth(num_queries);

  if (num_shards <= 1) {
    InferenceScratch scratch;
    for (size_t q = 0; q < num_queries; ++q) {
      if (dataset.queries[q].candidates.empty()) continue;
      ScoreQuery(model, &scratch, dataset.queries[q], &predicted[q],
                 &truth[q]);
    }
  } else {
    std::vector<InferenceScratch> scratch(num_shards);
    ParallelForShards(
        0, num_queries,
        [&](size_t shard, size_t lo, size_t hi) {
          for (size_t q = lo; q < hi; ++q) {
            if (dataset.queries[q].candidates.empty()) continue;
            ScoreQuery(model, &scratch[shard], dataset.queries[q],
                       &predicted[q], &truth[q]);
          }
        },
        num_shards);
  }

  metrics::MetricAccumulator acc;
  for (size_t q = 0; q < num_queries; ++q) {
    if (predicted[q].empty()) continue;
    acc.AddQuery(predicted[q], truth[q]);
  }

  EvalResult result;
  result.mae = acc.mae();
  result.mare = acc.mare();
  result.kendall_tau = acc.mean_kendall_tau();
  result.spearman_rho = acc.mean_spearman_rho();
  result.top1_accuracy = acc.mean_top1();
  result.ndcg = acc.mean_ndcg();
  result.num_queries = acc.num_queries();
  return result;
}

}  // namespace pathrank::core
