#include "core/evaluator.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "metrics/ranking_metrics.h"

namespace pathrank::core {

std::string EvalResult::ToString() const {
  return StrFormat(
      "MAE=%.4f MARE=%.4f tau=%.4f rho=%.4f top1=%.3f ndcg=%.4f (n=%zu)",
      mae, mare, kendall_tau, spearman_rho, top1_accuracy, ndcg, num_queries);
}

EvalResult Evaluate(PathRankModel& model,
                    const data::RankingDataset& dataset) {
  metrics::MetricAccumulator acc;
  for (const auto& query : dataset.queries) {
    if (query.candidates.empty()) continue;
    std::vector<std::vector<int32_t>> seqs;
    std::vector<double> truth;
    seqs.reserve(query.candidates.size());
    truth.reserve(query.candidates.size());
    for (const auto& cand : query.candidates) {
      std::vector<int32_t> seq;
      seq.reserve(cand.path.vertices.size());
      for (graph::VertexId v : cand.path.vertices) {
        seq.push_back(static_cast<int32_t>(v));
      }
      seqs.push_back(std::move(seq));
      truth.push_back(cand.label);
    }
    const auto batch = nn::SequenceBatch::FromSequences(seqs);
    const std::vector<float> scores = model.Forward(batch);
    std::vector<double> predicted(scores.begin(), scores.end());
    acc.AddQuery(predicted, truth);
  }

  EvalResult result;
  result.mae = acc.mae();
  result.mare = acc.mare();
  result.kendall_tau = acc.mean_kendall_tau();
  result.spearman_rho = acc.mean_spearman_rho();
  result.top1_accuracy = acc.mean_top1();
  result.ndcg = acc.mean_ndcg();
  result.num_queries = acc.num_queries();
  return result;
}

}  // namespace pathrank::core
