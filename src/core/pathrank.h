// Umbrella header: include this to use the full PathRank library.
//
// Typical end-to-end flow (see examples/quickstart.cpp):
//
//   auto network = graph::BuildSyntheticNetwork({});
//   auto trips   = traj::TrajectoryGenerator(network, {}).Generate();
//   auto queries = data::GenerateQueries(network, trips, genConfig);
//   auto split   = data::SplitDataset({queries}, 0.7, 0.1, rng);
//   auto table   = embedding::TrainNode2Vec(network, n2vConfig);
//   core::PathRankModel model(network.num_vertices(), modelConfig);
//   model.InitializeEmbedding(table);
//   core::TrainPathRank(model, split.train, split.validation, trainConfig);
//   auto result  = core::Evaluate(model, split.test);
//   core::Ranker ranker(network, model);
//   auto ranked  = ranker.Rank(source, destination);
#pragma once

#include "core/config.h"       // IWYU pragma: export
#include "core/evaluator.h"    // IWYU pragma: export
#include "core/model.h"        // IWYU pragma: export
#include "core/ranker.h"       // IWYU pragma: export
#include "core/trainer.h"      // IWYU pragma: export
#include "data/batcher.h"      // IWYU pragma: export
#include "data/candidate_generation.h"  // IWYU pragma: export
#include "data/dataset.h"      // IWYU pragma: export
#include "embedding/node2vec.h"         // IWYU pragma: export
#include "graph/network_builder.h"      // IWYU pragma: export
#include "graph/road_network.h"         // IWYU pragma: export
#include "metrics/ranking_metrics.h"    // IWYU pragma: export
#include "routing/astar.h"     // IWYU pragma: export
#include "routing/dijkstra.h"  // IWYU pragma: export
#include "routing/diversified.h"        // IWYU pragma: export
#include "routing/yen.h"       // IWYU pragma: export
#include "traj/trajectory_generator.h"  // IWYU pragma: export
