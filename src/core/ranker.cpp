#include "core/ranker.h"

#include <algorithm>

#include "routing/cost_model.h"
#include "routing/diversified.h"
#include "routing/penalty_alternatives.h"
#include "routing/yen.h"

namespace pathrank::core {

std::vector<ScoredPath> Ranker::Rank(
    graph::VertexId source, graph::VertexId destination,
    const data::CandidateGenConfig& gen) const {
  // Same metric the training candidates were generated with.
  const auto cost = routing::EdgeCostFn::TravelTime(*network_);
  std::vector<routing::Path> candidates;
  switch (gen.strategy) {
    case data::CandidateStrategy::kTopK:
      candidates = routing::TopKShortestPaths(*network_, source, destination,
                                              cost, gen.k);
      break;
    case data::CandidateStrategy::kDiversifiedTopK: {
      routing::DiversifiedOptions options;
      options.k = gen.k;
      options.similarity_threshold = gen.similarity_threshold;
      options.max_enumerated = gen.max_enumerated;
      candidates = routing::DiversifiedTopK(*network_, source, destination,
                                            cost, options);
      break;
    }
    case data::CandidateStrategy::kPenalty: {
      routing::PenaltyOptions options;
      options.k = gen.k;
      options.penalty_factor = gen.penalty_factor;
      candidates = routing::PenaltyAlternatives(*network_, source,
                                                destination, cost, options);
      break;
    }
  }
  return Score(candidates);
}

std::vector<ScoredPath> Ranker::Score(
    const std::vector<routing::Path>& paths) const {
  std::vector<ScoredPath> scored;
  if (paths.empty()) return scored;

  std::vector<std::vector<int32_t>> seqs;
  seqs.reserve(paths.size());
  for (const auto& p : paths) {
    std::vector<int32_t> seq;
    seq.reserve(p.vertices.size());
    for (graph::VertexId v : p.vertices) {
      seq.push_back(static_cast<int32_t>(v));
    }
    seqs.push_back(std::move(seq));
  }
  const auto batch = nn::SequenceBatch::FromSequences(seqs);
  const std::vector<float> scores = model_->Forward(batch);

  scored.reserve(paths.size());
  for (size_t i = 0; i < paths.size(); ++i) {
    scored.push_back({paths[i], static_cast<double>(scores[i])});
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredPath& a, const ScoredPath& b) {
              return a.score > b.score;
            });
  return scored;
}

}  // namespace pathrank::core
