#include "core/ranker.h"

namespace pathrank::core {
namespace {

serving::ServingOptions SingleReplica() {
  serving::ServingOptions options;
  options.num_replicas = 1;  // the legacy facade was single-caller
  return options;
}

}  // namespace

Ranker::Ranker(const graph::RoadNetwork& network, const PathRankModel& model)
    : engine_(network, model, SingleReplica()) {}

std::vector<ScoredPath> Ranker::Rank(
    graph::VertexId source, graph::VertexId destination,
    const data::CandidateGenConfig& gen) const {
  return engine_.Rank(source, destination, gen);
}

std::vector<ScoredPath> Ranker::Score(
    const std::vector<routing::Path>& paths) const {
  return engine_.ScoreBatch(paths);
}

}  // namespace pathrank::core
