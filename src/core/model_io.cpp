#include "core/model_io.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <unordered_map>

#include "nn/serialize.h"

namespace pathrank::core {
namespace {

constexpr uint32_t kModelMagic = 0x50524D44;  // "PRMD"
constexpr uint32_t kVersion = 1;

void Put32(std::ostream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void Put64(std::ostream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutF64(std::ostream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

uint32_t Get32(std::istream& in) {
  uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("truncated model file");
  return v;
}

uint64_t Get64(std::istream& in) {
  uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("truncated model file");
  return v;
}

double GetF64(std::istream& in) {
  double v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("truncated model file");
  return v;
}

}  // namespace

void SaveModel(const PathRankModel& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + path);
  const PathRankConfig& cfg = model.config();
  Put32(out, kModelMagic);
  Put32(out, kVersion);
  Put64(out, model.vocab_size());
  Put64(out, cfg.embedding_dim);
  Put64(out, cfg.hidden_size);
  Put32(out, static_cast<uint32_t>(cfg.cell));
  Put32(out, cfg.bidirectional ? 1 : 0);
  Put32(out, static_cast<uint32_t>(cfg.pooling));
  Put32(out, cfg.finetune_embedding ? 1 : 0);
  Put32(out, cfg.multi_task ? 1 : 0);
  PutF64(out, cfg.aux_loss_weight);
  Put64(out, cfg.seed);

  const nn::ConstParameterList params = model.Parameters();
  {
    // Duplicate names would silently alias slots at load time.
    std::unordered_map<std::string, int> seen;
    for (const nn::Parameter* p : params) {
      if (++seen[p->name] > 1) {
        throw std::runtime_error("duplicate parameter name: " + p->name);
      }
    }
  }
  Put32(out, static_cast<uint32_t>(params.size()));
  for (const nn::Parameter* p : params) {
    Put32(out, static_cast<uint32_t>(p->name.size()));
    out.write(p->name.data(),
              static_cast<std::streamsize>(p->name.size()));
    nn::WriteMatrix(out, p->value);
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

std::unique_ptr<PathRankModel> LoadModel(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  if (Get32(in) != kModelMagic) {
    throw std::runtime_error("not a PathRank model file: " + path);
  }
  if (Get32(in) != kVersion) {
    throw std::runtime_error("unsupported model version in " + path);
  }
  const uint64_t vocab = Get64(in);
  PathRankConfig cfg;
  cfg.embedding_dim = Get64(in);
  cfg.hidden_size = Get64(in);
  cfg.cell = static_cast<nn::CellType>(Get32(in));
  cfg.bidirectional = Get32(in) != 0;
  cfg.pooling = static_cast<Pooling>(Get32(in));
  cfg.finetune_embedding = Get32(in) != 0;
  cfg.multi_task = Get32(in) != 0;
  cfg.aux_loss_weight = GetF64(in);
  cfg.seed = Get64(in);

  // Skip-init: every parameter is required to be present in the
  // checkpoint below, so the random init would be overwritten anyway.
  auto model = std::make_unique<PathRankModel>(vocab, cfg,
                                               InitMode::kSkipInit);

  const uint32_t count = Get32(in);
  std::unordered_map<std::string, nn::Matrix> loaded;
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t name_len = Get32(in);
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    if (!in) throw std::runtime_error("truncated model file");
    loaded.emplace(std::move(name), nn::ReadMatrix(in));
  }
  for (nn::Parameter* p : model->Parameters()) {
    auto it = loaded.find(p->name);
    if (it == loaded.end()) {
      throw std::runtime_error("parameter missing from checkpoint: " +
                               p->name);
    }
    if (!it->second.SameShape(p->value)) {
      throw std::runtime_error("parameter shape mismatch: " + p->name);
    }
    p->value = std::move(it->second);
  }
  return model;
}

}  // namespace pathrank::core
