// End-to-end ranking service: given (source, destination), generate
// candidate paths with the advanced-routing component (top-k or diversified
// top-k) and order them by the trained PathRank model's estimated scores —
// the deployment-time use the paper's "Solution Overview" describes.
#pragma once

#include <vector>

#include "core/model.h"
#include "data/candidate_generation.h"
#include "graph/road_network.h"

namespace pathrank::core {

/// One ranked candidate.
struct ScoredPath {
  routing::Path path;
  double score = 0.0;
};

/// Stateless facade binding a network and a trained model.
class Ranker {
 public:
  Ranker(const graph::RoadNetwork& network, PathRankModel& model)
      : network_(&network), model_(&model) {}

  /// Generates candidates and returns them sorted by descending estimated
  /// score. `gen` controls the candidate strategy (defaults to D-TkDI).
  std::vector<ScoredPath> Rank(
      graph::VertexId source, graph::VertexId destination,
      const data::CandidateGenConfig& gen = data::CandidateGenConfig{}) const;

  /// Scores externally supplied candidate paths (sorted descending).
  std::vector<ScoredPath> Score(const std::vector<routing::Path>& paths) const;

 private:
  const graph::RoadNetwork* network_;
  PathRankModel* model_;
};

}  // namespace pathrank::core
