// DEPRECATED end-to-end ranking facade, kept as a thin shim over
// serving::ServingEngine for source compatibility. New code should build a
// ServingEngine directly (serving/serving_engine.h) — it shares one
// immutable snapshot across a replica pool, is safe to call from many
// threads, and supports hot-swap (SwapSnapshot) — and put concurrent
// callers behind the batched entry points: serving::BatchingQueue
// (serving/batching_queue.h) to coalesce requests into one SequenceBatch
// per scoring call, or serving::ShardedEngine (serving/sharded_engine.h)
// to partition traffic across engines. Ranker wraps a single-replica
// engine and predates all three.
//
// Semantics note: the engine captures an immutable snapshot of the model's
// parameters at Ranker construction; training the model afterwards does
// not change this Ranker's scores.
#pragma once

#include <vector>

#include "core/model.h"
#include "data/candidate_generation.h"
#include "graph/road_network.h"
#include "serving/serving_engine.h"

namespace pathrank::core {

/// One ranked candidate (compatibility alias — the type lives with the
/// serving stack now).
using ScoredPath = serving::ScoredPath;

/// Deprecated facade binding a network and a trained model; see above.
class Ranker {
 public:
  Ranker(const graph::RoadNetwork& network, const PathRankModel& model);

  /// Generates candidates and returns them sorted by descending estimated
  /// score. `gen` controls the candidate strategy (defaults to D-TkDI).
  std::vector<ScoredPath> Rank(
      graph::VertexId source, graph::VertexId destination,
      const data::CandidateGenConfig& gen = data::CandidateGenConfig{}) const;

  /// Scores externally supplied candidate paths (sorted descending).
  std::vector<ScoredPath> Score(const std::vector<routing::Path>& paths) const;

 private:
  serving::ServingEngine engine_;
};

}  // namespace pathrank::core
