// Configuration of the PathRank model and trainer.
#pragma once

#include <cstdint>
#include <string>

#include "nn/loss.h"
#include "nn/recurrent.h"
#include "nn/scheduler.h"

namespace pathrank::core {

/// How the GRU's hidden states are reduced to one path representation.
/// kFinalState is the paper's architecture (the RNN's last hidden state
/// feeds the FC); kMean averages all hidden states H_1..H_Z (another
/// reading of the poster figure). On the calibrated benchmark workload
/// final-state wins (see bench_pooling_ablation), so it is the default.
enum class Pooling {
  kFinalState,  // h_Z only (paper)
  kMean,        // average of h_1..h_Z over the true length
};

/// Model architecture (the paper's PathRank: embedding -> GRU -> FC).
struct PathRankConfig {
  /// Vertex-embedding feature size (the paper's M; evaluated at 64, 128).
  size_t embedding_dim = 64;
  /// Recurrent hidden state size.
  size_t hidden_size = 128;
  /// Recurrent cell (the paper uses GRU; RNN/LSTM for ablation).
  nn::CellType cell = nn::CellType::kGru;
  /// Two GRU chains (forward + backward) as in the paper's overview
  /// figure; the two path representations are concatenated before the FC
  /// head.
  bool bidirectional = true;
  /// Hidden-state reduction feeding the FC head.
  Pooling pooling = Pooling::kFinalState;
  /// PR-A2 when true (embedding matrix B updated during training);
  /// PR-A1 when false (B frozen at its node2vec initialisation).
  bool finetune_embedding = true;
  /// Multi-task learning (the full paper's PR-M direction): two auxiliary
  /// heads on the shared path representation predict the candidate's
  /// normalised length and travel time. The auxiliary signal regularises
  /// the representation towards physical path properties.
  bool multi_task = false;
  /// Weight of each auxiliary loss relative to the similarity loss.
  double aux_loss_weight = 0.3;
  /// Parameter-init seed.
  uint64_t seed = 7;

  /// "PR-A1" / "PR-A2" as used in the paper's tables.
  std::string VariantName() const {
    return finetune_embedding ? "PR-A2" : "PR-A1";
  }
};

/// Optimisation settings.
struct TrainerConfig {
  int epochs = 10;
  size_t batch_size = 32;
  double learning_rate = 1e-3;
  /// Global gradient-norm clip (0 disables).
  double clip_norm = 5.0;
  nn::LossType loss = nn::LossType::kMse;
  nn::ScheduleType schedule = nn::ScheduleType::kCosine;
  /// Early stopping: stop after `patience` epochs without validation-MAE
  /// improvement (0 disables). The best-epoch weights are restored.
  int patience = 3;
  /// Shuffling seed.
  uint64_t seed = 17;
  /// Log per-epoch progress at INFO level.
  bool verbose = false;
};

}  // namespace pathrank::core
