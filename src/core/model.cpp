#include "core/model.h"

#include <cmath>

#include "common/logging.h"

namespace pathrank::core {
namespace {

/// pooled[b] = mean over t < len_b of hidden_at(t)[b]; `hidden_at(t)` is
/// the [B x hidden] state after step t.
template <typename HiddenAt>
void MeanPoolImpl(const HiddenAt& hidden_at, size_t hidden,
                  const std::vector<int32_t>& lengths, size_t num_steps,
                  nn::Matrix* pooled) {
  const size_t batch = lengths.size();
  pooled->Resize(batch, hidden);
  for (size_t t = 0; t < num_steps; ++t) {
    const nn::Matrix& h = hidden_at(t);
    for (size_t b = 0; b < batch; ++b) {
      if (static_cast<int32_t>(t) >= lengths[b]) continue;
      const float* src = h.row(b);
      float* dst = pooled->row(b);
      for (size_t c = 0; c < hidden; ++c) dst[c] += src[c];
    }
  }
  for (size_t b = 0; b < batch; ++b) {
    const float inv = 1.0f / static_cast<float>(lengths[b]);
    float* dst = pooled->row(b);
    for (size_t c = 0; c < hidden; ++c) dst[c] *= inv;
  }
}

/// Training-path pooling over the cell's cached hidden states.
void MeanPool(const nn::RecurrentLayer& cell, const std::vector<int32_t>& lengths,
              size_t num_steps, nn::Matrix* pooled) {
  MeanPoolImpl([&](size_t t) -> const nn::Matrix& { return cell.hidden_state(t); },
               cell.hidden_size(), lengths, num_steps, pooled);
}

/// Inference-path pooling over a RecurrentScratch's hidden states
/// (h[t + 1] is the state after step t).
void MeanPoolScratch(const std::vector<nn::Matrix>& h, size_t hidden,
                     const std::vector<int32_t>& lengths, size_t num_steps,
                     nn::Matrix* pooled) {
  MeanPoolImpl([&](size_t t) -> const nn::Matrix& { return h[t + 1]; },
               hidden, lengths, num_steps, pooled);
}

/// Expands d(loss)/d(pooled) into per-step hidden-state gradients.
void MeanPoolBackward(const nn::Matrix& d_pooled,
                      const std::vector<int32_t>& lengths, size_t num_steps,
                      std::vector<nn::Matrix>* d_h_steps) {
  const size_t batch = d_pooled.rows();
  const size_t hidden = d_pooled.cols();
  if (d_h_steps->size() != num_steps) d_h_steps->resize(num_steps);
  for (size_t t = 0; t < num_steps; ++t) {
    nn::Matrix& d = (*d_h_steps)[t];
    d.Resize(batch, hidden);  // zero-fill: padded rows must carry 0 grad
    for (size_t b = 0; b < batch; ++b) {
      if (static_cast<int32_t>(t) >= lengths[b]) continue;
      const float inv = 1.0f / static_cast<float>(lengths[b]);
      const float* src = d_pooled.row(b);
      float* dst = d.row(b);
      for (size_t c = 0; c < hidden; ++c) dst[c] = src[c] * inv;
    }
  }
}

}  // namespace

PathRankModel::PathRankModel(size_t vocab_size, const PathRankConfig& config,
                             InitMode init)
    : config_(config) {
  const size_t head_in =
      config.bidirectional ? 2 * config.hidden_size : config.hidden_size;
  if (init == InitMode::kSkipInit) {
    // Replica/snapshot path: allocate every tensor but skip the RNG draws
    // — the caller overwrites all values (CopyParametersFrom, LoadModel).
    embedding_ = std::make_unique<nn::EmbeddingLayer>(
        vocab_size, config.embedding_dim, nn::kSkipInit);
    fwd_cell_ = nn::MakeRecurrentLayer(config.cell, config.embedding_dim,
                                       config.hidden_size, nn::kSkipInit,
                                       "cell_fwd");
    if (config.bidirectional) {
      bwd_cell_ = nn::MakeRecurrentLayer(config.cell, config.embedding_dim,
                                         config.hidden_size, nn::kSkipInit,
                                         "cell_bwd");
    }
    head_ = std::make_unique<nn::LinearLayer>(head_in, 1, nn::kSkipInit,
                                              "head");
    if (config.multi_task) {
      aux_length_head_ = std::make_unique<nn::LinearLayer>(
          head_in, 1, nn::kSkipInit, "aux_len");
      aux_time_head_ = std::make_unique<nn::LinearLayer>(
          head_in, 1, nn::kSkipInit, "aux_time");
    }
  } else {
    pathrank::Rng rng(config.seed);
    embedding_ = std::make_unique<nn::EmbeddingLayer>(
        vocab_size, config.embedding_dim, rng);
    fwd_cell_ = nn::MakeRecurrentLayer(config.cell, config.embedding_dim,
                                       config.hidden_size, rng, "cell_fwd");
    if (config.bidirectional) {
      bwd_cell_ = nn::MakeRecurrentLayer(config.cell, config.embedding_dim,
                                         config.hidden_size, rng, "cell_bwd");
    }
    head_ = std::make_unique<nn::LinearLayer>(head_in, 1, rng, "head");
    if (config.multi_task) {
      aux_length_head_ =
          std::make_unique<nn::LinearLayer>(head_in, 1, rng, "aux_len");
      aux_time_head_ =
          std::make_unique<nn::LinearLayer>(head_in, 1, rng, "aux_time");
    }
  }
  embedding_->set_frozen(!config.finetune_embedding);
}

void PathRankModel::InitializeEmbedding(const nn::Matrix& table) {
  embedding_->LoadTable(table);
}

std::vector<float> PathRankModel::Forward(const nn::SequenceBatch& batch) {
  return ForwardFull(batch).scores;
}

PathRankModel::Outputs PathRankModel::ForwardFull(
    const nn::SequenceBatch& batch) {
  PR_CHECK(batch.batch_size > 0 && batch.max_len > 0);
  batch_ = batch;
  const size_t T = batch.max_len;
  const size_t B = batch.batch_size;
  const size_t H = config_.hidden_size;

  if (x_steps_.size() != T) x_steps_.resize(T);
  for (size_t t = 0; t < T; ++t) {
    embedding_->Lookup(batch_, t, &x_steps_[t]);
  }
  nn::Matrix repr_fwd;
  fwd_cell_->Forward(x_steps_, batch_.lengths, &repr_fwd);
  if (config_.pooling == Pooling::kMean) {
    MeanPool(*fwd_cell_, batch_.lengths, T, &repr_fwd);
  }

  if (config_.bidirectional) {
    batch_rev_ = batch_.Reversed();
    if (x_steps_rev_.size() != T) x_steps_rev_.resize(T);
    for (size_t t = 0; t < T; ++t) {
      embedding_->Lookup(batch_rev_, t, &x_steps_rev_[t]);
    }
    nn::Matrix repr_bwd;
    bwd_cell_->Forward(x_steps_rev_, batch_rev_.lengths, &repr_bwd);
    if (config_.pooling == Pooling::kMean) {
      MeanPool(*bwd_cell_, batch_rev_.lengths, T, &repr_bwd);
    }

    concat_h_.ResizeNoZero(B, 2 * H);  // fully overwritten below
    for (size_t b = 0; b < B; ++b) {
      float* dst = concat_h_.row(b);
      std::copy(repr_fwd.row(b), repr_fwd.row(b) + H, dst);
      std::copy(repr_bwd.row(b), repr_bwd.row(b) + H, dst + H);
    }
  } else {
    concat_h_ = repr_fwd;
  }

  head_->Forward(concat_h_, &logits_);
  scores_.resize(B);
  for (size_t b = 0; b < B; ++b) {
    scores_[b] = 1.0f / (1.0f + std::exp(-logits_.at(b, 0)));
  }
  outputs_.scores = scores_;
  outputs_.aux_length.clear();
  outputs_.aux_time.clear();
  if (config_.multi_task) {
    aux_length_head_->Forward(concat_h_, &aux_length_logits_);
    aux_time_head_->Forward(concat_h_, &aux_time_logits_);
    outputs_.aux_length.resize(B);
    outputs_.aux_time.resize(B);
    for (size_t b = 0; b < B; ++b) {
      outputs_.aux_length[b] =
          1.0f / (1.0f + std::exp(-aux_length_logits_.at(b, 0)));
      outputs_.aux_time[b] =
          1.0f / (1.0f + std::exp(-aux_time_logits_.at(b, 0)));
    }
  }
  return outputs_;
}

std::vector<float> PathRankModel::ForwardInference(
    const nn::SequenceBatch& batch, InferenceScratch* scratch) const {
  return ForwardInferenceFull(batch, scratch).scores;
}

PathRankModel::Outputs PathRankModel::ForwardInferenceFull(
    const nn::SequenceBatch& batch, InferenceScratch* scratch) const {
  PR_CHECK(batch.batch_size > 0 && batch.max_len > 0);
  InferenceScratch& s = *scratch;
  const size_t T = batch.max_len;
  const size_t B = batch.batch_size;
  const size_t H = config_.hidden_size;

  // Mirrors ForwardFull operation for operation (scores must be bitwise
  // identical), with every activation in the caller's scratch.
  if (s.x_steps.size() != T) s.x_steps.resize(T);
  for (size_t t = 0; t < T; ++t) {
    embedding_->Lookup(batch, t, &s.x_steps[t]);
  }
  fwd_cell_->ForwardInference(s.x_steps, batch.lengths, &s.fwd_cell,
                              &s.repr_fwd);
  if (config_.pooling == Pooling::kMean) {
    MeanPoolScratch(s.fwd_cell.h, H, batch.lengths, T, &s.repr_fwd);
  }

  if (config_.bidirectional) {
    s.batch_rev = batch.Reversed();
    if (s.x_steps_rev.size() != T) s.x_steps_rev.resize(T);
    for (size_t t = 0; t < T; ++t) {
      embedding_->Lookup(s.batch_rev, t, &s.x_steps_rev[t]);
    }
    bwd_cell_->ForwardInference(s.x_steps_rev, s.batch_rev.lengths,
                                &s.bwd_cell, &s.repr_bwd);
    if (config_.pooling == Pooling::kMean) {
      MeanPoolScratch(s.bwd_cell.h, H, s.batch_rev.lengths, T, &s.repr_bwd);
    }

    s.concat_h.ResizeNoZero(B, 2 * H);  // fully overwritten below
    for (size_t b = 0; b < B; ++b) {
      float* dst = s.concat_h.row(b);
      std::copy(s.repr_fwd.row(b), s.repr_fwd.row(b) + H, dst);
      std::copy(s.repr_bwd.row(b), s.repr_bwd.row(b) + H, dst + H);
    }
  } else {
    s.concat_h = s.repr_fwd;
  }

  head_->ForwardInference(s.concat_h, &s.logits);
  Outputs out;
  out.scores.resize(B);
  for (size_t b = 0; b < B; ++b) {
    out.scores[b] = 1.0f / (1.0f + std::exp(-s.logits.at(b, 0)));
  }
  if (config_.multi_task) {
    aux_length_head_->ForwardInference(s.concat_h, &s.aux_length_logits);
    aux_time_head_->ForwardInference(s.concat_h, &s.aux_time_logits);
    out.aux_length.resize(B);
    out.aux_time.resize(B);
    for (size_t b = 0; b < B; ++b) {
      out.aux_length[b] =
          1.0f / (1.0f + std::exp(-s.aux_length_logits.at(b, 0)));
      out.aux_time[b] = 1.0f / (1.0f + std::exp(-s.aux_time_logits.at(b, 0)));
    }
  }
  return out;
}

void PathRankModel::Backward(const std::vector<float>& d_scores) {
  BackwardFull(d_scores, {}, {});
}

void PathRankModel::BackwardFull(const std::vector<float>& d_scores,
                                 const std::vector<float>& d_aux_length,
                                 const std::vector<float>& d_aux_time) {
  const size_t B = batch_.batch_size;
  const size_t H = config_.hidden_size;
  const size_t T = batch_.max_len;
  PR_CHECK(d_scores.size() == B) << "gradient batch-size mismatch";

  // Through the sigmoid: dL/dlogit = dL/ds * s * (1 - s).
  nn::Matrix d_logits(B, 1);
  for (size_t b = 0; b < B; ++b) {
    const float s = scores_[b];
    d_logits.at(b, 0) = d_scores[b] * s * (1.0f - s);
  }

  nn::Matrix d_concat;
  head_->Backward(d_logits, &d_concat);

  // Auxiliary heads contribute to the shared representation's gradient.
  auto add_aux = [&](nn::LinearLayer& aux_head, const nn::Matrix& logits,
                     const std::vector<float>& outputs,
                     const std::vector<float>& d_out) {
    if (d_out.empty()) return;
    PR_CHECK(d_out.size() == B);
    (void)logits;
    nn::Matrix d_aux_logits(B, 1);
    for (size_t b = 0; b < B; ++b) {
      const float s = outputs[b];
      d_aux_logits.at(b, 0) = d_out[b] * s * (1.0f - s);
    }
    nn::Matrix d_aux_concat;
    aux_head.Backward(d_aux_logits, &d_aux_concat);
    d_concat.Add(d_aux_concat);
  };
  if (config_.multi_task) {
    add_aux(*aux_length_head_, aux_length_logits_, outputs_.aux_length,
            d_aux_length);
    add_aux(*aux_time_head_, aux_time_logits_, outputs_.aux_time, d_aux_time);
  } else {
    PR_CHECK(d_aux_length.empty() && d_aux_time.empty())
        << "auxiliary gradients require multi_task";
  }

  auto backprop_cell = [&](nn::RecurrentLayer& cell,
                           const nn::Matrix& d_repr,
                           const nn::SequenceBatch& cell_batch,
                           std::vector<nn::Matrix>* d_x_steps) {
    if (config_.pooling == Pooling::kMean) {
      std::vector<nn::Matrix> d_h_steps;
      MeanPoolBackward(d_repr, cell_batch.lengths, T, &d_h_steps);
      cell.BackwardSteps(d_h_steps, d_x_steps);
    } else {
      cell.Backward(d_repr, d_x_steps);
    }
  };

  std::vector<nn::Matrix> d_x_steps;
  if (config_.bidirectional) {
    nn::Matrix d_repr_fwd(B, H);
    nn::Matrix d_repr_bwd(B, H);
    for (size_t b = 0; b < B; ++b) {
      const float* src = d_concat.row(b);
      std::copy(src, src + H, d_repr_fwd.row(b));
      std::copy(src + H, src + 2 * H, d_repr_bwd.row(b));
    }
    backprop_cell(*fwd_cell_, d_repr_fwd, batch_, &d_x_steps);
    for (size_t t = 0; t < T; ++t) {
      embedding_->AccumulateGrad(batch_, t, d_x_steps[t]);
    }
    backprop_cell(*bwd_cell_, d_repr_bwd, batch_rev_, &d_x_steps);
    for (size_t t = 0; t < T; ++t) {
      embedding_->AccumulateGrad(batch_rev_, t, d_x_steps[t]);
    }
  } else {
    backprop_cell(*fwd_cell_, d_concat, batch_, &d_x_steps);
    for (size_t t = 0; t < T; ++t) {
      embedding_->AccumulateGrad(batch_, t, d_x_steps[t]);
    }
  }
}

void PathRankModel::CopyParametersFrom(const PathRankModel& other) {
  const nn::ConstParameterList src = other.Parameters();
  const nn::ParameterList dst = Parameters();
  PR_CHECK(src.size() == dst.size()) << "architecture mismatch";
  for (size_t i = 0; i < src.size(); ++i) {
    PR_CHECK(dst[i]->value.SameShape(src[i]->value))
        << dst[i]->name << " shape mismatch";
    dst[i]->value = src[i]->value;
  }
}

nn::ParameterList PathRankModel::Parameters() {
  nn::ParameterList params;
  params.push_back(&embedding_->parameter());
  for (nn::Parameter* p : fwd_cell_->Parameters()) params.push_back(p);
  if (bwd_cell_ != nullptr) {
    for (nn::Parameter* p : bwd_cell_->Parameters()) params.push_back(p);
  }
  for (nn::Parameter* p : head_->Parameters()) params.push_back(p);
  if (aux_length_head_ != nullptr) {
    for (nn::Parameter* p : aux_length_head_->Parameters()) params.push_back(p);
    for (nn::Parameter* p : aux_time_head_->Parameters()) params.push_back(p);
  }
  return params;
}

nn::ConstParameterList PathRankModel::Parameters() const {
  nn::ConstParameterList params;
  params.push_back(&embedding_->parameter());
  const auto& fwd = *fwd_cell_;
  for (const nn::Parameter* p : fwd.Parameters()) params.push_back(p);
  if (bwd_cell_ != nullptr) {
    const auto& bwd = *bwd_cell_;
    for (const nn::Parameter* p : bwd.Parameters()) params.push_back(p);
  }
  const auto& head = *head_;
  for (const nn::Parameter* p : head.Parameters()) params.push_back(p);
  if (aux_length_head_ != nullptr) {
    const auto& aux_len = *aux_length_head_;
    const auto& aux_time = *aux_time_head_;
    for (const nn::Parameter* p : aux_len.Parameters()) params.push_back(p);
    for (const nn::Parameter* p : aux_time.Parameters()) params.push_back(p);
  }
  return params;
}

size_t PathRankModel::NumParameters() const {
  size_t total = 0;
  for (const nn::Parameter* p : Parameters()) total += p->value.size();
  return total;
}

}  // namespace pathrank::core
