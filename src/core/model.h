// The PathRank scoring model (paper Fig. "PathRank Overview"):
//
//   vertex ids --EmbeddingLayer(B)--> x_1..x_Z --GRU--> h_Z --FC+sigmoid-->
//   estimated similarity score in (0, 1)
//
// Bidirectional mode runs a second chain over the reversed sequence and
// concatenates both final states (the figure's two GRU rows). The embedding
// matrix B is initialised from node2vec and frozen (PR-A1) or fine-tuned
// (PR-A2).
#pragma once

#include <memory>
#include <vector>

#include "core/config.h"
#include "nn/embedding_layer.h"
#include "nn/linear.h"
#include "nn/recurrent.h"
#include "nn/sequence_batch.h"

namespace pathrank::core {

/// How a PathRankModel's weights are produced at construction.
enum class InitMode {
  kRandomInit,  // seeded random init (training from scratch)
  kSkipInit,    // weights left zero — for replicas/snapshots/checkpoint
                // loads whose values are copied in wholesale, skipping
                // O(vocab x dim) RNG draws per replica
};

/// Caller-owned activation buffers for the const inference path
/// (ForwardInference). The model never writes activations into itself on
/// that path, so one shared model plus one InferenceScratch per thread
/// gives race-free concurrent scoring. Buffers are reshaped, not
/// reallocated, when batch geometry repeats across calls.
struct InferenceScratch {
  nn::SequenceBatch batch_rev;
  std::vector<nn::Matrix> x_steps;
  std::vector<nn::Matrix> x_steps_rev;
  nn::RecurrentScratch fwd_cell;
  nn::RecurrentScratch bwd_cell;
  nn::Matrix repr_fwd;
  nn::Matrix repr_bwd;
  nn::Matrix concat_h;
  nn::Matrix logits;
  nn::Matrix aux_length_logits;
  nn::Matrix aux_time_logits;
};

/// Trainable path-scoring network.
class PathRankModel {
 public:
  /// Builds the network for `vocab_size` vertices.
  PathRankModel(size_t vocab_size, const PathRankConfig& config,
                InitMode init = InitMode::kRandomInit);

  /// Initialises the embedding matrix B from pre-trained vectors
  /// [vocab_size x embedding_dim] (the spatial network embedding).
  void InitializeEmbedding(const nn::Matrix& table);

  /// All model outputs for one batch. Auxiliary vectors are empty unless
  /// `multi_task` is enabled.
  struct Outputs {
    std::vector<float> scores;      // estimated similarity, in (0, 1)
    std::vector<float> aux_length;  // normalised path length, in (0, 1)
    std::vector<float> aux_time;    // normalised travel time, in (0, 1)
  };

  /// Scores a batch of vertex sequences; returns one score per row.
  /// Caches activations for a subsequent Backward.
  std::vector<float> Forward(const nn::SequenceBatch& batch);

  /// Forward pass that also produces the auxiliary-head outputs.
  Outputs ForwardFull(const nn::SequenceBatch& batch);

  /// Inference-only forward: bitwise-identical scores to Forward, but all
  /// activations land in the caller-owned `scratch` instead of the member
  /// caches, so the model is never mutated. Many threads may score through
  /// one shared const model concurrently, each with its own scratch. No
  /// Backward may follow (use Forward for training).
  std::vector<float> ForwardInference(const nn::SequenceBatch& batch,
                                      InferenceScratch* scratch) const;

  /// Inference forward including the auxiliary-head outputs.
  Outputs ForwardInferenceFull(const nn::SequenceBatch& batch,
                               InferenceScratch* scratch) const;

  /// Backpropagates d(loss)/d(score) for the last Forward batch and
  /// accumulates parameter gradients.
  void Backward(const std::vector<float>& d_scores);

  /// Backward including auxiliary-head gradients (multi-task training).
  /// Empty aux gradients are treated as zero.
  void BackwardFull(const std::vector<float>& d_scores,
                    const std::vector<float>& d_aux_length,
                    const std::vector<float>& d_aux_time);

  /// All trainable parameters (embedding respects the PR-A1 freeze).
  nn::ParameterList Parameters();

  /// Read-only parameter walk, same order as the mutable overload — the
  /// basis for snapshots and checkpointing of const models.
  nn::ConstParameterList Parameters() const;

  /// Copies every parameter value from `other` (must share architecture).
  /// Used to build data-parallel worker replicas that then stay bitwise in
  /// sync by applying identical reduced-gradient updates.
  void CopyParametersFrom(const PathRankModel& other);

  const PathRankConfig& config() const { return config_; }
  size_t vocab_size() const { return embedding_->vocab_size(); }

  /// Total parameter count (documentation/diagnostics).
  size_t NumParameters() const;

 private:
  PathRankConfig config_;
  std::unique_ptr<nn::EmbeddingLayer> embedding_;
  std::unique_ptr<nn::RecurrentLayer> fwd_cell_;
  std::unique_ptr<nn::RecurrentLayer> bwd_cell_;  // null when unidirectional
  std::unique_ptr<nn::LinearLayer> head_;
  std::unique_ptr<nn::LinearLayer> aux_length_head_;  // multi-task only
  std::unique_ptr<nn::LinearLayer> aux_time_head_;    // multi-task only

  // Forward caches.
  nn::SequenceBatch batch_;
  nn::SequenceBatch batch_rev_;
  std::vector<nn::Matrix> x_steps_;
  std::vector<nn::Matrix> x_steps_rev_;
  nn::Matrix concat_h_;
  nn::Matrix logits_;
  nn::Matrix aux_length_logits_;
  nn::Matrix aux_time_logits_;
  Outputs outputs_;
  std::vector<float> scores_;
};

}  // namespace pathrank::core
