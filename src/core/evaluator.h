// Evaluation protocol of the paper: per candidate set (query), compare the
// model's estimated scores against the weighted-Jaccard ground truth using
// MAE, MARE, Kendall tau and Spearman rho.
#pragma once

#include <string>
#include <vector>

#include "core/model.h"
#include "data/dataset.h"

namespace pathrank::core {

/// Aggregated evaluation results.
struct EvalResult {
  double mae = 0.0;
  double mare = 0.0;
  double kendall_tau = 0.0;
  double spearman_rho = 0.0;
  double top1_accuracy = 0.0;
  double ndcg = 0.0;
  size_t num_queries = 0;

  std::string ToString() const;
};

/// Scores every query's candidates with `model` and accumulates metrics.
/// Parallel shards score through the model's const inference path with
/// per-shard scratch — the model is shared, never copied or mutated, so
/// repeated calls cost no replica rebuilds.
EvalResult Evaluate(const PathRankModel& model,
                    const data::RankingDataset& dataset);

}  // namespace pathrank::core
