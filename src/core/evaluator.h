// Evaluation protocol of the paper: per candidate set (query), compare the
// model's estimated scores against the weighted-Jaccard ground truth using
// MAE, MARE, Kendall tau and Spearman rho.
#pragma once

#include <string>

#include "core/model.h"
#include "data/dataset.h"

namespace pathrank::core {

/// Aggregated evaluation results.
struct EvalResult {
  double mae = 0.0;
  double mare = 0.0;
  double kendall_tau = 0.0;
  double spearman_rho = 0.0;
  double top1_accuracy = 0.0;
  double ndcg = 0.0;
  size_t num_queries = 0;

  std::string ToString() const;
};

/// Scores every query's candidates with `model` and accumulates metrics.
/// Parallel shards evaluate on internally-constructed replicas.
EvalResult Evaluate(PathRankModel& model, const data::RankingDataset& dataset);

/// Same, but shards across caller-owned `models` — all entries must hold
/// bitwise-identical parameters (e.g. the trainer's data-parallel
/// replicas), which avoids rebuilding replicas on every call. models[0]
/// is used for the serial path.
EvalResult EvaluateWithReplicas(const std::vector<PathRankModel*>& models,
                                const data::RankingDataset& dataset);

}  // namespace pathrank::core
