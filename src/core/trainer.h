// Mini-batch training loop for PathRank: MSE regression against the
// weighted-Jaccard ground truth, Adam, cosine learning-rate schedule,
// gradient clipping and validation-based early stopping with best-weight
// restoration.
#pragma once

#include <vector>

#include "core/config.h"
#include "core/evaluator.h"
#include "core/model.h"
#include "data/batcher.h"
#include "data/dataset.h"

namespace pathrank::core {

/// Per-epoch training record.
struct EpochRecord {
  int epoch = 0;
  double train_loss = 0.0;
  double val_mae = 0.0;
  double val_tau = 0.0;
  double learning_rate = 0.0;
  double seconds = 0.0;
};

/// Full training history.
struct TrainHistory {
  std::vector<EpochRecord> epochs;
  int best_epoch = -1;
  double best_val_mae = 0.0;
};

/// Trains `model` in place and returns the history. `validation` may be
/// empty, in which case early stopping is disabled and the final weights
/// are kept.
TrainHistory TrainPathRank(PathRankModel& model,
                           const data::RankingDataset& train,
                           const data::RankingDataset& validation,
                           const TrainerConfig& config);

}  // namespace pathrank::core
