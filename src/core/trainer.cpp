#include "core/trainer.h"

#include <algorithm>
#include <limits>
#include <memory>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace pathrank::core {
namespace {

/// Copies parameter values into `snap`, reusing its storage (the snapshot
/// is refreshed on every validation improvement, so reallocation here was
/// measurable on small workloads).
void SnapshotValuesInto(const nn::ParameterList& params,
                        std::vector<nn::Matrix>* snap) {
  snap->resize(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    nn::Matrix& dst = (*snap)[i];
    const nn::Matrix& src = params[i]->value;
    dst.ResizeNoZero(src.rows(), src.cols());
    std::copy(src.data(), src.data() + src.size(), dst.data());
  }
}

void RestoreValues(const nn::ParameterList& params,
                   const std::vector<nn::Matrix>& snap) {
  PR_CHECK(snap.size() == params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    params[i]->value = snap[i];
  }
}

/// Per-worker state for data-parallel training. Worker 0 aliases the
/// caller's model; workers 1..W-1 own replicas initialised to identical
/// values and refreshed by a value broadcast after each optimizer step,
/// so all replicas stay bitwise equal throughout.
struct Worker {
  PathRankModel* model = nullptr;
  std::unique_ptr<PathRankModel> owned;
  nn::ParameterList params;
  // Per-batch scratch (loss gradients) and per-group results.
  std::vector<float> d_scores;
  std::vector<float> d_aux_length;
  std::vector<float> d_aux_time;
  double group_loss = 0.0;     // loss * examples for the last shard
  size_t group_examples = 0;
};

}  // namespace

TrainHistory TrainPathRank(PathRankModel& model,
                           const data::RankingDataset& train,
                           const data::RankingDataset& validation,
                           const TrainerConfig& config) {
  PR_CHECK(config.epochs >= 1);
  pathrank::Rng rng(config.seed);
  data::Batcher batcher(data::FlattenDataset(train), config.batch_size);

  nn::ScheduleConfig schedule;
  schedule.type = config.schedule;
  schedule.base_lr = config.learning_rate;
  schedule.total_epochs = config.epochs;
  schedule.min_lr = config.learning_rate * 0.01;

  // Data-parallel setup: W consecutive batches form one optimizer-step
  // group; each worker computes gradients for one batch and the ordered
  // mean over the group is applied everywhere. W == 1 reproduces the
  // serial per-batch schedule exactly. Results depend on W (the effective
  // batch size is W * batch_size) but are bit-reproducible for a fixed
  // seed and thread count.
  const size_t num_workers =
      std::max<size_t>(1, NumShardsFor(batcher.num_batches()));
  std::vector<Worker> workers(num_workers);
  for (size_t w = 0; w < num_workers; ++w) {
    if (w == 0) {
      workers[w].model = &model;
    } else {
      // Skip-init: the replica's values are copied in wholesale, so the
      // constructor's O(vocab x dim) RNG draws would be wasted work.
      workers[w].owned = std::make_unique<PathRankModel>(
          model.vocab_size(), model.config(), InitMode::kSkipInit);
      workers[w].owned->CopyParametersFrom(model);
      workers[w].model = workers[w].owned.get();
    }
    workers[w].params = workers[w].model->Parameters();
  }
  const nn::ParameterList& params = workers[0].params;
  const size_t num_params = params.size();
  nn::Adam optimizer(config.learning_rate);

  TrainHistory history;
  history.best_val_mae = std::numeric_limits<double>::infinity();
  std::vector<nn::Matrix> best_weights;
  bool have_best = false;
  int epochs_since_best = 0;
  const bool use_validation = !validation.queries.empty();

  const bool multi_task = model.config().multi_task;
  const auto aux_weight = static_cast<float>(model.config().aux_loss_weight);

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    pathrank::Stopwatch watch;
    const double lr = nn::LearningRateAt(schedule, epoch);
    optimizer.set_learning_rate(lr);
    batcher.Reshuffle(rng);

    double loss_sum = 0.0;
    size_t example_count = 0;
    for (size_t g = 0; g < batcher.num_batches(); g += num_workers) {
      const size_t group =
          std::min(num_workers, batcher.num_batches() - g);

      // Forward/backward one batch per worker; gradients land in each
      // worker's own buffers.
      ParallelForShards(
          0, group,
          [&](size_t shard, size_t lo, size_t hi) {
            PR_CHECK(lo + 1 == hi);  // one batch per shard by construction
            Worker& worker = workers[shard];
            const data::ModelBatch batch = batcher.GetBatch(g + lo);
            const auto outputs =
                worker.model->ForwardFull(batch.sequences);
            double loss = nn::ComputeLoss(config.loss, outputs.scores,
                                          batch.labels, &worker.d_scores);
            if (multi_task) {
              // Auxiliary regression on the candidate's normalised length
              // and travel time; gradients scaled by the auxiliary weight.
              loss += aux_weight *
                      nn::ComputeLoss(config.loss, outputs.aux_length,
                                      batch.norm_lengths,
                                      &worker.d_aux_length);
              loss += aux_weight *
                      nn::ComputeLoss(config.loss, outputs.aux_time,
                                      batch.norm_times, &worker.d_aux_time);
              for (float& grad : worker.d_aux_length) grad *= aux_weight;
              for (float& grad : worker.d_aux_time) grad *= aux_weight;
            }
            worker.group_loss =
                loss * static_cast<double>(outputs.scores.size());
            worker.group_examples = outputs.scores.size();

            nn::ZeroGradients(worker.params);
            if (multi_task) {
              worker.model->BackwardFull(worker.d_scores,
                                         worker.d_aux_length,
                                         worker.d_aux_time);
            } else {
              worker.model->Backward(worker.d_scores);
            }
          },
          /*max_shards=*/group);

      for (size_t s = 0; s < group; ++s) {
        loss_sum += workers[s].group_loss;
        example_count += workers[s].group_examples;
      }

      // Ordered reduction into worker 0: mean of the group's gradients,
      // shard order fixed, so the result is independent of scheduling.
      if (group > 1) {
        const float inv_group = 1.0f / static_cast<float>(group);
        ParallelFor(0, num_params, 1, [&](size_t lo, size_t hi) {
          for (size_t p = lo; p < hi; ++p) {
            if (params[p]->frozen) continue;  // optimizer never applies it
            nn::Matrix& grad = params[p]->grad;
            for (size_t s = 1; s < group; ++s) {
              grad.Add(workers[s].params[p]->grad);
            }
            grad.Scale(inv_group);
          }
        });
      }
      if (config.clip_norm > 0.0) {
        nn::ClipGradientNorm(params, config.clip_norm);
      }

      // One optimizer step on worker 0, then a value broadcast keeps the
      // replicas bitwise equal (frozen parameters never change, so they
      // are skipped).
      optimizer.Step(params);
      if (num_workers > 1) {
        ParallelForShards(1, num_workers, [&](size_t, size_t lo, size_t hi) {
          for (size_t w = lo; w < hi; ++w) {
            for (size_t p = 0; p < num_params; ++p) {
              if (params[p]->frozen) continue;
              workers[w].params[p]->value = params[p]->value;
            }
          }
        });
      }
    }

    EpochRecord record;
    record.epoch = epoch;
    record.train_loss = loss_sum / static_cast<double>(example_count);
    record.learning_rate = lr;

    if (use_validation) {
      // Validation scores through the const inference path on the shared
      // model — sharded with per-shard scratch, no replica copies.
      const EvalResult val = Evaluate(model, validation);
      record.val_mae = val.mae;
      record.val_tau = val.kendall_tau;
      if (val.mae < history.best_val_mae) {
        history.best_val_mae = val.mae;
        history.best_epoch = epoch;
        SnapshotValuesInto(params, &best_weights);
        have_best = true;
        epochs_since_best = 0;
      } else {
        ++epochs_since_best;
      }
    }
    record.seconds = watch.ElapsedSeconds();
    history.epochs.push_back(record);

    if (config.verbose) {
      PR_LOG_INFO << "epoch " << epoch << " loss=" << record.train_loss
                  << (use_validation
                          ? " val_mae=" + std::to_string(record.val_mae)
                          : "")
                  << " lr=" << record.learning_rate << " ("
                  << record.seconds << "s, " << num_workers << " workers)";
    }
    if (use_validation && config.patience > 0 &&
        epochs_since_best >= config.patience) {
      break;
    }
  }

  if (use_validation && have_best) {
    RestoreValues(params, best_weights);
  }
  return history;
}

}  // namespace pathrank::core
