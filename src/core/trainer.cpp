#include "core/trainer.h"

#include <limits>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace pathrank::core {
namespace {

/// Snapshot/restore of parameter values (for best-epoch restoration).
std::vector<nn::Matrix> SnapshotValues(const nn::ParameterList& params) {
  std::vector<nn::Matrix> snap;
  snap.reserve(params.size());
  for (const nn::Parameter* p : params) snap.push_back(p->value);
  return snap;
}

void RestoreValues(const nn::ParameterList& params,
                   const std::vector<nn::Matrix>& snap) {
  PR_CHECK(snap.size() == params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    params[i]->value = snap[i];
  }
}

}  // namespace

TrainHistory TrainPathRank(PathRankModel& model,
                           const data::RankingDataset& train,
                           const data::RankingDataset& validation,
                           const TrainerConfig& config) {
  PR_CHECK(config.epochs >= 1);
  pathrank::Rng rng(config.seed);
  data::Batcher batcher(data::FlattenDataset(train), config.batch_size);

  nn::Adam optimizer(config.learning_rate);
  nn::ScheduleConfig schedule;
  schedule.type = config.schedule;
  schedule.base_lr = config.learning_rate;
  schedule.total_epochs = config.epochs;
  schedule.min_lr = config.learning_rate * 0.01;

  const nn::ParameterList params = model.Parameters();
  TrainHistory history;
  history.best_val_mae = std::numeric_limits<double>::infinity();
  std::vector<nn::Matrix> best_weights;
  int epochs_since_best = 0;
  const bool use_validation = !validation.queries.empty();

  std::vector<float> d_scores;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    pathrank::Stopwatch watch;
    optimizer.set_learning_rate(nn::LearningRateAt(schedule, epoch));
    batcher.Reshuffle(rng);

    const bool multi_task = model.config().multi_task;
    const auto aux_weight = static_cast<float>(model.config().aux_loss_weight);
    std::vector<float> d_aux_length;
    std::vector<float> d_aux_time;
    double loss_sum = 0.0;
    size_t example_count = 0;
    for (size_t b = 0; b < batcher.num_batches(); ++b) {
      const data::ModelBatch batch = batcher.GetBatch(b);
      const auto outputs = model.ForwardFull(batch.sequences);
      double loss = nn::ComputeLoss(config.loss, outputs.scores,
                                    batch.labels, &d_scores);
      if (multi_task) {
        // Auxiliary regression on the candidate's normalised length and
        // travel time; gradients are scaled by the auxiliary weight.
        loss += model.config().aux_loss_weight *
                nn::ComputeLoss(config.loss, outputs.aux_length,
                                batch.norm_lengths, &d_aux_length);
        loss += model.config().aux_loss_weight *
                nn::ComputeLoss(config.loss, outputs.aux_time,
                                batch.norm_times, &d_aux_time);
        for (float& g : d_aux_length) g *= aux_weight;
        for (float& g : d_aux_time) g *= aux_weight;
      }
      loss_sum += loss * static_cast<double>(outputs.scores.size());
      example_count += outputs.scores.size();

      nn::ZeroGradients(params);
      if (multi_task) {
        model.BackwardFull(d_scores, d_aux_length, d_aux_time);
      } else {
        model.Backward(d_scores);
      }
      if (config.clip_norm > 0.0) {
        nn::ClipGradientNorm(params, config.clip_norm);
      }
      optimizer.Step(params);
    }

    EpochRecord record;
    record.epoch = epoch;
    record.train_loss = loss_sum / static_cast<double>(example_count);
    record.learning_rate = optimizer.learning_rate();

    if (use_validation) {
      const EvalResult val = Evaluate(model, validation);
      record.val_mae = val.mae;
      record.val_tau = val.kendall_tau;
      if (val.mae < history.best_val_mae) {
        history.best_val_mae = val.mae;
        history.best_epoch = epoch;
        best_weights = SnapshotValues(params);
        epochs_since_best = 0;
      } else {
        ++epochs_since_best;
      }
    }
    record.seconds = watch.ElapsedSeconds();
    history.epochs.push_back(record);

    if (config.verbose) {
      PR_LOG_INFO << "epoch " << epoch << " loss=" << record.train_loss
                  << (use_validation
                          ? " val_mae=" + std::to_string(record.val_mae)
                          : "")
                  << " lr=" << record.learning_rate << " ("
                  << record.seconds << "s)";
    }
    if (use_validation && config.patience > 0 &&
        epochs_since_best >= config.patience) {
      break;
    }
  }

  if (use_validation && !best_weights.empty()) {
    RestoreValues(params, best_weights);
  }
  return history;
}

}  // namespace pathrank::core
