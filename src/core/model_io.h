// Whole-model checkpointing: persists the architecture configuration and
// every parameter tensor in one binary file, so a trained PathRank can be
// deployed (see the pathrank_cli tool) without retraining.
#pragma once

#include <memory>
#include <string>

#include "core/model.h"

namespace pathrank::core {

/// Saves `model` (config + parameters) to `path`.
/// Throws std::runtime_error on I/O failure.
void SaveModel(const PathRankModel& model, const std::string& path);

/// Loads a model checkpoint; reconstructs the architecture from the stored
/// config and fills in the trained parameters.
/// Throws std::runtime_error on I/O or format errors.
std::unique_ptr<PathRankModel> LoadModel(const std::string& path);

}  // namespace pathrank::core
