// Evaluation metrics used in the paper's experiments:
//   * MAE  — mean absolute error of predicted vs ground-truth scores;
//   * MARE — mean absolute relative error, sum|err| / sum|truth|;
//   * Kendall rank correlation coefficient tau (tie-aware tau-b);
//   * Spearman's rank correlation coefficient rho (tie-aware, computed on
//     fractional ranks).
// Plus auxiliary ranking measures (top-1 accuracy, NDCG).
#pragma once

#include <span>
#include <vector>

namespace pathrank::metrics {

/// Mean absolute error. Spans must be equal-sized and non-empty.
double MeanAbsoluteError(std::span<const double> predicted,
                         std::span<const double> truth);

/// Mean absolute relative error as defined in the PathRank evaluation:
/// sum_i |p_i - t_i| / sum_i |t_i|.
double MeanAbsoluteRelativeError(std::span<const double> predicted,
                                 std::span<const double> truth);

/// Kendall tau-b in [-1, 1]; tie-corrected. Returns 0 when either input is
/// constant (no ranking information).
double KendallTau(std::span<const double> a, std::span<const double> b);

/// Spearman rho in [-1, 1], computed as the Pearson correlation of
/// fractional ranks (handles ties). Returns 0 when either input is constant.
double SpearmanRho(std::span<const double> a, std::span<const double> b);

/// 1.0 when the argmax of `predicted` coincides with the argmax of `truth`
/// (ties broken towards agreement), else 0.0.
double TopOneAccuracy(std::span<const double> predicted,
                      std::span<const double> truth);

/// Normalised discounted cumulative gain over the full list, with gains
/// equal to the ground-truth scores.
double Ndcg(std::span<const double> predicted, std::span<const double> truth);

/// Fractional ranks (average rank for ties), 1-based. Exposed for testing.
std::vector<double> FractionalRanks(std::span<const double> values);

/// Accumulates per-query metric values and reports means. The paper
/// computes MAE/MARE over all candidate paths and rank correlations per
/// candidate set; this helper mirrors that protocol.
class MetricAccumulator {
 public:
  /// Adds one query's predicted/truth score lists.
  void AddQuery(std::span<const double> predicted,
                std::span<const double> truth);

  double mae() const;
  double mare() const;
  double mean_kendall_tau() const;
  double mean_spearman_rho() const;
  double mean_top1() const;
  double mean_ndcg() const;
  size_t num_queries() const { return num_queries_; }

 private:
  double abs_err_sum_ = 0.0;
  double abs_truth_sum_ = 0.0;
  size_t num_points_ = 0;
  double tau_sum_ = 0.0;
  double rho_sum_ = 0.0;
  double top1_sum_ = 0.0;
  double ndcg_sum_ = 0.0;
  size_t num_queries_ = 0;
};

}  // namespace pathrank::metrics
